/// Fig 12 (repo extension, no paper counterpart): the adversarial scenario
/// matrix. Every scenario of `StandardScenarioMatrix`
/// (simulation/adversary.h) — spammer floods, colluding cliques, sleeper
/// drift, heavy-tail difficulty, bursty arrival, plus a clean baseline and
/// a degenerate spam-majority stress — is replayed through every method of
/// `EngineRegistry::Global()` as a batched stream. Per cell the bench
/// records final accuracy, the batch at which predictions stopped moving,
/// and per-batch Observe/Snapshot latency percentiles; per batch it also
/// asserts the robustness invariants (finite scores, monotone counters) so
/// a regression fails the run rather than skewing the numbers.
///
/// A second axis replays the nastiest scenario (lowest CPA F1 among the
/// non-degenerate cells) through a live TCP `cpa_server`: N concurrent
/// binary-protocol connections each stream the full adversarial plan and
/// the report carries the tail latency of the wire under hostile input,
/// comparable against BENCH_fig11_server_throughput.json.
///
///   $ fig12_adversarial_matrix                   # full matrix + replay
///   $ fig12_adversarial_matrix --quick           # CI smoke
///   $ fig12_adversarial_matrix --replay-only     # wire axis only (TSan job)
///   $ fig12_adversarial_matrix --connections 16  # heavier replay load

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/engine_registry.h"
#include "eval/metrics.h"
#include "server/binary_codec.h"
#include "server/consensus_server.h"
#include "server/tcp_client.h"
#include "server/tcp_transport.h"
#include "simulation/adversary.h"
#include "util/json.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"

using namespace cpa;

namespace {

using server::BinaryResponse;
using server::Frame;
using server::FrameKind;
using server::TcpFrameClient;

/// One (scenario, method) cell of the matrix.
struct CellResult {
  std::string scenario;
  std::string method;
  SetMetrics metrics;
  std::size_t convergence_batch = 0;  ///< last batch that moved predictions
  std::size_t answers = 0;
  double wall_s = 0.0;
  std::vector<double> observe_ms;
  std::vector<double> snapshot_ms;
};

/// The robustness invariants: every score finite, counters monotone.
void CheckSnapshotInvariants(const ConsensusSnapshot& snapshot,
                             const char* where, std::size_t min_batches,
                             std::size_t min_answers) {
  for (std::size_t r = 0; r < snapshot.label_scores.rows(); ++r) {
    for (double score : snapshot.label_scores.Row(r)) {
      CPA_CHECK(std::isfinite(score))
          << where << ": non-finite score in row " << r;
    }
  }
  CPA_CHECK(std::isfinite(snapshot.learning_rate)) << where;
  CPA_CHECK_GE(snapshot.batches_seen, min_batches) << where;
  CPA_CHECK_GE(snapshot.answers_seen, min_answers) << where;
}

/// Streams one scenario through one engine, timing each op.
CellResult RunCell(const AdversarialScenario& scenario,
                   const AdversarialStream& stream, const std::string& method,
                   std::size_t cpa_iterations) {
  CellResult cell;
  cell.scenario = scenario.name;
  cell.method = method;

  EngineConfig config = EngineConfig::ForDataset(method, stream.dataset);
  config.cpa.max_iterations = cpa_iterations;
  auto opened = EngineRegistry::Global().Open(config);
  CPA_CHECK(opened.ok()) << method << ": " << opened.status().ToString();
  ConsensusEngine& engine = *opened.value();

  const Stopwatch wall;
  std::size_t batches_seen = 0;
  std::size_t answers_seen = 0;
  std::vector<LabelSet> previous_predictions;
  for (const auto& batch : stream.plan.batches) {
    Stopwatch stopwatch;
    const Status observed = engine.Observe({&stream.dataset.answers, batch});
    cell.observe_ms.push_back(stopwatch.ElapsedMillis());
    CPA_CHECK(observed.ok())
        << scenario.name << "@" << method << ": " << observed.ToString();
    ++batches_seen;
    answers_seen += batch.size();

    stopwatch = Stopwatch();
    auto snapshot = engine.Snapshot();
    cell.snapshot_ms.push_back(stopwatch.ElapsedMillis());
    CPA_CHECK(snapshot.ok())
        << scenario.name << "@" << method << ": "
        << snapshot.status().ToString();
    CheckSnapshotInvariants(*snapshot.value(), scenario.name.c_str(),
                            batches_seen, answers_seen);
    if (snapshot.value()->predictions != previous_predictions) {
      cell.convergence_batch = batches_seen;
      previous_predictions = snapshot.value()->predictions;
    }
  }
  auto final_snapshot = engine.Finalize();
  CPA_CHECK(final_snapshot.ok()) << final_snapshot.status().ToString();
  CheckSnapshotInvariants(*final_snapshot.value(), "finalize", batches_seen,
                          answers_seen);
  cell.wall_s = wall.ElapsedSeconds();
  cell.answers = answers_seen;
  cell.metrics = ComputeSetMetrics(final_snapshot.value()->predictions,
                                   stream.dataset.ground_truth);
  return cell;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

void CheckJsonOk(const Frame& frame, const char* what) {
  CPA_CHECK(frame.kind == FrameKind::kJson) << what;
  const auto parsed = JsonValue::Parse(frame.payload);
  CPA_CHECK(parsed.ok()) << what << ": " << frame.payload;
  const JsonValue* ok = parsed.value().Find("ok");
  CPA_CHECK(ok != nullptr && ok->bool_value()) << what << ": " << frame.payload;
}

BinaryResponse CheckBinaryOk(const Frame& frame, const char* what) {
  CPA_CHECK(frame.kind == FrameKind::kBinary) << what;
  auto decoded = server::DecodeBinaryResponse(frame.payload);
  CPA_CHECK(decoded.ok()) << what << ": " << decoded.status().ToString();
  CPA_CHECK(decoded.value().ok)
      << what << ": " << decoded.value().error.ToString();
  return std::move(decoded).value();
}

double TimedRoundtrip(TcpFrameClient& client, FrameKind kind,
                      std::string_view payload, Frame& reply) {
  const Stopwatch stopwatch;
  auto result = client.Roundtrip(kind, payload);
  const double ms = stopwatch.ElapsedMillis();
  CPA_CHECK(result.ok()) << result.status().ToString();
  reply = std::move(result).value();
  return ms;
}

/// Latency samples of the wire-replay axis.
struct ReplayResult {
  double wall_s = 0.0;
  std::size_t answers = 0;
  std::vector<double> observe_ms;
  std::vector<double> snapshot_ms;
};

/// Replays the scenario stream through a live TCP server: `connections`
/// concurrent binary-protocol sessions, each streaming the full plan.
ReplayResult ReplayOverTcp(const AdversarialStream& stream,
                           const std::string& method,
                           std::size_t cpa_iterations,
                           std::size_t connections) {
  EngineConfig engine_config =
      EngineConfig::ForDataset(method, stream.dataset);
  engine_config.cpa.max_iterations = cpa_iterations;

  ConsensusServerOptions server_options;
  server_options.sessions.max_sessions = connections + 1;
  ConsensusServer server(server_options);
  TcpTransportOptions tcp_options;
  tcp_options.max_connections = connections + 8;
  TcpTransport transport(server, tcp_options);
  CPA_CHECK_OK(transport.Start());

  std::vector<ReplayResult> stats(connections);
  std::vector<std::thread> clients;
  clients.reserve(connections);
  std::atomic<bool> go{false};
  for (std::size_t s = 0; s < connections; ++s) {
    clients.emplace_back([&, s] {
      auto connect = TcpFrameClient::Connect("127.0.0.1", transport.port());
      CPA_CHECK(connect.ok()) << connect.status().ToString();
      TcpFrameClient client = std::move(connect).value();
      const std::string session = StrFormat("adversarial-%zu", s);
      Frame reply;

      JsonValue::Object open;
      open["op"] = JsonValue(std::string("open"));
      open["session"] = JsonValue(session);
      open["config"] = engine_config.ToJson();
      auto opened = client.Roundtrip(FrameKind::kJson,
                                     JsonValue(std::move(open)).DumpCompact());
      CPA_CHECK(opened.ok()) << opened.status().ToString();
      CheckJsonOk(opened.value(), "open");
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }

      std::vector<Answer> batch_answers;
      for (const auto& batch : stream.plan.batches) {
        batch_answers.clear();
        batch_answers.reserve(batch.size());
        for (std::size_t index : batch) {
          batch_answers.push_back(stream.dataset.answers.answer(index));
        }
        stats[s].observe_ms.push_back(TimedRoundtrip(
            client, FrameKind::kBinary,
            server::EncodeObserveRequest(session, batch_answers), reply));
        CheckBinaryOk(reply, "observe");
        stats[s].snapshot_ms.push_back(TimedRoundtrip(
            client, FrameKind::kBinary,
            server::EncodeSnapshotRequest(session, /*refresh=*/true,
                                          /*include_predictions=*/true),
            reply));
        CheckBinaryOk(reply, "snapshot");
        stats[s].answers += batch.size();
      }
      auto finalized = client.Roundtrip(
          FrameKind::kBinary, server::EncodeFinalizeRequest(session, false));
      CPA_CHECK(finalized.ok()) << finalized.status().ToString();
      CheckBinaryOk(finalized.value(), "finalize");
      auto closed = client.Roundtrip(
          FrameKind::kJson,
          StrFormat("{\"op\":\"close\",\"session\":\"%s\"}", session.c_str()));
      CPA_CHECK(closed.ok()) << closed.status().ToString();
      CheckJsonOk(closed.value(), "close");
    });
  }

  ReplayResult result;
  while (transport.num_connections() < connections) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const Stopwatch wall;
  go.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();
  result.wall_s = wall.ElapsedSeconds();
  for (ReplayResult& client : stats) {
    result.answers += client.answers;
    result.observe_ms.insert(result.observe_ms.end(),
                             client.observe_ms.begin(),
                             client.observe_ms.end());
    result.snapshot_ms.insert(result.snapshot_ms.end(),
                              client.snapshot_ms.begin(),
                              client.snapshot_ms.end());
  }
  CPA_CHECK_EQ(server.sessions().num_sessions(), 0u);
  transport.Shutdown();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv, 1.0);
  const auto flags = Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();
  const bool quick = flags.value().GetBool("quick", false);
  const bool replay_only = flags.value().GetBool("replay-only", false);
  std::size_t connections =
      static_cast<std::size_t>(flags.value().GetInt("connections", 8));
  if (quick) {
    config.scale = std::min(config.scale, 0.15);
    config.cpa_iterations = std::min<std::size_t>(config.cpa_iterations, 6);
    connections = std::min<std::size_t>(connections, 2);
  }

  bench::PrintHeader(
      "Fig 12 — adversarial scenario matrix",
      "Every StandardScenarioMatrix scenario through every registry method, "
      "with per-batch invariant checks; then the worst scenario replayed "
      "over a live TCP server.",
      config);

  const auto scenarios = StandardScenarioMatrix(config.seed, config.scale);
  const auto methods = EngineRegistry::Global().MethodNames();
  bench::BenchReport report("fig12_adversarial_matrix", config);

  // The replay axis defaults to the flood scenario and, after a matrix
  // run, upgrades to whichever non-degenerate scenario hurt CPA most.
  std::size_t replay_scenario = 1;  // spammer-flood
  CPA_CHECK_LT(replay_scenario, scenarios.size());

  if (!replay_only) {
    // Generate every stream once (parallel answer pass is pointless here —
    // the scenarios are independent workloads, not one big one).
    std::vector<AdversarialStream> streams;
    streams.reserve(scenarios.size());
    for (const auto& scenario : scenarios) {
      auto stream = GenerateAdversarialStream(scenario.config);
      CPA_CHECK(stream.ok())
          << scenario.name << ": " << stream.status().ToString();
      streams.push_back(std::move(stream).value());
    }

    // The matrix: cells are independent (one fresh engine each), so a
    // small runner pool walks an atomic cursor over scenario × method.
    struct Cell {
      std::size_t scenario;
      std::size_t method;
    };
    std::vector<Cell> cells;
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      for (std::size_t m = 0; m < methods.size(); ++m) {
        cells.push_back(Cell{s, m});
      }
    }
    std::vector<CellResult> results(cells.size());
    std::atomic<std::size_t> cursor{0};
    const std::size_t runners = std::max<std::size_t>(
        1, std::min<std::size_t>(4, std::thread::hardware_concurrency()));
    std::vector<std::thread> pool;
    pool.reserve(runners);
    for (std::size_t r = 0; r < runners; ++r) {
      pool.emplace_back([&] {
        for (std::size_t index = cursor.fetch_add(1); index < cells.size();
             index = cursor.fetch_add(1)) {
          const Cell& cell = cells[index];
          results[index] =
              RunCell(scenarios[cell.scenario], streams[cell.scenario],
                      methods[cell.method], config.cpa_iterations);
        }
      });
    }
    for (auto& runner : pool) runner.join();

    std::printf("\n%-22s %-8s %8s %8s %8s %6s %12s %12s\n", "scenario",
                "method", "F1", "prec", "recall", "conv", "observe_p95",
                "snapshot_p95");
    std::printf("%s\n", std::string(92, '-').c_str());
    double worst_cpa_f1 = 2.0;
    for (std::size_t index = 0; index < results.size(); ++index) {
      const CellResult& cell = results[index];
      const auto key = [&](const char* name) {
        return StrFormat("%s@%s_%s", cell.scenario.c_str(),
                         cell.method.c_str(), name);
      };
      report.Add(key("f1"), cell.metrics.F1(), "ratio");
      report.Add(key("precision"), cell.metrics.precision, "ratio");
      report.Add(key("recall"), cell.metrics.recall, "ratio");
      report.Add(key("convergence_batch"),
                 static_cast<double>(cell.convergence_batch), "batch");
      report.Add(key("observe_p50"), Percentile(cell.observe_ms, 0.5), "ms");
      report.Add(key("observe_p95"), Percentile(cell.observe_ms, 0.95), "ms");
      report.Add(key("snapshot_p95"), Percentile(cell.snapshot_ms, 0.95),
                 "ms");
      std::printf("%-22s %-8s %8.3f %8.3f %8.3f %6zu %12.3f %12.3f\n",
                  cell.scenario.c_str(), cell.method.c_str(),
                  cell.metrics.F1(), cell.metrics.precision,
                  cell.metrics.recall, cell.convergence_batch,
                  Percentile(cell.observe_ms, 0.95),
                  Percentile(cell.snapshot_ms, 0.95));
      if (cell.method == "CPA" &&
          !scenarios[cells[index].scenario].degenerate &&
          cell.metrics.F1() < worst_cpa_f1) {
        worst_cpa_f1 = cell.metrics.F1();
        replay_scenario = cells[index].scenario;
      }
    }
    report.Add("scenarios", static_cast<double>(scenarios.size()), "count");
    report.Add("methods", static_cast<double>(methods.size()), "count");
  }

  // Wire axis: the nastiest stream against a live server.
  const AdversarialScenario& nasty = scenarios[replay_scenario];
  auto nasty_stream = GenerateAdversarialStream(nasty.config);
  CPA_CHECK(nasty_stream.ok()) << nasty_stream.status().ToString();
  std::printf("\nreplaying '%s' over TCP (%zu connections, CPA-SVI)...\n",
              nasty.name.c_str(), connections);
  const ReplayResult replay = ReplayOverTcp(
      nasty_stream.value(), "CPA-SVI", config.cpa_iterations, connections);
  report.Add("replay_wall", replay.wall_s, "s");
  report.Add("replay_answers_per_s",
             static_cast<double>(replay.answers) / replay.wall_s, "1/s");
  report.Add("replay_observe_p50", Percentile(replay.observe_ms, 0.5), "ms");
  report.Add("replay_observe_p95", Percentile(replay.observe_ms, 0.95), "ms");
  report.Add("replay_observe_p99", Percentile(replay.observe_ms, 0.99), "ms");
  report.Add("replay_snapshot_p50", Percentile(replay.snapshot_ms, 0.5),
             "ms");
  report.Add("replay_snapshot_p95", Percentile(replay.snapshot_ms, 0.95),
             "ms");
  report.Add("replay_snapshot_p99", Percentile(replay.snapshot_ms, 0.99),
             "ms");
  std::printf("replay: %.0f answers/s, observe p95 %.3f ms, snapshot p95 "
              "%.3f ms\n",
              static_cast<double>(replay.answers) / replay.wall_s,
              Percentile(replay.observe_ms, 0.95),
              Percentile(replay.snapshot_ms, 0.95));

  CPA_CHECK_OK(report.Write());
  std::printf(
      "\nExpected shape: CPA variants should dominate MV/EM on every "
      "non-degenerate adversarial scenario (model-based worker quality "
      "absorbs spam and collusion); spam-majority is past every method's "
      "breakdown point and is reported for the record only.\n");
  return 0;
}
