/// Regenerates Fig 6 (online vs offline accuracy as data arrives, image
/// dataset) and Table 5 (online vs offline at 100% for all five datasets,
/// with deviation across shuffles).
///
/// Both sides run through the engine API: "CPA-SVI" sessions stream the
/// arrival batches (Algorithm 2), and the offline reference re-fits by
/// opening a fresh "CPA" session per prefix (the accumulate-then-refit
/// adapter is exactly "full VI on the data so far").
///
/// `--quick` shrinks scale/runs/sweeps so the whole bench finishes in a
/// couple of minutes (explicit `--scale` / `--runs` / `--cpa-iterations`
/// still win).

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "engine/engine_registry.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "simulation/perturbations.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

namespace {

EngineConfig MethodConfig(const std::string& method, const Dataset& dataset,
                          const bench::BenchConfig& bench_config) {
  EngineConfig config = EngineConfig::ForDataset(method, dataset);
  config.cpa.max_iterations = bench_config.cpa_iterations;
  return config;
}

std::unique_ptr<ConsensusEngine> MustOpen(const EngineConfig& config) {
  auto engine = EngineRegistry::Global().Open(config);
  CPA_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// One full online pass over `plan`; per-step metrics when `record_steps`.
StreamingExperimentResult RunOnline(const Dataset& dataset,
                                    const bench::BenchConfig& bench_config,
                                    const BatchPlan& plan, bool record_steps) {
  auto engine = MustOpen(MethodConfig("CPA-SVI", dataset, bench_config));
  auto run = RunStreamingExperiment(*engine, dataset, plan, record_steps);
  CPA_CHECK(run.ok()) << run.status().ToString();
  return std::move(run).value();
}

/// Offline VI re-run on the first `steps_taken` arrival batches.
SetMetrics RunOfflinePrefix(const Dataset& dataset,
                            const bench::BenchConfig& bench_config,
                            const BatchPlan& plan, std::size_t steps_taken) {
  BatchPlan prefix;
  prefix.batches.assign(plan.batches.begin(), plan.batches.begin() + steps_taken);
  auto engine = MustOpen(MethodConfig("CPA", dataset, bench_config));
  auto run = RunStreamingExperiment(*engine, dataset, prefix,
                                    /*score_each_batch=*/false);
  CPA_CHECK(run.ok()) << run.status().ToString();
  return run.value().final_result.metrics;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv, 0.35, 3);
  const auto flags = Flags::Parse(argc, argv);
  if (flags.ok() && flags.value().GetBool("quick", false)) {
    if (!flags.value().Has("scale")) config.scale = 0.15;
    if (!flags.value().Has("runs")) config.runs = 2;
    if (!flags.value().Has("cpa-iterations")) config.cpa_iterations = 15;
  }
  bench::PrintHeader(
      "Fig 6 + Table 5 — effects of data arrival (online vs offline CPA)",
      "Answers arrive in 10% steps; online = stochastic variational "
      "inference (Algorithm 2), offline = full VI re-run on the data so far. "
      "Both drive EngineRegistry sessions.",
      config);

  bench::BenchReport report("fig6_table5_data_arrival", config);

  // --- Fig 6: image dataset, accuracy after each arrival step.
  {
    const Dataset dataset = bench::LoadPaperDataset(PaperDatasetId::kImage, config);
    Rng rng(config.seed ^ 0xF160ULL);
    const BatchPlan plan = MakeArrivalSchedule(dataset.answers, 10, rng);
    const StreamingExperimentResult online = RunOnline(dataset, config, plan, true);

    TablePrinter table({"Arrival%", "P online", "P offline", "R online", "R offline"});
    for (std::size_t step = 1; step <= 10; ++step) {
      const SetMetrics offline = RunOfflinePrefix(dataset, config, plan, step);
      const SetMetrics& online_metrics = online.steps[step - 1].metrics;
      table.AddRow({StrFormat("%zu0", step),
                    StrFormat("%.2f", online_metrics.precision),
                    StrFormat("%.2f", offline.precision),
                    StrFormat("%.2f", online_metrics.recall),
                    StrFormat("%.2f", offline.recall)});
      report.Add(StrFormat("online@%zu0%%_arrival_precision", step),
                 online_metrics.precision, "fraction");
      report.Add(StrFormat("offline@%zu0%%_arrival_precision", step),
                 offline.precision, "fraction");
      report.Add(StrFormat("online@%zu0%%_arrival_recall", step),
                 online_metrics.recall, "fraction");
      report.Add(StrFormat("offline@%zu0%%_arrival_recall", step),
                 offline.recall, "fraction");
      std::fprintf(stderr, "[fig6] arrival %zu0%% done\n", step);
    }
    std::printf("\nFig 6 (image dataset)\n");
    table.Print();
  }

  // --- Table 5: all five datasets at 100%, mean +- deviation over shuffles.
  std::printf("\nTable 5 — accuracy at 100%% data arrival\n");
  TablePrinter table(
      {"Dataset", "P online", "P offline", "R online", "R offline"});
  for (PaperDatasetId id : AllPaperDatasets()) {
    const Dataset dataset = bench::LoadPaperDataset(id, config);

    double p_sum = 0.0, p_sq = 0.0, r_sum = 0.0, r_sq = 0.0;
    for (std::size_t run = 0; run < config.runs; ++run) {
      Rng rng(config.seed + 31 * run + 7);
      const BatchPlan plan = MakeArrivalSchedule(dataset.answers, 10, rng);
      const StreamingExperimentResult online = RunOnline(dataset, config, plan, false);
      const SetMetrics& metrics = online.final_result.metrics;
      p_sum += metrics.precision;
      p_sq += metrics.precision * metrics.precision;
      r_sum += metrics.recall;
      r_sq += metrics.recall * metrics.recall;
    }
    const double n = static_cast<double>(config.runs);
    const double p_mean = p_sum / n;
    const double r_mean = r_sum / n;
    const double p_dev = std::sqrt(std::max(0.0, p_sq / n - p_mean * p_mean));
    const double r_dev = std::sqrt(std::max(0.0, r_sq / n - r_mean * r_mean));

    auto offline_engine = MustOpen(MethodConfig("CPA", dataset, config));
    const auto offline_result = RunExperiment(*offline_engine, dataset);
    CPA_CHECK(offline_result.ok()) << offline_result.status().ToString();
    table.AddRow({std::string(PaperDatasetName(id)),
                  StrFormat("%.2f +-%.2f", p_mean, p_dev),
                  StrFormat("%.2f", offline_result.value().metrics.precision),
                  StrFormat("%.2f +-%.2f", r_mean, r_dev),
                  StrFormat("%.2f", offline_result.value().metrics.recall)});
    const char* name = PaperDatasetName(id).data();
    report.Add(StrFormat("table5_online@%s_precision", name), p_mean, "fraction");
    report.Add(StrFormat("table5_online@%s_precision_dev", name), p_dev,
               "fraction");
    report.Add(StrFormat("table5_offline@%s_precision", name),
               offline_result.value().metrics.precision, "fraction");
    report.Add(StrFormat("table5_online@%s_recall", name), r_mean, "fraction");
    report.Add(StrFormat("table5_online@%s_recall_dev", name), r_dev, "fraction");
    report.Add(StrFormat("table5_offline@%s_recall", name),
               offline_result.value().metrics.recall, "fraction");
    std::fprintf(stderr, "[table5] %s done\n", PaperDatasetName(id).data());
  }
  table.Print();
  CPA_CHECK_OK(report.Write());
  std::printf(
      "\nExpected shape (paper Fig 6/Table 5): online tracks offline from "
      "below, the gap shrinking as data arrives; at 100%% online is a few "
      "points behind offline on every dataset (paper image: 0.76 vs 0.81 "
      "precision, 0.70 vs 0.74 recall).\n");
  return 0;
}
