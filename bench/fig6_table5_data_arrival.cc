/// Regenerates Fig 6 (online vs offline accuracy as data arrives, image
/// dataset) and Table 5 (online vs offline at 100% for all five datasets,
/// with deviation across shuffles).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/cpa.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "simulation/perturbations.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

namespace {

struct OnlineRun {
  std::vector<SetMetrics> per_step;  // after each arrival step
};

OnlineRun RunOnline(const Dataset& dataset, const CpaOptions& options,
                    std::size_t steps, Rng& rng, bool record_steps) {
  OnlineRun run;
  auto online = CpaOnline::Create(dataset.num_items(), dataset.num_workers(),
                                  dataset.num_labels, options, SviOptions());
  CPA_CHECK(online.ok()) << online.status().ToString();
  const BatchPlan plan = MakeArrivalSchedule(dataset.answers, steps, rng);
  for (std::size_t step = 0; step < plan.num_batches(); ++step) {
    CPA_CHECK_OK(online.value().ObserveBatch(dataset.answers, plan.batches[step]));
    if (record_steps || step + 1 == plan.num_batches()) {
      const auto prediction = online.value().Predict(dataset.answers);
      CPA_CHECK(prediction.ok()) << prediction.status().ToString();
      run.per_step.push_back(
          ComputeSetMetrics(prediction.value().labels, dataset.ground_truth));
    }
  }
  return run;
}

SetMetrics RunOfflinePrefix(const Dataset& dataset, const CpaOptions& options,
                            const BatchPlan& plan, std::size_t steps_taken) {
  const AnswerMatrix prefix = dataset.answers.Subset(plan.Prefix(steps_taken));
  CpaAggregator offline(options);
  const auto result = offline.Aggregate(prefix, dataset.num_labels);
  CPA_CHECK(result.ok()) << result.status().ToString();
  return ComputeSetMetrics(result.value().predictions, dataset.ground_truth);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv, 0.35, 3);
  bench::PrintHeader(
      "Fig 6 + Table 5 — effects of data arrival (online vs offline CPA)",
      "Answers arrive in 10% steps; online = stochastic variational "
      "inference (Algorithm 2), offline = full VI re-run on the data so far.",
      config);

  bench::BenchReport report("fig6_table5_data_arrival", config);

  // --- Fig 6: image dataset, accuracy after each arrival step.
  {
    const Dataset dataset = bench::LoadPaperDataset(PaperDatasetId::kImage, config);
    CpaOptions options =
        CpaOptions::Recommended(dataset.num_items(), dataset.num_labels);
    options.max_iterations = config.cpa_iterations;
    Rng rng(config.seed ^ 0xF160ULL);
    const BatchPlan plan = MakeArrivalSchedule(dataset.answers, 10, rng);
    Rng online_rng(config.seed ^ 0xF160ULL);
    const OnlineRun online = RunOnline(dataset, options, 10, online_rng, true);

    TablePrinter table({"Arrival%", "P online", "P offline", "R online", "R offline"});
    for (std::size_t step = 1; step <= 10; ++step) {
      const SetMetrics offline = RunOfflinePrefix(dataset, options, plan, step);
      const SetMetrics& online_metrics = online.per_step[step - 1];
      table.AddRow({StrFormat("%zu0", step),
                    StrFormat("%.2f", online_metrics.precision),
                    StrFormat("%.2f", offline.precision),
                    StrFormat("%.2f", online_metrics.recall),
                    StrFormat("%.2f", offline.recall)});
      report.Add(StrFormat("online@%zu0%%_arrival_precision", step),
                 online_metrics.precision, "fraction");
      report.Add(StrFormat("offline@%zu0%%_arrival_precision", step),
                 offline.precision, "fraction");
      report.Add(StrFormat("online@%zu0%%_arrival_recall", step),
                 online_metrics.recall, "fraction");
      report.Add(StrFormat("offline@%zu0%%_arrival_recall", step),
                 offline.recall, "fraction");
      std::fprintf(stderr, "[fig6] arrival %zu0%% done\n", step);
    }
    std::printf("\nFig 6 (image dataset)\n");
    table.Print();
  }

  // --- Table 5: all five datasets at 100%, mean +- deviation over shuffles.
  std::printf("\nTable 5 — accuracy at 100%% data arrival\n");
  TablePrinter table(
      {"Dataset", "P online", "P offline", "R online", "R offline"});
  for (PaperDatasetId id : AllPaperDatasets()) {
    const Dataset dataset = bench::LoadPaperDataset(id, config);
    CpaOptions options =
        CpaOptions::Recommended(dataset.num_items(), dataset.num_labels);
    options.max_iterations = config.cpa_iterations;

    double p_sum = 0.0, p_sq = 0.0, r_sum = 0.0, r_sq = 0.0;
    for (std::size_t run = 0; run < config.runs; ++run) {
      Rng rng(config.seed + 31 * run + 7);
      const OnlineRun online = RunOnline(dataset, options, 10, rng, false);
      const SetMetrics& metrics = online.per_step.back();
      p_sum += metrics.precision;
      p_sq += metrics.precision * metrics.precision;
      r_sum += metrics.recall;
      r_sq += metrics.recall * metrics.recall;
    }
    const double n = static_cast<double>(config.runs);
    const double p_mean = p_sum / n;
    const double r_mean = r_sum / n;
    const double p_dev = std::sqrt(std::max(0.0, p_sq / n - p_mean * p_mean));
    const double r_dev = std::sqrt(std::max(0.0, r_sq / n - r_mean * r_mean));

    CpaAggregator offline(options);
    const auto offline_result = RunExperiment(offline, dataset);
    CPA_CHECK(offline_result.ok()) << offline_result.status().ToString();
    table.AddRow({std::string(PaperDatasetName(id)),
                  StrFormat("%.2f +-%.2f", p_mean, p_dev),
                  StrFormat("%.2f", offline_result.value().metrics.precision),
                  StrFormat("%.2f +-%.2f", r_mean, r_dev),
                  StrFormat("%.2f", offline_result.value().metrics.recall)});
    const char* name = PaperDatasetName(id).data();
    report.Add(StrFormat("table5_online@%s_precision", name), p_mean, "fraction");
    report.Add(StrFormat("table5_online@%s_precision_dev", name), p_dev,
               "fraction");
    report.Add(StrFormat("table5_offline@%s_precision", name),
               offline_result.value().metrics.precision, "fraction");
    report.Add(StrFormat("table5_online@%s_recall", name), r_mean, "fraction");
    report.Add(StrFormat("table5_online@%s_recall_dev", name), r_dev, "fraction");
    report.Add(StrFormat("table5_offline@%s_recall", name),
               offline_result.value().metrics.recall, "fraction");
    std::fprintf(stderr, "[table5] %s done\n", PaperDatasetName(id).data());
  }
  table.Print();
  CPA_CHECK_OK(report.Write());
  std::printf(
      "\nExpected shape (paper Fig 6/Table 5): online tracks offline from "
      "below, the gap shrinking as data arrives; at 100%% online is a few "
      "points behind offline on every dataset (paper image: 0.76 vs 0.81 "
      "precision, 0.70 vs 0.74 recall).\n");
  return 0;
}
