/// Ablation bench for the design decisions DESIGN.md §4 documents — the
/// places where the paper is under-specified and this implementation had
/// to choose: the unsupervised label-evidence strategy, the prediction
/// mode, the Eq. 3 answer term, and the consensus re-seeding schedule.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/cpa_options.h"
#include "eval/experiment.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

namespace {

SetMetrics Run(const Dataset& dataset, const CpaOptions& options) {
  EngineConfig config = EngineConfig::ForDataset("CPA", dataset);
  config.cpa = options;
  const auto result = RunExperiment(config, dataset);
  CPA_CHECK(result.ok()) << result.status().ToString();
  return result.value().metrics;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv, 0.25);
  bench::PrintHeader(
      "Ablation — design choices of this reproduction (DESIGN.md §4)",
      "Each row switches one resolved ambiguity back to an alternative; "
      "image (strong label correlation) and movie (little correlation).",
      config);

  bench::BenchReport report("ablation_design_choices", config);
  for (PaperDatasetId id : {PaperDatasetId::kImage, PaperDatasetId::kMovie}) {
    const Dataset dataset = bench::LoadPaperDataset(id, config);
    CpaOptions base = CpaOptions::Recommended(dataset.num_items(), dataset.num_labels);
    base.max_iterations = config.cpa_iterations;

    TablePrinter table({"Configuration", "Precision", "Recall", "F1"});
    // `slug` is the stable machine-readable report key; `name` is the
    // human-facing caption and may be reworded freely.
    const auto add = [&](const char* slug, const std::string& name,
                         const CpaOptions& options) {
      const SetMetrics metrics = Run(dataset, options);
      table.AddRow({name, StrFormat("%.3f", metrics.precision),
                    StrFormat("%.3f", metrics.recall),
                    StrFormat("%.3f", metrics.F1())});
      report.Add(StrFormat("%s@%s_f1", slug, dataset.name.c_str()),
                 metrics.F1(), "fraction");
      std::fprintf(stderr, "[ablation] %s / %s done\n", dataset.name.c_str(),
                   name.c_str());
    };

    add("default", "default (reliability evidence, Bernoulli prediction)", base);

    CpaOptions evidence = base;
    evidence.label_evidence = LabelEvidence::kAnswerFrequency;
    add("evidence_answer_frequency",
        "evidence: raw answer frequency (Appendix-B reading)", evidence);

    evidence.label_evidence = LabelEvidence::kSelfTraining;
    add("evidence_self_training",
        "evidence: self-training on greedy predictions", evidence);

    evidence.label_evidence = LabelEvidence::kObservedOnly;
    add("evidence_observed_only",
        "evidence: observed-only (paper-literal Eq. 7, y = empty)", evidence);

    CpaOptions multinomial = base;
    multinomial.prediction_mode = PredictionMode::kMultinomialSizePrior;
    add("prediction_multinomial",
        "prediction: multinomial + size prior (paper-literal greedy)", multinomial);

    CpaOptions answer_term = base;
    answer_term.phi_answer_term = true;
    add("phi_answer_term",
        "phi update: + answer term (full mean-field, Eq. 3 restored)", answer_term);

    CpaOptions no_reseed = base;
    no_reseed.reseed_sweeps = 0;
    add("no_reseed",
        "seeding: bootstrap only (no consensus re-seeding sweeps)", no_reseed);

    CpaOptions literal_scale = base;
    literal_scale.evidence_scale = 1.0;
    add("evidence_scale_literal",
        "evidence weight: single pseudo-observation (paper-literal)",
        literal_scale);

    std::printf("\n%s dataset\n", dataset.name.c_str());
    table.Print();
  }
  CPA_CHECK_OK(report.Write());
  std::printf(
      "\nReading: the default should dominate or tie each single-switch "
      "alternative; 'observed-only' collapses recall (the cluster profiles "
      "never see label evidence), which is why DESIGN.md argues the paper's "
      "literal Eq. 7 cannot be what its implementation did.\n");
  return 0;
}
