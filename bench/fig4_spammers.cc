/// Regenerates Fig 4 — robustness to spammers: answers from injected
/// spammer workers make up 20% / 40% of the data; precision/recall are
/// reported relative to the 0%-spam performance of the same method
/// (ΔPrecision, ΔRecall as ratios). Baseline = cBCC, the strongest
/// baseline, as in the paper.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "eval/experiment.h"
#include "simulation/perturbations.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader(
      "Fig 4 — effects of spammers (ratio vs spammer-free performance)",
      "Spam answers are injected until they make up 20% / 40% of all answers.",
      config);

  const std::vector<std::string> methods = {"cBCC", "CPA"};

  bench::BenchReport report("fig4_spammers", config);
  for (const double spam_fraction : {0.2, 0.4}) {
    TablePrinter table({"Dataset", "dP cBCC", "dP CPA", "dR cBCC", "dR CPA"});
    for (PaperDatasetId id : AllPaperDatasets()) {
      const Dataset dataset = bench::LoadPaperDataset(id, config);
      Rng rng(config.seed ^ 0xF1604ULL);
      SpammerInjectionOptions options;
      options.spam_answer_fraction = spam_fraction;
      const auto spammed = InjectSpammers(dataset, options, rng);
      if (!spammed.ok()) {
        std::fprintf(stderr, "injection failed: %s\n",
                     spammed.status().ToString().c_str());
        return 1;
      }
      std::map<std::string, SetMetrics> clean;
      std::map<std::string, SetMetrics> noisy;
      for (const std::string& method : methods) {
        EngineConfig clean_config = EngineConfig::ForDataset(method, dataset);
        clean_config.cpa.max_iterations = config.cpa_iterations;
        EngineConfig noisy_config = EngineConfig::ForDataset(method, spammed.value());
        noisy_config.cpa.max_iterations = config.cpa_iterations;
        const auto clean_result = RunExperiment(clean_config, dataset);
        const auto noisy_result = RunExperiment(noisy_config, spammed.value());
        if (clean_result.ok()) clean[method] = clean_result.value().metrics;
        if (noisy_result.ok()) noisy[method] = noisy_result.value().metrics;
      }
      const auto ratio = [&](const std::string& method, bool use_precision) {
        const double base = use_precision ? clean[method].precision
                                          : clean[method].recall;
        const double with = use_precision ? noisy[method].precision
                                          : noisy[method].recall;
        return base > 0.0 ? with / base : 0.0;
      };
      table.AddRow({std::string(PaperDatasetName(id)),
                    StrFormat("%.2f", ratio("cBCC", true)),
                    StrFormat("%.2f", ratio("CPA", true)),
                    StrFormat("%.2f", ratio("cBCC", false)),
                    StrFormat("%.2f", ratio("CPA", false))});
      for (const std::string& method : methods) {
        report.Add(StrFormat("%s@%s_%.0f%%_spam_precision_ratio", method.c_str(),
                             PaperDatasetName(id).data(), spam_fraction * 100),
                   ratio(method, true), "ratio");
        report.Add(StrFormat("%s@%s_%.0f%%_spam_recall_ratio", method.c_str(),
                             PaperDatasetName(id).data(), spam_fraction * 100),
                   ratio(method, false), "ratio");
      }
      std::fprintf(stderr, "[fig4] %s @ %.0f%% spam done\n",
                   PaperDatasetName(id).data(), spam_fraction * 100);
    }
    std::printf("\nSpammer ratio = %.0f%%\n", spam_fraction * 100);
    table.Print();
  }
  CPA_CHECK_OK(report.Write());
  std::printf(
      "\nExpected shape (paper Fig 4): at 20%% both methods stay near 1.0; at "
      "40%% cBCC loses clearly more (paper aspect example: cBCC precision "
      "0.65 -> 0.51 while CPA stays ~constant). CPA ratios should dominate "
      "cBCC ratios everywhere.\n");
  return 0;
}
