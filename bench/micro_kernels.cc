/// Microbenchmarks of the inference and prediction kernels (the per-sweep
/// costs behind Fig 7's curves). Runs under google-benchmark when the
/// library is available, and under the self-timed fallback harness
/// otherwise (bench/self_timed_benchmark.h), so the numbers always exist.

#if defined(CPA_HAVE_GOOGLE_BENCHMARK)
#include <benchmark/benchmark.h>
#else
#include "bench/self_timed_benchmark.h"
#endif

#include <algorithm>

#include "core/cpa.h"
#include "core/prediction.h"
#include "core/sweep/answer_view.h"
#include "core/sweep/simd.h"
#include "core/sweep/sweep_kernels.h"
#include "core/sweep/sweep_scheduler.h"
#include "core/vi.h"
#include "data/dataset.h"
#include "simulation/dataset_factory.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/special_functions.h"

namespace cpa {
namespace {

void BM_Digamma(benchmark::State& state) {
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Digamma(x));
    x = x > 100.0 ? 0.1 : x + 0.1;
  }
}
BENCHMARK(BM_Digamma);

void BM_LogSumExp(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> values(state.range(0));
  for (double& v : values) v = -10.0 * rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogSumExp(values));
  }
}
BENCHMARK(BM_LogSumExp)->Arg(16)->Arg(64)->Arg(256);

void BM_SoftmaxInPlace(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> values(state.range(0));
  for (auto _ : state) {
    for (double& v : values) v = -10.0 * rng.NextDouble();
    SoftmaxInPlace(values);
    benchmark::DoNotOptimize(values.data());
  }
}
BENCHMARK(BM_SoftmaxInPlace)->Arg(64)->Arg(1024);

// ---------------------------------------------------------------------------
// Scalar-vs-AVX2 kernel pairs (core/sweep/simd.h). Each pair calls the two
// dispatch tables directly, so the comparison isolates the vectorization win
// from dispatch overhead. On machines without AVX2, KernelsFor(kAvx2)
// resolves to the scalar table and the pair reads as ~1×.
// ---------------------------------------------------------------------------

void AccumulateBody(benchmark::State& state, const simd::Kernels& kernels) {
  Rng rng(3);
  std::vector<double> from(state.range(0));
  std::vector<double> into(state.range(0), 0.0);
  for (double& v : from) v = rng.NextDouble();
  for (auto _ : state) {
    kernels.accumulate(into.data(), from.data(), from.size());
    benchmark::DoNotOptimize(into.data());
  }
}
void BM_AccumulateScalar(benchmark::State& state) {
  AccumulateBody(state, simd::KernelsFor(simd::Level::kScalar));
}
void BM_AccumulateAvx2(benchmark::State& state) {
  AccumulateBody(state, simd::KernelsFor(simd::Level::kAvx2));
}
// 4096 ≈ one λ partial bank (M×C) at movie scale; 65536 ≈ the flattened
// T×M×C merge the reduce tree performs per pair of blocks.
BENCHMARK(BM_AccumulateScalar)->Arg(4096)->Arg(65536);
BENCHMARK(BM_AccumulateAvx2)->Arg(4096)->Arg(65536);

void AxpyBody(benchmark::State& state, const simd::Kernels& kernels) {
  Rng rng(4);
  std::vector<double> in(state.range(0));
  std::vector<double> out(state.range(0), 0.0);
  for (double& v : in) v = rng.NextDouble();
  for (auto _ : state) {
    kernels.axpy(0.37, in.data(), out.data(), in.size());
    benchmark::DoNotOptimize(out.data());
  }
}
void BM_AxpyScalar(benchmark::State& state) {
  AxpyBody(state, simd::KernelsFor(simd::Level::kScalar));
}
void BM_AxpyAvx2(benchmark::State& state) {
  AxpyBody(state, simd::KernelsFor(simd::Level::kAvx2));
}
BENCHMARK(BM_AxpyScalar)->Arg(4096);
BENCHMARK(BM_AxpyAvx2)->Arg(4096);

void DotBody(benchmark::State& state, const simd::Kernels& kernels) {
  Rng rng(5);
  std::vector<double> a(state.range(0));
  std::vector<double> b(state.range(0));
  for (double& v : a) v = rng.NextDouble();
  for (double& v : b) v = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels.dot(a.data(), b.data(), a.size()));
  }
}
void BM_DotScalar(benchmark::State& state) {
  DotBody(state, simd::KernelsFor(simd::Level::kScalar));
}
void BM_DotAvx2(benchmark::State& state) {
  DotBody(state, simd::KernelsFor(simd::Level::kAvx2));
}
BENCHMARK(BM_DotScalar)->Arg(4096);
BENCHMARK(BM_DotAvx2)->Arg(4096);

// Softmax mutates in place, so each iteration restores the row with a
// std::copy from a pristine source — cheap and identical for both levels,
// unlike an RNG refill which would dominate the timing.
void SoftmaxBody(benchmark::State& state, const simd::Kernels& kernels) {
  Rng rng(6);
  std::vector<double> source(state.range(0));
  for (double& v : source) v = -10.0 * rng.NextDouble();
  std::vector<double> values(source.size());
  for (auto _ : state) {
    std::copy(source.begin(), source.end(), values.begin());
    benchmark::DoNotOptimize(kernels.softmax(values.data(), values.size()));
  }
}
void BM_SoftmaxScalar(benchmark::State& state) {
  SoftmaxBody(state, simd::KernelsFor(simd::Level::kScalar));
}
void BM_SoftmaxAvx2(benchmark::State& state) {
  SoftmaxBody(state, simd::KernelsFor(simd::Level::kAvx2));
}
BENCHMARK(BM_SoftmaxScalar)->Arg(64)->Arg(1024);
BENCHMARK(BM_SoftmaxAvx2)->Arg(64)->Arg(1024);

// A concentrated row: one dominant log-weight, the rest ~40 nats below it,
// so nearly every 4-block fails the 27.6-nat floor. This is the shape the
// movemask block-skip in the AVX2 floored softmax is built for (prediction
// rows after a few sweeps look like this).
void SoftmaxFlooredBody(benchmark::State& state, const simd::Kernels& kernels) {
  Rng rng(7);
  std::vector<double> source(state.range(0));
  for (double& v : source) v = -40.0 - 5.0 * rng.NextDouble();
  source[0] = 0.0;
  std::vector<double> values(source.size());
  for (auto _ : state) {
    std::copy(source.begin(), source.end(), values.begin());
    benchmark::DoNotOptimize(
        kernels.softmax_floored(values.data(), values.size(), 27.6));
  }
}
void BM_SoftmaxFlooredScalar(benchmark::State& state) {
  SoftmaxFlooredBody(state, simd::KernelsFor(simd::Level::kScalar));
}
void BM_SoftmaxFlooredAvx2(benchmark::State& state) {
  SoftmaxFlooredBody(state, simd::KernelsFor(simd::Level::kAvx2));
}
BENCHMARK(BM_SoftmaxFlooredScalar)->Arg(64)->Arg(1024);
BENCHMARK(BM_SoftmaxFlooredAvx2)->Arg(64)->Arg(1024);

/// Shared fixture: a small fitted model over a simulated movie dataset,
/// plus the flat view and activity lists the sweep kernels consume.
struct FittedFixture {
  Dataset dataset;
  CpaModel model;
  AnswerView view;
  SweepScheduler scheduler;  ///< arena-backed (the production default)
  SweepScheduler heap_scheduler{nullptr, ScratchArena::Mode::kHeap};
  sweep::ClusterActivity activity;

  static FittedFixture& Get() {
    static FittedFixture* fixture = [] {
      auto* f = new FittedFixture();
      FactoryOptions options;
      options.scale = 0.2;
      auto dataset = MakePaperDataset(PaperDatasetId::kMovie, options);
      CPA_CHECK(dataset.ok());
      f->dataset = std::move(dataset).value();
      CpaOptions cpa_options =
          CpaOptions::Recommended(f->dataset.num_items(), f->dataset.num_labels);
      cpa_options.max_iterations = 10;
      auto model = FitCpa(f->dataset.answers, f->dataset.num_labels, cpa_options);
      CPA_CHECK(model.ok());
      f->model = std::move(model).value();
      f->view = AnswerView(f->dataset.answers);
      sweep::BuildClusterActivity(f->model.phi, f->scheduler, f->activity);
      return f;
    }();
    return *fixture;
  }
};

void BM_UpdateWorkerResponsibility(benchmark::State& state) {
  FittedFixture& f = FittedFixture::Get();
  CpaModel model = f.model;
  WorkerId u = 0;
  for (auto _ : state) {
    sweep::UpdateWorkerResponsibility(model, f.view, u, f.view.AnswersOfWorker(u),
                                      &f.activity);
    u = (u + 1) % model.num_workers();
  }
}
BENCHMARK(BM_UpdateWorkerResponsibility);

void BM_UpdateItemResponsibility(benchmark::State& state) {
  FittedFixture& f = FittedFixture::Get();
  CpaModel model = f.model;
  ItemId i = 0;
  for (auto _ : state) {
    sweep::UpdateItemResponsibility(model, f.view, i, f.view.AnswersOfItem(i));
    i = (i + 1) % model.num_items();
  }
}
BENCHMARK(BM_UpdateItemResponsibility);

void BM_UpdateLambda(benchmark::State& state) {
  FittedFixture& f = FittedFixture::Get();
  CpaModel model = f.model;
  for (auto _ : state) {
    sweep::UpdateLambda(model, f.view, f.activity, f.scheduler);
  }
}
BENCHMARK(BM_UpdateLambda);

// The arena-vs-heap `ParallelReduce` pair: the same λ reduce with partial
// banks checked out of the scheduler's reuse arena (steady-state: zero
// allocations) versus the kHeap baseline (one fresh allocation per partial
// per call — the pre-arena behaviour). Results are bit-identical; only the
// allocator traffic differs.
void BM_ParallelReduceLambdaArena(benchmark::State& state) {
  FittedFixture& f = FittedFixture::Get();
  CpaModel model = f.model;
  const SweepScheduler scheduler(nullptr, ScratchArena::Mode::kReuse);
  for (auto _ : state) {
    sweep::UpdateLambda(model, f.view, f.activity, scheduler);
  }
}
BENCHMARK(BM_ParallelReduceLambdaArena);

void BM_ParallelReduceLambdaHeap(benchmark::State& state) {
  FittedFixture& f = FittedFixture::Get();
  CpaModel model = f.model;
  for (auto _ : state) {
    sweep::UpdateLambda(model, f.view, f.activity, f.heap_scheduler);
  }
}
BENCHMARK(BM_ParallelReduceLambdaHeap);

void BM_UpdateThetaChannel(benchmark::State& state) {
  FittedFixture& f = FittedFixture::Get();
  CpaModel model = f.model;
  for (auto _ : state) {
    sweep::UpdateThetaChannel(model, f.activity, f.scheduler);
  }
}
BENCHMARK(BM_UpdateThetaChannel);

void BM_RefreshExpectations(benchmark::State& state) {
  FittedFixture& f = FittedFixture::Get();
  CpaModel model = f.model;
  for (auto _ : state) {
    model.RefreshExpectations();
  }
}
BENCHMARK(BM_RefreshExpectations);

void BM_PredictLabels(benchmark::State& state) {
  FittedFixture& f = FittedFixture::Get();
  for (auto _ : state) {
    auto prediction = PredictLabels(f.model, f.dataset.answers);
    CPA_CHECK(prediction.ok());
    benchmark::DoNotOptimize(prediction.value().labels.data());
  }
}
BENCHMARK(BM_PredictLabels);

// The arena-vs-heap prediction pair: the per-item multinomial pipeline
// (reweight → candidates → greedy instantiation) with one arena-backed
// scratch reused across items versus a fresh heap scratch per item (the
// pre-arena per-item allocation pattern). Label sets are identical.
void BM_PredictionItemsArena(benchmark::State& state) {
  FittedFixture& f = FittedFixture::Get();
  const auto tables = internal::BuildPredictionTables(f.model);
  sweep::ClusterActivity activity;
  sweep::BuildClusterActivity(f.model.phi, f.scheduler, activity,
                              internal::kClusterPrune);
  ScratchArena arena;
  internal::PredictionScratch scratch(arena, f.model.num_clusters(),
                                      f.model.num_communities());
  ItemId i = 0;
  for (auto _ : state) {
    internal::ItemClusterLogWeights(f.model, tables, f.dataset.answers, i,
                                    &activity, scratch);
    internal::CollectCandidates(tables, f.dataset.answers, i, scratch.log_weights,
                                scratch);
    benchmark::DoNotOptimize(internal::GreedyInstantiate(
        tables, scratch.log_weights, scratch.candidates, scratch));
    i = (i + 1) % f.model.num_items();
  }
}
BENCHMARK(BM_PredictionItemsArena);

void BM_PredictionItemsHeap(benchmark::State& state) {
  FittedFixture& f = FittedFixture::Get();
  const auto tables = internal::BuildPredictionTables(f.model);
  ItemId i = 0;
  for (auto _ : state) {
    const auto log_weights =
        internal::ItemClusterLogWeights(f.model, tables, f.dataset.answers, i);
    const auto candidates = internal::CollectCandidates(
        tables, f.dataset.answers, i, log_weights);
    benchmark::DoNotOptimize(
        internal::GreedyInstantiate(tables, log_weights, candidates));
    i = (i + 1) % f.model.num_items();
  }
}
BENCHMARK(BM_PredictionItemsHeap);

void BM_ComputeElbo(benchmark::State& state) {
  FittedFixture& f = FittedFixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeElbo(f.model, f.dataset.answers));
  }
}
BENCHMARK(BM_ComputeElbo);

}  // namespace
}  // namespace cpa

BENCHMARK_MAIN();
