/// Regenerates Fig 8 — the model ablation: full CPA vs "No Z" (community
/// structure removed: every worker is a singleton community) vs "No L"
/// (cluster structure removed: every item is a singleton cluster,
/// bounded-exhaustive label-set search). As in the paper, No L is
/// tractable only for the movie dataset (22 labels).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "eval/experiment.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader("Fig 8 — effects of model aspects (CPA vs No Z vs No L)",
                     "R1 ablation: worker communities; R3 ablation: item "
                     "clusters.",
                     config);

  TablePrinter precision({"Dataset", "CPA", "No Z", "No L"});
  TablePrinter recall({"Dataset", "CPA", "No Z", "No L"});
  bench::BenchReport report("fig8_model_aspects", config);
  for (PaperDatasetId id : AllPaperDatasets()) {
    const Dataset dataset = bench::LoadPaperDataset(id, config);

    std::vector<std::string> p_cells = {std::string(PaperDatasetName(id))};
    std::vector<std::string> r_cells = {std::string(PaperDatasetName(id))};
    // The ablation variants are registry methods of their own.
    for (const std::string method : {"CPA", "CPA-NoZ", "CPA-NoL"}) {
      EngineConfig engine_config = EngineConfig::ForDataset(method, dataset);
      engine_config.cpa.max_iterations = config.cpa_iterations;
      const auto result = RunExperiment(engine_config, dataset);
      if (!result.ok()) {
        // The paper: "the No L model turned out to be intractable for all
        // except the movie dataset".
        p_cells.push_back("intractable");
        r_cells.push_back("intractable");
        std::fprintf(stderr, "[fig8] %s/%s: %s\n", PaperDatasetName(id).data(),
                     method.c_str(), result.status().ToString().c_str());
        continue;
      }
      p_cells.push_back(StrFormat("%.2f", result.value().metrics.precision));
      r_cells.push_back(StrFormat("%.2f", result.value().metrics.recall));
      report.Add(StrFormat("%s@%s_precision", method.c_str(),
                           PaperDatasetName(id).data()),
                 result.value().metrics.precision, "fraction");
      report.Add(StrFormat("%s@%s_recall", method.c_str(),
                           PaperDatasetName(id).data()),
                 result.value().metrics.recall, "fraction");
      std::fprintf(stderr, "[fig8] %s/%s done in %.1fs\n",
                   PaperDatasetName(id).data(), method.c_str(),
                   result.value().seconds);
    }
    precision.AddRow(p_cells);
    recall.AddRow(r_cells);
  }
  std::printf("\nPrecision\n");
  precision.Print();
  std::printf("\nRecall\n");
  recall.Print();
  CPA_CHECK_OK(report.Write());
  std::printf(
      "\nExpected shape (paper Fig 8): full CPA highest throughout; No Z "
      "(no communities) loses precision most — communities identify faulty "
      "workers; No L (no clusters) loses recall most — clusters complete "
      "missing labels via co-occurrence; No L runs only on movie.\n");
  return 0;
}
