/// Fig 11 (repo extension, no paper counterpart): multi-session server
/// throughput and tail latency over the real socket transports. N
/// concurrent client connections — each its own socket, session, and
/// thread — drive one in-process listener through the length-prefixed
/// frame protocol, once per cell of the config axes
/// (transport_loop × encoding): the thread-per-connection `TcpTransport`
/// and the epoll `EventLoopTransport`, each in JSON and binary framing.
/// Every client opens its session (JSON frame), streams its batches,
/// pulls a refresh snapshot and a cached poll per batch (both with the
/// full prediction payload — serialization of large prediction payloads
/// is the CPU sink this bench exists to watch), finalizes and closes,
/// while all sessions' sweep work shares one `ServerScheduler` pool.
/// Reports answers/s, p50/p95/p99 latency per op per run, and the
/// transport's syscall-visibility counters (frames per recv(2) call,
/// partial writes, EAGAIN events) into
/// `BENCH_fig11_server_throughput.json`, asserting every run produced
/// identical final predictions for every session.
///
///   $ fig11_server_throughput                  # 100 conns, all four cells
///   $ fig11_server_throughput --connections 200 --num-threads 4 --method MV
///   $ fig11_server_throughput --workers 4      # plus a 4-worker router run
///   $ fig11_server_throughput --io-threads 4   # epoll reactor count
///   $ fig11_server_throughput --adversarial colluding-cliques
///
/// `--method MV` (or any offline method) makes every refresh snapshot a
/// refit on the data so far — the worst-case polling load; the default
/// CPA-SVI pays one incremental step per batch.
///
/// `--adversarial <scenario>` swaps the benign replayed stream for a
/// named cell of the standard adversarial scenario matrix
/// (src/simulation/adversary.h): every client replays the generated
/// hostile stream — colluding cliques, sleeper ramps, bursty arrivals —
/// so the serving layer is measured under the load shape the robustness
/// suite studies, not just a friendly shuffle.
///
/// With `--workers N` (default 2, `--workers 0` disables) the bench also
/// measures the sharded deployment: N real `fork()`ed worker processes,
/// each a full server + TCP listener, behind an in-process `Router` and a
/// front listener — the `cpa_server --router` topology, clients untouched.
/// Workers are forked before any thread exists in the run (TSan-clean),
/// hand their port back over a pipe, and exit on control-pipe EOF. Those
/// runs report under `w<N>_<transport>_*` keys; the single-process runs
/// report under `json_*` / `binary_*` (thread-per-connection) and
/// `ep_json_*` / `ep_binary_*` (epoll).
///
/// A final probe phase measures what pipelining buys: one client sends
/// [1 refresh + K cached polls] as a single write per round, first
/// unsequenced (legacy ordered mode — every poll waits for the refresh)
/// then sequenced (polls complete out of order through the epoll fast
/// lane while the refresh runs). Reported as `ep_<enc>_ordered_poll_*`
/// vs `ep_<enc>_pipelined_poll_*` plus the out-of-order response count.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/binary_codec.h"
#include "server/consensus_server.h"
#include "server/event_loop_transport.h"
#include "server/protocol.h"
#include "server/router.h"
#include "server/tcp_client.h"
#include "server/tcp_transport.h"
#include "server/transport.h"
#include "simulation/adversary.h"
#include "simulation/perturbations.h"
#include "util/json.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"

using namespace cpa;

namespace {

using server::BinaryResponse;
using server::Frame;
using server::FrameKind;
using server::TcpFrameClient;

/// Asserts a JSON response frame parses and carries `"ok":true`.
void CheckJsonOk(const Frame& frame, const char* what) {
  CPA_CHECK(frame.kind == FrameKind::kJson) << what;
  const auto parsed = JsonValue::Parse(frame.payload);
  CPA_CHECK(parsed.ok()) << what << ": " << frame.payload;
  const JsonValue* ok = parsed.value().Find("ok");
  CPA_CHECK(ok != nullptr && ok->bool_value()) << what << ": " << frame.payload;
}

/// Decodes a binary response frame and asserts it is not an error reply.
BinaryResponse CheckBinaryOk(const Frame& frame, const char* what) {
  CPA_CHECK(frame.kind == FrameKind::kBinary) << what;
  auto decoded = server::DecodeBinaryResponse(frame.payload);
  CPA_CHECK(decoded.ok()) << what << ": " << decoded.status().ToString();
  CPA_CHECK(decoded.value().ok) << what << ": "
                                << decoded.value().error.ToString();
  return std::move(decoded).value();
}

/// One roundtrip, timed. The reply frame lands in `reply`.
double TimedRoundtrip(TcpFrameClient& client, FrameKind kind,
                      std::string_view payload, Frame& reply) {
  const Stopwatch stopwatch;
  auto result = client.Roundtrip(kind, payload);
  const double ms = stopwatch.ElapsedMillis();
  CPA_CHECK(result.ok()) << result.status().ToString();
  reply = std::move(result).value();
  return ms;
}

struct ClientStats {
  std::size_t answers = 0;
  std::vector<double> observe_ms;
  std::vector<double> snapshot_ms;  ///< refresh snapshots, with predictions
  std::vector<double> poll_ms;      ///< cached polls, with predictions
  std::vector<LabelSet> final_predictions;
};

/// Extracts the predictions array of a JSON snapshot/finalize response.
std::vector<LabelSet> JsonPredictions(const Frame& frame) {
  const auto parsed = JsonValue::Parse(frame.payload);
  CPA_CHECK(parsed.ok());
  const JsonValue* rows = parsed.value().Find("predictions");
  CPA_CHECK(rows != nullptr);
  std::vector<LabelSet> predictions;
  predictions.reserve(rows->array().size());
  for (const JsonValue& row : rows->array()) {
    std::vector<LabelId> labels;
    labels.reserve(row.array().size());
    for (const JsonValue& label : row.array()) {
      labels.push_back(static_cast<LabelId>(label.number_value()));
    }
    predictions.push_back(LabelSet::FromUnsorted(std::move(labels)));
  }
  return predictions;
}

/// One synthetic stream over one real TCP connection: open → (observe +
/// snapshot + poll) per batch → finalize → close. `binary` routes the hot
/// ops through the binary codec; control ops are JSON frames either way.
ClientStats RunClient(TcpFrameClient client, const std::string& session,
                      const EngineConfig& config, const Dataset& dataset,
                      const BatchPlan& plan, bool binary,
                      const std::atomic<bool>& go) {
  ClientStats stats;
  Frame reply;

  JsonValue::Object open;
  open["op"] = JsonValue(std::string("open"));
  open["session"] = JsonValue(session);
  open["config"] = config.ToJson();
  auto opened = client.Roundtrip(FrameKind::kJson,
                                 JsonValue(std::move(open)).DumpCompact());
  CPA_CHECK(opened.ok()) << opened.status().ToString();
  CheckJsonOk(opened.value(), "open");

  // Hold here until every client is connected — the bench measures the
  // server under its full concurrent-connection load, not a ramp.
  while (!go.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<Answer> batch_answers;
  for (const auto& batch : plan.batches) {
    batch_answers.clear();
    batch_answers.reserve(batch.size());
    for (std::size_t index : batch) {
      batch_answers.push_back(dataset.answers.answer(index));
    }
    if (binary) {
      stats.observe_ms.push_back(TimedRoundtrip(
          client, FrameKind::kBinary,
          server::EncodeObserveRequest(session, batch_answers), reply));
      CheckBinaryOk(reply, "observe");
      stats.snapshot_ms.push_back(TimedRoundtrip(
          client, FrameKind::kBinary,
          server::EncodeSnapshotRequest(session, /*refresh=*/true,
                                        /*include_predictions=*/true),
          reply));
      CheckBinaryOk(reply, "snapshot");
      stats.poll_ms.push_back(TimedRoundtrip(
          client, FrameKind::kBinary,
          server::EncodeSnapshotRequest(session, /*refresh=*/false,
                                        /*include_predictions=*/true),
          reply));
      CheckBinaryOk(reply, "poll");
    } else {
      stats.observe_ms.push_back(
          TimedRoundtrip(client, FrameKind::kJson,
                         server::MakeObserveRequest(session, batch_answers),
                         reply));
      CheckJsonOk(reply, "observe");
      stats.snapshot_ms.push_back(TimedRoundtrip(
          client, FrameKind::kJson,
          StrFormat("{\"op\":\"snapshot\",\"session\":\"%s\"}", session.c_str()),
          reply));
      CheckJsonOk(reply, "snapshot");
      stats.poll_ms.push_back(TimedRoundtrip(
          client, FrameKind::kJson,
          StrFormat("{\"op\":\"snapshot\",\"session\":\"%s\","
                    "\"refresh\":false}",
                    session.c_str()),
          reply));
      CheckJsonOk(reply, "poll");
    }
    stats.answers += batch.size();
  }

  if (binary) {
    auto finalized = client.Roundtrip(
        FrameKind::kBinary, server::EncodeFinalizeRequest(session, true));
    CPA_CHECK(finalized.ok()) << finalized.status().ToString();
    stats.final_predictions =
        CheckBinaryOk(finalized.value(), "finalize").predictions;
  } else {
    auto finalized = client.Roundtrip(
        FrameKind::kJson,
        StrFormat("{\"op\":\"finalize\",\"session\":\"%s\"}", session.c_str()));
    CPA_CHECK(finalized.ok()) << finalized.status().ToString();
    CheckJsonOk(finalized.value(), "finalize");
    stats.final_predictions = JsonPredictions(finalized.value());
  }

  auto closed = client.Roundtrip(
      FrameKind::kJson,
      StrFormat("{\"op\":\"close\",\"session\":\"%s\"}", session.c_str()));
  CPA_CHECK(closed.ok()) << closed.status().ToString();
  CheckJsonOk(closed.value(), "close");
  return stats;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

/// Aggregated outcome of one run (one transport_loop × encoding cell).
struct TransportResult {
  double wall_s = 0.0;
  std::size_t answers = 0;
  std::size_t peak_connections = 0;
  std::vector<double> observe_ms;
  std::vector<double> snapshot_ms;
  std::vector<double> poll_ms;
  std::vector<std::vector<LabelSet>> final_predictions;  ///< per session
  TransportStats stats;  ///< listener counters, incl. syscall visibility
};

/// One forked fleet worker as seen by the parent.
struct WorkerProcess {
  pid_t pid = -1;
  int control_fd = -1;  ///< write end; closing it tells the worker to exit
  std::uint32_t port = 0;
};

/// Child-process body of one fleet worker: a full server + TCP listener,
/// port reported over `port_fd`, serving until `control_fd` hits EOF —
/// exactly what a `cpa_server --tcp` process does, minus flag parsing.
void WorkerMain(int port_fd, int control_fd, std::size_t num_threads,
                std::size_t max_sessions, std::size_t max_connections) {
  ConsensusServerOptions options;
  options.sessions.num_threads = num_threads;
  options.sessions.max_sessions = max_sessions;
  ConsensusServer server(options);
  TcpTransportOptions tcp_options;
  tcp_options.max_connections = max_connections;
  TcpTransport transport(server, tcp_options);
  CPA_CHECK_OK(transport.Start());
  const std::uint32_t port = transport.port();
  CPA_CHECK_EQ(::write(port_fd, &port, sizeof(port)),
               static_cast<ssize_t>(sizeof(port)));
  ::close(port_fd);
  char byte = 0;
  while (::read(control_fd, &byte, 1) > 0) {
  }
  ::close(control_fd);
  transport.Shutdown();
}

/// Forks `count` workers. MUST run before the parent spawns any thread
/// (fork duplicates only the calling thread; a forked lock holder would
/// deadlock the child, and TSan rejects multi-threaded forks outright).
std::vector<WorkerProcess> SpawnWorkers(std::size_t count,
                                        std::size_t num_threads,
                                        std::size_t max_sessions,
                                        std::size_t max_connections) {
  std::vector<WorkerProcess> fleet;
  fleet.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    int port_pipe[2];
    int control_pipe[2];
    CPA_CHECK_EQ(::pipe(port_pipe), 0);
    CPA_CHECK_EQ(::pipe(control_pipe), 0);
    const pid_t pid = ::fork();
    CPA_CHECK_GE(pid, 0);
    if (pid == 0) {
      ::close(port_pipe[0]);
      ::close(control_pipe[1]);
      // Drop inherited write ends of the siblings' control pipes, or
      // their EOFs never arrive.
      for (const WorkerProcess& sibling : fleet) ::close(sibling.control_fd);
      WorkerMain(port_pipe[1], control_pipe[0], num_threads, max_sessions,
                 max_connections);
      ::_exit(0);
    }
    ::close(port_pipe[1]);
    ::close(control_pipe[0]);
    WorkerProcess worker;
    worker.pid = pid;
    worker.control_fd = control_pipe[1];
    CPA_CHECK_EQ(::read(port_pipe[0], &worker.port, sizeof(worker.port)),
                 static_cast<ssize_t>(sizeof(worker.port)));
    ::close(port_pipe[0]);
    fleet.push_back(worker);
  }
  return fleet;
}

/// Control-pipe EOF → worker drains and exits; reap every pid.
void JoinWorkers(std::vector<WorkerProcess>& fleet) {
  for (WorkerProcess& worker : fleet) ::close(worker.control_fd);
  for (WorkerProcess& worker : fleet) {
    int status = 0;
    CPA_CHECK_EQ(::waitpid(worker.pid, &status, 0), worker.pid);
    CPA_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "worker " << worker.pid << " died uncleanly";
  }
  fleet.clear();
}

/// Spins up a front listener — over an in-process server (`workers == 0`)
/// or a router across `workers` forked worker processes — and drives
/// `connections` concurrent client threads through it in the given
/// encoding. `event_loop` selects the epoll reactor transport with
/// `io_threads` reactors; otherwise the thread-per-connection listener.
TransportResult RunTransport(bool binary, bool event_loop,
                             std::size_t connections, std::size_t num_threads,
                             std::size_t io_threads, std::size_t workers,
                             const EngineConfig& engine_config,
                             const Dataset& dataset,
                             const std::vector<BatchPlan>& plans) {
  // Fork the fleet before the router/transport/client threads exist.
  std::vector<WorkerProcess> fleet;
  std::unique_ptr<ConsensusServer> server;
  std::unique_ptr<Router> router;
  FrameHandler* handler = nullptr;
  if (workers > 0) {
    fleet = SpawnWorkers(workers, num_threads, connections + 1,
                         connections + 8);
    RouterOptions router_options;
    for (const WorkerProcess& worker : fleet) {
      router_options.workers.push_back(
          StrFormat("127.0.0.1:%u", worker.port));
    }
    router = std::make_unique<Router>(router_options);
    CPA_CHECK_OK(router->Start());
    handler = router.get();
  } else {
    ConsensusServerOptions server_options;
    server_options.sessions.num_threads = num_threads;
    server_options.sessions.max_sessions = connections + 1;
    server = std::make_unique<ConsensusServer>(server_options);
    handler = server.get();
  }

  TransportOptions transport_options;
  transport_options.max_connections = connections + 8;
  transport_options.io_threads = io_threads;
  std::unique_ptr<Transport> transport;
  if (event_loop) {
    transport =
        std::make_unique<EventLoopTransport>(*handler, transport_options);
  } else {
    transport = std::make_unique<TcpTransport>(*handler, transport_options);
  }
  CPA_CHECK_OK(transport->Start());

  std::vector<ClientStats> stats(connections);
  std::vector<std::thread> clients;
  clients.reserve(connections);
  std::atomic<bool> go{false};
  for (std::size_t s = 0; s < connections; ++s) {
    clients.emplace_back([&, s] {
      auto client = TcpFrameClient::Connect("127.0.0.1", transport->port());
      CPA_CHECK(client.ok()) << client.status().ToString();
      stats[s] = RunClient(std::move(client).value(),
                           StrFormat("stream-%zu", s), engine_config, dataset,
                           plans[s], binary, go);
    });
  }

  // Release the herd only once every connection is established, so the
  // measured window runs at full concurrency from its first request.
  TransportResult result;
  while (transport->num_connections() < connections) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  result.peak_connections = transport->num_connections();
  const Stopwatch wall;
  go.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();
  result.wall_s = wall.ElapsedSeconds();

  if (server != nullptr) {
    CPA_CHECK_EQ(server->sessions().num_sessions(), 0u);
  }
  for (ClientStats& client : stats) {
    result.answers += client.answers;
    result.observe_ms.insert(result.observe_ms.end(), client.observe_ms.begin(),
                             client.observe_ms.end());
    result.snapshot_ms.insert(result.snapshot_ms.end(),
                              client.snapshot_ms.begin(),
                              client.snapshot_ms.end());
    result.poll_ms.insert(result.poll_ms.end(), client.poll_ms.begin(),
                          client.poll_ms.end());
    result.final_predictions.push_back(std::move(client.final_predictions));
  }
  transport->Shutdown();
  result.stats = transport->stats();
  if (router != nullptr) {
    CPA_CHECK_EQ(router->frames_forwarded(), result.observe_ms.size() +
                                                 result.snapshot_ms.size() +
                                                 result.poll_ms.size() +
                                                 3 * connections);
    router->Shutdown();
  }
  JoinWorkers(fleet);
  return result;
}

/// Outcome of the pipelined-vs-ordered probe for one encoding.
struct ProbeResult {
  std::vector<double> ordered_poll_ms;    ///< unsequenced: queued behind refresh
  std::vector<double> pipelined_poll_ms;  ///< sequenced: fast-lane completion
  std::size_t ooo_responses = 0;  ///< polls answered before their refresh
  std::size_t rounds = 0;
  std::size_t polls_per_round = 0;
};

/// Measures what sequencing buys on the epoll transport: per round, one
/// client writes [1 refresh + K cached polls] as a single burst and times
/// every reply against the burst send. Unsequenced rounds serialize in
/// the legacy FIFO lane (each poll eats the refresh latency); sequenced
/// rounds let the polls complete out of order through the fast lane while
/// the refresh runs on the session lane.
ProbeResult RunPipelineProbe(bool binary, std::size_t rounds,
                             std::size_t polls, std::size_t num_threads,
                             std::size_t io_threads,
                             const EngineConfig& engine_config,
                             const Dataset& dataset, const BatchPlan& plan) {
  ConsensusServerOptions server_options;
  server_options.sessions.num_threads = num_threads;
  server_options.sessions.max_sessions = 4;
  ConsensusServer server(server_options);
  TransportOptions transport_options;
  transport_options.io_threads = io_threads;
  EventLoopTransport transport(server, transport_options);
  CPA_CHECK_OK(transport.Start());

  auto connected = TcpFrameClient::Connect("127.0.0.1", transport.port());
  CPA_CHECK(connected.ok()) << connected.status().ToString();
  TcpFrameClient client = std::move(connected).value();
  auto negotiated = client.NegotiateSequencing();
  CPA_CHECK(negotiated.ok()) << negotiated.status().ToString();
  CPA_CHECK(negotiated.value()) << "epoll transport must accept sequencing";

  const std::string session = "probe";
  Frame reply;
  JsonValue::Object open;
  open["op"] = JsonValue(std::string("open"));
  open["session"] = JsonValue(session);
  open["config"] = engine_config.ToJson();
  TimedRoundtrip(client, FrameKind::kJson,
                 JsonValue(std::move(open)).DumpCompact(), reply);
  CheckJsonOk(reply, "probe open");

  // Feed the first half of the stream as initial state and hold the rest
  // back, one slice per burst, so every refresh in every round has fresh
  // pending work (the server rejects duplicate (item, worker) answers, so
  // re-observing the same batch is not an option).
  std::vector<std::size_t> order;
  for (const auto& batch : plan.batches) {
    order.insert(order.end(), batch.begin(), batch.end());
  }
  std::vector<Answer> batch_answers;
  const auto feed = [&](std::size_t begin, std::size_t end) {
    if (begin >= end) return;
    batch_answers.clear();
    for (std::size_t i = begin; i < end; ++i) {
      batch_answers.push_back(dataset.answers.answer(order[i]));
    }
    Frame observe_reply;
    if (binary) {
      TimedRoundtrip(client, FrameKind::kBinary,
                     server::EncodeObserveRequest(session, batch_answers),
                     observe_reply);
      CheckBinaryOk(observe_reply, "probe observe");
    } else {
      TimedRoundtrip(client, FrameKind::kJson,
                     server::MakeObserveRequest(session, batch_answers),
                     observe_reply);
      CheckJsonOk(observe_reply, "probe observe");
    }
  };
  const std::size_t half = order.size() / 2;
  const std::size_t chunk =
      std::max<std::size_t>(1, (order.size() - half) / (2 * rounds));
  std::size_t next = half;
  feed(0, half);

  // Refresh carries the full prediction payload (the expensive op); the
  // polls are the cheapest read the protocol offers (cached, no
  // predictions) — the requests a pipelining client wants un-convoyed.
  const FrameKind kind = binary ? FrameKind::kBinary : FrameKind::kJson;
  const std::string refresh_payload =
      binary ? server::EncodeSnapshotRequest(session, /*refresh=*/true,
                                             /*include_predictions=*/true)
             : StrFormat("{\"op\":\"snapshot\",\"session\":\"%s\"}",
                         session.c_str());
  const std::string poll_payload =
      binary ? server::EncodeSnapshotRequest(session, /*refresh=*/false,
                                             /*include_predictions=*/false)
             : StrFormat("{\"op\":\"snapshot\",\"session\":\"%s\","
                         "\"refresh\":false,\"predictions\":false}",
                         session.c_str());

  const auto refeed = [&] {
    const std::size_t begin = next;
    next = std::min(order.size(), begin + chunk);
    feed(begin, next);
  };

  ProbeResult result;
  result.rounds = rounds;
  result.polls_per_round = polls;
  for (std::size_t round = 0; round < rounds; ++round) {
    // Ordered (legacy) round: unsequenced burst, strict FIFO replies.
    {
      refeed();
      std::string burst;
      server::AppendFrame(burst, kind, refresh_payload);
      for (std::size_t k = 0; k < polls; ++k) {
        server::AppendFrame(burst, kind, poll_payload);
      }
      const Stopwatch clock;
      CPA_CHECK_OK(client.SendRaw(burst));
      for (std::size_t k = 0; k < polls + 1; ++k) {
        auto read = client.ReadFrame();
        CPA_CHECK(read.ok()) << read.status().ToString();
        const double ms = clock.ElapsedMillis();
        CPA_CHECK(!read.value().sequenced);
        if (k > 0) result.ordered_poll_ms.push_back(ms);
      }
    }
    // Pipelined round: same burst, sequenced; replies matched by id.
    {
      refeed();
      std::string burst;
      server::AppendSequencedFrame(burst, kind, refresh_payload, 1);
      for (std::size_t k = 0; k < polls; ++k) {
        server::AppendSequencedFrame(burst, kind, poll_payload,
                                     static_cast<std::uint16_t>(2 + k));
      }
      std::vector<bool> seen(polls + 2, false);
      bool refresh_done = false;
      const Stopwatch clock;
      CPA_CHECK_OK(client.SendRaw(burst));
      for (std::size_t k = 0; k < polls + 1; ++k) {
        auto read = client.ReadFrame();
        CPA_CHECK(read.ok()) << read.status().ToString();
        const double ms = clock.ElapsedMillis();
        CPA_CHECK(read.value().sequenced);
        const std::uint16_t seq = read.value().sequence;
        CPA_CHECK(seq >= 1 && seq <= polls + 1 && !seen[seq])
            << "bad or duplicate sequence id " << seq;
        seen[seq] = true;
        if (seq == 1) {
          refresh_done = true;
        } else {
          result.pipelined_poll_ms.push_back(ms);
          if (!refresh_done) ++result.ooo_responses;
        }
      }
    }
  }

  TimedRoundtrip(
      client, FrameKind::kJson,
      StrFormat("{\"op\":\"close\",\"session\":\"%s\"}", session.c_str()),
      reply);
  CheckJsonOk(reply, "probe close");
  client.Close();
  transport.Shutdown();
  return result;
}

void PrintOpRow(const char* op, const std::vector<double>& ms) {
  std::printf("%-24s %10.3f %10.3f %10.3f\n", op, Percentile(ms, 0.5),
              Percentile(ms, 0.95), Percentile(ms, 0.99));
}

/// Adds one run's metrics under its prefix: `json_` / `binary_`
/// (thread-per-connection), `ep_json_` / `ep_binary_` (epoll), or
/// `w<N>_json_` / `w<N>_binary_` (router fleet).
void Report(bench::BenchReport& report, const std::string& prefix,
            const TransportResult& result) {
  const auto key = [&](const char* name) {
    return StrFormat("%s_%s", prefix.c_str(), name);
  };
  report.Add(key("wall"), result.wall_s, "s");
  report.Add(key("answers_per_s"),
             static_cast<double>(result.answers) / result.wall_s, "1/s");
  report.Add(key("peak_connections"),
             static_cast<double>(result.peak_connections), "count");
  report.Add(key("observe_p50"), Percentile(result.observe_ms, 0.5), "ms");
  report.Add(key("observe_p95"), Percentile(result.observe_ms, 0.95), "ms");
  report.Add(key("observe_p99"), Percentile(result.observe_ms, 0.99), "ms");
  report.Add(key("snapshot_p50"), Percentile(result.snapshot_ms, 0.5), "ms");
  report.Add(key("snapshot_p95"), Percentile(result.snapshot_ms, 0.95), "ms");
  report.Add(key("snapshot_p99"), Percentile(result.snapshot_ms, 0.99), "ms");
  report.Add(key("poll_p50"), Percentile(result.poll_ms, 0.5), "ms");
  report.Add(key("poll_p95"), Percentile(result.poll_ms, 0.95), "ms");
  report.Add(key("poll_p99"), Percentile(result.poll_ms, 0.99), "ms");
  // Syscall visibility: how well the transport batches the wire.
  const TransportStats& stats = result.stats;
  report.Add(key("frames_per_recv"),
             stats.recv_calls > 0
                 ? static_cast<double>(stats.frames_in) /
                       static_cast<double>(stats.recv_calls)
                 : 0.0,
             "frames");
  report.Add(key("partial_writes"),
             static_cast<double>(stats.partial_writes), "count");
  report.Add(key("wouldblock_events"),
             static_cast<double>(stats.wouldblock_events), "count");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv, 0.08);
  const auto flags = Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();
  // `--quick` shrinks the run to a CI smoke (the sanitizer jobs drive the
  // whole socket/frame/codec/epoll path through it on every PR).
  const bool quick = flags.value().GetBool("quick", false);
  std::size_t connections =
      static_cast<std::size_t>(flags.value().GetInt("connections", 100));
  const std::size_t num_threads =
      static_cast<std::size_t>(flags.value().GetInt("num-threads", 2));
  std::size_t batches =
      static_cast<std::size_t>(flags.value().GetInt("batches", 5));
  const std::size_t workers =
      static_cast<std::size_t>(flags.value().GetInt("workers", 2));
  const std::size_t io_threads =
      static_cast<std::size_t>(flags.value().GetInt("io-threads", 2));
  const std::string method = flags.value().GetString("method", "CPA-SVI");
  const std::string adversarial = flags.value().GetString("adversarial", "");
  CPA_CHECK_GE(io_threads, 1u);
  if (quick) {
    connections = std::min<std::size_t>(connections, 4);
    batches = std::min<std::size_t>(batches, 2);
    config.scale = std::min(config.scale, 0.05);
    config.cpa_iterations = std::min<std::size_t>(config.cpa_iterations, 4);
  }
  CPA_CHECK(connections >= 1 && batches >= 1);

  // The stream every client replays: the paper dataset under
  // session-specific shuffles (default), or one named cell of the
  // adversarial scenario matrix (`--adversarial`), where every client
  // replays the same hostile arrival plan.
  Dataset dataset;
  std::vector<BatchPlan> plans;
  std::string load_label = "replayed paper stream";
  if (!adversarial.empty()) {
    const std::vector<AdversarialScenario> matrix =
        StandardScenarioMatrix(config.seed, quick ? 0.25 : 1.0);
    const AdversarialScenario* scenario = nullptr;
    for (const AdversarialScenario& cell : matrix) {
      if (cell.name == adversarial) scenario = &cell;
    }
    if (scenario == nullptr) {
      std::fprintf(stderr, "unknown --adversarial scenario '%s'; one of:\n",
                   adversarial.c_str());
      for (const AdversarialScenario& cell : matrix) {
        std::fprintf(stderr, "  %s — %s\n", cell.name.c_str(),
                     cell.description.c_str());
      }
      return 1;
    }
    auto stream = GenerateAdversarialStream(scenario->config);
    CPA_CHECK_OK(stream.status());
    dataset = std::move(stream.value().dataset);
    plans.assign(connections, stream.value().plan);
    batches = plans[0].batches.size();
    load_label = StrFormat("adversarial '%s' stream (%.0f%% hostile)",
                           adversarial.c_str(),
                           100.0 * stream.value().AdversarialShare());
  } else {
    dataset = bench::LoadPaperDataset(PaperDatasetId::kTopic, config);
    plans.reserve(connections);
    for (std::size_t s = 0; s < connections; ++s) {
      Rng rng(config.seed + s);
      plans.push_back(MakeArrivalSchedule(dataset.answers, batches, rng));
    }
  }

  bench::PrintHeader(
      "Fig 11 (extension) — TCP server throughput and tail latency",
      StrFormat("%zu concurrent %s streams per run (thread-per-conn + epoll "
                "× json, binary) over framed TCP, %s, sweeps on one shared "
                "%zu-thread pool%s",
                connections, method.c_str(), load_label.c_str(), num_threads,
                workers > 0
                    ? StrFormat(", plus a router over %zu forked workers",
                                workers)
                          .c_str()
                    : ""),
      config);

  EngineConfig engine_config = EngineConfig::ForDataset(method, dataset);
  engine_config.cpa.max_iterations = config.cpa_iterations;

  // The transport_loop × encoding axis (plus the fleet runs — those keep
  // the thread front; router-over-epoll is covered by the unit tests).
  // Worker count 0 is the single-process server.
  struct Run {
    std::string label;   ///< report key prefix
    std::size_t workers;
    bool binary;
    bool event_loop;
    TransportResult result;
  };
  std::vector<Run> runs;
  runs.push_back({"json", 0, false, false, {}});
  runs.push_back({"binary", 0, true, false, {}});
  runs.push_back({"ep_json", 0, false, true, {}});
  runs.push_back({"ep_binary", 0, true, true, {}});
  if (workers > 0) {
    runs.push_back({StrFormat("w%zu_json", workers), workers, false, false,
                    {}});
    runs.push_back({StrFormat("w%zu_binary", workers), workers, true, false,
                    {}});
  }
  for (Run& run : runs) {
    run.result = RunTransport(run.binary, run.event_loop, connections,
                              num_threads, io_threads, run.workers,
                              engine_config, dataset, plans);
  }

  // Neither the transport encoding, the event loop, nor the deployment
  // shape may change the consensus: same stream → same predictions.
  for (std::size_t r = 1; r < runs.size(); ++r) {
    CPA_CHECK_EQ(runs[0].result.final_predictions.size(),
                 runs[r].result.final_predictions.size());
    for (std::size_t s = 0; s < runs[0].result.final_predictions.size(); ++s) {
      CPA_CHECK(runs[0].result.final_predictions[s] ==
                runs[r].result.final_predictions[s])
          << "session " << s << ": runs json and " << runs[r].label
          << " disagree";
    }
  }

  // Pipelining probe, one per encoding, epoll only (the thread transport
  // has no out-of-order completion to measure).
  const std::size_t probe_rounds = quick ? 2 : 5;
  const std::size_t probe_polls = quick ? 6 : 24;
  ProbeResult probes[2];
  probes[0] = RunPipelineProbe(/*binary=*/false, probe_rounds, probe_polls,
                               num_threads, io_threads, engine_config,
                               dataset, plans[0]);
  probes[1] = RunPipelineProbe(/*binary=*/true, probe_rounds, probe_polls,
                               num_threads, io_threads, engine_config,
                               dataset, plans[0]);

  const auto rate = [](const TransportResult& result) {
    return static_cast<double>(result.answers) / result.wall_s;
  };
  for (const Run& run : runs) {
    std::printf("\n-- %s: %zu connections, %zu answers, %.2fs --\n",
                run.label.c_str(), connections, run.result.answers,
                run.result.wall_s);
    std::printf("%-24s %10s %10s %10s\n", "op (ms)", "p50", "p95", "p99");
    PrintOpRow("observe", run.result.observe_ms);
    PrintOpRow("snapshot (refresh)", run.result.snapshot_ms);
    PrintOpRow("poll (cached)", run.result.poll_ms);
    std::printf("%-24s %10.0f\n", "answers/s", rate(run.result));
    const TransportStats& ts = run.result.stats;
    std::printf("%-24s %10.1f %10llu %10llu\n", "frames/recv, partial, eagain",
                ts.recv_calls > 0 ? static_cast<double>(ts.frames_in) /
                                        static_cast<double>(ts.recv_calls)
                                  : 0.0,
                static_cast<unsigned long long>(ts.partial_writes),
                static_cast<unsigned long long>(ts.wouldblock_events));
  }
  std::printf("\nbinary vs json answers/s: %.2fx\n",
              rate(runs[1].result) / rate(runs[0].result));
  std::printf("epoll vs thread-per-conn answers/s (binary): %.2fx\n",
              rate(runs[3].result) / rate(runs[1].result));
  if (workers > 0) {
    std::printf("router (%zu workers) vs single binary answers/s: %.2fx\n",
                workers, rate(runs[5].result) / rate(runs[1].result));
  }
  for (int p = 0; p < 2; ++p) {
    const char* enc = p == 0 ? "json" : "binary";
    std::printf("pipelining (%s): poll p99 %.3fms ordered → %.3fms "
                "sequenced, %zu/%zu polls overtook their refresh\n",
                enc, Percentile(probes[p].ordered_poll_ms, 0.99),
                Percentile(probes[p].pipelined_poll_ms, 0.99),
                probes[p].ooo_responses,
                probes[p].rounds * probes[p].polls_per_round);
  }

  bench::BenchReport report("fig11_server_throughput", config);
  report.Add("connections", static_cast<double>(connections), "count");
  report.Add("shared_pool_threads", static_cast<double>(num_threads), "count");
  report.Add("io_threads", static_cast<double>(io_threads), "count");
  report.Add("batches_per_session", static_cast<double>(batches), "count");
  report.Add("router_workers", static_cast<double>(workers), "count");
  report.Add("adversarial", adversarial.empty() ? 0.0 : 1.0, "bool");
  report.Add("answers_per_transport",
             static_cast<double>(runs[0].result.answers), "count");
  for (const Run& run : runs) Report(report, run.label, run.result);
  report.Add("binary_speedup_answers_per_s",
             rate(runs[1].result) / rate(runs[0].result), "x");
  report.Add("epoll_vs_thread_answers_per_s",
             rate(runs[3].result) / rate(runs[1].result), "x");
  if (workers > 0) {
    report.Add("router_binary_speedup_answers_per_s",
               rate(runs[5].result) / rate(runs[1].result), "x");
  }
  for (int p = 0; p < 2; ++p) {
    const std::string prefix = p == 0 ? "ep_json" : "ep_binary";
    const auto key = [&](const char* name) {
      return StrFormat("%s_%s", prefix.c_str(), name);
    };
    report.Add(key("ordered_poll_p50"),
               Percentile(probes[p].ordered_poll_ms, 0.5), "ms");
    report.Add(key("ordered_poll_p99"),
               Percentile(probes[p].ordered_poll_ms, 0.99), "ms");
    report.Add(key("pipelined_poll_p50"),
               Percentile(probes[p].pipelined_poll_ms, 0.5), "ms");
    report.Add(key("pipelined_poll_p99"),
               Percentile(probes[p].pipelined_poll_ms, 0.99), "ms");
    report.Add(key("ooo_responses"),
               static_cast<double>(probes[p].ooo_responses), "count");
  }
  CPA_CHECK_OK(report.Write());
  return 0;
}
