/// Fig 11 (repo extension, no paper counterpart): multi-session server
/// throughput and tail latency over the real TCP transport. N concurrent
/// client connections — each its own socket, session, and thread — drive
/// one in-process `TcpTransport` through the length-prefixed frame
/// protocol, once per transport encoding (config axis: connections ×
/// transport): every client opens its session (JSON frame), streams its
/// batches, pulls a refresh snapshot and a cached poll per batch (both
/// with the full prediction payload — serialization of large prediction
/// payloads is the CPU sink this bench exists to watch), finalizes and
/// closes, while all sessions' sweep work shares one `ServerScheduler`
/// pool. Reports answers/s plus p50/p95/p99 latency per op per transport
/// into `BENCH_fig11_server_throughput.json`, and asserts the two
/// transports produced identical final predictions for every session.
///
///   $ fig11_server_throughput                  # 100 connections, both transports
///   $ fig11_server_throughput --connections 200 --num-threads 4 --method MV
///   $ fig11_server_throughput --workers 4      # plus a 4-worker router run
///
/// `--method MV` (or any offline method) makes every refresh snapshot a
/// refit on the data so far — the worst-case polling load; the default
/// CPA-SVI pays one incremental step per batch.
///
/// With `--workers N` (default 2, `--workers 0` disables) the bench also
/// measures the sharded deployment: N real `fork()`ed worker processes,
/// each a full server + TCP listener, behind an in-process `Router` and a
/// front listener — the `cpa_server --router` topology, clients untouched.
/// Workers are forked before any thread exists in the run (TSan-clean),
/// hand their port back over a pipe, and exit on control-pipe EOF. Those
/// runs report under `w<N>_<transport>_*` keys; the single-process runs
/// keep their `<transport>_*` keys, so the axis is workers × transport.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/binary_codec.h"
#include "server/consensus_server.h"
#include "server/protocol.h"
#include "server/router.h"
#include "server/tcp_client.h"
#include "server/tcp_transport.h"
#include "simulation/perturbations.h"
#include "util/json.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"

using namespace cpa;

namespace {

using server::BinaryResponse;
using server::Frame;
using server::FrameKind;
using server::TcpFrameClient;

/// Asserts a JSON response frame parses and carries `"ok":true`.
void CheckJsonOk(const Frame& frame, const char* what) {
  CPA_CHECK(frame.kind == FrameKind::kJson) << what;
  const auto parsed = JsonValue::Parse(frame.payload);
  CPA_CHECK(parsed.ok()) << what << ": " << frame.payload;
  const JsonValue* ok = parsed.value().Find("ok");
  CPA_CHECK(ok != nullptr && ok->bool_value()) << what << ": " << frame.payload;
}

/// Decodes a binary response frame and asserts it is not an error reply.
BinaryResponse CheckBinaryOk(const Frame& frame, const char* what) {
  CPA_CHECK(frame.kind == FrameKind::kBinary) << what;
  auto decoded = server::DecodeBinaryResponse(frame.payload);
  CPA_CHECK(decoded.ok()) << what << ": " << decoded.status().ToString();
  CPA_CHECK(decoded.value().ok) << what << ": "
                                << decoded.value().error.ToString();
  return std::move(decoded).value();
}

/// One roundtrip, timed. The reply frame lands in `reply`.
double TimedRoundtrip(TcpFrameClient& client, FrameKind kind,
                      std::string_view payload, Frame& reply) {
  const Stopwatch stopwatch;
  auto result = client.Roundtrip(kind, payload);
  const double ms = stopwatch.ElapsedMillis();
  CPA_CHECK(result.ok()) << result.status().ToString();
  reply = std::move(result).value();
  return ms;
}

struct ClientStats {
  std::size_t answers = 0;
  std::vector<double> observe_ms;
  std::vector<double> snapshot_ms;  ///< refresh snapshots, with predictions
  std::vector<double> poll_ms;      ///< cached polls, with predictions
  std::vector<LabelSet> final_predictions;
};

/// Extracts the predictions array of a JSON snapshot/finalize response.
std::vector<LabelSet> JsonPredictions(const Frame& frame) {
  const auto parsed = JsonValue::Parse(frame.payload);
  CPA_CHECK(parsed.ok());
  const JsonValue* rows = parsed.value().Find("predictions");
  CPA_CHECK(rows != nullptr);
  std::vector<LabelSet> predictions;
  predictions.reserve(rows->array().size());
  for (const JsonValue& row : rows->array()) {
    std::vector<LabelId> labels;
    labels.reserve(row.array().size());
    for (const JsonValue& label : row.array()) {
      labels.push_back(static_cast<LabelId>(label.number_value()));
    }
    predictions.push_back(LabelSet::FromUnsorted(std::move(labels)));
  }
  return predictions;
}

/// One synthetic stream over one real TCP connection: open → (observe +
/// snapshot + poll) per batch → finalize → close. `binary` routes the hot
/// ops through the binary codec; control ops are JSON frames either way.
ClientStats RunClient(TcpFrameClient client, const std::string& session,
                      const EngineConfig& config, const Dataset& dataset,
                      const BatchPlan& plan, bool binary,
                      const std::atomic<bool>& go) {
  ClientStats stats;
  Frame reply;

  JsonValue::Object open;
  open["op"] = JsonValue(std::string("open"));
  open["session"] = JsonValue(session);
  open["config"] = config.ToJson();
  auto opened = client.Roundtrip(FrameKind::kJson,
                                 JsonValue(std::move(open)).DumpCompact());
  CPA_CHECK(opened.ok()) << opened.status().ToString();
  CheckJsonOk(opened.value(), "open");

  // Hold here until every client is connected — the bench measures the
  // server under its full concurrent-connection load, not a ramp.
  while (!go.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<Answer> batch_answers;
  for (const auto& batch : plan.batches) {
    batch_answers.clear();
    batch_answers.reserve(batch.size());
    for (std::size_t index : batch) {
      batch_answers.push_back(dataset.answers.answer(index));
    }
    if (binary) {
      stats.observe_ms.push_back(TimedRoundtrip(
          client, FrameKind::kBinary,
          server::EncodeObserveRequest(session, batch_answers), reply));
      CheckBinaryOk(reply, "observe");
      stats.snapshot_ms.push_back(TimedRoundtrip(
          client, FrameKind::kBinary,
          server::EncodeSnapshotRequest(session, /*refresh=*/true,
                                        /*include_predictions=*/true),
          reply));
      CheckBinaryOk(reply, "snapshot");
      stats.poll_ms.push_back(TimedRoundtrip(
          client, FrameKind::kBinary,
          server::EncodeSnapshotRequest(session, /*refresh=*/false,
                                        /*include_predictions=*/true),
          reply));
      CheckBinaryOk(reply, "poll");
    } else {
      stats.observe_ms.push_back(
          TimedRoundtrip(client, FrameKind::kJson,
                         server::MakeObserveRequest(session, batch_answers),
                         reply));
      CheckJsonOk(reply, "observe");
      stats.snapshot_ms.push_back(TimedRoundtrip(
          client, FrameKind::kJson,
          StrFormat("{\"op\":\"snapshot\",\"session\":\"%s\"}", session.c_str()),
          reply));
      CheckJsonOk(reply, "snapshot");
      stats.poll_ms.push_back(TimedRoundtrip(
          client, FrameKind::kJson,
          StrFormat("{\"op\":\"snapshot\",\"session\":\"%s\","
                    "\"refresh\":false}",
                    session.c_str()),
          reply));
      CheckJsonOk(reply, "poll");
    }
    stats.answers += batch.size();
  }

  if (binary) {
    auto finalized = client.Roundtrip(
        FrameKind::kBinary, server::EncodeFinalizeRequest(session, true));
    CPA_CHECK(finalized.ok()) << finalized.status().ToString();
    stats.final_predictions =
        CheckBinaryOk(finalized.value(), "finalize").predictions;
  } else {
    auto finalized = client.Roundtrip(
        FrameKind::kJson,
        StrFormat("{\"op\":\"finalize\",\"session\":\"%s\"}", session.c_str()));
    CPA_CHECK(finalized.ok()) << finalized.status().ToString();
    CheckJsonOk(finalized.value(), "finalize");
    stats.final_predictions = JsonPredictions(finalized.value());
  }

  auto closed = client.Roundtrip(
      FrameKind::kJson,
      StrFormat("{\"op\":\"close\",\"session\":\"%s\"}", session.c_str()));
  CPA_CHECK(closed.ok()) << closed.status().ToString();
  CheckJsonOk(closed.value(), "close");
  return stats;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

/// Aggregated outcome of one transport's run.
struct TransportResult {
  double wall_s = 0.0;
  std::size_t answers = 0;
  std::size_t peak_connections = 0;
  std::vector<double> observe_ms;
  std::vector<double> snapshot_ms;
  std::vector<double> poll_ms;
  std::vector<std::vector<LabelSet>> final_predictions;  ///< per session
};

/// One forked fleet worker as seen by the parent.
struct WorkerProcess {
  pid_t pid = -1;
  int control_fd = -1;  ///< write end; closing it tells the worker to exit
  std::uint32_t port = 0;
};

/// Child-process body of one fleet worker: a full server + TCP listener,
/// port reported over `port_fd`, serving until `control_fd` hits EOF —
/// exactly what a `cpa_server --tcp` process does, minus flag parsing.
void WorkerMain(int port_fd, int control_fd, std::size_t num_threads,
                std::size_t max_sessions, std::size_t max_connections) {
  ConsensusServerOptions options;
  options.sessions.num_threads = num_threads;
  options.sessions.max_sessions = max_sessions;
  ConsensusServer server(options);
  TcpTransportOptions tcp_options;
  tcp_options.max_connections = max_connections;
  TcpTransport transport(server, tcp_options);
  CPA_CHECK_OK(transport.Start());
  const std::uint32_t port = transport.port();
  CPA_CHECK_EQ(::write(port_fd, &port, sizeof(port)),
               static_cast<ssize_t>(sizeof(port)));
  ::close(port_fd);
  char byte = 0;
  while (::read(control_fd, &byte, 1) > 0) {
  }
  ::close(control_fd);
  transport.Shutdown();
}

/// Forks `count` workers. MUST run before the parent spawns any thread
/// (fork duplicates only the calling thread; a forked lock holder would
/// deadlock the child, and TSan rejects multi-threaded forks outright).
std::vector<WorkerProcess> SpawnWorkers(std::size_t count,
                                        std::size_t num_threads,
                                        std::size_t max_sessions,
                                        std::size_t max_connections) {
  std::vector<WorkerProcess> fleet;
  fleet.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    int port_pipe[2];
    int control_pipe[2];
    CPA_CHECK_EQ(::pipe(port_pipe), 0);
    CPA_CHECK_EQ(::pipe(control_pipe), 0);
    const pid_t pid = ::fork();
    CPA_CHECK_GE(pid, 0);
    if (pid == 0) {
      ::close(port_pipe[0]);
      ::close(control_pipe[1]);
      // Drop inherited write ends of the siblings' control pipes, or
      // their EOFs never arrive.
      for (const WorkerProcess& sibling : fleet) ::close(sibling.control_fd);
      WorkerMain(port_pipe[1], control_pipe[0], num_threads, max_sessions,
                 max_connections);
      ::_exit(0);
    }
    ::close(port_pipe[1]);
    ::close(control_pipe[0]);
    WorkerProcess worker;
    worker.pid = pid;
    worker.control_fd = control_pipe[1];
    CPA_CHECK_EQ(::read(port_pipe[0], &worker.port, sizeof(worker.port)),
                 static_cast<ssize_t>(sizeof(worker.port)));
    ::close(port_pipe[0]);
    fleet.push_back(worker);
  }
  return fleet;
}

/// Control-pipe EOF → worker drains and exits; reap every pid.
void JoinWorkers(std::vector<WorkerProcess>& fleet) {
  for (WorkerProcess& worker : fleet) ::close(worker.control_fd);
  for (WorkerProcess& worker : fleet) {
    int status = 0;
    CPA_CHECK_EQ(::waitpid(worker.pid, &status, 0), worker.pid);
    CPA_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "worker " << worker.pid << " died uncleanly";
  }
  fleet.clear();
}

/// Spins up a front listener — over an in-process server (`workers == 0`)
/// or a router across `workers` forked worker processes — and drives
/// `connections` concurrent client threads through it in the given
/// encoding.
TransportResult RunTransport(bool binary, std::size_t connections,
                             std::size_t num_threads, std::size_t workers,
                             const EngineConfig& engine_config,
                             const Dataset& dataset,
                             const std::vector<BatchPlan>& plans) {
  // Fork the fleet before the router/transport/client threads exist.
  std::vector<WorkerProcess> fleet;
  std::unique_ptr<ConsensusServer> server;
  std::unique_ptr<Router> router;
  FrameHandler* handler = nullptr;
  if (workers > 0) {
    fleet = SpawnWorkers(workers, num_threads, connections + 1,
                         connections + 8);
    RouterOptions router_options;
    for (const WorkerProcess& worker : fleet) {
      router_options.workers.push_back(
          StrFormat("127.0.0.1:%u", worker.port));
    }
    router = std::make_unique<Router>(router_options);
    CPA_CHECK_OK(router->Start());
    handler = router.get();
  } else {
    ConsensusServerOptions server_options;
    server_options.sessions.num_threads = num_threads;
    server_options.sessions.max_sessions = connections + 1;
    server = std::make_unique<ConsensusServer>(server_options);
    handler = server.get();
  }

  TcpTransportOptions tcp_options;
  tcp_options.max_connections = connections + 8;
  TcpTransport transport(*handler, tcp_options);
  CPA_CHECK_OK(transport.Start());

  std::vector<ClientStats> stats(connections);
  std::vector<std::thread> clients;
  clients.reserve(connections);
  std::atomic<bool> go{false};
  for (std::size_t s = 0; s < connections; ++s) {
    clients.emplace_back([&, s] {
      auto client = TcpFrameClient::Connect("127.0.0.1", transport.port());
      CPA_CHECK(client.ok()) << client.status().ToString();
      stats[s] = RunClient(std::move(client).value(),
                           StrFormat("stream-%zu", s), engine_config, dataset,
                           plans[s], binary, go);
    });
  }

  // Release the herd only once every connection is established, so the
  // measured window runs at full concurrency from its first request.
  TransportResult result;
  while (transport.num_connections() < connections) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  result.peak_connections = transport.num_connections();
  const Stopwatch wall;
  go.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();
  result.wall_s = wall.ElapsedSeconds();

  if (server != nullptr) {
    CPA_CHECK_EQ(server->sessions().num_sessions(), 0u);
  }
  for (ClientStats& client : stats) {
    result.answers += client.answers;
    result.observe_ms.insert(result.observe_ms.end(), client.observe_ms.begin(),
                             client.observe_ms.end());
    result.snapshot_ms.insert(result.snapshot_ms.end(),
                              client.snapshot_ms.begin(),
                              client.snapshot_ms.end());
    result.poll_ms.insert(result.poll_ms.end(), client.poll_ms.begin(),
                          client.poll_ms.end());
    result.final_predictions.push_back(std::move(client.final_predictions));
  }
  transport.Shutdown();
  if (router != nullptr) {
    CPA_CHECK_EQ(router->frames_forwarded(), result.observe_ms.size() +
                                                 result.snapshot_ms.size() +
                                                 result.poll_ms.size() +
                                                 3 * connections);
    router->Shutdown();
  }
  JoinWorkers(fleet);
  return result;
}

void PrintOpRow(const char* op, const std::vector<double>& ms) {
  std::printf("%-24s %10.3f %10.3f %10.3f\n", op, Percentile(ms, 0.5),
              Percentile(ms, 0.95), Percentile(ms, 0.99));
}

/// Adds one run's metrics under a `json_` / `binary_` (single-process) or
/// `w<N>_json_` / `w<N>_binary_` (router fleet) prefix.
void Report(bench::BenchReport& report, const std::string& prefix,
            const TransportResult& result) {
  const auto key = [&](const char* name) {
    return StrFormat("%s_%s", prefix.c_str(), name);
  };
  report.Add(key("wall"), result.wall_s, "s");
  report.Add(key("answers_per_s"),
             static_cast<double>(result.answers) / result.wall_s, "1/s");
  report.Add(key("peak_connections"),
             static_cast<double>(result.peak_connections), "count");
  report.Add(key("observe_p50"), Percentile(result.observe_ms, 0.5), "ms");
  report.Add(key("observe_p95"), Percentile(result.observe_ms, 0.95), "ms");
  report.Add(key("observe_p99"), Percentile(result.observe_ms, 0.99), "ms");
  report.Add(key("snapshot_p50"), Percentile(result.snapshot_ms, 0.5), "ms");
  report.Add(key("snapshot_p95"), Percentile(result.snapshot_ms, 0.95), "ms");
  report.Add(key("snapshot_p99"), Percentile(result.snapshot_ms, 0.99), "ms");
  report.Add(key("poll_p50"), Percentile(result.poll_ms, 0.5), "ms");
  report.Add(key("poll_p95"), Percentile(result.poll_ms, 0.95), "ms");
  report.Add(key("poll_p99"), Percentile(result.poll_ms, 0.99), "ms");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv, 0.08);
  const auto flags = Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();
  // `--quick` shrinks the run to a CI smoke (the sanitizer jobs drive the
  // whole socket/frame/codec path through it on every PR).
  const bool quick = flags.value().GetBool("quick", false);
  std::size_t connections =
      static_cast<std::size_t>(flags.value().GetInt("connections", 100));
  const std::size_t num_threads =
      static_cast<std::size_t>(flags.value().GetInt("num-threads", 2));
  std::size_t batches =
      static_cast<std::size_t>(flags.value().GetInt("batches", 5));
  const std::size_t workers =
      static_cast<std::size_t>(flags.value().GetInt("workers", 2));
  const std::string method = flags.value().GetString("method", "CPA-SVI");
  if (quick) {
    connections = std::min<std::size_t>(connections, 4);
    batches = std::min<std::size_t>(batches, 2);
    config.scale = std::min(config.scale, 0.05);
    config.cpa_iterations = std::min<std::size_t>(config.cpa_iterations, 4);
  }
  CPA_CHECK(connections >= 1 && batches >= 1);

  bench::PrintHeader(
      "Fig 11 (extension) — TCP server throughput and tail latency",
      StrFormat("%zu concurrent %s streams per transport (json, binary) over "
                "framed TCP, sweeps on one shared %zu-thread pool%s",
                connections, method.c_str(), num_threads,
                workers > 0
                    ? StrFormat(", plus a router over %zu forked workers",
                                workers)
                          .c_str()
                    : ""),
      config);

  const Dataset dataset = bench::LoadPaperDataset(PaperDatasetId::kTopic, config);
  EngineConfig engine_config = EngineConfig::ForDataset(method, dataset);
  engine_config.cpa.max_iterations = config.cpa_iterations;

  // Every client streams the same answers in a session-specific arrival
  // order (distinct shuffles — the load, not the fit, is the subject).
  // The two transports replay identical plans, so their final
  // predictions must agree session for session.
  std::vector<BatchPlan> plans;
  plans.reserve(connections);
  for (std::size_t s = 0; s < connections; ++s) {
    Rng rng(config.seed + s);
    plans.push_back(MakeArrivalSchedule(dataset.answers, batches, rng));
  }

  // The workers × transport axis. Worker count 0 is the single-process
  // server; the fleet runs fork real worker processes behind a router.
  struct Run {
    std::string label;   ///< report key prefix
    std::size_t workers;
    bool binary;
    TransportResult result;
  };
  std::vector<Run> runs;
  runs.push_back({"json", 0, false, {}});
  runs.push_back({"binary", 0, true, {}});
  if (workers > 0) {
    runs.push_back({StrFormat("w%zu_json", workers), workers, false, {}});
    runs.push_back({StrFormat("w%zu_binary", workers), workers, true, {}});
  }
  for (Run& run : runs) {
    run.result = RunTransport(run.binary, connections, num_threads,
                              run.workers, engine_config, dataset, plans);
  }

  // Neither the transport encoding nor the deployment shape may change
  // the consensus: same stream → same predictions, all four runs.
  for (std::size_t r = 1; r < runs.size(); ++r) {
    CPA_CHECK_EQ(runs[0].result.final_predictions.size(),
                 runs[r].result.final_predictions.size());
    for (std::size_t s = 0; s < runs[0].result.final_predictions.size(); ++s) {
      CPA_CHECK(runs[0].result.final_predictions[s] ==
                runs[r].result.final_predictions[s])
          << "session " << s << ": runs json and " << runs[r].label
          << " disagree";
    }
  }

  const auto rate = [](const TransportResult& result) {
    return static_cast<double>(result.answers) / result.wall_s;
  };
  for (const Run& run : runs) {
    std::printf("\n-- %s: %zu connections, %zu answers, %.2fs --\n",
                run.label.c_str(), connections, run.result.answers,
                run.result.wall_s);
    std::printf("%-24s %10s %10s %10s\n", "op (ms)", "p50", "p95", "p99");
    PrintOpRow("observe", run.result.observe_ms);
    PrintOpRow("snapshot (refresh)", run.result.snapshot_ms);
    PrintOpRow("poll (cached)", run.result.poll_ms);
    std::printf("%-24s %10.0f\n", "answers/s", rate(run.result));
  }
  std::printf("\nbinary vs json answers/s: %.2fx\n",
              rate(runs[1].result) / rate(runs[0].result));
  if (workers > 0) {
    std::printf("router (%zu workers) vs single binary answers/s: %.2fx\n",
                workers, rate(runs[3].result) / rate(runs[1].result));
  }

  bench::BenchReport report("fig11_server_throughput", config);
  report.Add("connections", static_cast<double>(connections), "count");
  report.Add("shared_pool_threads", static_cast<double>(num_threads), "count");
  report.Add("batches_per_session", static_cast<double>(batches), "count");
  report.Add("router_workers", static_cast<double>(workers), "count");
  report.Add("answers_per_transport",
             static_cast<double>(runs[0].result.answers), "count");
  for (const Run& run : runs) Report(report, run.label, run.result);
  report.Add("binary_speedup_answers_per_s",
             rate(runs[1].result) / rate(runs[0].result), "x");
  if (workers > 0) {
    report.Add("router_binary_speedup_answers_per_s",
               rate(runs[3].result) / rate(runs[1].result), "x");
  }
  CPA_CHECK_OK(report.Write());
  return 0;
}
