/// Fig 11 (repo extension, no paper counterpart): multi-session server
/// throughput and tail latency over the real TCP transport. N concurrent
/// client connections — each its own socket, session, and thread — drive
/// one in-process `TcpTransport` through the length-prefixed frame
/// protocol, once per transport encoding (config axis: connections ×
/// transport): every client opens its session (JSON frame), streams its
/// batches, pulls a refresh snapshot and a cached poll per batch (both
/// with the full prediction payload — serialization of large prediction
/// payloads is the CPU sink this bench exists to watch), finalizes and
/// closes, while all sessions' sweep work shares one `ServerScheduler`
/// pool. Reports answers/s plus p50/p95/p99 latency per op per transport
/// into `BENCH_fig11_server_throughput.json`, and asserts the two
/// transports produced identical final predictions for every session.
///
///   $ fig11_server_throughput                  # 100 connections, both transports
///   $ fig11_server_throughput --connections 200 --num-threads 4 --method MV
///
/// `--method MV` (or any offline method) makes every refresh snapshot a
/// refit on the data so far — the worst-case polling load; the default
/// CPA-SVI pays one incremental step per batch.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/binary_codec.h"
#include "server/consensus_server.h"
#include "server/protocol.h"
#include "server/tcp_client.h"
#include "server/tcp_transport.h"
#include "simulation/perturbations.h"
#include "util/json.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"

using namespace cpa;

namespace {

using server::BinaryResponse;
using server::Frame;
using server::FrameKind;
using server::TcpFrameClient;

/// Asserts a JSON response frame parses and carries `"ok":true`.
void CheckJsonOk(const Frame& frame, const char* what) {
  CPA_CHECK(frame.kind == FrameKind::kJson) << what;
  const auto parsed = JsonValue::Parse(frame.payload);
  CPA_CHECK(parsed.ok()) << what << ": " << frame.payload;
  const JsonValue* ok = parsed.value().Find("ok");
  CPA_CHECK(ok != nullptr && ok->bool_value()) << what << ": " << frame.payload;
}

/// Decodes a binary response frame and asserts it is not an error reply.
BinaryResponse CheckBinaryOk(const Frame& frame, const char* what) {
  CPA_CHECK(frame.kind == FrameKind::kBinary) << what;
  auto decoded = server::DecodeBinaryResponse(frame.payload);
  CPA_CHECK(decoded.ok()) << what << ": " << decoded.status().ToString();
  CPA_CHECK(decoded.value().ok) << what << ": "
                                << decoded.value().error.ToString();
  return std::move(decoded).value();
}

/// One roundtrip, timed. The reply frame lands in `reply`.
double TimedRoundtrip(TcpFrameClient& client, FrameKind kind,
                      std::string_view payload, Frame& reply) {
  const Stopwatch stopwatch;
  auto result = client.Roundtrip(kind, payload);
  const double ms = stopwatch.ElapsedMillis();
  CPA_CHECK(result.ok()) << result.status().ToString();
  reply = std::move(result).value();
  return ms;
}

struct ClientStats {
  std::size_t answers = 0;
  std::vector<double> observe_ms;
  std::vector<double> snapshot_ms;  ///< refresh snapshots, with predictions
  std::vector<double> poll_ms;      ///< cached polls, with predictions
  std::vector<LabelSet> final_predictions;
};

/// Extracts the predictions array of a JSON snapshot/finalize response.
std::vector<LabelSet> JsonPredictions(const Frame& frame) {
  const auto parsed = JsonValue::Parse(frame.payload);
  CPA_CHECK(parsed.ok());
  const JsonValue* rows = parsed.value().Find("predictions");
  CPA_CHECK(rows != nullptr);
  std::vector<LabelSet> predictions;
  predictions.reserve(rows->array().size());
  for (const JsonValue& row : rows->array()) {
    std::vector<LabelId> labels;
    labels.reserve(row.array().size());
    for (const JsonValue& label : row.array()) {
      labels.push_back(static_cast<LabelId>(label.number_value()));
    }
    predictions.push_back(LabelSet::FromUnsorted(std::move(labels)));
  }
  return predictions;
}

/// One synthetic stream over one real TCP connection: open → (observe +
/// snapshot + poll) per batch → finalize → close. `binary` routes the hot
/// ops through the binary codec; control ops are JSON frames either way.
ClientStats RunClient(TcpFrameClient client, const std::string& session,
                      const EngineConfig& config, const Dataset& dataset,
                      const BatchPlan& plan, bool binary,
                      const std::atomic<bool>& go) {
  ClientStats stats;
  Frame reply;

  JsonValue::Object open;
  open["op"] = JsonValue(std::string("open"));
  open["session"] = JsonValue(session);
  open["config"] = config.ToJson();
  auto opened = client.Roundtrip(FrameKind::kJson,
                                 JsonValue(std::move(open)).DumpCompact());
  CPA_CHECK(opened.ok()) << opened.status().ToString();
  CheckJsonOk(opened.value(), "open");

  // Hold here until every client is connected — the bench measures the
  // server under its full concurrent-connection load, not a ramp.
  while (!go.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<Answer> batch_answers;
  for (const auto& batch : plan.batches) {
    batch_answers.clear();
    batch_answers.reserve(batch.size());
    for (std::size_t index : batch) {
      batch_answers.push_back(dataset.answers.answer(index));
    }
    if (binary) {
      stats.observe_ms.push_back(TimedRoundtrip(
          client, FrameKind::kBinary,
          server::EncodeObserveRequest(session, batch_answers), reply));
      CheckBinaryOk(reply, "observe");
      stats.snapshot_ms.push_back(TimedRoundtrip(
          client, FrameKind::kBinary,
          server::EncodeSnapshotRequest(session, /*refresh=*/true,
                                        /*include_predictions=*/true),
          reply));
      CheckBinaryOk(reply, "snapshot");
      stats.poll_ms.push_back(TimedRoundtrip(
          client, FrameKind::kBinary,
          server::EncodeSnapshotRequest(session, /*refresh=*/false,
                                        /*include_predictions=*/true),
          reply));
      CheckBinaryOk(reply, "poll");
    } else {
      stats.observe_ms.push_back(
          TimedRoundtrip(client, FrameKind::kJson,
                         server::MakeObserveRequest(session, batch_answers),
                         reply));
      CheckJsonOk(reply, "observe");
      stats.snapshot_ms.push_back(TimedRoundtrip(
          client, FrameKind::kJson,
          StrFormat("{\"op\":\"snapshot\",\"session\":\"%s\"}", session.c_str()),
          reply));
      CheckJsonOk(reply, "snapshot");
      stats.poll_ms.push_back(TimedRoundtrip(
          client, FrameKind::kJson,
          StrFormat("{\"op\":\"snapshot\",\"session\":\"%s\","
                    "\"refresh\":false}",
                    session.c_str()),
          reply));
      CheckJsonOk(reply, "poll");
    }
    stats.answers += batch.size();
  }

  if (binary) {
    auto finalized = client.Roundtrip(
        FrameKind::kBinary, server::EncodeFinalizeRequest(session, true));
    CPA_CHECK(finalized.ok()) << finalized.status().ToString();
    stats.final_predictions =
        CheckBinaryOk(finalized.value(), "finalize").predictions;
  } else {
    auto finalized = client.Roundtrip(
        FrameKind::kJson,
        StrFormat("{\"op\":\"finalize\",\"session\":\"%s\"}", session.c_str()));
    CPA_CHECK(finalized.ok()) << finalized.status().ToString();
    CheckJsonOk(finalized.value(), "finalize");
    stats.final_predictions = JsonPredictions(finalized.value());
  }

  auto closed = client.Roundtrip(
      FrameKind::kJson,
      StrFormat("{\"op\":\"close\",\"session\":\"%s\"}", session.c_str()));
  CPA_CHECK(closed.ok()) << closed.status().ToString();
  CheckJsonOk(closed.value(), "close");
  return stats;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

/// Aggregated outcome of one transport's run.
struct TransportResult {
  double wall_s = 0.0;
  std::size_t answers = 0;
  std::size_t peak_connections = 0;
  std::vector<double> observe_ms;
  std::vector<double> snapshot_ms;
  std::vector<double> poll_ms;
  std::vector<std::vector<LabelSet>> final_predictions;  ///< per session
};

/// Spins up a fresh server + TCP listener and drives `connections`
/// concurrent client threads through it in the given encoding.
TransportResult RunTransport(bool binary, std::size_t connections,
                             std::size_t num_threads,
                             const EngineConfig& engine_config,
                             const Dataset& dataset,
                             const std::vector<BatchPlan>& plans) {
  ConsensusServerOptions server_options;
  server_options.sessions.num_threads = num_threads;
  server_options.sessions.max_sessions = connections + 1;
  ConsensusServer server(server_options);

  TcpTransportOptions tcp_options;
  tcp_options.max_connections = connections + 8;
  TcpTransport transport(server, tcp_options);
  CPA_CHECK_OK(transport.Start());

  std::vector<ClientStats> stats(connections);
  std::vector<std::thread> clients;
  clients.reserve(connections);
  std::atomic<bool> go{false};
  for (std::size_t s = 0; s < connections; ++s) {
    clients.emplace_back([&, s] {
      auto client = TcpFrameClient::Connect("127.0.0.1", transport.port());
      CPA_CHECK(client.ok()) << client.status().ToString();
      stats[s] = RunClient(std::move(client).value(),
                           StrFormat("stream-%zu", s), engine_config, dataset,
                           plans[s], binary, go);
    });
  }

  // Release the herd only once every connection is established, so the
  // measured window runs at full concurrency from its first request.
  TransportResult result;
  while (transport.num_connections() < connections) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  result.peak_connections = transport.num_connections();
  const Stopwatch wall;
  go.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();
  result.wall_s = wall.ElapsedSeconds();

  CPA_CHECK_EQ(server.sessions().num_sessions(), 0u);
  for (ClientStats& client : stats) {
    result.answers += client.answers;
    result.observe_ms.insert(result.observe_ms.end(), client.observe_ms.begin(),
                             client.observe_ms.end());
    result.snapshot_ms.insert(result.snapshot_ms.end(),
                              client.snapshot_ms.begin(),
                              client.snapshot_ms.end());
    result.poll_ms.insert(result.poll_ms.end(), client.poll_ms.begin(),
                          client.poll_ms.end());
    result.final_predictions.push_back(std::move(client.final_predictions));
  }
  transport.Shutdown();
  return result;
}

void PrintOpRow(const char* op, const std::vector<double>& ms) {
  std::printf("%-24s %10.3f %10.3f %10.3f\n", op, Percentile(ms, 0.5),
              Percentile(ms, 0.95), Percentile(ms, 0.99));
}

/// Adds one transport's metrics under a `json_` / `binary_` prefix.
void Report(bench::BenchReport& report, const char* prefix,
            const TransportResult& result) {
  const auto key = [&](const char* name) {
    return StrFormat("%s_%s", prefix, name);
  };
  report.Add(key("wall"), result.wall_s, "s");
  report.Add(key("answers_per_s"),
             static_cast<double>(result.answers) / result.wall_s, "1/s");
  report.Add(key("peak_connections"),
             static_cast<double>(result.peak_connections), "count");
  report.Add(key("observe_p50"), Percentile(result.observe_ms, 0.5), "ms");
  report.Add(key("observe_p95"), Percentile(result.observe_ms, 0.95), "ms");
  report.Add(key("observe_p99"), Percentile(result.observe_ms, 0.99), "ms");
  report.Add(key("snapshot_p50"), Percentile(result.snapshot_ms, 0.5), "ms");
  report.Add(key("snapshot_p95"), Percentile(result.snapshot_ms, 0.95), "ms");
  report.Add(key("snapshot_p99"), Percentile(result.snapshot_ms, 0.99), "ms");
  report.Add(key("poll_p50"), Percentile(result.poll_ms, 0.5), "ms");
  report.Add(key("poll_p95"), Percentile(result.poll_ms, 0.95), "ms");
  report.Add(key("poll_p99"), Percentile(result.poll_ms, 0.99), "ms");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv, 0.08);
  const auto flags = Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();
  // `--quick` shrinks the run to a CI smoke (the sanitizer jobs drive the
  // whole socket/frame/codec path through it on every PR).
  const bool quick = flags.value().GetBool("quick", false);
  std::size_t connections =
      static_cast<std::size_t>(flags.value().GetInt("connections", 100));
  const std::size_t num_threads =
      static_cast<std::size_t>(flags.value().GetInt("num-threads", 2));
  std::size_t batches =
      static_cast<std::size_t>(flags.value().GetInt("batches", 5));
  const std::string method = flags.value().GetString("method", "CPA-SVI");
  if (quick) {
    connections = std::min<std::size_t>(connections, 4);
    batches = std::min<std::size_t>(batches, 2);
    config.scale = std::min(config.scale, 0.05);
    config.cpa_iterations = std::min<std::size_t>(config.cpa_iterations, 4);
  }
  CPA_CHECK(connections >= 1 && batches >= 1);

  bench::PrintHeader(
      "Fig 11 (extension) — TCP server throughput and tail latency",
      StrFormat("%zu concurrent %s streams per transport (json, binary) over "
                "framed TCP, sweeps on one shared %zu-thread pool",
                connections, method.c_str(), num_threads),
      config);

  const Dataset dataset = bench::LoadPaperDataset(PaperDatasetId::kTopic, config);
  EngineConfig engine_config = EngineConfig::ForDataset(method, dataset);
  engine_config.cpa.max_iterations = config.cpa_iterations;

  // Every client streams the same answers in a session-specific arrival
  // order (distinct shuffles — the load, not the fit, is the subject).
  // The two transports replay identical plans, so their final
  // predictions must agree session for session.
  std::vector<BatchPlan> plans;
  plans.reserve(connections);
  for (std::size_t s = 0; s < connections; ++s) {
    Rng rng(config.seed + s);
    plans.push_back(MakeArrivalSchedule(dataset.answers, batches, rng));
  }

  const TransportResult json_result = RunTransport(
      /*binary=*/false, connections, num_threads, engine_config, dataset, plans);
  const TransportResult binary_result = RunTransport(
      /*binary=*/true, connections, num_threads, engine_config, dataset, plans);

  // Transport must not change consensus: same stream → same predictions.
  CPA_CHECK_EQ(json_result.final_predictions.size(),
               binary_result.final_predictions.size());
  for (std::size_t s = 0; s < json_result.final_predictions.size(); ++s) {
    CPA_CHECK(json_result.final_predictions[s] ==
              binary_result.final_predictions[s])
        << "session " << s << ": json and binary transports disagree";
  }

  const double json_rate =
      static_cast<double>(json_result.answers) / json_result.wall_s;
  const double binary_rate =
      static_cast<double>(binary_result.answers) / binary_result.wall_s;

  for (const auto& [name, result] :
       {std::pair<const char*, const TransportResult&>{"json", json_result},
        {"binary", binary_result}}) {
    std::printf("\n-- transport=%s: %zu connections, %zu answers, %.2fs --\n",
                name, connections, result.answers, result.wall_s);
    std::printf("%-24s %10s %10s %10s\n", "op (ms)", "p50", "p95", "p99");
    PrintOpRow("observe", result.observe_ms);
    PrintOpRow("snapshot (refresh)", result.snapshot_ms);
    PrintOpRow("poll (cached)", result.poll_ms);
    std::printf("%-24s %10.0f\n", "answers/s",
                static_cast<double>(result.answers) / result.wall_s);
  }
  std::printf("\nbinary vs json answers/s: %.2fx\n", binary_rate / json_rate);

  bench::BenchReport report("fig11_server_throughput", config);
  report.Add("connections", static_cast<double>(connections), "count");
  report.Add("shared_pool_threads", static_cast<double>(num_threads), "count");
  report.Add("batches_per_session", static_cast<double>(batches), "count");
  report.Add("answers_per_transport", static_cast<double>(json_result.answers),
             "count");
  Report(report, "json", json_result);
  Report(report, "binary", binary_result);
  report.Add("binary_speedup_answers_per_s", binary_rate / json_rate, "x");
  CPA_CHECK_OK(report.Write());
  return 0;
}
