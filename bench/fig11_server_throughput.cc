/// Fig 11 (repo extension, no paper counterpart): multi-session server
/// throughput. N concurrent synthetic answer streams drive one
/// `ConsensusServer` through the line-delimited JSON protocol — every
/// client thread opens its own session, streams its batches, polls
/// snapshots, finalizes and closes — while all sessions' sweep work shares
/// one `ServerScheduler` pool. Reports sessions/s, answers/s, and
/// p50/p95 snapshot latency into `BENCH_fig11_server_throughput.json`.
///
///   $ fig11_server_throughput                   # 8 sessions, 2 shared threads
///   $ fig11_server_throughput --sessions 16 --num-threads 4 --method MV
///
/// `--method MV` (or any offline method) makes every refresh snapshot a
/// refit on the data so far — the worst-case polling load; the default
/// CPA-SVI pays one incremental step per batch.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/consensus_server.h"
#include "server/protocol.h"
#include "simulation/perturbations.h"
#include "util/json.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"

using namespace cpa;

namespace {

/// Wall-clock milliseconds of one request/response exchange.
double TimedRequest(ConsensusServer& server, const std::string& request,
                    std::string& response) {
  const Stopwatch stopwatch;
  response = server.HandleLine(request);
  return stopwatch.ElapsedMillis();
}

/// Asserts the response line parses and carries `"ok":true`.
void CheckOk(const std::string& response, const char* what) {
  const auto parsed = JsonValue::Parse(response);
  CPA_CHECK(parsed.ok()) << what << ": " << response;
  const JsonValue* ok = parsed.value().Find("ok");
  CPA_CHECK(ok != nullptr && ok->bool_value()) << what << ": " << response;
}

struct ClientStats {
  std::size_t answers = 0;
  std::vector<double> snapshot_ms;  ///< refresh snapshots (one per batch)
  std::vector<double> poll_ms;      ///< cached polls (one per batch)
};

/// One synthetic stream: open → (observe + snapshot + poll) per batch →
/// finalize → close, all through the wire protocol.
ClientStats RunClient(ConsensusServer& server, const std::string& session,
                      const EngineConfig& config, const Dataset& dataset,
                      const BatchPlan& plan) {
  ClientStats stats;
  std::string response;

  JsonValue::Object open;
  open["op"] = JsonValue(std::string("open"));
  open["session"] = JsonValue(session);
  open["config"] = config.ToJson();
  response = server.HandleLine(JsonValue(std::move(open)).DumpCompact());
  CheckOk(response, "open");

  std::vector<Answer> batch_answers;
  for (const auto& batch : plan.batches) {
    batch_answers.clear();
    batch_answers.reserve(batch.size());
    for (std::size_t index : batch) {
      batch_answers.push_back(dataset.answers.answer(index));
    }
    response =
        server.HandleLine(server::MakeObserveRequest(session, batch_answers));
    CheckOk(response, "observe");
    stats.answers += batch.size();

    // A refresh snapshot (the consensus-so-far a client acts on) ...
    stats.snapshot_ms.push_back(TimedRequest(
        server,
        StrFormat("{\"op\":\"snapshot\",\"session\":\"%s\","
                  "\"predictions\":false}",
                  session.c_str()),
        response));
    CheckOk(response, "snapshot");
    // ... and a cached poll (what a dashboard hammers between batches).
    stats.poll_ms.push_back(TimedRequest(
        server,
        StrFormat("{\"op\":\"snapshot\",\"session\":\"%s\","
                  "\"refresh\":false,\"predictions\":false}",
                  session.c_str()),
        response));
    CheckOk(response, "poll");
  }

  response = server.HandleLine(
      StrFormat("{\"op\":\"finalize\",\"session\":\"%s\",\"predictions\":false}",
                session.c_str()));
  CheckOk(response, "finalize");
  response = server.HandleLine(
      StrFormat("{\"op\":\"close\",\"session\":\"%s\"}", session.c_str()));
  CheckOk(response, "close");
  return stats;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv, 0.08);
  const auto flags = Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();
  // `--quick` shrinks the run to a CI smoke (the sanitize job drives the
  // shared-snapshot lifetime and arena reuse through it on every PR).
  const bool quick = flags.value().GetBool("quick", false);
  std::size_t sessions =
      static_cast<std::size_t>(flags.value().GetInt("sessions", 8));
  const std::size_t num_threads =
      static_cast<std::size_t>(flags.value().GetInt("num-threads", 2));
  std::size_t batches =
      static_cast<std::size_t>(flags.value().GetInt("batches", 5));
  const std::string method = flags.value().GetString("method", "CPA-SVI");
  if (quick) {
    sessions = std::min<std::size_t>(sessions, 3);
    batches = std::min<std::size_t>(batches, 2);
    config.scale = std::min(config.scale, 0.05);
    config.cpa_iterations = std::min<std::size_t>(config.cpa_iterations, 4);
  }
  CPA_CHECK(sessions >= 1 && batches >= 1);

  bench::PrintHeader(
      "Fig 11 (extension) — multi-session server throughput",
      StrFormat("%zu concurrent %s streams over the JSON wire protocol, "
                "sweeps on one shared %zu-thread pool",
                sessions, method.c_str(), num_threads),
      config);

  const Dataset dataset = bench::LoadPaperDataset(PaperDatasetId::kTopic, config);
  EngineConfig engine_config = EngineConfig::ForDataset(method, dataset);
  engine_config.cpa.max_iterations = config.cpa_iterations;

  ConsensusServerOptions server_options;
  server_options.sessions.num_threads = num_threads;
  server_options.sessions.max_sessions = sessions + 1;
  ConsensusServer server(server_options);

  // Every client streams the same answers in a session-specific arrival
  // order (distinct shuffles — the load, not the fit, is the subject).
  std::vector<BatchPlan> plans;
  plans.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    Rng rng(config.seed + s);
    plans.push_back(MakeArrivalSchedule(dataset.answers, batches, rng));
  }

  std::vector<ClientStats> stats(sessions);
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  const Stopwatch wall;
  for (std::size_t s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      stats[s] = RunClient(server, StrFormat("stream-%zu", s), engine_config,
                           dataset, plans[s]);
    });
  }
  for (auto& client : clients) client.join();
  const double wall_s = wall.ElapsedSeconds();
  CPA_CHECK_EQ(server.sessions().num_sessions(), 0u);

  std::size_t total_answers = 0;
  std::vector<double> snapshot_ms;
  std::vector<double> poll_ms;
  for (const ClientStats& client : stats) {
    total_answers += client.answers;
    snapshot_ms.insert(snapshot_ms.end(), client.snapshot_ms.begin(),
                       client.snapshot_ms.end());
    poll_ms.insert(poll_ms.end(), client.poll_ms.begin(), client.poll_ms.end());
  }
  const double sessions_per_s = static_cast<double>(sessions) / wall_s;
  const double answers_per_s = static_cast<double>(total_answers) / wall_s;

  std::printf("\n%-28s %12s\n", "metric", "value");
  std::printf("%-28s %12.2f\n", "wall time (s)", wall_s);
  std::printf("%-28s %12.2f\n", "sessions/s", sessions_per_s);
  std::printf("%-28s %12.0f\n", "answers/s", answers_per_s);
  std::printf("%-28s %12.2f\n", "snapshot p50 (ms)", Percentile(snapshot_ms, 0.5));
  std::printf("%-28s %12.2f\n", "snapshot p95 (ms)", Percentile(snapshot_ms, 0.95));
  std::printf("%-28s %12.3f\n", "cached poll p50 (ms)", Percentile(poll_ms, 0.5));

  bench::BenchReport report("fig11_server_throughput", config);
  report.Add("sessions", static_cast<double>(sessions), "count");
  report.Add("shared_pool_threads", static_cast<double>(num_threads), "count");
  report.Add("batches_per_session", static_cast<double>(batches), "count");
  report.Add("answers_total", static_cast<double>(total_answers), "count");
  report.Add("wall", wall_s, "s");
  report.Add("sessions_per_s", sessions_per_s, "1/s");
  report.Add("answers_per_s", answers_per_s, "1/s");
  report.Add("snapshot_p50", Percentile(snapshot_ms, 0.5), "ms");
  report.Add("snapshot_p95", Percentile(snapshot_ms, 0.95), "ms");
  report.Add("poll_p50", Percentile(poll_ms, 0.5), "ms");
  CPA_CHECK_OK(report.Write());
  return 0;
}
