/// Regenerates Table 4 — overall precision/recall of MV, EM, cBCC and CPA
/// on the five datasets.

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/experiment.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader("Table 4 — overall accuracy",
                     "Precision / recall of MV, EM (Dawid-Skene), cBCC and CPA "
                     "on the five simulated datasets (y = empty, fully "
                     "unsupervised).",
                     config);

  const std::vector<std::string> methods = PaperMethodNames();

  TablePrinter precision({"Dataset", "MV", "EM", "cBCC", "CPA"});
  TablePrinter recall({"Dataset", "MV", "EM", "cBCC", "CPA"});
  bench::BenchReport report("table4_accuracy", config);
  for (PaperDatasetId id : AllPaperDatasets()) {
    const Dataset dataset = bench::LoadPaperDataset(id, config);
    std::vector<std::string> p_cells = {std::string(PaperDatasetName(id))};
    std::vector<std::string> r_cells = {std::string(PaperDatasetName(id))};
    for (const std::string& method : methods) {
      EngineConfig engine_config = EngineConfig::ForDataset(method, dataset);
      engine_config.cpa.max_iterations = config.cpa_iterations;
      const auto result = RunExperiment(engine_config, dataset);
      if (!result.ok()) {
        std::fprintf(stderr, "%s on %s failed: %s\n", method.c_str(),
                     dataset.name.c_str(), result.status().ToString().c_str());
        p_cells.push_back("n/a");
        r_cells.push_back("n/a");
        continue;
      }
      p_cells.push_back(StrFormat("%.2f", result.value().metrics.precision));
      r_cells.push_back(StrFormat("%.2f", result.value().metrics.recall));
      report.Add(StrFormat("%s@%s_precision", method.c_str(), dataset.name.c_str()),
                 result.value().metrics.precision, "fraction");
      report.Add(StrFormat("%s@%s_recall", method.c_str(), dataset.name.c_str()),
                 result.value().metrics.recall, "fraction");
      report.Add(StrFormat("%s@%s_fit", method.c_str(), dataset.name.c_str()),
                 result.value().seconds, "s");
      std::fprintf(stderr, "[table4] %s/%s done in %.1fs\n", dataset.name.c_str(),
                   method.c_str(), result.value().seconds);
    }
    precision.AddRow(p_cells);
    recall.AddRow(r_cells);
  }
  std::printf("\nPrecision\n");
  precision.Print();
  std::printf("\nRecall\n");
  recall.Print();
  CPA_CHECK_OK(report.Write());
  std::printf(
      "\nPaper Table 4 (precision): image .65/.66/.70/.81, topic .57/.60/.62/.79, "
      "aspect .52/.61/.65/.74, entity .63/.57/.60/.79, movie .61/.74/.78/.80\n"
      "Paper Table 4 (recall):    image .57/.62/.63/.74, topic .54/.54/.55/.70, "
      "aspect .53/.56/.60/.64, entity .55/.50/.53/.70, movie .56/.68/.70/.73\n"
      "Expected shape: CPA highest on every dataset; the margin is largest on "
      "the strongly label-correlated datasets (image, topic, entity).\n");
  return 0;
}
