/// Regenerates Fig 3 — robustness against sparsity on the image dataset:
/// precision/recall as a growing share of the answers is removed.

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/experiment.h"
#include "simulation/perturbations.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader(
      "Fig 3 — effects of sparsity (image dataset)",
      "Answers are removed at random in 10% steps; precision/recall per method.",
      config);

  const Dataset dataset = bench::LoadPaperDataset(PaperDatasetId::kImage, config);
  const std::vector<std::string> methods = PaperMethodNames();

  TablePrinter precision({"Sparsity%", "MV", "EM", "cBCC", "CPA"});
  TablePrinter recall({"Sparsity%", "MV", "EM", "cBCC", "CPA"});
  bench::BenchReport report("fig3_sparsity", config);
  Rng rng(config.seed ^ 0xF16'3ULL);
  for (int sparsity = 0; sparsity <= 80; sparsity += 10) {
    const double keep = 1.0 - sparsity / 100.0;
    const auto sparse = Sparsify(dataset, keep, rng);
    if (!sparse.ok()) {
      std::fprintf(stderr, "sparsify failed: %s\n", sparse.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> p_cells = {StrFormat("%d", sparsity)};
    std::vector<std::string> r_cells = {StrFormat("%d", sparsity)};
    for (const std::string& method : methods) {
      EngineConfig engine_config = EngineConfig::ForDataset(method, sparse.value());
      engine_config.cpa.max_iterations = config.cpa_iterations;
      const auto result = RunExperiment(engine_config, sparse.value());
      if (!result.ok()) {
        p_cells.push_back("n/a");
        r_cells.push_back("n/a");
        continue;
      }
      p_cells.push_back(StrFormat("%.2f", result.value().metrics.precision));
      r_cells.push_back(StrFormat("%.2f", result.value().metrics.recall));
      report.Add(StrFormat("%s@%d%%_sparsity_precision", method.c_str(), sparsity),
                 result.value().metrics.precision, "fraction");
      report.Add(StrFormat("%s@%d%%_sparsity_recall", method.c_str(), sparsity),
                 result.value().metrics.recall, "fraction");
    }
    std::fprintf(stderr, "[fig3] sparsity %d%% done\n", sparsity);
    precision.AddRow(p_cells);
    recall.AddRow(r_cells);
  }
  std::printf("\nPrecision vs sparsity\n");
  precision.Print();
  std::printf("\nRecall vs sparsity\n");
  recall.Print();
  CPA_CHECK_OK(report.Write());
  std::printf(
      "\nExpected shape (paper Fig 3): all methods degrade as answers are "
      "removed, but CPA degrades the slowest — at 50%% sparsity the paper's "
      "CPA retains ~86%% of its full-data precision, the baselines at most "
      "~78%%.\n");
  return 0;
}
