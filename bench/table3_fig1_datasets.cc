/// Regenerates Table 3 (dataset statistics) and the structure behind
/// Fig 1 (label co-occurrence clusters in the image dataset).

#include <cstdio>

#include "bench/bench_util.h"
#include "data/cooccurrence.h"
#include "data/dataset_stats.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader("Table 3 + Fig 1 — dataset statistics & label co-occurrence",
                     "Simulated stand-ins for the five crowdsourced datasets "
                     "(DESIGN.md §3); statistics follow the published Table 3.",
                     config);

  TablePrinter table({"Quantity", "image", "topic", "aspect", "entity", "movie"});
  bench::BenchReport report("table3_fig1_datasets", config);
  std::vector<DatasetStats> stats;
  std::vector<Dataset> datasets;
  for (PaperDatasetId id : AllPaperDatasets()) {
    datasets.push_back(bench::LoadPaperDataset(id, config));
    stats.push_back(ComputeDatasetStats(datasets.back()));
    const char* name = datasets.back().name.c_str();
    report.Add(StrFormat("questions@%s", name),
               static_cast<double>(stats.back().num_questions), "count");
    report.Add(StrFormat("labels@%s", name),
               static_cast<double>(stats.back().num_labels), "count");
    report.Add(StrFormat("workers@%s", name),
               static_cast<double>(stats.back().num_workers), "count");
    report.Add(StrFormat("answers@%s", name),
               static_cast<double>(stats.back().num_answers), "count");
  }
  const auto row = [&](const std::string& name, auto getter, const char* fmt) {
    std::vector<std::string> cells = {name};
    for (const DatasetStats& s : stats) cells.push_back(StrFormat(fmt, getter(s)));
    table.AddRow(cells);
  };
  row("# Questions", [](const DatasetStats& s) { return s.num_questions; }, "%zu");
  row("# Labels", [](const DatasetStats& s) { return s.num_labels; }, "%zu");
  row("# Workers", [](const DatasetStats& s) { return s.num_workers; }, "%zu");
  row("# Answers", [](const DatasetStats& s) { return s.num_answers; }, "%zu");
  row("Answers/item", [](const DatasetStats& s) { return s.mean_answers_per_item; },
      "%.1f");
  row("Labels/answer", [](const DatasetStats& s) { return s.mean_labels_per_answer; },
      "%.2f");
  row("Labels/item (truth)",
      [](const DatasetStats& s) { return s.mean_labels_per_truth; }, "%.2f");
  row("Worker-load skew", [](const DatasetStats& s) { return s.worker_load_skewness; },
      "%.2f");
  table.Print();

  std::printf(
      "\nPaper Table 3 at full scale: questions 2000/2000/3710/2400/500, labels "
      "81/49/262/1450/22, workers 416/313/482/517/936, answers "
      "22920/15080/19780/15510/14430.\n");

  // --- Fig 1: label co-occurrence of the image ground truth.
  std::printf("\nFig 1 — strongest label co-occurrence edges (image truth):\n");
  const Dataset& image = datasets.front();
  const CooccurrenceMatrix cooc(image.num_labels, image.ground_truth);
  for (const auto& edge : cooc.TopEdges(8)) {
    std::printf("  label %3u -- label %3u   strength %.3f\n", edge.a, edge.b,
                edge.strength);
  }
  const auto clusters = cooc.Clusters(0.25);
  std::printf("label clusters at Jaccard >= 0.25: %zu (largest sizes:", clusters.size());
  for (std::size_t k = 0; k < std::min<std::size_t>(5, clusters.size()); ++k) {
    std::printf(" %zu", clusters[k].size());
  }
  std::printf(")\n");
  const double image_npmi = cooc.WeightedMeanNpmi();
  const double movie_npmi = CooccurrenceMatrix(datasets.back().num_labels,
                                               datasets.back().ground_truth)
                                .WeightedMeanNpmi();
  std::printf("weighted mean NPMI: image=%.3f movie=%.3f (strong vs little "
              "correlation, matching the Section 5.1 characterisation)\n",
              image_npmi, movie_npmi);
  report.Add("npmi@image", image_npmi, "npmi");
  report.Add("npmi@movie", movie_npmi, "npmi");
  CPA_CHECK_OK(report.Write());
  return 0;
}
