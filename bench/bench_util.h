#ifndef CPA_BENCH_BENCH_UTIL_H_
#define CPA_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// \brief Shared scaffolding of the paper-reproduction bench binaries.
///
/// Every bench runs standalone with defaults sized so the whole suite
/// finishes in minutes on a laptop: the paper's datasets are rebuilt at
/// `--scale` (default 0.35) of their published size with redundancy
/// preserved, which keeps every qualitative shape (who wins, by roughly
/// what factor, where the crossovers fall). Run with `--scale=1` to use
/// the published sizes.
///
/// Headline numbers are reported through `BenchReport`, which writes a
/// `BENCH_<name>.json` file so perf trajectories stay machine-readable
/// across PRs. Run benches from the repo root (or pass `--out-dir`) to
/// collect the reports there.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/dataset.h"
#include "simulation/dataset_factory.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/status.h"

namespace cpa::bench {

/// \brief Common bench configuration from command-line flags.
struct BenchConfig {
  double scale = 0.35;          ///< dataset scale (1 = published size)
  std::uint64_t seed = 20180417;
  std::size_t cpa_iterations = 25;
  std::size_t runs = 1;         ///< repetitions for averaged experiments
  std::string out_dir = ".";    ///< where BENCH_*.json reports land
};

/// Parses `--scale`, `--seed`, `--cpa-iterations`, `--runs`, `--out-dir`.
/// Exits with a message on malformed flags.
BenchConfig ParseBenchConfig(int argc, char** argv, double default_scale = 0.35,
                             std::size_t default_runs = 1);

/// Builds one of the five paper datasets at the configured scale.
Dataset LoadPaperDataset(PaperDatasetId id, const BenchConfig& config);

/// Prints the bench banner: what paper artefact this regenerates and the
/// workload parameters in effect.
void PrintHeader(const std::string& artefact, const std::string& description,
                 const BenchConfig& config);

/// The JSON document type now lives in `util/json.h` (the engine layer
/// round-trips `EngineConfig` through it too); the alias keeps existing
/// `bench::JsonValue` call sites working.
using ::cpa::JsonValue;

/// \brief Collects a bench binary's headline numbers and writes
/// `BENCH_<name>.json`.
///
/// The report is a JSON object with keys `"bench"` (the name), `"config"`
/// (scale / seed / cpa_iterations / runs / simd / simd_forced — the last
/// two record the kernel level the numbers were measured at, see
/// core/sweep/simd.h) and `"results"` (an array of
/// `{"name", "value", "unit"}` rows in insertion order). `kRequiredKeys`
/// names the top-level keys downstream tooling may rely on.
class BenchReport {
 public:
  static constexpr std::string_view kRequiredKeys[] = {"bench", "config",
                                                       "results"};

  BenchReport(std::string name, const BenchConfig& config);

  /// Appends one measurement row, e.g. `Add("vi_sweep", 12.3, "ms")`.
  void Add(std::string_view name, double value, std::string_view unit);

  /// Serializes the full report.
  std::string ToJson() const;

  /// Writes `BENCH_<name>.json` into `config.out_dir` and logs the path.
  Status Write() const;

  /// The file this report targets: `<out_dir>/BENCH_<name>.json`.
  std::string path() const;

 private:
  std::string name_;
  BenchConfig config_;
  JsonValue::Array results_;
};

}  // namespace cpa::bench

#endif  // CPA_BENCH_BENCH_UTIL_H_
