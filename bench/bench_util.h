#ifndef CPA_BENCH_BENCH_UTIL_H_
#define CPA_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// \brief Shared scaffolding of the paper-reproduction bench binaries.
///
/// Every bench runs standalone with defaults sized so the whole suite
/// finishes in minutes on a laptop: the paper's datasets are rebuilt at
/// `--scale` (default 0.35) of their published size with redundancy
/// preserved, which keeps every qualitative shape (who wins, by roughly
/// what factor, where the crossovers fall). Run with `--scale=1` to use
/// the published sizes.

#include <string>

#include "data/dataset.h"
#include "simulation/dataset_factory.h"
#include "util/flags.h"

namespace cpa::bench {

/// \brief Common bench configuration from command-line flags.
struct BenchConfig {
  double scale = 0.35;          ///< dataset scale (1 = published size)
  std::uint64_t seed = 20180417;
  std::size_t cpa_iterations = 25;
  std::size_t runs = 1;         ///< repetitions for averaged experiments
};

/// Parses `--scale`, `--seed`, `--cpa-iterations`, `--runs`. Exits with a
/// message on malformed flags.
BenchConfig ParseBenchConfig(int argc, char** argv, double default_scale = 0.35,
                             std::size_t default_runs = 1);

/// Builds one of the five paper datasets at the configured scale.
Dataset LoadPaperDataset(PaperDatasetId id, const BenchConfig& config);

/// Prints the bench banner: what paper artefact this regenerates and the
/// workload parameters in effect.
void PrintHeader(const std::string& artefact, const std::string& description,
                 const BenchConfig& config);

}  // namespace cpa::bench

#endif  // CPA_BENCH_BENCH_UTIL_H_
