/// Regenerates Fig 7 — runtime of inference + prediction versus the
/// number of answers, for online-16 / online-4 / online / offline CPA and
/// the MV / EM / cBCC baselines, on the §5.1 large-scale simulation
/// (10^4 items, 10^4 workers, 10 labels; the workers-per-item sweep sets
/// the answer count). Baseline runtimes are additionally reported
/// normalised by the label count, as in the paper.

#include <cstdio>
#include <memory>

#include "baselines/cbcc.h"
#include "baselines/dawid_skene.h"
#include "baselines/majority_vote.h"
#include "bench/bench_util.h"
#include "core/cpa.h"
#include "simulation/perturbations.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

namespace {

double TimeOffline(const Dataset& dataset, CpaOptions options) {
  Stopwatch stopwatch;
  CpaAggregator offline(options);
  const auto result = offline.Aggregate(dataset.answers, dataset.num_labels);
  CPA_CHECK(result.ok()) << result.status().ToString();
  return stopwatch.ElapsedSeconds();
}

double TimeOnline(const Dataset& dataset, CpaOptions options, std::size_t threads,
                  std::uint64_t seed) {
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  Stopwatch stopwatch;
  auto online = CpaOnline::Create(dataset.num_items(), dataset.num_workers(),
                                  dataset.num_labels, options, SviOptions(),
                                  pool.get());
  CPA_CHECK(online.ok()) << online.status().ToString();
  Rng rng(seed);
  const BatchPlan plan = MakeWorkerBatches(dataset.answers, 400, rng);
  for (const auto& batch : plan.batches) {
    CPA_CHECK_OK(online.value().ObserveBatch(dataset.answers, batch));
  }
  const auto prediction = online.value().Predict(dataset.answers);
  CPA_CHECK(prediction.ok()) << prediction.status().ToString();
  return stopwatch.ElapsedSeconds();
}

template <typename AggregatorT>
double TimeBaseline(const Dataset& dataset, AggregatorT aggregator) {
  Stopwatch stopwatch;
  const auto result = aggregator.Aggregate(dataset.answers, dataset.num_labels);
  CPA_CHECK(result.ok()) << result.status().ToString();
  return stopwatch.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv, 1.0);
  bench::PrintHeader(
      "Fig 7 — runtime of inference and prediction",
      "Large-scale simulation: 10^4 items, 10^4 workers, 10 labels; the "
      "workers-per-item sweep produces 100K / 300K / 1M answers. online-N "
      "= Algorithm 3 with N map threads (this container has 2 physical "
      "cores, so wall-clock gains saturate there; see EXPERIMENTS.md).",
      config);

  const auto parsed = Flags::Parse(argc, argv);
  const bool quick = parsed.ok() && parsed.value().GetBool("quick", false);
  std::vector<double> redundancies = {10.0, 30.0, 100.0};
  if (quick) redundancies = {10.0};

  TablePrinter table({"Answers", "MV", "EM", "cBCC", "offline", "online", "online-4",
                      "online-16", "EM/label", "cBCC/label"});
  bench::BenchReport report("fig7_runtime", config);
  for (double redundancy : redundancies) {
    FactoryOptions factory_options;
    factory_options.seed = config.seed;
    auto dataset = MakeScalabilityDataset(10'000, 10'000, 10, redundancy,
                                          factory_options);
    CPA_CHECK(dataset.ok()) << dataset.status().ToString();
    const Dataset& d = dataset.value();
    std::fprintf(stderr, "[fig7] dataset with %zu answers built\n",
                 d.answers.num_answers());

    // Runtime-comparable solver settings: capped iterations all around.
    CpaOptions options = CpaOptions::Recommended(d.num_items(), d.num_labels);
    options.max_iterations = 10;
    DawidSkeneOptions em_options;
    em_options.max_iterations = 10;
    CbccOptions cbcc_options;
    cbcc_options.max_iterations = 10;

    const double mv = TimeBaseline(d, MajorityVote());
    std::fprintf(stderr, "[fig7] MV %.2fs\n", mv);
    const double em = TimeBaseline(d, DawidSkene(em_options));
    std::fprintf(stderr, "[fig7] EM %.2fs\n", em);
    const double cbcc = TimeBaseline(d, Cbcc(cbcc_options));
    std::fprintf(stderr, "[fig7] cBCC %.2fs\n", cbcc);
    const double offline = TimeOffline(d, options);
    std::fprintf(stderr, "[fig7] offline %.2fs\n", offline);
    const double online_1 = TimeOnline(d, options, 1, config.seed);
    std::fprintf(stderr, "[fig7] online %.2fs\n", online_1);
    const double online_4 = TimeOnline(d, options, 4, config.seed);
    std::fprintf(stderr, "[fig7] online-4 %.2fs\n", online_4);
    const double online_16 = TimeOnline(d, options, 16, config.seed);
    std::fprintf(stderr, "[fig7] online-16 %.2fs\n", online_16);

    table.AddRow({StrFormat("%zu", d.answers.num_answers()), StrFormat("%.2fs", mv),
                  StrFormat("%.2fs", em), StrFormat("%.2fs", cbcc),
                  StrFormat("%.2fs", offline), StrFormat("%.2fs", online_1),
                  StrFormat("%.2fs", online_4), StrFormat("%.2fs", online_16),
                  StrFormat("%.3fs", em / 10.0), StrFormat("%.3fs", cbcc / 10.0)});
    const std::size_t answers = d.answers.num_answers();
    report.Add(StrFormat("mv@%zu_answers", answers), mv, "s");
    report.Add(StrFormat("em@%zu_answers", answers), em, "s");
    report.Add(StrFormat("cbcc@%zu_answers", answers), cbcc, "s");
    report.Add(StrFormat("cpa_offline@%zu_answers", answers), offline, "s");
    report.Add(StrFormat("cpa_online@%zu_answers", answers), online_1, "s");
    report.Add(StrFormat("cpa_online4@%zu_answers", answers), online_4, "s");
    report.Add(StrFormat("cpa_online16@%zu_answers", answers), online_16, "s");
  }
  table.Print();
  CPA_CHECK_OK(report.Write());
  std::printf(
      "\nExpected shape (paper Fig 7): MV cheapest; online CPA far below "
      "offline CPA (the paper reports up to 32x, combining incremental "
      "computation and 16-way parallelism); EM/cBCC between MV and offline "
      "once normalised per label. Parallel speed-ups here are bounded by "
      "the 2 physical cores of the benchmark container.\n");
  return 0;
}
