/// Regenerates Fig 7 — runtime of inference + prediction versus the
/// number of answers, for online-16 / online-4 / online / offline CPA and
/// the MV / EM / cBCC baselines, on the §5.1 large-scale simulation
/// (10^4 items, 10^4 workers, 10 labels; the workers-per-item sweep sets
/// the answer count). Baseline runtimes are additionally reported
/// normalised by the label count, as in the paper.
///
/// Every method runs through an `EngineRegistry` session; parallelism is
/// the `EngineConfig::num_threads` knob, so the thread-count axis
/// (offline-2 / offline-4 via the sweep scheduler) measures exactly what a
/// service would get from the same config.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/engine_registry.h"
#include "eval/experiment.h"
#include "simulation/perturbations.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

namespace {

/// One-shot session run (Observe-all + Finalize): wall seconds plus the
/// prediction-phase share (`FitStats::prediction_seconds`).
ExperimentResult TimeOneShot(const Dataset& dataset, const EngineConfig& config) {
  const auto result = RunExperiment(config, dataset);
  CPA_CHECK(result.ok()) << config.method << ": " << result.status().ToString();
  return result.value();
}

/// Streaming CPA-SVI session runtime over a worker-batch plan (final
/// snapshot only).
ExperimentResult TimeOnline(const Dataset& dataset, EngineConfig config,
                            std::size_t threads, std::uint64_t seed) {
  config.method = "CPA-SVI";
  config.num_threads = threads;
  Rng rng(seed);
  const BatchPlan plan = MakeWorkerBatches(dataset.answers, 400, rng);
  const auto run =
      RunStreamingExperiment(config, dataset, plan, /*score_each_batch=*/false);
  CPA_CHECK(run.ok()) << run.status().ToString();
  return run.value().final_result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv, 1.0);
  bench::PrintHeader(
      "Fig 7 — runtime of inference and prediction",
      "Large-scale simulation: 10^4 items, 10^4 workers, 10 labels; the "
      "workers-per-item sweep produces 100K / 300K / 1M answers. online-N "
      "= Algorithm 3 with N map threads, offline-N = thread-pooled VI "
      "sweeps (this container has few physical cores; wall-clock gains "
      "saturate there; see EXPERIMENTS.md).",
      config);

  const auto parsed = Flags::Parse(argc, argv);
  const bool quick = parsed.ok() && parsed.value().GetBool("quick", false);
  std::vector<double> redundancies = {10.0, 30.0, 100.0};
  if (quick) redundancies = {10.0};

  TablePrinter table({"Answers", "MV", "EM", "cBCC", "offline", "pred-ms",
                      "offline-2", "offline-4", "online", "online-4", "online-16",
                      "EM/label", "cBCC/label"});
  bench::BenchReport report("fig7_runtime", config);
  for (double redundancy : redundancies) {
    FactoryOptions factory_options;
    factory_options.seed = config.seed;
    auto dataset = MakeScalabilityDataset(10'000, 10'000, 10, redundancy,
                                          factory_options);
    CPA_CHECK(dataset.ok()) << dataset.status().ToString();
    const Dataset& d = dataset.value();
    std::fprintf(stderr, "[fig7] dataset with %zu answers built\n",
                 d.answers.num_answers());

    // Runtime-comparable solver settings: capped iterations all around.
    EngineConfig base = EngineConfig::ForDataset("CPA", d);
    base.cpa.max_iterations = 10;
    base.em.max_iterations = 10;
    base.cbcc.max_iterations = 10;

    const auto one_shot = [&](const char* method, std::size_t threads) {
      EngineConfig run_config = base;
      run_config.method = method;
      run_config.num_threads = threads;
      const ExperimentResult result = TimeOneShot(d, run_config);
      std::fprintf(stderr, "[fig7] %s (x%zu threads) %.2fs (predict %.0fms)\n",
                   method, threads, result.seconds,
                   result.prediction_seconds * 1e3);
      return result;
    };
    const double mv = one_shot("MV", 1).seconds;
    const double em = one_shot("EM", 1).seconds;
    const double cbcc = one_shot("cBCC", 1).seconds;
    const ExperimentResult offline_1 = one_shot("CPA", 1);
    const ExperimentResult offline_2 = one_shot("CPA", 2);
    const ExperimentResult offline_4 = one_shot("CPA", 4);
    const ExperimentResult online_1 = TimeOnline(d, base, 1, config.seed);
    std::fprintf(stderr, "[fig7] online %.2fs\n", online_1.seconds);
    const ExperimentResult online_4 = TimeOnline(d, base, 4, config.seed);
    std::fprintf(stderr, "[fig7] online-4 %.2fs\n", online_4.seconds);
    const ExperimentResult online_16 = TimeOnline(d, base, 16, config.seed);
    std::fprintf(stderr, "[fig7] online-16 %.2fs\n", online_16.seconds);

    table.AddRow({StrFormat("%zu", d.answers.num_answers()), StrFormat("%.2fs", mv),
                  StrFormat("%.2fs", em), StrFormat("%.2fs", cbcc),
                  StrFormat("%.2fs", offline_1.seconds),
                  StrFormat("%.0f", offline_1.prediction_seconds * 1e3),
                  StrFormat("%.2fs", offline_2.seconds),
                  StrFormat("%.2fs", offline_4.seconds),
                  StrFormat("%.2fs", online_1.seconds),
                  StrFormat("%.2fs", online_4.seconds),
                  StrFormat("%.2fs", online_16.seconds),
                  StrFormat("%.3fs", em / 10.0), StrFormat("%.3fs", cbcc / 10.0)});
    const std::size_t answers = d.answers.num_answers();
    report.Add(StrFormat("mv@%zu_answers", answers), mv, "s");
    report.Add(StrFormat("em@%zu_answers", answers), em, "s");
    report.Add(StrFormat("cbcc@%zu_answers", answers), cbcc, "s");
    report.Add(StrFormat("cpa_offline@%zu_answers", answers), offline_1.seconds, "s");
    report.Add(StrFormat("cpa_offline_prediction_ms@%zu_answers", answers),
               offline_1.prediction_seconds * 1e3, "ms");
    report.Add(StrFormat("cpa_offline_t2@%zu_answers", answers), offline_2.seconds,
               "s");
    report.Add(StrFormat("cpa_offline_t4@%zu_answers", answers), offline_4.seconds,
               "s");
    report.Add(StrFormat("cpa_online@%zu_answers", answers), online_1.seconds, "s");
    report.Add(StrFormat("cpa_online_prediction_ms@%zu_answers", answers),
               online_1.prediction_seconds * 1e3, "ms");
    report.Add(StrFormat("cpa_online4@%zu_answers", answers), online_4.seconds, "s");
    report.Add(StrFormat("cpa_online16@%zu_answers", answers), online_16.seconds,
               "s");
  }
  table.Print();
  CPA_CHECK_OK(report.Write());
  std::printf(
      "\nExpected shape (paper Fig 7): MV cheapest; online CPA far below "
      "offline CPA (the paper reports up to 32x, combining incremental "
      "computation and 16-way parallelism); EM/cBCC between MV and offline "
      "once normalised per label. The offline-N columns track the "
      "sweep-scheduler speedup (bit-identical results for every N). "
      "Parallel speed-ups here are bounded by the physical cores of the "
      "benchmark container.\n");
  return 0;
}
