#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/sweep/simd.h"
#include "util/logging.h"

namespace cpa::bench {

BenchConfig ParseBenchConfig(int argc, char** argv, double default_scale,
                             std::size_t default_runs) {
  const auto parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "flag error: %s\n", parsed.status().ToString().c_str());
    std::exit(2);
  }
  const Flags& flags = parsed.value();
  BenchConfig config;
  config.scale = flags.GetDouble("scale", default_scale);
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 20180417));
  config.cpa_iterations =
      static_cast<std::size_t>(flags.GetInt("cpa-iterations", 25));
  config.runs = static_cast<std::size_t>(
      flags.GetInt("runs", static_cast<long long>(default_runs)));
  config.out_dir = flags.GetString("out-dir", ".");
  // Fail fast: benches can run for minutes, and an unwritable report
  // directory must not surface only at the final Write().
  const std::string probe = config.out_dir + "/.bench_out_dir_probe";
  if (std::FILE* f = std::fopen(probe.c_str(), "w"); f != nullptr) {
    std::fclose(f);
    std::remove(probe.c_str());
  } else {
    std::fprintf(stderr, "flag error: --out-dir %s is not writable\n",
                 config.out_dir.c_str());
    std::exit(2);
  }
  return config;
}

Dataset LoadPaperDataset(PaperDatasetId id, const BenchConfig& config) {
  FactoryOptions options;
  options.scale = config.scale;
  options.seed = config.seed;
  auto dataset = MakePaperDataset(id, options);
  CPA_CHECK(dataset.ok()) << dataset.status().ToString();
  return std::move(dataset).value();
}

void PrintHeader(const std::string& artefact, const std::string& description,
                 const BenchConfig& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artefact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("scale=%.2f of published dataset sizes, seed=%llu\n", config.scale,
              static_cast<unsigned long long>(config.seed));
  std::printf("==============================================================\n");
}

// ---------------------------------------------------------------------------
// BenchReport
// ---------------------------------------------------------------------------

BenchReport::BenchReport(std::string name, const BenchConfig& config)
    : name_(std::move(name)), config_(config) {}

void BenchReport::Add(std::string_view name, double value,
                      std::string_view unit) {
  JsonValue::Object row;
  row["name"] = JsonValue(std::string(name));
  row["value"] = JsonValue(value);
  row["unit"] = JsonValue(std::string(unit));
  results_.push_back(JsonValue(std::move(row)));
}

std::string BenchReport::ToJson() const {
  JsonValue::Object config;
  config["scale"] = JsonValue(config_.scale);
  config["seed"] = JsonValue(static_cast<double>(config_.seed));
  config["cpa_iterations"] = JsonValue(static_cast<double>(config_.cpa_iterations));
  config["runs"] = JsonValue(static_cast<double>(config_.runs));
  // Which kernel table produced these numbers — scalar/AVX2 results are
  // bit-identical but not time-identical, so reports must be comparable
  // only within a level (see BENCHMARKS.md).
  config["simd"] =
      JsonValue(std::string(simd::LevelName(simd::ActiveLevel())));
  config["simd_forced"] = JsonValue(simd::ActiveLevelForced());

  JsonValue::Object report;
  report["bench"] = JsonValue(name_);
  report["config"] = JsonValue(std::move(config));
  report["results"] = JsonValue(results_);
  return JsonValue(std::move(report)).Dump() + "\n";
}

std::string BenchReport::path() const {
  return config_.out_dir + "/BENCH_" + name_ + ".json";
}

Status BenchReport::Write() const {
  const std::string file = path();
  std::ofstream out(file);
  if (!out) {
    return Status::IOError("cannot open " + file + " for writing");
  }
  out << ToJson();
  out.close();
  if (!out) {
    return Status::IOError("failed writing " + file);
  }
  CPA_LOG(kInfo) << "wrote " << file;
  return Status::OK();
}

}  // namespace cpa::bench
