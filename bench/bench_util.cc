#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace cpa::bench {

BenchConfig ParseBenchConfig(int argc, char** argv, double default_scale,
                             std::size_t default_runs) {
  const auto parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "flag error: %s\n", parsed.status().ToString().c_str());
    std::exit(2);
  }
  const Flags& flags = parsed.value();
  BenchConfig config;
  config.scale = flags.GetDouble("scale", default_scale);
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 20180417));
  config.cpa_iterations =
      static_cast<std::size_t>(flags.GetInt("cpa-iterations", 25));
  config.runs = static_cast<std::size_t>(
      flags.GetInt("runs", static_cast<long long>(default_runs)));
  return config;
}

Dataset LoadPaperDataset(PaperDatasetId id, const BenchConfig& config) {
  FactoryOptions options;
  options.scale = config.scale;
  options.seed = config.seed;
  auto dataset = MakePaperDataset(id, options);
  CPA_CHECK(dataset.ok()) << dataset.status().ToString();
  return std::move(dataset).value();
}

void PrintHeader(const std::string& artefact, const std::string& description,
                 const BenchConfig& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artefact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("scale=%.2f of published dataset sizes, seed=%llu\n", config.scale,
              static_cast<unsigned long long>(config.seed));
  std::printf("==============================================================\n");
}

}  // namespace cpa::bench
