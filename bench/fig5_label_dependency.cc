/// Regenerates Fig 5 — effects of label dependencies on the entity
/// dataset (the most strongly correlated one). Missing true labels are
/// added to answers that contain at least one correct label
/// (dependency-aware workers); each method's performance on the ORIGINAL
/// answers is reported as a ratio of its performance on the ENRICHED
/// answers. A low ratio = the method loses a lot by not exploiting the
/// dependencies itself. Baseline = cBCC.

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/experiment.h"
#include "simulation/perturbations.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader(
      "Fig 5 — effects of label dependency (entity dataset)",
      "Ratio of each method's original performance to its performance when "
      "the co-occurring labels are made explicit in the answers.",
      config);

  const Dataset dataset = bench::LoadPaperDataset(PaperDatasetId::kEntity, config);
  const std::vector<std::string> methods = {"cBCC", "CPA"};

  std::map<std::string, SetMetrics> original;
  for (const std::string& method : methods) {
    EngineConfig engine_config = EngineConfig::ForDataset(method, dataset);
    engine_config.cpa.max_iterations = config.cpa_iterations;
    const auto result = RunExperiment(engine_config, dataset);
    if (result.ok()) original[method] = result.value().metrics;
    std::fprintf(stderr, "[fig5] %s baseline done\n", method.c_str());
  }

  TablePrinter table({"Dependency%", "dP cBCC", "dP CPA", "dR cBCC", "dR CPA"});
  bench::BenchReport report("fig5_label_dependency", config);
  for (const int level : {10, 15, 20, 25, 30}) {
    Rng rng(config.seed ^ 0xF1605ULL);
    const auto enriched =
        InjectLabelDependencies(dataset, level / 100.0, rng);
    if (!enriched.ok()) {
      std::fprintf(stderr, "enrichment failed: %s\n",
                   enriched.status().ToString().c_str());
      return 1;
    }
    std::map<std::string, SetMetrics> with;
    for (const std::string& method : methods) {
      EngineConfig engine_config = EngineConfig::ForDataset(method, enriched.value());
      engine_config.cpa.max_iterations = config.cpa_iterations;
      const auto result = RunExperiment(engine_config, enriched.value());
      if (result.ok()) with[method] = result.value().metrics;
    }
    const auto ratio = [&](const std::string& method, bool use_precision) {
      const double enriched_value = use_precision ? with[method].precision
                                                  : with[method].recall;
      const double original_value = use_precision ? original[method].precision
                                                  : original[method].recall;
      return enriched_value > 0.0 ? original_value / enriched_value : 0.0;
    };
    table.AddRow({StrFormat("%d", level), StrFormat("%.2f", ratio("cBCC", true)),
                  StrFormat("%.2f", ratio("CPA", true)),
                  StrFormat("%.2f", ratio("cBCC", false)),
                  StrFormat("%.2f", ratio("CPA", false))});
    for (const std::string& method : methods) {
      report.Add(StrFormat("%s@%d%%_dependency_precision_ratio", method.c_str(),
                           level),
                 ratio(method, true), "ratio");
      report.Add(StrFormat("%s@%d%%_dependency_recall_ratio", method.c_str(),
                           level),
                 ratio(method, false), "ratio");
    }
    std::fprintf(stderr, "[fig5] dependency %d%% done\n", level);
  }
  table.Print();
  CPA_CHECK_OK(report.Write());
  std::printf(
      "\nExpected shape (paper Fig 5): the baseline's ratio drops steeply as "
      "the dependency level grows (at 30%% it loses nearly half of precision "
      "and more than half of recall relative to dependency-aware answers); "
      "CPA's ratio stays much closer to 1 because it already exploits the "
      "co-occurrence structure.\n");
  return 0;
}
