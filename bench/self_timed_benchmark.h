#ifndef CPA_BENCH_SELF_TIMED_BENCHMARK_H_
#define CPA_BENCH_SELF_TIMED_BENCHMARK_H_

/// \file self_timed_benchmark.h
/// \brief Self-timed fallback for google-benchmark.
///
/// Implements exactly the subset of the `benchmark::` API that
/// `bench/micro_kernels.cc` uses — `State` with the range-based-for
/// iteration protocol and `range(0)`, `DoNotOptimize`, `BENCHMARK(...)` /
/// `->Arg(...)` registration, `BENCHMARK_MAIN()` — so the target builds and
/// reports numbers on machines where the library is absent (the CMake list
/// picks this header when `find_package(benchmark)` fails).
///
/// Methodology: each benchmark spins until a minimum wall time has elapsed,
/// doubling the iteration target between clock reads so ns-scale bodies are
/// not dominated by timer overhead, then reports mean ns/iteration. No
/// statistical repetitions, CPU-frequency pinning or counter support —
/// trend-level numbers, not publication-grade; install google-benchmark for
/// those.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace benchmark {

/// \brief Per-run iteration controller handed to the benchmark body.
class State {
 public:
  State(std::int64_t range0, bool has_range, double min_seconds)
      : range0_(range0), has_range_(has_range), min_seconds_(min_seconds) {}

  /// Argument supplied via `->Arg(...)`; 0 when the benchmark has none.
  std::int64_t range(std::size_t index = 0) const {
    (void)index;  // micro_kernels only ever reads range(0)
    return has_range_ ? range0_ : 0;
  }

  /// The range-based-for protocol: `operator!=` doubles as KeepRunning.
  /// The value type carries the `unused` attribute (google-benchmark does
  /// the same) so the idiomatic `for (auto _ : state)` stays warning-free
  /// under -Werror.
  struct __attribute__((unused)) IterationToken {};
  class iterator {
   public:
    explicit iterator(State* state) : state_(state) {}
    bool operator!=(const iterator&) { return state_->KeepRunning(); }
    iterator& operator++() { return *this; }
    IterationToken operator*() const { return IterationToken(); }

   private:
    State* state_;
  };

  iterator begin() {
    iterations_ = 0;
    next_check_ = 1;
    start_ = std::chrono::steady_clock::now();
    return iterator(this);
  }
  iterator end() { return iterator(this); }

  std::int64_t iterations() const { return iterations_; }
  double elapsed_seconds() const { return elapsed_; }

 private:
  bool KeepRunning() {
    if (iterations_ < next_check_) {
      ++iterations_;
      return true;
    }
    elapsed_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
                   .count();
    if (elapsed_ < min_seconds_) {
      next_check_ *= 2;
      ++iterations_;
      return true;
    }
    return false;
  }

  std::int64_t range0_;
  bool has_range_;
  double min_seconds_;
  std::int64_t iterations_ = 0;
  std::int64_t next_check_ = 1;
  double elapsed_ = 0.0;
  std::chrono::steady_clock::time_point start_;
};

/// Keeps `value` observable so the optimizer cannot delete the computation
/// that produced it.
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

namespace internal {

/// \brief One registered benchmark: a body plus its `->Arg(...)` variants.
class Benchmark {
 public:
  Benchmark(std::string name, void (*fn)(State&))
      : name_(std::move(name)), fn_(fn) {}

  Benchmark* Arg(std::int64_t value) {
    args_.push_back(value);
    return this;
  }

  void Run(double min_seconds) const {
    if (args_.empty()) {
      RunOne(name_, 0, false, min_seconds);
      return;
    }
    for (std::int64_t arg : args_) {
      RunOne(name_ + "/" + std::to_string(arg), arg, true, min_seconds);
    }
  }

 private:
  void RunOne(const std::string& label, std::int64_t arg, bool has_range,
              double min_seconds) const {
    State state(arg, has_range, min_seconds);
    fn_(state);
    const double ns_per_iter =
        state.iterations() > 0
            ? state.elapsed_seconds() * 1e9 / static_cast<double>(state.iterations())
            : 0.0;
    std::printf("%-40s %12lld %14.1f\n", label.c_str(),
                static_cast<long long>(state.iterations()), ns_per_iter);
    std::fflush(stdout);
  }

  std::string name_;
  void (*fn_)(State&);
  std::vector<std::int64_t> args_;
};

inline std::vector<Benchmark*>& Registry() {
  static std::vector<Benchmark*> registry;
  return registry;
}

inline Benchmark* Register(const char* name, void (*fn)(State&)) {
  Benchmark* bench = new Benchmark(name, fn);
  Registry().push_back(bench);
  return bench;
}

inline int RunAllBenchmarks() {
  std::printf(
      "self-timed micro-benchmark harness (google-benchmark not found at "
      "configure time; numbers are trend-level)\n");
  std::printf("%-40s %12s %14s\n", "benchmark", "iterations", "ns/iter");
  std::printf(
      "--------------------------------------------------------------------\n");
  for (const Benchmark* bench : Registry()) {
    bench->Run(/*min_seconds=*/0.05);
  }
  return 0;
}

}  // namespace internal
}  // namespace benchmark

#define CPA_SELF_TIMED_CONCAT_IMPL(a, b) a##b
#define CPA_SELF_TIMED_CONCAT(a, b) CPA_SELF_TIMED_CONCAT_IMPL(a, b)

#define BENCHMARK(fn)                                             \
  static ::benchmark::internal::Benchmark* CPA_SELF_TIMED_CONCAT( \
      cpa_self_timed_bench_, __LINE__) = ::benchmark::internal::Register(#fn, fn)

#define BENCHMARK_MAIN() \
  int main(int, char**) { return ::benchmark::internal::RunAllBenchmarks(); }

#endif  // CPA_BENCH_SELF_TIMED_BENCHMARK_H_
