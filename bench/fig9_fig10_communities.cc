/// Regenerates Fig 9 (worker communities per label: sensitivity vs
/// specificity scatter with the communities CPA infers, for the image and
/// entity datasets) and Fig 10 (Appendix A: the two-coin characterisation
/// of the simulated worker population).

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "core/cpa.h"
#include "eval/metrics.h"
#include "simulation/worker_profile.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

namespace {

void PrintLabelCommunities(const Dataset& dataset, const CpaModel& model,
                           LabelId label, const char* label_name) {
  const auto stats = ComputeWorkerLabelStats(dataset.answers, dataset.ground_truth,
                                             label);
  // Bucket the (specificity, sensitivity) plane per inferred community.
  std::map<std::size_t, std::vector<const WorkerLabelStats*>> by_community;
  for (const auto& s : stats) {
    if (s.positives < 3) continue;  // too few items carrying the label
    by_community[model.WorkerCommunity(s.worker)].push_back(&s);
  }
  std::printf("\nlabel #%s (%u): %zu inferred communities among workers with >=3 "
              "labelled items\n",
              label_name, label, by_community.size());
  for (const auto& [community, members] : by_community) {
    double sens = 0.0;
    double spec = 0.0;
    for (const auto* s : members) {
      sens += s->sensitivity;
      spec += s->specificity;
    }
    std::printf("  community %2zu: %3zu workers, centroid sens=%.2f spec=%.2f\n",
                community, members.size(), sens / members.size(),
                spec / members.size());
  }
}

/// The label carried by the most answered items (a "popular" label, like
/// the paper's #sky / #product examples).
LabelId PopularLabel(const Dataset& dataset, std::size_t rank) {
  std::vector<std::size_t> counts(dataset.num_labels, 0);
  for (ItemId i = 0; i < dataset.num_items(); ++i) {
    for (LabelId c : dataset.ground_truth[i]) ++counts[c];
  }
  std::vector<LabelId> order(dataset.num_labels);
  for (LabelId c = 0; c < dataset.num_labels; ++c) order[c] = c;
  std::sort(order.begin(), order.end(),
            [&](LabelId a, LabelId b) { return counts[a] > counts[b]; });
  return order[std::min(rank, order.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader(
      "Fig 9 + Fig 10 — worker communities and worker types",
      "Fig 9: per-label sensitivity/specificity of workers, grouped by the "
      "community CPA infers. Fig 10: the two-coin characterisation of the "
      "simulated population.",
      config);

  bench::BenchReport report("fig9_fig10_communities", config);

  // --- Fig 9 on image and entity.
  for (PaperDatasetId id : {PaperDatasetId::kImage, PaperDatasetId::kEntity}) {
    const Dataset dataset = bench::LoadPaperDataset(id, config);
    CpaOptions options =
        CpaOptions::Recommended(dataset.num_items(), dataset.num_labels);
    options.max_iterations = config.cpa_iterations;
    CpaAggregator cpa(options);
    const auto result = cpa.Aggregate(dataset.answers, dataset.num_labels);
    if (!result.ok()) {
      std::fprintf(stderr, "fit failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nFig 9 — %s dataset (effective communities: %zu of %zu)\n",
                dataset.name.c_str(), cpa.model()->EffectiveCommunities(1.0),
                cpa.model()->num_communities());
    report.Add(StrFormat("effective_communities@%s", dataset.name.c_str()),
               static_cast<double>(cpa.model()->EffectiveCommunities(1.0)),
               "communities");
    PrintLabelCommunities(dataset, *cpa.model(), PopularLabel(dataset, 0), "top-1");
    PrintLabelCommunities(dataset, *cpa.model(), PopularLabel(dataset, 1), "top-2");
  }

  // --- Fig 10: simulated population, pooled sensitivity/specificity per type.
  std::printf("\nFig 10 — two-coin characterisation of the simulated population\n");
  const Dataset dataset = bench::LoadPaperDataset(PaperDatasetId::kImage, config);
  // Worker archetypes are classified from empirical behaviour (the factory
  // draws types internally); buckets correspond to Appendix A's regions.
  const auto stats = ComputeWorkerOverallStats(dataset.answers, dataset.ground_truth,
                                               dataset.num_labels);
  TablePrinter table({"Worker bucket", "#workers", "sensitivity", "specificity"});
  std::map<std::string, std::vector<const WorkerLabelStats*>> buckets;
  for (const auto& s : stats) {
    const char* bucket = s.sensitivity > 0.75   ? "reliable-like"
                         : s.sensitivity > 0.35 ? "sloppy-like"
                                                : "spammer-like";
    buckets[bucket].push_back(&s);
  }
  for (const auto& [bucket, members] : buckets) {
    double sens = 0.0;
    double spec = 0.0;
    for (const auto* s : members) {
      sens += s->sensitivity;
      spec += s->specificity;
    }
    table.AddRow({bucket, StrFormat("%zu", members.size()),
                  StrFormat("%.2f", sens / members.size()),
                  StrFormat("%.2f", spec / members.size())});
    report.Add(StrFormat("%s_workers", bucket.c_str()),
               static_cast<double>(members.size()), "workers");
    report.Add(StrFormat("%s_sensitivity", bucket.c_str()),
               sens / members.size(), "fraction");
    report.Add(StrFormat("%s_specificity", bucket.c_str()),
               spec / members.size(), "fraction");
  }
  table.Print();
  CPA_CHECK_OK(report.Write());
  std::printf(
      "\nExpected shape (paper Fig 9/10): multiple communities per label with "
      "different centroids; different labels have different community "
      "structure (calls for the nonparametric model, R4). The population "
      "scatter separates reliable (high/high), sloppy (low sens, high spec) "
      "and spammer clouds, echoing the Section 5.1 simulation mix of "
      "43/32/25.\n");
  return 0;
}
