#!/usr/bin/env python3
"""Fails on dead relative links in markdown files.

Usage: check_links.py FILE.md [FILE.md ...]

Checks every inline markdown link `[text](target)` whose target is a
relative path (external schemes and pure in-page anchors are skipped)
and reports targets that do not exist on disk, resolved against the
linking file's directory. Exit code 1 when any link is dead.
"""

import os
import re
import sys

# Inline links; targets may carry an anchor suffix. Reference-style and
# autolinks are out of scope (the repo's docs use inline links only).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def dead_links(path):
    text = open(path, encoding="utf-8").read()
    # Fenced code blocks contain protocol examples, not links.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    base = os.path.dirname(os.path.abspath(path))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        if not os.path.exists(os.path.join(base, file_part)):
            yield target


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        if not os.path.exists(path):
            print(f"{path}: file not found", file=sys.stderr)
            failures += 1
            continue
        for target in dead_links(path):
            print(f"{path}: dead link -> {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} dead link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(argv) - 1} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
