#!/usr/bin/env python3
"""End-to-end smoke test for a running `cpa_server --tcp`.

Usage: tcp_smoke.py [--host HOST] --port PORT
       tcp_smoke.py --router --server-bin build/src/cpa_server
       tcp_smoke.py --pipelined --server-bin build/src/cpa_server

Speaks the server's real wire protocol from scratch — the 8-byte frame
header and the binary codec are reimplemented here in Python, so this
script cross-checks the C++ encoder/decoder pair against an independent
implementation of the spec in docs/API.md. It drives the full session
lifecycle twice over one dataset:

  * a JSON session: every op as a JSON frame (kind 1), several frames
    batched into single `send()` calls;
  * a binary session: observe/snapshot/finalize as binary frames
    (kind 2), open/close as JSON.

and asserts both transports report the same counters and byte-identical
final predictions. Also pokes the server's error paths (unknown op,
malformed binary body), checks the connection survives them, and probes
sequence-number support (a sequenced `methods` request — a server that
echoes the tag pipelines, one that rejects the "reserved" bytes is
legacy). Legacy (unsequenced) replies are still asserted to carry
all-zero reserved header bytes, byte for byte.

With `--router` the script spawns its own fleet — two `cpa_server --tcp`
workers plus a `cpa_server --router` front — and additionally
reimplements the router's FNV-1a consistent-hash ring to pick session
ids it knows land on specific workers, runs the same two sessions
through the router, then SIGKILLs one worker and asserts its sessions
get clean error replies while the other worker's sessions keep serving.

With `--pipelined` the script spawns a `cpa_server --tcp --event-loop`,
negotiates sequencing, opens a full-refit CPA session big enough that a
refresh snapshot is deliberately slow, then sends
[sequenced refresh + K sequenced cached polls] as one burst and asserts
the polls' replies overtake the refresh reply (out-of-order completion),
every reply matching its request's sequence id exactly once.

Exit code 0 on success; raises with a diagnostic otherwise.
"""

import argparse
import json
import random
import signal
import socket
import struct
import subprocess
import sys
import time

FRAME_HEADER = struct.Struct("<IBBH")  # length, kind, flags, sequence
KIND_JSON = 1
KIND_BINARY = 2
FLAG_SEQUENCED = 0x01

MSG_OBSERVE_REQUEST = 0x01
MSG_SNAPSHOT_REQUEST = 0x02
MSG_FINALIZE_REQUEST = 0x03
MSG_ERROR = 0x7F
MSG_OBSERVE_ACK = 0x81
MSG_SNAPSHOT_RESPONSE = 0x82

FLAG_REFRESH = 1 << 0
FLAG_PREDICTIONS = 1 << 1

# A small partial-agreement stream: 4 items, 6 workers, label sets that
# overlap without matching exactly (the paper's setting).
ANSWERS = [
    (0, 0, [0, 1]), (0, 1, [0]), (0, 2, [0, 1, 2]),
    (1, 0, [2]), (1, 3, [2, 3]), (1, 4, [2]),
    (2, 1, [1, 3]), (2, 2, [1]), (2, 5, [1, 3]),
    (3, 3, [0, 3]), (3, 4, [3]), (3, 5, [0, 3]),
]
OPEN_CONFIG = {"method": "MV", "num_items": 4, "num_workers": 6, "num_labels": 4}


def frame(kind, payload):
    return FRAME_HEADER.pack(len(payload), kind, 0, 0) + payload


def seq_frame(kind, payload, sequence):
    return FRAME_HEADER.pack(len(payload), kind, FLAG_SEQUENCED,
                             sequence) + payload


def json_frame(obj):
    return frame(KIND_JSON, json.dumps(obj, separators=(",", ":")).encode())


class FrameReader:
    """Incremental decoder for the server's response byte stream."""

    def __init__(self, sock):
        self.sock = sock
        self.buffer = b""

    def _next(self):
        while True:
            if len(self.buffer) >= FRAME_HEADER.size:
                length, kind, flags, seq = FRAME_HEADER.unpack_from(self.buffer)
                end = FRAME_HEADER.size + length
                if len(self.buffer) >= end:
                    payload = self.buffer[FRAME_HEADER.size:end]
                    self.buffer = self.buffer[end:]
                    return kind, payload, flags, seq
            chunk = self.sock.recv(65536)
            if not chunk:
                raise AssertionError("server closed the connection mid-read")
            self.buffer += chunk

    def next_frame(self):
        """A legacy reply: the pre-sequencing reserved-bytes contract."""
        kind, payload, flags, seq = self._next()
        assert flags == 0 and seq == 0, "server sent nonzero reserved bytes"
        return kind, payload

    def next_tagged_frame(self):
        """Returns (kind, payload, sequence-or-None)."""
        kind, payload, flags, seq = self._next()
        assert flags in (0, FLAG_SEQUENCED), f"unknown flags {flags:#x}"
        if flags == 0:
            assert seq == 0, "untagged reply with a nonzero sequence"
            return kind, payload, None
        return kind, payload, seq


def negotiate_sequencing(sock, reader):
    """True iff the server echoes sequence tags. A pre-sequencing server
    answers the probe with an untagged 'reserved bytes' error reply —
    recoverable, so the connection is reusable either way."""
    sock.sendall(seq_frame(KIND_JSON, b'{"op":"methods"}', 1))
    kind, payload, seq = reader.next_tagged_frame()
    assert kind == KIND_JSON, "negotiation: expected a JSON reply"
    reply = json.loads(payload)
    if seq == 1:
        assert reply.get("ok") is True, reply
        return True
    assert seq is None and reply.get("ok") is False, reply
    return False


def encode_string16(text):
    raw = text.encode()
    return struct.pack("<H", len(raw)) + raw


def encode_observe(session, answers):
    body = bytes([MSG_OBSERVE_REQUEST]) + encode_string16(session)
    body += struct.pack("<I", len(answers))
    for item, worker, labels in answers:
        body += struct.pack("<IIH", item, worker, len(labels))
        body += b"".join(struct.pack("<I", label) for label in labels)
    return body


def encode_snapshot_like(msg_type, session, flags):
    return bytes([msg_type]) + encode_string16(session) + bytes([flags])


class BinaryReader:
    def __init__(self, body):
        self.body = body
        self.offset = 0

    def read(self, fmt):
        values = struct.unpack_from(fmt, self.body, self.offset)
        self.offset += struct.calcsize(fmt)
        return values if len(values) > 1 else values[0]

    def read_string(self, length_fmt="<H"):
        length = self.read(length_fmt)
        raw = self.body[self.offset:self.offset + length]
        assert len(raw) == length, "binary string truncated"
        self.offset += length
        return raw.decode()

    def read_label_set(self):
        count = self.read("<H")
        return [self.read("<I") for _ in range(count)]


def decode_binary_response(body):
    """Returns a dict mirroring the fields of the JSON responses."""
    reader = BinaryReader(body)
    msg_type = reader.read("<B")
    if msg_type == MSG_ERROR:
        code = reader.read("<B")
        op = reader.read_string()
        session = reader.read_string()
        message = reader.read_string("<I")
        return {"ok": False, "code": code, "op": op, "session": session,
                "error": message}
    if msg_type == MSG_OBSERVE_ACK:
        session = reader.read_string()
        batches, answers, changed, snap_batches, snap_answers = reader.read("<5Q")
        return {"ok": True, "op": "observe", "session": session,
                "batches_seen": batches, "answers_seen": answers}
    if msg_type == MSG_SNAPSHOT_RESPONSE:
        op_byte = reader.read("<B")
        out = {"ok": True,
               "op": "finalize" if op_byte == MSG_FINALIZE_REQUEST else "snapshot",
               "session": reader.read_string(), "method": reader.read_string()}
        out["batches_seen"], out["answers_seen"], out["iterations"] = \
            reader.read("<3Q")
        out["learning_rate"] = reader.read("<d")
        out["finalized"] = reader.read("<B") != 0
        if reader.read("<B") != 0:  # has_predictions
            out["predictions"] = [reader.read_label_set()
                                  for _ in range(reader.read("<I"))]
        return out
    raise AssertionError(f"unknown binary response type {msg_type:#x}")


def expect_json_ok(kind, payload, op):
    assert kind == KIND_JSON, f"{op}: expected a JSON reply frame"
    reply = json.loads(payload)
    assert reply.get("ok") is True, f"{op}: {reply}"
    return reply


def run_json_session(sock, reader, session):
    """Whole lifecycle as JSON frames, all requests batched in one send."""
    requests = [json_frame({"op": "open", "session": session,
                            "config": OPEN_CONFIG})]
    for start in range(0, len(ANSWERS), 4):
        batch = [{"item": i, "worker": w, "labels": labels}
                 for i, w, labels in ANSWERS[start:start + 4]]
        requests.append(json_frame({"op": "observe", "session": session,
                                    "answers": batch}))
    requests.append(json_frame({"op": "finalize", "session": session}))
    requests.append(json_frame({"op": "close", "session": session}))
    sock.sendall(b"".join(requests))  # batching: 6 frames, one syscall

    expect_json_ok(*reader.next_frame(), op="open")
    for index in range(3):
        ack = expect_json_ok(*reader.next_frame(), op=f"observe[{index}]")
        assert ack["batches_seen"] == index + 1, ack
    final = expect_json_ok(*reader.next_frame(), op="finalize")
    expect_json_ok(*reader.next_frame(), op="close")
    assert final["finalized"] and final["answers_seen"] == len(ANSWERS), final
    return final


def run_binary_session(sock, reader, session):
    """Hot ops as binary frames; open/close stay JSON on the same socket."""
    sock.sendall(json_frame({"op": "open", "session": session,
                             "config": OPEN_CONFIG}))
    expect_json_ok(*reader.next_frame(), op="open")

    # All three observes plus the snapshot request in a single send.
    batched = b"".join(
        frame(KIND_BINARY, encode_observe(session, ANSWERS[start:start + 4]))
        for start in range(0, len(ANSWERS), 4))
    batched += frame(KIND_BINARY, encode_snapshot_like(
        MSG_SNAPSHOT_REQUEST, session, FLAG_REFRESH | FLAG_PREDICTIONS))
    sock.sendall(batched)
    for index in range(3):
        kind, payload = reader.next_frame()
        assert kind == KIND_BINARY, "observe: expected a binary reply frame"
        ack = decode_binary_response(payload)
        assert ack["ok"] and ack["batches_seen"] == index + 1, ack
    kind, payload = reader.next_frame()
    snapshot = decode_binary_response(payload)
    assert snapshot["ok"] and snapshot["answers_seen"] == len(ANSWERS), snapshot

    sock.sendall(frame(KIND_BINARY, encode_snapshot_like(
        MSG_FINALIZE_REQUEST, session, FLAG_PREDICTIONS)))
    final = decode_binary_response(reader.next_frame()[1])
    assert final["ok"] and final["finalized"], final
    assert final["predictions"] == snapshot["predictions"], \
        "finalize changed the MV consensus"

    sock.sendall(json_frame({"op": "close", "session": session}))
    expect_json_ok(*reader.next_frame(), op="close")
    return final


def poke_error_paths(sock, reader):
    """Bad requests must get error replies, not kill the connection."""
    sock.sendall(json_frame({"op": "warp"}))
    kind, payload = reader.next_frame()
    assert kind == KIND_JSON and json.loads(payload)["ok"] is False
    sock.sendall(frame(KIND_BINARY, b"\xee\xee\xee"))
    kind, payload = reader.next_frame()
    assert kind == KIND_BINARY
    error = decode_binary_response(payload)
    # A worker rejects the unknown type byte; a router rejects the frame
    # even earlier, when the bogus session-length prefix overruns the body.
    assert not error["ok"] and ("unknown binary request" in error["error"]
                                or "truncated" in error["error"]), error
    # Connection still serves requests after both rejections.
    sock.sendall(json_frame({"op": "list"}))
    expect_json_ok(*reader.next_frame(), op="list")


# --- the router fleet mode -------------------------------------------------

def ring_hash(data):
    """FNV-1a 64 + Murmur3 finalizer — must match RingHash in
    src/server/router.cc bit for bit."""
    value = 0xCBF29CE484222325
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    return value


def ring_worker(session, workers, virtual_nodes=64):
    """Independent reimplementation of the router's consistent-hash ring."""
    ring = sorted((ring_hash(f"{addr}#{v}".encode()), index)
                  for index, addr in enumerate(workers)
                  for v in range(virtual_nodes))
    key = ring_hash(session.encode())
    for point, index in ring:
        if point >= key:
            return index
    return ring[0][1]


def session_on(worker_index, workers, tag):
    """A session id the ring assigns to `worker_index`."""
    for n in range(10_000):
        candidate = f"{tag}-{worker_index}-{n}"
        if ring_worker(candidate, workers) == worker_index:
            return candidate
    raise AssertionError(f"no session id found for worker {worker_index}")


def spawn_server(server_bin, extra_args, announce):
    """Starts a cpa_server process and parses its announced endpoint."""
    proc = subprocess.Popen([server_bin] + extra_args,
                            stderr=subprocess.PIPE, text=True)
    deadline = time.monotonic() + 30
    for line in proc.stderr:
        if announce in line:
            endpoint = line.split(announce, 1)[1].split()[0]
            return proc, int(endpoint.rsplit(":", 1)[1])
        if time.monotonic() > deadline:
            break
    proc.kill()
    raise AssertionError(f"server never announced '{announce}'")


def run_router_mode(server_bin, host):
    """Spawns 2 workers + a router, drives sessions, kills a worker."""
    procs = []
    try:
        workers = []
        for _ in range(2):
            proc, port = spawn_server(server_bin, ["--tcp", "--bind", host],
                                      "listening on ")
            procs.append(proc)
            workers.append(f"{host}:{port}")
        router_proc, router_port = spawn_server(
            server_bin,
            ["--router", "--workers", ",".join(workers), "--bind", host],
            "routing on ")
        procs.append(router_proc)

        with socket.create_connection((host, router_port), timeout=30) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = FrameReader(sock)

            # The same two lifecycles as single-server mode, but with ids
            # the Python ring places on *different* workers — exercising
            # cross-worker forwarding on one client connection.
            json_final = run_json_session(sock, reader,
                                          session_on(0, workers, "smoke-json"))
            binary_final = run_binary_session(
                sock, reader, session_on(1, workers, "smoke-binary"))
            assert json_final["predictions"] == binary_final["predictions"], \
                "workers disagree on the same stream"
            poke_error_paths(sock, reader)

            # Session-less opens get router-assigned ids (so they hash
            # back to the worker that owns them).
            sock.sendall(json_frame({"op": "open", "config": OPEN_CONFIG}))
            opened = expect_json_ok(*reader.next_frame(), op="open")
            assert opened["session"].startswith("r"), opened
            sock.sendall(json_frame({"op": "close",
                                     "session": opened["session"]}))
            expect_json_ok(*reader.next_frame(), op="close")

            # One live session per worker, then SIGKILL worker 1.
            survivor = session_on(0, workers, "survivor")
            casualty = session_on(1, workers, "casualty")
            for session in (survivor, casualty):
                sock.sendall(json_frame({"op": "open", "session": session,
                                         "config": OPEN_CONFIG}))
                expect_json_ok(*reader.next_frame(), op="open")
            procs[1].send_signal(signal.SIGKILL)
            procs[1].wait()

            # The dead worker's session fails with a clean router error …
            sock.sendall(json_frame({"op": "snapshot", "session": casualty}))
            kind, payload = reader.next_frame()
            error = json.loads(payload)
            assert error["ok"] is False and error["code"] == "IOError", error
            assert "unavailable" in error["error"], error

            # … the survivor's session still serves, on the same client
            # connection, and `list` degrades to the reachable fleet.
            batch = [{"item": i, "worker": w, "labels": labels}
                     for i, w, labels in ANSWERS[:4]]
            sock.sendall(json_frame({"op": "observe", "session": survivor,
                                     "answers": batch}))
            ack = expect_json_ok(*reader.next_frame(), op="observe")
            assert ack["answers_seen"] == 4, ack
            sock.sendall(json_frame({"op": "list"}))
            listed = expect_json_ok(*reader.next_frame(), op="list")
            ids = sorted(row["session"] for row in listed["sessions"])
            assert ids == [survivor], ids

        print(f"tcp_smoke: OK — router fleet of {len(workers)} workers "
              f"agreed on {len(json_final['predictions'])} predictions, "
              f"survived a SIGKILLed worker")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


# --- the pipelined (out-of-order) mode -------------------------------------

def run_pipelined_mode(server_bin, host):
    """Spawns an epoll server, negotiates sequencing, and proves cached
    polls overtake a deliberately slowed refresh in one pipelined burst."""
    # A stream big enough that a full-refit CPA refresh takes real time
    # while a cached poll stays microseconds — the gap the polls overtake.
    rng = random.Random(20180417)
    num_items, num_workers, num_labels = 150, 40, 8
    answers = []
    for item in range(num_items):
        for worker in rng.sample(range(num_workers), 8):
            count = rng.randint(1, 3)
            labels = sorted(rng.sample(range(num_labels), count))
            answers.append({"item": item, "worker": worker, "labels": labels})
    config = {"method": "CPA", "num_items": num_items,
              "num_workers": num_workers, "num_labels": num_labels}
    session = "smoke-pipelined"
    polls = 16
    rounds = 6  # each round re-arms the refresh with a fresh data slice

    proc, port = spawn_server(
        server_bin, ["--tcp", "--event-loop", "--bind", host], "listening on ")
    try:
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = FrameReader(sock)
            assert negotiate_sequencing(sock, reader), \
                "--event-loop server must accept sequenced frames"

            sock.sendall(json_frame({"op": "open", "session": session,
                                     "config": config}))
            expect_json_ok(*reader.next_frame(), op="open")

            # Half the stream up front; the rest re-arms the refresh one
            # slice per round (duplicate answers are rejected, so slices
            # never repeat).
            half = len(answers) // 2
            slices = [answers[:half]]
            step = max(1, (len(answers) - half) // rounds)
            slices += [answers[half + r * step:half + (r + 1) * step]
                       for r in range(rounds)]

            refresh = json.dumps({"op": "snapshot", "session": session},
                                 separators=(",", ":")).encode()
            poll = json.dumps({"op": "snapshot", "session": session,
                               "refresh": False, "predictions": False},
                              separators=(",", ":")).encode()
            overtook = 0
            for round_index in range(rounds):
                batch = slices[round_index]  # slice 0 is the big initial feed
                if batch:
                    sock.sendall(json_frame({"op": "observe",
                                             "session": session,
                                             "answers": batch}))
                    expect_json_ok(*reader.next_frame(), op="observe")
                burst = seq_frame(KIND_JSON, refresh, 1)
                for k in range(polls):
                    burst += seq_frame(KIND_JSON, poll, 2 + k)
                sock.sendall(burst)  # one send: refresh + K cached polls
                seen = set()
                refresh_done = False
                for _ in range(polls + 1):
                    kind, payload, seq = reader.next_tagged_frame()
                    assert kind == KIND_JSON and seq is not None
                    assert 1 <= seq <= polls + 1 and seq not in seen, \
                        f"bad or duplicate sequence id {seq}"
                    seen.add(seq)
                    reply = json.loads(payload)
                    assert reply.get("ok") is True, reply
                    if seq == 1:
                        refresh_done = True
                    elif not refresh_done:
                        overtook += 1
                if overtook and round_index > 0:
                    break  # proven; keep runtime bounded

            assert overtook > 0, (
                "no poll reply ever overtook the slow refresh — "
                "sequenced frames are not completing out of order")

            sock.sendall(json_frame({"op": "close", "session": session}))
            expect_json_ok(*reader.next_frame(), op="close")
        print(f"tcp_smoke: OK — pipelined mode: {overtook} cached polls "
              f"overtook their refresh, every reply matched its sequence id")
        return 0
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int,
                        help="port of an already-running cpa_server --tcp")
    parser.add_argument("--router", action="store_true",
                        help="spawn a 2-worker fleet + router and smoke it")
    parser.add_argument("--pipelined", action="store_true",
                        help="spawn an --event-loop server and assert "
                             "out-of-order pipelined completion")
    parser.add_argument("--server-bin", default="build/src/cpa_server",
                        help="cpa_server binary for --router/--pipelined mode")
    args = parser.parse_args()

    if args.router:
        return run_router_mode(args.server_bin, args.host)
    if args.pipelined:
        return run_pipelined_mode(args.server_bin, args.host)
    if args.port is None:
        parser.error("--port is required unless --router/--pipelined is given")

    with socket.create_connection((args.host, args.port), timeout=30) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        reader = FrameReader(sock)
        sequenced = negotiate_sequencing(sock, reader)
        json_final = run_json_session(sock, reader, "smoke-json")
        binary_final = run_binary_session(sock, reader, "smoke-binary")
        poke_error_paths(sock, reader)

    for key in ("method", "batches_seen", "answers_seen", "finalized"):
        assert json_final[key] == binary_final[key], \
            f"{key}: json={json_final[key]} binary={binary_final[key]}"
    assert json_final["predictions"] == binary_final["predictions"], (
        f"transports disagree:\n  json:   {json_final['predictions']}"
        f"\n  binary: {binary_final['predictions']}")
    print(f"tcp_smoke: OK — both transports agree on "
          f"{len(json_final['predictions'])} predictions "
          f"({json_final['answers_seen']} answers, "
          f"method {json_final['method']}, sequencing "
          f"{'negotiated' if sequenced else 'unsupported (legacy)'})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
