#include "util/matrix.h"

#include <vector>

#include <gtest/gtest.h>

namespace cpa {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, InitializerListLayout) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
}

TEST(MatrixTest, RowViewsAliasStorage) {
  Matrix m(2, 2, 0.0);
  auto row = m.Row(1);
  row[0] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
}

TEST(MatrixTest, FillAndReset) {
  Matrix m(2, 2, 3.0);
  m.Fill(7.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
  m.Reset(1, 4, -1.0);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_DOUBLE_EQ(m(0, 3), -1.0);
}

TEST(MatrixTest, RowAndColSums) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.RowSum(0), 3.0);
  EXPECT_DOUBLE_EQ(m.RowSum(1), 7.0);
  EXPECT_DOUBLE_EQ(m.ColSum(0), 4.0);
  EXPECT_DOUBLE_EQ(m.ColSum(1), 6.0);
}

TEST(MatrixTest, NormalizeRowsMakesStochastic) {
  Matrix m = {{2.0, 2.0}, {0.0, 0.0}, {1.0, 3.0}};
  m.NormalizeRows();
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.5);  // zero row becomes uniform
  EXPECT_DOUBLE_EQ(m(2, 1), 0.75);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    EXPECT_NEAR(m.RowSum(r), 1.0, 1e-12);
  }
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a = {{1.0, 2.0}};
  Matrix b = {{1.5, 1.0}};
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 1.0);
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, ArgMaxRow) {
  Matrix m = {{0.1, 0.7, 0.2}, {0.9, 0.05, 0.05}};
  EXPECT_EQ(m.ArgMaxRow(0), 1u);
  EXPECT_EQ(m.ArgMaxRow(1), 0u);
}

TEST(VectorKernelsTest, SumAndNormalize) {
  std::vector<double> v = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(Sum(v), 4.0);
  const double original = NormalizeInPlace(v);
  EXPECT_DOUBLE_EQ(original, 4.0);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(VectorKernelsTest, NormalizeZeroVectorBecomesUniform) {
  std::vector<double> v = {0.0, 0.0, 0.0, 0.0};
  NormalizeInPlace(v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(VectorKernelsTest, DotAndCosine) {
  const std::vector<double> a = {1.0, 0.0};
  const std::vector<double> b = {0.0, 2.0};
  const std::vector<double> c = {3.0, 0.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, c), 1.0);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, zero), 0.0);
}

TEST(VectorKernelsTest, Axpy) {
  const std::vector<double> in = {1.0, 2.0};
  std::vector<double> out = {10.0, 20.0};
  Axpy(0.5, in, out);
  EXPECT_DOUBLE_EQ(out[0], 10.5);
  EXPECT_DOUBLE_EQ(out[1], 21.0);
}

TEST(VectorKernelsTest, MaxAbsDiffSpan) {
  const std::vector<double> a = {1.0, -2.0};
  const std::vector<double> b = {0.5, 2.0};
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, b), 4.0);
}

}  // namespace
}  // namespace cpa
