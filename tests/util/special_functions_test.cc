#include "util/special_functions.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace cpa {
namespace {

TEST(DigammaTest, KnownValues) {
  // Psi(1) = -gamma (Euler–Mascheroni).
  EXPECT_NEAR(Digamma(1.0), -0.5772156649015329, 1e-10);
  // Psi(0.5) = -gamma - 2 ln 2.
  EXPECT_NEAR(Digamma(0.5), -1.9635100260214235, 1e-10);
  // Psi(2) = 1 - gamma.
  EXPECT_NEAR(Digamma(2.0), 0.42278433509846713, 1e-10);
  // Large argument: Psi(x) ~ ln(x) - 1/(2x).
  EXPECT_NEAR(Digamma(1000.0), std::log(1000.0) - 0.0005, 1e-6);
}

TEST(DigammaTest, RecurrenceHolds) {
  // Psi(x+1) = Psi(x) + 1/x for several x.
  for (double x : {0.1, 0.7, 1.3, 2.9, 5.5, 17.0}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-10) << "x=" << x;
  }
}

TEST(TrigammaTest, KnownValuesAndRecurrence) {
  // Psi'(1) = pi^2 / 6.
  EXPECT_NEAR(Trigamma(1.0), M_PI * M_PI / 6.0, 1e-9);
  for (double x : {0.3, 1.5, 4.2}) {
    EXPECT_NEAR(Trigamma(x + 1.0), Trigamma(x) - 1.0 / (x * x), 1e-9) << "x=" << x;
  }
}

TEST(LogBetaTest, MatchesGammaIdentity) {
  EXPECT_NEAR(LogBeta(1.0, 1.0), 0.0, 1e-12);          // B(1,1)=1
  EXPECT_NEAR(LogBeta(2.0, 3.0), std::log(1.0 / 12.0), 1e-12);
  EXPECT_NEAR(LogBeta(0.5, 0.5), std::log(M_PI), 1e-12);
}

TEST(LogMultivariateBetaTest, ReducesToLogBetaInTwoDims) {
  const std::vector<double> alpha = {2.5, 4.0};
  EXPECT_NEAR(LogMultivariateBeta(alpha), LogBeta(2.5, 4.0), 1e-12);
}

TEST(LogSumExpTest, MatchesDirectComputationOnSmallValues) {
  const std::vector<double> v = {0.0, std::log(2.0), std::log(3.0)};
  EXPECT_NEAR(LogSumExp(v), std::log(6.0), 1e-12);
}

TEST(LogSumExpTest, StableForLargeMagnitudes) {
  const std::vector<double> v = {-1000.0, -1000.0};
  EXPECT_NEAR(LogSumExp(v), -1000.0 + std::log(2.0), 1e-12);
  const std::vector<double> w = {1000.0, 999.0};
  EXPECT_NEAR(LogSumExp(w), 1000.0 + std::log(1.0 + std::exp(-1.0)), 1e-12);
}

TEST(LogSumExpTest, EmptyIsMinusInfinity) {
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
}

TEST(SoftmaxTest, NormalisesAndPreservesOrder) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  SoftmaxInPlace(v);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-12);
  EXPECT_LT(v[0], v[1]);
  EXPECT_LT(v[1], v[2]);
}

TEST(SoftmaxTest, DegenerateAllMinusInfBecomesUniform) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> v = {-inf, -inf};
  SoftmaxInPlace(v);
  EXPECT_NEAR(v[0], 0.5, 1e-12);
  EXPECT_NEAR(v[1], 0.5, 1e-12);
}

TEST(SoftmaxTest, ShiftInvariance) {
  std::vector<double> a = {0.3, -1.2, 2.5};
  std::vector<double> b = {0.3 + 500, -1.2 + 500, 2.5 + 500};
  SoftmaxInPlace(a);
  SoftmaxInPlace(b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(DirichletExpectedLogTest, SymmetricAlphaGivesEqualComponents) {
  const std::vector<double> alpha = {2.0, 2.0, 2.0};
  std::vector<double> out(3);
  DirichletExpectedLog(alpha, out);
  EXPECT_NEAR(out[0], out[1], 1e-12);
  EXPECT_NEAR(out[1], out[2], 1e-12);
  // E[ln theta] <= ln E[theta] = ln(1/3) by Jensen.
  EXPECT_LT(out[0], std::log(1.0 / 3.0));
}

TEST(DirichletExpectedLogTest, MatchesDigammaDefinition) {
  const std::vector<double> alpha = {0.5, 1.5, 3.0};
  std::vector<double> out(3);
  DirichletExpectedLog(alpha, out);
  const double dsum = Digamma(5.0);
  EXPECT_NEAR(out[0], Digamma(0.5) - dsum, 1e-12);
  EXPECT_NEAR(out[1], Digamma(1.5) - dsum, 1e-12);
  EXPECT_NEAR(out[2], Digamma(3.0) - dsum, 1e-12);
}

TEST(DirichletEntropyTest, UniformDirichletEntropyIsLogVolume) {
  // Dir(1,1) is uniform on the simplex (a segment of length sqrt(2), but in
  // the standard normalisation its entropy is ln B(1,1) = 0).
  const std::vector<double> alpha = {1.0, 1.0};
  EXPECT_NEAR(DirichletEntropy(alpha), 0.0, 1e-12);
}

TEST(DirichletEntropyTest, ConcentrationReducesEntropy) {
  const std::vector<double> loose = {1.0, 1.0, 1.0};
  const std::vector<double> tight = {50.0, 50.0, 50.0};
  EXPECT_GT(DirichletEntropy(loose), DirichletEntropy(tight));
}

TEST(BetaEntropyTest, MatchesDirichletEntropyInTwoDims) {
  const std::vector<double> alpha = {3.0, 7.0};
  EXPECT_NEAR(BetaEntropy(3.0, 7.0), DirichletEntropy(alpha), 1e-10);
}

TEST(DirichletKLTest, ZeroForIdenticalDistributions) {
  const std::vector<double> alpha = {1.2, 3.4, 0.7};
  EXPECT_NEAR(DirichletKL(alpha, alpha), 0.0, 1e-12);
}

TEST(DirichletKLTest, PositiveForDifferentDistributions) {
  const std::vector<double> alpha = {5.0, 1.0};
  const std::vector<double> beta = {1.0, 5.0};
  EXPECT_GT(DirichletKL(alpha, beta), 0.0);
  EXPECT_GT(DirichletKL(beta, alpha), 0.0);
}

}  // namespace
}  // namespace cpa
