#include "util/status.h"

#include <gtest/gtest.h>

namespace cpa {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesStringify) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition), "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status FailingOperation() { return Status::Internal("boom"); }
Status SucceedingOperation() { return Status::OK(); }

Status Propagate() {
  CPA_RETURN_NOT_OK(SucceedingOperation());
  CPA_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  const Status s = Propagate();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

Result<int> ProduceValue() { return 10; }
Result<int> ProduceError() { return Status::OutOfRange("too big"); }

Status ConsumeValues(int* out) {
  CPA_ASSIGN_OR_RETURN(const int a, ProduceValue());
  CPA_ASSIGN_OR_RETURN(const int b, ProduceValue());
  *out = a + b;
  return Status::OK();
}

Status ConsumeError(int* out) {
  CPA_ASSIGN_OR_RETURN(*out, ProduceError());
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnBindsValue) {
  int out = 0;
  ASSERT_TRUE(ConsumeValues(&out).ok());
  EXPECT_EQ(out, 20);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  int out = -1;
  const Status s = ConsumeError(&out);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(out, -1);
}

}  // namespace
}  // namespace cpa
