#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace cpa {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 5 * std::sqrt(n * 0.1 * 0.9));  // 5-sigma
  }
}

TEST(RngTest, NextIntCoversRangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMeanMatchesP) {
  Rng rng(23);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(29);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GammaMeanAndVarianceMatch) {
  Rng rng(31);
  const double shape = 3.5;
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGamma(shape);
    EXPECT_GT(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, shape, 0.05);
  EXPECT_NEAR(var, shape, 0.15);
}

TEST(RngTest, GammaSmallShapeStaysPositive) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextGamma(0.2), 0.0);
  }
}

TEST(RngTest, BetaMeanMatches) {
  Rng rng(41);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextBeta(2.0, 6.0);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(43);
  const std::vector<double> weights = {1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(RngTest, CategoricalAllZeroWeightsFallsBackToUniform) {
  Rng rng(47);
  const std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) ++counts[rng.NextCategorical(weights)];
  for (int c : counts) EXPECT_GT(c, 500);
}

TEST(RngTest, DirichletSumsToOneAndTracksAlpha) {
  Rng rng(53);
  const std::vector<double> alpha = {1.0, 4.0, 5.0};
  std::vector<double> mean(3, 0.0);
  const int n = 50000;
  std::vector<double> draw(3);
  for (int i = 0; i < n; ++i) {
    rng.NextDirichlet(alpha, draw);
    double total = 0.0;
    for (double x : draw) total += x;
    ASSERT_NEAR(total, 1.0, 1e-9);
    for (int c = 0; c < 3; ++c) mean[c] += draw[c];
  }
  EXPECT_NEAR(mean[0] / n, 0.1, 0.01);
  EXPECT_NEAR(mean[1] / n, 0.4, 0.01);
  EXPECT_NEAR(mean[2] / n, 0.5, 0.01);
}

TEST(RngTest, MultinomialCountsSumToN) {
  Rng rng(59);
  const std::vector<double> probs = {0.2, 0.3, 0.5};
  std::vector<std::uint32_t> counts(3);
  rng.NextMultinomial(100, probs, counts);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 100u);
}

TEST(RngTest, ZipfIsSkewedTowardSmallIndices) {
  Rng rng(61);
  const std::size_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextZipf(n, 1.2)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(RngTest, ZipfSingletonAlwaysZero) {
  Rng rng(67);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextZipf(1, 1.5), 0u);
}

TEST(RngTest, PoissonMeanMatchesLambdaSmallAndLarge) {
  Rng rng(71);
  for (double lambda : {0.5, 4.0, 100.0}) {
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextPoisson(lambda));
    EXPECT_NEAR(sum / n, lambda, std::max(0.05, lambda * 0.03)) << lambda;
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(73);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(50, 20);
    EXPECT_EQ(sample.size(), 20u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (std::size_t v : sample) EXPECT_LT(v, 50u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(79);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(83);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));  // w.h.p.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(89);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextUint64() == child.NextUint64());
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace cpa
