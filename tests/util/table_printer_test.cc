#include "util/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cpa {
namespace {

TEST(TablePrinterTest, RendersHeadersRuleAndRows) {
  TablePrinter table({"Dataset", "P", "R"});
  table.AddRow({"image", "0.81", "0.74"});
  table.AddRow({"topic", "0.79", "0.70"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Dataset"), std::string::npos);
  EXPECT_NE(out.find("image"), std::string::npos);
  EXPECT_NE(out.find("0.74"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, DoubleRowFormatsWithPrecision) {
  TablePrinter table({"method", "value"});
  table.AddRow("MV", {0.123456}, 3);
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("0.123"), std::string::npos);
  EXPECT_EQ(os.str().find("0.1235"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadToHeaderWidth) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only-one"});
  std::ostringstream os;
  table.Print(os);
  // Three header cells and the single data cell all render.
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAlignAcrossRows) {
  TablePrinter table({"name", "x"});
  table.AddRow({"short", "1"});
  table.AddRow({"a-much-longer-name", "2"});
  std::ostringstream os;
  table.Print(os);
  // Both value cells must start at the same column: find the positions of
  // "1" and "2" relative to their line starts.
  std::istringstream lines(os.str());
  std::string line;
  std::vector<std::size_t> value_columns;
  while (std::getline(lines, line)) {
    const auto pos1 = line.find(" 1");
    const auto pos2 = line.find(" 2");
    if (pos1 != std::string::npos && line.find("short") != std::string::npos) {
      value_columns.push_back(pos1);
    }
    if (pos2 != std::string::npos && line.find("longer") != std::string::npos) {
      value_columns.push_back(pos2);
    }
  }
  ASSERT_EQ(value_columns.size(), 2u);
  EXPECT_EQ(value_columns[0], value_columns[1]);
}

}  // namespace
}  // namespace cpa
