#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace cpa {
namespace {

TEST(ScratchArenaTest, CheckoutsAreDisjointAndZeroed) {
  ScratchArena arena;
  const auto a = arena.AllocZeroed<double>(100);
  const auto b = arena.AllocZeroed<double>(100);
  ASSERT_EQ(a.size(), 100u);
  ASSERT_EQ(b.size(), 100u);
  EXPECT_NE(a.data(), b.data());
  for (double v : a) EXPECT_EQ(v, 0.0);
  a[0] = 1.0;
  a[99] = 2.0;
  EXPECT_EQ(b[0], 0.0) << "checkouts must not alias";
  EXPECT_EQ(arena.stats().checkouts, 2u);
}

TEST(ScratchArenaTest, FrameRewindsAndSlabsAreReused) {
  ScratchArena arena;
  const double* first_block = nullptr;
  {
    const ScratchArena::Frame frame(arena);
    first_block = arena.AllocZeroed<double>(1000).data();
  }
  const std::size_t slabs_after_warmup = arena.stats().slab_allocations;
  EXPECT_GT(slabs_after_warmup, 0u);
  EXPECT_EQ(arena.stats().bytes_in_use, 0u);
  for (int i = 0; i < 10; ++i) {
    const ScratchArena::Frame frame(arena);
    const auto block = arena.AllocZeroed<double>(1000);
    EXPECT_EQ(block.data(), first_block) << "rewound memory must be reused";
    for (double v : block) EXPECT_EQ(v, 0.0) << "AllocZeroed re-zeroes";
    block[0] = 3.0;  // dirty it for the next round
  }
  EXPECT_EQ(arena.stats().slab_allocations, slabs_after_warmup);
}

TEST(ScratchArenaTest, NestedFramesRewindToTheirOwnMarks) {
  ScratchArena arena;
  const ScratchArena::Frame outer(arena);
  const auto outer_block = arena.AllocZeroed<double>(16);
  outer_block[7] = 42.0;
  const std::size_t in_use_before_inner = arena.stats().bytes_in_use;
  {
    const ScratchArena::Frame inner(arena);
    arena.AllocZeroed<double>(64);
    EXPECT_GT(arena.stats().bytes_in_use, in_use_before_inner);
  }
  EXPECT_EQ(arena.stats().bytes_in_use, in_use_before_inner);
  EXPECT_EQ(outer_block[7], 42.0) << "inner frames must not clobber outer data";
}

TEST(ScratchArenaTest, GrowsAcrossSlabsForLargeCheckouts) {
  ScratchArena arena(ScratchArena::Mode::kReuse, /*initial_slab_bytes=*/256);
  // Far larger than the first slab: must land in a dedicated grown slab.
  const auto big = arena.AllocZeroed<double>(10'000);
  ASSERT_EQ(big.size(), 10'000u);
  big[9'999] = 1.0;
  // Smaller checkouts still work after the growth.
  const auto small = arena.AllocZeroed<std::uint32_t>(8);
  EXPECT_EQ(small.size(), 8u);
  EXPECT_GE(arena.stats().bytes_reserved, 10'000 * sizeof(double));
}

TEST(ScratchArenaTest, AlignmentIsPreserved) {
  ScratchArena arena;
  arena.Alloc<char>(3);  // odd-size checkout must not misalign the next one
  const auto doubles = arena.Alloc<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) % alignof(double), 0u);
  arena.Alloc<char>(1);
  const auto ids = arena.Alloc<std::size_t>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ids.data()) % alignof(std::size_t), 0u);
}

TEST(ScratchArenaTest, HeapModeFreesPerFrame) {
  ScratchArena arena(ScratchArena::Mode::kHeap);
  {
    const ScratchArena::Frame frame(arena);
    arena.AllocZeroed<double>(100);
    arena.AllocZeroed<double>(100);
    EXPECT_EQ(arena.stats().slab_allocations, 2u);
    EXPECT_GT(arena.stats().bytes_reserved, 0u);
  }
  EXPECT_EQ(arena.stats().bytes_reserved, 0u);
  {
    const ScratchArena::Frame frame(arena);
    arena.AllocZeroed<double>(100);
  }
  // Unlike kReuse, allocations keep accruing call over call.
  EXPECT_EQ(arena.stats().slab_allocations, 3u);
}

TEST(ScratchArenaTest, ResetRewindsEverything) {
  ScratchArena arena;
  arena.AllocZeroed<double>(5000);
  const std::size_t reserved = arena.stats().bytes_reserved;
  arena.Reset();
  EXPECT_EQ(arena.stats().bytes_in_use, 0u);
  EXPECT_EQ(arena.stats().bytes_reserved, reserved) << "kReuse keeps the slabs";
  const auto again = arena.AllocZeroed<double>(5000);
  EXPECT_EQ(arena.stats().bytes_reserved, reserved);
  for (double v : again.first(16)) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace cpa
