#include "util/flags.h"

#include <vector>

#include <gtest/gtest.h>

namespace cpa {
namespace {

Flags MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "binary");
  auto result =
      Flags::Parse(static_cast<int>(argv.size()), const_cast<char**>(argv.data()));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags flags = MustParse({"--items=200", "--rate=0.5", "--name=image"});
  EXPECT_EQ(flags.GetInt("items", 0), 200);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "image");
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags flags = MustParse({"--items", "77", "--name", "topic"});
  EXPECT_EQ(flags.GetInt("items", 0), 77);
  EXPECT_EQ(flags.GetString("name", ""), "topic");
}

TEST(FlagsTest, BareBooleanFlag) {
  const Flags flags = MustParse({"--verbose", "--quick"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("quick", false));
  EXPECT_FALSE(flags.GetBool("absent", false));
}

TEST(FlagsTest, ExplicitBooleanValues) {
  const Flags flags = MustParse({"--a=true", "--b=false", "--c=1", "--d=no"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

TEST(FlagsTest, FallbacksWhenAbsentOrMalformed) {
  const Flags flags = MustParse({"--items=notanumber"});
  EXPECT_EQ(flags.GetInt("items", 9), 9);
  EXPECT_EQ(flags.GetInt("missing", 5), 5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 2.5), 2.5);
}

TEST(FlagsTest, HasReflectsPresence) {
  const Flags flags = MustParse({"--x=1"});
  EXPECT_TRUE(flags.Has("x"));
  EXPECT_FALSE(flags.Has("y"));
}

TEST(FlagsTest, PositionalArgumentIsError) {
  std::vector<const char*> argv = {"binary", "positional"};
  const auto result =
      Flags::Parse(static_cast<int>(argv.size()), const_cast<char**>(argv.data()));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, NoArgumentsIsEmptyAndOk) {
  std::vector<const char*> argv = {"binary"};
  const auto result =
      Flags::Parse(static_cast<int>(argv.size()), const_cast<char**>(argv.data()));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().Has("anything"));
}

}  // namespace
}  // namespace cpa
