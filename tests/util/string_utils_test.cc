#include "util/string_utils.h"

#include <gtest/gtest.h>

namespace cpa {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(SplitTest, NoDelimiterYieldsWholeString) {
  const auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitTest, EmptyStringYieldsOneEmptyField) {
  const auto parts = Split("", '\t');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "|"), "x|y|z");
  EXPECT_EQ(Join({}, "|"), "");
  EXPECT_EQ(Join({"solo"}, "|"), "solo");
}

TEST(TrimTest, RemovesSurroundingWhitespaceOnly) {
  EXPECT_EQ(Trim("  a b \t\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("clean"), "clean");
}

TEST(ParseIntTest, ValidValues) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-17").value(), -17);
  EXPECT_EQ(ParseInt(" 5 ").value(), 5);
  EXPECT_EQ(ParseInt("0").value(), 0);
}

TEST(ParseIntTest, RejectsGarbage) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("abc").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
}

TEST(ParseDoubleTest, ValidValues) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("7").value(), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("nope").ok());
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d/%d", 3, 4), "3/4");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("%s", "text"), "text");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(Base64Test, KnownVectors) {
  // RFC 4648 §10 test vectors.
  EXPECT_EQ(Base64Encode(""), "");
  EXPECT_EQ(Base64Encode("f"), "Zg==");
  EXPECT_EQ(Base64Encode("fo"), "Zm8=");
  EXPECT_EQ(Base64Encode("foo"), "Zm9v");
  EXPECT_EQ(Base64Encode("foob"), "Zm9vYg==");
  EXPECT_EQ(Base64Encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(Base64Encode("foobar"), "Zm9vYmFy");
  EXPECT_EQ(Base64Decode("Zm9vYmE=").value(), "fooba");
}

TEST(Base64Test, RoundTripsArbitraryBytes) {
  // Every byte value, embedded NULs included — checkpoint blobs are
  // binary, not text.
  std::string bytes;
  for (int b = 0; b < 256; ++b) bytes.push_back(static_cast<char>(b));
  for (std::size_t length = 0; length <= bytes.size(); ++length) {
    const std::string_view slice(bytes.data(), length);
    const auto decoded = Base64Decode(Base64Encode(slice));
    ASSERT_TRUE(decoded.ok()) << "length " << length;
    EXPECT_EQ(decoded.value(), slice) << "length " << length;
  }
}

TEST(Base64Test, StrictDecodeRejectsMalformedText) {
  EXPECT_FALSE(Base64Decode("Zg").ok());        // length not a multiple of 4
  EXPECT_FALSE(Base64Decode("Zm9v!bad").ok());  // character outside alphabet
  EXPECT_FALSE(Base64Decode("Zm9v\n").ok());    // no whitespace tolerance
  EXPECT_FALSE(Base64Decode("Zg==Zm8=").ok());  // padding inside the payload
  EXPECT_FALSE(Base64Decode("Z===").ok());      // three padding chars
  EXPECT_FALSE(Base64Decode("Zg=v").ok());      // data after padding
  // Canonical-form enforcement: nonzero bits under the padding decode to
  // nothing and must be rejected, not silently dropped ("Zh==" and
  // "Zg==" would otherwise alias the same byte).
  EXPECT_FALSE(Base64Decode("Zh==").ok());
  EXPECT_FALSE(Base64Decode("Zm9=").ok());
}

}  // namespace
}  // namespace cpa
