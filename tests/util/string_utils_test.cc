#include "util/string_utils.h"

#include <gtest/gtest.h>

namespace cpa {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(SplitTest, NoDelimiterYieldsWholeString) {
  const auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitTest, EmptyStringYieldsOneEmptyField) {
  const auto parts = Split("", '\t');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "|"), "x|y|z");
  EXPECT_EQ(Join({}, "|"), "");
  EXPECT_EQ(Join({"solo"}, "|"), "solo");
}

TEST(TrimTest, RemovesSurroundingWhitespaceOnly) {
  EXPECT_EQ(Trim("  a b \t\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("clean"), "clean");
}

TEST(ParseIntTest, ValidValues) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-17").value(), -17);
  EXPECT_EQ(ParseInt(" 5 ").value(), 5);
  EXPECT_EQ(ParseInt("0").value(), 0);
}

TEST(ParseIntTest, RejectsGarbage) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("abc").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
}

TEST(ParseDoubleTest, ValidValues) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("7").value(), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("nope").ok());
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d/%d", 3, 4), "3/4");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("%s", "text"), "text");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace cpa
