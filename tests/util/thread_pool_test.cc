#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace cpa {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelForTest, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  ParallelFor(&pool, touched.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> touched(100, 0);
  ParallelFor(nullptr, touched.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++touched[i];
  });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 100);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SmallRangeRunsInlineWithMinShard) {
  ThreadPool pool(4);
  std::vector<int> touched(3, 0);
  // total(3) < 2 * min_shard(10) -> inline execution.
  ParallelFor(
      &pool, touched.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++touched[i];
      },
      /*min_shard=*/10);
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(ParallelForTest, MoreThreadsThanWorkStillCoversRange) {
  // total(2) with 8 pool threads: shard computation must not produce empty
  // or overlapping shards.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(2);
  ParallelFor(&pool, touched.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForTest, SubmittingMoreBlocksThanThreadsDrains) {
  // The sweep scheduler submits up to 16 reduce blocks to pools of any
  // size; a 2-thread pool must queue and drain them all before Wait
  // returns.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int b = 0; b < 16; ++b) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ParallelForTest, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i % 97);
  std::vector<double> partial(pool.num_threads() + 2, 0.0);
  std::atomic<std::size_t> shard_index{0};
  ParallelFor(&pool, n, [&](std::size_t begin, std::size_t end) {
    const std::size_t slot = shard_index.fetch_add(1);
    double local = 0.0;
    for (std::size_t i = begin; i < end; ++i) local += values[i];
    partial[slot] = local;
  });
  const double parallel_sum = std::accumulate(partial.begin(), partial.end(), 0.0);
  const double sequential_sum = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_DOUBLE_EQ(parallel_sum, sequential_sum);
}

}  // namespace
}  // namespace cpa
