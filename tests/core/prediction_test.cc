#include "core/prediction.h"

#include <gtest/gtest.h>

#include <numeric>

#include "data/dataset.h"

#include "core/vi.h"
#include "simulation/crowd_simulator.h"

namespace cpa {
namespace {

struct FittedWorld {
  Dataset dataset;
  CpaModel model;
};

FittedWorld FitWorld(std::uint64_t seed, const PopulationMix& mix,
                     PredictionMode mode = PredictionMode::kBernoulliProfile,
                     std::size_t items = 150) {
  Rng rng(seed);
  TruthConfig truth_config;
  truth_config.num_items = items;
  truth_config.num_labels = 10;
  truth_config.num_clusters = 3;
  truth_config.correlation = 0.85;
  truth_config.mean_labels_per_item = 2.5;
  truth_config.max_labels_per_item = 5;
  auto truth = GenerateGroundTruth(truth_config, rng);
  EXPECT_TRUE(truth.ok());

  PopulationConfig population_config;
  population_config.num_workers = 30;
  population_config.num_labels = 10;
  population_config.mix = mix;
  auto workers = GeneratePopulation(population_config, rng);
  EXPECT_TRUE(workers.ok());

  SimulationConfig sim_config;
  sim_config.answers_per_item = 8.0;
  sim_config.candidate_set_size = 10;
  auto answers = SimulateAnswers(truth.value(), workers.value(), sim_config, rng);
  EXPECT_TRUE(answers.ok());

  FittedWorld world;
  world.dataset.name = "prediction-test";
  world.dataset.num_labels = 10;
  world.dataset.answers = std::move(answers).value();
  world.dataset.ground_truth = truth.value().labels;

  CpaOptions options;
  options.max_communities = 6;
  options.max_clusters = 48;
  options.max_iterations = 20;
  options.prediction_mode = mode;
  auto model = FitCpa(world.dataset.answers, 10, options);
  EXPECT_TRUE(model.ok());
  world.model = std::move(model).value();
  return world;
}

double MeanF1(const std::vector<LabelSet>& predictions,
              const std::vector<LabelSet>& truth) {
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i].empty()) continue;
    const double inter = static_cast<double>(predictions[i].IntersectionSize(truth[i]));
    const double p = predictions[i].empty() ? 0.0 : inter / predictions[i].size();
    const double r = inter / truth[i].size();
    total += (p + r > 0.0) ? 2.0 * p * r / (p + r) : 0.0;
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

TEST(PredictLabelsTest, AccurateOnReliableCrowd) {
  const FittedWorld world = FitWorld(3, PopulationMix::AllReliable());
  const auto prediction = PredictLabels(world.model, world.dataset.answers);
  ASSERT_TRUE(prediction.ok()) << prediction.status().ToString();
  EXPECT_GT(MeanF1(prediction.value().labels, world.dataset.ground_truth), 0.85);
}

TEST(PredictLabelsTest, MultinomialSizePriorModeIsReasonableButSizeBiased) {
  // The paper-literal multinomial mode systematically under-predicts large
  // sets (DESIGN.md §4.3): clearly usable, but measurably below the
  // Bernoulli default on the same data.
  const FittedWorld multinomial =
      FitWorld(3, PopulationMix::AllReliable(), PredictionMode::kMultinomialSizePrior);
  const FittedWorld bernoulli =
      FitWorld(3, PopulationMix::AllReliable(), PredictionMode::kBernoulliProfile);
  const auto multinomial_prediction =
      PredictLabels(multinomial.model, multinomial.dataset.answers);
  const auto bernoulli_prediction =
      PredictLabels(bernoulli.model, bernoulli.dataset.answers);
  ASSERT_TRUE(multinomial_prediction.ok());
  ASSERT_TRUE(bernoulli_prediction.ok());
  const double multinomial_f1 =
      MeanF1(multinomial_prediction.value().labels, multinomial.dataset.ground_truth);
  const double bernoulli_f1 =
      MeanF1(bernoulli_prediction.value().labels, bernoulli.dataset.ground_truth);
  EXPECT_GT(multinomial_f1, 0.5);
  EXPECT_GE(bernoulli_f1, multinomial_f1);
}

TEST(PredictLabelsTest, ScoresAreProbabilities) {
  const FittedWorld world = FitWorld(5, PopulationMix::PaperSimulationDefault());
  const auto prediction = PredictLabels(world.model, world.dataset.answers);
  ASSERT_TRUE(prediction.ok());
  for (double score : prediction.value().scores.Data()) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(PredictLabelsTest, UnansweredItemsStayEmpty) {
  const FittedWorld world = FitWorld(7, PopulationMix::AllReliable());
  // Build a sparse copy with item 0's answers removed.
  std::vector<std::size_t> keep;
  for (std::size_t index = 0; index < world.dataset.answers.num_answers(); ++index) {
    if (world.dataset.answers.answer(index).item != 0) keep.push_back(index);
  }
  const AnswerMatrix sparse = world.dataset.answers.Subset(keep);
  const auto model = FitCpa(sparse, 10, world.model.options());
  ASSERT_TRUE(model.ok());
  const auto prediction = PredictLabels(model.value(), sparse);
  ASSERT_TRUE(prediction.ok());
  EXPECT_TRUE(prediction.value().labels[0].empty());
}

TEST(PredictLabelsTest, DimensionMismatchIsError) {
  const FittedWorld world = FitWorld(9, PopulationMix::AllReliable(),
                                     PredictionMode::kMultinomialSizePrior, 50);
  const AnswerMatrix wrong(3, 3);
  EXPECT_FALSE(PredictLabels(world.model, wrong).ok());
}

TEST(PredictLabelsTest, ParallelPredictionMatchesSequential) {
  const FittedWorld world = FitWorld(11, PopulationMix::PaperSimulationDefault());
  const auto sequential = PredictLabels(world.model, world.dataset.answers);
  ThreadPool pool(4);
  const auto parallel = PredictLabels(world.model, world.dataset.answers, &pool);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  for (std::size_t i = 0; i < sequential.value().labels.size(); ++i) {
    EXPECT_EQ(sequential.value().labels[i], parallel.value().labels[i]);
  }
}

TEST(GreedyVsExhaustiveTest, GreedyMatchesOracleOnMostItems) {
  const FittedWorld world = FitWorld(13, PopulationMix::PaperSimulationDefault(),
                                     PredictionMode::kMultinomialSizePrior, 80);
  const auto tables = internal::BuildPredictionTables(world.model);
  std::size_t matches = 0;
  std::size_t compared = 0;
  double greedy_total = 0.0;
  double oracle_total = 0.0;
  for (ItemId i = 0; i < 80; ++i) {
    if (world.dataset.answers.AnswersOfItem(i).empty()) continue;
    const auto log_weights = internal::ItemClusterLogWeights(
        world.model, tables, world.dataset.answers, i);
    auto candidates = internal::CollectCandidates(tables, world.dataset.answers,
                                                  i, log_weights);
    if (candidates.size() > 14) candidates.resize(14);  // keep the oracle cheap
    const LabelSet greedy =
        internal::GreedyInstantiate(tables, log_weights, candidates);
    const LabelSet oracle = internal::ExhaustiveInstantiate(
        tables, log_weights, candidates, tables.log_size_prior.cols() - 1);
    ++compared;
    matches += (greedy == oracle);
    greedy_total += static_cast<double>(greedy.size());
    oracle_total += static_cast<double>(oracle.size());
  }
  ASSERT_GT(compared, 0u);
  // Greedy is not exact, but must agree with the oracle on the vast
  // majority of items and produce similar set sizes overall.
  EXPECT_GT(static_cast<double>(matches) / compared, 0.85);
  EXPECT_NEAR(greedy_total / compared, oracle_total / compared, 0.5);
}

TEST(GreedyInstantiateTest, EmptyCandidatesGiveEmptySet) {
  const FittedWorld world = FitWorld(17, PopulationMix::AllReliable(),
                                     PredictionMode::kMultinomialSizePrior, 40);
  const auto tables = internal::BuildPredictionTables(world.model);
  const auto log_weights = internal::ItemClusterLogWeights(
      world.model, tables, world.dataset.answers, 0);
  EXPECT_TRUE(internal::GreedyInstantiate(tables, log_weights, {}).empty());
}

TEST(ExhaustiveInstantiateTest, RespectsMaxSize) {
  const FittedWorld world = FitWorld(19, PopulationMix::AllReliable(),
                                     PredictionMode::kMultinomialSizePrior, 40);
  const auto tables = internal::BuildPredictionTables(world.model);
  const auto log_weights = internal::ItemClusterLogWeights(
      world.model, tables, world.dataset.answers, 0);
  const std::vector<LabelId> candidates = {0, 1, 2, 3, 4, 5};
  const LabelSet set =
      internal::ExhaustiveInstantiate(tables, log_weights, candidates, 2);
  EXPECT_LE(set.size(), 2u);
}

TEST(CollectCandidatesTest, ContainsAnsweredLabels) {
  const FittedWorld world = FitWorld(23, PopulationMix::AllReliable(),
                                     PredictionMode::kMultinomialSizePrior, 60);
  const auto tables = internal::BuildPredictionTables(world.model);
  for (ItemId i = 0; i < 10; ++i) {
    const auto indices = world.dataset.answers.AnswersOfItem(i);
    if (indices.empty()) continue;
    const auto log_weights = internal::ItemClusterLogWeights(
        world.model, tables, world.dataset.answers, i);
    const auto candidates = internal::CollectCandidates(
        tables, world.dataset.answers, i, log_weights);
    for (std::size_t index : indices) {
      for (LabelId c : world.dataset.answers.answer(index).labels) {
        EXPECT_NE(std::find(candidates.begin(), candidates.end(), c), candidates.end())
            << "label " << c << " missing from candidates of item " << i;
      }
    }
  }
}

TEST(PredictLabelsTest, ZeroAnswerItemStaysEmptyInBothModes) {
  // An item with no observed answers must instantiate the empty set — in
  // the Bernoulli default and in the multinomial greedy mode — and leave
  // an all-zero score row.
  for (PredictionMode mode :
       {PredictionMode::kBernoulliProfile, PredictionMode::kMultinomialSizePrior}) {
    const FittedWorld world = FitWorld(7, PopulationMix::AllReliable(), mode);
    std::vector<std::size_t> keep;
    for (std::size_t index = 0; index < world.dataset.answers.num_answers();
         ++index) {
      if (world.dataset.answers.answer(index).item != 3) keep.push_back(index);
    }
    const AnswerMatrix sparse = world.dataset.answers.Subset(keep);
    const auto model = FitCpa(sparse, 10, world.model.options());
    ASSERT_TRUE(model.ok());
    const auto prediction = PredictLabels(model.value(), sparse);
    ASSERT_TRUE(prediction.ok());
    EXPECT_TRUE(prediction.value().labels[3].empty());
    for (double score : prediction.value().scores.Row(3)) {
      EXPECT_EQ(score, 0.0);
    }
  }
}

TEST(GreedyInstantiateTest, WeightsPrunedToSingleClusterStillInstantiate) {
  // One dominant cluster: everything else falls below the prune threshold
  // after normalisation, so the greedy must run on exactly one active
  // cluster and still produce that cluster's labels.
  const FittedWorld world = FitWorld(31, PopulationMix::AllReliable(),
                                     PredictionMode::kMultinomialSizePrior, 60);
  const auto tables = internal::BuildPredictionTables(world.model);
  std::vector<double> log_weights(world.model.num_clusters(), -1e6);
  log_weights[1] = 0.0;  // all the mass on cluster 1
  std::vector<LabelId> candidates = tables.top_labels[1];
  const LabelSet greedy = internal::GreedyInstantiate(tables, log_weights, candidates);
  internal::PredictionScratch scratch(log_weights.size(), 0);
  const LabelSet via_scratch = internal::GreedyInstantiate(
      tables, log_weights, std::span<const LabelId>(candidates), scratch);
  EXPECT_EQ(scratch.active_count, 1u);
  EXPECT_EQ(scratch.active_ids[0], 1u);
  EXPECT_EQ(greedy, via_scratch);
  // The single-cluster oracle agrees.
  EXPECT_EQ(greedy, internal::ExhaustiveInstantiate(
                        tables, log_weights, candidates,
                        tables.log_size_prior.cols() - 1));
}

TEST(GreedyInstantiateTest, CandidatePoolBeyondSizePriorSupportIsCapped) {
  // More candidates than the size prior supports: SetScore returns -inf
  // for any n >= log_size_prior.cols(), so the instantiated set must stop
  // strictly below the support bound no matter how many candidates score
  // well.
  const FittedWorld world = FitWorld(37, PopulationMix::AllReliable(),
                                     PredictionMode::kMultinomialSizePrior, 60);
  const auto tables = internal::BuildPredictionTables(world.model);
  ASSERT_GT(tables.log_size_prior.cols(), 1u);
  const auto log_weights = internal::ItemClusterLogWeights(
      world.model, tables, world.dataset.answers, 0);
  std::vector<LabelId> all_labels(world.model.num_labels());
  std::iota(all_labels.begin(), all_labels.end(), 0u);
  ASSERT_GE(all_labels.size(), tables.log_size_prior.cols());
  const LabelSet greedy =
      internal::GreedyInstantiate(tables, log_weights, all_labels);
  EXPECT_LT(greedy.size(), tables.log_size_prior.cols());
  const LabelSet exhaustive = internal::ExhaustiveInstantiate(
      tables, log_weights, all_labels, all_labels.size());
  EXPECT_LT(exhaustive.size(), tables.log_size_prior.cols());
}

TEST(PredictLabelsTest, ParallelAndArenaPathsAreBitIdentical) {
  // The memory-plane acceptance on the prediction side: sequential
  // (inline, lane-0 arena), 4-thread (per-lane arenas), and the
  // heap-scratch per-item pipeline all produce identical labels and
  // bit-identical scores — in both prediction modes.
  for (PredictionMode mode :
       {PredictionMode::kBernoulliProfile, PredictionMode::kMultinomialSizePrior}) {
    const FittedWorld world = FitWorld(41, PopulationMix::PaperSimulationDefault(),
                                       mode);
    const auto sequential = PredictLabels(world.model, world.dataset.answers);
    ThreadPool pool(4);
    const auto parallel = PredictLabels(world.model, world.dataset.answers, &pool);
    ASSERT_TRUE(sequential.ok());
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(sequential.value().labels.size(), parallel.value().labels.size());
    for (std::size_t i = 0; i < sequential.value().labels.size(); ++i) {
      EXPECT_EQ(sequential.value().labels[i], parallel.value().labels[i]) << i;
    }
    EXPECT_DOUBLE_EQ(
        sequential.value().scores.MaxAbsDiff(parallel.value().scores), 0.0);

    if (mode != PredictionMode::kMultinomialSizePrior) continue;
    // Heap-scratch per-item pipeline (the pre-arena behaviour, kept as the
    // legacy wrappers) against the arena-backed PredictLabels output.
    const auto tables = internal::BuildPredictionTables(world.model);
    for (ItemId i = 0; i < world.dataset.num_items(); ++i) {
      if (world.dataset.answers.AnswersOfItem(i).empty()) continue;
      const auto log_weights = internal::ItemClusterLogWeights(
          world.model, tables, world.dataset.answers, i);
      const auto candidates = internal::CollectCandidates(
          tables, world.dataset.answers, i, log_weights);
      EXPECT_EQ(internal::GreedyInstantiate(tables, log_weights, candidates),
                sequential.value().labels[i])
          << "item " << i;
    }
  }
}

TEST(PredictionCompletionTest, ClusterCompletionLiftsRecallOverRawAnswers) {
  // The R3 mechanism: labels missed by individual workers are completed
  // from the cluster profile. Compare CPA recall against the per-item
  // intersection of worker answers (a no-completion lower bound).
  PopulationMix sloppy_mix;
  sloppy_mix.reliable = 0.3;
  sloppy_mix.sloppy = 0.7;
  const FittedWorld world = FitWorld(29, sloppy_mix);
  const auto prediction = PredictLabels(world.model, world.dataset.answers);
  ASSERT_TRUE(prediction.ok());

  double cpa_recall = 0.0;
  std::size_t counted = 0;
  for (ItemId i = 0; i < world.dataset.num_items(); ++i) {
    const LabelSet& truth = world.dataset.ground_truth[i];
    if (truth.empty()) continue;
    cpa_recall += static_cast<double>(
                      prediction.value().labels[i].IntersectionSize(truth)) /
                  static_cast<double>(truth.size());
    ++counted;
  }
  cpa_recall /= static_cast<double>(counted);
  EXPECT_GT(cpa_recall, 0.5);
}

}  // namespace
}  // namespace cpa
