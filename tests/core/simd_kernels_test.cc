#include "core/sweep/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/vi.h"
#include "simulation/dataset_factory.h"

namespace cpa::simd {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kFloorNats = 27.6;  // the sweep kernels' softmax floor

/// Bitwise equality — the contract is exactness, not tolerance, so -0.0
/// vs 0.0 and NaN payloads count as differences.
bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Log-weight-like values: a wide magnitude mix so the floored softmax
/// exercises both sides of the cut, with occasional exact -inf entries
/// (inactive clusters look like this in prediction rows).
std::vector<double> RandomRow(std::mt19937_64& rng, std::size_t n,
                              double inf_fraction = 0.1) {
  std::uniform_real_distribution<double> value(-60.0, 10.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<double> row(n);
  for (double& v : row) v = coin(rng) < inf_fraction ? kNegInf : value(rng);
  return row;
}

/// The size sweep: empty, one element, every remainder tail 0..7 of the
/// 4-lane width (and of the 16-wide accumulate unroll), plus block sizes
/// around the vector boundaries and realistic row/bank sizes.
const std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,   6,   7,   8,    9,
                              10, 11, 12, 13, 14, 15,  16,  17,  31,   32,
                              33, 63, 64, 65, 97, 256, 257, 1000, 4096, 4099};

/// Misaligned views of an over-allocated buffer: offsets 0..3 doubles from
/// the allocation base cover every 32-byte alignment class of the loads.
constexpr std::size_t kAlignOffsets[] = {0, 1, 2, 3};

class SimdKernelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Avx2Available()) {
      GTEST_SKIP() << "no AVX2 on this machine; scalar-only build path";
    }
  }
  const Kernels& scalar_ = KernelsFor(Level::kScalar);
  const Kernels& avx2_ = KernelsFor(Level::kAvx2);
  std::mt19937_64 rng_{20180417};
};

TEST_F(SimdKernelsTest, AccumulateExactlyMatchesScalar) {
  for (std::size_t n : kSizes) {
    for (std::size_t offset : kAlignOffsets) {
      const std::vector<double> from_src = RandomRow(rng_, n + offset, 0.0);
      const std::vector<double> into_src = RandomRow(rng_, n + offset, 0.0);
      std::vector<double> a = into_src;
      std::vector<double> b = into_src;
      scalar_.accumulate(a.data() + offset, from_src.data() + offset, n);
      avx2_.accumulate(b.data() + offset, from_src.data() + offset, n);
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(BitEqual(a[i], b[i])) << "n=" << n << " offset=" << offset
                                          << " i=" << i;
      }
    }
  }
}

TEST_F(SimdKernelsTest, AxpyExactlyMatchesScalar) {
  for (double scale : {0.5, -1.75, 3.141592653589793e-7, 1.0e12}) {
    for (std::size_t n : kSizes) {
      for (std::size_t offset : kAlignOffsets) {
        const std::vector<double> in = RandomRow(rng_, n + offset, 0.0);
        const std::vector<double> out_src = RandomRow(rng_, n + offset, 0.0);
        std::vector<double> a = out_src;
        std::vector<double> b = out_src;
        scalar_.axpy(scale, in.data() + offset, a.data() + offset, n);
        avx2_.axpy(scale, in.data() + offset, b.data() + offset, n);
        for (std::size_t i = 0; i < a.size(); ++i) {
          ASSERT_TRUE(BitEqual(a[i], b[i]))
              << "scale=" << scale << " n=" << n << " offset=" << offset;
        }
      }
    }
  }
}

TEST_F(SimdKernelsTest, SumDotMaxExactlyMatchScalar) {
  for (std::size_t n : kSizes) {
    for (std::size_t offset : kAlignOffsets) {
      const std::vector<double> a = RandomRow(rng_, n + offset, 0.0);
      const std::vector<double> b = RandomRow(rng_, n + offset, 0.0);
      EXPECT_TRUE(BitEqual(scalar_.sum(a.data() + offset, n),
                           avx2_.sum(a.data() + offset, n)))
          << "sum n=" << n << " offset=" << offset;
      EXPECT_TRUE(BitEqual(
          scalar_.dot(a.data() + offset, b.data() + offset, n),
          avx2_.dot(a.data() + offset, b.data() + offset, n)))
          << "dot n=" << n << " offset=" << offset;
      const std::vector<double> m = RandomRow(rng_, n + offset, 0.2);
      EXPECT_TRUE(BitEqual(scalar_.max_value(m.data() + offset, n),
                           avx2_.max_value(m.data() + offset, n)))
          << "max n=" << n << " offset=" << offset;
    }
  }
}

TEST_F(SimdKernelsTest, LogSumExpExactlyMatchesScalar) {
  for (std::size_t n : kSizes) {
    for (std::size_t offset : kAlignOffsets) {
      const std::vector<double> v = RandomRow(rng_, n + offset);
      EXPECT_TRUE(BitEqual(scalar_.log_sum_exp(v.data() + offset, n),
                           avx2_.log_sum_exp(v.data() + offset, n)))
          << "n=" << n << " offset=" << offset;
    }
  }
}

TEST_F(SimdKernelsTest, SoftmaxExactlyMatchesScalar) {
  for (std::size_t n : kSizes) {
    for (std::size_t offset : kAlignOffsets) {
      const std::vector<double> src = RandomRow(rng_, n + offset);
      std::vector<double> a = src;
      std::vector<double> b = src;
      const double la = scalar_.softmax(a.data() + offset, n);
      const double lb = avx2_.softmax(b.data() + offset, n);
      EXPECT_TRUE(BitEqual(la, lb)) << "n=" << n << " offset=" << offset;
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(BitEqual(a[i], b[i])) << "n=" << n << " offset=" << offset;
      }
    }
  }
}

TEST_F(SimdKernelsTest, SoftmaxFlooredExactlyMatchesScalar) {
  for (std::size_t n : kSizes) {
    for (std::size_t offset : kAlignOffsets) {
      const std::vector<double> src = RandomRow(rng_, n + offset);
      std::vector<double> a = src;
      std::vector<double> b = src;
      const double la = scalar_.softmax_floored(a.data() + offset, n, kFloorNats);
      const double lb = avx2_.softmax_floored(b.data() + offset, n, kFloorNats);
      EXPECT_TRUE(BitEqual(la, lb)) << "n=" << n << " offset=" << offset;
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(BitEqual(a[i], b[i])) << "n=" << n << " offset=" << offset;
      }
    }
  }
}

TEST_F(SimdKernelsTest, SoftmaxDegenerateRowsMatchScalar) {
  // All--inf rows take the uniform-fill fallback at every level.
  for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{64}}) {
    std::vector<double> a(n, kNegInf);
    std::vector<double> b(n, kNegInf);
    EXPECT_TRUE(BitEqual(scalar_.softmax(a.data(), n), avx2_.softmax(b.data(), n)));
    EXPECT_EQ(a, b);
    std::vector<double> c(n, kNegInf);
    std::vector<double> d(n, kNegInf);
    EXPECT_TRUE(BitEqual(scalar_.softmax_floored(c.data(), n, kFloorNats),
                         avx2_.softmax_floored(d.data(), n, kFloorNats)));
    EXPECT_EQ(c, d);
  }
}

// The end-to-end bar: a full offline fit is bit-identical with the scalar
// and AVX2 tables (the CPA_SIMD=off CI leg runs the same comparison through
// the environment escape hatch).
TEST_F(SimdKernelsTest, FitCpaBitIdenticalScalarVsAvx2) {
  FactoryOptions options;
  options.scale = 0.05;
  auto dataset = MakePaperDataset(PaperDatasetId::kMovie, options);
  ASSERT_TRUE(dataset.ok());
  const Dataset& d = dataset.value();
  CpaOptions cpa_options = CpaOptions::Recommended(d.num_items(), d.num_labels);
  cpa_options.max_iterations = 6;

  const Level original = ActiveLevel();
  SetLevelForTesting(Level::kScalar);
  const auto scalar_fit = FitCpa(d.answers, d.num_labels, cpa_options);
  SetLevelForTesting(Level::kAvx2);
  const auto avx2_fit = FitCpa(d.answers, d.num_labels, cpa_options);
  SetLevelForTesting(original);
  ASSERT_TRUE(scalar_fit.ok());
  ASSERT_TRUE(avx2_fit.ok());

  const CpaModel& a = scalar_fit.value();
  const CpaModel& b = avx2_fit.value();
  EXPECT_DOUBLE_EQ(a.kappa.MaxAbsDiff(b.kappa), 0.0);
  EXPECT_DOUBLE_EQ(a.phi.MaxAbsDiff(b.phi), 0.0);
  EXPECT_DOUBLE_EQ(a.zeta.MaxAbsDiff(b.zeta), 0.0);
  EXPECT_DOUBLE_EQ(a.theta_a.MaxAbsDiff(b.theta_a), 0.0);
  EXPECT_DOUBLE_EQ(a.theta_b.MaxAbsDiff(b.theta_b), 0.0);
  for (std::size_t t = 0; t < a.num_clusters(); ++t) {
    EXPECT_DOUBLE_EQ(a.lambda[t].MaxAbsDiff(b.lambda[t]), 0.0) << t;
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing (no AVX2 hardware required)
// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, ParseLevelSpecCoversTheDocumentedSpellings) {
  Level level = Level::kAvx2;
  bool forced = false;
  ASSERT_TRUE(ParseLevelSpec("off", &level, &forced));
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_TRUE(forced);
  ASSERT_TRUE(ParseLevelSpec("scalar", &level, &forced));
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_TRUE(forced);
  ASSERT_TRUE(ParseLevelSpec("avx2", &level, &forced));
  EXPECT_EQ(level, Level::kAvx2);
  EXPECT_TRUE(forced);
  ASSERT_TRUE(ParseLevelSpec("auto", &level, &forced));
  EXPECT_FALSE(forced);
  EXPECT_FALSE(ParseLevelSpec("sse9", &level, &forced));
}

TEST(SimdDispatchTest, KernelsForUnavailableLevelFallsBackToScalar) {
  // Safe to call regardless of hardware; on non-AVX2 machines the AVX2
  // table must quietly resolve to the scalar one.
  const Kernels& table = KernelsFor(Level::kAvx2);
  if (!Avx2Available()) {
    EXPECT_EQ(&table, &KernelsFor(Level::kScalar));
  }
  const double v[3] = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(table.sum(v, 3), 6.0);
}

TEST(SimdDispatchTest, ReportLineNamesTheActiveLevel) {
  const std::string line = SimdReportLine();
  EXPECT_TRUE(line.find("simd: ") == 0) << line;
  EXPECT_TRUE(line.find(LevelName(ActiveLevel())) != std::string::npos) << line;
}

}  // namespace
}  // namespace cpa::simd
