#include "core/sweep/sweep_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/sweep/sweep_kernels.h"
#include "core/vi.h"
#include "simulation/dataset_factory.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace cpa {
namespace {

TEST(SweepSchedulerPartitionTest, CoversRangeWithoutOverlap) {
  for (std::size_t total : {0u, 1u, 7u, 100u, 4097u}) {
    const auto blocks = SweepScheduler::Partition(total, /*grain=*/8);
    std::size_t covered = 0;
    std::size_t expected_begin = 0;
    for (const auto& block : blocks) {
      EXPECT_EQ(block.begin, expected_begin);
      EXPECT_LT(block.begin, block.end);
      covered += block.end - block.begin;
      expected_begin = block.end;
    }
    EXPECT_EQ(covered, total);
    if (total > 0) {
      EXPECT_EQ(blocks.back().end, total);
    }
  }
}

TEST(SweepSchedulerPartitionTest, RespectsGrainAndBlockCap) {
  // Fewer indices than one grain: a single block.
  EXPECT_EQ(SweepScheduler::Partition(10, /*grain=*/16).size(), 1u);
  // Huge range: capped at kMaxReduceBlocks.
  EXPECT_LE(SweepScheduler::Partition(1'000'000, /*grain=*/8).size(),
            SweepScheduler::kMaxReduceBlocks);
}

TEST(SweepSchedulerPartitionTest, IndependentOfAnyScheduler) {
  // Partition is static and pure — the boundaries two differently-pooled
  // schedulers reduce over are the same by construction.
  const auto a = SweepScheduler::Partition(12345, 64);
  const auto b = SweepScheduler::Partition(12345, 64);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST(SweepSchedulerTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  SweepScheduler scheduler(&pool);
  bool called = false;
  scheduler.ParallelFor(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(SweepSchedulerTest, ParallelForCoversRangeOnceWithMoreBlocksThanThreads) {
  ThreadPool pool(2);
  SweepScheduler scheduler(&pool);
  std::vector<std::atomic<int>> touched(257);
  scheduler.ParallelFor(
      touched.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
      },
      /*min_shard=*/1);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(SweepSchedulerTest, ParallelReduceEmptyRangeLeavesOutUntouched) {
  SweepScheduler scheduler(nullptr);
  double out = 42.0;
  scheduler.ParallelReduce<double>(
      0, 8, [] { return 0.0; },
      [](double& partial, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) partial += 1.0;
      },
      [](double& into, double& from) { into += from; }, out);
  EXPECT_DOUBLE_EQ(out, 42.0);
}

/// A sum whose result depends on the merge structure in floating point:
/// exact equality across thread counts holds only because the blocks and
/// the merge tree are fixed.
double ReduceSum(const std::vector<double>& values, ThreadPool* pool) {
  SweepScheduler scheduler(pool);
  double out = 0.0;
  scheduler.ParallelReduce<double>(
      values.size(), /*grain=*/64, [] { return 0.0; },
      [&](double& partial, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) partial += values[i];
      },
      [](double& into, double& from) { into += from; }, out);
  return out;
}

TEST(SweepSchedulerTest, ParallelReduceBitIdenticalForAnyThreadCount) {
  std::vector<double> values(10'000);
  double x = 0.1;
  for (double& v : values) {
    v = x;
    x = x * 1.0001 + 1e-7;  // spread magnitudes so order matters in FP
  }
  const double inline_sum = ReduceSum(values, nullptr);
  ThreadPool one(1);
  ThreadPool four(4);
  EXPECT_DOUBLE_EQ(ReduceSum(values, &one), inline_sum);
  EXPECT_DOUBLE_EQ(ReduceSum(values, &four), inline_sum);
  // And across repeated runs on the same pool (no scheduling dependence).
  EXPECT_DOUBLE_EQ(ReduceSum(values, &four), ReduceSum(values, &four));
}

TEST(SweepSchedulerTest, ParallelReduceMergesInFixedTreeOrder) {
  // With a non-commutative-ish merge (string concatenation), any change of
  // merge order or block assignment would change the result.
  const auto reduce_labels = [](ThreadPool* pool) {
    SweepScheduler scheduler(pool);
    std::string out;
    scheduler.ParallelReduce<std::string>(
        1600, /*grain=*/100, [] { return std::string(); },
        [](std::string& partial, std::size_t begin, std::size_t end) {
          partial = StrFormat("[%zu,%zu)", begin, end);
        },
        [](std::string& into, std::string& from) { into += from; }, out);
    return out;
  };
  ThreadPool four(4);
  const std::string inline_order = reduce_labels(nullptr);
  EXPECT_FALSE(inline_order.empty());
  EXPECT_EQ(reduce_labels(&four), inline_order);
}

TEST(SweepDeterminismTest, FitCpaIdenticalForOneAndFourThreads) {
  // The acceptance bar of the sweep layer: the full offline fit — MAP
  // sweeps and parallel REDUCE included — is exactly equal at 1 and 4
  // threads.
  FactoryOptions options;
  options.scale = 0.08;
  auto dataset = MakePaperDataset(PaperDatasetId::kImage, options);
  ASSERT_TRUE(dataset.ok());
  const Dataset& d = dataset.value();
  CpaOptions cpa_options = CpaOptions::Recommended(d.num_items(), d.num_labels);
  cpa_options.max_iterations = 12;

  ThreadPool one(1);
  ThreadPool four(4);
  FitOptions fit_one;
  fit_one.pool = &one;
  FitOptions fit_four;
  fit_four.pool = &four;
  const auto a = FitCpa(d.answers, d.num_labels, cpa_options, fit_one);
  const auto b = FitCpa(d.answers, d.num_labels, cpa_options, fit_four);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().kappa.MaxAbsDiff(b.value().kappa), 0.0);
  EXPECT_DOUBLE_EQ(a.value().phi.MaxAbsDiff(b.value().phi), 0.0);
  EXPECT_DOUBLE_EQ(a.value().zeta.MaxAbsDiff(b.value().zeta), 0.0);
  EXPECT_DOUBLE_EQ(a.value().theta_a.MaxAbsDiff(b.value().theta_a), 0.0);
  for (std::size_t t = 0; t < a.value().num_clusters(); ++t) {
    EXPECT_DOUBLE_EQ(a.value().lambda[t].MaxAbsDiff(b.value().lambda[t]), 0.0) << t;
  }
}

TEST(SweepDeterminismTest, ClusterActivityMatchesPhiThreshold) {
  FactoryOptions options;
  options.scale = 0.05;
  auto dataset = MakePaperDataset(PaperDatasetId::kMovie, options);
  ASSERT_TRUE(dataset.ok());
  const Dataset& d = dataset.value();
  CpaOptions cpa_options = CpaOptions::Recommended(d.num_items(), d.num_labels);
  cpa_options.max_iterations = 5;
  const auto model = FitCpa(d.answers, d.num_labels, cpa_options);
  ASSERT_TRUE(model.ok());

  ThreadPool pool(3);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    SweepScheduler scheduler(p);
    sweep::ClusterActivity activity;
    sweep::BuildClusterActivity(model.value().phi, scheduler, activity);
    ASSERT_EQ(activity.offsets.size(), model.value().num_items() + 1);
    for (ItemId i = 0; i < model.value().num_items(); ++i) {
      const auto row = model.value().phi.Row(i);
      const auto active = activity.ClustersOf(i);
      const auto weights = activity.WeightsOf(i);
      std::size_t k = 0;
      for (std::size_t t = 0; t < row.size(); ++t) {
        if (row[t] < sweep::kSkipMass) continue;
        ASSERT_LT(k, active.size()) << i;
        EXPECT_EQ(active[k], t);
        EXPECT_DOUBLE_EQ(weights[k], row[t]);
        ++k;
      }
      EXPECT_EQ(k, active.size()) << i;
    }
  }
}

}  // namespace
}  // namespace cpa
