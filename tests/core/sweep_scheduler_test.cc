#include "core/sweep/sweep_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/sweep/sweep_kernels.h"
#include "core/vi.h"
#include "simulation/dataset_factory.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace cpa {
namespace {

TEST(SweepSchedulerPartitionTest, CoversRangeWithoutOverlap) {
  for (std::size_t total : {0u, 1u, 7u, 100u, 4097u}) {
    const auto blocks = SweepScheduler::Partition(total, /*grain=*/8);
    std::size_t covered = 0;
    std::size_t expected_begin = 0;
    for (const auto& block : blocks) {
      EXPECT_EQ(block.begin, expected_begin);
      EXPECT_LT(block.begin, block.end);
      covered += block.end - block.begin;
      expected_begin = block.end;
    }
    EXPECT_EQ(covered, total);
    if (total > 0) {
      EXPECT_EQ(blocks.back().end, total);
    }
  }
}

TEST(SweepSchedulerPartitionTest, RespectsGrainAndBlockCap) {
  // Fewer indices than one grain: a single block.
  EXPECT_EQ(SweepScheduler::Partition(10, /*grain=*/16).size(), 1u);
  // Huge range: capped at kMaxReduceBlocks.
  EXPECT_LE(SweepScheduler::Partition(1'000'000, /*grain=*/8).size(),
            SweepScheduler::kMaxReduceBlocks);
}

TEST(SweepSchedulerPartitionTest, IndependentOfAnyScheduler) {
  // Partition is static and pure — the boundaries two differently-pooled
  // schedulers reduce over are the same by construction.
  const auto a = SweepScheduler::Partition(12345, 64);
  const auto b = SweepScheduler::Partition(12345, 64);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST(SweepSchedulerTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  SweepScheduler scheduler(&pool);
  bool called = false;
  scheduler.ParallelFor(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(SweepSchedulerTest, ParallelForCoversRangeOnceWithMoreBlocksThanThreads) {
  ThreadPool pool(2);
  SweepScheduler scheduler(&pool);
  std::vector<std::atomic<int>> touched(257);
  scheduler.ParallelFor(
      touched.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
      },
      /*min_shard=*/1);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(SweepSchedulerTest, ParallelReduceEmptyRangeLeavesOutUntouched) {
  SweepScheduler scheduler(nullptr);
  double out = 42.0;
  scheduler.ParallelReduce<double>(
      0, 8, [](ScratchArena&) { return 0.0; },
      [](double& partial, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) partial += 1.0;
      },
      [](double& into, double& from) { into += from; },
      [&](double& root) { out += root; });
  EXPECT_DOUBLE_EQ(out, 42.0);
}

/// A sum whose result depends on the merge structure in floating point:
/// exact equality across thread counts holds only because the blocks and
/// the merge tree are fixed.
double ReduceSum(const std::vector<double>& values, ThreadPool* pool,
                 ScratchArena::Mode mode = ScratchArena::Mode::kReuse) {
  SweepScheduler scheduler(pool, mode);
  double out = 0.0;
  scheduler.ParallelReduce<double>(
      values.size(), /*grain=*/64, [](ScratchArena&) { return 0.0; },
      [&](double& partial, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) partial += values[i];
      },
      [](double& into, double& from) { into += from; },
      [&](double& root) { out += root; });
  return out;
}

TEST(SweepSchedulerTest, ParallelReduceBitIdenticalForAnyThreadCount) {
  std::vector<double> values(10'000);
  double x = 0.1;
  for (double& v : values) {
    v = x;
    x = x * 1.0001 + 1e-7;  // spread magnitudes so order matters in FP
  }
  const double inline_sum = ReduceSum(values, nullptr);
  ThreadPool one(1);
  ThreadPool four(4);
  EXPECT_DOUBLE_EQ(ReduceSum(values, &one), inline_sum);
  EXPECT_DOUBLE_EQ(ReduceSum(values, &four), inline_sum);
  // And across repeated runs on the same pool (no scheduling dependence).
  EXPECT_DOUBLE_EQ(ReduceSum(values, &four), ReduceSum(values, &four));
  // The arena mode is buffer policy, never arithmetic: heap-mode scratch
  // produces the same bits as reuse-mode scratch.
  EXPECT_DOUBLE_EQ(ReduceSum(values, &four, ScratchArena::Mode::kHeap),
                   inline_sum);
}

TEST(SweepSchedulerTest, ParallelReduceMergesInFixedTreeOrder) {
  // With a non-commutative-ish merge (string concatenation), any change of
  // merge order or block assignment would change the result.
  const auto reduce_labels = [](ThreadPool* pool) {
    SweepScheduler scheduler(pool);
    std::string out;
    scheduler.ParallelReduce<std::string>(
        1600, /*grain=*/100, [](ScratchArena&) { return std::string(); },
        [](std::string& partial, std::size_t begin, std::size_t end) {
          partial = StrFormat("[%zu,%zu)", begin, end);
        },
        [](std::string& into, std::string& from) { into += from; },
        [&](std::string& root) { out += root; });
    return out;
  };
  ThreadPool four(4);
  const std::string inline_order = reduce_labels(nullptr);
  EXPECT_FALSE(inline_order.empty());
  EXPECT_EQ(reduce_labels(&four), inline_order);
}

// The memory-plane acceptance: after the first call warms the slabs, a
// steady-state reduce allocates nothing — checkouts keep counting, slab
// allocations stop.
TEST(ScratchArenaReuseTest, SteadyStateReduceAllocatesNoNewSlabs) {
  SweepScheduler scheduler(nullptr);
  const auto run_reduce = [&] {
    double out = 0.0;
    scheduler.ParallelReduce<std::span<double>>(
        8192, /*grain=*/64,
        [](ScratchArena& arena) { return arena.AllocZeroed<double>(512); },
        [](std::span<double>& partial, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) partial[i % 512] += 1.0;
        },
        [](std::span<double>& into, std::span<double>& from) {
          for (std::size_t e = 0; e < into.size(); ++e) into[e] += from[e];
        },
        [&](std::span<double>& root) {
          for (double v : root) out += v;
        });
    return out;
  };
  const double first = run_reduce();
  const ScratchArena::Stats warm = scheduler.arena_stats();
  EXPECT_GT(warm.slab_allocations, 0u);
  EXPECT_GT(warm.checkouts, 0u);
  for (int call = 0; call < 5; ++call) {
    EXPECT_DOUBLE_EQ(run_reduce(), first);
  }
  const ScratchArena::Stats steady = scheduler.arena_stats();
  EXPECT_EQ(steady.slab_allocations, warm.slab_allocations)
      << "steady-state reduces must reuse the warm slabs";
  EXPECT_EQ(steady.bytes_reserved, warm.bytes_reserved);
  EXPECT_GT(steady.checkouts, warm.checkouts);
  EXPECT_EQ(steady.bytes_in_use, 0u) << "frames must rewind every checkout";
}

// kHeap mode is the pre-arena baseline: every checkout is a fresh
// allocation, so the counter keeps climbing call over call.
TEST(ScratchArenaReuseTest, HeapModeAllocatesPerCall) {
  SweepScheduler scheduler(nullptr, ScratchArena::Mode::kHeap);
  const auto run_reduce = [&] {
    double out = 0.0;
    scheduler.ParallelReduce<std::span<double>>(
        4096, /*grain=*/64,
        [](ScratchArena& arena) { return arena.AllocZeroed<double>(64); },
        [](std::span<double>& partial, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) partial[i % 64] += 1.0;
        },
        [](std::span<double>& into, std::span<double>& from) {
          for (std::size_t e = 0; e < into.size(); ++e) into[e] += from[e];
        },
        [&](std::span<double>& root) {
          for (double v : root) out += v;
        });
    return out;
  };
  run_reduce();
  const std::size_t after_first = scheduler.arena_stats().slab_allocations;
  run_reduce();
  EXPECT_GT(scheduler.arena_stats().slab_allocations, after_first);
  EXPECT_EQ(scheduler.arena_stats().bytes_reserved, 0u)
      << "heap mode frees every frame's blocks";
}

// Arena-vs-heap bit-identity at the kernel level: the full λ reduce run
// through reuse-mode and heap-mode schedulers produces identical banks.
TEST(ScratchArenaReuseTest, LambdaReduceIdenticalForArenaAndHeapScratch) {
  FactoryOptions options;
  options.scale = 0.05;
  auto dataset = MakePaperDataset(PaperDatasetId::kMovie, options);
  ASSERT_TRUE(dataset.ok());
  const Dataset& d = dataset.value();
  CpaOptions cpa_options = CpaOptions::Recommended(d.num_items(), d.num_labels);
  cpa_options.max_iterations = 4;
  auto fitted = FitCpa(d.answers, d.num_labels, cpa_options);
  ASSERT_TRUE(fitted.ok());
  const AnswerView view(d.answers);

  const auto lambda_with = [&](ScratchArena::Mode mode) {
    CpaModel model = fitted.value();
    SweepScheduler scheduler(nullptr, mode);
    sweep::ClusterActivity activity;
    sweep::BuildClusterActivity(model.phi, scheduler, activity);
    sweep::UpdateLambda(model, view, activity, scheduler);
    return model.lambda;
  };
  const auto arena_lambda = lambda_with(ScratchArena::Mode::kReuse);
  const auto heap_lambda = lambda_with(ScratchArena::Mode::kHeap);
  ASSERT_EQ(arena_lambda.size(), heap_lambda.size());
  for (std::size_t t = 0; t < arena_lambda.size(); ++t) {
    EXPECT_DOUBLE_EQ(arena_lambda[t].MaxAbsDiff(heap_lambda[t]), 0.0) << t;
  }
}

TEST(SweepDeterminismTest, FitCpaIdenticalForOneAndFourThreads) {
  // The acceptance bar of the sweep layer: the full offline fit — MAP
  // sweeps and parallel REDUCE included — is exactly equal at 1 and 4
  // threads.
  FactoryOptions options;
  options.scale = 0.08;
  auto dataset = MakePaperDataset(PaperDatasetId::kImage, options);
  ASSERT_TRUE(dataset.ok());
  const Dataset& d = dataset.value();
  CpaOptions cpa_options = CpaOptions::Recommended(d.num_items(), d.num_labels);
  cpa_options.max_iterations = 12;

  ThreadPool one(1);
  ThreadPool four(4);
  FitOptions fit_one;
  fit_one.pool = &one;
  FitOptions fit_four;
  fit_four.pool = &four;
  const auto a = FitCpa(d.answers, d.num_labels, cpa_options, fit_one);
  const auto b = FitCpa(d.answers, d.num_labels, cpa_options, fit_four);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().kappa.MaxAbsDiff(b.value().kappa), 0.0);
  EXPECT_DOUBLE_EQ(a.value().phi.MaxAbsDiff(b.value().phi), 0.0);
  EXPECT_DOUBLE_EQ(a.value().zeta.MaxAbsDiff(b.value().zeta), 0.0);
  EXPECT_DOUBLE_EQ(a.value().theta_a.MaxAbsDiff(b.value().theta_a), 0.0);
  for (std::size_t t = 0; t < a.value().num_clusters(); ++t) {
    EXPECT_DOUBLE_EQ(a.value().lambda[t].MaxAbsDiff(b.value().lambda[t]), 0.0) << t;
  }
}

TEST(SweepDeterminismTest, ClusterActivityMatchesPhiThreshold) {
  FactoryOptions options;
  options.scale = 0.05;
  auto dataset = MakePaperDataset(PaperDatasetId::kMovie, options);
  ASSERT_TRUE(dataset.ok());
  const Dataset& d = dataset.value();
  CpaOptions cpa_options = CpaOptions::Recommended(d.num_items(), d.num_labels);
  cpa_options.max_iterations = 5;
  const auto model = FitCpa(d.answers, d.num_labels, cpa_options);
  ASSERT_TRUE(model.ok());

  ThreadPool pool(3);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    SweepScheduler scheduler(p);
    sweep::ClusterActivity activity;
    sweep::BuildClusterActivity(model.value().phi, scheduler, activity);
    ASSERT_EQ(activity.offsets.size(), model.value().num_items() + 1);
    for (ItemId i = 0; i < model.value().num_items(); ++i) {
      const auto row = model.value().phi.Row(i);
      const auto active = activity.ClustersOf(i);
      const auto weights = activity.WeightsOf(i);
      std::size_t k = 0;
      for (std::size_t t = 0; t < row.size(); ++t) {
        if (row[t] < sweep::kSkipMass) continue;
        ASSERT_LT(k, active.size()) << i;
        EXPECT_EQ(active[k], t);
        EXPECT_DOUBLE_EQ(weights[k], row[t]);
        ++k;
      }
      EXPECT_EQ(k, active.size()) << i;
    }
  }
}

}  // namespace
}  // namespace cpa
