#include "core/cpa.h"

#include <gtest/gtest.h>

#include "baselines/majority_vote.h"
#include "simulation/dataset_factory.h"

namespace cpa {
namespace {

double MeanF1(const std::vector<LabelSet>& predictions,
              const std::vector<LabelSet>& truth) {
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i].empty()) continue;
    const double inter = static_cast<double>(predictions[i].IntersectionSize(truth[i]));
    const double p = predictions[i].empty() ? 0.0 : inter / predictions[i].size();
    const double r = inter / truth[i].size();
    total += (p + r > 0.0) ? 2.0 * p * r / (p + r) : 0.0;
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

Dataset QuickDataset(PaperDatasetId id = PaperDatasetId::kImage) {
  FactoryOptions options;
  options.scale = 0.08;
  auto dataset = MakePaperDataset(id, options);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).value();
}

CpaOptions TunedOptions(const Dataset& dataset) {
  CpaOptions options = CpaOptions::Recommended(dataset.num_items(), dataset.num_labels);
  options.max_iterations = 25;
  return options;
}

TEST(CpaVariantNameTest, Names) {
  EXPECT_EQ(CpaVariantName(CpaVariant::kFull), "CPA");
  EXPECT_EQ(CpaVariantName(CpaVariant::kNoZ), "CPA-NoZ");
  EXPECT_EQ(CpaVariantName(CpaVariant::kNoL), "CPA-NoL");
}

TEST(CpaAggregatorTest, BeatsMajorityVoteOnSimulatedImageDataset) {
  const Dataset dataset = QuickDataset();
  CpaAggregator cpa(TunedOptions(dataset));
  MajorityVote mv;
  const auto cpa_result = cpa.Aggregate(dataset.answers, dataset.num_labels);
  const auto mv_result = mv.Aggregate(dataset.answers, dataset.num_labels);
  ASSERT_TRUE(cpa_result.ok()) << cpa_result.status().ToString();
  ASSERT_TRUE(mv_result.ok());
  const double cpa_f1 = MeanF1(cpa_result.value().predictions, dataset.ground_truth);
  const double mv_f1 = MeanF1(mv_result.value().predictions, dataset.ground_truth);
  EXPECT_GT(cpa_f1, mv_f1) << "CPA " << cpa_f1 << " vs MV " << mv_f1;
}

TEST(CpaAggregatorTest, ExposesModelAfterAggregate) {
  const Dataset dataset = QuickDataset(PaperDatasetId::kMovie);
  CpaAggregator cpa(TunedOptions(dataset));
  EXPECT_EQ(cpa.model(), nullptr);
  const auto result = cpa.Aggregate(dataset.answers, dataset.num_labels);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(cpa.model(), nullptr);
  EXPECT_EQ(cpa.model()->num_items(), dataset.num_items());
  EXPECT_GT(cpa.fit_stats().iterations, 0u);
}

TEST(CpaAggregatorTest, NoZVariantUsesSingletonCommunities) {
  const Dataset dataset = QuickDataset(PaperDatasetId::kMovie);
  CpaAggregator no_z(TunedOptions(dataset), CpaVariant::kNoZ);
  const auto result = no_z.Aggregate(dataset.answers, dataset.num_labels);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(no_z.model()->num_communities(), dataset.num_workers());
  EXPECT_EQ(no_z.name(), "CPA-NoZ");
}

TEST(CpaAggregatorTest, NoLVariantTractableOnlyForSmallLabelUniverses) {
  // Movie (22 labels): tractable.
  const Dataset movie = QuickDataset(PaperDatasetId::kMovie);
  CpaAggregator no_l_movie(TunedOptions(movie), CpaVariant::kNoL);
  const auto movie_result = no_l_movie.Aggregate(movie.answers, movie.num_labels);
  ASSERT_TRUE(movie_result.ok()) << movie_result.status().ToString();
  EXPECT_EQ(no_l_movie.model()->num_clusters(), movie.num_items());

  // A large-universe dataset must be refused, like the paper reports.
  const Dataset image = QuickDataset(PaperDatasetId::kImage);
  CpaOptions tight = TunedOptions(image);
  tight.no_l_parameter_limit = 100'000;
  CpaAggregator no_l_image(tight, CpaVariant::kNoL);
  const auto image_result = no_l_image.Aggregate(image.answers, image.num_labels);
  ASSERT_FALSE(image_result.ok());
  EXPECT_EQ(image_result.status().code(), StatusCode::kUnimplemented);
}

TEST(CpaAggregatorTest, FullModelBeatsBothAblations) {
  // Fig 8's headline: the full model dominates No Z and No L. On a small
  // simulated movie dataset we check CPA >= max(ablations) - small slack.
  const Dataset dataset = QuickDataset(PaperDatasetId::kMovie);
  CpaAggregator full(TunedOptions(dataset));
  CpaAggregator no_z(TunedOptions(dataset), CpaVariant::kNoZ);
  CpaAggregator no_l(TunedOptions(dataset), CpaVariant::kNoL);
  const auto full_result = full.Aggregate(dataset.answers, dataset.num_labels);
  const auto no_z_result = no_z.Aggregate(dataset.answers, dataset.num_labels);
  const auto no_l_result = no_l.Aggregate(dataset.answers, dataset.num_labels);
  ASSERT_TRUE(full_result.ok());
  ASSERT_TRUE(no_z_result.ok());
  ASSERT_TRUE(no_l_result.ok());
  const double full_f1 = MeanF1(full_result.value().predictions, dataset.ground_truth);
  const double no_z_f1 = MeanF1(no_z_result.value().predictions, dataset.ground_truth);
  const double no_l_f1 = MeanF1(no_l_result.value().predictions, dataset.ground_truth);
  // Small-sample slack: on little-correlated movie data the ablations can
  // tie the full model; Fig 8's margins emerge at full scale.
  EXPECT_GE(full_f1, no_z_f1 - 0.06);
  EXPECT_GE(full_f1, no_l_f1 - 0.06);
}

TEST(CpaAggregatorTest, RejectsZeroLabels) {
  CpaAggregator cpa;
  EXPECT_FALSE(cpa.Aggregate(AnswerMatrix(2, 2), 0).ok());
}

TEST(CpaAggregatorTest, DeterministicAcrossInstances) {
  const Dataset dataset = QuickDataset(PaperDatasetId::kTopic);
  CpaAggregator a(TunedOptions(dataset));
  CpaAggregator b(TunedOptions(dataset));
  const auto result_a = a.Aggregate(dataset.answers, dataset.num_labels);
  const auto result_b = b.Aggregate(dataset.answers, dataset.num_labels);
  ASSERT_TRUE(result_a.ok());
  ASSERT_TRUE(result_b.ok());
  for (std::size_t i = 0; i < result_a.value().predictions.size(); ++i) {
    EXPECT_EQ(result_a.value().predictions[i], result_b.value().predictions[i]);
  }
}

}  // namespace
}  // namespace cpa
