#include "core/vi.h"

#include <gtest/gtest.h>

#include "data/dataset.h"

#include "core/cpa.h"
#include "simulation/crowd_simulator.h"
#include "simulation/dataset_factory.h"

namespace cpa {
namespace {

struct TestWorld {
  Dataset dataset;
  GroundTruth truth;
  std::vector<WorkerProfile> workers;
};

TestWorld MakeWorld(std::uint64_t seed, const PopulationMix& mix,
                    std::size_t items = 200, std::size_t workers = 40,
                    double redundancy = 8.0) {
  Rng rng(seed);
  TruthConfig truth_config;
  truth_config.num_items = items;
  truth_config.num_labels = 12;
  truth_config.num_clusters = 3;
  truth_config.correlation = 0.85;
  truth_config.mean_labels_per_item = 2.5;
  truth_config.max_labels_per_item = 5;
  auto truth = GenerateGroundTruth(truth_config, rng);
  EXPECT_TRUE(truth.ok());

  PopulationConfig population_config;
  population_config.num_workers = workers;
  population_config.num_labels = 12;
  population_config.mix = mix;
  auto population = GeneratePopulation(population_config, rng);
  EXPECT_TRUE(population.ok());

  SimulationConfig sim_config;
  sim_config.answers_per_item = redundancy;
  sim_config.candidate_set_size = 12;
  auto answers = SimulateAnswers(truth.value(), population.value(), sim_config, rng);
  EXPECT_TRUE(answers.ok());

  TestWorld world;
  world.dataset.name = "vi-test";
  world.dataset.num_labels = 12;
  world.dataset.answers = std::move(answers).value();
  world.dataset.ground_truth = truth.value().labels;
  world.truth = std::move(truth).value();
  world.workers = std::move(population).value();
  return world;
}

CpaOptions FastOptions() {
  CpaOptions options;
  options.max_communities = 8;
  options.max_clusters = 48;
  options.max_iterations = 25;
  return options;
}

TEST(FitCpaTest, ProducesValidResponsibilities) {
  const TestWorld world = MakeWorld(3, PopulationMix::PaperSimulationDefault());
  FitStats stats;
  const auto model = FitCpa(world.dataset.answers, 12, FastOptions(), {}, &stats);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const CpaModel& m = model.value();
  for (std::size_t u = 0; u < m.num_workers(); ++u) {
    EXPECT_NEAR(m.kappa.RowSum(u), 1.0, 1e-6);
  }
  for (std::size_t i = 0; i < m.num_items(); ++i) {
    EXPECT_NEAR(m.phi.RowSum(i), 1.0, 1e-6);
  }
  EXPECT_GT(stats.iterations, 0u);
}

TEST(FitCpaTest, ConvergesOnSmallData) {
  const TestWorld world = MakeWorld(5, PopulationMix::PaperSimulationDefault(), 100);
  CpaOptions options = FastOptions();
  options.max_iterations = 60;
  FitStats stats;
  const auto model = FitCpa(world.dataset.answers, 12, options, {}, &stats);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(stats.converged) << "final change " << stats.final_change;
}

TEST(FitCpaTest, DeterministicForSameSeed) {
  const TestWorld world = MakeWorld(7, PopulationMix::PaperSimulationDefault(), 80);
  const auto a = FitCpa(world.dataset.answers, 12, FastOptions());
  const auto b = FitCpa(world.dataset.answers, 12, FastOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().kappa.MaxAbsDiff(b.value().kappa), 0.0);
  EXPECT_DOUBLE_EQ(a.value().phi.MaxAbsDiff(b.value().phi), 0.0);
}

TEST(FitCpaTest, ParallelFitMatchesSequentialExactly) {
  // Local updates touch disjoint rows with read-only shared state, so the
  // thread count must not change any result bit.
  const TestWorld world = MakeWorld(11, PopulationMix::PaperSimulationDefault(), 120);
  const auto sequential = FitCpa(world.dataset.answers, 12, FastOptions());
  ThreadPool pool(4);
  FitOptions fit;
  fit.pool = &pool;
  const auto parallel = FitCpa(world.dataset.answers, 12, FastOptions(), fit);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_DOUBLE_EQ(sequential.value().kappa.MaxAbsDiff(parallel.value().kappa), 0.0);
  EXPECT_DOUBLE_EQ(sequential.value().phi.MaxAbsDiff(parallel.value().phi), 0.0);
  EXPECT_DOUBLE_EQ(sequential.value().zeta.MaxAbsDiff(parallel.value().zeta), 0.0);
}

TEST(FitCpaTest, ClustersGroupItemsBySharedLabelSets) {
  // CPA clusters items by their *label sets* (items in a cluster share the
  // labelling distribution, §3.2) — so the model invariant is that items
  // sharing an inferred cluster have far more similar truth sets than
  // items in different clusters.
  const TestWorld world = MakeWorld(13, PopulationMix::AllReliable(), 300);
  const auto model = FitCpa(world.dataset.answers, 12, FastOptions());
  ASSERT_TRUE(model.ok());
  double within = 0.0;
  std::size_t within_n = 0;
  double across = 0.0;
  std::size_t across_n = 0;
  for (std::size_t i = 0; i < 150; ++i) {
    for (std::size_t j = i + 1; j < 150; ++j) {
      const double jaccard =
          world.dataset.ground_truth[i].Jaccard(world.dataset.ground_truth[j]);
      if (model.value().ItemCluster(i) == model.value().ItemCluster(j)) {
        within += jaccard;
        ++within_n;
      } else {
        across += jaccard;
        ++across_n;
      }
    }
  }
  ASSERT_GT(within_n, 0u);
  ASSERT_GT(across_n, 0u);
  EXPECT_GT(within / within_n, across / across_n + 0.3);
}

TEST(FitCpaTest, ItemsWithIdenticalTruthShareClusters) {
  // Stronger form on a clean crowd: items whose truth sets are *identical*
  // should usually land in the same cluster.
  const TestWorld world = MakeWorld(13, PopulationMix::AllReliable(), 300);
  const auto model = FitCpa(world.dataset.answers, 12, FastOptions());
  ASSERT_TRUE(model.ok());
  std::size_t identical_pairs = 0;
  std::size_t identical_shared = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t j = i + 1; j < 300; ++j) {
      if (world.dataset.ground_truth[i] == world.dataset.ground_truth[j]) {
        ++identical_pairs;
        identical_shared +=
            (model.value().ItemCluster(i) == model.value().ItemCluster(j));
      }
    }
  }
  ASSERT_GT(identical_pairs, 10u);
  EXPECT_GT(static_cast<double>(identical_shared) / identical_pairs, 0.7);
}

TEST(FitCpaTest, SeparatesSpammersFromReliableWorkers) {
  PopulationMix mix;
  mix.reliable = 0.5;
  mix.uniform_spammer = 0.25;
  mix.random_spammer = 0.25;
  const TestWorld world = MakeWorld(17, mix, 250, 40, 10.0);
  const auto model = FitCpa(world.dataset.answers, 12, FastOptions());
  ASSERT_TRUE(model.ok());

  // Reliability-weight per worker: community reliability mixed by kappa.
  const auto reliability = model.value().CommunityReliability();
  double reliable_weight = 0.0;
  std::size_t reliable_count = 0;
  double spam_weight = 0.0;
  std::size_t spam_count = 0;
  for (WorkerId u = 0; u < world.workers.size(); ++u) {
    double weight = 0.0;
    for (std::size_t m = 0; m < reliability.size(); ++m) {
      weight += model.value().kappa(u, m) * reliability[m];
    }
    if (world.workers[u].type == WorkerType::kReliable) {
      reliable_weight += weight;
      ++reliable_count;
    } else {
      spam_weight += weight;
      ++spam_count;
    }
  }
  ASSERT_GT(reliable_count, 0u);
  ASSERT_GT(spam_count, 0u);
  EXPECT_GT(reliable_weight / reliable_count, spam_weight / spam_count + 0.05);
}

TEST(FitCpaTest, UniformSpammersShareACommunity) {
  PopulationMix mix;
  mix.reliable = 0.6;
  mix.uniform_spammer = 0.4;
  const TestWorld world = MakeWorld(19, mix, 200, 30, 10.0);
  const auto model = FitCpa(world.dataset.answers, 12, FastOptions());
  ASSERT_TRUE(model.ok());
  // Count how often a uniform spammer shares its community with another
  // uniform spammer vs with a reliable worker.
  std::vector<WorkerId> spammers;
  std::vector<WorkerId> reliable;
  for (WorkerId u = 0; u < world.workers.size(); ++u) {
    if (world.workers[u].type == WorkerType::kUniformSpammer) {
      spammers.push_back(u);
    } else {
      reliable.push_back(u);
    }
  }
  ASSERT_GE(spammers.size(), 2u);
  // Reliable workers answer consistently with each other, so they should
  // share communities with one another far more often than with uniform
  // spammers (whose answers are fixated on arbitrary labels).
  std::size_t reliable_pairs_shared = 0;
  std::size_t reliable_pairs = 0;
  for (std::size_t a = 0; a < reliable.size(); ++a) {
    for (std::size_t b = a + 1; b < reliable.size(); ++b) {
      ++reliable_pairs;
      reliable_pairs_shared += (model.value().WorkerCommunity(reliable[a]) ==
                                model.value().WorkerCommunity(reliable[b]));
    }
  }
  std::size_t cross_shared = 0;
  for (WorkerId s : spammers) {
    for (WorkerId r : reliable) {
      cross_shared +=
          (model.value().WorkerCommunity(s) == model.value().WorkerCommunity(r));
    }
  }
  const double reliable_rate =
      static_cast<double>(reliable_pairs_shared) / static_cast<double>(reliable_pairs);
  const double cross_rate = static_cast<double>(cross_shared) /
                            static_cast<double>(spammers.size() * reliable.size());
  EXPECT_GT(reliable_rate, cross_rate + 0.2);
}

TEST(FitCpaTest, EffectiveClustersAdaptToData) {
  // Nonparametric behaviour (R4): the posterior occupies as many clusters
  // as there are frequent distinct label sets — well below the truncation,
  // well above the 3 generative topics.
  const TestWorld world = MakeWorld(23, PopulationMix::AllReliable(), 300);
  const auto model = FitCpa(world.dataset.answers, 12, FastOptions());
  ASSERT_TRUE(model.ok());
  const std::size_t effective = model.value().EffectiveClusters(3.0);
  EXPECT_GE(effective, 3u);
  EXPECT_LT(effective, 48u);
}

TEST(FitCpaTest, ObservedTruthIsRespected) {
  const TestWorld world = MakeWorld(29, PopulationMix::PaperSimulationDefault(), 100);
  FitOptions fit;
  fit.observed_truth = &world.dataset.ground_truth;
  const auto model = FitCpa(world.dataset.answers, 12, FastOptions(), fit);
  ASSERT_TRUE(model.ok());
  // Evidence of every item must equal its observed truth indicator.
  for (ItemId i = 0; i < 20; ++i) {
    const auto& evidence = model.value().y_evidence[i];
    EXPECT_EQ(evidence.size(), world.dataset.ground_truth[i].size());
    for (const auto& [c, weight] : evidence) {
      EXPECT_TRUE(world.dataset.ground_truth[i].Contains(c));
      EXPECT_DOUBLE_EQ(weight, 1.0);
    }
  }
}

TEST(FitCpaTest, EmptyAnswerMatrixStillFits) {
  const AnswerMatrix empty(5, 3);
  const auto model = FitCpa(empty, 4, FastOptions());
  ASSERT_TRUE(model.ok());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(model.value().phi.RowSum(i), 1.0, 1e-6);
  }
}

TEST(FitCpaTest, LabelEvidenceStrategiesProduceDifferentProfiles) {
  const TestWorld world = MakeWorld(31, PopulationMix::PaperSimulationDefault(), 150);
  CpaOptions frequency = FastOptions();
  frequency.label_evidence = LabelEvidence::kAnswerFrequency;
  CpaOptions observed_only = FastOptions();
  observed_only.label_evidence = LabelEvidence::kObservedOnly;
  const auto a = FitCpa(world.dataset.answers, 12, frequency);
  const auto b = FitCpa(world.dataset.answers, 12, observed_only);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // With y = ∅, the observed-only strategy leaves ζ at its prior.
  EXPECT_GT(a.value().zeta.MaxAbsDiff(b.value().zeta), 0.1);
  double max_entry = 0.0;
  for (double v : b.value().zeta.Data()) max_entry = std::max(max_entry, v);
  EXPECT_NEAR(max_entry, b.value().options().zeta0, 1e-9);
}

}  // namespace
}  // namespace cpa
