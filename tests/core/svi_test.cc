#include "core/svi.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/dataset.h"

#include "core/cpa.h"
#include "simulation/crowd_simulator.h"
#include "simulation/perturbations.h"

namespace cpa {
namespace {

Dataset OnlineDataset(std::uint64_t seed, std::size_t items = 250) {
  Rng rng(seed);
  TruthConfig truth_config;
  truth_config.num_items = items;
  truth_config.num_labels = 10;
  truth_config.num_clusters = 3;
  truth_config.correlation = 0.8;
  truth_config.mean_labels_per_item = 2.5;
  truth_config.max_labels_per_item = 5;
  auto truth = GenerateGroundTruth(truth_config, rng);
  EXPECT_TRUE(truth.ok());

  PopulationConfig population_config;
  population_config.num_workers = 40;
  population_config.num_labels = 10;
  population_config.mix = PopulationMix::PaperSimulationDefault();
  auto workers = GeneratePopulation(population_config, rng);
  EXPECT_TRUE(workers.ok());

  SimulationConfig sim_config;
  sim_config.answers_per_item = 8.0;
  sim_config.candidate_set_size = 10;
  auto answers = SimulateAnswers(truth.value(), workers.value(), sim_config, rng);
  EXPECT_TRUE(answers.ok());

  Dataset dataset;
  dataset.name = "svi-test";
  dataset.num_labels = 10;
  dataset.answers = std::move(answers).value();
  dataset.ground_truth = std::move(truth.value().labels);
  return dataset;
}

CpaOptions FastOptions() {
  CpaOptions options;
  options.max_communities = 6;
  options.max_clusters = 48;
  options.max_iterations = 20;
  return options;
}

double MeanF1(const std::vector<LabelSet>& predictions,
              const std::vector<LabelSet>& truth) {
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i].empty()) continue;
    const double inter = static_cast<double>(predictions[i].IntersectionSize(truth[i]));
    const double p = predictions[i].empty() ? 0.0 : inter / predictions[i].size();
    const double r = inter / truth[i].size();
    total += (p + r > 0.0) ? 2.0 * p * r / (p + r) : 0.0;
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

TEST(SviOptionsTest, ValidatesForgettingRate) {
  SviOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.forgetting_rate = 0.5;  // boundary excluded
  EXPECT_FALSE(options.Validate().ok());
  options.forgetting_rate = 1.0;
  EXPECT_TRUE(options.Validate().ok());
  options.forgetting_rate = 1.1;
  EXPECT_FALSE(options.Validate().ok());
  options = SviOptions();
  options.workers_per_batch = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(CpaOnlineTest, ConsumesAllBatchesAndCounts) {
  const Dataset dataset = OnlineDataset(3);
  auto online = CpaOnline::Create(dataset.num_items(), dataset.num_workers(), 10,
                                  FastOptions(), SviOptions());
  ASSERT_TRUE(online.ok());
  Rng rng(7);
  const BatchPlan plan = MakeWorkerBatches(dataset.answers, 8, rng);
  for (const auto& batch : plan.batches) {
    ASSERT_TRUE(online.value().ObserveBatch(dataset.answers, batch).ok());
  }
  EXPECT_EQ(online.value().batches_seen(), plan.num_batches());
  EXPECT_EQ(online.value().answers_seen(), dataset.answers.num_answers());
}

TEST(CpaOnlineTest, LearningRateDecays) {
  const Dataset dataset = OnlineDataset(5, 100);
  auto online = CpaOnline::Create(dataset.num_items(), dataset.num_workers(), 10,
                                  FastOptions(), SviOptions());
  ASSERT_TRUE(online.ok());
  Rng rng(7);
  const BatchPlan plan = MakeWorkerBatches(dataset.answers, 5, rng);
  double previous_rate = 1.0;
  for (const auto& batch : plan.batches) {
    ASSERT_TRUE(online.value().ObserveBatch(dataset.answers, batch).ok());
    EXPECT_LT(online.value().last_learning_rate(), previous_rate);
    previous_rate = online.value().last_learning_rate();
  }
  // omega_b = (1+b)^-r.
  EXPECT_NEAR(previous_rate,
              std::pow(1.0 + static_cast<double>(plan.num_batches()), -0.875), 1e-12);
}

TEST(CpaOnlineTest, OnlineAccuracyApproachesOffline) {
  const Dataset dataset = OnlineDataset(7, 300);
  // Offline reference.
  CpaAggregator offline(FastOptions());
  const auto offline_result = offline.Aggregate(dataset.answers, 10);
  ASSERT_TRUE(offline_result.ok());
  const double offline_f1 =
      MeanF1(offline_result.value().predictions, dataset.ground_truth);

  // Online pass over worker batches.
  auto online = CpaOnline::Create(dataset.num_items(), dataset.num_workers(), 10,
                                  FastOptions(), SviOptions());
  ASSERT_TRUE(online.ok());
  Rng rng(11);
  const BatchPlan plan = MakeWorkerBatches(dataset.answers, 8, rng);
  for (const auto& batch : plan.batches) {
    ASSERT_TRUE(online.value().ObserveBatch(dataset.answers, batch).ok());
  }
  const auto prediction = online.value().Predict(dataset.answers);
  ASSERT_TRUE(prediction.ok());
  const double online_f1 = MeanF1(prediction.value().labels, dataset.ground_truth);

  // The paper's finding (Table 5): online is slightly worse than offline
  // but competitive. Allow a modest gap and require non-trivial accuracy.
  EXPECT_GT(online_f1, 0.45);
  EXPECT_GT(online_f1, offline_f1 - 0.15);
}

TEST(CpaOnlineTest, AccuracyImprovesWithArrivingData) {
  const Dataset dataset = OnlineDataset(13, 300);
  auto online = CpaOnline::Create(dataset.num_items(), dataset.num_workers(), 10,
                                  FastOptions(), SviOptions());
  ASSERT_TRUE(online.ok());
  Rng rng(17);
  const BatchPlan plan = MakeArrivalSchedule(dataset.answers, 10, rng);

  // F1 after 30% of the data vs after 100%.
  double early_f1 = 0.0;
  double late_f1 = 0.0;
  for (std::size_t step = 0; step < plan.num_batches(); ++step) {
    ASSERT_TRUE(online.value().ObserveBatch(dataset.answers, plan.batches[step]).ok());
    if (step == 2 || step + 1 == plan.num_batches()) {
      const auto prediction = online.value().Predict(dataset.answers);
      ASSERT_TRUE(prediction.ok());
      const double f1 = MeanF1(prediction.value().labels, dataset.ground_truth);
      if (step == 2) {
        early_f1 = f1;
      } else {
        late_f1 = f1;
      }
    }
  }
  EXPECT_GT(late_f1, early_f1);
}

TEST(CpaOnlineTest, RejectsOutOfRangeBatchIndices) {
  const Dataset dataset = OnlineDataset(19, 50);
  auto online = CpaOnline::Create(dataset.num_items(), dataset.num_workers(), 10,
                                  FastOptions(), SviOptions());
  ASSERT_TRUE(online.ok());
  const std::vector<std::size_t> bogus = {dataset.answers.num_answers() + 5};
  EXPECT_FALSE(online.value().ObserveBatch(dataset.answers, bogus).ok());
}

TEST(CpaOnlineTest, EmptyBatchIsNoop) {
  const Dataset dataset = OnlineDataset(23, 50);
  auto online = CpaOnline::Create(dataset.num_items(), dataset.num_workers(), 10,
                                  FastOptions(), SviOptions());
  ASSERT_TRUE(online.ok());
  ASSERT_TRUE(online.value().ObserveBatch(dataset.answers, {}).ok());
  EXPECT_EQ(online.value().batches_seen(), 0u);
}

TEST(CpaOnlineTest, DeterministicForSameBatchOrder) {
  const Dataset dataset = OnlineDataset(29, 150);
  Rng rng_a(31);
  Rng rng_b(31);
  const BatchPlan plan_a = MakeWorkerBatches(dataset.answers, 8, rng_a);
  const BatchPlan plan_b = MakeWorkerBatches(dataset.answers, 8, rng_b);

  auto online_a = CpaOnline::Create(dataset.num_items(), dataset.num_workers(), 10,
                                    FastOptions(), SviOptions());
  auto online_b = CpaOnline::Create(dataset.num_items(), dataset.num_workers(), 10,
                                    FastOptions(), SviOptions());
  ASSERT_TRUE(online_a.ok());
  ASSERT_TRUE(online_b.ok());
  for (std::size_t b = 0; b < plan_a.num_batches(); ++b) {
    ASSERT_TRUE(online_a.value().ObserveBatch(dataset.answers, plan_a.batches[b]).ok());
    ASSERT_TRUE(online_b.value().ObserveBatch(dataset.answers, plan_b.batches[b]).ok());
  }
  EXPECT_DOUBLE_EQ(
      online_a.value().model().kappa.MaxAbsDiff(online_b.value().model().kappa), 0.0);
  EXPECT_DOUBLE_EQ(
      online_a.value().model().zeta.MaxAbsDiff(online_b.value().model().zeta), 0.0);
}

TEST(CpaOnlineTest, ParallelObserveMatchesSequential) {
  const Dataset dataset = OnlineDataset(37, 150);
  Rng rng(41);
  const BatchPlan plan = MakeWorkerBatches(dataset.answers, 10, rng);

  auto sequential = CpaOnline::Create(dataset.num_items(), dataset.num_workers(), 10,
                                      FastOptions(), SviOptions());
  ThreadPool pool(4);
  auto parallel = CpaOnline::Create(dataset.num_items(), dataset.num_workers(), 10,
                                    FastOptions(), SviOptions(), &pool);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  for (const auto& batch : plan.batches) {
    ASSERT_TRUE(sequential.value().ObserveBatch(dataset.answers, batch).ok());
    ASSERT_TRUE(parallel.value().ObserveBatch(dataset.answers, batch).ok());
  }
  EXPECT_DOUBLE_EQ(
      sequential.value().model().kappa.MaxAbsDiff(parallel.value().model().kappa), 0.0);
  EXPECT_DOUBLE_EQ(
      sequential.value().model().phi.MaxAbsDiff(parallel.value().model().phi), 0.0);
}

}  // namespace
}  // namespace cpa
