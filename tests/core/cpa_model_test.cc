#include "core/cpa_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/special_functions.h"

namespace cpa {
namespace {

CpaOptions SmallOptions() {
  CpaOptions options;
  options.max_communities = 5;
  options.max_clusters = 4;
  return options;
}

TEST(CpaOptionsTest, DefaultsValidate) { EXPECT_TRUE(CpaOptions().Validate().ok()); }

TEST(CpaOptionsTest, RejectsBadValues) {
  CpaOptions options;
  options.max_communities = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = CpaOptions();
  options.alpha = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options = CpaOptions();
  options.lambda0 = -1.0;
  EXPECT_FALSE(options.Validate().ok());
  options = CpaOptions();
  options.tolerance = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options = CpaOptions();
  options.reliability_floor = 2.0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(CpaModelTest, CreateShapes) {
  const auto model = CpaModel::Create(10, 7, 6, SmallOptions());
  ASSERT_TRUE(model.ok());
  const CpaModel& m = model.value();
  EXPECT_EQ(m.num_items(), 10u);
  EXPECT_EQ(m.num_workers(), 7u);
  EXPECT_EQ(m.num_labels(), 6u);
  EXPECT_EQ(m.num_communities(), 5u);
  EXPECT_EQ(m.num_clusters(), 4u);
  EXPECT_EQ(m.kappa.rows(), 7u);
  EXPECT_EQ(m.kappa.cols(), 5u);
  EXPECT_EQ(m.phi.rows(), 10u);
  EXPECT_EQ(m.phi.cols(), 4u);
  EXPECT_EQ(m.rho.rows(), 4u);     // M - 1
  EXPECT_EQ(m.upsilon.rows(), 3u); // T - 1
  EXPECT_EQ(m.lambda.size(), 4u);
  EXPECT_EQ(m.lambda[0].rows(), 5u);
  EXPECT_EQ(m.lambda[0].cols(), 6u);
  EXPECT_EQ(m.zeta.rows(), 4u);
  EXPECT_EQ(m.zeta.cols(), 6u);
}

TEST(CpaModelTest, ResponsibilitiesAreRowStochastic) {
  const auto model = CpaModel::Create(10, 7, 6, SmallOptions());
  ASSERT_TRUE(model.ok());
  for (std::size_t u = 0; u < 7; ++u) {
    EXPECT_NEAR(model.value().kappa.RowSum(u), 1.0, 1e-9);
  }
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(model.value().phi.RowSum(i), 1.0, 1e-9);
  }
}

TEST(CpaModelTest, SingletonVariantsUseIdentityResponsibilities) {
  CpaOptions no_z = SmallOptions();
  no_z.singleton_communities = true;
  const auto model = CpaModel::Create(6, 4, 3, no_z);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().num_communities(), 4u);
  for (std::size_t u = 0; u < 4; ++u) {
    EXPECT_DOUBLE_EQ(model.value().kappa(u, u), 1.0);
  }

  CpaOptions no_l = SmallOptions();
  no_l.singleton_clusters = true;
  const auto model_l = CpaModel::Create(6, 4, 3, no_l);
  ASSERT_TRUE(model_l.ok());
  EXPECT_EQ(model_l.value().num_clusters(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(model_l.value().phi(i, i), 1.0);
  }
}

TEST(CpaModelTest, NoLParameterGuardRefusesHugeConfigurations) {
  CpaOptions no_l = SmallOptions();
  no_l.singleton_clusters = true;
  no_l.no_l_parameter_limit = 100;  // 6 items * 5 communities * 10 labels > 100
  const auto model = CpaModel::Create(6, 4, 10, no_l);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kUnimplemented);
}

TEST(StickBreakingTest, UniformSticksFavourEarlierComponents) {
  Matrix sticks(3, 2, 1.0);  // Beta(1,1) on each stick
  std::vector<double> elog;
  StickBreakingExpectedLog(sticks, elog);
  ASSERT_EQ(elog.size(), 4u);
  // E[ln pi_1] = Psi(1) - Psi(2); later components accumulate E[ln(1-v)].
  EXPECT_NEAR(elog[0], Digamma(1.0) - Digamma(2.0), 1e-12);
  EXPECT_GT(elog[0], elog[1]);
  EXPECT_GT(elog[1], elog[2]);
  // The last component only carries the accumulated remainder.
  EXPECT_NEAR(elog[3], 3.0 * (Digamma(1.0) - Digamma(2.0)), 1e-12);
}

TEST(StickBreakingTest, ExpectedMassesFormSubProbability) {
  // exp(E[ln pi]) underestimates E[pi] (Jensen) so the sum must be < 1.
  Matrix sticks(4, 2);
  for (std::size_t k = 0; k < 4; ++k) {
    sticks(k, 0) = 2.0 + k;
    sticks(k, 1) = 1.5;
  }
  std::vector<double> elog;
  StickBreakingExpectedLog(sticks, elog);
  double total = 0.0;
  for (double v : elog) total += std::exp(v);
  EXPECT_LT(total, 1.0);
  EXPECT_GT(total, 0.5);
}

TEST(CpaModelTest, RefreshExpectationsMatchesDirichletDefinition) {
  auto model = CpaModel::Create(4, 3, 3, SmallOptions());
  ASSERT_TRUE(model.ok());
  CpaModel& m = model.value();
  m.zeta(0, 0) = 4.0;
  m.zeta(0, 1) = 2.0;
  m.zeta(0, 2) = 2.0;
  m.RefreshExpectations();
  const double digamma_sum = Digamma(8.0);
  EXPECT_NEAR(m.elog_phi(0, 0), Digamma(4.0) - digamma_sum, 1e-12);
  EXPECT_NEAR(m.elog_phi(0, 1), Digamma(2.0) - digamma_sum, 1e-12);
}

TEST(CpaModelTest, AnswerExpectedLogLikSumsSelectedComponents) {
  auto model = CpaModel::Create(4, 3, 4, SmallOptions());
  ASSERT_TRUE(model.ok());
  CpaModel& m = model.value();
  m.RefreshExpectations();
  const LabelSet labels = {0, 2};
  const double expected = m.elog_psi[1](2, 0) + m.elog_psi[1](2, 2);
  EXPECT_NEAR(m.AnswerExpectedLogLik(1, 2, labels), expected, 1e-12);
}

TEST(CpaModelTest, UpdateSizePriorTracksAnswerSizes) {
  auto model = CpaModel::Create(3, 2, 5, SmallOptions());
  ASSERT_TRUE(model.ok());
  CpaModel& m = model.value();
  AnswerMatrix answers(3, 2);
  ASSERT_TRUE(answers.Add(0, 0, LabelSet{0, 1}).ok());
  ASSERT_TRUE(answers.Add(1, 0, LabelSet{0, 1}).ok());
  ASSERT_TRUE(answers.Add(2, 1, LabelSet{2}).ok());
  m.UpdateSizePrior(answers);
  // Rows normalised, with most mass on sizes 1 and 2.
  for (std::size_t t = 0; t < m.num_clusters(); ++t) {
    EXPECT_NEAR(Sum(m.size_prior.Row(t)), 1.0, 1e-9);
  }
  // Aggregate over clusters: size 2 mass should exceed size 4 mass.
  double size2 = 0.0;
  double size4 = 0.0;
  for (std::size_t t = 0; t < m.num_clusters(); ++t) {
    size2 += m.size_prior(t, 2);
    size4 += m.size_prior(t, 4);
  }
  EXPECT_GT(size2, size4);
}

TEST(CpaModelTest, PosteriorMeansNormalised) {
  auto model = CpaModel::Create(4, 3, 3, SmallOptions());
  ASSERT_TRUE(model.ok());
  const auto psi = model.value().PsiMean(0, 0);
  EXPECT_NEAR(Sum(psi), 1.0, 1e-9);
  const auto phi = model.value().PhiMean(1);
  EXPECT_NEAR(Sum(phi), 1.0, 1e-9);
}

TEST(CpaModelTest, CommunityReliabilityWithinBounds) {
  auto model = CpaModel::Create(6, 5, 4, SmallOptions());
  ASSERT_TRUE(model.ok());
  const auto reliability = model.value().CommunityReliability();
  ASSERT_EQ(reliability.size(), 5u);
  for (double r : reliability) {
    EXPECT_GE(r, model.value().options().reliability_floor);
    EXPECT_LE(r, 1.0);
  }
}

TEST(CpaModelTest, EffectiveCountsRespectThreshold) {
  auto model = CpaModel::Create(8, 6, 3, SmallOptions());
  ASSERT_TRUE(model.ok());
  // Near-uniform init: every component holds ~6/5 and ~8/4 mass.
  EXPECT_EQ(model.value().EffectiveCommunities(0.5), 5u);
  EXPECT_EQ(model.value().EffectiveClusters(0.5), 4u);
  EXPECT_EQ(model.value().EffectiveCommunities(100.0), 0u);
}

TEST(CpaModelTest, RejectsZeroLabels) {
  EXPECT_FALSE(CpaModel::Create(3, 3, 0, SmallOptions()).ok());
}

}  // namespace
}  // namespace cpa
