#include "core/sweep/answer_view.h"

#include <gtest/gtest.h>

#include <vector>

#include "data/answer_matrix.h"
#include "simulation/dataset_factory.h"

namespace cpa {
namespace {

AnswerMatrix SmallMatrix() {
  AnswerMatrix answers(4, 3);
  EXPECT_TRUE(answers.Add(0, 0, {1, 2}).ok());
  EXPECT_TRUE(answers.Add(2, 0, {0}).ok());
  EXPECT_TRUE(answers.Add(0, 2, {2}).ok());
  EXPECT_TRUE(answers.Add(3, 1, {0, 1, 3}).ok());
  EXPECT_TRUE(answers.Add(2, 2, {3}).ok());
  return answers;
}

TEST(AnswerViewTest, EmptyMatrixYieldsEmptyView) {
  const AnswerView view{AnswerMatrix(0, 0)};
  EXPECT_EQ(view.num_answers(), 0u);
  EXPECT_EQ(view.num_items(), 0u);
  EXPECT_EQ(view.num_workers(), 0u);
}

TEST(AnswerViewTest, EntitiesWithoutAnswersHaveEmptySpans) {
  const AnswerMatrix answers = SmallMatrix();
  const AnswerView view(answers);
  EXPECT_TRUE(view.AnswersOfItem(1).empty());  // item 1 never answered
  for (WorkerId u = 0; u < 3; ++u) {
    EXPECT_EQ(view.AnswersOfWorker(u).size(), answers.AnswersOfWorker(u).size());
  }
}

TEST(AnswerViewTest, SoaFieldsRoundTripAgainstAnswerMatrix) {
  const AnswerMatrix answers = SmallMatrix();
  const AnswerView view(answers);
  ASSERT_EQ(view.num_answers(), answers.num_answers());
  for (std::size_t index = 0; index < answers.num_answers(); ++index) {
    const Answer& a = answers.answer(index);
    EXPECT_EQ(view.item(index), a.item);
    EXPECT_EQ(view.worker(index), a.worker);
    ASSERT_EQ(view.label_count(index), a.labels.size());
    const auto labels = view.labels(index);
    std::size_t k = 0;
    for (LabelId c : a.labels) EXPECT_EQ(labels[k++], c);
  }
}

TEST(AnswerViewTest, CsrOffsetsAreConsistent) {
  const AnswerMatrix answers = SmallMatrix();
  const AnswerView view(answers);
  // Every answer appears exactly once in each CSR index, under the right
  // entity, and the per-entity spans cover the whole answer set.
  std::vector<int> seen_by_item(answers.num_answers(), 0);
  for (ItemId i = 0; i < answers.num_items(); ++i) {
    for (std::uint32_t index : view.AnswersOfItem(i)) {
      EXPECT_EQ(view.item(index), i);
      ++seen_by_item[index];
    }
  }
  std::vector<int> seen_by_worker(answers.num_answers(), 0);
  for (WorkerId u = 0; u < answers.num_workers(); ++u) {
    for (std::uint32_t index : view.AnswersOfWorker(u)) {
      EXPECT_EQ(view.worker(index), u);
      ++seen_by_worker[index];
    }
  }
  for (std::size_t index = 0; index < answers.num_answers(); ++index) {
    EXPECT_EQ(seen_by_item[index], 1) << index;
    EXPECT_EQ(seen_by_worker[index], 1) << index;
  }
}

TEST(AnswerViewTest, ExtendToMatchesFullRebuildOnAGrowingStream) {
  // A growing stream matrix: the incremental suffix append must leave the
  // view indistinguishable from one built from scratch.
  AnswerMatrix answers(5, 4);
  EXPECT_TRUE(answers.Add(0, 0, {1}).ok());
  EXPECT_TRUE(answers.Add(1, 1, {0, 2}).ok());
  AnswerView view(answers);
  view.ExtendTo(answers);  // no growth: no-op
  EXPECT_EQ(view.num_answers(), 2u);

  EXPECT_TRUE(answers.Add(0, 2, {2, 3}).ok());
  EXPECT_TRUE(answers.Add(4, 0, {0}).ok());
  view.ExtendTo(answers);
  const AnswerView rebuilt(answers);
  ASSERT_EQ(view.num_answers(), rebuilt.num_answers());
  for (std::size_t index = 0; index < rebuilt.num_answers(); ++index) {
    EXPECT_EQ(view.item(index), rebuilt.item(index));
    EXPECT_EQ(view.worker(index), rebuilt.worker(index));
    ASSERT_EQ(view.label_count(index), rebuilt.label_count(index));
    for (std::size_t k = 0; k < rebuilt.label_count(index); ++k) {
      EXPECT_EQ(view.labels(index)[k], rebuilt.labels(index)[k]);
    }
  }
  for (ItemId i = 0; i < answers.num_items(); ++i) {
    const auto a = view.AnswersOfItem(i);
    const auto b = rebuilt.AnswersOfItem(i);
    ASSERT_EQ(a.size(), b.size()) << i;
    for (std::size_t k = 0; k < b.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
  for (WorkerId u = 0; u < answers.num_workers(); ++u) {
    const auto a = view.AnswersOfWorker(u);
    const auto b = rebuilt.AnswersOfWorker(u);
    ASSERT_EQ(a.size(), b.size()) << u;
    for (std::size_t k = 0; k < b.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST(AnswerViewTest, PerEntityTraversalMatchesAnswerMatrixOrder) {
  // The CSR spans must preserve stream order within an entity — the sweep
  // accumulation order (and hence bit-exactness) depends on it.
  FactoryOptions options;
  options.scale = 0.05;
  auto dataset = MakePaperDataset(PaperDatasetId::kMovie, options);
  ASSERT_TRUE(dataset.ok());
  const AnswerMatrix& answers = dataset.value().answers;
  const AnswerView view(answers);
  ASSERT_EQ(view.num_answers(), answers.num_answers());
  for (ItemId i = 0; i < answers.num_items(); ++i) {
    const auto expected = answers.AnswersOfItem(i);
    const auto actual = view.AnswersOfItem(i);
    ASSERT_EQ(actual.size(), expected.size()) << i;
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(static_cast<std::size_t>(actual[k]), expected[k]);
    }
  }
  for (WorkerId u = 0; u < answers.num_workers(); ++u) {
    const auto expected = answers.AnswersOfWorker(u);
    const auto actual = view.AnswersOfWorker(u);
    ASSERT_EQ(actual.size(), expected.size()) << u;
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(static_cast<std::size_t>(actual[k]), expected[k]);
    }
  }
}

}  // namespace
}  // namespace cpa
