#include "core/elbo.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/dataset.h"

#include "core/vi.h"
#include "simulation/crowd_simulator.h"

namespace cpa {
namespace {

Dataset SmallDataset(std::uint64_t seed, std::size_t items = 100) {
  Rng rng(seed);
  TruthConfig truth_config;
  truth_config.num_items = items;
  truth_config.num_labels = 8;
  truth_config.num_clusters = 2;
  truth_config.correlation = 0.8;
  truth_config.mean_labels_per_item = 2.0;
  truth_config.max_labels_per_item = 4;
  auto truth = GenerateGroundTruth(truth_config, rng);
  EXPECT_TRUE(truth.ok());

  PopulationConfig population_config;
  population_config.num_workers = 20;
  population_config.num_labels = 8;
  population_config.mix = PopulationMix::PaperSimulationDefault();
  auto workers = GeneratePopulation(population_config, rng);
  EXPECT_TRUE(workers.ok());

  SimulationConfig sim_config;
  sim_config.answers_per_item = 6.0;
  sim_config.candidate_set_size = 8;
  auto answers = SimulateAnswers(truth.value(), workers.value(), sim_config, rng);
  EXPECT_TRUE(answers.ok());

  Dataset dataset;
  dataset.name = "elbo-test";
  dataset.num_labels = 8;
  dataset.answers = std::move(answers).value();
  dataset.ground_truth = std::move(truth.value().labels);
  return dataset;
}

CpaOptions Options(LabelEvidence evidence) {
  CpaOptions options;
  options.max_communities = 5;
  options.max_clusters = 5;
  options.max_iterations = 15;
  options.label_evidence = evidence;
  // Pure coordinate-ascent configuration: no re-seeding sweeps, and the
  // answer term restored in the phi update so each sweep is exact
  // mean-field ascent on the bound being measured.
  options.reseed_sweeps = 0;
  options.phi_answer_term = true;
  return options;
}

TEST(ElboTest, FiniteOnFreshModel) {
  const Dataset dataset = SmallDataset(3);
  const auto model =
      CpaModel::Create(dataset.num_items(), dataset.num_workers(), 8,
                       Options(LabelEvidence::kAnswerFrequency));
  ASSERT_TRUE(model.ok());
  const double elbo = ComputeElbo(model.value(), dataset.answers);
  EXPECT_TRUE(std::isfinite(elbo));
}

// Property test: coordinate ascent must not decrease the bound when the
// label evidence is frozen across sweeps. kAnswerFrequency freezes the
// evidence by construction (it depends only on the fixed answers), and
// kObservedOnly with full observed truth likewise.
TEST(ElboTest, MonotoneWithAnswerFrequencyEvidence) {
  const Dataset dataset = SmallDataset(5);
  FitStats stats;
  FitOptions fit;
  fit.track_elbo = true;
  const auto model = FitCpa(dataset.answers, 8,
                            Options(LabelEvidence::kAnswerFrequency), fit, &stats);
  ASSERT_TRUE(model.ok());
  ASSERT_GE(stats.elbo_trace.size(), 3u);
  for (std::size_t k = 1; k < stats.elbo_trace.size(); ++k) {
    EXPECT_GE(stats.elbo_trace[k], stats.elbo_trace[k - 1] - 1e-6)
        << "sweep " << k << ": " << stats.elbo_trace[k - 1] << " -> "
        << stats.elbo_trace[k];
  }
}

TEST(ElboTest, MonotoneWithObservedTruth) {
  const Dataset dataset = SmallDataset(7);
  FitStats stats;
  FitOptions fit;
  fit.track_elbo = true;
  fit.observed_truth = &dataset.ground_truth;
  const auto model =
      FitCpa(dataset.answers, 8, Options(LabelEvidence::kObservedOnly), fit, &stats);
  ASSERT_TRUE(model.ok());
  ASSERT_GE(stats.elbo_trace.size(), 3u);
  for (std::size_t k = 1; k < stats.elbo_trace.size(); ++k) {
    EXPECT_GE(stats.elbo_trace[k], stats.elbo_trace[k - 1] - 1e-6)
        << "sweep " << k;
  }
}

TEST(ElboTest, ElboImprovesSubstantiallyOverInitialisation) {
  const Dataset dataset = SmallDataset(11);
  FitStats stats;
  FitOptions fit;
  fit.track_elbo = true;
  const auto model = FitCpa(dataset.answers, 8,
                            Options(LabelEvidence::kAnswerFrequency), fit, &stats);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(stats.elbo_trace.back(), stats.elbo_trace.front());
}

TEST(ElboTest, TermsDecomposeIntoTotal) {
  const Dataset dataset = SmallDataset(13);
  const auto model = FitCpa(dataset.answers, 8, Options(LabelEvidence::kAnswerFrequency));
  ASSERT_TRUE(model.ok());
  const ElboTerms terms = ComputeElboTerms(model.value(), dataset.answers);
  EXPECT_NEAR(terms.Total(),
              terms.answer_loglik + terms.community_prior + terms.cluster_prior +
                  terms.label_loglik + terms.stick_priors + terms.dirichlet_priors +
                  terms.entropy,
              1e-9);
  // Log-likelihood and prior expectations of discrete structures are
  // non-positive; entropies of the categorical factors are non-negative
  // (the Dirichlet/Beta differential entropies may take either sign).
  EXPECT_LE(terms.community_prior, 1e-9);
  EXPECT_LE(terms.cluster_prior, 1e-9);
  EXPECT_LE(terms.label_loglik, 1e-9);
}

TEST(ElboTest, BetterFitHasHigherElboThanWorseFit) {
  const Dataset dataset = SmallDataset(17);
  CpaOptions one_iter = Options(LabelEvidence::kAnswerFrequency);
  one_iter.max_iterations = 1;
  CpaOptions many_iters = Options(LabelEvidence::kAnswerFrequency);
  many_iters.max_iterations = 15;
  const auto rough = FitCpa(dataset.answers, 8, one_iter);
  const auto refined = FitCpa(dataset.answers, 8, many_iters);
  ASSERT_TRUE(rough.ok());
  ASSERT_TRUE(refined.ok());
  EXPECT_GE(ComputeElbo(refined.value(), dataset.answers),
            ComputeElbo(rough.value(), dataset.answers) - 1e-6);
}

}  // namespace
}  // namespace cpa
