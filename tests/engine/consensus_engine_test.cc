#include "engine/consensus_engine.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "baselines/cbcc.h"
#include "baselines/dawid_skene.h"
#include "baselines/majority_vote.h"
#include "core/cpa.h"
#include "engine/cpa_engines.h"
#include "engine/engine_registry.h"
#include "eval/experiment.h"
#include "simulation/crowd_simulator.h"
#include "simulation/perturbations.h"

namespace cpa {
namespace {

/// Small simulated stream: 10 labels keeps even the No L exhaustive
/// instantiation fast.
Dataset StreamDataset(std::uint64_t seed, std::size_t items = 150) {
  Rng rng(seed);
  TruthConfig truth_config;
  truth_config.num_items = items;
  truth_config.num_labels = 10;
  truth_config.num_clusters = 3;
  truth_config.correlation = 0.8;
  truth_config.mean_labels_per_item = 2.5;
  truth_config.max_labels_per_item = 5;
  auto truth = GenerateGroundTruth(truth_config, rng);
  EXPECT_TRUE(truth.ok());

  PopulationConfig population_config;
  population_config.num_workers = 30;
  population_config.num_labels = 10;
  population_config.mix = PopulationMix::PaperSimulationDefault();
  auto workers = GeneratePopulation(population_config, rng);
  EXPECT_TRUE(workers.ok());

  SimulationConfig sim_config;
  sim_config.answers_per_item = 7.0;
  sim_config.candidate_set_size = 10;
  auto answers = SimulateAnswers(truth.value(), workers.value(), sim_config, rng);
  EXPECT_TRUE(answers.ok());

  Dataset dataset;
  dataset.name = "engine-test";
  dataset.num_labels = 10;
  dataset.answers = std::move(answers).value();
  dataset.ground_truth = std::move(truth.value().labels);
  return dataset;
}

EngineConfig FastConfig(const std::string& method, const Dataset& dataset) {
  EngineConfig config = EngineConfig::ForDataset(method, dataset);
  config.cpa.max_communities = 6;
  config.cpa.max_clusters = 48;
  config.cpa.max_iterations = 15;
  return config;
}

std::unique_ptr<ConsensusEngine> MustOpen(const EngineConfig& config) {
  auto engine = EngineRegistry::Global().Open(config);
  EXPECT_TRUE(engine.ok()) << config.method << ": " << engine.status().ToString();
  return std::move(engine).value();
}

/// The direct (pre-engine) counterpart of a registered offline method.
std::unique_ptr<Aggregator> DirectAggregator(const std::string& method,
                                             const EngineConfig& config) {
  if (method == "MV") return std::make_unique<MajorityVote>(config.majority);
  if (method == "EM") return std::make_unique<DawidSkene>(config.em);
  if (method == "cBCC") return std::make_unique<Cbcc>(config.cbcc);
  if (method == "CPA")
    return std::make_unique<CpaAggregator>(config.cpa, CpaVariant::kFull);
  if (method == "CPA-NoZ")
    return std::make_unique<CpaAggregator>(config.cpa, CpaVariant::kNoZ);
  if (method == "CPA-NoL")
    return std::make_unique<CpaAggregator>(config.cpa, CpaVariant::kNoL);
  return nullptr;
}

// The acceptance property of the offline adapter: once a session has
// observed the whole stream (in any batch split), Finalize() is *equal* to
// a direct Aggregate() call on the same answers — for every registered
// offline method.
TEST(ConsensusEngineTest, OfflineFinalizeEqualsDirectAggregate) {
  const Dataset dataset = StreamDataset(3);
  for (const std::string& method :
       {std::string("MV"), std::string("EM"), std::string("cBCC"),
        std::string("CPA"), std::string("CPA-NoZ"), std::string("CPA-NoL")}) {
    const EngineConfig config = FastConfig(method, dataset);
    auto engine = MustOpen(config);

    Rng rng(17);
    const BatchPlan plan = MakeArrivalSchedule(dataset.answers, 4, rng);
    for (const auto& batch : plan.batches) {
      ASSERT_TRUE(engine->Observe({&dataset.answers, batch}).ok()) << method;
    }
    const auto final_snapshot = engine->Finalize();
    ASSERT_TRUE(final_snapshot.ok())
        << method << ": " << final_snapshot.status().ToString();

    auto direct = DirectAggregator(method, config);
    ASSERT_NE(direct, nullptr) << method;
    const auto direct_result =
        direct->Aggregate(dataset.answers, dataset.num_labels);
    ASSERT_TRUE(direct_result.ok())
        << method << ": " << direct_result.status().ToString();

    const std::vector<LabelSet>& engine_predictions =
        final_snapshot.value()->predictions;
    const std::vector<LabelSet>& direct_predictions =
        direct_result.value().predictions;
    ASSERT_EQ(engine_predictions.size(), direct_predictions.size()) << method;
    for (std::size_t i = 0; i < engine_predictions.size(); ++i) {
      EXPECT_EQ(engine_predictions[i], direct_predictions[i])
          << method << " item " << i;
    }
    if (!direct_result.value().label_scores.empty()) {
      EXPECT_DOUBLE_EQ(final_snapshot.value()->label_scores.MaxAbsDiff(
                           direct_result.value().label_scores),
                       0.0)
          << method;
    }
    EXPECT_EQ(final_snapshot.value()->fit_stats.iterations,
              direct_result.value().iterations)
        << method;
  }
}

// Mid-stream snapshots of the adapter are offline re-runs on the data so
// far: equal to Aggregate() on the prefix sub-matrix.
TEST(ConsensusEngineTest, OfflineSnapshotMatchesPrefixAggregate) {
  const Dataset dataset = StreamDataset(5);
  auto engine = MustOpen(FastConfig("MV", dataset));

  Rng rng(19);
  const BatchPlan plan = MakeArrivalSchedule(dataset.answers, 4, rng);
  ASSERT_TRUE(engine->Observe({&dataset.answers, plan.batches[0]}).ok());
  ASSERT_TRUE(engine->Observe({&dataset.answers, plan.batches[1]}).ok());
  const auto snapshot = engine->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_FALSE(snapshot.value()->finalized);
  EXPECT_EQ(snapshot.value()->batches_seen, 2u);

  std::vector<std::size_t> prefix = plan.Prefix(2);
  std::sort(prefix.begin(), prefix.end());
  MajorityVote mv;
  const auto direct =
      mv.Aggregate(dataset.answers.Subset(prefix), dataset.num_labels);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(snapshot.value()->predictions.size(), direct.value().predictions.size());
  for (std::size_t i = 0; i < direct.value().predictions.size(); ++i) {
    EXPECT_EQ(snapshot.value()->predictions[i], direct.value().predictions[i]);
  }
}

// The native online engine is CpaOnline, batch for batch: same model, same
// predictions, same learning-rate schedule.
TEST(ConsensusEngineTest, SviEngineMatchesCpaOnlineBatchForBatch) {
  const Dataset dataset = StreamDataset(7);
  const EngineConfig config = FastConfig("CPA-SVI", dataset);
  auto engine = MustOpen(config);

  auto online = CpaOnline::Create(config.num_items, config.num_workers,
                                  config.num_labels, config.cpa, config.svi);
  ASSERT_TRUE(online.ok());

  Rng rng(23);
  const BatchPlan plan = MakeWorkerBatches(dataset.answers, 8, rng);
  for (std::size_t b = 0; b < plan.num_batches(); ++b) {
    ASSERT_TRUE(engine->Observe({&dataset.answers, plan.batches[b]}).ok());
    ASSERT_TRUE(online.value().ObserveBatch(dataset.answers, plan.batches[b]).ok());

    const auto snapshot = engine->Snapshot();
    ASSERT_TRUE(snapshot.ok());
    const auto prediction = online.value().Predict(dataset.answers);
    ASSERT_TRUE(prediction.ok());

    EXPECT_EQ(snapshot.value()->batches_seen, online.value().batches_seen());
    EXPECT_EQ(snapshot.value()->answers_seen, online.value().answers_seen());
    EXPECT_DOUBLE_EQ(snapshot.value()->learning_rate,
                     online.value().last_learning_rate());
    ASSERT_EQ(snapshot.value()->predictions.size(), prediction.value().labels.size());
    for (std::size_t i = 0; i < prediction.value().labels.size(); ++i) {
      EXPECT_EQ(snapshot.value()->predictions[i], prediction.value().labels[i])
          << "batch " << b << " item " << i;
    }
    EXPECT_DOUBLE_EQ(
        snapshot.value()->label_scores.MaxAbsDiff(prediction.value().scores), 0.0)
        << "batch " << b;
  }
}

TEST(ConsensusEngineTest, SnapshotBeforeAnyObservationIsEmpty) {
  const Dataset dataset = StreamDataset(11, 50);
  auto engine = MustOpen(FastConfig("MV", dataset));
  const auto snapshot = engine->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value()->method, "MV");
  EXPECT_TRUE(snapshot.value()->predictions.empty());
  EXPECT_EQ(snapshot.value()->batches_seen, 0u);
  EXPECT_EQ(snapshot.value()->answers_seen, 0u);
  EXPECT_FALSE(snapshot.value()->finalized);
}

TEST(ConsensusEngineTest, LifecycleGuards) {
  const Dataset dataset = StreamDataset(13, 50);
  auto engine = MustOpen(FastConfig("MV", dataset));

  // Null stream.
  EXPECT_EQ(engine->Observe({nullptr, {}}).code(), StatusCode::kInvalidArgument);

  // Out-of-range index.
  const std::vector<std::size_t> bogus = {dataset.answers.num_answers() + 1};
  EXPECT_EQ(engine->Observe({&dataset.answers, bogus}).code(),
            StatusCode::kOutOfRange);

  // Empty batches are no-ops.
  ASSERT_TRUE(engine->Observe({&dataset.answers, {}}).ok());
  EXPECT_EQ(engine->batches_seen(), 0u);

  // One real batch, then a foreign stream matrix is rejected.
  std::vector<std::size_t> batch(10);
  std::iota(batch.begin(), batch.end(), std::size_t{0});
  ASSERT_TRUE(engine->Observe({&dataset.answers, batch}).ok());
  EXPECT_EQ(engine->batches_seen(), 1u);
  EXPECT_EQ(engine->answers_seen(), 10u);
  const Dataset other = StreamDataset(29, 50);
  EXPECT_EQ(engine->Observe({&other.answers, batch}).code(),
            StatusCode::kInvalidArgument);

  // Finalize is idempotent and closes the session.
  const auto first = engine->Finalize();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value()->finalized);
  EXPECT_TRUE(engine->finalized());
  const auto second = engine->Finalize();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value()->predictions.size(), second.value()->predictions.size());
  EXPECT_EQ(engine->Observe({&dataset.answers, batch}).code(),
            StatusCode::kFailedPrecondition);
  // Snapshot after Finalize returns the final state.
  const auto after = engine->Snapshot();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value()->finalized);
}

// Snapshots are published as immutable shared values and cached at the
// base level: no new data → the same object; new data → a new object;
// finalize → one stable final object forever.
TEST(ConsensusEngineTest, SnapshotsAreSharedAndCachedUntilNewData) {
  const Dataset dataset = StreamDataset(43, 60);
  auto engine = MustOpen(FastConfig("MV", dataset));

  std::vector<std::size_t> batch(10);
  std::iota(batch.begin(), batch.end(), std::size_t{0});
  ASSERT_TRUE(engine->Observe({&dataset.answers, batch}).ok());

  const auto first = engine->Snapshot();
  const auto second = engine->Snapshot();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get())
      << "no new data: the cached shared snapshot must be handed back";

  std::vector<std::size_t> more = {10, 11, 12};
  ASSERT_TRUE(engine->Observe({&dataset.answers, more}).ok());
  const auto third = engine->Snapshot();
  ASSERT_TRUE(third.ok());
  EXPECT_NE(third.value().get(), first.value().get())
      << "new data must invalidate the cache";
  // The first snapshot is immutable: still the pre-batch counters.
  EXPECT_EQ(first.value()->answers_seen, 10u);
  EXPECT_EQ(third.value()->answers_seen, 13u);

  const auto final_snapshot = engine->Finalize();
  const auto after = engine->Snapshot();
  ASSERT_TRUE(final_snapshot.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().get(), final_snapshot.value().get());
  EXPECT_EQ(engine->Finalize().value().get(), final_snapshot.value().get());
}

TEST(ConsensusEngineTest, StreamingExperimentScoresEveryBatch) {
  const Dataset dataset = StreamDataset(31);
  auto engine = MustOpen(FastConfig("CPA-SVI", dataset));
  Rng rng(37);
  const BatchPlan plan = MakeArrivalSchedule(dataset.answers, 5, rng);
  const auto run = RunStreamingExperiment(*engine, dataset, plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run.value().steps.size(), plan.num_batches());
  std::size_t previous_answers = 0;
  for (const StreamingStepResult& step : run.value().steps) {
    EXPECT_GT(step.answers_seen, previous_answers);
    previous_answers = step.answers_seen;
    EXPECT_GE(step.metrics.precision, 0.0);
    EXPECT_LE(step.metrics.precision, 1.0);
  }
  EXPECT_EQ(previous_answers, dataset.answers.num_answers());
  EXPECT_GT(run.value().final_result.metrics.precision, 0.3);
  EXPECT_TRUE(engine->finalized());

  // A used session cannot host another experiment.
  EXPECT_EQ(RunStreamingExperiment(*engine, dataset, plan).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ConsensusEngineTest, EngineOneShotMatchesAggregatorExperiment) {
  const Dataset dataset = StreamDataset(41);
  auto engine = MustOpen(FastConfig("MV", dataset));
  const auto by_engine = RunExperiment(*engine, dataset);
  ASSERT_TRUE(by_engine.ok());
  MajorityVote mv;
  const auto by_aggregator = RunExperiment(mv, dataset);
  ASSERT_TRUE(by_aggregator.ok());
  EXPECT_DOUBLE_EQ(by_engine.value().metrics.precision,
                   by_aggregator.value().metrics.precision);
  EXPECT_DOUBLE_EQ(by_engine.value().metrics.recall,
                   by_aggregator.value().metrics.recall);
}

}  // namespace
}  // namespace cpa
