#include "engine/engine_registry.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/majority_vote.h"
#include "engine/offline_engine.h"
#include "simulation/dataset_factory.h"

namespace cpa {
namespace {

Dataset QuickDataset() {
  FactoryOptions options;
  options.scale = 0.05;
  auto dataset = MakePaperDataset(PaperDatasetId::kMovie, options);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).value();
}

TEST(EngineRegistryTest, ProvidesThePaperLineUp) {
  const auto names = EngineRegistry::Global().MethodNames();
  for (const char* name :
       {"MV", "EM", "cBCC", "CPA", "CPA-NoZ", "CPA-NoL", "CPA-SVI"}) {
    EXPECT_TRUE(EngineRegistry::Global().Has(name)) << name;
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end()) << name;
  }
}

TEST(EngineRegistryTest, UnknownNameIsNotFoundAndListsMethods) {
  EngineConfig config;
  config.method = "definitely-not-a-method";
  config.num_labels = 5;
  const auto engine = EngineRegistry::Global().Open(config);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotFound);
  // The error names what *is* registered, so a typo is self-diagnosing.
  EXPECT_NE(engine.status().message().find("definitely-not-a-method"),
            std::string::npos);
  EXPECT_NE(engine.status().message().find("CPA-SVI"), std::string::npos);
  EXPECT_NE(engine.status().message().find("MV"), std::string::npos);
}

TEST(EngineRegistryTest, OpenValidatesTheConfig) {
  EngineConfig config;  // num_labels = 0
  config.method = "MV";
  EXPECT_EQ(EngineRegistry::Global().Open(config).status().code(),
            StatusCode::kInvalidArgument);
  config.method.clear();
  config.num_labels = 5;
  EXPECT_EQ(EngineRegistry::Global().Open(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineRegistryTest, OpenReturnsFreshIndependentSessions) {
  const Dataset dataset = QuickDataset();
  const EngineConfig config = EngineConfig::ForDataset("MV", dataset);
  auto first = EngineRegistry::Global().Open(config);
  auto second = EngineRegistry::Global().Open(config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first.value().get(), second.value().get());

  // Feeding one session leaves the other untouched.
  std::vector<std::size_t> batch = {0, 1, 2};
  ASSERT_TRUE(first.value()->Observe({&dataset.answers, batch}).ok());
  EXPECT_EQ(first.value()->answers_seen(), 3u);
  EXPECT_EQ(second.value()->answers_seen(), 0u);
  ASSERT_TRUE(first.value()->Finalize().ok());
  EXPECT_TRUE(first.value()->finalized());
  EXPECT_FALSE(second.value()->finalized());
}

TEST(EngineRegistryTest, RegisterRejectsDuplicatesAndNulls) {
  EngineRegistry registry;
  auto factory = [](const EngineConfig& config)
      -> Result<std::unique_ptr<ConsensusEngine>> {
    return std::unique_ptr<ConsensusEngine>(std::make_unique<OfflineEngine>(
        "custom", std::make_unique<MajorityVote>(), config.num_labels));
  };
  ASSERT_TRUE(registry.Register("custom", factory).ok());
  EXPECT_EQ(registry.Register("custom", factory).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Register("", factory).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("null", nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineRegistryTest, CustomMethodsOpenLikeBuiltins) {
  EngineRegistry registry;
  ASSERT_TRUE(registry
                  .Register("my-mv",
                            [](const EngineConfig& config)
                                -> Result<std::unique_ptr<ConsensusEngine>> {
                              return std::unique_ptr<ConsensusEngine>(
                                  std::make_unique<OfflineEngine>(
                                      "my-mv",
                                      std::make_unique<MajorityVote>(config.majority),
                                      config.num_labels));
                            })
                  .ok());
  const Dataset dataset = QuickDataset();
  auto engine = registry.Open(EngineConfig::ForDataset("my-mv", dataset));
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.value()->name(), "my-mv");
}

TEST(EngineConfigTest, JsonRoundTripPreservesEverySerializedField) {
  EngineConfig config;
  config.method = "CPA-SVI";
  config.num_items = 321;
  config.num_workers = 45;
  config.num_labels = 17;
  config.num_threads = 3;
  config.cpa.max_communities = 9;
  config.cpa.max_clusters = 123;
  config.cpa.alpha = 1.5;
  config.cpa.epsilon = 0.75;
  config.cpa.lambda0 = 0.2;
  config.cpa.zeta0 = 0.3;
  config.cpa.max_iterations = 41;
  config.cpa.tolerance = 5e-4;
  config.cpa.seed = 20180417;
  config.svi.workers_per_batch = 13;
  config.svi.forgetting_rate = 0.9;
  config.svi.exact_local_phi = false;
  config.svi.reinforcement_rounds = 2;
  config.majority.threshold = 0.6;
  config.majority.fallback_to_top_label = true;
  config.em.max_iterations = 11;
  config.em.tolerance = 1e-3;
  config.em.smoothing = 0.5;
  config.em.threshold = 0.55;
  config.em.use_mislabeling_cost = true;
  config.cbcc.num_communities = 6;
  config.cbcc.max_iterations = 12;
  config.cbcc.tolerance = 2e-4;
  config.cbcc.threshold = 0.45;

  // Full cycle: typed struct → JSON text → parsed document → typed struct.
  const auto parsed = JsonValue::Parse(config.ToJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto round = EngineConfig::FromJson(parsed.value());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  const EngineConfig& r = round.value();

  EXPECT_EQ(r.method, config.method);
  EXPECT_EQ(r.num_items, config.num_items);
  EXPECT_EQ(r.num_workers, config.num_workers);
  EXPECT_EQ(r.num_labels, config.num_labels);
  EXPECT_EQ(r.num_threads, config.num_threads);
  EXPECT_EQ(r.cpa.max_communities, config.cpa.max_communities);
  EXPECT_EQ(r.cpa.max_clusters, config.cpa.max_clusters);
  EXPECT_DOUBLE_EQ(r.cpa.alpha, config.cpa.alpha);
  EXPECT_DOUBLE_EQ(r.cpa.epsilon, config.cpa.epsilon);
  EXPECT_DOUBLE_EQ(r.cpa.lambda0, config.cpa.lambda0);
  EXPECT_DOUBLE_EQ(r.cpa.zeta0, config.cpa.zeta0);
  EXPECT_EQ(r.cpa.max_iterations, config.cpa.max_iterations);
  EXPECT_DOUBLE_EQ(r.cpa.tolerance, config.cpa.tolerance);
  EXPECT_EQ(r.cpa.seed, config.cpa.seed);
  EXPECT_EQ(r.svi.workers_per_batch, config.svi.workers_per_batch);
  EXPECT_DOUBLE_EQ(r.svi.forgetting_rate, config.svi.forgetting_rate);
  EXPECT_EQ(r.svi.exact_local_phi, config.svi.exact_local_phi);
  EXPECT_EQ(r.svi.reinforcement_rounds, config.svi.reinforcement_rounds);
  EXPECT_DOUBLE_EQ(r.majority.threshold, config.majority.threshold);
  EXPECT_EQ(r.majority.fallback_to_top_label, config.majority.fallback_to_top_label);
  EXPECT_EQ(r.em.max_iterations, config.em.max_iterations);
  EXPECT_DOUBLE_EQ(r.em.tolerance, config.em.tolerance);
  EXPECT_DOUBLE_EQ(r.em.smoothing, config.em.smoothing);
  EXPECT_DOUBLE_EQ(r.em.threshold, config.em.threshold);
  EXPECT_EQ(r.em.use_mislabeling_cost, config.em.use_mislabeling_cost);
  EXPECT_EQ(r.cbcc.num_communities, config.cbcc.num_communities);
  EXPECT_EQ(r.cbcc.max_iterations, config.cbcc.max_iterations);
  EXPECT_DOUBLE_EQ(r.cbcc.tolerance, config.cbcc.tolerance);
  EXPECT_DOUBLE_EQ(r.cbcc.threshold, config.cbcc.threshold);
}

TEST(EngineConfigTest, FromJsonAcceptsPartialDocuments) {
  const auto parsed = JsonValue::Parse(R"({"method": "MV", "num_labels": 7})");
  ASSERT_TRUE(parsed.ok());
  const auto config = EngineConfig::FromJson(parsed.value());
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().method, "MV");
  EXPECT_EQ(config.value().num_labels, 7u);
  // Untouched knobs keep their defaults.
  EXPECT_EQ(config.value().cpa.max_iterations, CpaOptions().max_iterations);
  EXPECT_DOUBLE_EQ(config.value().svi.forgetting_rate,
                   SviOptions().forgetting_rate);
}

TEST(EngineConfigTest, FromJsonRejectsWrongKinds) {
  const auto parsed = JsonValue::Parse(R"({"method": 12})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(EngineConfig::FromJson(parsed.value()).status().code(),
            StatusCode::kInvalidArgument);
  const auto negative = JsonValue::Parse(R"({"num_items": -3})");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(EngineConfig::FromJson(negative.value()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EngineConfig::FromJson(JsonValue(3.0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineRegistryTest, SessionsCarryTheRegistryNameTheyWereOpenedUnder) {
  const Dataset dataset = QuickDataset();
  EngineConfig config = EngineConfig::ForDataset("EM", dataset);
  // DawidSkene renames itself "EM+cost" with the cost refinement on; the
  // session must still answer to the name it was opened under.
  config.em.use_mislabeling_cost = true;
  auto engine = EngineRegistry::Global().Open(config);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.value()->name(), "EM");
}

TEST(EngineConfigTest, WithFlagsRejectsNegativeCounts) {
  const Dataset dataset = QuickDataset();
  const EngineConfig base = EngineConfig::ForDataset("MV", dataset);
  const char* argv[] = {"test", "--num-items=-1"};
  const auto flags = Flags::Parse(2, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(base.WithFlags(flags.value()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineConfigTest, WithFlagsOverridesOnlyNamedFields) {
  const Dataset dataset = QuickDataset();
  const EngineConfig base = EngineConfig::ForDataset("CPA-SVI", dataset);

  const char* argv[] = {"test", "--method=EM", "--cpa-iterations=7",
                        "--workers-per-batch=3", "--num-threads=2"};
  const auto flags = Flags::Parse(5, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok()) << flags.status().ToString();
  const auto config = base.WithFlags(flags.value());
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config.value().method, "EM");
  EXPECT_EQ(config.value().cpa.max_iterations, 7u);
  EXPECT_EQ(config.value().svi.workers_per_batch, 3u);
  EXPECT_EQ(config.value().num_threads, 2u);
  // Unnamed fields keep the dataset sizing.
  EXPECT_EQ(config.value().num_items, base.num_items);
  EXPECT_EQ(config.value().num_labels, base.num_labels);
}

}  // namespace
}  // namespace cpa
