#include "engine/checkpoint.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/consensus_engine.h"
#include "engine/cpa_engines.h"
#include "engine/engine_config.h"
#include "engine/engine_registry.h"
#include "eval/experiment.h"
#include "simulation/crowd_simulator.h"

namespace cpa {
namespace {

/// Small simulated stream, same recipe as consensus_engine_test.cc.
Dataset StreamDataset(std::uint64_t seed, std::size_t items = 100) {
  Rng rng(seed);
  TruthConfig truth_config;
  truth_config.num_items = items;
  truth_config.num_labels = 8;
  truth_config.num_clusters = 3;
  truth_config.correlation = 0.8;
  truth_config.mean_labels_per_item = 2.0;
  truth_config.max_labels_per_item = 4;
  auto truth = GenerateGroundTruth(truth_config, rng);
  EXPECT_TRUE(truth.ok());

  PopulationConfig population_config;
  population_config.num_workers = 24;
  population_config.num_labels = 8;
  population_config.mix = PopulationMix::PaperSimulationDefault();
  auto workers = GeneratePopulation(population_config, rng);
  EXPECT_TRUE(workers.ok());

  SimulationConfig sim_config;
  sim_config.answers_per_item = 6.0;
  sim_config.candidate_set_size = 8;
  auto answers = SimulateAnswers(truth.value(), workers.value(), sim_config, rng);
  EXPECT_TRUE(answers.ok());

  Dataset dataset;
  dataset.name = "checkpoint-test";
  dataset.num_labels = 8;
  dataset.answers = std::move(answers).value();
  dataset.ground_truth = std::move(truth.value().labels);
  return dataset;
}

EngineConfig FastConfig(const std::string& method, const Dataset& dataset,
                        std::size_t num_threads = 1) {
  EngineConfig config = EngineConfig::ForDataset(method, dataset);
  config.cpa.max_communities = 5;
  config.cpa.max_clusters = 32;
  config.cpa.max_iterations = 10;
  config.num_threads = num_threads;
  return config;
}

std::unique_ptr<ConsensusEngine> MustOpen(const EngineConfig& config) {
  auto engine = EngineRegistry::Global().Open(config);
  EXPECT_TRUE(engine.ok()) << config.method << ": " << engine.status().ToString();
  return std::move(engine).value();
}

void ExpectSameSnapshot(const ConsensusSnapshot& a, const ConsensusSnapshot& b,
                        const std::string& what) {
  EXPECT_EQ(a.method, b.method) << what;
  EXPECT_EQ(a.batches_seen, b.batches_seen) << what;
  EXPECT_EQ(a.answers_seen, b.answers_seen) << what;
  EXPECT_EQ(a.finalized, b.finalized) << what;
  EXPECT_EQ(a.learning_rate, b.learning_rate) << what;
  EXPECT_EQ(a.fit_stats.iterations, b.fit_stats.iterations) << what;
  ASSERT_EQ(a.predictions.size(), b.predictions.size()) << what;
  for (std::size_t i = 0; i < a.predictions.size(); ++i) {
    EXPECT_EQ(a.predictions[i], b.predictions[i]) << what << " item " << i;
  }
  if (!a.label_scores.empty() || !b.label_scores.empty()) {
    ASSERT_EQ(a.label_scores.rows(), b.label_scores.rows()) << what;
    EXPECT_EQ(a.label_scores.MaxAbsDiff(b.label_scores), 0.0) << what;
  }
}

TEST(CheckpointCodecTest, PrimitivesRoundTrip) {
  CheckpointWriter writer;
  writer.WriteU8(0xAB);
  writer.WriteU16(0xBEEF);
  writer.WriteU32(0xDEADBEEFu);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteBool(true);
  writer.WriteBool(false);
  writer.WriteDouble(-0.17);
  writer.WriteSize(42);
  const std::string embedded_nul("he\0llo", 6);
  writer.WriteString(embedded_nul);
  writer.WriteDoubles(std::vector<double>{1.5, -2.5, 0.0});
  writer.WriteSizes(std::vector<std::size_t>{7, 0, 9});
  writer.WriteBools(std::vector<bool>{true, false, true});
  Matrix matrix(2, 3);
  matrix(0, 0) = 1.0;
  matrix(1, 2) = -4.5;
  writer.WriteMatrix(matrix);
  writer.WriteLabelSet(LabelSet{1, 5, 7});

  CheckpointReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadU8().value(), 0xAB);
  EXPECT_EQ(reader.ReadU16().value(), 0xBEEF);
  EXPECT_EQ(reader.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(reader.ReadBool().value());
  EXPECT_FALSE(reader.ReadBool().value());
  EXPECT_EQ(reader.ReadDouble().value(), -0.17);
  EXPECT_EQ(reader.ReadSize().value(), 42u);
  EXPECT_EQ(reader.ReadString().value(), embedded_nul);
  EXPECT_EQ(reader.ReadDoubles().value(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(reader.ReadSizes().value(), (std::vector<std::size_t>{7, 0, 9}));
  EXPECT_EQ(reader.ReadBools().value(), (std::vector<bool>{true, false, true}));
  const auto read_matrix = reader.ReadMatrix();
  ASSERT_TRUE(read_matrix.ok());
  EXPECT_EQ(read_matrix.value().rows(), 2u);
  EXPECT_EQ(read_matrix.value().cols(), 3u);
  EXPECT_EQ(read_matrix.value().MaxAbsDiff(matrix), 0.0);
  EXPECT_EQ(reader.ReadLabelSet().value(), (LabelSet{1, 5, 7}));
  EXPECT_TRUE(reader.ExpectEnd().ok());
}

TEST(CheckpointCodecTest, ReaderRejectsMalformedInput) {
  // Truncation mid-scalar.
  {
    CheckpointReader reader("\x01\x02");
    EXPECT_FALSE(reader.ReadU32().ok());
  }
  // Booleans must be exactly 0 or 1.
  {
    CheckpointReader reader("\x02");
    EXPECT_FALSE(reader.ReadBool().ok());
  }
  // A count that lies about the remaining bytes must be rejected before
  // any allocation happens.
  {
    CheckpointWriter writer;
    writer.WriteU64(0xFFFFFFFFFFFFull);  // claims ~2^48 doubles follow
    writer.WriteDouble(1.0);
    CheckpointReader reader(writer.bytes());
    EXPECT_FALSE(reader.ReadDoubles().ok());
  }
  {
    CheckpointWriter writer;
    writer.WriteU64(1u << 30);  // matrix rows far beyond the payload
    writer.WriteU64(1u << 30);
    CheckpointReader reader(writer.bytes());
    EXPECT_FALSE(reader.ReadMatrix().ok());
  }
  // Trailing bytes are a layout disagreement, not padding.
  {
    CheckpointWriter writer;
    writer.WriteU8(1);
    writer.WriteU8(2);
    CheckpointReader reader(writer.bytes());
    ASSERT_TRUE(reader.ReadU8().ok());
    EXPECT_FALSE(reader.ExpectEnd().ok());
  }
}

/// Save mid-stream, restore into a fresh engine, continue both to the
/// end: every observable (snapshots, final predictions, re-saved state
/// bytes) must be identical to the uninterrupted run.
void CheckSaveRestoreContinue(const std::string& method,
                              std::size_t num_threads) {
  const std::string what =
      method + " threads=" + std::to_string(num_threads);
  const Dataset dataset = StreamDataset(91);
  const EngineConfig config = FastConfig(method, dataset, num_threads);

  Rng rng(57);
  const BatchPlan plan = MakeArrivalSchedule(dataset.answers, 6, rng);
  const std::size_t cut = plan.num_batches() / 2;

  auto uninterrupted = MustOpen(config);
  auto original = MustOpen(config);
  for (std::size_t b = 0; b < cut; ++b) {
    ASSERT_TRUE(uninterrupted->Observe({&dataset.answers, plan.batches[b]}).ok());
    ASSERT_TRUE(original->Observe({&dataset.answers, plan.batches[b]}).ok());
  }
  // Publish a snapshot before saving so the cached-snapshot path of the
  // blob is exercised too.
  ASSERT_TRUE(uninterrupted->Snapshot().ok());
  ASSERT_TRUE(original->Snapshot().ok());

  const auto state = original->SaveState();
  ASSERT_TRUE(state.ok()) << what << ": " << state.status().ToString();

  auto restored = MustOpen(config);
  const Status restore =
      restored->RestoreState(state.value(), &dataset.answers);
  ASSERT_TRUE(restore.ok()) << what << ": " << restore.ToString();

  // Restore is lossless: saving again reproduces the exact same bytes.
  const auto resaved = restored->SaveState();
  ASSERT_TRUE(resaved.ok()) << what;
  EXPECT_EQ(resaved.value(), state.value())
      << what << ": restored state must re-serialize bit-identically";

  // The restored engine's snapshot equals the uninterrupted engine's.
  const auto mid_expected = uninterrupted->Snapshot();
  const auto mid_restored = restored->Snapshot();
  ASSERT_TRUE(mid_expected.ok());
  ASSERT_TRUE(mid_restored.ok()) << what;
  ExpectSameSnapshot(*mid_expected.value(), *mid_restored.value(),
                     what + " mid-stream");

  // Continue both runs to the end.
  for (std::size_t b = cut; b < plan.num_batches(); ++b) {
    ASSERT_TRUE(uninterrupted->Observe({&dataset.answers, plan.batches[b]}).ok());
    ASSERT_TRUE(restored->Observe({&dataset.answers, plan.batches[b]}).ok());
  }
  const auto final_expected = uninterrupted->Finalize();
  const auto final_restored = restored->Finalize();
  ASSERT_TRUE(final_expected.ok());
  ASSERT_TRUE(final_restored.ok()) << what;
  ExpectSameSnapshot(*final_expected.value(), *final_restored.value(),
                     what + " final");
}

TEST(CheckpointEngineTest, SviSaveRestoreContinueIsBitIdentical) {
  CheckSaveRestoreContinue("CPA-SVI", 1);
  CheckSaveRestoreContinue("CPA-SVI", 3);
}

TEST(CheckpointEngineTest, OfflineSaveRestoreContinueIsBitIdentical) {
  CheckSaveRestoreContinue("MV", 1);
  CheckSaveRestoreContinue("CPA", 2);
}

TEST(CheckpointEngineTest, ArenaAndHeapSchedulerModesRestoreIdentically) {
  const Dataset dataset = StreamDataset(17);
  const EngineConfig config = FastConfig("CPA-SVI", dataset);
  Rng rng(23);
  const BatchPlan plan = MakeArrivalSchedule(dataset.answers, 4, rng);

  auto arena = CpaOnline::Create(config.num_items, config.num_workers,
                                 config.num_labels, config.cpa, config.svi,
                                 nullptr, ScratchArena::Mode::kReuse);
  ASSERT_TRUE(arena.ok());
  for (std::size_t b = 0; b < 2; ++b) {
    ASSERT_TRUE(arena.value().ObserveBatch(dataset.answers, plan.batches[b]).ok());
  }
  CheckpointWriter writer;
  arena.value().SaveState(writer);

  // Restore into a learner running heap-mode scratch buffers: the arena
  // strategy is a runtime choice, invisible to the serialized state.
  auto heap = CpaOnline::Create(config.num_items, config.num_workers,
                                config.num_labels, config.cpa, config.svi,
                                nullptr, ScratchArena::Mode::kHeap);
  ASSERT_TRUE(heap.ok());
  CheckpointReader reader(writer.bytes());
  ASSERT_TRUE(heap.value().RestoreState(reader).ok());
  ASSERT_TRUE(reader.ExpectEnd().ok());

  for (std::size_t b = 2; b < plan.num_batches(); ++b) {
    ASSERT_TRUE(arena.value().ObserveBatch(dataset.answers, plan.batches[b]).ok());
    ASSERT_TRUE(heap.value().ObserveBatch(dataset.answers, plan.batches[b]).ok());
  }
  const auto from_arena = arena.value().Predict(dataset.answers);
  const auto from_heap = heap.value().Predict(dataset.answers);
  ASSERT_TRUE(from_arena.ok());
  ASSERT_TRUE(from_heap.ok());
  ASSERT_EQ(from_arena.value().labels.size(), from_heap.value().labels.size());
  for (std::size_t i = 0; i < from_arena.value().labels.size(); ++i) {
    EXPECT_EQ(from_arena.value().labels[i], from_heap.value().labels[i])
        << "item " << i;
  }
  EXPECT_EQ(
      from_arena.value().scores.MaxAbsDiff(from_heap.value().scores), 0.0);
}

TEST(CheckpointEngineTest, RestoreRejectsCorruptBlobs) {
  const Dataset dataset = StreamDataset(29, 60);
  const EngineConfig config = FastConfig("CPA-SVI", dataset);

  auto engine = MustOpen(config);
  Rng rng(31);
  const BatchPlan plan = MakeArrivalSchedule(dataset.answers, 3, rng);
  ASSERT_TRUE(engine->Observe({&dataset.answers, plan.batches[0]}).ok());
  const auto state = engine->SaveState();
  ASSERT_TRUE(state.ok());
  const std::string& blob = state.value();

  // Wrong magic.
  {
    std::string bad = blob;
    bad[0] ^= 0x5A;
    auto fresh = MustOpen(config);
    EXPECT_FALSE(fresh->RestoreState(bad, &dataset.answers).ok());
  }
  // Wrong version.
  {
    std::string bad = blob;
    bad[4] = '\x7F';
    auto fresh = MustOpen(config);
    EXPECT_FALSE(fresh->RestoreState(bad, &dataset.answers).ok());
  }
  // Engine-name mismatch: an MV engine must refuse a CPA-SVI blob.
  {
    auto mv = MustOpen(FastConfig("MV", dataset));
    EXPECT_FALSE(mv->RestoreState(blob, &dataset.answers).ok());
  }
  // Trailing garbage.
  {
    auto fresh = MustOpen(config);
    EXPECT_FALSE(fresh->RestoreState(blob + "x", &dataset.answers).ok());
  }
  // Every strict prefix must fail cleanly — no crash, no partial state.
  for (std::size_t length = 0; length < blob.size(); ++length) {
    auto fresh = MustOpen(config);
    const Status status = fresh->RestoreState(
        std::string_view(blob).substr(0, length), &dataset.answers);
    EXPECT_FALSE(status.ok()) << "prefix of " << length << " bytes";
    // Failed restores leave the engine fresh and usable.
    EXPECT_EQ(fresh->answers_seen(), 0u) << "prefix of " << length << " bytes";
  }
  // A fresh engine restores the intact blob fine (control).
  {
    auto fresh = MustOpen(config);
    EXPECT_TRUE(fresh->RestoreState(blob, &dataset.answers).ok());
  }
}

TEST(CheckpointEngineTest, RestoreRequiresFreshEngine) {
  const Dataset dataset = StreamDataset(41, 60);
  const EngineConfig config = FastConfig("MV", dataset);
  auto engine = MustOpen(config);
  Rng rng(43);
  const BatchPlan plan = MakeArrivalSchedule(dataset.answers, 3, rng);
  ASSERT_TRUE(engine->Observe({&dataset.answers, plan.batches[0]}).ok());
  const auto state = engine->SaveState();
  ASSERT_TRUE(state.ok());

  // The engine that has already observed data refuses to be overwritten.
  EXPECT_EQ(engine->RestoreState(state.value(), &dataset.answers).code(),
            StatusCode::kFailedPrecondition);

  // A blob saved from a bound engine needs a stream to bind to.
  auto fresh = MustOpen(config);
  EXPECT_EQ(fresh->RestoreState(state.value(), nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckpointEngineTest, FinalizedEngineRoundTrips) {
  const Dataset dataset = StreamDataset(47, 60);
  const EngineConfig config = FastConfig("CPA-SVI", dataset);
  auto engine = MustOpen(config);
  Rng rng(53);
  const BatchPlan plan = MakeArrivalSchedule(dataset.answers, 2, rng);
  for (const auto& batch : plan.batches) {
    ASSERT_TRUE(engine->Observe({&dataset.answers, batch}).ok());
  }
  const auto final_snapshot = engine->Finalize();
  ASSERT_TRUE(final_snapshot.ok());

  const auto state = engine->SaveState();
  ASSERT_TRUE(state.ok());
  auto restored = MustOpen(config);
  ASSERT_TRUE(restored->RestoreState(state.value(), &dataset.answers).ok());
  EXPECT_TRUE(restored->finalized());
  const auto after = restored->Finalize();
  ASSERT_TRUE(after.ok());
  ExpectSameSnapshot(*final_snapshot.value(), *after.value(), "finalized");
  // Further observes stay rejected, exactly like the original.
  EXPECT_EQ(restored->Observe({&dataset.answers, plan.batches[0]}).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cpa
