#include "simulation/worker_profile.h"

#include <map>

#include <gtest/gtest.h>

namespace cpa {
namespace {

TEST(PopulationMixTest, DefaultsValidate) {
  EXPECT_TRUE(PopulationMix::PaperSimulationDefault().Validate().ok());
  EXPECT_TRUE(PopulationMix::EmpiricalZhao().Validate().ok());
  EXPECT_TRUE(PopulationMix::AllReliable().Validate().ok());
}

TEST(PopulationMixTest, PaperDefaultMatchesSection51) {
  const PopulationMix mix = PopulationMix::PaperSimulationDefault();
  EXPECT_DOUBLE_EQ(mix.reliable, 0.43);
  EXPECT_DOUBLE_EQ(mix.sloppy, 0.32);
  EXPECT_DOUBLE_EQ(mix.uniform_spammer + mix.random_spammer, 0.25);
  EXPECT_DOUBLE_EQ(mix.uniform_spammer, mix.random_spammer);
}

TEST(PopulationMixTest, RejectsNegativeAndNonUnitSums) {
  PopulationMix mix;
  mix.reliable = -0.1;
  mix.normal = 1.1;
  EXPECT_FALSE(mix.Validate().ok());
  PopulationMix half;
  half.reliable = 0.5;
  EXPECT_FALSE(half.Validate().ok());
}

TEST(QualityParamsTest, ReliableBeatsSloppyBeatsSpam) {
  const auto reliable = QualityParams::ForType(WorkerType::kReliable);
  const auto sloppy = QualityParams::ForType(WorkerType::kSloppy);
  const auto random_spam = QualityParams::ForType(WorkerType::kRandomSpammer);
  EXPECT_GT(reliable.sensitivity_mean, sloppy.sensitivity_mean);
  EXPECT_GT(sloppy.sensitivity_mean, random_spam.sensitivity_mean);
  EXPECT_GT(reliable.specificity_mean, random_spam.specificity_mean);
}

TEST(WorkerTypeTest, NamesAreStable) {
  EXPECT_EQ(WorkerTypeName(WorkerType::kReliable), "reliable");
  EXPECT_EQ(WorkerTypeName(WorkerType::kNormal), "normal");
  EXPECT_EQ(WorkerTypeName(WorkerType::kSloppy), "sloppy");
  EXPECT_EQ(WorkerTypeName(WorkerType::kUniformSpammer), "uniform-spammer");
  EXPECT_EQ(WorkerTypeName(WorkerType::kRandomSpammer), "random-spammer");
}

TEST(SampleWorkerTypeTest, FollowsMixProportions) {
  Rng rng(101);
  const PopulationMix mix = PopulationMix::PaperSimulationDefault();
  std::map<WorkerType, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[SampleWorkerType(mix, rng)];
  EXPECT_NEAR(counts[WorkerType::kReliable] / static_cast<double>(n), 0.43, 0.02);
  EXPECT_NEAR(counts[WorkerType::kSloppy] / static_cast<double>(n), 0.32, 0.02);
  EXPECT_NEAR(counts[WorkerType::kUniformSpammer] / static_cast<double>(n), 0.125, 0.02);
  EXPECT_EQ(counts[WorkerType::kNormal], 0);
}

PopulationConfig SmallConfig() {
  PopulationConfig config;
  config.num_workers = 60;
  config.num_labels = 12;
  return config;
}

TEST(GenerateWorkerProfileTest, SkillsWithinClampAndSized) {
  Rng rng(5);
  const auto config = SmallConfig();
  for (WorkerType type :
       {WorkerType::kReliable, WorkerType::kSloppy, WorkerType::kRandomSpammer}) {
    const WorkerProfile profile = GenerateWorkerProfile(type, config, rng);
    EXPECT_EQ(profile.sensitivity.size(), config.num_labels);
    EXPECT_EQ(profile.specificity.size(), config.num_labels);
    for (double s : profile.sensitivity) {
      EXPECT_GE(s, 0.02);
      EXPECT_LE(s, 0.98);
    }
    EXPECT_LT(profile.uniform_label, config.num_labels);
    EXPECT_LT(profile.expertise_group, config.num_expertise_groups);
  }
}

TEST(GenerateWorkerProfileTest, ReliableOutskillsSloppyOnAverage) {
  Rng rng(7);
  const auto config = SmallConfig();
  double reliable_sens = 0.0;
  double sloppy_sens = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    reliable_sens +=
        GenerateWorkerProfile(WorkerType::kReliable, config, rng).MeanSensitivity();
    sloppy_sens +=
        GenerateWorkerProfile(WorkerType::kSloppy, config, rng).MeanSensitivity();
  }
  EXPECT_GT(reliable_sens / n, sloppy_sens / n + 0.2);
}

TEST(GenerateWorkerProfileTest, DifficultyLowersHonestSkill) {
  PopulationConfig easy = SmallConfig();
  PopulationConfig hard = SmallConfig();
  hard.difficulty = 0.12;
  double easy_sens = 0.0;
  double hard_sens = 0.0;
  const int n = 300;
  Rng rng_easy(11);
  Rng rng_hard(11);
  for (int i = 0; i < n; ++i) {
    easy_sens +=
        GenerateWorkerProfile(WorkerType::kReliable, easy, rng_easy).MeanSensitivity();
    hard_sens +=
        GenerateWorkerProfile(WorkerType::kReliable, hard, rng_hard).MeanSensitivity();
  }
  EXPECT_GT(easy_sens / n, hard_sens / n + 0.05);
}

TEST(GenerateWorkerProfileTest, ExpertiseGroupBoostsOwnLabels) {
  PopulationConfig config = SmallConfig();
  config.num_expertise_groups = 3;
  config.expertise_boost = 0.2;  // exaggerated for the test
  Rng rng(13);
  double own = 0.0;
  double other = 0.0;
  int own_n = 0;
  int other_n = 0;
  for (int i = 0; i < 200; ++i) {
    const WorkerProfile p = GenerateWorkerProfile(WorkerType::kNormal, config, rng);
    for (LabelId c = 0; c < config.num_labels; ++c) {
      if (LabelExpertiseGroup(c, config.num_expertise_groups) == p.expertise_group) {
        own += p.sensitivity[c];
        ++own_n;
      } else {
        other += p.sensitivity[c];
        ++other_n;
      }
    }
  }
  EXPECT_GT(own / own_n, other / other_n + 0.1);
}

TEST(GeneratePopulationTest, SizeAndDeterminism) {
  Rng rng_a(17);
  Rng rng_b(17);
  const auto config = SmallConfig();
  const auto pop_a = GeneratePopulation(config, rng_a);
  const auto pop_b = GeneratePopulation(config, rng_b);
  ASSERT_TRUE(pop_a.ok());
  ASSERT_TRUE(pop_b.ok());
  ASSERT_EQ(pop_a.value().size(), config.num_workers);
  for (std::size_t u = 0; u < config.num_workers; ++u) {
    EXPECT_EQ(pop_a.value()[u].type, pop_b.value()[u].type);
    EXPECT_EQ(pop_a.value()[u].sensitivity, pop_b.value()[u].sensitivity);
  }
}

TEST(GeneratePopulationTest, RejectsInvalidConfig) {
  Rng rng(19);
  PopulationConfig config = SmallConfig();
  config.num_labels = 0;
  EXPECT_FALSE(GeneratePopulation(config, rng).ok());
  PopulationConfig bad_mix = SmallConfig();
  bad_mix.mix.reliable = 2.0;
  EXPECT_FALSE(GeneratePopulation(bad_mix, rng).ok());
}

TEST(SpammerSpecTest, UniformShareControlsKind) {
  Rng rng(23);
  std::size_t uniform_count = 0;
  for (int i = 0; i < 200; ++i) {
    if (SampleSpammerSpec(1.0, 8, rng).uniform) ++uniform_count;
  }
  EXPECT_EQ(uniform_count, 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(SampleSpammerSpec(0.0, 8, rng).uniform);
  }
}

TEST(SpammerSpecTest, RngStreamIndependentOfCoin) {
  // The fixed label is drawn either way, so downstream draws are identical
  // whichever kind the coin picked (the Fig 4 byte-identity contract).
  Rng rng_uniform(31);
  Rng rng_random(31);
  (void)SampleSpammerSpec(1.0, 8, rng_uniform);
  (void)SampleSpammerSpec(0.0, 8, rng_random);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rng_uniform.NextBounded(1000), rng_random.NextBounded(1000));
  }
}

TEST(SpamAnswerTest, UniformSpecRepeatsFixedLabelWithoutRandomness) {
  SpammerSpec spec;
  spec.uniform = true;
  spec.fixed_label = 5;
  Rng rng(37);
  Rng untouched(37);
  for (int i = 0; i < 8; ++i) {
    const LabelSet answer = SpamAnswer(spec, 8, rng);
    ASSERT_EQ(answer.size(), 1u);
    EXPECT_EQ(answer.labels()[0], 5);
  }
  EXPECT_EQ(rng.NextBounded(1000), untouched.NextBounded(1000));
}

TEST(SpamAnswerTest, RandomSpecDrawsBoundedNonEmptySets) {
  SpammerSpec spec;
  spec.uniform = false;
  spec.spam_set_mean = 2.0;
  Rng rng(41);
  double total_size = 0.0;
  for (int i = 0; i < 500; ++i) {
    const LabelSet answer = SpamAnswer(spec, 8, rng);
    ASSERT_GE(answer.size(), 1u);
    ASSERT_LE(answer.size(), 8u);
    for (LabelId c : answer) EXPECT_LT(c, 8);
    total_size += static_cast<double>(answer.size());
  }
  // Mean size ~2 minus duplicate collapse.
  EXPECT_GT(total_size / 500.0, 1.4);
  EXPECT_LT(total_size / 500.0, 2.3);
}

TEST(LabelExpertiseGroupTest, RoundRobinPartition) {
  EXPECT_EQ(LabelExpertiseGroup(0, 3), 0u);
  EXPECT_EQ(LabelExpertiseGroup(4, 3), 1u);
  EXPECT_EQ(LabelExpertiseGroup(5, 3), 2u);
  EXPECT_EQ(LabelExpertiseGroup(7, 1), 0u);  // single group
  EXPECT_EQ(LabelExpertiseGroup(7, 0), 0u);  // degenerate
}

}  // namespace
}  // namespace cpa
