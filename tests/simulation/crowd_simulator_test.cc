#include "simulation/crowd_simulator.h"

#include <gtest/gtest.h>

namespace cpa {
namespace {

GroundTruth SmallTruth(Rng& rng, std::size_t items = 200) {
  TruthConfig config;
  config.num_items = items;
  config.num_labels = 15;
  config.num_clusters = 3;
  config.correlation = 0.8;
  config.mean_labels_per_item = 3.0;
  config.max_labels_per_item = 5;
  auto result = GenerateGroundTruth(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

std::vector<WorkerProfile> Workers(Rng& rng, const PopulationMix& mix,
                                   std::size_t count = 40) {
  PopulationConfig config;
  config.num_workers = count;
  config.num_labels = 15;
  config.mix = mix;
  auto result = GeneratePopulation(config, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(SimulationConfigTest, Validation) {
  SimulationConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.answers_per_item = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = SimulationConfig();
  config.candidate_set_size = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SimulationConfig();
  config.confusable_fraction = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = SimulationConfig();
  config.spam_set_mean = 0.2;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(BuildCandidateSetTest, ContainsTruthAndReachesTarget) {
  Rng rng(3);
  const GroundTruth truth = SmallTruth(rng);
  SimulationConfig config;
  config.candidate_set_size = 8;
  const LabelSet& item_truth = truth.labels[0];
  const LabelSet candidates = BuildCandidateSet(
      item_truth, truth.cluster_profiles.Row(truth.item_cluster[0]), config, rng);
  EXPECT_GE(candidates.size(), std::max<std::size_t>(8, item_truth.size()) -
                                   (item_truth.size() > 8 ? item_truth.size() : 0));
  for (LabelId c : item_truth) EXPECT_TRUE(candidates.Contains(c));
}

TEST(SimulateOneAnswerTest, UniformSpammerAlwaysFixedLabel) {
  Rng rng(5);
  WorkerProfile spammer;
  spammer.type = WorkerType::kUniformSpammer;
  spammer.uniform_label = 7;
  spammer.sensitivity.assign(15, 0.5);
  spammer.specificity.assign(15, 0.5);
  const LabelSet truth = {1, 2};
  const LabelSet candidates = {1, 2, 3, 7, 9};
  SimulationConfig config;
  for (int i = 0; i < 20; ++i) {
    const LabelSet answer = SimulateOneAnswer(spammer, truth, candidates, config, rng);
    EXPECT_EQ(answer.ToString(), "{7}");
  }
}

TEST(SimulateOneAnswerTest, RandomSpammerAnswersFromCandidates) {
  Rng rng(7);
  WorkerProfile spammer;
  spammer.type = WorkerType::kRandomSpammer;
  spammer.sensitivity.assign(15, 0.5);
  spammer.specificity.assign(15, 0.5);
  const LabelSet truth = {1};
  const LabelSet candidates = {1, 3, 5, 7};
  SimulationConfig config;
  for (int i = 0; i < 50; ++i) {
    const LabelSet answer = SimulateOneAnswer(spammer, truth, candidates, config, rng);
    EXPECT_GE(answer.size(), 1u);
    for (LabelId c : answer) EXPECT_TRUE(candidates.Contains(c));
  }
}

TEST(SimulateOneAnswerTest, PerfectWorkerRecoversTruth) {
  Rng rng(11);
  WorkerProfile perfect;
  perfect.type = WorkerType::kReliable;
  perfect.sensitivity.assign(15, 0.98);
  perfect.specificity.assign(15, 0.98);
  const LabelSet truth = {2, 9};
  const LabelSet candidates = {0, 2, 4, 9, 12};
  SimulationConfig config;
  int exact = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    if (SimulateOneAnswer(perfect, truth, candidates, config, rng) == truth) ++exact;
  }
  // (0.98^2) * (0.98^3) ~ 0.9 of answers should be exactly the truth.
  EXPECT_GT(exact, n * 3 / 4);
}

TEST(SimulateOneAnswerTest, NeverEmptyEvenForHopelessWorker) {
  Rng rng(13);
  WorkerProfile hopeless;
  hopeless.type = WorkerType::kSloppy;
  hopeless.sensitivity.assign(15, 0.02);
  hopeless.specificity.assign(15, 0.98);
  const LabelSet truth = {2};
  const LabelSet candidates = {2, 3};
  SimulationConfig config;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(SimulateOneAnswer(hopeless, truth, candidates, config, rng).empty());
  }
}

TEST(SimulateAnswersTest, EveryItemAnsweredAndRedundancyTracks) {
  Rng rng(17);
  const GroundTruth truth = SmallTruth(rng);
  const auto workers = Workers(rng, PopulationMix::PaperSimulationDefault());
  SimulationConfig config;
  config.answers_per_item = 6.0;
  const auto result = SimulateAnswers(truth, workers, config, rng);
  ASSERT_TRUE(result.ok());
  const AnswerMatrix& matrix = result.value();
  EXPECT_EQ(matrix.num_items(), truth.labels.size());
  EXPECT_EQ(matrix.num_workers(), workers.size());
  for (ItemId i = 0; i < matrix.num_items(); ++i) {
    EXPECT_EQ(matrix.AnswersOfItem(i).size(), 6u);
  }
}

TEST(SimulateAnswersTest, FractionalRedundancyInExpectation) {
  Rng rng(19);
  const GroundTruth truth = SmallTruth(rng, 500);
  const auto workers = Workers(rng, PopulationMix::AllReliable());
  SimulationConfig config;
  config.answers_per_item = 5.5;
  const auto result = SimulateAnswers(truth, workers, config, rng);
  ASSERT_TRUE(result.ok());
  const double mean = static_cast<double>(result.value().num_answers()) / 500.0;
  EXPECT_NEAR(mean, 5.5, 0.15);
}

TEST(SimulateAnswersTest, SkewedAssignmentConcentratesLoad) {
  Rng rng_skew(23);
  Rng rng_flat(23);
  const GroundTruth truth = SmallTruth(rng_skew, 400);
  const GroundTruth truth2 = SmallTruth(rng_flat, 400);
  const auto workers = Workers(rng_skew, PopulationMix::AllReliable(), 80);
  const auto workers2 = Workers(rng_flat, PopulationMix::AllReliable(), 80);

  SimulationConfig skewed;
  skewed.answers_per_item = 5.0;
  skewed.skewed_workers = true;
  SimulationConfig flat = skewed;
  flat.skewed_workers = false;

  const auto skew_result = SimulateAnswers(truth, workers, skewed, rng_skew);
  const auto flat_result = SimulateAnswers(truth2, workers2, flat, rng_flat);
  ASSERT_TRUE(skew_result.ok());
  ASSERT_TRUE(flat_result.ok());

  const auto max_load = [](const AnswerMatrix& m) {
    std::size_t max_count = 0;
    for (WorkerId u = 0; u < m.num_workers(); ++u) {
      max_count = std::max(max_count, m.AnswersOfWorker(u).size());
    }
    return max_count;
  };
  EXPECT_GT(max_load(skew_result.value()), max_load(flat_result.value()));
}

TEST(SimulateAnswersTest, ReliableCrowdIsMoreAccurateThanSpamCrowd) {
  Rng rng(29);
  const GroundTruth truth = SmallTruth(rng, 300);
  const auto good = Workers(rng, PopulationMix::AllReliable());
  PopulationMix all_spam;
  all_spam.random_spammer = 1.0;
  const auto bad = Workers(rng, all_spam);
  SimulationConfig config;
  config.answers_per_item = 4.0;

  const auto good_result = SimulateAnswers(truth, good, config, rng);
  const auto bad_result = SimulateAnswers(truth, bad, config, rng);
  ASSERT_TRUE(good_result.ok());
  ASSERT_TRUE(bad_result.ok());

  const auto mean_jaccard = [&](const AnswerMatrix& m) {
    double total = 0.0;
    for (const Answer& a : m.answers()) total += a.labels.Jaccard(truth.labels[a.item]);
    return total / static_cast<double>(m.num_answers());
  };
  EXPECT_GT(mean_jaccard(good_result.value()), mean_jaccard(bad_result.value()) + 0.25);
}

TEST(SimulateAnswersTest, RejectsEmptyWorkerPool) {
  Rng rng(31);
  const GroundTruth truth = SmallTruth(rng, 10);
  const std::vector<WorkerProfile> none;
  SimulationConfig config;
  EXPECT_FALSE(SimulateAnswers(truth, none, config, rng).ok());
}

TEST(SimulateAnswersTest, DeterministicForSameSeed) {
  Rng rng_a(37);
  Rng rng_b(37);
  const GroundTruth truth_a = SmallTruth(rng_a, 50);
  const GroundTruth truth_b = SmallTruth(rng_b, 50);
  const auto workers_a = Workers(rng_a, PopulationMix::PaperSimulationDefault());
  const auto workers_b = Workers(rng_b, PopulationMix::PaperSimulationDefault());
  SimulationConfig config;
  const auto a = SimulateAnswers(truth_a, workers_a, config, rng_a);
  const auto b = SimulateAnswers(truth_b, workers_b, config, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().num_answers(), b.value().num_answers());
  for (std::size_t i = 0; i < a.value().num_answers(); ++i) {
    EXPECT_EQ(a.value().answer(i).labels, b.value().answer(i).labels);
  }
}

}  // namespace
}  // namespace cpa
