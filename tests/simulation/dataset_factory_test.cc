#include "simulation/dataset_factory.h"

#include <gtest/gtest.h>

#include "data/cooccurrence.h"
#include "data/dataset_stats.h"

namespace cpa {
namespace {

FactoryOptions QuickOptions() {
  FactoryOptions options;
  options.scale = 0.08;  // keep unit tests fast
  return options;
}

TEST(PaperDatasetSpecTest, MatchesTableThree) {
  const auto image = PaperDatasetSpec::For(PaperDatasetId::kImage);
  EXPECT_EQ(image.items, 2000u);
  EXPECT_EQ(image.workers, 416u);
  EXPECT_EQ(image.labels, 81u);
  EXPECT_EQ(image.answers, 22920u);

  const auto topic = PaperDatasetSpec::For(PaperDatasetId::kTopic);
  EXPECT_EQ(topic.items, 2000u);
  EXPECT_EQ(topic.workers, 313u);
  EXPECT_EQ(topic.labels, 49u);
  EXPECT_EQ(topic.answers, 15080u);

  const auto aspect = PaperDatasetSpec::For(PaperDatasetId::kAspect);
  EXPECT_EQ(aspect.items, 3710u);
  EXPECT_EQ(aspect.workers, 482u);
  EXPECT_EQ(aspect.labels, 262u);
  EXPECT_EQ(aspect.answers, 19780u);

  const auto entity = PaperDatasetSpec::For(PaperDatasetId::kEntity);
  EXPECT_EQ(entity.items, 2400u);
  EXPECT_EQ(entity.workers, 517u);
  EXPECT_EQ(entity.labels, 1450u);
  EXPECT_EQ(entity.answers, 15510u);

  const auto movie = PaperDatasetSpec::For(PaperDatasetId::kMovie);
  EXPECT_EQ(movie.items, 500u);
  EXPECT_EQ(movie.workers, 936u);
  EXPECT_EQ(movie.labels, 22u);
  EXPECT_EQ(movie.answers, 14430u);
}

TEST(PaperDatasetSpecTest, CharacteristicsFollowSection51) {
  // Strong correlation in image/topic/entity, little in aspect/movie.
  EXPECT_GT(PaperDatasetSpec::For(PaperDatasetId::kImage).correlation, 0.6);
  EXPECT_GT(PaperDatasetSpec::For(PaperDatasetId::kTopic).correlation, 0.6);
  EXPECT_GT(PaperDatasetSpec::For(PaperDatasetId::kEntity).correlation, 0.6);
  EXPECT_LT(PaperDatasetSpec::For(PaperDatasetId::kAspect).correlation, 0.4);
  EXPECT_LT(PaperDatasetSpec::For(PaperDatasetId::kMovie).correlation, 0.4);
  // Skewed answer distribution in image and movie.
  EXPECT_TRUE(PaperDatasetSpec::For(PaperDatasetId::kImage).skewed_workers);
  EXPECT_TRUE(PaperDatasetSpec::For(PaperDatasetId::kMovie).skewed_workers);
  EXPECT_FALSE(PaperDatasetSpec::For(PaperDatasetId::kAspect).skewed_workers);
  // Text tasks are difficult.
  EXPECT_GT(PaperDatasetSpec::For(PaperDatasetId::kTopic).difficulty, 0.0);
  EXPECT_GT(PaperDatasetSpec::For(PaperDatasetId::kAspect).difficulty, 0.0);
  EXPECT_GT(PaperDatasetSpec::For(PaperDatasetId::kEntity).difficulty, 0.0);
  EXPECT_DOUBLE_EQ(PaperDatasetSpec::For(PaperDatasetId::kImage).difficulty, 0.0);
}

TEST(DatasetFactoryTest, AllFiveDatasetsBuildAndValidate) {
  for (PaperDatasetId id : AllPaperDatasets()) {
    const auto dataset = MakePaperDataset(id, QuickOptions());
    ASSERT_TRUE(dataset.ok()) << PaperDatasetName(id);
    EXPECT_TRUE(dataset.value().Validate().ok());
    EXPECT_EQ(dataset.value().name, PaperDatasetName(id));
    EXPECT_TRUE(dataset.value().has_ground_truth());
    EXPECT_GT(dataset.value().answers.num_answers(), 0u);
  }
}

TEST(DatasetFactoryTest, FullScaleMatchesPublishedCounts) {
  // Build one dataset at paper scale and compare to Table 3 within 2 %.
  FactoryOptions options;
  const auto dataset = MakePaperDataset(PaperDatasetId::kTopic, options);
  ASSERT_TRUE(dataset.ok());
  const DatasetStats stats = ComputeDatasetStats(dataset.value());
  EXPECT_EQ(stats.num_items, 2000u);
  EXPECT_EQ(stats.num_labels, 49u);
  EXPECT_NEAR(static_cast<double>(stats.num_answers), 15080.0, 0.02 * 15080.0);
  EXPECT_LE(stats.num_workers, 313u);
  EXPECT_GE(stats.num_workers, 250u);  // nearly all workers active
}

TEST(DatasetFactoryTest, ScaleShrinksProportionally) {
  FactoryOptions half;
  half.scale = 0.5;
  const auto dataset = MakePaperDataset(PaperDatasetId::kMovie, half);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.value().num_items(), 250u);
  // Redundancy preserved => answers scale with items.
  EXPECT_NEAR(static_cast<double>(dataset.value().answers.num_answers()), 14430 * 0.5,
              14430 * 0.5 * 0.05);
}

TEST(DatasetFactoryTest, DeterministicForSameSeed) {
  const auto a = MakePaperDataset(PaperDatasetId::kImage, QuickOptions());
  const auto b = MakePaperDataset(PaperDatasetId::kImage, QuickOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().answers.num_answers(), b.value().answers.num_answers());
  for (std::size_t i = 0; i < a.value().answers.num_answers(); ++i) {
    EXPECT_EQ(a.value().answers.answer(i).labels, b.value().answers.answer(i).labels);
  }
}

TEST(DatasetFactoryTest, DifferentSeedsDiffer) {
  FactoryOptions other = QuickOptions();
  other.seed = 99;
  const auto a = MakePaperDataset(PaperDatasetId::kImage, QuickOptions());
  const auto b = MakePaperDataset(PaperDatasetId::kImage, other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_difference =
      a.value().answers.num_answers() != b.value().answers.num_answers();
  if (!any_difference) {
    for (std::size_t i = 0; i < a.value().answers.num_answers(); ++i) {
      if (!(a.value().answers.answer(i).labels == b.value().answers.answer(i).labels)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(DatasetFactoryTest, CorrelatedDatasetsShowStrongerCooccurrence) {
  const auto image = MakePaperDataset(PaperDatasetId::kImage, QuickOptions());
  const auto movie = MakePaperDataset(PaperDatasetId::kMovie, QuickOptions());
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(movie.ok());
  const CooccurrenceMatrix image_cooc(image.value().num_labels,
                                      image.value().ground_truth);
  const CooccurrenceMatrix movie_cooc(movie.value().num_labels,
                                      movie.value().ground_truth);
  EXPECT_GT(image_cooc.WeightedMeanNpmi(), movie_cooc.WeightedMeanNpmi());
}

TEST(DatasetFactoryTest, RejectsNonPositiveScale) {
  FactoryOptions bad;
  bad.scale = 0.0;
  EXPECT_FALSE(MakePaperDataset(PaperDatasetId::kImage, bad).ok());
}

TEST(ScalabilityDatasetTest, DimensionsAndRedundancy) {
  const auto dataset = MakeScalabilityDataset(500, 300, 10, 8.0);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.value().num_items(), 500u);
  EXPECT_EQ(dataset.value().num_workers(), 300u);
  EXPECT_EQ(dataset.value().num_labels, 10u);
  EXPECT_NEAR(static_cast<double>(dataset.value().answers.num_answers()), 4000.0,
              200.0);
  EXPECT_TRUE(dataset.value().Validate().ok());
}

TEST(AllPaperDatasetsTest, FiveInTableOrder) {
  const auto all = AllPaperDatasets();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(PaperDatasetName(all[0]), "image");
  EXPECT_EQ(PaperDatasetName(all[4]), "movie");
}

}  // namespace
}  // namespace cpa
