#include "simulation/perturbations.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "simulation/dataset_factory.h"

namespace cpa {
namespace {

Dataset QuickDataset() {
  FactoryOptions options;
  options.scale = 0.05;
  auto result = MakePaperDataset(PaperDatasetId::kImage, options);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(SparsifyTest, KeepsRequestedFraction) {
  Rng rng(3);
  const Dataset dataset = QuickDataset();
  const auto sparse = Sparsify(dataset, 0.5, rng);
  ASSERT_TRUE(sparse.ok());
  EXPECT_NEAR(static_cast<double>(sparse.value().answers.num_answers()),
              0.5 * dataset.answers.num_answers(), 1.0);
  EXPECT_EQ(sparse.value().answers.num_items(), dataset.answers.num_items());
  EXPECT_EQ(sparse.value().answers.num_workers(), dataset.answers.num_workers());
}

TEST(SparsifyTest, BoundaryFractions) {
  Rng rng(5);
  const Dataset dataset = QuickDataset();
  const auto all = Sparsify(dataset, 1.0, rng);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().answers.num_answers(), dataset.answers.num_answers());
  const auto none = Sparsify(dataset, 0.0, rng);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().answers.num_answers(), 0u);
  EXPECT_FALSE(Sparsify(dataset, 1.5, rng).ok());
  EXPECT_FALSE(Sparsify(dataset, -0.1, rng).ok());
}

TEST(SparsifyTest, SubsetOfOriginalAnswers) {
  Rng rng(7);
  const Dataset dataset = QuickDataset();
  const auto sparse = Sparsify(dataset, 0.3, rng);
  ASSERT_TRUE(sparse.ok());
  for (const Answer& a : sparse.value().answers.answers()) {
    const auto original = dataset.answers.GetAnswer(a.item, a.worker);
    ASSERT_TRUE(original.ok());
    EXPECT_EQ(original.value(), a.labels);
  }
}

TEST(InjectSpammersTest, ReachesTargetFraction) {
  Rng rng(11);
  const Dataset dataset = QuickDataset();
  SpammerInjectionOptions options;
  options.spam_answer_fraction = 0.4;
  const auto injected = InjectSpammers(dataset, options, rng);
  ASSERT_TRUE(injected.ok());
  const double spam_answers = static_cast<double>(
      injected.value().answers.num_answers() - dataset.answers.num_answers());
  const double fraction =
      spam_answers / static_cast<double>(injected.value().answers.num_answers());
  EXPECT_NEAR(fraction, 0.4, 0.03);
}

TEST(InjectSpammersTest, OriginalAnswersUntouched) {
  Rng rng(13);
  const Dataset dataset = QuickDataset();
  SpammerInjectionOptions options;
  options.spam_answer_fraction = 0.2;
  const auto injected = InjectSpammers(dataset, options, rng);
  ASSERT_TRUE(injected.ok());
  for (const Answer& a : dataset.answers.answers()) {
    const auto kept = injected.value().answers.GetAnswer(a.item, a.worker);
    ASSERT_TRUE(kept.ok());
    EXPECT_EQ(kept.value(), a.labels);
  }
}

TEST(InjectSpammersTest, NewWorkersOnlyAppend) {
  Rng rng(17);
  const Dataset dataset = QuickDataset();
  SpammerInjectionOptions options;
  options.spam_answer_fraction = 0.2;
  const auto injected = InjectSpammers(dataset, options, rng);
  ASSERT_TRUE(injected.ok());
  EXPECT_GT(injected.value().answers.num_workers(), dataset.answers.num_workers());
  // All injected answers belong to new workers.
  for (const Answer& a : injected.value().answers.answers()) {
    if (a.worker < dataset.answers.num_workers()) {
      EXPECT_TRUE(dataset.answers.HasAnswer(a.item, a.worker));
    } else {
      EXPECT_FALSE(dataset.answers.HasAnswer(a.item, a.worker));
    }
  }
}

TEST(InjectSpammersTest, ZeroFractionIsIdentity) {
  Rng rng(19);
  const Dataset dataset = QuickDataset();
  SpammerInjectionOptions options;
  options.spam_answer_fraction = 0.0;
  const auto injected = InjectSpammers(dataset, options, rng);
  ASSERT_TRUE(injected.ok());
  EXPECT_EQ(injected.value().answers.num_answers(), dataset.answers.num_answers());
}

TEST(InjectSpammersTest, RejectsInvalidOptions) {
  Rng rng(23);
  const Dataset dataset = QuickDataset();
  SpammerInjectionOptions options;
  options.spam_answer_fraction = 1.0;
  EXPECT_FALSE(InjectSpammers(dataset, options, rng).ok());
  options.spam_answer_fraction = 0.2;
  options.answers_per_spammer = 0;
  EXPECT_FALSE(InjectSpammers(dataset, options, rng).ok());
}

TEST(InjectLabelDependenciesTest, AddsOnlyMissingTrueLabels) {
  Rng rng(29);
  const Dataset dataset = QuickDataset();
  const auto enriched = InjectLabelDependencies(dataset, 0.3, rng);
  ASSERT_TRUE(enriched.ok());
  EXPECT_EQ(enriched.value().answers.num_answers(), dataset.answers.num_answers());
  std::size_t added = 0;
  const auto original = dataset.answers.answers();
  const auto updated = enriched.value().answers.answers();
  for (std::size_t i = 0; i < original.size(); ++i) {
    const LabelSet extra = updated[i].labels.Difference(original[i].labels);
    added += extra.size();
    for (LabelId c : extra) {
      EXPECT_TRUE(dataset.ground_truth[original[i].item].Contains(c));
    }
    // Nothing removed.
    EXPECT_TRUE(original[i].labels.Difference(updated[i].labels).empty());
  }
  EXPECT_GT(added, 0u);
}

TEST(InjectLabelDependenciesTest, FractionScalesAdditions) {
  Rng rng_small(31);
  Rng rng_large(31);
  const Dataset dataset = QuickDataset();
  const auto small = InjectLabelDependencies(dataset, 0.1, rng_small);
  const auto large = InjectLabelDependencies(dataset, 0.3, rng_large);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  const auto count_labels = [](const Dataset& d) {
    return d.answers.TotalLabelAssignments();
  };
  EXPECT_GT(count_labels(large.value()), count_labels(small.value()));
}

TEST(InjectLabelDependenciesTest, RequiresGroundTruth) {
  Rng rng(37);
  Dataset dataset = QuickDataset();
  dataset.ground_truth.clear();
  EXPECT_EQ(InjectLabelDependencies(dataset, 0.2, rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(InjectLabelDependenciesTest, RejectsBadFraction) {
  Rng rng(41);
  const Dataset dataset = QuickDataset();
  EXPECT_FALSE(InjectLabelDependencies(dataset, -0.1, rng).ok());
  EXPECT_FALSE(InjectLabelDependencies(dataset, 1.0001, rng).ok());
}

TEST(BatchPlanTest, PrefixConcatenatesInOrder) {
  BatchPlan plan;
  plan.batches = {{1, 2}, {3}, {4, 5}};
  EXPECT_EQ(plan.TotalAnswers(), 5u);
  EXPECT_EQ(plan.Prefix(0).size(), 0u);
  EXPECT_EQ(plan.Prefix(2), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(plan.Prefix(99).size(), 5u);
}

TEST(MakeWorkerBatchesTest, PartitionsAllAnswersByWorker) {
  Rng rng(43);
  const Dataset dataset = QuickDataset();
  const BatchPlan plan = MakeWorkerBatches(dataset.answers, 5, rng);
  EXPECT_EQ(plan.TotalAnswers(), dataset.answers.num_answers());
  // Each batch contains answers of at most 5 distinct workers, and no
  // worker spans two batches.
  std::set<WorkerId> seen;
  for (const auto& batch : plan.batches) {
    std::set<WorkerId> batch_workers;
    for (std::size_t index : batch) {
      batch_workers.insert(dataset.answers.answer(index).worker);
    }
    EXPECT_LE(batch_workers.size(), 5u);
    for (WorkerId u : batch_workers) {
      EXPECT_EQ(seen.count(u), 0u) << "worker " << u << " in two batches";
      seen.insert(u);
    }
  }
}

TEST(MakeArrivalScheduleTest, NearEqualSplitCoveringEverything) {
  Rng rng(47);
  const Dataset dataset = QuickDataset();
  const BatchPlan plan = MakeArrivalSchedule(dataset.answers, 10, rng);
  EXPECT_EQ(plan.num_batches(), 10u);
  EXPECT_EQ(plan.TotalAnswers(), dataset.answers.num_answers());
  const std::size_t expected = dataset.answers.num_answers() / 10;
  for (const auto& batch : plan.batches) {
    EXPECT_NEAR(static_cast<double>(batch.size()), static_cast<double>(expected), 2.0);
  }
  // All indices distinct.
  std::set<std::size_t> all;
  for (const auto& batch : plan.batches) all.insert(batch.begin(), batch.end());
  EXPECT_EQ(all.size(), dataset.answers.num_answers());
}

}  // namespace
}  // namespace cpa
