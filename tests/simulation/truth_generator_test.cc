#include "simulation/truth_generator.h"

#include <gtest/gtest.h>

#include "data/cooccurrence.h"

namespace cpa {
namespace {

TruthConfig SmallConfig() {
  TruthConfig config;
  config.num_items = 400;
  config.num_labels = 20;
  config.num_clusters = 4;
  config.correlation = 0.8;
  config.mean_labels_per_item = 3.0;
  config.max_labels_per_item = 6;
  return config;
}

TEST(TruthConfigTest, ValidatesBounds) {
  EXPECT_TRUE(SmallConfig().Validate().ok());
  TruthConfig bad = SmallConfig();
  bad.num_items = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallConfig();
  bad.correlation = 1.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallConfig();
  bad.mean_labels_per_item = 0.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallConfig();
  bad.max_labels_per_item = 99;  // > num_labels
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallConfig();
  bad.core_mass = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(GenerateGroundTruthTest, ShapesAndRanges) {
  Rng rng(3);
  const auto result = GenerateGroundTruth(SmallConfig(), rng);
  ASSERT_TRUE(result.ok());
  const GroundTruth& truth = result.value();
  EXPECT_EQ(truth.labels.size(), 400u);
  EXPECT_EQ(truth.item_cluster.size(), 400u);
  EXPECT_EQ(truth.num_clusters(), 4u);
  EXPECT_EQ(truth.num_labels(), 20u);
  for (std::size_t i = 0; i < truth.labels.size(); ++i) {
    EXPECT_GE(truth.labels[i].size(), 1u);
    EXPECT_LE(truth.labels[i].size(), 6u);
    EXPECT_LT(truth.item_cluster[i], 4u);
  }
}

TEST(GenerateGroundTruthTest, ProfilesAreDistributions) {
  Rng rng(5);
  const auto result = GenerateGroundTruth(SmallConfig(), rng);
  ASSERT_TRUE(result.ok());
  const GroundTruth& truth = result.value();
  for (std::size_t k = 0; k < truth.num_clusters(); ++k) {
    EXPECT_NEAR(Sum(truth.cluster_profiles.Row(k)), 1.0, 1e-9);
    for (double p : truth.cluster_profiles.Row(k)) EXPECT_GE(p, 0.0);
  }
}

TEST(GenerateGroundTruthTest, MeanSetSizeTracksConfig) {
  Rng rng(7);
  TruthConfig config = SmallConfig();
  config.num_items = 3000;
  const auto result = GenerateGroundTruth(config, rng);
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (const LabelSet& set : result.value().labels) total += set.size();
  // 1 + Poisson(2) clamped to [1, 6]: mean slightly below 3.
  EXPECT_NEAR(total / 3000.0, 2.85, 0.25);
}

TEST(GenerateGroundTruthTest, CorrelationKnobControlsCooccurrence) {
  TruthConfig correlated = SmallConfig();
  correlated.num_items = 2000;
  correlated.correlation = 0.95;
  TruthConfig independent = correlated;
  independent.correlation = 0.0;

  Rng rng_a(11);
  Rng rng_b(11);
  const auto strong = GenerateGroundTruth(correlated, rng_a);
  const auto weak = GenerateGroundTruth(independent, rng_b);
  ASSERT_TRUE(strong.ok());
  ASSERT_TRUE(weak.ok());

  const CooccurrenceMatrix strong_cooc(20, strong.value().labels);
  const CooccurrenceMatrix weak_cooc(20, weak.value().labels);
  EXPECT_GT(strong_cooc.WeightedMeanNpmi(), weak_cooc.WeightedMeanNpmi() + 0.05);
  EXPECT_NEAR(weak_cooc.WeightedMeanNpmi(), 0.0, 0.08);
}

TEST(GenerateGroundTruthTest, HighCorrelationItemsShareClusterLabels) {
  TruthConfig config = SmallConfig();
  config.num_items = 1000;
  config.correlation = 1.0;
  config.core_mass = 0.95;
  Rng rng(13);
  const auto result = GenerateGroundTruth(config, rng);
  ASSERT_TRUE(result.ok());
  const GroundTruth& truth = result.value();
  // Items in the same cluster should overlap far more than items in
  // different clusters.
  double same = 0.0;
  double diff = 0.0;
  std::size_t same_n = 0;
  std::size_t diff_n = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t j = i + 1; j < 300; ++j) {
      const double jac = truth.labels[i].Jaccard(truth.labels[j]);
      if (truth.item_cluster[i] == truth.item_cluster[j]) {
        same += jac;
        ++same_n;
      } else {
        diff += jac;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 0u);
  ASSERT_GT(diff_n, 0u);
  EXPECT_GT(same / same_n, diff / diff_n + 0.1);
}

TEST(GenerateGroundTruthTest, DeterministicForSameSeed) {
  Rng rng_a(17);
  Rng rng_b(17);
  const auto a = GenerateGroundTruth(SmallConfig(), rng_a);
  const auto b = GenerateGroundTruth(SmallConfig(), rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a.value().labels.size(); ++i) {
    EXPECT_EQ(a.value().labels[i], b.value().labels[i]);
  }
}

TEST(SampleLabelSetTest, ExactSizeAndDistinct) {
  Rng rng(19);
  const std::vector<double> profile = {0.5, 0.2, 0.1, 0.1, 0.05, 0.05};
  for (std::size_t size = 1; size <= 6; ++size) {
    const LabelSet set = SampleLabelSet(profile, size, rng);
    EXPECT_EQ(set.size(), size);
  }
}

TEST(SampleLabelSetTest, SizeCappedByUniverse) {
  Rng rng(23);
  const std::vector<double> profile = {0.6, 0.4};
  EXPECT_EQ(SampleLabelSet(profile, 10, rng).size(), 2u);
}

TEST(SampleLabelSetTest, FollowsProfileWeights) {
  Rng rng(29);
  const std::vector<double> profile = {0.85, 0.05, 0.05, 0.05};
  int first = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (SampleLabelSet(profile, 1, rng).Contains(0)) ++first;
  }
  EXPECT_NEAR(first / static_cast<double>(n), 0.85, 0.04);
}

TEST(SampleLabelSetTest, DegenerateProfileStillFills) {
  Rng rng(31);
  // All mass on one label; requesting 3 labels must still produce 3 via the
  // deterministic fallback.
  const std::vector<double> profile = {1.0, 0.0, 0.0, 0.0};
  const LabelSet set = SampleLabelSet(profile, 3, rng);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.Contains(0));
}

}  // namespace
}  // namespace cpa
