#include "simulation/adversary.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace cpa {
namespace {

AdversaryConfig SmallConfig(std::uint64_t seed = 99) {
  AdversaryConfig config;
  config.seed = seed;
  config.num_items = 80;
  config.num_workers = 30;
  config.num_labels = 10;
  config.answers_per_item = 5.0;
  config.num_batches = 6;
  return config;
}

AdversarialStream MustGenerate(const AdversaryConfig& config,
                               Executor* executor = nullptr) {
  auto stream = GenerateAdversarialStream(config, executor);
  EXPECT_TRUE(stream.ok()) << stream.status().ToString();
  return std::move(stream).value();
}

/// Structural equality over everything a consumer can observe: the answer
/// stream (order included), the batch plan, and the adversarial metadata.
void ExpectStreamsIdentical(const AdversarialStream& a,
                            const AdversarialStream& b) {
  const auto answers_a = a.dataset.answers.answers();
  const auto answers_b = b.dataset.answers.answers();
  ASSERT_EQ(answers_a.size(), answers_b.size());
  for (std::size_t i = 0; i < answers_a.size(); ++i) {
    EXPECT_EQ(answers_a[i].item, answers_b[i].item) << "answer " << i;
    EXPECT_EQ(answers_a[i].worker, answers_b[i].worker) << "answer " << i;
    ASSERT_EQ(answers_a[i].labels, answers_b[i].labels) << "answer " << i;
  }
  ASSERT_EQ(a.dataset.ground_truth.size(), b.dataset.ground_truth.size());
  for (std::size_t i = 0; i < a.dataset.ground_truth.size(); ++i) {
    ASSERT_EQ(a.dataset.ground_truth[i], b.dataset.ground_truth[i]);
  }
  ASSERT_EQ(a.plan.batches, b.plan.batches);
  ASSERT_EQ(a.strategies, b.strategies);
  ASSERT_EQ(a.clique_of, b.clique_of);
  ASSERT_EQ(a.item_difficulty, b.item_difficulty);
}

TEST(AdversaryDeterminismTest, ThreadCountInvariant) {
  AdversaryConfig config = SmallConfig();
  config.strategies.honest = 0.4;
  config.strategies.uniform_spammer = 0.1;
  config.strategies.sticky_spammer = 0.1;
  config.strategies.random_spammer = 0.1;
  config.strategies.colluder = 0.2;
  config.strategies.sleeper = 0.1;
  config.difficulty_tail_shape = 1.5;

  const AdversarialStream serial = MustGenerate(config, nullptr);
  ThreadPool pool2(2);
  ThreadPool pool3(3);
  const AdversarialStream two = MustGenerate(config, &pool2);
  const AdversarialStream three = MustGenerate(config, &pool3);
  ExpectStreamsIdentical(serial, two);
  ExpectStreamsIdentical(serial, three);
}

TEST(AdversaryDeterminismTest, SameSeedSameStream) {
  const AdversarialStream a = MustGenerate(SmallConfig(7));
  const AdversarialStream b = MustGenerate(SmallConfig(7));
  ExpectStreamsIdentical(a, b);
}

TEST(AdversaryDeterminismTest, DifferentSeedsDiffer) {
  const AdversarialStream a = MustGenerate(SmallConfig(7));
  const AdversarialStream b = MustGenerate(SmallConfig(8));
  const auto answers_a = a.dataset.answers.answers();
  const auto answers_b = b.dataset.answers.answers();
  bool differ = answers_a.size() != answers_b.size();
  for (std::size_t i = 0; !differ && i < answers_a.size(); ++i) {
    differ = answers_a[i].item != answers_b[i].item ||
             answers_a[i].worker != answers_b[i].worker ||
             !(answers_a[i].labels == answers_b[i].labels);
  }
  EXPECT_TRUE(differ);
}

TEST(AdversaryStreamTest, PlanCoversEveryAnswerExactlyOnce) {
  const AdversarialStream stream = MustGenerate(SmallConfig());
  std::vector<std::size_t> seen;
  for (const auto& batch : stream.plan.batches) {
    EXPECT_FALSE(batch.empty());
    seen.insert(seen.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(seen.size(), stream.dataset.answers.num_answers());
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(AdversaryStreamTest, HonestOnlyStreamHasZeroAdversarialShare) {
  const AdversarialStream stream = MustGenerate(SmallConfig());
  EXPECT_EQ(stream.AdversarialShare(), 0.0);
  for (WorkerStrategy s : stream.strategies) {
    EXPECT_EQ(s, WorkerStrategy::kHonest);
  }
  for (std::size_t clique : stream.clique_of) {
    EXPECT_EQ(clique, AdversarialStream::kNoClique);
  }
}

TEST(AdversaryStrategyTest, UniformSpammerRepeatsOneLabel) {
  AdversaryConfig config = SmallConfig();
  config.strategies.honest = 0.0;
  config.strategies.uniform_spammer = 1.0;
  const AdversarialStream stream = MustGenerate(config);
  EXPECT_EQ(stream.AdversarialShare(), 1.0);
  std::vector<std::optional<LabelSet>> first(config.num_workers);
  for (const Answer& a : stream.dataset.answers.answers()) {
    EXPECT_EQ(a.labels.size(), 1u);
    if (!first[a.worker].has_value()) {
      first[a.worker] = a.labels;
    } else {
      EXPECT_EQ(a.labels, *first[a.worker]);
    }
  }
}

TEST(AdversaryStrategyTest, StickySpammerPastesOneSet) {
  AdversaryConfig config = SmallConfig();
  config.strategies.honest = 0.0;
  config.strategies.sticky_spammer = 1.0;
  const AdversarialStream stream = MustGenerate(config);
  std::vector<std::optional<LabelSet>> first(config.num_workers);
  std::set<std::vector<LabelId>> distinct_sets;
  for (const Answer& a : stream.dataset.answers.answers()) {
    EXPECT_GE(a.labels.size(), 2u);
    distinct_sets.insert(
        std::vector<LabelId>(a.labels.begin(), a.labels.end()));
    if (!first[a.worker].has_value()) {
      first[a.worker] = a.labels;
    } else {
      EXPECT_EQ(a.labels, *first[a.worker]);
    }
  }
  // Different sticky spammers paste different sets.
  EXPECT_GT(distinct_sets.size(), 1u);
}

TEST(AdversaryStrategyTest, PerfectFidelityColludersAgreeWithinClique) {
  AdversaryConfig config = SmallConfig();
  config.strategies.honest = 0.0;
  config.strategies.colluder = 1.0;
  config.num_cliques = 2;
  config.collusion_fidelity = 1.0;
  const AdversarialStream stream = MustGenerate(config);
  for (std::size_t clique : stream.clique_of) {
    EXPECT_LT(clique, config.num_cliques);
  }
  // Per (item, clique) every member's answer must be the ringleader's.
  std::vector<std::vector<std::optional<LabelSet>>> consensus(
      config.num_items,
      std::vector<std::optional<LabelSet>>(config.num_cliques));
  for (const Answer& a : stream.dataset.answers.answers()) {
    auto& slot = consensus[a.item][stream.clique_of[a.worker]];
    if (!slot.has_value()) {
      slot = a.labels;
    } else {
      EXPECT_EQ(a.labels, *slot) << "item " << a.item;
    }
  }
}

TEST(AdversaryStrategyTest, SleeperDriftDegradesLateStream) {
  AdversaryConfig dormant = SmallConfig();
  dormant.strategies.honest = 0.0;
  dormant.strategies.sleeper = 1.0;
  dormant.sleeper_activation = 1.0;  // never activates: honest throughout
  dormant.sleeper_ramp = 0.25;
  AdversaryConfig active = dormant;
  active.sleeper_activation = 0.0;  // spamming from the very start
  active.sleeper_ramp = 0.05;

  const auto truth_overlap = [](const AdversarialStream& stream) {
    std::size_t overlapping = 0;
    for (const Answer& a : stream.dataset.answers.answers()) {
      if (a.labels.IntersectionSize(stream.dataset.ground_truth[a.item]) > 0) {
        ++overlapping;
      }
    }
    return static_cast<double>(overlapping) /
           static_cast<double>(stream.dataset.answers.num_answers());
  };
  const double dormant_overlap = truth_overlap(MustGenerate(dormant));
  const double active_overlap = truth_overlap(MustGenerate(active));
  EXPECT_GT(dormant_overlap, active_overlap + 0.1);
}

TEST(AdversaryStreamTest, HeavyTailDifficultyIsBoundedAndPresent) {
  AdversaryConfig config = SmallConfig();
  config.difficulty_tail_shape = 1.2;
  config.difficulty_scale = 0.08;
  config.difficulty_cap = 0.4;
  const AdversarialStream stream = MustGenerate(config);
  double max_difficulty = 0.0;
  for (double d : stream.item_difficulty) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, config.difficulty_cap);
    max_difficulty = std::max(max_difficulty, d);
  }
  EXPECT_GT(max_difficulty, 0.0);

  AdversaryConfig flat = SmallConfig();
  const AdversarialStream flat_stream = MustGenerate(flat);
  for (double d : flat_stream.item_difficulty) EXPECT_EQ(d, 0.0);
}

TEST(AdversaryStreamTest, BurstyArrivalSpikesBatchSizes) {
  // 9 windows and 3 bursts put each burst centre mid-window ((k+0.5)/3
  // falls inside, not on, a k/9 boundary), so a burst lands in one batch.
  AdversaryConfig uniform = SmallConfig();
  uniform.num_batches = 9;
  AdversaryConfig bursty = uniform;
  bursty.arrival = ArrivalPattern::kBursty;
  bursty.num_bursts = 3;
  bursty.burst_concentration = 12.0;

  const auto max_batch = [](const AdversarialStream& stream) {
    std::size_t largest = 0;
    for (const auto& batch : stream.plan.batches) {
      largest = std::max(largest, batch.size());
    }
    return largest;
  };
  const AdversarialStream uniform_stream = MustGenerate(uniform);
  const AdversarialStream bursty_stream = MustGenerate(bursty);
  // Bursts concentrate the same total into fewer, larger windows.
  EXPECT_GT(max_batch(bursty_stream), 2 * max_batch(uniform_stream));
}

TEST(AdversaryConfigTest, ValidationRejectsBadConfigs) {
  {
    AdversaryConfig config = SmallConfig();
    config.num_items = 0;
    EXPECT_FALSE(GenerateAdversarialStream(config).ok());
  }
  {
    AdversaryConfig config = SmallConfig();
    config.strategies.honest = 0.5;  // sums to 0.5
    EXPECT_FALSE(GenerateAdversarialStream(config).ok());
  }
  {
    AdversaryConfig config = SmallConfig();
    config.strategies.honest = 0.6;
    config.strategies.colluder = 0.4;
    config.num_cliques = 0;
    EXPECT_FALSE(GenerateAdversarialStream(config).ok());
  }
  {
    AdversaryConfig config = SmallConfig();
    config.honest_mix.reliable = 0.5;
    config.honest_mix.normal = 0.0;
    config.honest_mix.sloppy = 0.0;
    config.honest_mix.uniform_spammer = 0.5;  // spammers belong in strategies
    config.honest_mix.random_spammer = 0.0;
    EXPECT_FALSE(GenerateAdversarialStream(config).ok());
  }
  {
    AdversaryConfig config = SmallConfig();
    config.arrival = ArrivalPattern::kBursty;
    config.num_bursts = 0;
    EXPECT_FALSE(GenerateAdversarialStream(config).ok());
  }
}

TEST(ScenarioMatrixTest, StandardMatrixIsValidAndGenerates) {
  const auto matrix = StandardScenarioMatrix(/*seed=*/42, /*scale=*/0.15);
  ASSERT_GE(matrix.size(), 5u);
  std::set<std::string> names;
  bool has_degenerate = false;
  for (const auto& scenario : matrix) {
    EXPECT_TRUE(names.insert(scenario.name).second)
        << "duplicate scenario " << scenario.name;
    EXPECT_FALSE(scenario.description.empty());
    const Status valid = scenario.config.Validate();
    EXPECT_TRUE(valid.ok()) << scenario.name << ": " << valid.ToString();
    const auto stream = GenerateAdversarialStream(scenario.config);
    ASSERT_TRUE(stream.ok()) << scenario.name;
    EXPECT_GT(stream.value().dataset.answers.num_answers(), 0u);
    EXPECT_TRUE(stream.value().dataset.Validate().ok()) << scenario.name;
    has_degenerate = has_degenerate || scenario.degenerate;
  }
  EXPECT_TRUE(has_degenerate);
}

TEST(ScenarioMatrixTest, ScaleControlsStreamSize) {
  const auto small = StandardScenarioMatrix(42, 0.15);
  const auto large = StandardScenarioMatrix(42, 1.0);
  ASSERT_EQ(small.size(), large.size());
  EXPECT_LT(small[0].config.num_items, large[0].config.num_items);
  EXPECT_LT(small[0].config.num_workers, large[0].config.num_workers);
}

}  // namespace
}  // namespace cpa
