#include "data/answer_matrix.h"

#include <vector>

#include <gtest/gtest.h>

namespace cpa {
namespace {

AnswerMatrix SmallMatrix() {
  AnswerMatrix m(3, 2);
  EXPECT_TRUE(m.Add(0, 0, LabelSet{1, 2}).ok());
  EXPECT_TRUE(m.Add(0, 1, LabelSet{2}).ok());
  EXPECT_TRUE(m.Add(2, 0, LabelSet{0}).ok());
  return m;
}

TEST(AnswerMatrixTest, AddAndCount) {
  const AnswerMatrix m = SmallMatrix();
  EXPECT_EQ(m.num_answers(), 3u);
  EXPECT_EQ(m.num_items(), 3u);
  EXPECT_EQ(m.num_workers(), 2u);
}

TEST(AnswerMatrixTest, RejectsOutOfRangeIds) {
  AnswerMatrix m(2, 2);
  EXPECT_EQ(m.Add(2, 0, LabelSet{1}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(m.Add(0, 2, LabelSet{1}).code(), StatusCode::kOutOfRange);
}

TEST(AnswerMatrixTest, RejectsEmptyAnswer) {
  AnswerMatrix m(2, 2);
  EXPECT_EQ(m.Add(0, 0, LabelSet{}).code(), StatusCode::kInvalidArgument);
}

TEST(AnswerMatrixTest, RejectsDuplicateCell) {
  AnswerMatrix m(2, 2);
  ASSERT_TRUE(m.Add(0, 0, LabelSet{1}).ok());
  EXPECT_EQ(m.Add(0, 0, LabelSet{0}).code(), StatusCode::kFailedPrecondition);
}

TEST(AnswerMatrixTest, ByItemIndex) {
  const AnswerMatrix m = SmallMatrix();
  const auto item0 = m.AnswersOfItem(0);
  ASSERT_EQ(item0.size(), 2u);
  EXPECT_EQ(m.answer(item0[0]).worker, 0u);
  EXPECT_EQ(m.answer(item0[1]).worker, 1u);
  EXPECT_TRUE(m.AnswersOfItem(1).empty());
  EXPECT_TRUE(m.AnswersOfItem(99).empty());  // out of range -> empty view
}

TEST(AnswerMatrixTest, ByWorkerIndex) {
  const AnswerMatrix m = SmallMatrix();
  const auto worker0 = m.AnswersOfWorker(0);
  ASSERT_EQ(worker0.size(), 2u);
  EXPECT_EQ(m.answer(worker0[0]).item, 0u);
  EXPECT_EQ(m.answer(worker0[1]).item, 2u);
  EXPECT_EQ(m.AnswersOfWorker(1).size(), 1u);
}

TEST(AnswerMatrixTest, HasAndGetAnswer) {
  const AnswerMatrix m = SmallMatrix();
  EXPECT_TRUE(m.HasAnswer(0, 1));
  EXPECT_FALSE(m.HasAnswer(1, 0));
  const auto found = m.GetAnswer(0, 0);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().ToString(), "{1,2}");
  EXPECT_EQ(m.GetAnswer(1, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(m.GetAnswer(9, 0).status().code(), StatusCode::kOutOfRange);
}

TEST(AnswerMatrixTest, SparsityAndLabelTotals) {
  const AnswerMatrix m = SmallMatrix();
  EXPECT_DOUBLE_EQ(m.Sparsity(), 1.0 - 3.0 / 6.0);
  EXPECT_EQ(m.TotalLabelAssignments(), 4u);  // 2 + 1 + 1
}

TEST(AnswerMatrixTest, EmptyMatrixSparsityIsOne) {
  const AnswerMatrix empty;
  EXPECT_DOUBLE_EQ(empty.Sparsity(), 1.0);
  EXPECT_EQ(empty.num_answers(), 0u);
}

TEST(AnswerMatrixTest, SubsetKeepsSelectedAnswersAndDimensions) {
  const AnswerMatrix m = SmallMatrix();
  const std::vector<std::size_t> keep = {0, 2};
  const AnswerMatrix subset = m.Subset(keep);
  EXPECT_EQ(subset.num_answers(), 2u);
  EXPECT_EQ(subset.num_items(), m.num_items());
  EXPECT_EQ(subset.num_workers(), m.num_workers());
  EXPECT_TRUE(subset.HasAnswer(0, 0));
  EXPECT_FALSE(subset.HasAnswer(0, 1));
  EXPECT_TRUE(subset.HasAnswer(2, 0));
}

TEST(AnswerMatrixTest, SubsetIgnoresInvalidIndices) {
  const AnswerMatrix m = SmallMatrix();
  const std::vector<std::size_t> keep = {0, 999};
  EXPECT_EQ(m.Subset(keep).num_answers(), 1u);
}

}  // namespace
}  // namespace cpa
