#include "data/cooccurrence.h"

#include <vector>

#include <gtest/gtest.h>

namespace cpa {
namespace {

// Two blocks of co-occurring labels: {0,1,2} and {3,4}; label 5 never occurs.
std::vector<LabelSet> BlockSets() {
  return {
      LabelSet{0, 1, 2}, LabelSet{0, 1}, LabelSet{1, 2}, LabelSet{0, 2},
      LabelSet{3, 4},    LabelSet{3, 4}, LabelSet{3},
  };
}

TEST(CooccurrenceTest, MarginalAndPairCounts) {
  const auto sets = BlockSets();
  const CooccurrenceMatrix cooc(6, sets);
  EXPECT_EQ(cooc.MarginalCount(0), 3u);
  EXPECT_EQ(cooc.MarginalCount(1), 3u);
  EXPECT_EQ(cooc.MarginalCount(3), 3u);
  EXPECT_EQ(cooc.MarginalCount(5), 0u);
  EXPECT_EQ(cooc.PairCount(0, 1), 2u);
  EXPECT_EQ(cooc.PairCount(1, 0), 2u);  // symmetric
  EXPECT_EQ(cooc.PairCount(3, 4), 2u);
  EXPECT_EQ(cooc.PairCount(0, 3), 0u);
  EXPECT_EQ(cooc.PairCount(2, 2), cooc.MarginalCount(2));
}

TEST(CooccurrenceTest, JaccardStrength) {
  const auto sets = BlockSets();
  const CooccurrenceMatrix cooc(6, sets);
  // n_01 = 2, n_0 = 3, n_1 = 3 -> 2 / (3+3-2) = 0.5.
  EXPECT_DOUBLE_EQ(cooc.JaccardStrength(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(cooc.JaccardStrength(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(cooc.JaccardStrength(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(cooc.JaccardStrength(5, 5), 0.0);  // never occurs
}

TEST(CooccurrenceTest, NormalizedPmiSignsReflectAssociation) {
  const auto sets = BlockSets();
  const CooccurrenceMatrix cooc(6, sets);
  EXPECT_GT(cooc.NormalizedPmi(3, 4), 0.0);  // co-occur more than chance
  EXPECT_DOUBLE_EQ(cooc.NormalizedPmi(0, 3), 0.0);  // never co-occur
  EXPECT_DOUBLE_EQ(cooc.NormalizedPmi(5, 0), 0.0);  // label absent
}

TEST(CooccurrenceTest, TopEdgesAreSortedByStrength) {
  const auto sets = BlockSets();
  const CooccurrenceMatrix cooc(6, sets);
  const auto edges = cooc.TopEdges(10);
  ASSERT_GE(edges.size(), 4u);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GE(edges[i - 1].strength, edges[i].strength);
  }
  // The strongest edge is (3,4): 2/(3+2-2) = 0.666.
  EXPECT_EQ(edges[0].a, 3u);
  EXPECT_EQ(edges[0].b, 4u);
}

TEST(CooccurrenceTest, TopEdgesRespectsK) {
  const auto sets = BlockSets();
  const CooccurrenceMatrix cooc(6, sets);
  EXPECT_EQ(cooc.TopEdges(2).size(), 2u);
}

TEST(CooccurrenceTest, ClustersRecoverBlocks) {
  const auto sets = BlockSets();
  const CooccurrenceMatrix cooc(6, sets);
  const auto clusters = cooc.Clusters(0.2);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].size(), 3u);  // {0,1,2}
  EXPECT_EQ(clusters[1].size(), 2u);  // {3,4}
}

TEST(CooccurrenceTest, HighThresholdShattersClusters) {
  const auto sets = BlockSets();
  const CooccurrenceMatrix cooc(6, sets);
  const auto clusters = cooc.Clusters(0.99);
  // No edge reaches 0.99, so every occurring label is its own cluster.
  EXPECT_EQ(clusters.size(), 5u);
  for (const auto& cluster : clusters) EXPECT_EQ(cluster.size(), 1u);
}

TEST(CooccurrenceTest, UnusedLabelsAreOmittedFromClusters) {
  const auto sets = BlockSets();
  const CooccurrenceMatrix cooc(6, sets);
  for (const auto& cluster : cooc.Clusters(0.0)) {
    for (LabelId c : cluster) EXPECT_NE(c, 5u);
  }
}

TEST(CooccurrenceTest, MeanPairStrengthIsBetweenZeroAndOne) {
  const auto sets = BlockSets();
  const CooccurrenceMatrix cooc(6, sets);
  const double mean = cooc.MeanPairStrength();
  EXPECT_GT(mean, 0.0);
  EXPECT_LE(mean, 1.0);
}

TEST(CooccurrenceTest, IndependentLabelsHaveLowerMeanStrength) {
  // Correlated world vs a world where labels appear alone.
  const auto correlated = BlockSets();
  std::vector<LabelSet> independent = {LabelSet{0}, LabelSet{1}, LabelSet{2},
                                       LabelSet{3}, LabelSet{4}};
  const CooccurrenceMatrix strong(6, correlated);
  const CooccurrenceMatrix weak(6, independent);
  EXPECT_GT(strong.MeanPairStrength(), weak.MeanPairStrength());
}

TEST(CooccurrenceTest, WeightedMeanNpmiPositiveForBlocksZeroForSingletons) {
  const auto correlated = BlockSets();
  const CooccurrenceMatrix strong(6, correlated);
  EXPECT_GT(strong.WeightedMeanNpmi(), 0.1);
  const std::vector<LabelSet> singletons = {LabelSet{0}, LabelSet{1}, LabelSet{2}};
  const CooccurrenceMatrix none(6, singletons);
  EXPECT_DOUBLE_EQ(none.WeightedMeanNpmi(), 0.0);
}

TEST(CooccurrenceTest, EmptyInputIsAllZero) {
  const std::vector<LabelSet> none;
  const CooccurrenceMatrix cooc(3, none);
  EXPECT_EQ(cooc.MarginalCount(0), 0u);
  EXPECT_DOUBLE_EQ(cooc.MeanPairStrength(), 0.0);
  EXPECT_TRUE(cooc.Clusters(0.1).empty());
  EXPECT_TRUE(cooc.TopEdges(5).empty());
}

}  // namespace
}  // namespace cpa
