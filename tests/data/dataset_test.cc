#include "data/dataset.h"

#include <gtest/gtest.h>

#include "data/dataset_io.h"

namespace cpa {
namespace {

Dataset MakeValidDataset() {
  Dataset d;
  d.name = "tiny";
  d.num_labels = 5;
  d.answers = AnswerMatrix(4, 3);
  EXPECT_TRUE(d.answers.Add(0, 0, LabelSet{3, 4}).ok());
  EXPECT_TRUE(d.answers.Add(0, 1, LabelSet{4}).ok());
  EXPECT_TRUE(d.answers.Add(1, 2, LabelSet{1, 2}).ok());
  EXPECT_TRUE(d.answers.Add(3, 1, LabelSet{0}).ok());
  d.ground_truth = {LabelSet{4}, LabelSet{2, 3}, LabelSet{}, LabelSet{0}};
  return d;
}

TEST(DatasetTest, ValidDatasetValidates) {
  const Dataset d = MakeValidDataset();
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_EQ(d.num_items(), 4u);
  EXPECT_EQ(d.num_workers(), 3u);
  EXPECT_TRUE(d.has_ground_truth());
}

TEST(DatasetTest, NumAnsweredItemsCountsQuestions) {
  const Dataset d = MakeValidDataset();
  EXPECT_EQ(d.NumAnsweredItems(), 3u);  // item 2 has no answers
}

TEST(DatasetTest, ValidationRejectsZeroLabels) {
  Dataset d = MakeValidDataset();
  d.num_labels = 0;
  EXPECT_EQ(d.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, ValidationRejectsTruthSizeMismatch) {
  Dataset d = MakeValidDataset();
  d.ground_truth.pop_back();
  EXPECT_EQ(d.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, ValidationRejectsAnswerLabelOutOfRange) {
  Dataset d = MakeValidDataset();
  d.num_labels = 3;  // answers contain labels 3 and 4
  EXPECT_EQ(d.Validate().code(), StatusCode::kOutOfRange);
}

TEST(DatasetTest, ValidationRejectsTruthLabelOutOfRange) {
  Dataset d = MakeValidDataset();
  d.ground_truth[0] = LabelSet{99};
  EXPECT_EQ(d.Validate().code(), StatusCode::kOutOfRange);
}

TEST(DatasetTest, ValidationRejectsLabelNameSizeMismatch) {
  Dataset d = MakeValidDataset();
  d.label_names = {"a", "b"};
  EXPECT_EQ(d.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, StringRoundTripPreservesEverything) {
  const Dataset d = MakeValidDataset();
  const std::string text = DatasetToString(d);
  const auto loaded = DatasetFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& back = loaded.value();
  EXPECT_EQ(back.name, d.name);
  EXPECT_EQ(back.num_labels, d.num_labels);
  EXPECT_EQ(back.answers.num_answers(), d.answers.num_answers());
  EXPECT_EQ(back.answers.num_items(), d.answers.num_items());
  EXPECT_EQ(back.answers.num_workers(), d.answers.num_workers());
  const auto answer = back.answers.GetAnswer(0, 0);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value().ToString(), "{3,4}");
  ASSERT_EQ(back.ground_truth.size(), d.ground_truth.size());
  for (std::size_t i = 0; i < d.ground_truth.size(); ++i) {
    EXPECT_EQ(back.ground_truth[i], d.ground_truth[i]) << "item " << i;
  }
}

TEST(DatasetIoTest, FileRoundTrip) {
  const Dataset d = MakeValidDataset();
  const std::string path = testing::TempDir() + "/cpa_dataset_io_test.tsv";
  ASSERT_TRUE(SaveDataset(d, path).ok());
  const auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().answers.num_answers(), d.answers.num_answers());
}

TEST(DatasetIoTest, MissingDimsIsError) {
  EXPECT_FALSE(DatasetFromString("name\tx\n").ok());
}

TEST(DatasetIoTest, RecordsBeforeDimsAreErrors) {
  EXPECT_FALSE(DatasetFromString("answer\t0\t0\t1\ndims\t1\t1\t2\n").ok());
  EXPECT_FALSE(DatasetFromString("truth\t0\t1\ndims\t1\t1\t2\n").ok());
}

TEST(DatasetIoTest, UnknownRecordKindIsError) {
  EXPECT_FALSE(DatasetFromString("dims\t1\t1\t2\nbogus\t1\n").ok());
}

TEST(DatasetIoTest, CommentsAndBlankLinesAreIgnored) {
  const auto loaded = DatasetFromString(
      "# header comment\n\ndims\t1\t1\t2\n# another\nanswer\t0\t0\t1\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().answers.num_answers(), 1u);
}

TEST(DatasetIoTest, TruthOutOfRangeItemIsError) {
  EXPECT_FALSE(DatasetFromString("dims\t1\t1\t2\ntruth\t5\t1\n").ok());
}

TEST(DatasetIoTest, LoadMissingFileIsIOError) {
  const auto loaded = LoadDataset("/nonexistent/path/file.tsv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace cpa
