#include "data/dataset_stats.h"

#include <gtest/gtest.h>

namespace cpa {
namespace {

Dataset MakeDataset() {
  Dataset d;
  d.name = "stats";
  d.num_labels = 4;
  d.answers = AnswerMatrix(3, 3);
  EXPECT_TRUE(d.answers.Add(0, 0, LabelSet{0, 1}).ok());
  EXPECT_TRUE(d.answers.Add(0, 1, LabelSet{1}).ok());
  EXPECT_TRUE(d.answers.Add(1, 0, LabelSet{2, 3}).ok());
  // item 2 unanswered; worker 2 inactive.
  d.ground_truth = {LabelSet{0, 1}, LabelSet{2}, LabelSet{3}};
  return d;
}

TEST(DatasetStatsTest, CountsMatchTableThreeSemantics) {
  const DatasetStats stats = ComputeDatasetStats(MakeDataset());
  EXPECT_EQ(stats.name, "stats");
  EXPECT_EQ(stats.num_items, 3u);
  EXPECT_EQ(stats.num_labels, 4u);
  EXPECT_EQ(stats.num_questions, 2u);  // answered items only
  EXPECT_EQ(stats.num_workers, 2u);    // active workers only
  EXPECT_EQ(stats.num_answers, 3u);
}

TEST(DatasetStatsTest, Means) {
  const DatasetStats stats = ComputeDatasetStats(MakeDataset());
  EXPECT_NEAR(stats.mean_labels_per_answer, 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.mean_answers_per_item, 3.0 / 2.0, 1e-12);
  // Truth labels over answered items: |{0,1}| + |{2}| = 3 over 2 items.
  EXPECT_NEAR(stats.mean_labels_per_truth, 1.5, 1e-12);
}

TEST(DatasetStatsTest, SparsityMatchesAnswerMatrix) {
  const Dataset d = MakeDataset();
  const DatasetStats stats = ComputeDatasetStats(d);
  EXPECT_DOUBLE_EQ(stats.sparsity, d.answers.Sparsity());
}

TEST(DatasetStatsTest, EmptyDatasetProducesZeros) {
  Dataset d;
  d.name = "empty";
  d.num_labels = 2;
  d.answers = AnswerMatrix(0, 0);
  const DatasetStats stats = ComputeDatasetStats(d);
  EXPECT_EQ(stats.num_answers, 0u);
  EXPECT_EQ(stats.num_questions, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_labels_per_answer, 0.0);
}

TEST(SkewnessTest, SymmetricDataHasNearZeroSkew) {
  EXPECT_NEAR(Skewness({1, 2, 3, 4, 5}), 0.0, 1e-12);
}

TEST(SkewnessTest, RightTailIsPositive) {
  EXPECT_GT(Skewness({1, 1, 1, 1, 10}), 1.0);
}

TEST(SkewnessTest, LeftTailIsNegative) {
  EXPECT_LT(Skewness({-10, 1, 1, 1, 1}), -1.0);
}

TEST(SkewnessTest, DegenerateInputsAreZero) {
  EXPECT_DOUBLE_EQ(Skewness({}), 0.0);
  EXPECT_DOUBLE_EQ(Skewness({1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(Skewness({3.0, 3.0, 3.0}), 0.0);
}

}  // namespace
}  // namespace cpa
