#include "data/label_set.h"

#include <vector>

#include <gtest/gtest.h>

namespace cpa {
namespace {

TEST(LabelSetTest, InitializerListSortsAndDeduplicates) {
  const LabelSet set = {5, 1, 3, 1, 5};
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.ToString(), "{1,3,5}");
}

TEST(LabelSetTest, FromUnsorted) {
  const LabelSet set = LabelSet::FromUnsorted({9, 2, 2, 7});
  EXPECT_EQ(set.ToString(), "{2,7,9}");
}

TEST(LabelSetTest, EmptySetBehaviour) {
  const LabelSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(0));
  EXPECT_EQ(set.ToString(), "{}");
  EXPECT_EQ(set.MaxLabel(), kInvalidId);
}

TEST(LabelSetTest, ContainsUsesBinarySearch) {
  const LabelSet set = {2, 4, 6, 8};
  EXPECT_TRUE(set.Contains(2));
  EXPECT_TRUE(set.Contains(8));
  EXPECT_FALSE(set.Contains(5));
  EXPECT_FALSE(set.Contains(9));
}

TEST(LabelSetTest, AddKeepsSortedAndUnique) {
  LabelSet set = {3, 7};
  set.Add(5);
  set.Add(5);
  set.Add(1);
  set.Add(9);
  EXPECT_EQ(set.ToString(), "{1,3,5,7,9}");
}

TEST(LabelSetTest, RemoveIsNoopWhenAbsent) {
  LabelSet set = {1, 2, 3};
  set.Remove(2);
  set.Remove(99);
  EXPECT_EQ(set.ToString(), "{1,3}");
}

TEST(LabelSetTest, IntersectionAndUnionSizes) {
  const LabelSet a = {1, 2, 3, 4};
  const LabelSet b = {3, 4, 5};
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(a.UnionSize(b), 5u);
  EXPECT_EQ(a.IntersectionSize(LabelSet()), 0u);
  EXPECT_EQ(a.UnionSize(LabelSet()), 4u);
}

TEST(LabelSetTest, SetAlgebra) {
  const LabelSet a = {1, 2, 3};
  const LabelSet b = {2, 3, 4};
  EXPECT_EQ(a.Union(b).ToString(), "{1,2,3,4}");
  EXPECT_EQ(a.Intersect(b).ToString(), "{2,3}");
  EXPECT_EQ(a.Difference(b).ToString(), "{1}");
  EXPECT_EQ(b.Difference(a).ToString(), "{4}");
}

TEST(LabelSetTest, JaccardSimilarity) {
  const LabelSet a = {1, 2};
  const LabelSet b = {2, 3};
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(a.Jaccard(a), 1.0);
  EXPECT_DOUBLE_EQ(LabelSet().Jaccard(LabelSet()), 1.0);
  EXPECT_DOUBLE_EQ(a.Jaccard(LabelSet()), 0.0);
}

TEST(LabelSetTest, IndicatorRoundTrip) {
  const LabelSet set = {0, 3};
  std::vector<double> indicator(5, -1.0);
  set.ToIndicator(indicator);
  EXPECT_DOUBLE_EQ(indicator[0], 1.0);
  EXPECT_DOUBLE_EQ(indicator[1], 0.0);
  EXPECT_DOUBLE_EQ(indicator[3], 1.0);
  const LabelSet back = LabelSet::FromIndicator(indicator);
  EXPECT_EQ(back, set);
}

TEST(LabelSetTest, FromIndicatorHonoursThreshold) {
  const std::vector<double> soft = {0.9, 0.4, 0.6, 0.1};
  EXPECT_EQ(LabelSet::FromIndicator(soft, 0.5).ToString(), "{0,2}");
  EXPECT_EQ(LabelSet::FromIndicator(soft, 0.05).ToString(), "{0,1,2,3}");
}

TEST(LabelSetTest, EqualityAndIteration) {
  const LabelSet a = {4, 5};
  const LabelSet b = {5, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, LabelSet({4}));
  std::vector<LabelId> collected(a.begin(), a.end());
  EXPECT_EQ(collected, (std::vector<LabelId>{4, 5}));
}

TEST(LabelSetTest, MaxLabel) {
  EXPECT_EQ(LabelSet({7, 2, 9}).MaxLabel(), 9u);
}

}  // namespace
}  // namespace cpa
