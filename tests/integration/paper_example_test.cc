/// End-to-end reproduction of the paper's motivating example (§2.1,
/// Table 1) and cross-module integration checks.

#include <gtest/gtest.h>

#include "baselines/majority_vote.h"
#include "core/cpa.h"
#include "data/dataset.h"
#include "data/dataset_io.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "simulation/dataset_factory.h"
#include "simulation/perturbations.h"

namespace cpa {
namespace {

/// Table 1, labels shifted to 0-based: 1:sky 2:plane 3:sun 4:water 5:tree.
Dataset PaperTableOne() {
  Dataset d;
  d.name = "table1";
  d.num_labels = 5;
  d.label_names = {"sky", "plane", "sun", "water", "tree"};
  d.answers = AnswerMatrix(4, 5);
  const auto add = [&](ItemId i, WorkerId u, LabelSet s) {
    EXPECT_TRUE(d.answers.Add(i, u, std::move(s)).ok());
  };
  add(0, 0, {3, 4});
  add(0, 1, {3, 4});
  add(0, 2, {3});
  add(0, 3, {0});
  add(0, 4, {4});
  add(1, 0, {1, 2});
  add(1, 1, {0, 3});
  add(1, 2, {3});
  add(1, 3, {1});
  add(1, 4, {2, 3});
  add(2, 0, {0, 1});
  add(2, 1, {3});
  add(2, 2, {3});
  add(2, 3, {2});
  add(2, 4, {3, 4});
  add(3, 0, {0, 1});
  add(3, 1, {1, 2});
  add(3, 2, {3});
  add(3, 3, {3});
  add(3, 4, {0, 1, 2});
  d.ground_truth = {LabelSet{4}, LabelSet{2, 3}, LabelSet{3, 4}, LabelSet{0, 1, 2}};
  return d;
}

TEST(PaperExampleTest, MajorityColumnMatchesTableOne) {
  const Dataset d = PaperTableOne();
  MajorityVote mv;
  const auto result = mv.Aggregate(d.answers, d.num_labels);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().predictions[0], LabelSet({3, 4}));  // {4,5}
  EXPECT_EQ(result.value().predictions[1], LabelSet({3}));     // {4}
  EXPECT_EQ(result.value().predictions[2], LabelSet({3}));     // {4}
  EXPECT_EQ(result.value().predictions[3], LabelSet({1}));     // {2}
}

TEST(PaperExampleTest, MajorityIsPartiallyIncorrectAndIncomplete) {
  // The paper's two observations about MV on Table 1.
  const Dataset d = PaperTableOne();
  MajorityVote mv;
  const auto result = mv.Aggregate(d.answers, d.num_labels);
  ASSERT_TRUE(result.ok());
  const SetMetrics metrics =
      ComputeSetMetrics(result.value().predictions, d.ground_truth);
  EXPECT_LT(metrics.precision, 1.0);  // partially incorrect (label 4 on i1)
  EXPECT_LT(metrics.recall, 1.0);     // partially incomplete (labels 1,3 on i4)
}

TEST(PaperExampleTest, CpaRunsOnTheTinyExample) {
  // Four items and five workers are far below the data CPA needs; the
  // test checks the full pipeline runs and emits sane output, not that it
  // beats MV here.
  const Dataset d = PaperTableOne();
  CpaOptions options;
  options.max_communities = 4;
  options.max_clusters = 4;
  options.max_iterations = 15;
  CpaAggregator cpa(options);
  const auto result = cpa.Aggregate(d.answers, d.num_labels);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().predictions.size(), 4u);
  for (const LabelSet& p : result.value().predictions) {
    EXPECT_FALSE(p.empty());
    EXPECT_LE(p.MaxLabel(), 4u);
  }
}

TEST(IntegrationTest, DatasetRoundTripPreservesExperimentResults) {
  FactoryOptions options;
  options.scale = 0.05;
  auto dataset = MakePaperDataset(PaperDatasetId::kMovie, options);
  ASSERT_TRUE(dataset.ok());
  const std::string path = testing::TempDir() + "/cpa_integration_roundtrip.tsv";
  ASSERT_TRUE(SaveDataset(dataset.value(), path).ok());
  const auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());

  MajorityVote mv_a;
  MajorityVote mv_b;
  const auto original = RunExperiment(mv_a, dataset.value());
  const auto reloaded = RunExperiment(mv_b, loaded.value());
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_DOUBLE_EQ(original.value().metrics.precision,
                   reloaded.value().metrics.precision);
  EXPECT_DOUBLE_EQ(original.value().metrics.recall, reloaded.value().metrics.recall);
}

TEST(IntegrationTest, SpammerInjectionDegradesMvMoreThanCpa) {
  // The Fig 4 mechanism end-to-end at test scale.
  FactoryOptions factory_options;
  factory_options.scale = 0.1;
  auto dataset = MakePaperDataset(PaperDatasetId::kTopic, factory_options);
  ASSERT_TRUE(dataset.ok());
  Rng rng(7);
  SpammerInjectionOptions spam;
  spam.spam_answer_fraction = 0.4;
  const auto spammed = InjectSpammers(dataset.value(), spam, rng);
  ASSERT_TRUE(spammed.ok());

  const auto run = [&](const std::string& name, const Dataset& d) {
    EngineConfig config = EngineConfig::ForDataset(name, d);
    config.cpa.max_iterations = 25;
    auto result = RunExperiment(config, d);
    EXPECT_TRUE(result.ok());
    return result.value().metrics.F1();
  };
  const double mv_drop = run("MV", dataset.value()) - run("MV", spammed.value());
  const double cpa_drop = run("CPA", dataset.value()) - run("CPA", spammed.value());
  EXPECT_LT(cpa_drop, mv_drop + 0.02);
}

TEST(IntegrationTest, FitCpaPredictionsIdenticalForOneAndFourThreads) {
  // The sweep scheduler's deterministic partials (core/sweep/) make the
  // whole fit bit-identical for any thread count: exact equality of the
  // posterior and of every instantiated prediction, paper example included.
  const Dataset tiny = PaperTableOne();
  FactoryOptions factory_options;
  factory_options.scale = 0.08;
  auto simulated = MakePaperDataset(PaperDatasetId::kTopic, factory_options);
  ASSERT_TRUE(simulated.ok());
  ThreadPool pool(4);
  const Dataset& simulated_ref = simulated.value();
  for (const Dataset* d : {&tiny, &simulated_ref}) {
    CpaOptions options = CpaOptions::Recommended(d->num_items(), d->num_labels);
    options.max_iterations = 15;
    const auto sequential = SolveCpaOffline(d->answers, d->num_labels, options);
    ASSERT_TRUE(sequential.ok());
    const auto parallel = SolveCpaOffline(d->answers, d->num_labels, options,
                                          CpaVariant::kFull, &pool);
    ASSERT_TRUE(parallel.ok());
    EXPECT_DOUBLE_EQ(
        sequential.value().model.kappa.MaxAbsDiff(parallel.value().model.kappa), 0.0);
    EXPECT_DOUBLE_EQ(
        sequential.value().model.phi.MaxAbsDiff(parallel.value().model.phi), 0.0);
    ASSERT_EQ(sequential.value().predictions.size(), parallel.value().predictions.size());
    for (std::size_t i = 0; i < sequential.value().predictions.size(); ++i) {
      EXPECT_EQ(sequential.value().predictions[i], parallel.value().predictions[i]);
    }
  }
}

TEST(IntegrationTest, OnlineOfflineAgreeOnFinalPredictionsQuality) {
  FactoryOptions factory_options;
  factory_options.scale = 0.1;
  auto dataset = MakePaperDataset(PaperDatasetId::kMovie, factory_options);
  ASSERT_TRUE(dataset.ok());
  const Dataset& d = dataset.value();
  CpaOptions options = CpaOptions::Recommended(d.num_items(), d.num_labels);
  options.max_iterations = 25;

  CpaAggregator offline(options);
  const auto offline_result = RunExperiment(offline, d);
  ASSERT_TRUE(offline_result.ok());

  auto online = CpaOnline::Create(d.num_items(), d.num_workers(), d.num_labels,
                                  options, SviOptions());
  ASSERT_TRUE(online.ok());
  Rng rng(11);
  const BatchPlan plan = MakeWorkerBatches(d.answers, 10, rng);
  for (const auto& batch : plan.batches) {
    ASSERT_TRUE(online.value().ObserveBatch(d.answers, batch).ok());
  }
  const auto prediction = online.value().Predict(d.answers);
  ASSERT_TRUE(prediction.ok());
  const SetMetrics online_metrics =
      ComputeSetMetrics(prediction.value().labels, d.ground_truth);
  EXPECT_GT(online_metrics.F1(), offline_result.value().metrics.F1() - 0.12);
}

}  // namespace
}  // namespace cpa
