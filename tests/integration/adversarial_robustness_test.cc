/// Registry-wide robustness under adversarial input, end to end:
///
/// - the fault-injection wire test: an adversarial stream through a
///   router-fronted two-worker fleet of real forked server processes, one
///   worker SIGKILLed mid-stream and respawned on the same port, its
///   session restored from the latest client-held checkpoint — surviving
///   and restored sessions must finalize byte-identical to an
///   uninterrupted run (declared FIRST: it forks, and fork must happen
///   before this process ever spawns a thread — the fig11 rule);
/// - every registry method against every standard adversarial scenario:
///   finite posteriors, monotone counters, and CPA beating MV on every
///   non-degenerate scenario;
/// - checkpoint/restore mid-adversarial-stream bit-identity at the engine
///   level for the online methods.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine_registry.h"
#include "eval/metrics.h"
#include "server/binary_codec.h"
#include "server/consensus_server.h"
#include "server/router.h"
#include "server/tcp_transport.h"
#include "simulation/adversary.h"
#include "util/json.h"
#include "util/string_utils.h"

namespace cpa {
namespace {

using server::BinaryResponse;
using server::Frame;
using server::FrameKind;

/// A small but non-trivial adversarial stream for the wire tests.
AdversarialStream WireStream() {
  AdversaryConfig config;
  config.seed = 20180417;
  config.num_items = 48;
  config.num_workers = 20;
  config.num_labels = 8;
  config.answers_per_item = 5.0;
  config.num_batches = 6;
  config.strategies.honest = 0.6;
  config.strategies.uniform_spammer = 0.1;
  config.strategies.random_spammer = 0.1;
  config.strategies.sleeper = 0.2;
  config.simulation.candidate_set_size = 8;
  auto stream = GenerateAdversarialStream(config);
  EXPECT_TRUE(stream.ok()) << stream.status().ToString();
  return std::move(stream).value();
}

EngineConfig WireConfig(const AdversarialStream& stream) {
  EngineConfig config = EngineConfig::ForDataset("CPA-SVI", stream.dataset);
  config.cpa.max_communities = 4;
  config.cpa.max_clusters = 24;
  config.cpa.max_iterations = 8;
  return config;
}

std::vector<std::vector<Answer>> BatchAnswers(const AdversarialStream& stream) {
  std::vector<std::vector<Answer>> batches;
  batches.reserve(stream.plan.batches.size());
  for (const auto& batch : stream.plan.batches) {
    std::vector<Answer> answers;
    answers.reserve(batch.size());
    for (std::size_t index : batch) {
      answers.push_back(stream.dataset.answers.answer(index));
    }
    batches.push_back(std::move(answers));
  }
  return batches;
}

std::string OpenPayload(const std::string& session, const EngineConfig& config) {
  JsonValue::Object open;
  open["op"] = JsonValue(std::string("open"));
  open["session"] = JsonValue(session);
  open["config"] = config.ToJson();
  return JsonValue(std::move(open)).DumpCompact();
}

void ExpectJsonOk(const Frame& frame, const char* what) {
  ASSERT_EQ(frame.kind, FrameKind::kJson) << what;
  const auto parsed = JsonValue::Parse(frame.payload);
  ASSERT_TRUE(parsed.ok()) << what << ": " << frame.payload;
  const JsonValue* ok = parsed.value().Find("ok");
  ASSERT_TRUE(ok != nullptr && ok->bool_value()) << what << ": "
                                                 << frame.payload;
}

BinaryResponse DecodeBinary(const Frame& frame, const char* what) {
  EXPECT_EQ(frame.kind, FrameKind::kBinary) << what;
  auto decoded = server::DecodeBinaryResponse(frame.payload);
  EXPECT_TRUE(decoded.ok()) << what << ": " << decoded.status().ToString();
  return std::move(decoded).value();
}

/// One forked fleet worker (the fig11 recipe: fork before any thread,
/// port over a pipe, control-pipe EOF = clean shutdown).
struct FleetWorker {
  pid_t pid = -1;
  int control_fd = -1;
  std::uint32_t port = 0;
};

void FleetWorkerMain(int port_fd, int control_fd, std::uint32_t fixed_port) {
  ConsensusServerOptions options;
  options.sessions.max_sessions = 8;
  ConsensusServer server(options);
  TcpTransportOptions tcp_options;
  tcp_options.port =
      static_cast<std::uint16_t>(fixed_port);  // 0 = ephemeral; fixed on respawn
  tcp_options.max_connections = 8;
  TcpTransport transport(server, tcp_options);
  CPA_CHECK_OK(transport.Start());
  const std::uint32_t port = transport.port();
  CPA_CHECK_EQ(::write(port_fd, &port, sizeof(port)),
               static_cast<ssize_t>(sizeof(port)));
  ::close(port_fd);
  char byte = 0;
  while (::read(control_fd, &byte, 1) > 0) {
  }
  ::close(control_fd);
  transport.Shutdown();
}

FleetWorker SpawnFleetWorker(std::uint32_t fixed_port,
                             const std::vector<FleetWorker>& siblings) {
  int port_pipe[2];
  int control_pipe[2];
  CPA_CHECK_EQ(::pipe(port_pipe), 0);
  CPA_CHECK_EQ(::pipe(control_pipe), 0);
  const pid_t pid = ::fork();
  CPA_CHECK_GE(pid, 0);
  if (pid == 0) {
    ::close(port_pipe[0]);
    ::close(control_pipe[1]);
    // A dead sibling's fd slot (-1) may have been reused by this very
    // spawn's pipes — closing it here would sever our own port pipe.
    for (const FleetWorker& sibling : siblings) {
      if (sibling.control_fd >= 0) ::close(sibling.control_fd);
    }
    FleetWorkerMain(port_pipe[1], control_pipe[0], fixed_port);
    ::_exit(0);
  }
  ::close(port_pipe[1]);
  ::close(control_pipe[0]);
  FleetWorker worker;
  worker.pid = pid;
  worker.control_fd = control_pipe[1];
  CPA_CHECK_EQ(::read(port_pipe[0], &worker.port, sizeof(worker.port)),
               static_cast<ssize_t>(sizeof(worker.port)));
  ::close(port_pipe[0]);
  return worker;
}

void JoinFleetWorker(FleetWorker& worker) {
  ::close(worker.control_fd);
  int status = 0;
  CPA_CHECK_EQ(::waitpid(worker.pid, &status, 0), worker.pid);
  CPA_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "worker " << worker.pid << " died uncleanly";
  worker.pid = -1;
}

/// Routes one binary frame, retrying once: after a worker is killed the
/// pooled connection is stale, so the first frame can come back as a
/// transport error before the router's redial reaches the respawn.
BinaryResponse RoutedBinary(Router& router, const std::string& payload,
                            const char* what) {
  Frame reply = router.HandleFrame({FrameKind::kBinary, payload});
  BinaryResponse response = DecodeBinary(reply, what);
  if (!response.ok && response.error.code() == StatusCode::kIOError) {
    reply = router.HandleFrame({FrameKind::kBinary, payload});
    response = DecodeBinary(reply, what);
  }
  return response;
}

// MUST run first in this binary: it forks a worker fleet, and fork is only
// safe (and TSan-legal) while the parent has never spawned a thread.
TEST(AdversarialFaultInjectionTest,
     KilledWorkerRestoredFromCheckpointFinishesByteIdentical) {
  const AdversarialStream stream = WireStream();
  const EngineConfig engine_config = WireConfig(stream);
  const auto batches = BatchAnswers(stream);
  ASSERT_GE(batches.size(), 4u);

  // Fleet of two forked workers behind an in-process router. The router
  // dials lazily over plain sockets and HandleFrame runs on this thread,
  // so the parent stays thread-free for the respawn fork below.
  std::vector<FleetWorker> fleet;
  fleet.push_back(SpawnFleetWorker(0, fleet));
  fleet.push_back(SpawnFleetWorker(0, fleet));
  RouterOptions router_options;
  for (const FleetWorker& worker : fleet) {
    router_options.workers.push_back(StrFormat("127.0.0.1:%u", worker.port));
  }
  Router router(router_options);
  ASSERT_TRUE(router.Start().ok());

  // One session on the worker we will kill, one on the survivor.
  std::string victim;
  std::string survivor;
  for (int i = 0; victim.empty() || survivor.empty(); ++i) {
    ASSERT_LT(i, 64);
    const std::string name = StrFormat("adv-%d", i);
    const std::size_t shard = router.WorkerIndexFor(name);
    if (shard == 0 && victim.empty()) victim = name;
    if (shard == 1 && survivor.empty()) survivor = name;
  }
  const std::vector<std::string> sessions = {victim, survivor};

  for (const std::string& session : sessions) {
    ExpectJsonOk(router.HandleFrame(
                     {FrameKind::kJson, OpenPayload(session, engine_config)}),
                 "open");
  }

  // Stream the first half, checkpointing every session after every batch
  // (client-driven checkpoints are the only way a session survives its
  // worker — the router never replicates).
  const std::size_t kill_after = batches.size() / 2;
  std::map<std::string, std::string> latest_checkpoint;
  for (std::size_t b = 0; b < kill_after; ++b) {
    for (const std::string& session : sessions) {
      const BinaryResponse observed = RoutedBinary(
          router, server::EncodeObserveRequest(session, batches[b]),
          "observe");
      ASSERT_TRUE(observed.ok) << observed.error.ToString();
      const BinaryResponse checkpoint = RoutedBinary(
          router, server::EncodeCheckpointRequest(session), "checkpoint");
      ASSERT_TRUE(checkpoint.ok) << checkpoint.error.ToString();
      ASSERT_GT(checkpoint.state.size(), 0u);
      latest_checkpoint[session] = checkpoint.state;
    }
  }

  // SIGKILL the victim's worker mid-stream and respawn it on the same
  // port (SO_REUSEADDR on the listener makes the rebind race-free).
  const std::uint32_t victim_port = fleet[0].port;
  ASSERT_EQ(::kill(fleet[0].pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(fleet[0].pid, &status, 0), fleet[0].pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ::close(fleet[0].control_fd);
  fleet[0].control_fd = -1;
  fleet[0] = SpawnFleetWorker(victim_port, fleet);
  ASSERT_EQ(fleet[0].port, victim_port);

  // The respawned worker is empty: the victim session is gone until
  // restored from the latest checkpoint. The survivor never notices.
  {
    const BinaryResponse lost = RoutedBinary(
        router, server::EncodeObserveRequest(victim, batches[kill_after]),
        "lost observe");
    ASSERT_FALSE(lost.ok);
    const BinaryResponse restored = RoutedBinary(
        router, server::EncodeRestoreRequest(victim, latest_checkpoint[victim]),
        "restore");
    ASSERT_TRUE(restored.ok) << restored.error.ToString();
    ASSERT_EQ(restored.session, victim);
  }

  // Stream the remainder and finalize.
  std::map<std::string, std::string> fleet_finalize;
  for (std::size_t b = kill_after; b < batches.size(); ++b) {
    for (const std::string& session : sessions) {
      const BinaryResponse observed = RoutedBinary(
          router, server::EncodeObserveRequest(session, batches[b]),
          "observe");
      ASSERT_TRUE(observed.ok) << observed.error.ToString();
    }
  }
  for (const std::string& session : sessions) {
    const Frame reply = router.HandleFrame(
        {FrameKind::kBinary, server::EncodeFinalizeRequest(session, true)});
    const BinaryResponse finalized = DecodeBinary(reply, "finalize");
    ASSERT_TRUE(finalized.ok) << finalized.error.ToString();
    fleet_finalize[session] = reply.payload;
    ExpectJsonOk(
        router.HandleFrame(
            {FrameKind::kJson,
             StrFormat("{\"op\":\"close\",\"session\":\"%s\"}",
                       session.c_str())}),
        "close");
  }
  router.Shutdown();
  for (FleetWorker& worker : fleet) JoinFleetWorker(worker);

  // Reference: the same two sessions, uninterrupted, on one in-process
  // server (constructed only now — after the last fork of this test).
  ConsensusServer reference;
  for (const std::string& session : sessions) {
    ExpectJsonOk(reference.HandleFrame(
                     {FrameKind::kJson, OpenPayload(session, engine_config)}),
                 "reference open");
    for (const auto& batch : batches) {
      const BinaryResponse observed = DecodeBinary(
          reference.HandleFrame(
              {FrameKind::kBinary,
               server::EncodeObserveRequest(session, batch)}),
          "reference observe");
      ASSERT_TRUE(observed.ok) << observed.error.ToString();
    }
    const Frame reply = reference.HandleFrame(
        {FrameKind::kBinary, server::EncodeFinalizeRequest(session, true)});
    const BinaryResponse finalized = DecodeBinary(reply, "reference finalize");
    ASSERT_TRUE(finalized.ok) << finalized.error.ToString();

    // The acceptance bar: byte-identical finalize replies — predictions,
    // counters, learning rate, everything on the wire.
    EXPECT_EQ(fleet_finalize[session], reply.payload) << session;
  }
}

/// Per-batch invariants over one engine run; final metrics via `out`
/// (gtest ASSERTs need a void function).
void DriveAndCheck(const std::string& method,
                   const AdversarialScenario& scenario,
                   const AdversarialStream& stream, SetMetrics* out) {
  EngineConfig config = EngineConfig::ForDataset(method, stream.dataset);
  config.cpa.max_iterations = 6;
  auto opened = EngineRegistry::Global().Open(config);
  EXPECT_TRUE(opened.ok()) << method << ": " << opened.status().ToString();
  ConsensusEngine& engine = *opened.value();

  std::size_t last_batches = 0;
  std::size_t last_answers = 0;
  for (const auto& batch : stream.plan.batches) {
    const Status observed = engine.Observe({&stream.dataset.answers, batch});
    ASSERT_TRUE(observed.ok()) << scenario.name << "@" << method << ": "
                               << observed.ToString();
    auto snapshot = engine.Snapshot();
    ASSERT_TRUE(snapshot.ok()) << scenario.name << "@" << method;
    const ConsensusSnapshot& view = *snapshot.value();
    // No NaN/Inf posterior survives any scenario.
    for (std::size_t r = 0; r < view.label_scores.rows(); ++r) {
      for (double score : view.label_scores.Row(r)) {
        ASSERT_TRUE(std::isfinite(score))
            << scenario.name << "@" << method << " row " << r;
      }
    }
    ASSERT_TRUE(std::isfinite(view.learning_rate));
    // Counters are monotone and exact.
    EXPECT_EQ(view.batches_seen, last_batches + 1);
    EXPECT_EQ(view.answers_seen, last_answers + batch.size());
    last_batches = view.batches_seen;
    last_answers = view.answers_seen;
  }
  auto final_snapshot = engine.Finalize();
  ASSERT_TRUE(final_snapshot.ok()) << scenario.name << "@" << method;
  EXPECT_TRUE(final_snapshot.value()->finalized);
  *out = ComputeSetMetrics(final_snapshot.value()->predictions,
                           stream.dataset.ground_truth);
}

TEST(AdversarialRobustnessTest, EveryMethodSurvivesEveryScenario) {
  const auto scenarios = StandardScenarioMatrix(20180417, 0.15);
  ASSERT_GE(scenarios.size(), 5u);
  const auto methods = EngineRegistry::Global().MethodNames();
  ASSERT_GE(methods.size(), 7u);

  for (const auto& scenario : scenarios) {
    auto generated = GenerateAdversarialStream(scenario.config);
    ASSERT_TRUE(generated.ok()) << scenario.name;
    const AdversarialStream& stream = generated.value();

    std::map<std::string, double> f1;
    for (const std::string& method : methods) {
      SetMetrics metrics;
      DriveAndCheck(method, scenario, stream, &metrics);
      if (testing::Test::HasFatalFailure()) return;
      f1[method] = metrics.F1();
    }
    // The paper's robustness claim, generalised: the full model beats
    // majority voting wherever honest workers still anchor the stream.
    if (!scenario.degenerate) {
      EXPECT_GT(f1["CPA"], f1["MV"])
          << scenario.name << ": CPA " << f1["CPA"] << " vs MV " << f1["MV"];
    }
  }
}

TEST(AdversarialCheckpointTest, MidStreamRestoreIsBitIdentical) {
  const auto scenarios = StandardScenarioMatrix(20180417, 0.15);
  const AdversarialScenario& scenario = scenarios[1];  // spammer-flood
  auto generated = GenerateAdversarialStream(scenario.config);
  ASSERT_TRUE(generated.ok());
  const AdversarialStream& stream = generated.value();

  for (const std::string method : {"CPA", "CPA-SVI"}) {
    EngineConfig config = EngineConfig::ForDataset(method, stream.dataset);
    config.cpa.max_iterations = 6;
    auto original = EngineRegistry::Global().Open(config);
    ASSERT_TRUE(original.ok()) << method;

    const std::size_t half = stream.plan.batches.size() / 2;
    for (std::size_t b = 0; b < half; ++b) {
      ASSERT_TRUE(original.value()
                      ->Observe({&stream.dataset.answers,
                                 stream.plan.batches[b]})
                      .ok());
    }
    auto state = original.value()->SaveState();
    ASSERT_TRUE(state.ok()) << method << ": " << state.status().ToString();

    auto restored = EngineRegistry::Global().Open(config);
    ASSERT_TRUE(restored.ok()) << method;
    ASSERT_TRUE(restored.value()
                    ->RestoreState(state.value(), &stream.dataset.answers)
                    .ok());

    for (std::size_t b = half; b < stream.plan.batches.size(); ++b) {
      ASSERT_TRUE(original.value()
                      ->Observe({&stream.dataset.answers,
                                 stream.plan.batches[b]})
                      .ok());
      ASSERT_TRUE(restored.value()
                      ->Observe({&stream.dataset.answers,
                                 stream.plan.batches[b]})
                      .ok());
    }
    auto final_original = original.value()->Finalize();
    auto final_restored = restored.value()->Finalize();
    ASSERT_TRUE(final_original.ok());
    ASSERT_TRUE(final_restored.ok());

    const ConsensusSnapshot& a = *final_original.value();
    const ConsensusSnapshot& b = *final_restored.value();
    EXPECT_EQ(a.batches_seen, b.batches_seen) << method;
    EXPECT_EQ(a.answers_seen, b.answers_seen) << method;
    EXPECT_EQ(a.learning_rate, b.learning_rate) << method;
    ASSERT_EQ(a.predictions.size(), b.predictions.size()) << method;
    for (std::size_t i = 0; i < a.predictions.size(); ++i) {
      EXPECT_EQ(a.predictions[i], b.predictions[i]) << method << " item " << i;
    }
    if (!a.label_scores.empty() || !b.label_scores.empty()) {
      EXPECT_EQ(a.label_scores.MaxAbsDiff(b.label_scores), 0.0) << method;
    }
  }
}

}  // namespace
}  // namespace cpa
