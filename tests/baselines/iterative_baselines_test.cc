/// Shared recovery and behaviour tests for the iterative baselines
/// (Dawid–Skene EM, BCC, cBCC) on simulated crowds where the correct
/// answer is known by construction.

#include <memory>

#include <gtest/gtest.h>

#include "baselines/bcc.h"
#include "baselines/cbcc.h"
#include "baselines/dawid_skene.h"
#include "baselines/majority_vote.h"
#include "simulation/crowd_simulator.h"
#include "simulation/dataset_factory.h"

namespace cpa {
namespace {

/// Mean set-F1 of predictions against the ground truth (local helper; the
/// eval module proper is exercised by its own tests).
double MeanF1(const std::vector<LabelSet>& predictions,
              const std::vector<LabelSet>& truth) {
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i].empty()) continue;
    const double inter = static_cast<double>(predictions[i].IntersectionSize(truth[i]));
    const double p = predictions[i].empty() ? 0.0 : inter / predictions[i].size();
    const double r = inter / truth[i].size();
    total += (p + r > 0.0) ? 2.0 * p * r / (p + r) : 0.0;
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

Dataset NoisyCrowdDataset(std::uint64_t seed, const PopulationMix& mix,
                          std::size_t items = 150) {
  Rng rng(seed);
  TruthConfig truth_config;
  truth_config.num_items = items;
  truth_config.num_labels = 12;
  truth_config.num_clusters = 3;
  truth_config.correlation = 0.7;
  truth_config.mean_labels_per_item = 2.5;
  truth_config.max_labels_per_item = 5;
  auto truth = GenerateGroundTruth(truth_config, rng);
  EXPECT_TRUE(truth.ok());

  PopulationConfig population_config;
  population_config.num_workers = 40;
  population_config.num_labels = 12;
  population_config.mix = mix;
  auto workers = GeneratePopulation(population_config, rng);
  EXPECT_TRUE(workers.ok());

  SimulationConfig sim_config;
  sim_config.answers_per_item = 9.0;
  sim_config.candidate_set_size = 12;
  auto answers = SimulateAnswers(truth.value(), workers.value(), sim_config, rng);
  EXPECT_TRUE(answers.ok());

  Dataset dataset;
  dataset.name = "noisy-crowd";
  dataset.num_labels = 12;
  dataset.answers = std::move(answers).value();
  dataset.ground_truth = std::move(truth.value().labels);
  return dataset;
}

class IterativeBaselineTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Aggregator> MakeAggregator() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<DawidSkene>();
      case 1: {
        DawidSkeneOptions options;
        options.use_mislabeling_cost = true;
        return std::make_unique<DawidSkene>(options);
      }
      case 2:
        return std::make_unique<Bcc>();
      default:
        return std::make_unique<Cbcc>();
    }
  }
};

TEST_P(IterativeBaselineTest, NearPerfectOnReliableCrowd) {
  const Dataset dataset = NoisyCrowdDataset(11, PopulationMix::AllReliable());
  auto aggregator = MakeAggregator();
  const auto result = aggregator->Aggregate(dataset.answers, dataset.num_labels);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(MeanF1(result.value().predictions, dataset.ground_truth), 0.9)
      << aggregator->name();
}

TEST_P(IterativeBaselineTest, BeatsMajorityVoteOnMixedCrowd) {
  const Dataset dataset =
      NoisyCrowdDataset(13, PopulationMix::PaperSimulationDefault(), 250);
  auto aggregator = MakeAggregator();
  const auto result = aggregator->Aggregate(dataset.answers, dataset.num_labels);
  ASSERT_TRUE(result.ok());
  MajorityVote mv;
  const auto mv_result = mv.Aggregate(dataset.answers, dataset.num_labels);
  ASSERT_TRUE(mv_result.ok());
  EXPECT_GE(MeanF1(result.value().predictions, dataset.ground_truth),
            MeanF1(mv_result.value().predictions, dataset.ground_truth) - 0.01)
      << aggregator->name();
}

TEST_P(IterativeBaselineTest, ScoresLieInUnitInterval) {
  const Dataset dataset = NoisyCrowdDataset(17, PopulationMix::PaperSimulationDefault());
  auto aggregator = MakeAggregator();
  const auto result = aggregator->Aggregate(dataset.answers, dataset.num_labels);
  ASSERT_TRUE(result.ok());
  for (double score : result.value().label_scores.Data()) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST_P(IterativeBaselineTest, DeterministicAcrossRuns) {
  const Dataset dataset = NoisyCrowdDataset(19, PopulationMix::PaperSimulationDefault());
  auto aggregator_a = MakeAggregator();
  auto aggregator_b = MakeAggregator();
  const auto a = aggregator_a->Aggregate(dataset.answers, dataset.num_labels);
  const auto b = aggregator_b->Aggregate(dataset.answers, dataset.num_labels);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a.value().predictions.size(); ++i) {
    EXPECT_EQ(a.value().predictions[i], b.value().predictions[i]);
  }
}

TEST_P(IterativeBaselineTest, RejectsZeroLabels) {
  auto aggregator = MakeAggregator();
  EXPECT_FALSE(aggregator->Aggregate(AnswerMatrix(1, 1), 0).ok());
}

TEST_P(IterativeBaselineTest, EmptyMatrixYieldsEmptyPredictions) {
  auto aggregator = MakeAggregator();
  const auto result = aggregator->Aggregate(AnswerMatrix(3, 2), 4);
  ASSERT_TRUE(result.ok());
  for (const LabelSet& p : result.value().predictions) EXPECT_TRUE(p.empty());
}

INSTANTIATE_TEST_SUITE_P(AllIterativeBaselines, IterativeBaselineTest,
                         ::testing::Values(0, 1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0:
                               return std::string("DawidSkene");
                             case 1:
                               return std::string("DawidSkeneCost");
                             case 2:
                               return std::string("Bcc");
                             default:
                               return std::string("Cbcc");
                           }
                         });

TEST(DawidSkeneTest, RecoversWorkerQualityOrdering) {
  // Two workers: one perfect, one adversarial; DS should trust the perfect
  // worker after EM even though votes alone are 50/50.
  const Dataset dataset = NoisyCrowdDataset(23, PopulationMix::PaperSimulationDefault());
  DawidSkene ds;
  const auto result = ds.Aggregate(dataset.answers, dataset.num_labels);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().iterations, 0u);
}

TEST(DawidSkeneTest, CostVariantNameDiffers) {
  DawidSkeneOptions options;
  options.use_mislabeling_cost = true;
  EXPECT_EQ(DawidSkene(options).name(), "EM+cost");
  EXPECT_EQ(DawidSkene().name(), "EM");
}

TEST(CbccTest, RejectsZeroCommunities) {
  CbccOptions options;
  options.num_communities = 0;
  Cbcc cbcc(options);
  EXPECT_FALSE(cbcc.Aggregate(AnswerMatrix(1, 1), 2).ok());
}

TEST(CbccTest, RobustToSpamHeavyCrowd) {
  // 50% spammers: cBCC's community pooling should hold up clearly better
  // than MV.
  PopulationMix mix;
  mix.reliable = 0.4;
  mix.sloppy = 0.1;
  mix.uniform_spammer = 0.25;
  mix.random_spammer = 0.25;
  const Dataset dataset = NoisyCrowdDataset(29, mix, 250);
  Cbcc cbcc;
  MajorityVote mv;
  const auto cbcc_result = cbcc.Aggregate(dataset.answers, dataset.num_labels);
  const auto mv_result = mv.Aggregate(dataset.answers, dataset.num_labels);
  ASSERT_TRUE(cbcc_result.ok());
  ASSERT_TRUE(mv_result.ok());
  EXPECT_GT(MeanF1(cbcc_result.value().predictions, dataset.ground_truth),
            MeanF1(mv_result.value().predictions, dataset.ground_truth));
}

TEST(BaselineOrderingTest, PaperOrderingHoldsOnDefaultCrowd) {
  // Table 4's qualitative ordering on a mixed crowd: cBCC >= EM (allowing
  // a small tolerance since this is one random draw).
  const Dataset dataset =
      NoisyCrowdDataset(31, PopulationMix::PaperSimulationDefault(), 300);
  DawidSkene ds;
  Cbcc cbcc;
  const auto ds_result = ds.Aggregate(dataset.answers, dataset.num_labels);
  const auto cbcc_result = cbcc.Aggregate(dataset.answers, dataset.num_labels);
  ASSERT_TRUE(ds_result.ok());
  ASSERT_TRUE(cbcc_result.ok());
  EXPECT_GE(MeanF1(cbcc_result.value().predictions, dataset.ground_truth),
            MeanF1(ds_result.value().predictions, dataset.ground_truth) - 0.02);
}

}  // namespace
}  // namespace cpa
