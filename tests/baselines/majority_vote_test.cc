#include "baselines/majority_vote.h"

#include <gtest/gtest.h>

#include "baselines/vote_stats.h"

namespace cpa {
namespace {

/// The answer matrix of Table 1 (labels shifted to 0-based: paper label k
/// becomes k-1). Five workers (u1..u5), four pictures (i1..i4).
AnswerMatrix PaperTableOne() {
  AnswerMatrix m(4, 5);
  // i1
  EXPECT_TRUE(m.Add(0, 0, LabelSet{3, 4}).ok());
  EXPECT_TRUE(m.Add(0, 1, LabelSet{3, 4}).ok());
  EXPECT_TRUE(m.Add(0, 2, LabelSet{3}).ok());
  EXPECT_TRUE(m.Add(0, 3, LabelSet{0}).ok());
  EXPECT_TRUE(m.Add(0, 4, LabelSet{4}).ok());
  // i2
  EXPECT_TRUE(m.Add(1, 0, LabelSet{1, 2}).ok());
  EXPECT_TRUE(m.Add(1, 1, LabelSet{0, 3}).ok());
  EXPECT_TRUE(m.Add(1, 2, LabelSet{3}).ok());
  EXPECT_TRUE(m.Add(1, 3, LabelSet{1}).ok());
  EXPECT_TRUE(m.Add(1, 4, LabelSet{2, 3}).ok());
  // i3
  EXPECT_TRUE(m.Add(2, 0, LabelSet{0, 1}).ok());
  EXPECT_TRUE(m.Add(2, 1, LabelSet{3}).ok());
  EXPECT_TRUE(m.Add(2, 2, LabelSet{3}).ok());
  EXPECT_TRUE(m.Add(2, 3, LabelSet{2}).ok());
  EXPECT_TRUE(m.Add(2, 4, LabelSet{3, 4}).ok());
  // i4
  EXPECT_TRUE(m.Add(3, 0, LabelSet{0, 1}).ok());
  EXPECT_TRUE(m.Add(3, 1, LabelSet{1, 2}).ok());
  EXPECT_TRUE(m.Add(3, 2, LabelSet{3}).ok());
  EXPECT_TRUE(m.Add(3, 3, LabelSet{3}).ok());
  EXPECT_TRUE(m.Add(3, 4, LabelSet{0, 1, 2}).ok());
  return m;
}

TEST(VoteStatsTest, CountsVotesAndAnswers) {
  const AnswerMatrix m = PaperTableOne();
  const VoteStats stats = CountVotes(m, 5);
  EXPECT_DOUBLE_EQ(stats.answered[0], 5.0);
  EXPECT_DOUBLE_EQ(stats.votes(0, 3), 3.0);  // label "4": u1, u2, u3
  EXPECT_DOUBLE_EQ(stats.votes(0, 4), 3.0);  // label "5": u1, u2, u5
  EXPECT_DOUBLE_EQ(stats.votes(0, 0), 1.0);  // label "1": u4
  EXPECT_DOUBLE_EQ(stats.Ratio(0, 3), 0.6);
}

TEST(VoteStatsTest, UnansweredItemsHaveZeroRatio) {
  AnswerMatrix m(2, 2);
  ASSERT_TRUE(m.Add(0, 0, LabelSet{1}).ok());
  const VoteStats stats = CountVotes(m, 3);
  EXPECT_DOUBLE_EQ(stats.Ratio(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(stats.answered[1], 0.0);
}

TEST(MajorityVoteTest, ReproducesTableOneMajorityColumn) {
  MajorityVote mv;
  const auto result = mv.Aggregate(PaperTableOne(), 5);
  ASSERT_TRUE(result.ok());
  const auto& predictions = result.value().predictions;
  ASSERT_EQ(predictions.size(), 4u);
  // Paper's Majority column: {4,5}, {4}, {4}, {2} (1-based labels).
  EXPECT_EQ(predictions[0], LabelSet({3, 4}));
  EXPECT_EQ(predictions[1], LabelSet({3}));
  EXPECT_EQ(predictions[2], LabelSet({3}));
  EXPECT_EQ(predictions[3], LabelSet({1}));
}

TEST(MajorityVoteTest, MajorityIsPartiallyWrongExactlyAsThePaperArgues) {
  // The paper's point: MV includes label 4 for i1 (incorrect) and misses
  // labels 1 and 3 for i4 (incomplete). Correct truth (0-based): i1={4},
  // i4={0,1,2}.
  MajorityVote mv;
  const auto result = mv.Aggregate(PaperTableOne(), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().predictions[0].Contains(3));   // spurious "4"
  EXPECT_FALSE(result.value().predictions[3].Contains(0));  // missing "1"
  EXPECT_FALSE(result.value().predictions[3].Contains(2));  // missing "3"
}

TEST(MajorityVoteTest, ScoresAreVoteRatios) {
  MajorityVote mv;
  const auto result = mv.Aggregate(PaperTableOne(), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().label_scores(0, 3), 0.6);
  EXPECT_DOUBLE_EQ(result.value().label_scores(0, 0), 0.2);
  EXPECT_DOUBLE_EQ(result.value().label_scores(3, 1), 0.6);
}

TEST(MajorityVoteTest, ThresholdIsStrict) {
  // 2 of 4 votes = 0.5 must NOT be included at threshold 0.5.
  AnswerMatrix m(1, 4);
  ASSERT_TRUE(m.Add(0, 0, LabelSet{0}).ok());
  ASSERT_TRUE(m.Add(0, 1, LabelSet{0}).ok());
  ASSERT_TRUE(m.Add(0, 2, LabelSet{1}).ok());
  ASSERT_TRUE(m.Add(0, 3, LabelSet{1}).ok());
  MajorityVote mv;
  const auto result = mv.Aggregate(m, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().predictions[0].empty());
}

TEST(MajorityVoteTest, FallbackFillsEmptyPredictions) {
  AnswerMatrix m(1, 4);
  ASSERT_TRUE(m.Add(0, 0, LabelSet{0}).ok());
  ASSERT_TRUE(m.Add(0, 1, LabelSet{0}).ok());
  ASSERT_TRUE(m.Add(0, 2, LabelSet{1}).ok());
  ASSERT_TRUE(m.Add(0, 3, LabelSet{2}).ok());
  MajorityVoteOptions options;
  options.fallback_to_top_label = true;
  MajorityVote mv(options);
  const auto result = mv.Aggregate(m, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().predictions[0], LabelSet({0}));
}

TEST(MajorityVoteTest, UnansweredItemsStayEmpty) {
  AnswerMatrix m(3, 2);
  ASSERT_TRUE(m.Add(0, 0, LabelSet{1}).ok());
  MajorityVote mv;
  const auto result = mv.Aggregate(m, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().predictions[1].empty());
  EXPECT_TRUE(result.value().predictions[2].empty());
}

TEST(MajorityVoteTest, RejectsZeroLabels) {
  MajorityVote mv;
  EXPECT_FALSE(mv.Aggregate(AnswerMatrix(1, 1), 0).ok());
}

TEST(MajorityVoteTest, NameIsStable) {
  MajorityVote mv;
  EXPECT_EQ(mv.name(), "MV");
}

}  // namespace
}  // namespace cpa
