#include "bench/bench_util.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/sweep/simd.h"
#include "gtest/gtest.h"

namespace cpa::bench {
namespace {

BenchConfig TestConfig() {
  BenchConfig config;
  config.scale = 0.5;
  config.seed = 42;
  config.cpa_iterations = 7;
  config.runs = 3;
  config.out_dir = ::testing::TempDir();
  return config;
}

TEST(JsonValueTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null").value().is_null());
  EXPECT_TRUE(JsonValue::Parse("true").value().bool_value());
  EXPECT_FALSE(JsonValue::Parse("false").value().bool_value());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-12.5e2").value().number_value(), -1250.0);
  EXPECT_EQ(JsonValue::Parse("\"a\\nb\\\"c\\\\\"").value().string_value(),
            "a\nb\"c\\");
}

TEST(JsonValueTest, ParsesNestedContainers) {
  auto parsed = JsonValue::Parse(R"( {"a": [1, 2, {"b": true}], "c": {}} )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = parsed.value();
  ASSERT_EQ(doc.kind(), JsonValue::Kind::kObject);
  const JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array()[0].number_value(), 1.0);
  EXPECT_TRUE(a->array()[2].Find("b")->bool_value());
  EXPECT_TRUE(doc.Find("c")->object().empty());
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("12 34").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
}

TEST(JsonValueTest, DumpsNonFiniteNumbersAsNull) {
  EXPECT_EQ(JsonValue(std::nan("")).Dump(), "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).Dump(), "null");
  // The file stays parseable even if a metric goes non-finite.
  JsonValue::Object object;
  object["bad"] = JsonValue(std::nan(""));
  auto reparsed = JsonValue::Parse(JsonValue(std::move(object)).Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(reparsed.value().Find("bad")->is_null());
}

TEST(JsonValueTest, DumpParseRoundTripPreservesStructure) {
  JsonValue::Object object;
  object["pi"] = JsonValue(3.141592653589793);
  object["text"] = JsonValue(std::string("line1\nline2\t\"quoted\""));
  object["flags"] = JsonValue(JsonValue::Array{JsonValue(true), JsonValue()});
  const JsonValue original{std::move(object)};

  auto reparsed = JsonValue::Parse(original.Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  const JsonValue& copy = reparsed.value();
  EXPECT_DOUBLE_EQ(copy.Find("pi")->number_value(), 3.141592653589793);
  EXPECT_EQ(copy.Find("text")->string_value(), "line1\nline2\t\"quoted\"");
  ASSERT_EQ(copy.Find("flags")->array().size(), 2u);
  EXPECT_TRUE(copy.Find("flags")->array()[0].bool_value());
  EXPECT_TRUE(copy.Find("flags")->array()[1].is_null());
}

TEST(BenchReportTest, ToJsonIsValidJsonWithRequiredKeys) {
  BenchReport report("unit_test", TestConfig());
  report.Add("fit_time", 12.5, "ms");
  report.Add("accuracy", 0.875, "fraction");

  auto parsed = JsonValue::Parse(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = parsed.value();
  for (std::string_view key : BenchReport::kRequiredKeys) {
    EXPECT_NE(doc.Find(std::string(key)), nullptr) << "missing key " << key;
  }
  EXPECT_EQ(doc.Find("bench")->string_value(), "unit_test");

  const JsonValue* config = doc.Find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_DOUBLE_EQ(config->Find("scale")->number_value(), 0.5);
  EXPECT_DOUBLE_EQ(config->Find("seed")->number_value(), 42.0);
  EXPECT_DOUBLE_EQ(config->Find("cpa_iterations")->number_value(), 7.0);
  EXPECT_DOUBLE_EQ(config->Find("runs")->number_value(), 3.0);
  // The kernel level is recorded so scalar and AVX2 runs are never
  // mistaken for comparable timings.
  ASSERT_NE(config->Find("simd"), nullptr);
  EXPECT_EQ(config->Find("simd")->string_value(),
            simd::LevelName(simd::ActiveLevel()));
  ASSERT_NE(config->Find("simd_forced"), nullptr);

  const JsonValue* results = doc.Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array().size(), 2u);
  const JsonValue& row = results->array()[0];
  EXPECT_EQ(row.Find("name")->string_value(), "fit_time");
  EXPECT_DOUBLE_EQ(row.Find("value")->number_value(), 12.5);
  EXPECT_EQ(row.Find("unit")->string_value(), "ms");
  EXPECT_EQ(results->array()[1].Find("name")->string_value(), "accuracy");
}

TEST(BenchReportTest, WriteEmitsParsableFileAtReportedPath) {
  BenchReport report("write_round_trip", TestConfig());
  report.Add("metric", -0.25, "score");

  const Status written = report.Write();
  ASSERT_TRUE(written.ok()) << written.ToString();
  EXPECT_NE(report.path().find("BENCH_write_round_trip.json"),
            std::string::npos);

  std::ifstream in(report.path());
  ASSERT_TRUE(in.good()) << "report file missing: " << report.path();
  std::stringstream contents;
  contents << in.rdbuf();

  auto parsed = JsonValue::Parse(contents.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Find("bench")->string_value(), "write_round_trip");
  std::remove(report.path().c_str());
}

TEST(BenchReportTest, WriteFailsWithStatusOnBadDirectory) {
  BenchConfig config = TestConfig();
  config.out_dir = "/nonexistent/surely/missing";
  BenchReport report("bad_dir", config);
  const Status written = report.Write();
  EXPECT_FALSE(written.ok());
  EXPECT_EQ(written.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace cpa::bench
