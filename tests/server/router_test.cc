#include "server/router.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/binary_codec.h"
#include "server/consensus_server.h"
#include "server/protocol.h"
#include "server/tcp_client.h"
#include "server/tcp_transport.h"
#include "util/json.h"
#include "util/string_utils.h"

namespace cpa {
namespace {

using server::BinaryResponse;
using server::Frame;
using server::FrameKind;
using server::TcpFrameClient;

/// One in-process worker: a ConsensusServer behind a real TCP listener on
/// an ephemeral port — exactly what `cpa_server --tcp` runs.
struct TestWorker {
  TestWorker() {
    consensus = std::make_unique<ConsensusServer>();
    transport = std::make_unique<TcpTransport>(*consensus);
    const Status started = transport->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  std::string address() const {
    return StrFormat("127.0.0.1:%u", static_cast<unsigned>(transport->port()));
  }

  TcpFrameClient Connect() {
    auto client = TcpFrameClient::Connect("127.0.0.1", transport->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::unique_ptr<ConsensusServer> consensus;
  std::unique_ptr<TcpTransport> transport;
};

/// A router over `n` fresh workers.
struct TestFleet {
  explicit TestFleet(std::size_t n) {
    RouterOptions options;
    for (std::size_t i = 0; i < n; ++i) {
      workers.push_back(std::make_unique<TestWorker>());
      options.workers.push_back(workers.back()->address());
    }
    router = std::make_unique<Router>(options);
    const Status started = router->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  /// A session id the ring assigns to worker `index`.
  std::string SessionOnWorker(std::size_t index) const {
    for (std::size_t n = 0;; ++n) {
      std::string candidate = StrFormat("w%zu-%zu", index, n);
      if (router->WorkerIndexFor(candidate) == index) return candidate;
    }
  }

  std::vector<std::unique_ptr<TestWorker>> workers;
  std::unique_ptr<Router> router;
};

std::string OpenRequestLine(const std::string& session) {
  return StrFormat(
      R"({"op":"open","session":"%s","config":{"method":"MV",)"
      R"("num_items":4,"num_workers":16,"num_labels":4}})",
      session.c_str());
}

JsonValue MustParseJson(const Frame& frame, bool expect_ok) {
  EXPECT_EQ(frame.kind, FrameKind::kJson);
  auto parsed = JsonValue::Parse(frame.payload);
  EXPECT_TRUE(parsed.ok()) << frame.payload;
  const JsonValue* ok = parsed.value().Find("ok");
  EXPECT_NE(ok, nullptr) << frame.payload;
  if (ok != nullptr) {
    EXPECT_EQ(ok->bool_value(), expect_ok) << frame.payload;
  }
  return parsed.value();
}

BinaryResponse MustParseBinary(const Frame& frame) {
  EXPECT_EQ(frame.kind, FrameKind::kBinary);
  auto decoded = server::DecodeBinaryResponse(frame.payload);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return decoded.ok() ? decoded.value() : BinaryResponse{};
}

const std::vector<Answer> kFirstBatch = {{0, 0, LabelSet{1}},
                                         {0, 1, LabelSet{1, 2}},
                                         {1, 2, LabelSet{3}},
                                         {2, 3, LabelSet{0}}};
const std::vector<Answer> kSecondBatch = {{3, 4, LabelSet{2}},
                                          {1, 5, LabelSet{3}},
                                          {0, 6, LabelSet{1}},
                                          {2, 7, LabelSet{0}}};

TEST(RouterTest, RingIsDeterministicAndCoversEveryWorker) {
  RouterOptions options;
  options.workers = {"10.0.0.1:7001", "10.0.0.2:7001", "10.0.0.3:7001"};
  Router router(options);
  ASSERT_TRUE(router.Start().ok());

  Router again(options);
  ASSERT_TRUE(again.Start().ok());

  std::vector<std::size_t> hits(3, 0);
  for (std::size_t n = 0; n < 600; ++n) {
    const std::string session = StrFormat("session-%zu", n);
    const std::size_t index = router.WorkerIndexFor(session);
    ASSERT_LT(index, 3u);
    // Identical ring on every router instance: a second front door sends
    // the same session to the same worker.
    EXPECT_EQ(index, again.WorkerIndexFor(session));
    ++hits[index];
  }
  // 64 virtual nodes keep the spread sane: every worker owns a real share
  // of sessions and none owns (nearly) all of them. The arc lengths are
  // random, so this is a coarse no-starvation bound, not a fairness test.
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_GT(hits[i], 600u / 20) << "worker " << i;
    EXPECT_LT(hits[i], 600u * 9 / 10) << "worker " << i;
  }
}

TEST(RouterTest, RejectsMalformedWorkerAddresses) {
  for (const std::string& bad :
       {std::string("nocolon"), std::string(":7001"), std::string("host:"),
        std::string("host:99999"), std::string("host:7x"),
        std::string("unix:")}) {
    RouterOptions options;
    options.workers = {bad};
    Router router(options);
    EXPECT_EQ(router.Start().code(), StatusCode::kInvalidArgument) << bad;
  }
  Router empty({});
  EXPECT_EQ(empty.Start().code(), StatusCode::kInvalidArgument);
}

TEST(RouterTest, RoutesSessionsToTheirRingWorker) {
  TestFleet fleet(2);
  const std::string on_a = fleet.SessionOnWorker(0);
  const std::string on_b = fleet.SessionOnWorker(1);

  for (const std::string& session : {on_a, on_b}) {
    MustParseJson(
        fleet.router->HandleFrame({FrameKind::kJson, OpenRequestLine(session)}),
        true);
    MustParseJson(
        fleet.router->HandleFrame(
            {FrameKind::kJson, server::MakeObserveRequest(session, kFirstBatch)}),
        true);
  }
  // Each session's engine lives on exactly the worker the ring names.
  EXPECT_EQ(fleet.workers[0]->consensus->sessions().num_sessions(), 1u);
  EXPECT_EQ(fleet.workers[1]->consensus->sessions().num_sessions(), 1u);
  EXPECT_TRUE(fleet.workers[0]->consensus->sessions().Snapshot(on_a).ok());
  EXPECT_TRUE(fleet.workers[1]->consensus->sessions().Snapshot(on_b).ok());

  MustParseJson(
      fleet.router->HandleFrame(
          {FrameKind::kJson,
           StrFormat(R"({"op":"finalize","session":"%s"})", on_a.c_str())}),
      true);
  EXPECT_EQ(fleet.router->frames_forwarded(), 5u);
  EXPECT_EQ(fleet.router->backend_reconnects(), 0u);
}

TEST(RouterTest, InjectsRouterIdsForSessionlessOpens) {
  TestFleet fleet(2);
  const JsonValue opened = MustParseJson(
      fleet.router->HandleFrame(
          {FrameKind::kJson,
           R"({"op":"open","config":{"method":"MV","num_items":4,)"
           R"("num_workers":16,"num_labels":4}})"}),
      true);
  const std::string session = opened.Find("session")->string_value();
  EXPECT_EQ(session.rfind("r", 0), 0u) << session;

  // The injected id round-trips: follow-up ops route to the owning worker.
  const JsonValue ack = MustParseJson(
      fleet.router->HandleFrame(
          {FrameKind::kJson, server::MakeObserveRequest(session, kFirstBatch)}),
      true);
  EXPECT_EQ(ack.Find("answers_seen")->number_value(), 4.0);
  const std::size_t owner = fleet.router->WorkerIndexFor(session);
  EXPECT_TRUE(
      fleet.workers[owner]->consensus->sessions().Snapshot(session).ok());
}

TEST(RouterTest, BinaryFramesRouteBySessionPrefix) {
  TestFleet fleet(2);
  const std::string on_b = fleet.SessionOnWorker(1);
  MustParseJson(
      fleet.router->HandleFrame({FrameKind::kJson, OpenRequestLine(on_b)}),
      true);

  const BinaryResponse ack = MustParseBinary(fleet.router->HandleFrame(
      {FrameKind::kBinary, server::EncodeObserveRequest(on_b, kFirstBatch)}));
  EXPECT_TRUE(ack.ok);
  EXPECT_EQ(ack.ack.answers_seen, 4u);
  const BinaryResponse final_snapshot = MustParseBinary(fleet.router->HandleFrame(
      {FrameKind::kBinary, server::EncodeFinalizeRequest(on_b, true)}));
  EXPECT_TRUE(final_snapshot.finalized);
  EXPECT_EQ(fleet.workers[1]->consensus->sessions().num_sessions(), 1u);
  EXPECT_EQ(fleet.workers[0]->consensus->sessions().num_sessions(), 0u);

  // Truncated binary frames die at the router with a binary error reply.
  const BinaryResponse error =
      MustParseBinary(fleet.router->HandleFrame({FrameKind::kBinary, "\x01"}));
  EXPECT_FALSE(error.ok);
}

TEST(RouterTest, ListFansOutAndMethodsHitsOneWorker) {
  TestFleet fleet(2);
  const std::string on_a = fleet.SessionOnWorker(0);
  const std::string on_b = fleet.SessionOnWorker(1);
  MustParseJson(
      fleet.router->HandleFrame({FrameKind::kJson, OpenRequestLine(on_a)}),
      true);
  MustParseJson(
      fleet.router->HandleFrame({FrameKind::kJson, OpenRequestLine(on_b)}),
      true);

  const JsonValue list = MustParseJson(
      fleet.router->HandleFrame({FrameKind::kJson, R"({"op":"list"})"}), true);
  const auto& rows = list.Find("sessions")->array();
  ASSERT_EQ(rows.size(), 2u);  // merged across both workers
  std::vector<std::string> ids;
  for (const JsonValue& row : rows) {
    ids.push_back(row.Find("session")->string_value());
  }
  EXPECT_NE(std::find(ids.begin(), ids.end(), on_a), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), on_b), ids.end());

  const JsonValue methods = MustParseJson(
      fleet.router->HandleFrame({FrameKind::kJson, R"({"op":"methods"})"}),
      true);
  EXPECT_GE(methods.Find("methods")->array().size(), 7u);
}

TEST(RouterTest, DeadWorkerGetsCleanErrorAndSurvivorsKeepServing) {
  TestFleet fleet(2);
  const std::string on_a = fleet.SessionOnWorker(0);
  const std::string on_b = fleet.SessionOnWorker(1);
  for (const std::string& session : {on_a, on_b}) {
    MustParseJson(
        fleet.router->HandleFrame({FrameKind::kJson, OpenRequestLine(session)}),
        true);
  }

  // Kill worker 1. Its pooled connection is now stale AND the listener is
  // gone, so the forward fails, the redial fails, and the client gets a
  // per-request error reply — never a hang.
  fleet.workers[1]->transport->Shutdown();
  const JsonValue error = MustParseJson(
      fleet.router->HandleFrame(
          {FrameKind::kJson, server::MakeObserveRequest(on_b, kFirstBatch)}),
      false);
  EXPECT_EQ(error.Find("code")->string_value(), "IOError");
  EXPECT_NE(error.Find("error")->string_value().find("unavailable"),
            std::string::npos);
  // Binary requests for the dead worker get a binary error reply.
  const BinaryResponse binary_error = MustParseBinary(fleet.router->HandleFrame(
      {FrameKind::kBinary, server::EncodeObserveRequest(on_b, kFirstBatch)}));
  EXPECT_FALSE(binary_error.ok);
  EXPECT_EQ(binary_error.error.code(), StatusCode::kIOError);
  // The stale pooled connection triggered exactly one redial attempt; the
  // second request found an empty pool and failed at dial (no redial).
  EXPECT_GE(fleet.router->backend_reconnects(), 1u);

  // Sessions on the surviving worker are untouched.
  const JsonValue ack = MustParseJson(
      fleet.router->HandleFrame(
          {FrameKind::kJson, server::MakeObserveRequest(on_a, kFirstBatch)}),
      true);
  EXPECT_EQ(ack.Find("answers_seen")->number_value(), 4.0);

  // list degrades to the reachable fleet instead of failing outright.
  const JsonValue list = MustParseJson(
      fleet.router->HandleFrame({FrameKind::kJson, R"({"op":"list"})"}), true);
  ASSERT_EQ(list.Find("sessions")->array().size(), 1u);
  EXPECT_EQ(list.Find("sessions")->array()[0].Find("session")->string_value(),
            on_a);

  const auto stats = fleet.router->worker_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GE(stats[1].errors, 2u);
  EXPECT_EQ(stats[0].errors, 0u);
}

TEST(RouterTest, ShutdownRefusesNewFrames) {
  TestFleet fleet(1);
  fleet.router->Shutdown();
  const JsonValue error = MustParseJson(
      fleet.router->HandleFrame({FrameKind::kJson, R"({"op":"list"})"}), false);
  EXPECT_EQ(error.Find("code")->string_value(), "FailedPrecondition");
}

// The scale-out story end to end: a session lives on worker A, the
// operator checkpoints it over the wire, restores it on worker B, and the
// stream continues there — with a final consensus byte-identical to a
// never-migrated run.
TEST(RouterTest, MigratedSessionFinishesByteIdenticalToUninterruptedRun) {
  TestWorker worker_a;
  TestWorker worker_b;
  ConsensusServer uninterrupted;

  const std::string open =
      R"({"op":"open","session":"mig","config":{"method":"CPA-SVI",)"
      R"("num_items":6,"num_workers":16,"num_labels":4}})";
  const std::string snapshot = R"({"op":"snapshot","session":"mig"})";
  const std::string finalize = R"({"op":"finalize","session":"mig"})";

  // Reference: one worker sees the whole stream, never interrupted.
  ASSERT_TRUE(JsonValue::Parse(uninterrupted.HandleLine(open))
                  .value()
                  .Find("ok")
                  ->bool_value());
  uninterrupted.HandleLine(server::MakeObserveRequest("mig", kFirstBatch));
  uninterrupted.HandleLine(snapshot);
  uninterrupted.HandleLine(server::MakeObserveRequest("mig", kSecondBatch));
  const std::string reference = uninterrupted.HandleLine(finalize);

  // Migrated: the same stream starts on worker A, is checkpointed over
  // the wire mid-run, restored on worker B, and finishes there.
  TcpFrameClient to_a = worker_a.Connect();
  MustParseJson(to_a.Roundtrip(FrameKind::kJson, open).value(), true);
  MustParseJson(
      to_a.Roundtrip(FrameKind::kJson,
                     server::MakeObserveRequest("mig", kFirstBatch))
          .value(),
      true);
  MustParseJson(to_a.Roundtrip(FrameKind::kJson, snapshot).value(), true);
  const BinaryResponse checkpoint = MustParseBinary(
      to_a.Roundtrip(FrameKind::kBinary, server::EncodeCheckpointRequest("mig"))
          .value());
  ASSERT_TRUE(checkpoint.ok) << checkpoint.error.ToString();
  ASSERT_GT(checkpoint.state.size(), 0u);
  to_a.Close();

  TcpFrameClient to_b = worker_b.Connect();
  const BinaryResponse restored = MustParseBinary(
      to_b.Roundtrip(FrameKind::kBinary,
                     server::EncodeRestoreRequest("", checkpoint.state))
          .value());
  ASSERT_TRUE(restored.ok) << restored.error.ToString();
  EXPECT_EQ(restored.session, "mig");  // id travels inside the blob
  EXPECT_EQ(restored.ack.answers_seen, kFirstBatch.size());
  MustParseJson(
      to_b.Roundtrip(FrameKind::kJson,
                     server::MakeObserveRequest("mig", kSecondBatch))
          .value(),
      true);
  const std::string migrated =
      to_b.Roundtrip(FrameKind::kJson, finalize).value().payload;
  to_b.Close();

  // The acceptance bar of the checkpoint plane: the migrated final reply
  // — predictions, scores metadata, counters — is byte-identical.
  EXPECT_EQ(migrated, reference);
}

}  // namespace
}  // namespace cpa
