#include "server/session_manager.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine_registry.h"
#include "simulation/adversary.h"
#include "simulation/crowd_simulator.h"
#include "simulation/truth_generator.h"
#include "util/stopwatch.h"

namespace cpa {
namespace {

/// Test-only engine whose Observe blocks (holding the session's engine
/// mutex through the manager) until released — the probe for the
/// lock-free poll path.
class BlockingObserveEngine : public ConsensusEngine {
 public:
  BlockingObserveEngine() : ConsensusEngine("blocking-observe") {}

  static std::atomic<bool> observing;
  static std::atomic<bool> release;

 protected:
  Status OnObserve(const AnswerMatrix&, std::span<const std::size_t>) override {
    observing.store(true);
    while (!release.load()) std::this_thread::yield();
    return Status::OK();
  }
  Result<ConsensusSnapshot> OnSnapshot(const AnswerMatrix&) override {
    return ConsensusSnapshot{};
  }
};

std::atomic<bool> BlockingObserveEngine::observing{false};
std::atomic<bool> BlockingObserveEngine::release{false};

void RegisterBlockingEngine() {
  static const bool registered = [] {
    return EngineRegistry::Global()
        .Register("blocking-observe",
                  [](const EngineConfig&)
                      -> Result<std::unique_ptr<ConsensusEngine>> {
                    return std::unique_ptr<ConsensusEngine>(
                        std::make_unique<BlockingObserveEngine>());
                  })
        .ok();
  }();
  ASSERT_TRUE(registered);
}

Dataset SmallDataset(std::uint64_t seed, std::size_t items = 60) {
  Rng rng(seed);
  TruthConfig truth_config;
  truth_config.num_items = items;
  truth_config.num_labels = 8;
  truth_config.num_clusters = 3;
  truth_config.correlation = 0.8;
  truth_config.mean_labels_per_item = 2.0;
  truth_config.max_labels_per_item = 4;
  auto truth = GenerateGroundTruth(truth_config, rng);
  EXPECT_TRUE(truth.ok());
  PopulationConfig population_config;
  population_config.num_workers = 20;
  population_config.num_labels = 8;
  population_config.mix = PopulationMix::PaperSimulationDefault();
  auto workers = GeneratePopulation(population_config, rng);
  EXPECT_TRUE(workers.ok());
  SimulationConfig sim_config;
  sim_config.answers_per_item = 5.0;
  sim_config.candidate_set_size = 8;
  auto answers = SimulateAnswers(truth.value(), workers.value(), sim_config, rng);
  EXPECT_TRUE(answers.ok());
  Dataset dataset;
  dataset.name = "session-test";
  dataset.num_labels = 8;
  dataset.answers = std::move(answers).value();
  dataset.ground_truth = std::move(truth.value().labels);
  return dataset;
}

EngineConfig ConfigFor(const std::string& method, const Dataset& dataset) {
  EngineConfig config = EngineConfig::ForDataset(method, dataset);
  config.cpa.max_communities = 4;
  config.cpa.max_clusters = 24;
  config.cpa.max_iterations = 8;
  return config;
}

TEST(SessionManagerTest, LifecycleHappyPath) {
  const Dataset dataset = SmallDataset(3);
  SessionManager manager;
  const auto id = manager.Open(ConfigFor("MV", dataset));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(id.value(), "s1");
  EXPECT_EQ(manager.num_sessions(), 1u);

  const auto all = dataset.answers.answers();
  const std::size_t half = all.size() / 2;
  const auto first = manager.Observe(id.value(), all.subspan(0, half));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().batches_seen, 1u);
  EXPECT_EQ(first.value().answers_seen, half);

  const auto snapshot = manager.Snapshot(id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value()->method, "MV");
  EXPECT_EQ(snapshot.value()->answers_seen, half);
  EXPECT_FALSE(snapshot.value()->finalized);
  EXPECT_EQ(snapshot.value()->predictions.size(), dataset.answers.num_items());

  const auto rest = manager.Observe(id.value(), all.subspan(half));
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest.value().answers_seen, all.size());

  const auto final_snapshot = manager.Finalize(id.value());
  ASSERT_TRUE(final_snapshot.ok());
  EXPECT_TRUE(final_snapshot.value()->finalized);
  // Finalize is idempotent through the manager too.
  const auto again = manager.Finalize(id.value());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->predictions.size(),
            final_snapshot.value()->predictions.size());

  ASSERT_TRUE(manager.Close(id.value()).ok());
  EXPECT_EQ(manager.num_sessions(), 0u);
}

TEST(SessionManagerTest, PollReturnsCachedSnapshotWithoutRefit) {
  const Dataset dataset = SmallDataset(5);
  SessionManager manager;
  const auto id = manager.Open(ConfigFor("MV", dataset));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(manager.Observe(id.value(), dataset.answers.answers()).ok());

  // The poll cache still holds the snapshot seeded at Open (no answers).
  const auto polled = manager.Snapshot(id.value(), /*refresh=*/false);
  ASSERT_TRUE(polled.ok());
  EXPECT_TRUE(polled.value()->predictions.empty());
  EXPECT_EQ(polled.value()->answers_seen, 0u);

  // A refresh runs the engine; the poll then sees the refreshed state.
  const auto refreshed = manager.Snapshot(id.value());
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed.value()->answers_seen, dataset.answers.num_answers());
  const auto polled_after = manager.Snapshot(id.value(), /*refresh=*/false);
  ASSERT_TRUE(polled_after.ok());
  EXPECT_EQ(polled_after.value()->answers_seen, dataset.answers.num_answers());
  EXPECT_EQ(polled_after.value()->predictions.size(),
            refreshed.value()->predictions.size());
}

TEST(SessionManagerTest, SessionIds) {
  const Dataset dataset = SmallDataset(7, 30);
  SessionManager manager;
  const EngineConfig config = ConfigFor("MV", dataset);
  EXPECT_EQ(manager.Open(config).value(), "s1");
  EXPECT_EQ(manager.Open(config, "tagging-eu").value(), "tagging-eu");
  EXPECT_EQ(manager.Open(config).value(), "s2");
  const auto duplicate = manager.Open(config, "tagging-eu");
  EXPECT_EQ(duplicate.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.num_sessions(), 3u);
  EXPECT_EQ(manager.List().size(), 3u);
}

TEST(SessionManagerTest, UnknownSessionIsNotFound) {
  SessionManager manager;
  EXPECT_EQ(manager.Observe("nope", {}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.Snapshot("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.Finalize("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.Close("nope").code(), StatusCode::kNotFound);
}

TEST(SessionManagerTest, ObserveValidationLeavesSessionUntouched) {
  const Dataset dataset = SmallDataset(9, 30);
  SessionManager manager;
  const auto id = manager.Open(ConfigFor("MV", dataset));
  ASSERT_TRUE(id.ok());

  // Out-of-range ids.
  const Answer out_of_range{static_cast<ItemId>(dataset.answers.num_items()), 0,
                            LabelSet{0}};
  EXPECT_EQ(manager.Observe(id.value(), {&out_of_range, 1}).status().code(),
            StatusCode::kOutOfRange);

  // Empty label set.
  const Answer empty_labels{0, 0, LabelSet{}};
  EXPECT_EQ(manager.Observe(id.value(), {&empty_labels, 1}).status().code(),
            StatusCode::kInvalidArgument);

  // A label outside the session's universe must never reach the kernels
  // (they index C-wide arrays by label id).
  const Answer bad_label{
      0, 0, LabelSet{static_cast<LabelId>(dataset.num_labels + 5)}};
  EXPECT_EQ(manager.Observe(id.value(), {&bad_label, 1}).status().code(),
            StatusCode::kOutOfRange);

  // Duplicate (item, worker) cell within one batch...
  const Answer twice[] = {{1, 1, LabelSet{0}}, {1, 1, LabelSet{1}}};
  EXPECT_EQ(manager.Observe(id.value(), twice).status().code(),
            StatusCode::kInvalidArgument);

  // ... and across batches.
  const Answer once{2, 2, LabelSet{3}};
  ASSERT_TRUE(manager.Observe(id.value(), {&once, 1}).ok());
  EXPECT_EQ(manager.Observe(id.value(), {&once, 1}).status().code(),
            StatusCode::kInvalidArgument);

  // The rejected batches left no trace: one batch, one answer.
  const auto snapshot = manager.Snapshot(id.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value()->batches_seen, 1u);
  EXPECT_EQ(snapshot.value()->answers_seen, 1u);
}

TEST(SessionManagerTest, ObserveAfterFinalizeFails) {
  const Dataset dataset = SmallDataset(11, 30);
  SessionManager manager;
  const auto id = manager.Open(ConfigFor("MV", dataset));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(manager.Observe(id.value(), dataset.answers.answers().first(5)).ok());
  ASSERT_TRUE(manager.Finalize(id.value()).ok());
  EXPECT_EQ(
      manager.Observe(id.value(), dataset.answers.answers().subspan(5, 1))
          .status()
          .code(),
      StatusCode::kFailedPrecondition);
  // Polling a finalized session still works.
  const auto polled = manager.Snapshot(id.value(), /*refresh=*/false);
  ASSERT_TRUE(polled.ok());
  EXPECT_TRUE(polled.value()->finalized);
}

TEST(SessionManagerTest, MaxSessionsEnforced) {
  const Dataset dataset = SmallDataset(13, 30);
  SessionManagerOptions options;
  options.max_sessions = 2;
  SessionManager manager(options);
  const EngineConfig config = ConfigFor("MV", dataset);
  ASSERT_TRUE(manager.Open(config).ok());
  ASSERT_TRUE(manager.Open(config).ok());
  EXPECT_EQ(manager.Open(config).status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(manager.Close("s1").ok());
  EXPECT_TRUE(manager.Open(config).ok());
}

TEST(SessionManagerTest, ExpireIdleClosesOnlyIdleSessions) {
  const Dataset dataset = SmallDataset(15, 30);
  SessionManager manager;
  const EngineConfig config = ConfigFor("MV", dataset);
  const auto idle = manager.Open(config, "idle");
  const auto active = manager.Open(config, "active");
  ASSERT_TRUE(idle.ok());
  ASSERT_TRUE(active.ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Touch one session; the other has been idle for ~50ms.
  ASSERT_TRUE(manager.Snapshot("active", /*refresh=*/false).ok());
  EXPECT_EQ(manager.ExpireIdle(/*idle_seconds=*/0.02), 1u);
  EXPECT_EQ(manager.num_sessions(), 1u);
  EXPECT_EQ(manager.Snapshot("idle").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(manager.Snapshot("active").ok());

  // Nothing is idle enough now; nothing expires.
  EXPECT_EQ(manager.ExpireIdle(/*idle_seconds=*/30.0), 0u);
}

// The concurrency contract under load: M driver threads append batches to
// their own sessions while poller threads hammer snapshots and listings of
// every session, on a shared 2-worker sweep pool. Run under ASan/UBSan in
// the sanitize CI config.
TEST(SessionManagerTest, HammerConcurrentSessions) {
  const Dataset dataset = SmallDataset(17);
  SessionManagerOptions options;
  options.num_threads = 2;
  options.max_sessions = 16;
  SessionManager manager(options);
  ASSERT_NE(manager.scheduler(), nullptr);

  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kDrivers = 4;
  constexpr std::size_t kBatches = 5;
  std::vector<std::string> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    // Alternate a cheap offline method and the native online learner.
    const std::string method = s % 2 == 0 ? "MV" : "CPA-SVI";
    const auto id = manager.Open(ConfigFor(method, dataset));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(id.value());
  }

  const auto all = dataset.answers.answers();
  const std::size_t batch_size = all.size() / kBatches;
  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};

  std::vector<std::thread> drivers;
  for (std::size_t d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      // Each driver owns kSessions / kDrivers sessions exclusively.
      for (std::size_t s = d; s < kSessions; s += kDrivers) {
        for (std::size_t b = 0; b < kBatches; ++b) {
          const std::size_t begin = b * batch_size;
          const std::size_t size =
              b + 1 == kBatches ? all.size() - begin : batch_size;
          if (!manager.Observe(ids[s], all.subspan(begin, size)).ok()) {
            failed.store(true);
          }
          if (!manager.Snapshot(ids[s]).ok()) failed.store(true);
        }
      }
    });
  }
  std::vector<std::thread> pollers;
  for (std::size_t p = 0; p < 2; ++p) {
    pollers.emplace_back([&] {
      while (!done.load()) {
        for (const std::string& id : ids) {
          // refresh=false polls never block behind an in-flight batch.
          if (!manager.Snapshot(id, /*refresh=*/false).ok()) failed.store(true);
        }
        if (manager.List().size() != kSessions) failed.store(true);
        std::this_thread::yield();
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  done.store(true);
  for (auto& poller : pollers) poller.join();
  ASSERT_FALSE(failed.load());

  for (const std::string& id : ids) {
    const auto final_snapshot = manager.Finalize(id);
    ASSERT_TRUE(final_snapshot.ok()) << id;
    EXPECT_TRUE(final_snapshot.value()->finalized);
    EXPECT_EQ(final_snapshot.value()->answers_seen, all.size()) << id;
    EXPECT_EQ(final_snapshot.value()->batches_seen, kBatches) << id;
    ASSERT_TRUE(manager.Close(id).ok());
  }
  EXPECT_EQ(manager.num_sessions(), 0u);
}

// The memory-plane contract of the poll path: `Snapshot(refresh=false)`
// never takes the per-session engine mutex. With an Observe batch parked
// *inside* the engine (mutex held), polls must still return — and return
// the same published snapshot object, copy-free.
TEST(SessionManagerTest, PollNeverBlocksBehindInFlightObserve) {
  RegisterBlockingEngine();
  SessionManager manager;
  EngineConfig config;
  config.method = "blocking-observe";
  config.num_items = 4;
  config.num_workers = 4;
  config.num_labels = 4;
  const auto id = manager.Open(config);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  const auto seeded = manager.Snapshot(id.value(), /*refresh=*/false);
  ASSERT_TRUE(seeded.ok());
  ASSERT_NE(seeded.value(), nullptr);

  BlockingObserveEngine::observing.store(false);
  BlockingObserveEngine::release.store(false);
  const Answer answer{0, 0, LabelSet{1}};
  std::thread driver([&] {
    const auto ack = manager.Observe(id.value(), {&answer, 1});
    EXPECT_TRUE(ack.ok()) << ack.status().ToString();
  });
  while (!BlockingObserveEngine::observing.load()) std::this_thread::yield();

  // The engine mutex is now held inside Observe. Polls must complete
  // anyway, instantly, and hand back the identical shared body.
  const Stopwatch poll_watch;
  for (int poll = 0; poll < 100; ++poll) {
    const auto polled = manager.Snapshot(id.value(), /*refresh=*/false);
    ASSERT_TRUE(polled.ok());
    EXPECT_EQ(polled.value().get(), seeded.value().get())
        << "polls must share the published snapshot, not copy it";
  }
  EXPECT_LT(poll_watch.ElapsedSeconds(), 5.0);
  EXPECT_TRUE(BlockingObserveEngine::observing.load());

  BlockingObserveEngine::release.store(true);
  driver.join();
  ASSERT_TRUE(manager.Close(id.value()).ok());
}

// Zero-copy publication: repeated polls alias one object; a refresh
// publishes a new one which subsequent polls then alias; finalize
// republishes the final snapshot.
TEST(SessionManagerTest, PollsShareThePublishedSnapshotObject) {
  const Dataset dataset = SmallDataset(19);
  SessionManager manager;
  const auto id = manager.Open(ConfigFor("MV", dataset));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(manager.Observe(id.value(), dataset.answers.answers()).ok());

  const auto poll_a = manager.Snapshot(id.value(), /*refresh=*/false);
  const auto poll_b = manager.Snapshot(id.value(), /*refresh=*/false);
  ASSERT_TRUE(poll_a.ok());
  ASSERT_TRUE(poll_b.ok());
  EXPECT_EQ(poll_a.value().get(), poll_b.value().get());

  const auto refreshed = manager.Snapshot(id.value());
  ASSERT_TRUE(refreshed.ok());
  EXPECT_NE(refreshed.value().get(), poll_a.value().get());
  const auto poll_c = manager.Snapshot(id.value(), /*refresh=*/false);
  ASSERT_TRUE(poll_c.ok());
  EXPECT_EQ(poll_c.value().get(), refreshed.value().get());

  const auto final_snapshot = manager.Finalize(id.value());
  ASSERT_TRUE(final_snapshot.ok());
  const auto poll_d = manager.Snapshot(id.value(), /*refresh=*/false);
  ASSERT_TRUE(poll_d.ok());
  EXPECT_EQ(poll_d.value().get(), final_snapshot.value().get());
  EXPECT_TRUE(poll_d.value()->finalized);
}

// The ObserveAck consensus delta: staleness counters track the published
// snapshot, and changed_items reflects the last refresh's prediction diff.
TEST(SessionManagerTest, ObserveAckCarriesConsensusDelta) {
  const Dataset dataset = SmallDataset(21);
  SessionManager manager;
  const auto id = manager.Open(ConfigFor("MV", dataset));
  ASSERT_TRUE(id.ok());

  const auto all = dataset.answers.answers();
  const std::size_t half = all.size() / 2;
  const auto first = manager.Observe(id.value(), all.subspan(0, half));
  ASSERT_TRUE(first.ok());
  // Published snapshot is still the Open seed: no refresh has run.
  EXPECT_EQ(first.value().delta.snapshot_batches_seen, 0u);
  EXPECT_EQ(first.value().delta.snapshot_answers_seen, 0u);
  EXPECT_EQ(first.value().delta.changed_items, 0u);

  ASSERT_TRUE(manager.Snapshot(id.value()).ok());  // publish a refresh
  const auto second = manager.Observe(id.value(), all.subspan(half));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().delta.snapshot_batches_seen, 1u);
  EXPECT_EQ(second.value().delta.snapshot_answers_seen, half);
  // The first refresh instantiated a consensus where the seed had none.
  EXPECT_GT(second.value().delta.changed_items, 0u);
  EXPECT_EQ(second.value().answers_seen, all.size());
}

// ExpireIdle racing a parked Observe: a session with an operation in
// flight is never expired, its poll cache stays readable throughout, and
// a snapshot handed out before the eventual expiry stays valid after it
// (shared ownership — the sweep must not free a published snapshot).
TEST(SessionManagerTest, ExpireIdleNeverReapsSessionMidObserve) {
  RegisterBlockingEngine();
  SessionManager manager;
  EngineConfig config;
  config.method = "blocking-observe";
  config.num_items = 4;
  config.num_workers = 4;
  config.num_labels = 4;
  const auto id = manager.Open(config);
  ASSERT_TRUE(id.ok());
  const auto held = manager.Snapshot(id.value(), /*refresh=*/false);
  ASSERT_TRUE(held.ok());
  ASSERT_NE(held.value(), nullptr);

  BlockingObserveEngine::observing.store(false);
  BlockingObserveEngine::release.store(false);
  const Answer answer{0, 0, LabelSet{1}};
  std::thread driver([&] {
    const auto ack = manager.Observe(id.value(), {&answer, 1});
    EXPECT_TRUE(ack.ok()) << ack.status().ToString();
  });
  while (!BlockingObserveEngine::observing.load()) std::this_thread::yield();

  // Observe is parked inside the engine. An aggressive sweep (0 s idle
  // budget) must not touch the session, and polls must keep answering.
  for (int sweep = 0; sweep < 10; ++sweep) {
    EXPECT_EQ(manager.ExpireIdle(0.0), 0u);
    const auto polled = manager.Snapshot(id.value(), /*refresh=*/false);
    ASSERT_TRUE(polled.ok());
    EXPECT_EQ(polled.value().get(), held.value().get());
  }

  BlockingObserveEngine::release.store(true);
  driver.join();

  // Idle now: the same sweep reaps it, and the session is gone —
  EXPECT_EQ(manager.ExpireIdle(0.0), 1u);
  EXPECT_EQ(manager.Snapshot(id.value(), /*refresh=*/false).status().code(),
            StatusCode::kNotFound);
  // — but the snapshot handed out earlier is still safely readable.
  EXPECT_EQ(held.value()->batches_seen, 0u);
  EXPECT_EQ(held.value()->answers_seen, 0u);
}

// The same race, un-choreographed: a driver streams adversarial batches
// through a real engine while a reaper thread sweeps with a zero idle
// budget. Expiry between the driver's ops is legitimate (it reopens);
// what must never happen is a crash, a UAF on a held snapshot, or an
// expiry while the driver's Observe is in flight (the sanitizer jobs are
// the real assertion here).
TEST(SessionManagerTest, ExpireIdleHammerAgainstAdversarialStream) {
  AdversaryConfig adversary;
  adversary.seed = 20180417;
  adversary.num_items = 40;
  adversary.num_workers = 16;
  adversary.num_labels = 8;
  adversary.answers_per_item = 4.0;
  adversary.num_batches = 4;
  adversary.strategies.honest = 0.6;
  adversary.strategies.uniform_spammer = 0.2;
  adversary.strategies.sleeper = 0.2;
  adversary.simulation.candidate_set_size = 8;
  auto generated = GenerateAdversarialStream(adversary);
  ASSERT_TRUE(generated.ok());
  const AdversarialStream& stream = generated.value();
  EngineConfig config =
      EngineConfig::ForDataset("CPA-SVI", stream.dataset);
  config.cpa.max_communities = 4;
  config.cpa.max_clusters = 24;
  config.cpa.max_iterations = 4;

  SessionManager manager;
  std::atomic<bool> stop{false};
  std::thread reaper([&] {
    while (!stop.load()) {
      manager.ExpireIdle(0.0);
      std::this_thread::yield();
    }
  });

  std::vector<Answer> batch_answers;
  for (int round = 0; round < 40; ++round) {
    const auto id = manager.Open(config, "hammer");
    if (!id.ok()) continue;  // reaped between rounds with the id mid-open
    const auto& batch = stream.plan.batches[round % stream.plan.batches.size()];
    batch_answers.clear();
    for (std::size_t index : batch) {
      batch_answers.push_back(stream.dataset.answers.answer(index));
    }
    const auto ack = manager.Observe("hammer", batch_answers);
    if (!ack.ok()) {
      EXPECT_EQ(ack.status().code(), StatusCode::kNotFound);
      continue;  // expired between open and observe — allowed
    }
    const auto refreshed = manager.Snapshot("hammer");
    if (refreshed.ok()) {
      // Hold and read the snapshot after the session may have died.
      const SharedSnapshot held = refreshed.value();
      manager.ExpireIdle(0.0);
      EXPECT_GE(held->answers_seen, batch.size());
      for (const LabelSet& prediction : held->predictions) {
        EXPECT_LE(prediction.size(), adversary.num_labels);
      }
    } else {
      EXPECT_EQ(refreshed.status().code(), StatusCode::kNotFound);
    }
  }
  stop.store(true);
  reaper.join();
}

}  // namespace
}  // namespace cpa
