#include "server/server_scheduler.h"

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cpa.h"
#include "data/dataset.h"
#include "simulation/crowd_simulator.h"
#include "simulation/truth_generator.h"

namespace cpa {
namespace {

Dataset SmallDataset(std::uint64_t seed) {
  Rng rng(seed);
  TruthConfig truth_config;
  truth_config.num_items = 80;
  truth_config.num_labels = 8;
  truth_config.num_clusters = 3;
  truth_config.correlation = 0.8;
  truth_config.mean_labels_per_item = 2.0;
  truth_config.max_labels_per_item = 4;
  auto truth = GenerateGroundTruth(truth_config, rng);
  EXPECT_TRUE(truth.ok());
  PopulationConfig population_config;
  population_config.num_workers = 20;
  population_config.num_labels = 8;
  population_config.mix = PopulationMix::PaperSimulationDefault();
  auto workers = GeneratePopulation(population_config, rng);
  EXPECT_TRUE(workers.ok());
  SimulationConfig sim_config;
  sim_config.answers_per_item = 6.0;
  sim_config.candidate_set_size = 8;
  auto answers = SimulateAnswers(truth.value(), workers.value(), sim_config, rng);
  EXPECT_TRUE(answers.ok());
  Dataset dataset;
  dataset.name = "scheduler-test";
  dataset.num_labels = 8;
  dataset.answers = std::move(answers).value();
  dataset.ground_truth = std::move(truth.value().labels);
  return dataset;
}

CpaOptions FastOptions() {
  CpaOptions options = CpaOptions::Recommended(80, 8);
  options.max_communities = 4;
  options.max_clusters = 24;
  options.max_iterations = 8;
  return options;
}

TEST(ServerSchedulerTest, RunsEveryTaskOfEveryLane) {
  ServerScheduler scheduler(3);
  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kTasksPerLane = 200;
  std::vector<std::unique_ptr<ServerScheduler::Lane>> lanes;
  for (std::size_t l = 0; l < kLanes; ++l) lanes.push_back(scheduler.CreateLane());
  EXPECT_EQ(scheduler.num_lanes(), kLanes);
  EXPECT_EQ(lanes[0]->num_threads(), 3u);

  std::vector<std::atomic<std::size_t>> counts(kLanes);
  std::vector<std::thread> clients;
  clients.reserve(kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    clients.emplace_back([&, l] {
      // Per-call latch over a shared executor: returns when *these* tasks
      // are done, regardless of the other lanes' load.
      SubmitAndWait(lanes[l].get(), kTasksPerLane,
                    [&counts, l](std::size_t) { counts[l].fetch_add(1); });
    });
  }
  for (auto& client : clients) client.join();
  for (std::size_t l = 0; l < kLanes; ++l) {
    EXPECT_EQ(counts[l].load(), kTasksPerLane) << "lane " << l;
  }
  lanes.clear();
  EXPECT_EQ(scheduler.num_lanes(), 0u);
}

// With one worker, the drain order is observable: buffered tasks of two
// lanes must interleave in round-robin order, not run lane-by-lane in
// submission order.
TEST(ServerSchedulerTest, DrainsLanesRoundRobin) {
  ServerScheduler scheduler(1);
  auto lane_a = scheduler.CreateLane();
  auto lane_b = scheduler.CreateLane();

  std::promise<void> gate_entered;
  std::promise<void> gate_release;
  std::shared_future<void> release_future = gate_release.get_future().share();
  std::mutex order_mutex;
  std::vector<char> order;
  std::atomic<std::size_t> done{0};

  // Occupy the single worker so the next six tasks pile up in the lane
  // buffers before any of them can run.
  lane_a->Submit([&] {
    gate_entered.set_value();
    release_future.wait();
  });
  gate_entered.get_future().wait();
  const auto record = [&](char lane) {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(lane);
    done.fetch_add(1);
  };
  for (int i = 0; i < 3; ++i) lane_a->Submit([&record] { record('a'); });
  for (int i = 0; i < 3; ++i) lane_b->Submit([&record] { record('b'); });
  gate_release.set_value();
  while (done.load() < 6) std::this_thread::yield();

  // The gate was popped from lane a, so the drain resumes at lane b and
  // alternates from there.
  const std::vector<char> expected = {'b', 'a', 'b', 'a', 'b', 'a'};
  EXPECT_EQ(order, expected);
}

// The acceptance property of the shared-pool refactor: a fit scheduled
// through a server lane is bit-identical to the same fit on an owned pool
// and to the sequential run (scheduling never changes results).
TEST(ServerSchedulerTest, FitThroughLaneBitIdenticalToOwnedPoolAndInline) {
  const Dataset dataset = SmallDataset(101);
  const CpaOptions options = FastOptions();

  const auto inline_fit =
      SolveCpaOffline(dataset.answers, dataset.num_labels, options);
  ASSERT_TRUE(inline_fit.ok());

  ThreadPool owned(3);
  const auto owned_fit =
      SolveCpaOffline(dataset.answers, dataset.num_labels, options,
                      CpaVariant::kFull, &owned);
  ASSERT_TRUE(owned_fit.ok());

  ServerScheduler scheduler(3);
  auto lane = scheduler.CreateLane();
  const auto lane_fit =
      SolveCpaOffline(dataset.answers, dataset.num_labels, options,
                      CpaVariant::kFull, lane.get());
  ASSERT_TRUE(lane_fit.ok());

  ASSERT_EQ(lane_fit.value().predictions.size(),
            inline_fit.value().predictions.size());
  for (std::size_t i = 0; i < inline_fit.value().predictions.size(); ++i) {
    EXPECT_EQ(lane_fit.value().predictions[i], inline_fit.value().predictions[i]);
    EXPECT_EQ(lane_fit.value().predictions[i], owned_fit.value().predictions[i]);
  }
  EXPECT_DOUBLE_EQ(
      lane_fit.value().label_scores.MaxAbsDiff(inline_fit.value().label_scores),
      0.0);
  EXPECT_DOUBLE_EQ(
      lane_fit.value().label_scores.MaxAbsDiff(owned_fit.value().label_scores),
      0.0);
}

// Two sessions fitting concurrently on one shared pool interfere with each
// other's scheduling but never with each other's results.
TEST(ServerSchedulerTest, ConcurrentFitsOnSharedPoolMatchSequential) {
  const Dataset dataset_a = SmallDataset(7);
  const Dataset dataset_b = SmallDataset(8);
  const CpaOptions options = FastOptions();

  const auto reference_a =
      SolveCpaOffline(dataset_a.answers, dataset_a.num_labels, options);
  const auto reference_b =
      SolveCpaOffline(dataset_b.answers, dataset_b.num_labels, options);
  ASSERT_TRUE(reference_a.ok());
  ASSERT_TRUE(reference_b.ok());

  ServerScheduler scheduler(2);
  auto lane_a = scheduler.CreateLane();
  auto lane_b = scheduler.CreateLane();
  Result<CpaSolution> concurrent_a = Status::Internal("unset");
  Result<CpaSolution> concurrent_b = Status::Internal("unset");
  std::thread client_a([&] {
    concurrent_a = SolveCpaOffline(dataset_a.answers, dataset_a.num_labels,
                                   options, CpaVariant::kFull, lane_a.get());
  });
  std::thread client_b([&] {
    concurrent_b = SolveCpaOffline(dataset_b.answers, dataset_b.num_labels,
                                   options, CpaVariant::kFull, lane_b.get());
  });
  client_a.join();
  client_b.join();
  ASSERT_TRUE(concurrent_a.ok());
  ASSERT_TRUE(concurrent_b.ok());
  EXPECT_EQ(concurrent_a.value().predictions, reference_a.value().predictions);
  EXPECT_EQ(concurrent_b.value().predictions, reference_b.value().predictions);
  EXPECT_DOUBLE_EQ(concurrent_a.value().label_scores.MaxAbsDiff(
                       reference_a.value().label_scores),
                   0.0);
  EXPECT_DOUBLE_EQ(concurrent_b.value().label_scores.MaxAbsDiff(
                       reference_b.value().label_scores),
                   0.0);
}

}  // namespace
}  // namespace cpa
