#include "server/consensus_server.h"

#include <chrono>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "server/protocol.h"
#include "util/json.h"

namespace cpa {
namespace {

/// Parses a response line and checks the "ok" flag.
JsonValue MustParse(const std::string& line, bool expect_ok) {
  auto parsed = JsonValue::Parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  const JsonValue* ok = parsed.value().Find("ok");
  EXPECT_NE(ok, nullptr) << line;
  EXPECT_EQ(ok->bool_value(), expect_ok) << line;
  return parsed.value();
}

double NumberField(const JsonValue& json, const std::string& key) {
  const JsonValue* value = json.Find(key);
  EXPECT_NE(value, nullptr) << key;
  return value == nullptr ? -1.0 : value->number_value();
}

std::string StringField(const JsonValue& json, const std::string& key) {
  const JsonValue* value = json.Find(key);
  EXPECT_NE(value, nullptr) << key;
  return value == nullptr ? "" : value->string_value();
}

constexpr std::string_view kOpenRequest =
    R"({"op":"open","session":"t1","config":{"method":"MV","num_items":3,)"
    R"("num_workers":3,"num_labels":4}})";

TEST(ConsensusServerTest, TranscriptLifecycle) {
  ConsensusServer server;

  const JsonValue open = MustParse(server.HandleLine(kOpenRequest), true);
  EXPECT_EQ(StringField(open, "session"), "t1");
  EXPECT_EQ(StringField(open, "method"), "MV");

  const JsonValue methods = MustParse(server.HandleLine(R"({"op":"methods"})"), true);
  EXPECT_GE(methods.Find("methods")->array().size(), 7u);

  const JsonValue observed = MustParse(
      server.HandleLine(
          R"({"op":"observe","session":"t1","answers":[)"
          R"({"item":0,"worker":0,"labels":[1]},)"
          R"({"item":0,"worker":1,"labels":[1,2]},)"
          R"({"item":1,"worker":2,"labels":[3]}]})"),
      true);
  EXPECT_EQ(NumberField(observed, "answers_seen"), 3.0);
  EXPECT_EQ(NumberField(observed, "batches_seen"), 1.0);
  // The consensus delta rides on every observe ack: no refresh has run
  // yet, so the published (seed) snapshot trails at zero.
  EXPECT_EQ(NumberField(observed, "changed_items"), 0.0);
  EXPECT_EQ(NumberField(observed, "snapshot_answers_seen"), 0.0);
  EXPECT_EQ(NumberField(observed, "snapshot_batches_seen"), 0.0);

  const JsonValue snapshot =
      MustParse(server.HandleLine(R"({"op":"snapshot","session":"t1"})"), true);
  ASSERT_NE(snapshot.Find("predictions"), nullptr);
  const auto& predictions = snapshot.Find("predictions")->array();
  ASSERT_EQ(predictions.size(), 3u);  // one row per item
  ASSERT_EQ(predictions[0].array().size(), 1u);
  EXPECT_EQ(predictions[0].array()[0].number_value(), 1.0);  // majority label
  EXPECT_TRUE(predictions[2].array().empty());               // unanswered item

  // Counter-only poll: no predictions array, no engine refit.
  const JsonValue poll = MustParse(
      server.HandleLine(
          R"({"op":"snapshot","session":"t1","refresh":false,"predictions":false})"),
      true);
  EXPECT_EQ(poll.Find("predictions"), nullptr);

  // After the refresh published a consensus, the next ack's delta reports
  // it: 2 items gained predictions vs the empty seed snapshot.
  const JsonValue observed_again = MustParse(
      server.HandleLine(
          R"({"op":"observe","session":"t1","answers":[)"
          R"({"item":2,"worker":0,"labels":[2]}]})"),
      true);
  EXPECT_EQ(NumberField(observed_again, "changed_items"), 2.0);
  EXPECT_EQ(NumberField(observed_again, "snapshot_answers_seen"), 3.0);
  EXPECT_EQ(NumberField(observed_again, "snapshot_batches_seen"), 1.0);

  const JsonValue list = MustParse(server.HandleLine(R"({"op":"list"})"), true);
  ASSERT_EQ(list.Find("sessions")->array().size(), 1u);
  const JsonValue& row = list.Find("sessions")->array()[0];
  EXPECT_EQ(StringField(row, "session"), "t1");
  EXPECT_EQ(NumberField(row, "answers_seen"), 4.0);

  const JsonValue final_response =
      MustParse(server.HandleLine(R"({"op":"finalize","session":"t1"})"), true);
  EXPECT_TRUE(final_response.Find("finalized")->bool_value());

  MustParse(server.HandleLine(R"({"op":"close","session":"t1"})"), true);
  EXPECT_EQ(server.sessions().num_sessions(), 0u);
}

TEST(ConsensusServerTest, ErrorResponses) {
  ConsensusServer server;

  // Malformed JSON.
  JsonValue error = MustParse(server.HandleLine("not json"), false);
  EXPECT_EQ(StringField(error, "code"), "InvalidArgument");

  // Unknown op.
  error = MustParse(server.HandleLine(R"({"op":"frobnicate"})"), false);
  EXPECT_EQ(StringField(error, "code"), "InvalidArgument");

  // Missing session field.
  error = MustParse(server.HandleLine(R"({"op":"snapshot"})"), false);
  EXPECT_EQ(StringField(error, "code"), "InvalidArgument");

  // Unknown session id.
  error = MustParse(server.HandleLine(R"({"op":"snapshot","session":"ghost"})"),
                    false);
  EXPECT_EQ(StringField(error, "code"), "NotFound");

  // Unknown method at open.
  error = MustParse(
      server.HandleLine(
          R"({"op":"open","config":{"method":"Nope","num_labels":2}})"),
      false);
  EXPECT_EQ(StringField(error, "code"), "NotFound");

  // A label outside the session's universe is rejected, not wrapped into
  // the kernels' C-wide arrays.
  MustParse(server.HandleLine(kOpenRequest), true);
  error = MustParse(
      server.HandleLine(
          R"({"op":"observe","session":"t1","answers":[)"
          R"({"item":0,"worker":0,"labels":[99]}]})"),
      false);
  EXPECT_EQ(StringField(error, "code"), "OutOfRange");

  // Ids beyond 32 bits are rejected, not silently wrapped onto entity 0.
  error = MustParse(
      server.HandleLine(
          R"({"op":"observe","session":"t1","answers":[)"
          R"({"item":4294967296,"worker":0,"labels":[1]}]})"),
      false);
  EXPECT_EQ(StringField(error, "code"), "InvalidArgument");

  // Observe after finalize through the wire.
  MustParse(server.HandleLine(R"({"op":"finalize","session":"t1"})"), true);
  error = MustParse(
      server.HandleLine(
          R"({"op":"observe","session":"t1","answers":[)"
          R"({"item":0,"worker":0,"labels":[1]}]})"),
      false);
  EXPECT_EQ(StringField(error, "code"), "FailedPrecondition");
}

TEST(ConsensusServerTest, ServeHandlesLineDelimitedStreams) {
  ConsensusServer server;
  std::istringstream in(std::string(kOpenRequest) + "\n" +
                        "\n"  // blank lines are ignored
                        R"({"op":"observe","session":"t1","answers":)"
                        R"([{"item":1,"worker":0,"labels":[2]}]})" +
                        "\n" + R"({"op":"finalize","session":"t1"})" + "\n" +
                        R"({"op":"close","session":"t1"})" + "\n");
  std::ostringstream out;
  server.Serve(in, out);

  std::istringstream responses(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(responses, line)) {
    MustParse(line, true);
    ++count;
  }
  EXPECT_EQ(count, 4u);  // one response per non-blank request
}

TEST(ConsensusServerTest, IdleTimeoutExpiresSessionsBetweenRequests) {
  ConsensusServerOptions options;
  options.idle_timeout_seconds = 0.005;
  ConsensusServer server(options);
  MustParse(server.HandleLine(kOpenRequest), true);
  EXPECT_EQ(server.sessions().num_sessions(), 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Any request sweeps idle sessions first.
  const JsonValue list = MustParse(server.HandleLine(R"({"op":"list"})"), true);
  EXPECT_TRUE(list.Find("sessions")->array().empty());
  EXPECT_EQ(server.sessions().num_sessions(), 0u);
}

TEST(ConsensusServerTest, ObserveRequestBuilderRoundTrips) {
  ConsensusServer server;
  MustParse(server.HandleLine(kOpenRequest), true);
  const std::vector<Answer> answers = {{0, 0, LabelSet{1, 3}},
                                       {2, 1, LabelSet{0}}};
  const JsonValue response =
      MustParse(server.HandleLine(server::MakeObserveRequest("t1", answers)), true);
  EXPECT_EQ(NumberField(response, "answers_seen"), 2.0);
}

}  // namespace
}  // namespace cpa
