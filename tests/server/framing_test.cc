#include "server/framing.h"

#include <string>

#include <gtest/gtest.h>

namespace cpa::server {
namespace {

Frame MustNext(FrameDecoder& decoder) {
  auto item = decoder.Next();
  EXPECT_TRUE(item.has_value());
  EXPECT_TRUE(item->error.ok()) << item->error.ToString();
  return item ? std::move(item->frame) : Frame{};
}

TEST(FramingTest, EncodeDecodeRoundTrip) {
  const std::string encoded = EncodeFrame({FrameKind::kBinary, "payload"});
  EXPECT_EQ(encoded.size(), kFrameHeaderBytes + 7);

  FrameDecoder decoder;
  decoder.Append(encoded);
  const Frame frame = MustNext(decoder);
  EXPECT_EQ(frame.kind, FrameKind::kBinary);
  EXPECT_EQ(frame.payload, "payload");
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FramingTest, EmptyPayloadIsAValidFrame) {
  FrameDecoder decoder;
  decoder.Append(EncodeFrame({FrameKind::kJson, ""}));
  const Frame frame = MustNext(decoder);
  EXPECT_EQ(frame.kind, FrameKind::kJson);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FramingTest, PayloadMayContainArbitraryBytes) {
  std::string payload = "a\0b\nc\xff";
  payload.resize(6);  // keep the embedded NUL
  FrameDecoder decoder;
  decoder.Append(EncodeFrame({FrameKind::kBinary, payload}));
  EXPECT_EQ(MustNext(decoder).payload, payload);
}

TEST(FramingTest, SplitDeliveryByteByByte) {
  const std::string encoded = EncodeFrame({FrameKind::kJson, "{\"op\":\"list\"}"});
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < encoded.size(); ++i) {
    decoder.Append(std::string_view(&encoded[i], 1));
    EXPECT_FALSE(decoder.Next().has_value()) << "byte " << i;
  }
  decoder.Append(std::string_view(&encoded[encoded.size() - 1], 1));
  EXPECT_EQ(MustNext(decoder).payload, "{\"op\":\"list\"}");
}

TEST(FramingTest, ManyFramesInOneAppendDrainInOrder) {
  std::string batch;
  for (int i = 0; i < 5; ++i) {
    AppendFrame(batch, FrameKind::kJson, "req" + std::to_string(i));
  }
  FrameDecoder decoder;
  decoder.Append(batch);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(MustNext(decoder).payload, "req" + std::to_string(i));
  }
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FramingTest, OversizedFrameIsSkippedAndConnectionStateSurvives) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  std::string batch;
  AppendFrame(batch, FrameKind::kBinary, std::string(100, 'x'));  // too big
  AppendFrame(batch, FrameKind::kJson, "after");
  decoder.Append(batch);

  auto oversized = decoder.Next();
  ASSERT_TRUE(oversized.has_value());
  EXPECT_FALSE(oversized->error.ok());
  EXPECT_EQ(oversized->error.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(oversized->kind, FrameKind::kBinary);  // reply in the sender's kind

  // The decoder skipped exactly the declared body: the next frame parses.
  EXPECT_EQ(MustNext(decoder).payload, "after");
}

TEST(FramingTest, OversizedFrameSkipsAcrossSplitAppends) {
  FrameDecoder decoder(/*max_frame_bytes=*/8);
  const std::string big = EncodeFrame({FrameKind::kJson, std::string(64, 'y')});
  // Header plus a sliver of body: the error surfaces immediately …
  decoder.Append(big.substr(0, kFrameHeaderBytes + 3));
  auto item = decoder.Next();
  ASSERT_TRUE(item.has_value());
  EXPECT_FALSE(item->error.ok());
  // … and the rest of the body is swallowed as it arrives.
  decoder.Append(big.substr(kFrameHeaderBytes + 3));
  EXPECT_FALSE(decoder.Next().has_value());
  decoder.Append(EncodeFrame({FrameKind::kJson, "next"}));
  EXPECT_EQ(MustNext(decoder).payload, "next");
}

TEST(FramingTest, UnknownKindIsRecoverable) {
  std::string bad = EncodeFrame({FrameKind::kJson, "body"});
  bad[4] = '\x09';  // no such kind
  FrameDecoder decoder;
  decoder.Append(bad);
  decoder.Append(EncodeFrame({FrameKind::kJson, "good"}));

  auto item = decoder.Next();
  ASSERT_TRUE(item.has_value());
  EXPECT_FALSE(item->error.ok());
  EXPECT_EQ(item->kind, FrameKind::kJson);  // error reply falls back to JSON
  EXPECT_EQ(MustNext(decoder).payload, "good");
}

TEST(FramingTest, NonzeroSequenceWithoutFlagIsRejected) {
  // The pre-sequencing "reserved bytes must be zero" contract, byte for
  // byte: an unsequenced header (flags == 0) with sequence bytes set is
  // still a recoverable framing error — old clients see no change.
  std::string bad = EncodeFrame({FrameKind::kJson, "body"});
  bad[6] = '\x2A';
  FrameDecoder decoder;
  decoder.Append(bad);
  auto item = decoder.Next();
  ASSERT_TRUE(item.has_value());
  EXPECT_FALSE(item->error.ok());
  EXPECT_NE(item->error.ToString().find("reserved bytes"), std::string::npos)
      << item->error.ToString();
  EXPECT_FALSE(item->sequenced);
  decoder.Append(EncodeFrame({FrameKind::kJson, "good"}));
  EXPECT_EQ(MustNext(decoder).payload, "good");
}

TEST(FramingTest, UnknownFlagBitsAreRejected) {
  std::string bad = EncodeFrame({FrameKind::kJson, "body"});
  bad[5] = '\x02';  // only bit 0 (sequenced) is defined
  FrameDecoder decoder;
  decoder.Append(bad);
  auto item = decoder.Next();
  ASSERT_TRUE(item.has_value());
  EXPECT_FALSE(item->error.ok());
  EXPECT_NE(item->error.ToString().find("unknown frame flags"),
            std::string::npos)
      << item->error.ToString();
  decoder.Append(EncodeFrame({FrameKind::kJson, "good"}));
  EXPECT_EQ(MustNext(decoder).payload, "good");
}

TEST(FramingTest, LegacyEncodingKeepsReservedBytesZero) {
  // Unsequenced frames must stay byte-identical to the pre-sequencing
  // wire format: flags and sequence bytes all zero.
  const std::string encoded = EncodeFrame({FrameKind::kJson, "x"});
  EXPECT_EQ(encoded[5], '\0');
  EXPECT_EQ(encoded[6], '\0');
  EXPECT_EQ(encoded[7], '\0');
}

TEST(FramingTest, SequencedFrameRoundTrips) {
  std::string encoded;
  AppendSequencedFrame(encoded, FrameKind::kBinary, "payload", 0xBEEF);
  FrameDecoder decoder;
  decoder.Append(encoded);
  auto item = decoder.Next();
  ASSERT_TRUE(item.has_value());
  EXPECT_TRUE(item->error.ok()) << item->error.ToString();
  EXPECT_TRUE(item->sequenced);
  EXPECT_EQ(item->sequence, 0xBEEF);
  EXPECT_TRUE(item->frame.sequenced);
  EXPECT_EQ(item->frame.sequence, 0xBEEF);
  EXPECT_EQ(item->frame.payload, "payload");

  // Re-encoding the decoded frame reproduces the original bytes.
  std::string reencoded;
  AppendFrame(reencoded, item->frame);
  EXPECT_EQ(reencoded, encoded);
}

TEST(FramingTest, SequenceZeroWithFlagSetIsValid) {
  // flags distinguishes "sequenced with id 0" from a legacy frame.
  std::string encoded;
  AppendSequencedFrame(encoded, FrameKind::kJson, "{}", 0);
  FrameDecoder decoder;
  decoder.Append(encoded);
  const Frame frame = MustNext(decoder);
  EXPECT_TRUE(frame.sequenced);
  EXPECT_EQ(frame.sequence, 0);
}

TEST(FramingTest, FramingErrorEchoesSequenceTag) {
  // A recoverable error on a sequenced frame keeps its tag, so the
  // transport can address the error reply to the right request.
  FrameDecoder decoder(/*max_frame_bytes=*/8);
  std::string big;
  AppendSequencedFrame(big, FrameKind::kJson, std::string(64, 'y'), 77);
  decoder.Append(big);
  auto item = decoder.Next();
  ASSERT_TRUE(item.has_value());
  EXPECT_FALSE(item->error.ok());
  EXPECT_TRUE(item->sequenced);
  EXPECT_EQ(item->sequence, 77);
}

TEST(FramingTest, BufferCompactionKeepsLongStreamsBounded) {
  FrameDecoder decoder;
  const std::string frame = EncodeFrame({FrameKind::kJson, std::string(100, 'z')});
  for (int i = 0; i < 1000; ++i) {
    decoder.Append(frame);
    MustNext(decoder);
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace cpa::server
