#include "server/framing.h"

#include <string>

#include <gtest/gtest.h>

namespace cpa::server {
namespace {

Frame MustNext(FrameDecoder& decoder) {
  auto item = decoder.Next();
  EXPECT_TRUE(item.has_value());
  EXPECT_TRUE(item->error.ok()) << item->error.ToString();
  return item ? std::move(item->frame) : Frame{};
}

TEST(FramingTest, EncodeDecodeRoundTrip) {
  const std::string encoded = EncodeFrame({FrameKind::kBinary, "payload"});
  EXPECT_EQ(encoded.size(), kFrameHeaderBytes + 7);

  FrameDecoder decoder;
  decoder.Append(encoded);
  const Frame frame = MustNext(decoder);
  EXPECT_EQ(frame.kind, FrameKind::kBinary);
  EXPECT_EQ(frame.payload, "payload");
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FramingTest, EmptyPayloadIsAValidFrame) {
  FrameDecoder decoder;
  decoder.Append(EncodeFrame({FrameKind::kJson, ""}));
  const Frame frame = MustNext(decoder);
  EXPECT_EQ(frame.kind, FrameKind::kJson);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FramingTest, PayloadMayContainArbitraryBytes) {
  std::string payload = "a\0b\nc\xff";
  payload.resize(6);  // keep the embedded NUL
  FrameDecoder decoder;
  decoder.Append(EncodeFrame({FrameKind::kBinary, payload}));
  EXPECT_EQ(MustNext(decoder).payload, payload);
}

TEST(FramingTest, SplitDeliveryByteByByte) {
  const std::string encoded = EncodeFrame({FrameKind::kJson, "{\"op\":\"list\"}"});
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < encoded.size(); ++i) {
    decoder.Append(std::string_view(&encoded[i], 1));
    EXPECT_FALSE(decoder.Next().has_value()) << "byte " << i;
  }
  decoder.Append(std::string_view(&encoded[encoded.size() - 1], 1));
  EXPECT_EQ(MustNext(decoder).payload, "{\"op\":\"list\"}");
}

TEST(FramingTest, ManyFramesInOneAppendDrainInOrder) {
  std::string batch;
  for (int i = 0; i < 5; ++i) {
    AppendFrame(batch, FrameKind::kJson, "req" + std::to_string(i));
  }
  FrameDecoder decoder;
  decoder.Append(batch);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(MustNext(decoder).payload, "req" + std::to_string(i));
  }
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FramingTest, OversizedFrameIsSkippedAndConnectionStateSurvives) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  std::string batch;
  AppendFrame(batch, FrameKind::kBinary, std::string(100, 'x'));  // too big
  AppendFrame(batch, FrameKind::kJson, "after");
  decoder.Append(batch);

  auto oversized = decoder.Next();
  ASSERT_TRUE(oversized.has_value());
  EXPECT_FALSE(oversized->error.ok());
  EXPECT_EQ(oversized->error.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(oversized->kind, FrameKind::kBinary);  // reply in the sender's kind

  // The decoder skipped exactly the declared body: the next frame parses.
  EXPECT_EQ(MustNext(decoder).payload, "after");
}

TEST(FramingTest, OversizedFrameSkipsAcrossSplitAppends) {
  FrameDecoder decoder(/*max_frame_bytes=*/8);
  const std::string big = EncodeFrame({FrameKind::kJson, std::string(64, 'y')});
  // Header plus a sliver of body: the error surfaces immediately …
  decoder.Append(big.substr(0, kFrameHeaderBytes + 3));
  auto item = decoder.Next();
  ASSERT_TRUE(item.has_value());
  EXPECT_FALSE(item->error.ok());
  // … and the rest of the body is swallowed as it arrives.
  decoder.Append(big.substr(kFrameHeaderBytes + 3));
  EXPECT_FALSE(decoder.Next().has_value());
  decoder.Append(EncodeFrame({FrameKind::kJson, "next"}));
  EXPECT_EQ(MustNext(decoder).payload, "next");
}

TEST(FramingTest, UnknownKindIsRecoverable) {
  std::string bad = EncodeFrame({FrameKind::kJson, "body"});
  bad[4] = '\x09';  // no such kind
  FrameDecoder decoder;
  decoder.Append(bad);
  decoder.Append(EncodeFrame({FrameKind::kJson, "good"}));

  auto item = decoder.Next();
  ASSERT_TRUE(item.has_value());
  EXPECT_FALSE(item->error.ok());
  EXPECT_EQ(item->kind, FrameKind::kJson);  // error reply falls back to JSON
  EXPECT_EQ(MustNext(decoder).payload, "good");
}

TEST(FramingTest, NonzeroReservedBytesAreRejected) {
  std::string bad = EncodeFrame({FrameKind::kJson, "body"});
  bad[5] = '\x01';
  FrameDecoder decoder;
  decoder.Append(bad);
  auto item = decoder.Next();
  ASSERT_TRUE(item.has_value());
  EXPECT_FALSE(item->error.ok());
  decoder.Append(EncodeFrame({FrameKind::kJson, "good"}));
  EXPECT_EQ(MustNext(decoder).payload, "good");
}

TEST(FramingTest, BufferCompactionKeepsLongStreamsBounded) {
  FrameDecoder decoder;
  const std::string frame = EncodeFrame({FrameKind::kJson, std::string(100, 'z')});
  for (int i = 0; i < 1000; ++i) {
    decoder.Append(frame);
    MustNext(decoder);
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace cpa::server
