/// \file session_checkpoint_test.cc
/// \brief Session-level checkpoint/restore: SessionManager round-trips and
/// the `checkpoint`/`restore` wire ops in both encodings.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/binary_codec.h"
#include "server/consensus_server.h"
#include "server/protocol.h"
#include "server/session_manager.h"
#include "util/json.h"
#include "util/string_utils.h"

namespace cpa {
namespace {

using server::BinaryResponse;
using server::Frame;
using server::FrameKind;

EngineConfig SviConfig() {
  EngineConfig config;
  config.method = "CPA-SVI";
  config.num_items = 6;
  config.num_workers = 16;
  config.num_labels = 4;
  config.cpa.max_communities = 3;
  config.cpa.max_clusters = 8;
  return config;
}

const std::vector<Answer> kFirstBatch = {{0, 0, LabelSet{1}},
                                         {0, 1, LabelSet{1, 2}},
                                         {1, 2, LabelSet{3}},
                                         {2, 3, LabelSet{0}}};
const std::vector<Answer> kSecondBatch = {{3, 4, LabelSet{2}},
                                          {1, 5, LabelSet{3}},
                                          {4, 6, LabelSet{0, 1}},
                                          {5, 7, LabelSet{2}}};

void ExpectSamePredictions(const SharedSnapshot& a, const SharedSnapshot& b) {
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->predictions.size(), b->predictions.size());
  for (std::size_t i = 0; i < a->predictions.size(); ++i) {
    EXPECT_EQ(a->predictions[i], b->predictions[i]) << "item " << i;
  }
  EXPECT_EQ(a->label_scores.MaxAbsDiff(b->label_scores), 0.0);
  EXPECT_EQ(a->batches_seen, b->batches_seen);
  EXPECT_EQ(a->answers_seen, b->answers_seen);
  EXPECT_EQ(a->learning_rate, b->learning_rate);
}

// Checkpoint on one manager, restore on another (the worker-migration
// shape), continue both: identical sessions, bit for bit.
TEST(SessionCheckpointTest, MigrationAcrossManagersIsBitIdentical) {
  SessionManager manager_a;
  SessionManager manager_b;

  ASSERT_TRUE(manager_a.Open(SviConfig(), "mig").ok());
  ASSERT_TRUE(manager_a.Observe("mig", kFirstBatch).ok());
  ASSERT_TRUE(manager_a.Snapshot("mig").ok());

  const auto state = manager_a.Checkpoint("mig");
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  // Checkpoint does not disturb the source session.
  ASSERT_TRUE(manager_a.Observe("mig", kSecondBatch).ok());

  const auto ack = manager_b.Restore(state.value());
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack.value().session_id, "mig");
  EXPECT_EQ(ack.value().batches_seen, 1u);
  EXPECT_EQ(ack.value().answers_seen, kFirstBatch.size());

  // The published (poll-path) snapshot travels with the blob.
  const auto polled = manager_b.Snapshot("mig", /*refresh=*/false);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled.value()->answers_seen, kFirstBatch.size());

  ASSERT_TRUE(manager_b.Observe("mig", kSecondBatch).ok());
  const auto final_a = manager_a.Finalize("mig");
  const auto final_b = manager_b.Finalize("mig");
  ASSERT_TRUE(final_a.ok());
  ASSERT_TRUE(final_b.ok());
  ExpectSamePredictions(final_a.value(), final_b.value());
}

TEST(SessionCheckpointTest, RestoreUnderExplicitIdAndDuplicateRejection) {
  SessionManager manager;
  ASSERT_TRUE(manager.Open(SviConfig(), "orig").ok());
  ASSERT_TRUE(manager.Observe("orig", kFirstBatch).ok());
  const auto state = manager.Checkpoint("orig");
  ASSERT_TRUE(state.ok());

  // Restoring under the saved id collides with the live session.
  EXPECT_EQ(manager.Restore(state.value()).status().code(),
            StatusCode::kInvalidArgument);

  // An explicit target id forks the session instead.
  const auto forked = manager.Restore(state.value(), "fork");
  ASSERT_TRUE(forked.ok()) << forked.status().ToString();
  EXPECT_EQ(forked.value().session_id, "fork");
  EXPECT_EQ(manager.num_sessions(), 2u);

  ASSERT_TRUE(manager.Observe("fork", kSecondBatch).ok());
  ASSERT_TRUE(manager.Observe("orig", kSecondBatch).ok());
  const auto final_orig = manager.Finalize("orig");
  const auto final_fork = manager.Finalize("fork");
  ASSERT_TRUE(final_orig.ok());
  ASSERT_TRUE(final_fork.ok());
  ExpectSamePredictions(final_orig.value(), final_fork.value());
}

TEST(SessionCheckpointTest, CorruptSessionBlobsAreRejected) {
  SessionManager manager;
  ASSERT_TRUE(manager.Open(SviConfig(), "c").ok());
  ASSERT_TRUE(manager.Observe("c", kFirstBatch).ok());
  const auto state = manager.Checkpoint("c");
  ASSERT_TRUE(state.ok());
  const std::string& blob = state.value();

  SessionManager target;
  EXPECT_FALSE(target.Restore("").ok());
  {
    std::string bad = blob;
    bad[0] ^= 0x11;  // magic
    EXPECT_FALSE(target.Restore(bad).ok());
  }
  {
    std::string bad = blob;
    bad[4] = '\x66';  // version
    EXPECT_FALSE(target.Restore(bad).ok());
  }
  EXPECT_FALSE(target.Restore(blob + "tail").ok());
  // Every strict prefix fails cleanly and leaves no half-restored session.
  for (std::size_t length = 0; length < blob.size(); length += 7) {
    EXPECT_FALSE(
        target.Restore(std::string_view(blob).substr(0, length)).ok())
        << "prefix of " << length << " bytes";
  }
  EXPECT_EQ(target.num_sessions(), 0u);
  // The intact blob restores fine afterwards (control).
  EXPECT_TRUE(target.Restore(blob).ok());
}

TEST(SessionCheckpointTest, JsonWireOpsCarryStateAsBase64) {
  ConsensusServer worker_a;
  ConsensusServer worker_b;

  auto open = JsonValue::Parse(worker_a.HandleLine(
      R"({"op":"open","session":"j1","config":{"method":"CPA-SVI",)"
      R"("num_items":6,"num_workers":16,"num_labels":4}})"));
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(open.value().Find("ok")->bool_value());
  ASSERT_TRUE(
      JsonValue::Parse(
          worker_a.HandleLine(server::MakeObserveRequest("j1", kFirstBatch)))
          .value()
          .Find("ok")
          ->bool_value());

  const auto checkpoint = JsonValue::Parse(
      worker_a.HandleLine(R"({"op":"checkpoint","session":"j1"})"));
  ASSERT_TRUE(checkpoint.ok());
  ASSERT_TRUE(checkpoint.value().Find("ok")->bool_value())
      << worker_a.HandleLine(R"({"op":"checkpoint","session":"j1"})");
  const std::string state_b64 =
      checkpoint.value().Find("state")->string_value();
  // The wire field is genuine base64 of the binary blob.
  const auto decoded = Base64Decode(state_b64);
  ASSERT_TRUE(decoded.ok());
  EXPECT_GT(decoded.value().size(), 0u);

  const auto restore = JsonValue::Parse(worker_b.HandleLine(
      StrFormat(R"({"op":"restore","state":"%s"})", state_b64.c_str())));
  ASSERT_TRUE(restore.ok());
  ASSERT_TRUE(restore.value().Find("ok")->bool_value());
  EXPECT_EQ(restore.value().Find("session")->string_value(), "j1");
  EXPECT_EQ(restore.value().Find("answers_seen")->number_value(), 4.0);

  // Continue on both workers: identical finals over the wire.
  ASSERT_TRUE(
      JsonValue::Parse(
          worker_a.HandleLine(server::MakeObserveRequest("j1", kSecondBatch)))
          .value()
          .Find("ok")
          ->bool_value());
  ASSERT_TRUE(
      JsonValue::Parse(
          worker_b.HandleLine(server::MakeObserveRequest("j1", kSecondBatch)))
          .value()
          .Find("ok")
          ->bool_value());
  const std::string final_a =
      worker_a.HandleLine(R"({"op":"finalize","session":"j1"})");
  const std::string final_b =
      worker_b.HandleLine(R"({"op":"finalize","session":"j1"})");
  EXPECT_EQ(final_a, final_b);

  // Bad base64 is rejected at parse time.
  const auto bad = JsonValue::Parse(
      worker_b.HandleLine(R"({"op":"restore","state":"!!!not-base64"})"));
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().Find("ok")->bool_value());
}

TEST(SessionCheckpointTest, BinaryWireOpsCarryStateRaw) {
  ConsensusServer worker_a;
  ConsensusServer worker_b;

  ASSERT_TRUE(worker_a.sessions().Open(SviConfig(), "b1").ok());
  ASSERT_TRUE(worker_a.sessions().Observe("b1", kFirstBatch).ok());

  // checkpoint over binary frames.
  const Frame checkpoint_reply = worker_a.HandleFrame(
      {FrameKind::kBinary, server::EncodeCheckpointRequest("b1")});
  ASSERT_EQ(checkpoint_reply.kind, FrameKind::kBinary);
  const auto decoded = server::DecodeBinaryResponse(checkpoint_reply.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(decoded.value().ok) << decoded.value().error.ToString();
  EXPECT_EQ(decoded.value().session, "b1");
  const std::string& state = decoded.value().state;
  EXPECT_GT(state.size(), 0u);

  // restore over binary frames, under a new id.
  const Frame restore_reply = worker_b.HandleFrame(
      {FrameKind::kBinary, server::EncodeRestoreRequest("moved", state)});
  ASSERT_EQ(restore_reply.kind, FrameKind::kBinary);
  const auto ack = server::DecodeBinaryResponse(restore_reply.payload);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_TRUE(ack.value().ok) << ack.value().error.ToString();
  EXPECT_EQ(ack.value().session, "moved");
  EXPECT_EQ(ack.value().ack.batches_seen, 1u);
  EXPECT_EQ(ack.value().ack.answers_seen, 4u);

  // restore with empty session falls back to the id in the blob.
  ConsensusServer worker_c;
  const Frame blob_id_reply = worker_c.HandleFrame(
      {FrameKind::kBinary, server::EncodeRestoreRequest("", state)});
  const auto blob_id_ack = server::DecodeBinaryResponse(blob_id_reply.payload);
  ASSERT_TRUE(blob_id_ack.ok());
  ASSERT_TRUE(blob_id_ack.value().ok) << blob_id_ack.value().error.ToString();
  EXPECT_EQ(blob_id_ack.value().session, "b1");

  // Continue original and migrated sessions: identical finals.
  ASSERT_TRUE(worker_a.sessions().Observe("b1", kSecondBatch).ok());
  ASSERT_TRUE(worker_b.sessions().Observe("moved", kSecondBatch).ok());
  const auto final_a = worker_a.sessions().Finalize("b1");
  const auto final_b = worker_b.sessions().Finalize("moved");
  ASSERT_TRUE(final_a.ok());
  ASSERT_TRUE(final_b.ok());
  ExpectSamePredictions(final_a.value(), final_b.value());

  // Truncated binary restore request: clean error reply.
  std::string truncated = server::EncodeRestoreRequest("x", state);
  truncated.resize(truncated.size() / 2);
  const Frame error_reply =
      worker_b.HandleFrame({FrameKind::kBinary, truncated});
  const auto error = server::DecodeBinaryResponse(error_reply.payload);
  ASSERT_TRUE(error.ok());
  EXPECT_FALSE(error.value().ok);
}

TEST(SessionCheckpointTest, CheckpointUnknownSessionFails) {
  ConsensusServer server;
  const auto reply = JsonValue::Parse(
      server.HandleLine(R"({"op":"checkpoint","session":"ghost"})"));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply.value().Find("ok")->bool_value());
  EXPECT_EQ(reply.value().Find("code")->string_value(), "NotFound");
}

}  // namespace
}  // namespace cpa
