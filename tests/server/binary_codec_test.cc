#include "server/binary_codec.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"
#include "util/json.h"

namespace cpa::server {
namespace {

/// The JSON equivalent of a binary request must parse to the same
/// `Request` — the two encodings are views of one protocol.
void ExpectSameRequest(const Request& binary, const Request& json) {
  EXPECT_EQ(binary.op, json.op);
  EXPECT_EQ(binary.session, json.session);
  EXPECT_EQ(binary.refresh, json.refresh);
  EXPECT_EQ(binary.include_predictions, json.include_predictions);
  ASSERT_EQ(binary.answers.size(), json.answers.size());
  for (std::size_t i = 0; i < binary.answers.size(); ++i) {
    EXPECT_EQ(binary.answers[i].item, json.answers[i].item);
    EXPECT_EQ(binary.answers[i].worker, json.answers[i].worker);
    EXPECT_EQ(binary.answers[i].labels, json.answers[i].labels);
  }
}

TEST(BinaryCodecTest, ObserveRequestRoundTripMatchesJson) {
  const std::vector<Answer> answers = {{7, 3, LabelSet{1, 4}},
                                       {0, 0, LabelSet{2}},
                                       {12, 9, LabelSet{}}};
  const std::string body = EncodeObserveRequest("sess-1", answers);

  auto decoded = DecodeBinaryRequest(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  auto json = ParseRequest(MakeObserveRequest("sess-1", answers));
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  ExpectSameRequest(decoded.value(), json.value());
}

TEST(BinaryCodecTest, SnapshotRequestRoundTripMatchesJson) {
  for (const bool refresh : {true, false}) {
    for (const bool predictions : {true, false}) {
      const std::string body = EncodeSnapshotRequest("s9", refresh, predictions);
      auto decoded = DecodeBinaryRequest(body);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

      const std::string json_line =
          std::string(R"({"op":"snapshot","session":"s9","refresh":)") +
          (refresh ? "true" : "false") + R"(,"predictions":)" +
          (predictions ? "true" : "false") + "}";
      auto json = ParseRequest(json_line);
      ASSERT_TRUE(json.ok()) << json.status().ToString();
      ExpectSameRequest(decoded.value(), json.value());
    }
  }
}

TEST(BinaryCodecTest, FinalizeRequestRoundTrip) {
  auto decoded = DecodeBinaryRequest(EncodeFinalizeRequest("fin", false));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().op, Request::Op::kFinalize);
  EXPECT_EQ(decoded.value().session, "fin");
  EXPECT_FALSE(decoded.value().include_predictions);
}

TEST(BinaryCodecTest, ObserveAckRoundTrip) {
  Response response;
  response.op = Request::Op::kObserve;
  response.session = "s2";
  response.ack.batches_seen = 11;
  response.ack.answers_seen = 4242;
  response.ack.delta.changed_items = 17;
  response.ack.delta.snapshot_batches_seen = 10;
  response.ack.delta.snapshot_answers_seen = 4000;

  auto decoded = DecodeBinaryResponse(EncodeBinaryResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const BinaryResponse& ack = decoded.value();
  EXPECT_TRUE(ack.ok);
  EXPECT_EQ(ack.op, Request::Op::kObserve);
  EXPECT_EQ(ack.session, "s2");
  EXPECT_EQ(ack.ack.batches_seen, 11u);
  EXPECT_EQ(ack.ack.answers_seen, 4242u);
  EXPECT_EQ(ack.ack.delta.changed_items, 17u);
  EXPECT_EQ(ack.ack.delta.snapshot_batches_seen, 10u);
  EXPECT_EQ(ack.ack.delta.snapshot_answers_seen, 4000u);
}

ConsensusSnapshot MakeSnapshot() {
  ConsensusSnapshot snapshot;
  snapshot.method = "CPA-SVI";
  snapshot.predictions = {LabelSet{0, 2}, LabelSet{}, LabelSet{1}};
  snapshot.fit_stats.iterations = 6;
  snapshot.batches_seen = 3;
  snapshot.answers_seen = 99;
  snapshot.learning_rate = 0.125;
  snapshot.finalized = true;
  return snapshot;
}

TEST(BinaryCodecTest, SnapshotResponseRoundTripMatchesJsonFields) {
  Response response;
  response.op = Request::Op::kFinalize;
  response.session = "s3";
  response.snapshot = std::make_shared<const ConsensusSnapshot>(MakeSnapshot());
  response.include_predictions = true;

  auto decoded = DecodeBinaryResponse(EncodeBinaryResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const BinaryResponse& snap = decoded.value();
  EXPECT_TRUE(snap.ok);
  EXPECT_EQ(snap.op, Request::Op::kFinalize);
  EXPECT_EQ(snap.session, "s3");
  EXPECT_EQ(snap.method, "CPA-SVI");
  EXPECT_EQ(snap.batches_seen, 3u);
  EXPECT_EQ(snap.answers_seen, 99u);
  EXPECT_EQ(snap.iterations, 6u);
  EXPECT_DOUBLE_EQ(snap.learning_rate, 0.125);
  EXPECT_TRUE(snap.finalized);
  ASSERT_TRUE(snap.has_predictions);
  ASSERT_EQ(snap.predictions.size(), 3u);
  EXPECT_EQ(snap.predictions[0], (LabelSet{0, 2}));
  EXPECT_TRUE(snap.predictions[1].empty());
  EXPECT_EQ(snap.predictions[2], (LabelSet{1}));

  // Field-for-field agreement with the JSON encoding of the same response.
  auto json = JsonValue::Parse(EncodeJsonResponse(response));
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json.value().Find("method")->string_value(), snap.method);
  EXPECT_EQ(json.value().Find("batches_seen")->number_value(),
            static_cast<double>(snap.batches_seen));
  EXPECT_EQ(json.value().Find("answers_seen")->number_value(),
            static_cast<double>(snap.answers_seen));
  EXPECT_EQ(json.value().Find("finalized")->bool_value(), snap.finalized);
  const auto& rows = json.value().Find("predictions")->array();
  ASSERT_EQ(rows.size(), snap.predictions.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(rows[i].array().size(), snap.predictions[i].size());
    std::size_t j = 0;
    for (LabelId label : snap.predictions[i]) {
      EXPECT_EQ(rows[i].array()[j++].number_value(), static_cast<double>(label));
    }
  }
}

TEST(BinaryCodecTest, CounterOnlySnapshotOmitsPredictions) {
  Response response;
  response.op = Request::Op::kSnapshot;
  response.session = "s4";
  response.snapshot = std::make_shared<const ConsensusSnapshot>(MakeSnapshot());
  response.include_predictions = false;

  auto decoded = DecodeBinaryResponse(EncodeBinaryResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().has_predictions);
  EXPECT_TRUE(decoded.value().predictions.empty());
  EXPECT_EQ(decoded.value().answers_seen, 99u);
}

TEST(BinaryCodecTest, ErrorResponseRoundTrip) {
  Response response;
  response.op = Request::Op::kObserve;
  response.session = "ghost";
  response.status = Status::NotFound("no session 'ghost'");

  auto decoded = DecodeBinaryResponse(EncodeBinaryResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().ok);
  EXPECT_EQ(decoded.value().error.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.value().error.message(), "no session 'ghost'");
  EXPECT_EQ(decoded.value().error_op, "observe");
  EXPECT_EQ(decoded.value().session, "ghost");
}

TEST(BinaryCodecTest, PreDispatchErrorEncodesWithoutOp) {
  const std::string body =
      EncodeBinaryError("", "", Status::InvalidArgument("bad frame"));
  auto decoded = DecodeBinaryResponse(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().ok);
  EXPECT_TRUE(decoded.value().error_op.empty());
  EXPECT_EQ(decoded.value().error.code(), StatusCode::kInvalidArgument);
}

TEST(BinaryCodecTest, TruncatedPayloadsFailCleanly) {
  const std::vector<Answer> answers = {{1, 2, LabelSet{3}}};
  const std::string observe = EncodeObserveRequest("s", answers);
  // Every strict prefix must decode to an error, never crash or hang.
  for (std::size_t cut = 0; cut < observe.size(); ++cut) {
    auto decoded = DecodeBinaryRequest(observe.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }

  Response response;
  response.op = Request::Op::kSnapshot;
  response.session = "s";
  response.snapshot = std::make_shared<const ConsensusSnapshot>(MakeSnapshot());
  const std::string snapshot = EncodeBinaryResponse(response);
  for (std::size_t cut = 0; cut < snapshot.size(); ++cut) {
    EXPECT_FALSE(DecodeBinaryResponse(snapshot.substr(0, cut)).ok());
  }
}

TEST(BinaryCodecTest, TrailingBytesAreRejected) {
  std::string body = EncodeSnapshotRequest("s", true, true);
  body.push_back('\x00');
  EXPECT_FALSE(DecodeBinaryRequest(body).ok());
}

TEST(BinaryCodecTest, UnknownTypesAndGarbageAreRejected) {
  EXPECT_FALSE(DecodeBinaryRequest("").ok());
  EXPECT_FALSE(DecodeBinaryRequest("\x42").ok());
  EXPECT_FALSE(DecodeBinaryResponse("\x42").ok());
  std::string garbage(64, '\xee');
  EXPECT_FALSE(DecodeBinaryRequest(garbage).ok());
  EXPECT_FALSE(DecodeBinaryResponse(garbage).ok());
}

TEST(BinaryCodecTest, LyingAnswerCountIsRejectedBeforeAllocation) {
  // Header claims 2^31 answers but the body holds none.
  std::string body;
  body.push_back('\x01');  // observe
  body.push_back('\x01');  // session "s" (u16 length ...
  body.push_back('\0');    //  ... then the byte)
  body.push_back('s');
  body += std::string("\x00\x00\x00\x80", 4);  // count = 2^31
  auto decoded = DecodeBinaryRequest(body);
  EXPECT_FALSE(decoded.ok());
}

TEST(BinaryCodecTest, EmptySessionIsRejected) {
  EXPECT_FALSE(DecodeBinaryRequest(EncodeSnapshotRequest("", true, true)).ok());
}

}  // namespace
}  // namespace cpa::server
