#include "server/event_loop_transport.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/binary_codec.h"
#include "server/consensus_server.h"
#include "server/protocol.h"
#include "server/router.h"
#include "server/tcp_client.h"
#include "server/tcp_transport.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/string_utils.h"

namespace cpa {
namespace {

using server::BinaryResponse;
using server::Frame;
using server::FrameKind;
using server::TcpFrameClient;

/// An epoll transport over a fresh server, bound to an ephemeral port.
struct EventLoopServer {
  explicit EventLoopServer(TransportOptions options = {},
                           std::size_t num_threads = 1) {
    ConsensusServerOptions server_options;
    server_options.sessions.num_threads = num_threads;
    consensus = std::make_unique<ConsensusServer>(server_options);
    transport = std::make_unique<EventLoopTransport>(*consensus, options);
    const Status started = transport->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  TcpFrameClient Connect() {
    auto client = TcpFrameClient::Connect("127.0.0.1", transport->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::unique_ptr<ConsensusServer> consensus;
  std::unique_ptr<EventLoopTransport> transport;
};

std::string OpenRequestLine(const std::string& session,
                            std::size_t num_items = 4) {
  return StrFormat(
      R"({"op":"open","session":"%s","config":{"method":"MV",)"
      R"("num_items":%zu,"num_workers":16,"num_labels":4}})",
      session.c_str(), num_items);
}

JsonValue MustParseJson(const Frame& frame, bool expect_ok) {
  EXPECT_EQ(frame.kind, FrameKind::kJson);
  auto parsed = JsonValue::Parse(frame.payload);
  EXPECT_TRUE(parsed.ok()) << frame.payload;
  const JsonValue* ok = parsed.value().Find("ok");
  EXPECT_NE(ok, nullptr) << frame.payload;
  if (ok != nullptr) {
    EXPECT_EQ(ok->bool_value(), expect_ok) << frame.payload;
  }
  return parsed.value();
}

BinaryResponse MustParseBinary(const Frame& frame) {
  EXPECT_EQ(frame.kind, FrameKind::kBinary);
  auto decoded = server::DecodeBinaryResponse(frame.payload);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return decoded.ok() ? decoded.value() : BinaryResponse{};
}

Result<Frame> MustRoundtrip(TcpFrameClient& client, FrameKind kind,
                            std::string_view payload) {
  auto reply = client.Roundtrip(kind, payload);
  EXPECT_TRUE(reply.ok()) << reply.status().ToString();
  return reply;
}

const std::vector<Answer> kAnswers = {{0, 0, LabelSet{1}},
                                      {0, 1, LabelSet{1, 2}},
                                      {1, 2, LabelSet{3}},
                                      {2, 3, LabelSet{0}}};

TEST(EventLoopTransportTest, JsonAndBinaryLifecycleOverRealSocket) {
  EventLoopServer server;
  TcpFrameClient client = server.Connect();

  MustParseJson(
      MustRoundtrip(client, FrameKind::kJson, OpenRequestLine("ep1")).value(),
      true);
  const JsonValue ack = MustParseJson(
      MustRoundtrip(client, FrameKind::kJson,
                    server::MakeObserveRequest("ep1", kAnswers))
          .value(),
      true);
  EXPECT_EQ(ack.Find("answers_seen")->number_value(), 4.0);

  const BinaryResponse snapshot = MustParseBinary(
      MustRoundtrip(client, FrameKind::kBinary,
                    server::EncodeSnapshotRequest("ep1", /*refresh=*/true,
                                                  /*include_predictions=*/true))
          .value());
  EXPECT_TRUE(snapshot.ok);
  EXPECT_EQ(snapshot.predictions.size(), 4u);

  const BinaryResponse finalized = MustParseBinary(
      MustRoundtrip(client, FrameKind::kBinary,
                    server::EncodeFinalizeRequest("ep1", true))
          .value());
  EXPECT_TRUE(finalized.finalized);
  MustParseJson(MustRoundtrip(client, FrameKind::kJson,
                              R"({"op":"close","session":"ep1"})")
                    .value(),
                true);
  EXPECT_EQ(server.consensus->sessions().num_sessions(), 0u);
  client.Close();

  server.transport->Shutdown();
  const TransportStats stats = server.transport->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.framing_errors, 0u);
  EXPECT_EQ(stats.frames_in, stats.frames_out);
  EXPECT_GT(stats.recv_calls, 0u);
  EXPECT_GT(stats.send_calls, 0u);
}

TEST(EventLoopTransportTest, BothTransportsNegotiateSequencing) {
  // Sequence-tag echo is a property of *both* transports — on the
  // ordered one, in-order completion is a valid completion order — so
  // the negotiation probe succeeds against either.
  {
    EventLoopServer server;
    TcpFrameClient client = server.Connect();
    auto negotiated = client.NegotiateSequencing();
    ASSERT_TRUE(negotiated.ok()) << negotiated.status().ToString();
    EXPECT_TRUE(negotiated.value());
    // Legacy traffic on the same connection stays untagged.
    const Frame reply =
        MustRoundtrip(client, FrameKind::kJson, R"({"op":"methods"})").value();
    EXPECT_FALSE(reply.sequenced);
    EXPECT_EQ(reply.sequence, 0);
  }
  {
    ConsensusServer consensus;
    TcpTransport transport(consensus);
    ASSERT_TRUE(transport.Start().ok());
    auto connected = TcpFrameClient::Connect("127.0.0.1", transport.port());
    ASSERT_TRUE(connected.ok());
    TcpFrameClient client = std::move(connected).value();
    auto negotiated = client.NegotiateSequencing();
    ASSERT_TRUE(negotiated.ok()) << negotiated.status().ToString();
    EXPECT_TRUE(negotiated.value());
    client.Close();
    transport.Shutdown();
  }
}

TEST(EventLoopTransportTest, SequencedFramingErrorRepliesWithTag) {
  TransportOptions options;
  options.max_frame_bytes = 256;
  EventLoopServer server(options);
  TcpFrameClient client = server.Connect();

  std::string burst;
  server::AppendSequencedFrame(burst, FrameKind::kJson,
                               std::string(4096, ' '), 7);
  ASSERT_TRUE(client.SendRaw(burst).ok());
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply.value().sequenced);
  EXPECT_EQ(reply.value().sequence, 7);
  MustParseJson(reply.value(), false);

  // The connection survives the rejection.
  MustParseJson(
      MustRoundtrip(client, FrameKind::kJson, OpenRequestLine("alive")).value(),
      true);
}

/// One fuzz request: its encoded sequenced frame plus what the reply
/// must contain.
struct FuzzExpectation {
  std::size_t session = 0;
  bool is_observe = false;
  std::size_t batches_seen = 0;  ///< observes: per-session serial counter
  bool binary = false;
};

TEST(EventLoopTransportTest, OutOfOrderPipeliningFuzzMatchesSerialExecution) {
  // The ordering contract under fire: several sessions' observes and
  // polls, shuffled into one pipelined burst on one connection, must
  // (a) answer every request under its own sequence id, (b) keep each
  // session's observes serial (ack counters in arrival order), and
  // (c) leave per-session state identical to serial execution.
  constexpr std::size_t kSessions = 3;
  constexpr std::size_t kBatches = 6;
  constexpr std::size_t kRounds = 2;

  for (std::size_t round = 0; round < kRounds; ++round) {
    Rng rng(20180417 + round);
    // Distinct (item, worker) per (session, batch) so observes never
    // collide; the per-session stream is the same for both runs.
    const auto batch_answers = [](std::size_t session, std::size_t batch) {
      return std::vector<Answer>{
          {static_cast<ItemId>(batch), static_cast<WorkerId>(2 * session),
           LabelSet{static_cast<LabelId>(session % 4)}},
          {static_cast<ItemId>(batch), static_cast<WorkerId>(2 * session + 1),
           LabelSet{static_cast<LabelId>((session + batch) % 4)}}};
    };
    const auto session_name = [&](std::size_t session) {
      return StrFormat("fuzz-%zu-%zu", round, session);
    };

    // Serial reference: the same streams, one blocking roundtrip at a
    // time, on a fresh server.
    std::vector<std::vector<LabelSet>> reference(kSessions);
    {
      EventLoopServer server;
      TcpFrameClient client = server.Connect();
      for (std::size_t s = 0; s < kSessions; ++s) {
        MustParseJson(MustRoundtrip(client, FrameKind::kJson,
                                    OpenRequestLine(session_name(s), 8))
                          .value(),
                      true);
        for (std::size_t b = 0; b < kBatches; ++b) {
          MustParseBinary(
              MustRoundtrip(client, FrameKind::kBinary,
                            server::EncodeObserveRequest(session_name(s),
                                                         batch_answers(s, b)))
                  .value());
        }
        reference[s] =
            MustParseBinary(
                MustRoundtrip(
                    client, FrameKind::kBinary,
                    server::EncodeFinalizeRequest(session_name(s), true))
                    .value())
                .predictions;
      }
    }

    // Fuzzed run: same streams, one shuffled sequenced burst.
    EventLoopServer server({}, /*num_threads=*/2);
    TcpFrameClient client = server.Connect();
    for (std::size_t s = 0; s < kSessions; ++s) {
      MustParseJson(MustRoundtrip(client, FrameKind::kJson,
                                  OpenRequestLine(session_name(s), 8))
                        .value(),
                    true);
    }

    std::string burst;
    std::map<std::uint16_t, FuzzExpectation> expected;
    std::uint16_t next_seq = 1;
    std::vector<std::size_t> sent(kSessions, 0);
    const auto append_poll = [&](std::size_t s) {
      FuzzExpectation expectation;
      expectation.session = s;
      expectation.binary = rng.NextBernoulli(0.5);
      if (expectation.binary) {
        server::AppendSequencedFrame(
            burst, FrameKind::kBinary,
            server::EncodeSnapshotRequest(session_name(s), /*refresh=*/false,
                                          /*include_predictions=*/false),
            next_seq);
      } else {
        server::AppendSequencedFrame(
            burst, FrameKind::kJson,
            StrFormat("{\"op\":\"snapshot\",\"session\":\"%s\","
                      "\"refresh\":false,\"predictions\":false}",
                      session_name(s).c_str()),
            next_seq);
      }
      expected[next_seq++] = expectation;
    };
    while (true) {
      // Pick a random session that still has observes to send; keep each
      // session's own observes in stream order.
      std::vector<std::size_t> open_sessions;
      for (std::size_t s = 0; s < kSessions; ++s) {
        if (sent[s] < kBatches) open_sessions.push_back(s);
      }
      if (open_sessions.empty()) break;
      const std::size_t s = open_sessions[static_cast<std::size_t>(
          rng.NextBounded(open_sessions.size()))];
      FuzzExpectation expectation;
      expectation.session = s;
      expectation.is_observe = true;
      expectation.batches_seen = ++sent[s];
      expectation.binary = rng.NextBernoulli(0.5);
      if (expectation.binary) {
        server::AppendSequencedFrame(
            burst, FrameKind::kBinary,
            server::EncodeObserveRequest(session_name(s),
                                         batch_answers(s, sent[s] - 1)),
            next_seq);
      } else {
        server::AppendSequencedFrame(
            burst, FrameKind::kJson,
            server::MakeObserveRequest(session_name(s),
                                       batch_answers(s, sent[s] - 1)),
            next_seq);
      }
      expected[next_seq++] = expectation;
      if (rng.NextBernoulli(0.5)) {
        append_poll(static_cast<std::size_t>(rng.NextBounded(kSessions)));
      }
    }
    ASSERT_TRUE(client.SendRaw(burst).ok());

    // Every reply must match its request by sequence id — arrival order
    // is free — and observe acks must show the serial per-session count.
    std::size_t remaining = expected.size();
    while (remaining-- > 0) {
      auto read = client.ReadFrame();
      ASSERT_TRUE(read.ok()) << read.status().ToString();
      const Frame& reply = read.value();
      ASSERT_TRUE(reply.sequenced);
      const auto it = expected.find(reply.sequence);
      ASSERT_NE(it, expected.end())
          << "unknown or duplicate sequence id " << reply.sequence;
      const FuzzExpectation& expectation = it->second;
      if (expectation.binary) {
        const BinaryResponse response = MustParseBinary(reply);
        EXPECT_TRUE(response.ok);
        if (expectation.is_observe) {
          EXPECT_EQ(response.ack.batches_seen, expectation.batches_seen)
              << "session " << expectation.session;
        }
      } else {
        const JsonValue response = MustParseJson(reply, true);
        if (expectation.is_observe) {
          EXPECT_EQ(response.Find("batches_seen")->number_value(),
                    static_cast<double>(expectation.batches_seen))
              << "session " << expectation.session;
        }
      }
      expected.erase(it);
    }
    EXPECT_TRUE(expected.empty());

    // (c): the shuffled pipelined run converged to the serial state.
    for (std::size_t s = 0; s < kSessions; ++s) {
      const BinaryResponse finalized = MustParseBinary(
          MustRoundtrip(client, FrameKind::kBinary,
                        server::EncodeFinalizeRequest(session_name(s), true))
              .value());
      ASSERT_EQ(finalized.predictions.size(), reference[s].size())
          << "session " << s;
      for (std::size_t i = 0; i < reference[s].size(); ++i) {
        EXPECT_TRUE(finalized.predictions[i] == reference[s][i])
            << "session " << s << " item " << i;
      }
    }
  }
}

TEST(EventLoopTransportTest, PartialWriteBackpressureDrainsViaEpollout) {
  // A tiny send buffer + fat prediction payloads: the reactor must hit
  // EAGAIN, arm EPOLLOUT, and finish each reply across several sends.
  TransportOptions options;
  options.so_sndbuf = 4096;
  EventLoopServer server(options);
  TcpFrameClient client = server.Connect();

  MustParseJson(MustRoundtrip(client, FrameKind::kJson,
                              OpenRequestLine("fat", /*num_items=*/4000))
                    .value(),
                true);
  MustParseBinary(
      MustRoundtrip(client, FrameKind::kBinary,
                    server::EncodeObserveRequest("fat", kAnswers))
          .value());
  // Refresh once so cached polls carry all 4000 prediction rows.
  MustParseBinary(
      MustRoundtrip(client, FrameKind::kBinary,
                    server::EncodeSnapshotRequest("fat", /*refresh=*/true,
                                                  /*include_predictions=*/true))
          .value());

  constexpr std::size_t kPolls = 8;
  std::string burst;
  for (std::size_t k = 0; k < kPolls; ++k) {
    server::AppendSequencedFrame(
        burst, FrameKind::kBinary,
        server::EncodeSnapshotRequest("fat", /*refresh=*/false,
                                      /*include_predictions=*/true),
        static_cast<std::uint16_t>(k + 1));
  }
  ASSERT_TRUE(client.SendRaw(burst).ok());
  std::vector<bool> seen(kPolls + 1, false);
  for (std::size_t k = 0; k < kPolls; ++k) {
    auto read = client.ReadFrame();
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    ASSERT_TRUE(read.value().sequenced);
    const std::uint16_t seq = read.value().sequence;
    ASSERT_TRUE(seq >= 1 && seq <= kPolls && !seen[seq]);
    seen[seq] = true;
    const BinaryResponse poll = MustParseBinary(read.value());
    EXPECT_TRUE(poll.ok);
    EXPECT_EQ(poll.predictions.size(), 4000u);
  }
  client.Close();
  server.transport->Shutdown();
  const TransportStats stats = server.transport->stats();
  EXPECT_GT(stats.partial_writes + stats.wouldblock_events, 0u)
      << "4000-row payloads through a 4 KiB send buffer never blocked";
}

TEST(EventLoopTransportTest, MidPipelineDropKeepsSessionAndServerAlive) {
  EventLoopServer server;
  {
    TcpFrameClient client = server.Connect();
    MustParseJson(
        MustRoundtrip(client, FrameKind::kJson, OpenRequestLine("drop"))
            .value(),
        true);
    // A full pipelined burst, then vanish without reading a byte.
    std::string burst;
    std::uint16_t seq = 1;
    server::AppendSequencedFrame(
        burst, FrameKind::kBinary,
        server::EncodeObserveRequest("drop", kAnswers), seq++);
    for (int k = 0; k < 8; ++k) {
      server::AppendSequencedFrame(
          burst, FrameKind::kBinary,
          server::EncodeSnapshotRequest("drop", /*refresh=*/k == 0,
                                        /*include_predictions=*/true),
          seq++);
    }
    ASSERT_TRUE(client.SendRaw(burst).ok());
    client.Close();
  }

  // The reactor reaps the dead connection once its in-flight requests
  // finish; the session — and the transport — survive.
  for (int i = 0; i < 500 && server.transport->num_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.transport->num_connections(), 0u);
  EXPECT_EQ(server.consensus->sessions().num_sessions(), 1u);

  // A new connection picks the session up where the burst left it.
  TcpFrameClient client = server.Connect();
  const BinaryResponse finalized = MustParseBinary(
      MustRoundtrip(client, FrameKind::kBinary,
                    server::EncodeFinalizeRequest("drop", true))
          .value());
  EXPECT_TRUE(finalized.finalized);
  EXPECT_EQ(finalized.answers_seen, kAnswers.size());
  MustParseJson(MustRoundtrip(client, FrameKind::kJson,
                              R"({"op":"close","session":"drop"})")
                    .value(),
                true);
}

TEST(EventLoopTransportTest, MaxPipelineFloodCompletesEveryRequest) {
  // Far more in-flight requests than `max_pipeline`: reads pause and
  // resume, and every request still gets exactly one tagged reply.
  TransportOptions options;
  options.max_pipeline = 4;
  EventLoopServer server(options);
  TcpFrameClient client = server.Connect();
  MustParseJson(
      MustRoundtrip(client, FrameKind::kJson, OpenRequestLine("flood")).value(),
      true);
  MustParseBinary(
      MustRoundtrip(client, FrameKind::kBinary,
                    server::EncodeObserveRequest("flood", kAnswers))
          .value());

  constexpr std::size_t kRequests = 64;
  std::string burst;
  for (std::size_t k = 0; k < kRequests; ++k) {
    server::AppendSequencedFrame(
        burst, FrameKind::kBinary,
        server::EncodeSnapshotRequest("flood", /*refresh=*/false,
                                      /*include_predictions=*/false),
        static_cast<std::uint16_t>(k + 1));
  }
  ASSERT_TRUE(client.SendRaw(burst).ok());
  std::vector<bool> seen(kRequests + 1, false);
  for (std::size_t k = 0; k < kRequests; ++k) {
    auto read = client.ReadFrame();
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    ASSERT_TRUE(read.value().sequenced);
    const std::uint16_t seq = read.value().sequence;
    ASSERT_TRUE(seq >= 1 && seq <= kRequests && !seen[seq]);
    seen[seq] = true;
    EXPECT_TRUE(MustParseBinary(read.value()).ok);
  }
}

TEST(EventLoopTransportTest, RouterInFrontOfEventLoopForwardsBothModes) {
  // The `cpa_server --router --event-loop` topology: an epoll front over
  // a thread-transport worker. Sequence tags are a transport concern, so
  // the router needs no changes — the front echoes them.
  ConsensusServer worker_server;
  TcpTransport worker(worker_server);
  ASSERT_TRUE(worker.Start().ok());
  RouterOptions router_options;
  router_options.workers.push_back(
      StrFormat("127.0.0.1:%u", static_cast<unsigned>(worker.port())));
  Router router(router_options);
  ASSERT_TRUE(router.Start().ok());
  EventLoopTransport front(router);
  ASSERT_TRUE(front.Start().ok());

  auto connected = TcpFrameClient::Connect("127.0.0.1", front.port());
  ASSERT_TRUE(connected.ok());
  TcpFrameClient client = std::move(connected).value();
  auto negotiated = client.NegotiateSequencing();
  ASSERT_TRUE(negotiated.ok()) << negotiated.status().ToString();
  EXPECT_TRUE(negotiated.value());

  MustParseJson(
      MustRoundtrip(client, FrameKind::kJson, OpenRequestLine("routed"))
          .value(),
      true);
  // A sequenced observe + poll pipeline through the router …
  std::string burst;
  server::AppendSequencedFrame(
      burst, FrameKind::kBinary,
      server::EncodeObserveRequest("routed", kAnswers), 1);
  server::AppendSequencedFrame(
      burst, FrameKind::kBinary,
      server::EncodeSnapshotRequest("routed", /*refresh=*/true,
                                    /*include_predictions=*/true),
      2);
  ASSERT_TRUE(client.SendRaw(burst).ok());
  std::vector<bool> seen(3, false);
  for (int k = 0; k < 2; ++k) {
    auto read = client.ReadFrame();
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    ASSERT_TRUE(read.value().sequenced);
    const std::uint16_t seq = read.value().sequence;
    ASSERT_TRUE(seq >= 1 && seq <= 2 && !seen[seq]);
    seen[seq] = true;
    EXPECT_TRUE(MustParseBinary(read.value()).ok);
  }
  // … and a legacy finalize on the same connection.
  const BinaryResponse finalized = MustParseBinary(
      MustRoundtrip(client, FrameKind::kBinary,
                    server::EncodeFinalizeRequest("routed", true))
          .value());
  EXPECT_TRUE(finalized.finalized);
  EXPECT_EQ(finalized.predictions.size(), 4u);

  client.Close();
  front.Shutdown();
  router.Shutdown();
  worker.Shutdown();
}

TEST(EventLoopTransportTest, GracefulShutdownDrainsOpenConnections) {
  EventLoopServer server;
  TcpFrameClient client = server.Connect();
  MustParseJson(
      MustRoundtrip(client, FrameKind::kJson, OpenRequestLine("drain")).value(),
      true);
  EXPECT_EQ(server.transport->num_connections(), 1u);

  server.transport->Shutdown();
  EXPECT_EQ(server.transport->num_connections(), 0u);
  auto reply = client.Roundtrip(FrameKind::kJson, R"({"op":"list"})");
  EXPECT_FALSE(reply.ok());

  // Shutdown is idempotent, and sessions outlive their connections.
  server.transport->Shutdown();
  EXPECT_EQ(server.consensus->sessions().num_sessions(), 1u);
}

TEST(EventLoopTransportTest, ManyConcurrentConnectionsOnFewReactors) {
  // More connections than reactors or dispatch threads: the TSan
  // centerpiece for the epoll path.
  TransportOptions options;
  options.io_threads = 2;
  options.dispatch_threads = 3;
  EventLoopServer server(options, /*num_threads=*/2);
  constexpr std::size_t kClients = 8;

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, c] {
      const std::string session = StrFormat("conc-%zu", c);
      TcpFrameClient client = server.Connect();
      MustParseJson(
          MustRoundtrip(client, FrameKind::kJson, OpenRequestLine(session))
              .value(),
          true);
      // Pipelined observes + polls, then a blocking finalize.
      std::string burst;
      std::uint16_t seq = 1;
      for (std::size_t b = 0; b < 3; ++b) {
        const std::vector<Answer> answers = {
            {static_cast<ItemId>(b), static_cast<WorkerId>(2 * c),
             LabelSet{static_cast<LabelId>(c % 4)}},
            {static_cast<ItemId>(b), static_cast<WorkerId>(2 * c + 1),
             LabelSet{static_cast<LabelId>((c + 1) % 4)}}};
        server::AppendSequencedFrame(
            burst, FrameKind::kBinary,
            server::EncodeObserveRequest(session, answers), seq++);
        server::AppendSequencedFrame(
            burst, FrameKind::kBinary,
            server::EncodeSnapshotRequest(session, /*refresh=*/false,
                                          /*include_predictions=*/false),
            seq++);
      }
      ASSERT_TRUE(client.SendRaw(burst).ok());
      std::vector<bool> seen(seq, false);
      for (std::uint16_t k = 1; k < seq; ++k) {
        auto read = client.ReadFrame();
        ASSERT_TRUE(read.ok()) << read.status().ToString();
        ASSERT_TRUE(read.value().sequenced);
        ASSERT_TRUE(read.value().sequence >= 1 && read.value().sequence < seq);
        ASSERT_FALSE(seen[read.value().sequence]);
        seen[read.value().sequence] = true;
      }
      MustParseJson(
          MustRoundtrip(
              client, FrameKind::kJson,
              StrFormat(R"({"op":"close","session":"%s"})", session.c_str()))
              .value(),
          true);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(server.consensus->sessions().num_sessions(), 0u);
  server.transport->Shutdown();
  const TransportStats stats = server.transport->stats();
  EXPECT_EQ(stats.connections_accepted, kClients);
  EXPECT_EQ(stats.framing_errors, 0u);
  EXPECT_EQ(stats.frames_in, stats.frames_out);
}

}  // namespace
}  // namespace cpa
