#include "server/tcp_transport.h"

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/binary_codec.h"
#include "server/consensus_server.h"
#include "server/protocol.h"
#include "server/tcp_client.h"
#include "util/json.h"
#include "util/string_utils.h"

namespace cpa {
namespace {

using server::BinaryResponse;
using server::Frame;
using server::FrameKind;
using server::TcpFrameClient;

/// A transport bound to an ephemeral port for one test.
struct TestServer {
  explicit TestServer(std::size_t num_threads = 1, bool accept_binary = true,
                      std::size_t max_frame_bytes = server::kDefaultMaxFrameBytes,
                      std::size_t max_connections = 1024) {
    ConsensusServerOptions options;
    options.sessions.num_threads = num_threads;
    options.accept_binary = accept_binary;
    consensus = std::make_unique<ConsensusServer>(options);
    TcpTransportOptions tcp_options;
    tcp_options.max_frame_bytes = max_frame_bytes;
    tcp_options.max_connections = max_connections;
    transport = std::make_unique<TcpTransport>(*consensus, tcp_options);
    const Status started = transport->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  TcpFrameClient Connect() {
    auto client = TcpFrameClient::Connect("127.0.0.1", transport->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::unique_ptr<ConsensusServer> consensus;
  std::unique_ptr<TcpTransport> transport;
};

std::string OpenRequestLine(const std::string& session) {
  return StrFormat(
      R"({"op":"open","session":"%s","config":{"method":"MV",)"
      R"("num_items":4,"num_workers":16,"num_labels":4}})",
      session.c_str());
}

/// Parses a JSON frame and checks `"ok"`.
JsonValue MustParseJson(const Frame& frame, bool expect_ok) {
  EXPECT_EQ(frame.kind, FrameKind::kJson);
  auto parsed = JsonValue::Parse(frame.payload);
  EXPECT_TRUE(parsed.ok()) << frame.payload;
  const JsonValue* ok = parsed.value().Find("ok");
  EXPECT_NE(ok, nullptr) << frame.payload;
  if (ok != nullptr) {
    EXPECT_EQ(ok->bool_value(), expect_ok) << frame.payload;
  }
  return parsed.value();
}

/// Decodes a binary frame's response body.
BinaryResponse MustParseBinary(const Frame& frame) {
  EXPECT_EQ(frame.kind, FrameKind::kBinary);
  auto decoded = server::DecodeBinaryResponse(frame.payload);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return decoded.ok() ? decoded.value() : BinaryResponse{};
}

Result<Frame> MustRoundtrip(TcpFrameClient& client, FrameKind kind,
                            std::string_view payload) {
  auto reply = client.Roundtrip(kind, payload);
  EXPECT_TRUE(reply.ok()) << reply.status().ToString();
  return reply;
}

const std::vector<Answer> kAnswers = {{0, 0, LabelSet{1}},
                                      {0, 1, LabelSet{1, 2}},
                                      {1, 2, LabelSet{3}},
                                      {2, 3, LabelSet{0}}};

TEST(TcpTransportTest, JsonLifecycleOverRealSocket) {
  TestServer server;
  TcpFrameClient client = server.Connect();

  MustParseJson(
      MustRoundtrip(client, FrameKind::kJson, OpenRequestLine("tcp1")).value(),
      true);
  const JsonValue ack = MustParseJson(
      MustRoundtrip(client, FrameKind::kJson,
                    server::MakeObserveRequest("tcp1", kAnswers))
          .value(),
      true);
  EXPECT_EQ(ack.Find("answers_seen")->number_value(), 4.0);

  const JsonValue snapshot = MustParseJson(
      MustRoundtrip(client, FrameKind::kJson,
                    R"({"op":"snapshot","session":"tcp1"})")
          .value(),
      true);
  ASSERT_NE(snapshot.Find("predictions"), nullptr);
  EXPECT_EQ(snapshot.Find("predictions")->array().size(), 4u);

  MustParseJson(MustRoundtrip(client, FrameKind::kJson,
                              R"({"op":"finalize","session":"tcp1"})")
                    .value(),
                true);
  MustParseJson(MustRoundtrip(client, FrameKind::kJson,
                              R"({"op":"close","session":"tcp1"})")
                    .value(),
                true);
  EXPECT_EQ(server.consensus->sessions().num_sessions(), 0u);
  client.Close();
}

TEST(TcpTransportTest, BinaryAndJsonTransportsProduceIdenticalSnapshots) {
  TestServer server;
  TcpFrameClient json_client = server.Connect();
  TcpFrameClient binary_client = server.Connect();

  // Two sessions, same config, same stream — one driven per transport
  // (open is JSON on both connections; the hot ops differ).
  MustParseJson(
      MustRoundtrip(json_client, FrameKind::kJson, OpenRequestLine("via-json"))
          .value(),
      true);
  MustParseJson(MustRoundtrip(binary_client, FrameKind::kJson,
                              OpenRequestLine("via-binary"))
                    .value(),
      true);

  const JsonValue json_ack = MustParseJson(
      MustRoundtrip(json_client, FrameKind::kJson,
                    server::MakeObserveRequest("via-json", kAnswers))
          .value(),
      true);
  const BinaryResponse binary_ack = MustParseBinary(
      MustRoundtrip(binary_client, FrameKind::kBinary,
                    server::EncodeObserveRequest("via-binary", kAnswers))
          .value());
  EXPECT_EQ(json_ack.Find("answers_seen")->number_value(),
            static_cast<double>(binary_ack.ack.answers_seen));

  const JsonValue json_snapshot = MustParseJson(
      MustRoundtrip(json_client, FrameKind::kJson,
                    R"({"op":"finalize","session":"via-json"})")
          .value(),
      true);
  const BinaryResponse binary_snapshot = MustParseBinary(
      MustRoundtrip(binary_client, FrameKind::kBinary,
                    server::EncodeFinalizeRequest("via-binary", true))
          .value());

  // The acceptance bar: identical predictions for the same request stream.
  const auto& json_rows = json_snapshot.Find("predictions")->array();
  ASSERT_EQ(json_rows.size(), binary_snapshot.predictions.size());
  for (std::size_t i = 0; i < json_rows.size(); ++i) {
    const LabelSet& binary_labels = binary_snapshot.predictions[i];
    ASSERT_EQ(json_rows[i].array().size(), binary_labels.size()) << "item " << i;
    std::size_t j = 0;
    for (LabelId label : binary_labels) {
      EXPECT_EQ(json_rows[i].array()[j++].number_value(),
                static_cast<double>(label))
          << "item " << i;
    }
  }
  EXPECT_EQ(json_snapshot.Find("method")->string_value(), binary_snapshot.method);
  EXPECT_TRUE(binary_snapshot.finalized);
}

TEST(TcpTransportTest, PipelinedBatchGetsOrderedReplies) {
  TestServer server;
  TcpFrameClient client = server.Connect();

  // One write carries the whole session: open + observe + 8 polls +
  // finalize. Replies must come back one per request, in order.
  std::string batch;
  server::AppendFrame(batch, FrameKind::kJson, OpenRequestLine("pipe"));
  server::AppendFrame(batch, FrameKind::kBinary,
                      server::EncodeObserveRequest("pipe", kAnswers));
  for (int i = 0; i < 8; ++i) {
    server::AppendFrame(batch, FrameKind::kBinary,
                        server::EncodeSnapshotRequest("pipe", /*refresh=*/i == 0,
                                                      /*include_predictions=*/false));
  }
  server::AppendFrame(batch, FrameKind::kBinary,
                      server::EncodeFinalizeRequest("pipe", true));
  ASSERT_TRUE(client.SendRaw(batch).ok());

  MustParseJson(client.ReadFrame().value(), true);  // open
  const BinaryResponse ack = MustParseBinary(client.ReadFrame().value());
  EXPECT_EQ(ack.ack.answers_seen, 4u);
  for (int i = 0; i < 8; ++i) {
    const BinaryResponse poll = MustParseBinary(client.ReadFrame().value());
    EXPECT_TRUE(poll.ok);
    EXPECT_FALSE(poll.has_predictions);
    EXPECT_EQ(poll.answers_seen, 4u);
  }
  const BinaryResponse final_snapshot = MustParseBinary(client.ReadFrame().value());
  EXPECT_TRUE(final_snapshot.finalized);
}

TEST(TcpTransportTest, MalformedPayloadGetsErrorReplyAndConnectionSurvives) {
  TestServer server;
  TcpFrameClient client = server.Connect();

  // Broken JSON payload in a well-formed frame.
  const JsonValue error = MustParseJson(
      MustRoundtrip(client, FrameKind::kJson, "this is not json").value(), false);
  EXPECT_EQ(error.Find("code")->string_value(), "InvalidArgument");

  // Garbage binary payload in a well-formed frame.
  const BinaryResponse binary_error = MustParseBinary(
      MustRoundtrip(client, FrameKind::kBinary, "\xee\xee\xee").value());
  EXPECT_FALSE(binary_error.ok);
  EXPECT_EQ(binary_error.error.code(), StatusCode::kInvalidArgument);

  // Unknown frame kind: recoverable framing error, reply falls back to JSON.
  std::string bad_kind = server::EncodeFrame({FrameKind::kJson, "{}"});
  bad_kind[4] = '\x07';
  ASSERT_TRUE(client.SendRaw(bad_kind).ok());
  MustParseJson(client.ReadFrame().value(), false);

  // The connection still works.
  MustParseJson(
      MustRoundtrip(client, FrameKind::kJson, OpenRequestLine("still-alive"))
          .value(),
      true);
}

TEST(TcpTransportTest, OversizedFrameGetsErrorReplyAndConnectionSurvives) {
  TestServer server(/*num_threads=*/1, /*accept_binary=*/true,
                    /*max_frame_bytes=*/256);
  TcpFrameClient client = server.Connect();

  const Frame reply =
      MustRoundtrip(client, FrameKind::kJson, std::string(4096, ' ')).value();
  const JsonValue error = MustParseJson(reply, false);
  EXPECT_EQ(error.Find("code")->string_value(), "InvalidArgument");

  MustParseJson(
      MustRoundtrip(client, FrameKind::kJson, OpenRequestLine("after-big"))
          .value(),
      true);
}

TEST(TcpTransportTest, JsonOnlyModeRejectsBinaryFrames) {
  TestServer server(/*num_threads=*/1, /*accept_binary=*/false);
  TcpFrameClient client = server.Connect();

  MustParseJson(
      MustRoundtrip(client, FrameKind::kJson, OpenRequestLine("dbg")).value(),
      true);
  const BinaryResponse rejected = MustParseBinary(
      MustRoundtrip(client, FrameKind::kBinary,
                    server::EncodeObserveRequest("dbg", kAnswers))
          .value());
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error.code(), StatusCode::kFailedPrecondition);

  // The same op as a JSON frame still works.
  MustParseJson(MustRoundtrip(client, FrameKind::kJson,
                              server::MakeObserveRequest("dbg", kAnswers))
                    .value(),
                true);
}

TEST(TcpTransportTest, ManyConcurrentClientsShareOneServer) {
  // The TSan centerpiece: concurrent connections, mixed transports, all
  // sessions' sweeps on one shared 2-thread pool.
  TestServer server(/*num_threads=*/2);
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kBatches = 3;

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, c] {
      const bool binary = c % 2 == 0;
      const std::string session = StrFormat("conc-%zu", c);
      TcpFrameClient client = server.Connect();
      MustParseJson(
          MustRoundtrip(client, FrameKind::kJson, OpenRequestLine(session))
              .value(),
          true);
      for (std::size_t b = 0; b < kBatches; ++b) {
        // Distinct (worker, item) per batch so observes never collide.
        const std::vector<Answer> answers = {
            {static_cast<ItemId>(b), static_cast<WorkerId>(2 * c),
             LabelSet{static_cast<LabelId>(c % 4)}},
            {static_cast<ItemId>(b), static_cast<WorkerId>(2 * c + 1),
             LabelSet{static_cast<LabelId>((c + 1) % 4)}}};
        if (binary) {
          const BinaryResponse ack = MustParseBinary(
              MustRoundtrip(client, FrameKind::kBinary,
                            server::EncodeObserveRequest(session, answers))
                  .value());
          EXPECT_TRUE(ack.ok);
          const BinaryResponse snap = MustParseBinary(
              MustRoundtrip(client, FrameKind::kBinary,
                            server::EncodeSnapshotRequest(session, true, true))
                  .value());
          EXPECT_TRUE(snap.ok);
        } else {
          MustParseJson(
              MustRoundtrip(client, FrameKind::kJson,
                            server::MakeObserveRequest(session, answers))
                  .value(),
              true);
          MustParseJson(
              MustRoundtrip(
                  client, FrameKind::kJson,
                  StrFormat(R"({"op":"snapshot","session":"%s"})",
                            session.c_str()))
                  .value(),
              true);
        }
      }
      MustParseJson(
          MustRoundtrip(
              client, FrameKind::kJson,
              StrFormat(R"({"op":"close","session":"%s"})", session.c_str()))
              .value(),
          true);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(server.consensus->sessions().num_sessions(), 0u);
  const TcpTransportStats stats = server.transport->stats();
  EXPECT_EQ(stats.connections_accepted, kClients);
  EXPECT_EQ(stats.framing_errors, 0u);
  EXPECT_EQ(stats.frames_in, stats.frames_out);
}

TEST(TcpTransportTest, GracefulShutdownDrainsOpenConnections) {
  TestServer server;
  TcpFrameClient client = server.Connect();
  MustParseJson(
      MustRoundtrip(client, FrameKind::kJson, OpenRequestLine("drain")).value(),
      true);
  EXPECT_EQ(server.transport->num_connections(), 1u);

  server.transport->Shutdown();
  EXPECT_EQ(server.transport->num_connections(), 0u);

  // The socket is gone; the next exchange fails instead of hanging.
  auto reply = client.Roundtrip(FrameKind::kJson, R"({"op":"list"})");
  EXPECT_FALSE(reply.ok());

  // Shutdown is idempotent, and sessions outlive their connections.
  server.transport->Shutdown();
  EXPECT_EQ(server.consensus->sessions().num_sessions(), 1u);
}

TEST(TcpTransportTest, UnixSocketServesSameProtocol) {
  ConsensusServerOptions options;
  ConsensusServer consensus(options);
  TcpTransportOptions tcp_options;
  tcp_options.unix_path =
      StrFormat("/tmp/cpa_unix_test_%d.sock", static_cast<int>(::getpid()));
  TcpTransport transport(consensus, tcp_options);
  const Status started = transport.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_EQ(transport.port(), 0);  // no TCP port in unix mode

  auto connected = TcpFrameClient::ConnectUnix(tcp_options.unix_path);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  TcpFrameClient client = std::move(connected).value();

  // The full mixed-encoding lifecycle, identical to the TCP path.
  MustParseJson(
      MustRoundtrip(client, FrameKind::kJson, OpenRequestLine("unix1")).value(),
      true);
  const BinaryResponse ack = MustParseBinary(
      MustRoundtrip(client, FrameKind::kBinary,
                    server::EncodeObserveRequest("unix1", kAnswers))
          .value());
  EXPECT_EQ(ack.ack.answers_seen, 4u);
  const BinaryResponse final_snapshot = MustParseBinary(
      MustRoundtrip(client, FrameKind::kBinary,
                    server::EncodeFinalizeRequest("unix1", true))
          .value());
  EXPECT_TRUE(final_snapshot.finalized);
  EXPECT_EQ(final_snapshot.predictions.size(), 4u);

  client.Close();
  transport.Shutdown();
  // Shutdown unlinks the socket file.
  EXPECT_NE(::access(tcp_options.unix_path.c_str(), F_OK), 0);
}

TEST(TcpTransportTest, UnixSocketRejectsOverlongPath) {
  ConsensusServerOptions options;
  ConsensusServer consensus(options);
  TcpTransportOptions tcp_options;
  tcp_options.unix_path = "/tmp/" + std::string(200, 'x') + ".sock";
  TcpTransport transport(consensus, tcp_options);
  const Status started = transport.Start();
  EXPECT_EQ(started.code(), StatusCode::kInvalidArgument);
}

TEST(TcpTransportTest, ConnectionLimitRejectsExtraClients) {
  TestServer server(/*num_threads=*/1, /*accept_binary=*/true,
                    server::kDefaultMaxFrameBytes, /*max_connections=*/1);
  TcpFrameClient first = server.Connect();
  // Occupy the only slot with a live exchange.
  MustParseJson(
      MustRoundtrip(first, FrameKind::kJson, OpenRequestLine("only")).value(),
      true);

  TcpFrameClient second = server.Connect();
  auto reply = second.ReadFrame();  // server sends the error unprompted
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const JsonValue error = MustParseJson(reply.value(), false);
  EXPECT_EQ(error.Find("code")->string_value(), "FailedPrecondition");
}

}  // namespace
}  // namespace cpa
