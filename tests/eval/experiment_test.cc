#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "baselines/majority_vote.h"
#include "simulation/dataset_factory.h"

namespace cpa {
namespace {

Dataset QuickDataset() {
  FactoryOptions options;
  options.scale = 0.05;
  auto dataset = MakePaperDataset(PaperDatasetId::kMovie, options);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).value();
}

TEST(RunExperimentTest, ScoresAndTimesAnAggregator) {
  const Dataset dataset = QuickDataset();
  MajorityVote mv;
  const auto result = RunExperiment(mv, dataset);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().metrics.precision, 0.0);
  EXPECT_GT(result.value().metrics.recall, 0.0);
  EXPECT_LE(result.value().metrics.precision, 1.0);
  EXPECT_GE(result.value().seconds, 0.0);
  EXPECT_EQ(result.value().metrics.evaluated_items, dataset.num_items());
}

TEST(RunExperimentTest, RequiresGroundTruth) {
  Dataset dataset = QuickDataset();
  dataset.ground_truth.clear();
  MajorityVote mv;
  EXPECT_EQ(RunExperiment(mv, dataset).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PaperAggregatorsTest, ProvidesTheFourPaperMethods) {
  const auto factories = PaperAggregators();
  ASSERT_EQ(factories.size(), 4u);
  EXPECT_TRUE(factories.count("MV"));
  EXPECT_TRUE(factories.count("EM"));
  EXPECT_TRUE(factories.count("cBCC"));
  EXPECT_TRUE(factories.count("CPA"));
}

TEST(PaperAggregatorsTest, FactoriesBuildWorkingAggregators) {
  const Dataset dataset = QuickDataset();
  for (const auto& [name, factory] : PaperAggregators(10)) {
    auto aggregator = factory(dataset);
    ASSERT_NE(aggregator, nullptr) << name;
    const auto result = RunExperiment(*aggregator, dataset);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    // MV recall is legitimately tiny on this capped-attention micro
    // dataset; the check is "runs and produces a non-degenerate score".
    EXPECT_GT(result.value().metrics.recall, 0.02) << name;
    EXPECT_EQ(result.value().metrics.evaluated_items, dataset.num_items()) << name;
  }
}

TEST(PaperAggregatorsTest, CpaOutperformsMvOnCorrelatedData) {
  FactoryOptions options;
  options.scale = 0.1;
  auto dataset = MakePaperDataset(PaperDatasetId::kImage, options);
  ASSERT_TRUE(dataset.ok());
  const auto factories = PaperAggregators(25);
  auto mv = factories.at("MV")(dataset.value());
  auto cpa = factories.at("CPA")(dataset.value());
  const auto mv_result = RunExperiment(*mv, dataset.value());
  const auto cpa_result = RunExperiment(*cpa, dataset.value());
  ASSERT_TRUE(mv_result.ok());
  ASSERT_TRUE(cpa_result.ok());
  EXPECT_GT(cpa_result.value().metrics.F1(), mv_result.value().metrics.F1());
}

}  // namespace
}  // namespace cpa
