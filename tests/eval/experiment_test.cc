#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "baselines/majority_vote.h"
#include "engine/engine_registry.h"
#include "simulation/dataset_factory.h"

namespace cpa {
namespace {

Dataset QuickDataset() {
  FactoryOptions options;
  options.scale = 0.05;
  auto dataset = MakePaperDataset(PaperDatasetId::kMovie, options);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).value();
}

TEST(RunExperimentTest, ScoresAndTimesAnAggregator) {
  const Dataset dataset = QuickDataset();
  MajorityVote mv;
  const auto result = RunExperiment(mv, dataset);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().metrics.precision, 0.0);
  EXPECT_GT(result.value().metrics.recall, 0.0);
  EXPECT_LE(result.value().metrics.precision, 1.0);
  EXPECT_GE(result.value().seconds, 0.0);
  EXPECT_EQ(result.value().metrics.evaluated_items, dataset.num_items());
}

TEST(RunExperimentTest, RequiresGroundTruth) {
  Dataset dataset = QuickDataset();
  dataset.ground_truth.clear();
  MajorityVote mv;
  EXPECT_EQ(RunExperiment(mv, dataset).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PaperMethodsTest, EveryPaperMethodIsRegistered) {
  const auto methods = PaperMethodNames();
  ASSERT_EQ(methods.size(), 4u);
  for (const std::string& method : methods) {
    EXPECT_TRUE(EngineRegistry::Global().Has(method)) << method;
  }
}

TEST(PaperMethodsTest, EngineConfigsRunWorkingExperiments) {
  const Dataset dataset = QuickDataset();
  for (const std::string& method : PaperMethodNames()) {
    EngineConfig config = EngineConfig::ForDataset(method, dataset);
    config.cpa.max_iterations = 10;
    const auto result = RunExperiment(config, dataset);
    ASSERT_TRUE(result.ok()) << method << ": " << result.status().ToString();
    // MV recall is legitimately tiny on this capped-attention micro
    // dataset; the check is "runs and produces a non-degenerate score".
    EXPECT_GT(result.value().metrics.recall, 0.02) << method;
    EXPECT_EQ(result.value().metrics.evaluated_items, dataset.num_items()) << method;
  }
}

TEST(PaperMethodsTest, CpaOutperformsMvOnCorrelatedData) {
  FactoryOptions options;
  options.scale = 0.1;
  auto dataset = MakePaperDataset(PaperDatasetId::kImage, options);
  ASSERT_TRUE(dataset.ok());
  EngineConfig mv_config = EngineConfig::ForDataset("MV", dataset.value());
  EngineConfig cpa_config = EngineConfig::ForDataset("CPA", dataset.value());
  cpa_config.cpa.max_iterations = 25;
  const auto mv_result = RunExperiment(mv_config, dataset.value());
  const auto cpa_result = RunExperiment(cpa_config, dataset.value());
  ASSERT_TRUE(mv_result.ok());
  ASSERT_TRUE(cpa_result.ok());
  EXPECT_GT(cpa_result.value().metrics.F1(), mv_result.value().metrics.F1());
}

TEST(PaperMethodsTest, ConfigOverloadForwardsNumThreadsBitIdentically) {
  // The num_threads knob must change wall-clock only: the sweep scheduler
  // guarantees bit-identical fits, so the scored predictions agree exactly.
  const Dataset dataset = QuickDataset();
  EngineConfig sequential = EngineConfig::ForDataset("CPA", dataset);
  sequential.cpa.max_iterations = 10;
  EngineConfig threaded = sequential;
  threaded.num_threads = 4;
  const auto a = RunExperiment(sequential, dataset);
  const auto b = RunExperiment(threaded, dataset);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().metrics.precision, b.value().metrics.precision);
  EXPECT_DOUBLE_EQ(a.value().metrics.recall, b.value().metrics.recall);
}

}  // namespace
}  // namespace cpa
