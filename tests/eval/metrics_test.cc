#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace cpa {
namespace {

TEST(ItemMetricsTest, PaperDefinitions) {
  // Y* = {1,2,3} predicted, Y = {2,3,4} true: P = 2/3, R = 2/3.
  const ItemMetrics m = ComputeItemMetrics(LabelSet{1, 2, 3}, LabelSet{2, 3, 4});
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.recall, 2.0 / 3.0, 1e-12);
}

TEST(ItemMetricsTest, PerfectAndDisjoint) {
  const ItemMetrics perfect = ComputeItemMetrics(LabelSet{1, 2}, LabelSet{1, 2});
  EXPECT_DOUBLE_EQ(perfect.precision, 1.0);
  EXPECT_DOUBLE_EQ(perfect.recall, 1.0);
  const ItemMetrics disjoint = ComputeItemMetrics(LabelSet{1}, LabelSet{2});
  EXPECT_DOUBLE_EQ(disjoint.precision, 0.0);
  EXPECT_DOUBLE_EQ(disjoint.recall, 0.0);
}

TEST(ItemMetricsTest, EmptyPredictionConventions) {
  // Empty prediction against non-empty truth: nothing asserted correctly.
  const ItemMetrics empty_pred = ComputeItemMetrics(LabelSet{}, LabelSet{1});
  EXPECT_DOUBLE_EQ(empty_pred.precision, 0.0);
  EXPECT_DOUBLE_EQ(empty_pred.recall, 0.0);
  // Both empty: vacuously correct.
  const ItemMetrics both_empty = ComputeItemMetrics(LabelSet{}, LabelSet{});
  EXPECT_DOUBLE_EQ(both_empty.precision, 1.0);
  EXPECT_DOUBLE_EQ(both_empty.recall, 1.0);
}

TEST(SetMetricsTest, AveragesOverItemsAndSkipsEmptyTruth) {
  const std::vector<LabelSet> predictions = {LabelSet{1}, LabelSet{2}, LabelSet{9}};
  const std::vector<LabelSet> truth = {LabelSet{1}, LabelSet{}, LabelSet{2, 9}};
  const SetMetrics metrics = ComputeSetMetrics(predictions, truth);
  EXPECT_EQ(metrics.evaluated_items, 2u);  // middle item skipped
  EXPECT_NEAR(metrics.precision, (1.0 + 1.0) / 2.0, 1e-12);
  EXPECT_NEAR(metrics.recall, (1.0 + 0.5) / 2.0, 1e-12);
}

TEST(SetMetricsTest, F1IsHarmonicMean) {
  SetMetrics metrics;
  metrics.precision = 0.8;
  metrics.recall = 0.4;
  EXPECT_NEAR(metrics.F1(), 2 * 0.8 * 0.4 / 1.2, 1e-12);
  SetMetrics zero;
  EXPECT_DOUBLE_EQ(zero.F1(), 0.0);
}

TEST(SetMetricsTest, AllEmptyTruthYieldsZeroEvaluated) {
  const std::vector<LabelSet> predictions = {LabelSet{1}};
  const std::vector<LabelSet> truth = {LabelSet{}};
  const SetMetrics metrics = ComputeSetMetrics(predictions, truth);
  EXPECT_EQ(metrics.evaluated_items, 0u);
  EXPECT_DOUBLE_EQ(metrics.precision, 0.0);
}

AnswerMatrix TwoWorkerMatrix() {
  // Truth: item0 = {0}, item1 = {1}. Worker 0 perfect; worker 1 inverts.
  AnswerMatrix m(2, 2);
  EXPECT_TRUE(m.Add(0, 0, LabelSet{0}).ok());
  EXPECT_TRUE(m.Add(1, 0, LabelSet{1}).ok());
  EXPECT_TRUE(m.Add(0, 1, LabelSet{1}).ok());
  EXPECT_TRUE(m.Add(1, 1, LabelSet{0}).ok());
  return m;
}

TEST(WorkerLabelStatsTest, PerLabelSensitivityAndSpecificity) {
  const AnswerMatrix m = TwoWorkerMatrix();
  const std::vector<LabelSet> truth = {LabelSet{0}, LabelSet{1}};
  const auto stats = ComputeWorkerLabelStats(m, truth, 0);
  ASSERT_EQ(stats.size(), 2u);
  // Worker 0: label 0 true on item 0 (voted -> TP), false on item 1 (not
  // voted -> TN): sens 1, spec 1.
  EXPECT_DOUBLE_EQ(stats[0].sensitivity, 1.0);
  EXPECT_DOUBLE_EQ(stats[0].specificity, 1.0);
  // Worker 1: label 0 true on item 0 (not voted -> FN), false on item 1
  // (voted -> FP): sens 0, spec 0.
  EXPECT_DOUBLE_EQ(stats[1].sensitivity, 0.0);
  EXPECT_DOUBLE_EQ(stats[1].specificity, 0.0);
  EXPECT_EQ(stats[0].positives, 1u);
  EXPECT_EQ(stats[0].negatives, 1u);
}

TEST(WorkerOverallStatsTest, PoolsAcrossLabels) {
  const AnswerMatrix m = TwoWorkerMatrix();
  const std::vector<LabelSet> truth = {LabelSet{0}, LabelSet{1}};
  const auto stats = ComputeWorkerOverallStats(m, truth, 3);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_DOUBLE_EQ(stats[0].sensitivity, 1.0);
  EXPECT_DOUBLE_EQ(stats[0].specificity, 1.0);
  EXPECT_DOUBLE_EQ(stats[1].sensitivity, 0.0);
  // Worker 1: per item, 2 false labels of 3, one voted: TN=1, FP=1 each.
  EXPECT_DOUBLE_EQ(stats[1].specificity, 0.5);
}

TEST(WorkerStatsTest, SkipsWorkersWithoutAnswers) {
  AnswerMatrix m(1, 3);
  ASSERT_TRUE(m.Add(0, 1, LabelSet{0}).ok());
  const std::vector<LabelSet> truth = {LabelSet{0}};
  const auto stats = ComputeWorkerLabelStats(m, truth, 0);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].worker, 1u);
}

}  // namespace
}  // namespace cpa
