/// The multi-session layer in one page: a `SessionManager` runs several
/// concurrent sessions — different methods, one shared sweep pool — over
/// the same simulated stream, with cheap cached polling between batches.
///
///   $ ./server_sessions                      # MV + CPA-SVI side by side
///   $ ./server_sessions --num-threads 4 --batches 6 --scale 0.1
///
/// The same layer speaks line-delimited JSON through `cpa_server`
/// (src/server/protocol.h); docs/API.md documents the wire format.

#include <cstdio>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "server/session_manager.h"
#include "simulation/dataset_factory.h"
#include "simulation/perturbations.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace cpa;

int main(int argc, char** argv) {
  const auto flags = Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();
  FactoryOptions factory_options;
  factory_options.scale = flags.value().GetDouble("scale", 0.08);
  const std::size_t batches =
      static_cast<std::size_t>(flags.value().GetInt("batches", 4));

  auto dataset = MakePaperDataset(PaperDatasetId::kTopic, factory_options);
  CPA_CHECK(dataset.ok()) << dataset.status().ToString();
  const Dataset& d = dataset.value();

  SessionManagerOptions options;
  options.num_threads =
      static_cast<std::size_t>(flags.value().GetInt("num-threads", 2));
  SessionManager manager(options);

  // Two concurrent sessions over the same stream: the offline baseline
  // refits at every refreshed snapshot, the online learner never refits.
  std::vector<std::string> ids;
  for (const char* method : {"MV", "CPA-SVI"}) {
    auto id = manager.Open(EngineConfig::ForDataset(method, d), method);
    CPA_CHECK(id.ok()) << id.status().ToString();
    ids.push_back(id.value());
  }

  Rng rng(11);
  const BatchPlan plan = MakeArrivalSchedule(d.answers, batches, rng);
  const auto all = d.answers.answers();
  std::printf("%-8s %-9s %9s %11s %11s\n", "batch", "session", "answers",
              "precision", "recall");
  for (std::size_t b = 0; b < plan.num_batches(); ++b) {
    std::vector<Answer> arriving;
    arriving.reserve(plan.batches[b].size());
    for (std::size_t index : plan.batches[b]) arriving.push_back(all[index]);
    for (const std::string& id : ids) {
      CPA_CHECK_OK(manager.Observe(id, arriving).status());
      auto snapshot = manager.Snapshot(id);  // refresh; poll with refresh=false
      CPA_CHECK(snapshot.ok()) << snapshot.status().ToString();
      const SetMetrics metrics =
          ComputeSetMetrics(snapshot.value()->predictions, d.ground_truth);
      std::printf("%-8zu %-9s %9zu %11.3f %11.3f\n", b + 1, id.c_str(),
                  snapshot.value()->answers_seen, metrics.precision,
                  metrics.recall);
    }
  }
  for (const std::string& id : ids) {
    CPA_CHECK_OK(manager.Finalize(id).status());
    CPA_CHECK_OK(manager.Close(id));
  }
  CPA_CHECK_EQ(manager.num_sessions(), 0u);
  return 0;
}
