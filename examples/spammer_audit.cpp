/// Crowd audit: inject spammers into a campaign, let CPA identify the
/// unreliable worker communities, and print the audit report a
/// requester could act on (which workers to block, which answers to
/// discount) — the (R1) use case behind Fig 4.
///
///   $ ./spammer_audit [--scale 0.25] [--spam 0.3]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/cpa.h"
#include "core/sweep/answer_view.h"
#include "core/sweep/sweep_kernels.h"
#include "core/sweep/sweep_scheduler.h"
#include "eval/experiment.h"
#include "simulation/dataset_factory.h"
#include "simulation/perturbations.h"
#include "util/flags.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

int main(int argc, char** argv) {
  const auto flags = Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();
  FactoryOptions factory_options;
  factory_options.scale = flags.value().GetDouble("scale", 0.25);
  const double spam_fraction = flags.value().GetDouble("spam", 0.3);

  auto clean = MakePaperDataset(PaperDatasetId::kTopic, factory_options);
  CPA_CHECK(clean.ok()) << clean.status().ToString();
  Rng rng(11);
  SpammerInjectionOptions injection;
  injection.spam_answer_fraction = spam_fraction;
  auto dataset = InjectSpammers(clean.value(), injection, rng);
  CPA_CHECK(dataset.ok()) << dataset.status().ToString();
  const std::size_t original_workers = clean.value().num_workers();
  const Dataset& d = dataset.value();
  std::printf("campaign with %zu workers; workers #%zu..#%zu are injected "
              "spammers contributing %.0f%% of all answers\n\n",
              d.num_workers(), original_workers, d.num_workers() - 1,
              spam_fraction * 100);

  // --- Fit CPA and pull the per-worker reliability the model inferred.
  CpaOptions options = CpaOptions::Recommended(d.num_items(), d.num_labels);
  CpaAggregator cpa(options);
  const auto result = RunExperiment(cpa, d);
  CPA_CHECK(result.ok()) << result.status().ToString();
  const CpaModel& model = *cpa.model();
  const std::vector<double> reliability =
      sweep::ComputeWorkerReliability(model, AnswerView(d.answers), SweepScheduler());

  // --- Audit report: the least reliable workers.
  std::vector<WorkerId> order;
  for (WorkerId u = 0; u < d.num_workers(); ++u) {
    if (!d.answers.AnswersOfWorker(u).empty()) order.push_back(u);
  }
  std::sort(order.begin(), order.end(),
            [&](WorkerId a, WorkerId b) { return reliability[a] < reliability[b]; });

  TablePrinter table({"Worker", "Reliability", "Community", "#Answers", "Injected?"});
  const std::size_t to_show = std::min<std::size_t>(15, order.size());
  for (std::size_t k = 0; k < to_show; ++k) {
    const WorkerId u = order[k];
    table.AddRow({StrFormat("#%u", u), StrFormat("%.3f", reliability[u]),
                  StrFormat("%zu", model.WorkerCommunity(u)),
                  StrFormat("%zu", d.answers.AnswersOfWorker(u).size()),
                  u >= original_workers ? "YES" : "no"});
  }
  std::printf("15 least reliable workers according to the CPA posterior:\n");
  table.Print();

  // --- How good is the audit? Precision of "flag the bottom-k".
  std::size_t injected_total = 0;
  for (WorkerId u = static_cast<WorkerId>(original_workers); u < d.num_workers(); ++u) {
    injected_total += !d.answers.AnswersOfWorker(u).empty();
  }
  std::size_t caught = 0;
  for (std::size_t k = 0; k < std::min(order.size(), injected_total); ++k) {
    caught += (order[k] >= original_workers);
  }
  std::printf("\naudit quality: flagging the bottom-%zu workers catches %zu of "
              "%zu injected spammers (%.0f%%)\n",
              injected_total, caught, injected_total,
              injected_total > 0 ? 100.0 * caught / injected_total : 0.0);
  std::printf("consensus quality despite the spam: precision %.3f, recall %.3f\n",
              result.value().metrics.precision, result.value().metrics.recall);
  return 0;
}
