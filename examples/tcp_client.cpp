/// The TCP transport in one page: an in-process `ConsensusServer` behind
/// a real `TcpTransport` listener, driven by a `TcpFrameClient` over a
/// loopback socket — the same frames `cpa_server --tcp` speaks. One
/// session runs its lifecycle twice, once in JSON frames and once with
/// the binary codec on the hot ops, and the final predictions must match
/// byte for byte: the encoding is a transport choice, never a result
/// change.
///
///   $ ./tcp_client                           # MV over loopback, both codecs
///   $ ./tcp_client --scale 0.1 --batches 6
///
/// docs/API.md documents the frame header and binary message layouts;
/// tools/tcp_smoke.py is the same exchange spoken from Python.

#include <cstdio>
#include <string>
#include <vector>

#include "server/binary_codec.h"
#include "server/consensus_server.h"
#include "server/protocol.h"
#include "server/tcp_client.h"
#include "server/tcp_transport.h"
#include "simulation/dataset_factory.h"
#include "simulation/perturbations.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_utils.h"

using namespace cpa;
using server::Frame;
using server::FrameKind;

namespace {

/// Runs open → observe×batches → finalize → close for one session and
/// returns the finalized predictions. `binary` switches the hot ops to
/// the binary codec; open/close are JSON frames either way.
std::vector<LabelSet> RunSession(server::TcpFrameClient& client,
                                 const std::string& session,
                                 const EngineConfig& config,
                                 const Dataset& dataset, const BatchPlan& plan,
                                 bool binary) {
  JsonValue::Object open;
  open["op"] = JsonValue(std::string("open"));
  open["session"] = JsonValue(session);
  open["config"] = config.ToJson();
  auto opened = client.Roundtrip(FrameKind::kJson,
                                 JsonValue(std::move(open)).DumpCompact());
  CPA_CHECK(opened.ok()) << opened.status().ToString();

  const auto all = dataset.answers.answers();
  for (const auto& batch : plan.batches) {
    std::vector<Answer> arriving;
    arriving.reserve(batch.size());
    for (std::size_t index : batch) arriving.push_back(all[index]);
    Result<Frame> ack =
        binary ? client.Roundtrip(FrameKind::kBinary,
                                  server::EncodeObserveRequest(session, arriving))
               : client.Roundtrip(FrameKind::kJson,
                                  server::MakeObserveRequest(session, arriving));
    CPA_CHECK(ack.ok()) << ack.status().ToString();
  }

  std::vector<LabelSet> predictions;
  if (binary) {
    auto final_frame = client.Roundtrip(
        FrameKind::kBinary, server::EncodeFinalizeRequest(session, true));
    CPA_CHECK(final_frame.ok()) << final_frame.status().ToString();
    auto decoded = server::DecodeBinaryResponse(final_frame.value().payload);
    CPA_CHECK(decoded.ok()) << decoded.status().ToString();
    CPA_CHECK(decoded.value().ok) << decoded.value().error.ToString();
    predictions = std::move(decoded.value().predictions);
  } else {
    auto final_frame = client.Roundtrip(
        FrameKind::kJson,
        StrFormat("{\"op\":\"finalize\",\"session\":\"%s\"}", session.c_str()));
    CPA_CHECK(final_frame.ok()) << final_frame.status().ToString();
    auto parsed = JsonValue::Parse(final_frame.value().payload);
    CPA_CHECK(parsed.ok());
    for (const JsonValue& row : parsed.value().Find("predictions")->array()) {
      std::vector<LabelId> labels;
      for (const JsonValue& label : row.array()) {
        labels.push_back(static_cast<LabelId>(label.number_value()));
      }
      predictions.push_back(LabelSet::FromUnsorted(std::move(labels)));
    }
  }

  auto closed = client.Roundtrip(
      FrameKind::kJson,
      StrFormat("{\"op\":\"close\",\"session\":\"%s\"}", session.c_str()));
  CPA_CHECK(closed.ok()) << closed.status().ToString();
  return predictions;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();
  FactoryOptions factory_options;
  factory_options.scale = flags.value().GetDouble("scale", 0.08);
  const std::size_t batches =
      static_cast<std::size_t>(flags.value().GetInt("batches", 4));

  auto dataset = MakePaperDataset(PaperDatasetId::kTopic, factory_options);
  CPA_CHECK(dataset.ok()) << dataset.status().ToString();
  const Dataset& d = dataset.value();
  const EngineConfig config = EngineConfig::ForDataset("MV", d);

  // A real listener on an ephemeral loopback port — exactly what
  // `cpa_server --tcp --port 0` binds, minus the process boundary.
  ConsensusServer consensus_server((ConsensusServerOptions()));
  TcpTransport transport(consensus_server, TcpTransportOptions());
  CPA_CHECK_OK(transport.Start());
  std::printf("listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(transport.port()));

  auto client = server::TcpFrameClient::Connect("127.0.0.1", transport.port());
  CPA_CHECK(client.ok()) << client.status().ToString();

  Rng rng(11);
  const BatchPlan plan = MakeArrivalSchedule(d.answers, batches, rng);
  const auto json_predictions = RunSession(client.value(), "demo-json", config,
                                           d, plan, /*binary=*/false);
  const auto binary_predictions = RunSession(client.value(), "demo-binary",
                                             config, d, plan, /*binary=*/true);

  CPA_CHECK_EQ(json_predictions.size(), binary_predictions.size());
  for (std::size_t i = 0; i < json_predictions.size(); ++i) {
    CPA_CHECK(json_predictions[i] == binary_predictions[i]) << "item " << i;
  }
  const TcpTransportStats stats = transport.stats();
  std::printf(
      "json and binary transports agree on %zu predictions\n"
      "%llu frames in / %llu out, %llu bytes in / %llu out, 0 framing errors\n",
      json_predictions.size(), static_cast<unsigned long long>(stats.frames_in),
      static_cast<unsigned long long>(stats.frames_out),
      static_cast<unsigned long long>(stats.bytes_in),
      static_cast<unsigned long long>(stats.bytes_out));
  client.value().Close();
  transport.Shutdown();
  return 0;
}
