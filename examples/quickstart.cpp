/// Quickstart: aggregate the paper's motivating example (Table 1) with
/// majority voting and with CPA.
///
///   $ ./quickstart
///
/// Five workers tag four pictures with subsets of {sky, plane, sun, water,
/// tree}; the aggregators must reconstruct the correct tag sets.

#include <cstdio>

#include "baselines/majority_vote.h"
#include "core/cpa.h"
#include "data/dataset.h"
#include "eval/metrics.h"

using namespace cpa;

int main() {
  // --- Build the answer matrix of Table 1 (labels are 0-based indices
  // into the label-name list below).
  const std::vector<std::string> label_names = {"sky", "plane", "sun", "water",
                                                "tree"};
  AnswerMatrix answers(/*num_items=*/4, /*num_workers=*/5);
  const auto add = [&](ItemId item, WorkerId worker, LabelSet labels) {
    CPA_CHECK_OK(answers.Add(item, worker, std::move(labels)));
  };
  // picture i1
  add(0, 0, {3, 4});
  add(0, 1, {3, 4});
  add(0, 2, {3});
  add(0, 3, {0});
  add(0, 4, {4});
  // picture i2
  add(1, 0, {1, 2});
  add(1, 1, {0, 3});
  add(1, 2, {3});
  add(1, 3, {1});
  add(1, 4, {2, 3});
  // picture i3
  add(2, 0, {0, 1});
  add(2, 1, {3});
  add(2, 2, {3});
  add(2, 3, {2});
  add(2, 4, {3, 4});
  // picture i4
  add(3, 0, {0, 1});
  add(3, 1, {1, 2});
  add(3, 2, {3});
  add(3, 3, {3});
  add(3, 4, {0, 1, 2});

  const std::vector<LabelSet> truth = {LabelSet{4}, LabelSet{2, 3}, LabelSet{3, 4},
                                       LabelSet{0, 1, 2}};

  const auto print_labels = [&](const LabelSet& set) {
    std::printf("{");
    bool first = true;
    for (LabelId c : set) {
      std::printf("%s%s", first ? "" : ",", label_names[c].c_str());
      first = false;
    }
    std::printf("}");
  };

  // --- Aggregate with majority voting (the paper's Table 1 column).
  MajorityVote mv;
  const auto mv_result = mv.Aggregate(answers, label_names.size());
  CPA_CHECK(mv_result.ok()) << mv_result.status().ToString();

  // --- Aggregate with CPA. For a 4-item toy example, small truncations.
  CpaOptions options;
  options.max_communities = 4;
  options.max_clusters = 4;
  CpaAggregator cpa(options);
  const auto cpa_result = cpa.Aggregate(answers, label_names.size());
  CPA_CHECK(cpa_result.ok()) << cpa_result.status().ToString();

  std::printf("picture  correct            majority           CPA\n");
  std::printf("------------------------------------------------------------\n");
  for (ItemId i = 0; i < 4; ++i) {
    std::printf("i%u       ", i + 1);
    print_labels(truth[i]);
    std::printf("\t   ");
    print_labels(mv_result.value().predictions[i]);
    std::printf("\t      ");
    print_labels(cpa_result.value().predictions[i]);
    std::printf("\n");
  }

  const SetMetrics mv_metrics = ComputeSetMetrics(mv_result.value().predictions, truth);
  const SetMetrics cpa_metrics =
      ComputeSetMetrics(cpa_result.value().predictions, truth);
  std::printf("\nmajority voting: precision %.2f, recall %.2f\n", mv_metrics.precision,
              mv_metrics.recall);
  std::printf("CPA:             precision %.2f, recall %.2f\n", cpa_metrics.precision,
              cpa_metrics.recall);
  std::printf(
      "\n(Four items and five workers are far too little data for a Bayesian "
      "nonparametric model — this example shows the API, not the accuracy "
      "gap. See examples/image_tagging.cpp for a realistic comparison.)\n");
  return 0;
}
