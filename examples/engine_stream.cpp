/// The engine API in one page: every consensus method — offline baselines
/// and the online learner alike — behind one streaming session lifecycle
/// (`Open → Observe → Snapshot → Finalize`), selected by registry name.
///
///   $ ./engine_stream                        # CPA-SVI on the topic dataset
///   $ ./engine_stream --method MV            # same stream, majority vote
///   $ ./engine_stream --method CPA --batches 4 --scale 0.1
///
/// Offline methods re-fit on everything seen when snapshotted (watch their
/// per-batch cost grow); CPA-SVI pays one incremental step per batch.

#include <cstdio>
#include <string>

#include "engine/engine_registry.h"
#include "eval/experiment.h"
#include "simulation/dataset_factory.h"
#include "simulation/perturbations.h"
#include "util/flags.h"

using namespace cpa;

int main(int argc, char** argv) {
  const auto flags = Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();
  FactoryOptions factory_options;
  factory_options.scale = flags.value().GetDouble("scale", 0.15);
  const std::size_t steps =
      static_cast<std::size_t>(flags.value().GetInt("batches", 5));

  auto dataset = MakePaperDataset(PaperDatasetId::kTopic, factory_options);
  CPA_CHECK(dataset.ok()) << dataset.status().ToString();
  const Dataset& d = dataset.value();

  std::printf("registered methods:");
  for (const std::string& name : EngineRegistry::Global().MethodNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  auto config = EngineConfig::ForDataset("CPA-SVI", d).WithFlags(flags.value());
  CPA_CHECK(config.ok()) << config.status().ToString();
  // The config (method + dimensions + typed options) is serializable —
  // this JSON round-trips through EngineConfig::FromJson.
  std::printf("config: %s\n\n", config.value().ToJson().Dump().c_str());

  auto engine = EngineRegistry::Global().Open(config.value());
  CPA_CHECK(engine.ok()) << engine.status().ToString();

  Rng rng(11);
  const BatchPlan plan = MakeArrivalSchedule(d.answers, steps, rng);
  auto run = RunStreamingExperiment(*engine.value(), d, plan);
  CPA_CHECK(run.ok()) << run.status().ToString();

  std::printf("%s over %zu batches of the %s stream:\n",
              std::string(engine.value()->name()).c_str(), plan.num_batches(),
              d.name.c_str());
  std::printf("batch   answers   precision   recall     t(s)\n");
  for (const StreamingStepResult& step : run.value().steps) {
    std::printf("%5zu   %7zu   %9.3f   %6.3f   %6.2f\n", step.batches_seen,
                step.answers_seen, step.metrics.precision, step.metrics.recall,
                step.seconds);
  }
  const ExperimentResult& final_result = run.value().final_result;
  std::printf("final   %7zu   %9.3f   %6.3f   %6.2f\n",
              engine.value()->answers_seen(), final_result.metrics.precision,
              final_result.metrics.recall, final_result.seconds);
  CPA_CHECK(engine.value()->finalized());
  return 0;
}
