/// Image tagging end-to-end: simulate a NUS-WIDE-style crowdsourcing
/// campaign (the paper's image dataset), aggregate with every method, and
/// inspect what the CPA posterior learned about the crowd.
///
///   $ ./image_tagging [--scale 0.25] [--seed 7]

#include <cstdio>

#include "core/cpa.h"
#include "data/dataset_stats.h"
#include "eval/experiment.h"
#include "simulation/dataset_factory.h"
#include "util/flags.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

int main(int argc, char** argv) {
  const auto flags = Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();
  FactoryOptions factory_options;
  factory_options.scale = flags.value().GetDouble("scale", 0.25);
  factory_options.seed =
      static_cast<std::uint64_t>(flags.value().GetInt("seed", 20180417));

  // --- Simulate the campaign.
  auto dataset = MakePaperDataset(PaperDatasetId::kImage, factory_options);
  CPA_CHECK(dataset.ok()) << dataset.status().ToString();
  const DatasetStats stats = ComputeDatasetStats(dataset.value());
  std::printf("simulated image-tagging campaign: %zu pictures, %zu workers, "
              "%zu answers over %zu tags (%.1f answers per picture)\n\n",
              stats.num_questions, stats.num_workers, stats.num_answers,
              stats.num_labels, stats.mean_answers_per_item);

  // --- Aggregate with each method and compare.
  TablePrinter table({"Method", "Precision", "Recall", "F1", "Time"});
  const CpaAggregator* fitted_cpa = nullptr;
  std::unique_ptr<Aggregator> kept_alive;
  for (const auto& [name, factory] : PaperAggregators()) {
    auto aggregator = factory(dataset.value());
    const auto result = RunExperiment(*aggregator, dataset.value());
    CPA_CHECK(result.ok()) << name << ": " << result.status().ToString();
    table.AddRow({name, StrFormat("%.3f", result.value().metrics.precision),
                  StrFormat("%.3f", result.value().metrics.recall),
                  StrFormat("%.3f", result.value().metrics.F1()),
                  StrFormat("%.2fs", result.value().seconds)});
    if (name == "CPA") {
      fitted_cpa = static_cast<const CpaAggregator*>(aggregator.get());
      kept_alive = std::move(aggregator);
    }
  }
  table.Print();

  // --- Inspect the posterior: communities and clusters the model formed.
  CPA_CHECK(fitted_cpa != nullptr && fitted_cpa->model() != nullptr);
  const CpaModel& model = *fitted_cpa->model();
  std::printf("\nCPA posterior: %zu effective worker communities (of %zu), "
              "%zu effective item clusters (of %zu)\n",
              model.EffectiveCommunities(1.0), model.num_communities(),
              model.EffectiveClusters(1.0), model.num_clusters());
  const auto sizes = model.CommunitySizes();
  std::printf("community sizes:");
  for (double s : sizes) {
    if (s >= 1.0) std::printf(" %.0f", s);
  }
  std::printf("\nconverged in %zu sweeps (final change %.5f)\n",
              fitted_cpa->fit_stats().iterations, fitted_cpa->fit_stats().final_change);
  return 0;
}
