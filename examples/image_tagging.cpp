/// Image tagging end-to-end: simulate a NUS-WIDE-style crowdsourcing
/// campaign (the paper's image dataset), aggregate with every paper method
/// through `EngineRegistry` sessions, and inspect what the CPA posterior
/// learned about the crowd.
///
///   $ ./image_tagging [--scale 0.25] [--seed 7] [--num-threads 2]

#include <cstdio>
#include <memory>

#include "data/dataset_stats.h"
#include "engine/cpa_engines.h"
#include "engine/engine_registry.h"
#include "eval/experiment.h"
#include "simulation/dataset_factory.h"
#include "util/flags.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

using namespace cpa;

int main(int argc, char** argv) {
  const auto flags = Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();
  FactoryOptions factory_options;
  factory_options.scale = flags.value().GetDouble("scale", 0.25);
  factory_options.seed =
      static_cast<std::uint64_t>(flags.value().GetInt("seed", 20180417));

  // --- Simulate the campaign.
  auto dataset = MakePaperDataset(PaperDatasetId::kImage, factory_options);
  CPA_CHECK(dataset.ok()) << dataset.status().ToString();
  const DatasetStats stats = ComputeDatasetStats(dataset.value());
  std::printf("simulated image-tagging campaign: %zu pictures, %zu workers, "
              "%zu answers over %zu tags (%.1f answers per picture)\n\n",
              stats.num_questions, stats.num_workers, stats.num_answers,
              stats.num_labels, stats.mean_answers_per_item);

  // --- Aggregate with each method (one registry session per method).
  TablePrinter table({"Method", "Precision", "Recall", "F1", "Time"});
  std::unique_ptr<ConsensusEngine> cpa_session;  // kept for the posterior
  for (const std::string& method : PaperMethodNames()) {
    auto config =
        EngineConfig::ForDataset(method, dataset.value()).WithFlags(flags.value());
    CPA_CHECK(config.ok()) << config.status().ToString();
    config.value().method = method;  // WithFlags may override --method
    auto engine = EngineRegistry::Global().Open(config.value());
    CPA_CHECK(engine.ok()) << method << ": " << engine.status().ToString();
    const auto result = RunExperiment(*engine.value(), dataset.value());
    CPA_CHECK(result.ok()) << method << ": " << result.status().ToString();
    table.AddRow({method, StrFormat("%.3f", result.value().metrics.precision),
                  StrFormat("%.3f", result.value().metrics.recall),
                  StrFormat("%.3f", result.value().metrics.F1()),
                  StrFormat("%.2fs", result.value().seconds)});
    if (method == "CPA") cpa_session = std::move(engine).value();
  }
  table.Print();

  // --- Inspect the posterior: communities and clusters the model formed.
  auto* cpa_engine = dynamic_cast<CpaOfflineEngine*>(cpa_session.get());
  CPA_CHECK(cpa_engine != nullptr && cpa_engine->model() != nullptr);
  const CpaModel& model = *cpa_engine->model();
  std::printf("\nCPA posterior: %zu effective worker communities (of %zu), "
              "%zu effective item clusters (of %zu)\n",
              model.EffectiveCommunities(1.0), model.num_communities(),
              model.EffectiveClusters(1.0), model.num_clusters());
  const auto sizes = model.CommunitySizes();
  std::printf("community sizes:");
  for (double s : sizes) {
    if (s >= 1.0) std::printf(" %.0f", s);
  }
  std::printf("\nconverged in %zu sweeps (final change %.5f)\n",
              cpa_engine->fit_stats().iterations, cpa_engine->fit_stats().final_change);
  return 0;
}
