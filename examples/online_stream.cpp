/// Online aggregation: answers stream in batch by batch (Algorithm 2);
/// intermediate consensus is available at any time — the paper's §4.1
/// motivation (terminate a campaign early once quality suffices, or spot
/// tasks that are too hard).
///
///   $ ./online_stream [--scale 0.25] [--batches 10]

#include <cstdio>

#include "core/cpa.h"
#include "eval/metrics.h"
#include "simulation/dataset_factory.h"
#include "simulation/perturbations.h"
#include "util/flags.h"
#include "util/stopwatch.h"

using namespace cpa;

int main(int argc, char** argv) {
  const auto flags = Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();
  FactoryOptions factory_options;
  factory_options.scale = flags.value().GetDouble("scale", 0.25);
  const std::size_t steps =
      static_cast<std::size_t>(flags.value().GetInt("batches", 10));

  auto dataset = MakePaperDataset(PaperDatasetId::kTopic, factory_options);
  CPA_CHECK(dataset.ok()) << dataset.status().ToString();
  const Dataset& d = dataset.value();
  std::printf("streaming %zu answers for %zu tweets in %zu batches\n\n",
              d.answers.num_answers(), d.num_items(), steps);

  CpaOptions options = CpaOptions::Recommended(d.num_items(), d.num_labels);
  auto online = CpaOnline::Create(d.num_items(), d.num_workers(), d.num_labels,
                                  options, SviOptions());
  CPA_CHECK(online.ok()) << online.status().ToString();

  Rng rng(7);
  const BatchPlan plan = MakeArrivalSchedule(d.answers, steps, rng);
  Stopwatch total;
  std::printf("batch   answers-so-far   precision   recall   learn-rate   t(s)\n");
  std::printf("------------------------------------------------------------------\n");
  for (std::size_t step = 0; step < plan.num_batches(); ++step) {
    CPA_CHECK_OK(online.value().ObserveBatch(d.answers, plan.batches[step]));
    const auto prediction = online.value().Predict(d.answers);
    CPA_CHECK(prediction.ok()) << prediction.status().ToString();
    const SetMetrics metrics =
        ComputeSetMetrics(prediction.value().labels, d.ground_truth);
    std::printf("%5zu   %14zu   %9.3f   %6.3f   %10.3f   %4.1f\n", step + 1,
                online.value().answers_seen(), metrics.precision, metrics.recall,
                online.value().last_learning_rate(), total.ElapsedSeconds());
  }
  std::printf(
      "\nAccuracy climbs as answers arrive; the final consensus is computed "
      "without ever re-fitting the model from scratch (compare the offline "
      "re-fit cost in bench/fig7_runtime).\n");
  return 0;
}
