/// Online aggregation: answers stream in batch by batch (Algorithm 2);
/// intermediate consensus is available at any time — the paper's §4.1
/// motivation (terminate a campaign early once quality suffices, or spot
/// tasks that are too hard).
///
/// The stream is driven through the engine API: a "CPA-SVI" session opened
/// from the registry, observed batch by batch, snapshotted between batches.
///
///   $ ./online_stream [--scale 0.25] [--batches 10]

#include <cstdio>

#include "engine/engine_registry.h"
#include "eval/metrics.h"
#include "simulation/dataset_factory.h"
#include "simulation/perturbations.h"
#include "util/flags.h"
#include "util/stopwatch.h"

using namespace cpa;

int main(int argc, char** argv) {
  const auto flags = Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();
  FactoryOptions factory_options;
  factory_options.scale = flags.value().GetDouble("scale", 0.25);
  const std::size_t steps =
      static_cast<std::size_t>(flags.value().GetInt("batches", 10));

  auto dataset = MakePaperDataset(PaperDatasetId::kTopic, factory_options);
  CPA_CHECK(dataset.ok()) << dataset.status().ToString();
  const Dataset& d = dataset.value();
  std::printf("streaming %zu answers for %zu tweets in %zu batches\n\n",
              d.answers.num_answers(), d.num_items(), steps);

  auto config = EngineConfig::ForDataset("CPA-SVI", d).WithFlags(flags.value());
  CPA_CHECK(config.ok()) << config.status().ToString();
  auto engine = EngineRegistry::Global().Open(config.value());
  CPA_CHECK(engine.ok()) << engine.status().ToString();

  Rng rng(7);
  const BatchPlan plan = MakeArrivalSchedule(d.answers, steps, rng);
  Stopwatch total;
  std::printf("batch   answers-so-far   precision   recall   learn-rate   t(s)\n");
  std::printf("------------------------------------------------------------------\n");
  for (std::size_t step = 0; step < plan.num_batches(); ++step) {
    CPA_CHECK_OK(engine.value()->Observe({&d.answers, plan.batches[step]}));
    const auto snapshot = engine.value()->Snapshot();
    CPA_CHECK(snapshot.ok()) << snapshot.status().ToString();
    const SetMetrics metrics =
        ComputeSetMetrics(snapshot.value()->predictions, d.ground_truth);
    std::printf("%5zu   %14zu   %9.3f   %6.3f   %10.3f   %4.1f\n", step + 1,
                snapshot.value()->answers_seen, metrics.precision, metrics.recall,
                snapshot.value()->learning_rate, total.ElapsedSeconds());
  }
  const auto final_snapshot = engine.value()->Finalize();
  CPA_CHECK(final_snapshot.ok()) << final_snapshot.status().ToString();
  std::printf(
      "\nAccuracy climbs as answers arrive; the final consensus is computed "
      "without ever re-fitting the model from scratch (compare the offline "
      "re-fit cost in bench/fig7_runtime).\n");
  return 0;
}
