#ifndef CPA_BASELINES_BCC_H_
#define CPA_BASELINES_BCC_H_

/// \file bcc.h
/// \brief Bayesian Classifier Combination (BCC) — variational Bayesian
/// Dawid–Skene [51].
///
/// Same per-label decomposition as `DawidSkene`, but every worker's
/// two-coin confusion and the class prior carry Beta priors, and inference
/// uses variational Bayes (digamma expectations instead of ML point
/// estimates). The Bayesian smoothing is what makes BCC noticeably more
/// robust than plain EM on sparse answer matrices.

#include "baselines/aggregator.h"

namespace cpa {

/// \brief Options of the BCC aggregator.
struct BccOptions {
  std::size_t max_iterations = 30;
  double tolerance = 1e-4;

  /// Beta prior on sensitivity and specificity: Beta(prior_correct,
  /// prior_incorrect). Mildly informative toward honest workers.
  double prior_correct = 2.0;
  double prior_incorrect = 1.0;

  /// Beta prior on the per-label class prior.
  double prior_class = 1.0;

  /// Decision threshold on the posterior.
  double threshold = 0.5;
};

/// \brief Per-label variational Bayesian Dawid–Skene.
class Bcc : public Aggregator {
 public:
  explicit Bcc(BccOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "BCC"; }

  Result<AggregationResult> Aggregate(const AnswerMatrix& answers,
                                      std::size_t num_labels) override;

 private:
  BccOptions options_;
};

}  // namespace cpa

#endif  // CPA_BASELINES_BCC_H_
