#include "baselines/bcc.h"

#include <algorithm>
#include <cmath>

#include "baselines/vote_stats.h"
#include "util/special_functions.h"

namespace cpa {
namespace {

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// E[ln p] and E[ln (1-p)] for p ~ Beta(a, b).
struct BetaLogs {
  double log_p;
  double log_not_p;
};

BetaLogs ExpectedLogs(double a, double b) {
  const double d = Digamma(a + b);
  return BetaLogs{Digamma(a) - d, Digamma(b) - d};
}

}  // namespace

Result<AggregationResult> Bcc::Aggregate(const AnswerMatrix& answers,
                                         std::size_t num_labels) {
  if (num_labels == 0) return Status::InvalidArgument("num_labels must be positive");
  const std::size_t num_items = answers.num_items();
  const std::size_t num_workers = answers.num_workers();
  const VoteStats votes = CountVotes(answers, num_labels);

  AggregationResult result;
  result.predictions.resize(num_items);
  result.label_scores.Reset(num_items, num_labels);

  std::vector<double> q(num_items);
  std::vector<BetaLogs> sens_logs(num_workers);
  std::vector<BetaLogs> spec_logs(num_workers);
  std::vector<double> ll1(num_items);
  std::vector<double> ll0(num_items);
  std::vector<double> sens_a(num_workers);
  std::vector<double> sens_b(num_workers);
  std::vector<double> spec_a(num_workers);
  std::vector<double> spec_b(num_workers);

  std::size_t total_iterations = 0;
  for (LabelId c = 0; c < num_labels; ++c) {
    for (ItemId i = 0; i < num_items; ++i) {
      q[i] = std::clamp((votes.votes(i, c) + 0.5) / (votes.answered[i] + 1.0), 1e-6,
                        1.0 - 1e-6);
    }
    double class_a = options_.prior_class;
    double class_b = options_.prior_class;

    double change = 1.0;
    for (std::size_t iter = 0;
         iter < options_.max_iterations && change > options_.tolerance; ++iter) {
      ++total_iterations;
      // --- Update worker Beta posteriors from soft counts.
      std::fill(sens_a.begin(), sens_a.end(), options_.prior_correct);
      std::fill(sens_b.begin(), sens_b.end(), options_.prior_incorrect);
      std::fill(spec_a.begin(), spec_a.end(), options_.prior_correct);
      std::fill(spec_b.begin(), spec_b.end(), options_.prior_incorrect);
      class_a = options_.prior_class;
      class_b = options_.prior_class;
      for (const Answer& a : answers.answers()) {
        const bool vote = a.labels.Contains(c);
        const double qi = q[a.item];
        if (vote) {
          sens_a[a.worker] += qi;
          spec_b[a.worker] += 1.0 - qi;
        } else {
          sens_b[a.worker] += qi;
          spec_a[a.worker] += 1.0 - qi;
        }
      }
      for (ItemId i = 0; i < num_items; ++i) {
        if (votes.answered[i] > 0.0) {
          class_a += q[i];
          class_b += 1.0 - q[i];
        }
      }
      for (WorkerId u = 0; u < num_workers; ++u) {
        sens_logs[u] = ExpectedLogs(sens_a[u], sens_b[u]);
        spec_logs[u] = ExpectedLogs(spec_a[u], spec_b[u]);
      }
      const BetaLogs class_logs = ExpectedLogs(class_a, class_b);

      // --- Update item posteriors under expected log-likelihoods.
      std::fill(ll1.begin(), ll1.end(), 0.0);
      std::fill(ll0.begin(), ll0.end(), 0.0);
      for (const Answer& a : answers.answers()) {
        const bool vote = a.labels.Contains(c);
        if (vote) {
          ll1[a.item] += sens_logs[a.worker].log_p;       // E[ln sens]
          ll0[a.item] += spec_logs[a.worker].log_not_p;   // E[ln (1-spec)]
        } else {
          ll1[a.item] += sens_logs[a.worker].log_not_p;   // E[ln (1-sens)]
          ll0[a.item] += spec_logs[a.worker].log_p;       // E[ln spec]
        }
      }
      change = 0.0;
      for (ItemId i = 0; i < num_items; ++i) {
        if (votes.answered[i] <= 0.0) continue;
        const double updated =
            Sigmoid(class_logs.log_p - class_logs.log_not_p + ll1[i] - ll0[i]);
        change = std::max(change, std::abs(updated - q[i]));
        q[i] = updated;
      }
    }

    for (ItemId i = 0; i < num_items; ++i) {
      const double score = votes.answered[i] > 0.0 ? q[i] : 0.0;
      result.label_scores(i, c) = score;
      if (score > options_.threshold) result.predictions[i].Add(c);
    }
  }
  result.iterations = total_iterations;
  return result;
}

}  // namespace cpa
