#include "baselines/majority_vote.h"

#include "baselines/vote_stats.h"

namespace cpa {

Result<AggregationResult> MajorityVote::Aggregate(const AnswerMatrix& answers,
                                                  std::size_t num_labels) {
  if (num_labels == 0) return Status::InvalidArgument("num_labels must be positive");
  const VoteStats stats = CountVotes(answers, num_labels);

  AggregationResult result;
  result.predictions.resize(answers.num_items());
  result.label_scores.Reset(answers.num_items(), num_labels);
  for (ItemId i = 0; i < answers.num_items(); ++i) {
    LabelId best_label = 0;
    double best_ratio = -1.0;
    for (LabelId c = 0; c < num_labels; ++c) {
      const double ratio = stats.Ratio(i, c);
      result.label_scores(i, c) = ratio;
      if (ratio > options_.threshold) result.predictions[i].Add(c);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_label = c;
      }
    }
    if (options_.fallback_to_top_label && result.predictions[i].empty() &&
        stats.answered[i] > 0.0 && best_ratio > 0.0) {
      result.predictions[i].Add(best_label);
    }
  }
  return result;
}

}  // namespace cpa
