#ifndef CPA_BASELINES_DAWID_SKENE_H_
#define CPA_BASELINES_DAWID_SKENE_H_

/// \file dawid_skene.h
/// \brief Dawid–Skene expectation maximisation — the paper's "EM" baseline.
///
/// The multi-label problem is decomposed into `C` binary problems
/// (vote_stats.h). For each label, workers carry a two-coin confusion model
/// (sensitivity / specificity, [54]); EM alternates between item-truth
/// posteriors and maximum-likelihood worker parameters [40]. The optional
/// mislabeling-cost refinement of Ipeirotis et al. [15] down-weights
/// workers by their expected cost (Youden's J quality) in a second phase.

#include "baselines/aggregator.h"

namespace cpa {

/// \brief Options of the Dawid–Skene aggregator.
struct DawidSkeneOptions {
  /// Maximum EM iterations per label.
  std::size_t max_iterations = 30;

  /// Convergence threshold on the largest item-posterior change.
  double tolerance = 1e-4;

  /// Laplace smoothing added to the worker confusion counts.
  double smoothing = 1.0;

  /// Decision threshold on the posterior.
  double threshold = 0.5;

  /// Enables the Ipeirotis-style mislabeling-cost reweighting [15].
  bool use_mislabeling_cost = false;
};

/// \brief Per-label binary Dawid–Skene EM.
class DawidSkene : public Aggregator {
 public:
  explicit DawidSkene(DawidSkeneOptions options = {}) : options_(options) {}

  std::string_view name() const override {
    return options_.use_mislabeling_cost ? "EM+cost" : "EM";
  }

  Result<AggregationResult> Aggregate(const AnswerMatrix& answers,
                                      std::size_t num_labels) override;

 private:
  DawidSkeneOptions options_;
};

}  // namespace cpa

#endif  // CPA_BASELINES_DAWID_SKENE_H_
