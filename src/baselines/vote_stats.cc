#include "baselines/vote_stats.h"

namespace cpa {

VoteStats CountVotes(const AnswerMatrix& answers, std::size_t num_labels) {
  VoteStats stats;
  stats.votes.Reset(answers.num_items(), num_labels);
  stats.answered.assign(answers.num_items(), 0.0);
  for (const Answer& a : answers.answers()) {
    stats.answered[a.item] += 1.0;
    for (LabelId c : a.labels) {
      stats.votes(a.item, c) += 1.0;
    }
  }
  return stats;
}

}  // namespace cpa
