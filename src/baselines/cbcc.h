#ifndef CPA_BASELINES_CBCC_H_
#define CPA_BASELINES_CBCC_H_

/// \file cbcc.h
/// \brief Community-based Bayesian Classifier Combination (cBCC) — the
/// paper's strongest baseline [24], [25].
///
/// Extends BCC with worker communities: per label, each community carries
/// one two-coin confusion model with Beta priors, workers have variational
/// responsibilities over communities, and community weights carry a
/// Dirichlet prior. Sharing confusion models across a community is what
/// makes cBCC robust on sparse data — and, as §5.2 argues, its per-label
/// decomposition is what CPA's joint multi-label model improves on.
///
/// Worker responsibilities are initialised deterministically by quantiles
/// of each worker's agreement with majority voting, so results are
/// reproducible without a seed.

#include "baselines/aggregator.h"

namespace cpa {

/// \brief Options of the cBCC aggregator.
struct CbccOptions {
  /// Number of worker communities per label problem.
  std::size_t num_communities = 4;

  std::size_t max_iterations = 30;
  double tolerance = 1e-4;

  /// Beta prior on community sensitivity/specificity.
  double prior_correct = 2.0;
  double prior_incorrect = 1.0;

  /// Beta prior on the class prior; Dirichlet prior on community weights.
  double prior_class = 1.0;
  double prior_community = 1.0;

  /// Decision threshold on the posterior.
  double threshold = 0.5;
};

/// \brief Per-label variational cBCC.
class Cbcc : public Aggregator {
 public:
  explicit Cbcc(CbccOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "cBCC"; }

  Result<AggregationResult> Aggregate(const AnswerMatrix& answers,
                                      std::size_t num_labels) override;

 private:
  CbccOptions options_;
};

}  // namespace cpa

#endif  // CPA_BASELINES_CBCC_H_
