#include "baselines/dawid_skene.h"

#include <algorithm>
#include <cmath>

#include "baselines/vote_stats.h"
#include "util/logging.h"

namespace cpa {
namespace {

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double ClampProb(double p) { return std::clamp(p, 1e-6, 1.0 - 1e-6); }

/// EM state for a single binary label problem.
struct BinaryEmState {
  std::vector<double> q;           // item posterior P(label applies)
  std::vector<double> sensitivity; // per worker
  std::vector<double> specificity; // per worker
  std::vector<double> weight;      // per worker vote weight (cost phase)
  double prior = 0.5;
};

}  // namespace

Result<AggregationResult> DawidSkene::Aggregate(const AnswerMatrix& answers,
                                                std::size_t num_labels) {
  if (num_labels == 0) return Status::InvalidArgument("num_labels must be positive");
  const std::size_t num_items = answers.num_items();
  const std::size_t num_workers = answers.num_workers();
  const VoteStats votes = CountVotes(answers, num_labels);

  AggregationResult result;
  result.predictions.resize(num_items);
  result.label_scores.Reset(num_items, num_labels);

  BinaryEmState state;
  std::vector<double> ll1(num_items);
  std::vector<double> ll0(num_items);
  std::vector<double> pos1(num_workers);  // sum q over answered items w/ vote 1
  std::vector<double> pos_total(num_workers);
  std::vector<double> neg0(num_workers);  // sum (1-q) over items w/ vote 0
  std::vector<double> neg_total(num_workers);

  std::size_t total_iterations = 0;
  for (LabelId c = 0; c < num_labels; ++c) {
    // --- Initialisation: smoothed vote ratios.
    state.q.resize(num_items);
    for (ItemId i = 0; i < num_items; ++i) {
      state.q[i] = ClampProb((votes.votes(i, c) + 0.5) / (votes.answered[i] + 1.0));
    }
    state.sensitivity.assign(num_workers, 0.7);
    state.specificity.assign(num_workers, 0.7);
    state.weight.assign(num_workers, 1.0);

    const std::size_t phases = options_.use_mislabeling_cost ? 2 : 1;
    for (std::size_t phase = 0; phase < phases; ++phase) {
      double change = 1.0;
      for (std::size_t iter = 0;
           iter < options_.max_iterations && change > options_.tolerance; ++iter) {
        ++total_iterations;
        // --- M-step: worker confusion from soft counts.
        std::fill(pos1.begin(), pos1.end(), 0.0);
        std::fill(pos_total.begin(), pos_total.end(), 0.0);
        std::fill(neg0.begin(), neg0.end(), 0.0);
        std::fill(neg_total.begin(), neg_total.end(), 0.0);
        double prior_sum = 0.0;
        double prior_count = 0.0;
        for (const Answer& a : answers.answers()) {
          const bool vote = a.labels.Contains(c);
          const double qi = state.q[a.item];
          pos_total[a.worker] += qi;
          neg_total[a.worker] += 1.0 - qi;
          if (vote) {
            pos1[a.worker] += qi;
          } else {
            neg0[a.worker] += 1.0 - qi;
          }
        }
        for (ItemId i = 0; i < num_items; ++i) {
          if (votes.answered[i] > 0.0) {
            prior_sum += state.q[i];
            prior_count += 1.0;
          }
        }
        const double s = options_.smoothing;
        for (WorkerId u = 0; u < num_workers; ++u) {
          state.sensitivity[u] = ClampProb((pos1[u] + s) / (pos_total[u] + 2.0 * s));
          state.specificity[u] = ClampProb((neg0[u] + s) / (neg_total[u] + 2.0 * s));
        }
        state.prior =
            prior_count > 0.0 ? ClampProb(prior_sum / prior_count) : 0.5;

        // --- E-step: item posteriors from weighted log-likelihood ratios.
        std::fill(ll1.begin(), ll1.end(), 0.0);
        std::fill(ll0.begin(), ll0.end(), 0.0);
        for (const Answer& a : answers.answers()) {
          const bool vote = a.labels.Contains(c);
          const double sens = state.sensitivity[a.worker];
          const double spec = state.specificity[a.worker];
          const double w = state.weight[a.worker];
          if (vote) {
            ll1[a.item] += w * std::log(sens);
            ll0[a.item] += w * std::log(1.0 - spec);
          } else {
            ll1[a.item] += w * std::log(1.0 - sens);
            ll0[a.item] += w * std::log(spec);
          }
        }
        change = 0.0;
        const double prior_logodds =
            std::log(state.prior) - std::log(1.0 - state.prior);
        for (ItemId i = 0; i < num_items; ++i) {
          if (votes.answered[i] <= 0.0) continue;
          const double updated = Sigmoid(prior_logodds + ll1[i] - ll0[i]);
          change = std::max(change, std::abs(updated - state.q[i]));
          state.q[i] = updated;
        }
      }
      if (phase + 1 < phases) {
        // Mislabeling-cost refinement: weight workers by Youden's J
        // (sensitivity + specificity - 1, floored at a small epsilon so
        // anti-correlated workers do not flip votes). Spammers get ~0.
        for (WorkerId u = 0; u < num_workers; ++u) {
          state.weight[u] =
              std::max(0.05, state.sensitivity[u] + state.specificity[u] - 1.0);
        }
      }
    }

    // --- Decision.
    for (ItemId i = 0; i < num_items; ++i) {
      const double score = votes.answered[i] > 0.0 ? state.q[i] : 0.0;
      result.label_scores(i, c) = score;
      if (score > options_.threshold) result.predictions[i].Add(c);
    }
  }
  result.iterations = total_iterations;
  return result;
}

}  // namespace cpa
