#ifndef CPA_BASELINES_MAJORITY_VOTE_H_
#define CPA_BASELINES_MAJORITY_VOTE_H_

/// \file majority_vote.h
/// \brief Majority voting (MV), the paper's first baseline.
///
/// "The probability to accept a label for an item is computed as the ratio
/// of 'votes' from workers who provided an answer for an item"; the label
/// is included when the ratio exceeds 0.5 (§2.1, §5.1). Reproduces the
/// `Majority` column of Table 1 exactly.

#include "baselines/aggregator.h"

namespace cpa {

/// \brief Options of the MV aggregator.
struct MajorityVoteOptions {
  /// Inclusion threshold on the vote ratio (paper: 0.5, strict).
  double threshold = 0.5;

  /// When true, an item whose ratios never exceed the threshold receives
  /// its single best-voted label instead of an empty set. The paper's MV
  /// is literal (false).
  bool fallback_to_top_label = false;
};

/// \brief The MV aggregator.
class MajorityVote : public Aggregator {
 public:
  explicit MajorityVote(MajorityVoteOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "MV"; }

  Result<AggregationResult> Aggregate(const AnswerMatrix& answers,
                                      std::size_t num_labels) override;

 private:
  MajorityVoteOptions options_;
};

}  // namespace cpa

#endif  // CPA_BASELINES_MAJORITY_VOTE_H_
