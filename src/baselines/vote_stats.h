#ifndef CPA_BASELINES_VOTE_STATS_H_
#define CPA_BASELINES_VOTE_STATS_H_

/// \file vote_stats.h
/// \brief Per-label vote counting — the single-label decomposition shared
/// by the baseline methods.
///
/// The baselines treat the multi-label problem as `C` independent binary
/// problems ("each worker giving a Boolean answer for a given label",
/// §5.1): a worker who answered item `i` with set `x_iu` votes *for* every
/// `c ∈ x_iu` and — crucially, this is the information loss the paper
/// criticises — *against* every other label of the universe.

#include <cstddef>

#include "data/answer_matrix.h"
#include "util/matrix.h"

namespace cpa {

/// \brief Positive-vote counts and per-item answer counts.
struct VoteStats {
  /// votes(i, c) = number of workers who assigned label c to item i.
  Matrix votes;

  /// answered[i] = number of workers who answered item i at all.
  std::vector<double> answered;

  /// Ratio of positive votes for (i, c); 0 when the item has no answers.
  double Ratio(ItemId item, LabelId label) const {
    const double n = answered[item];
    return n > 0.0 ? votes(item, label) / n : 0.0;
  }
};

/// Counts votes over the full matrix.
VoteStats CountVotes(const AnswerMatrix& answers, std::size_t num_labels);

}  // namespace cpa

#endif  // CPA_BASELINES_VOTE_STATS_H_
