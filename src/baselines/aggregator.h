#ifndef CPA_BASELINES_AGGREGATOR_H_
#define CPA_BASELINES_AGGREGATOR_H_

/// \file aggregator.h
/// \brief The common interface of all answer-aggregation methods.
///
/// Problem 1 of the paper: given the answer matrix `M`, construct a
/// deterministic assignment `d : I → 2^Z`. Aggregators see *only* the
/// answers and the size of the label universe — never the ground truth —
/// which mirrors the paper's fully unsupervised evaluation (`y = ∅`).

#include <cstddef>
#include <string_view>
#include <vector>

#include "data/answer_matrix.h"
#include "data/label_set.h"
#include "util/matrix.h"
#include "util/status.h"

namespace cpa {

/// \brief Output of an aggregation run.
struct AggregationResult {
  /// The deterministic assignment `d`: one label set per item. Items
  /// without answers receive empty sets.
  std::vector<LabelSet> predictions;

  /// Soft per-label scores (I × C); semantics are method specific
  /// (vote ratios for MV, posterior label probabilities for the
  /// model-based methods). May be empty for methods without soft output.
  Matrix label_scores;

  /// Iterations the solver used (0 for non-iterative methods).
  std::size_t iterations = 0;
};

/// \brief Interface implemented by every aggregation method (the baselines
/// of §5.1 and the CPA model itself).
class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Short display name ("MV", "EM", "cBCC", "CPA", ...).
  virtual std::string_view name() const = 0;

  /// Solves Problem 1 for the given answers over `num_labels` labels.
  virtual Result<AggregationResult> Aggregate(const AnswerMatrix& answers,
                                              std::size_t num_labels) = 0;
};

}  // namespace cpa

#endif  // CPA_BASELINES_AGGREGATOR_H_
