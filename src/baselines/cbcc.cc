#include "baselines/cbcc.h"

#include <algorithm>
#include <cmath>

#include "baselines/vote_stats.h"
#include "util/matrix.h"
#include "util/special_functions.h"

namespace cpa {
namespace {

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

struct BetaLogs {
  double log_p;
  double log_not_p;
};

BetaLogs ExpectedLogs(double a, double b) {
  const double d = Digamma(a + b);
  return BetaLogs{Digamma(a) - d, Digamma(b) - d};
}

}  // namespace

Result<AggregationResult> Cbcc::Aggregate(const AnswerMatrix& answers,
                                          std::size_t num_labels) {
  if (num_labels == 0) return Status::InvalidArgument("num_labels must be positive");
  if (options_.num_communities == 0) {
    return Status::InvalidArgument("num_communities must be positive");
  }
  const std::size_t num_items = answers.num_items();
  const std::size_t num_workers = answers.num_workers();
  const std::size_t M = options_.num_communities;
  const VoteStats votes = CountVotes(answers, num_labels);

  // --- Deterministic initial communities: rank workers by their mean
  // agreement with the majority answer across all labels they touched.
  std::vector<double> agreement(num_workers, 0.0);
  std::vector<double> answered(num_workers, 0.0);
  for (const Answer& a : answers.answers()) {
    // Agreement of this answer with the per-item vote majority, measured as
    // the mean vote ratio of the labels the worker asserted.
    double score = 0.0;
    for (LabelId c : a.labels) score += votes.Ratio(a.item, c);
    agreement[a.worker] += a.labels.empty() ? 0.0 : score / a.labels.size();
    answered[a.worker] += 1.0;
  }
  std::vector<WorkerId> order;
  for (WorkerId u = 0; u < num_workers; ++u) {
    if (answered[u] > 0.0) {
      agreement[u] /= answered[u];
      order.push_back(u);
    }
  }
  std::sort(order.begin(), order.end(), [&](WorkerId a, WorkerId b) {
    return agreement[a] < agreement[b];
  });
  std::vector<std::size_t> initial_community(num_workers, 0);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    initial_community[order[rank]] = rank * M / std::max<std::size_t>(1, order.size());
  }

  AggregationResult result;
  result.predictions.resize(num_items);
  result.label_scores.Reset(num_items, num_labels);

  std::vector<double> q(num_items);
  Matrix rho;  // worker x community responsibilities
  std::vector<double> ll1(num_items);
  std::vector<double> ll0(num_items);
  std::vector<double> sens_a(M);
  std::vector<double> sens_b(M);
  std::vector<double> spec_a(M);
  std::vector<double> spec_b(M);
  std::vector<BetaLogs> sens_logs(M);
  std::vector<BetaLogs> spec_logs(M);
  std::vector<double> omega(M);
  Matrix rho_ll;  // accumulates per-worker per-community log-likelihoods

  std::size_t total_iterations = 0;
  for (LabelId c = 0; c < num_labels; ++c) {
    for (ItemId i = 0; i < num_items; ++i) {
      q[i] = std::clamp((votes.votes(i, c) + 0.5) / (votes.answered[i] + 1.0), 1e-6,
                        1.0 - 1e-6);
    }
    rho.Reset(num_workers, M, 0.0);
    for (WorkerId u = 0; u < num_workers; ++u) {
      // Soft-ish deterministic start: 0.7 on the agreement quantile.
      for (std::size_t m = 0; m < M; ++m) {
        rho(u, m) =
            m == initial_community[u] ? 0.7 : 0.3 / std::max<std::size_t>(1, M - 1);
      }
    }
    double class_a = options_.prior_class;
    double class_b = options_.prior_class;

    double change = 1.0;
    for (std::size_t iter = 0;
         iter < options_.max_iterations && change > options_.tolerance; ++iter) {
      ++total_iterations;
      // --- Community Beta posteriors from rho-weighted soft counts.
      std::fill(sens_a.begin(), sens_a.end(), options_.prior_correct);
      std::fill(sens_b.begin(), sens_b.end(), options_.prior_incorrect);
      std::fill(spec_a.begin(), spec_a.end(), options_.prior_correct);
      std::fill(spec_b.begin(), spec_b.end(), options_.prior_incorrect);
      std::fill(omega.begin(), omega.end(), options_.prior_community);
      class_a = options_.prior_class;
      class_b = options_.prior_class;
      for (const Answer& a : answers.answers()) {
        const bool vote = a.labels.Contains(c);
        const double qi = q[a.item];
        for (std::size_t m = 0; m < M; ++m) {
          const double r = rho(a.worker, m);
          if (vote) {
            sens_a[m] += r * qi;
            spec_b[m] += r * (1.0 - qi);
          } else {
            sens_b[m] += r * qi;
            spec_a[m] += r * (1.0 - qi);
          }
        }
      }
      for (WorkerId u = 0; u < num_workers; ++u) {
        if (answered[u] > 0.0) {
          for (std::size_t m = 0; m < M; ++m) omega[m] += rho(u, m);
        }
      }
      for (ItemId i = 0; i < num_items; ++i) {
        if (votes.answered[i] > 0.0) {
          class_a += q[i];
          class_b += 1.0 - q[i];
        }
      }
      for (std::size_t m = 0; m < M; ++m) {
        sens_logs[m] = ExpectedLogs(sens_a[m], sens_b[m]);
        spec_logs[m] = ExpectedLogs(spec_a[m], spec_b[m]);
      }
      const BetaLogs class_logs = ExpectedLogs(class_a, class_b);
      // E[ln omega_m] under the Dirichlet posterior.
      double omega_sum = 0.0;
      for (double o : omega) omega_sum += o;
      const double digamma_omega_sum = Digamma(omega_sum);

      // --- Worker responsibilities.
      rho_ll.Reset(num_workers, M, 0.0);
      for (const Answer& a : answers.answers()) {
        const bool vote = a.labels.Contains(c);
        const double qi = q[a.item];
        for (std::size_t m = 0; m < M; ++m) {
          double ll = 0.0;
          if (vote) {
            ll += qi * sens_logs[m].log_p + (1.0 - qi) * spec_logs[m].log_not_p;
          } else {
            ll += qi * sens_logs[m].log_not_p + (1.0 - qi) * spec_logs[m].log_p;
          }
          rho_ll(a.worker, m) += ll;
        }
      }
      for (WorkerId u = 0; u < num_workers; ++u) {
        if (answered[u] <= 0.0) continue;
        auto row = rho_ll.Row(u);
        for (std::size_t m = 0; m < M; ++m) {
          row[m] += Digamma(omega[m]) - digamma_omega_sum;
        }
        // The shared dispatched softmax (core/sweep/simd.h) — baselines get
        // the scalar/AVX2 selection for free, no per-caller copy.
        SoftmaxInPlace(row);
        for (std::size_t m = 0; m < M; ++m) rho(u, m) = row[m];
      }

      // --- Item posteriors under community-mixture expected logs.
      std::fill(ll1.begin(), ll1.end(), 0.0);
      std::fill(ll0.begin(), ll0.end(), 0.0);
      for (const Answer& a : answers.answers()) {
        const bool vote = a.labels.Contains(c);
        double v1 = 0.0;
        double v0 = 0.0;
        for (std::size_t m = 0; m < M; ++m) {
          const double r = rho(a.worker, m);
          if (vote) {
            v1 += r * sens_logs[m].log_p;
            v0 += r * spec_logs[m].log_not_p;
          } else {
            v1 += r * sens_logs[m].log_not_p;
            v0 += r * spec_logs[m].log_p;
          }
        }
        ll1[a.item] += v1;
        ll0[a.item] += v0;
      }
      change = 0.0;
      for (ItemId i = 0; i < num_items; ++i) {
        if (votes.answered[i] <= 0.0) continue;
        const double updated =
            Sigmoid(class_logs.log_p - class_logs.log_not_p + ll1[i] - ll0[i]);
        change = std::max(change, std::abs(updated - q[i]));
        q[i] = updated;
      }
    }

    for (ItemId i = 0; i < num_items; ++i) {
      const double score = votes.answered[i] > 0.0 ? q[i] : 0.0;
      result.label_scores(i, c) = score;
      if (score > options_.threshold) result.predictions[i].Add(c);
    }
  }
  result.iterations = total_iterations;
  return result;
}

}  // namespace cpa
