#include "core/sweep/sweep_kernels.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "core/sweep/simd.h"
#include "util/logging.h"
#include "util/special_functions.h"

namespace cpa::sweep {
namespace {

/// Shard grains of the parallel phases. They shape the reduction tree, so
/// they are fixed constants — never derived from the thread count.
constexpr std::size_t kAnswerGrain = 2048;
constexpr std::size_t kItemGrain = 256;
constexpr std::size_t kRowGrain = 1024;

/// Cap on the total per-call λ reduce scratch, in bank entries (doubles):
/// 8M entries = 64 MB, ≈ the λ budget of `CpaOptions::Recommended`.
constexpr std::size_t kLambdaScratchEntryBudget = 8'000'000;

}  // namespace

// ---------------------------------------------------------------------------
// Cluster activity
// ---------------------------------------------------------------------------

void BuildClusterActivity(const Matrix& phi, const SweepScheduler& scheduler,
                          ClusterActivity& out, double threshold) {
  const std::size_t I = phi.rows();
  const std::size_t T = phi.cols();
  out.offsets.assign(I + 1, 0);
  scheduler.ParallelFor(
      I,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto row = phi.Row(i);
          std::uint32_t count = 0;
          for (std::size_t t = 0; t < T; ++t) {
            if (row[t] >= threshold) ++count;
          }
          out.offsets[i + 1] = count;
        }
      },
      /*min_shard=*/kItemGrain);
  for (std::size_t i = 0; i < I; ++i) out.offsets[i + 1] += out.offsets[i];
  out.clusters.resize(out.offsets[I]);
  out.weights.resize(out.offsets[I]);
  scheduler.ParallelFor(
      I,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto row = phi.Row(i);
          std::uint32_t cursor = out.offsets[i];
          for (std::size_t t = 0; t < T; ++t) {
            if (row[t] < threshold) continue;
            out.clusters[cursor] = static_cast<std::uint32_t>(t);
            out.weights[cursor] = row[t];
            ++cursor;
          }
        }
      },
      /*min_shard=*/kItemGrain);
}

void UpdateClusterActivityRows(const Matrix& phi, std::span<const ItemId> items,
                               ClusterActivity& out) {
  const std::size_t I = phi.rows();
  const std::size_t T = phi.cols();
  CPA_CHECK_EQ(out.offsets.size(), I + 1);
  if (items.empty()) return;
  std::vector<ItemId> touched(items.begin(), items.end());
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  // Recompute the touched rows into side buffers (|touched| × T scans —
  // the only ϕ reads of the whole update).
  std::vector<std::uint32_t> row_offsets(touched.size() + 1, 0);
  std::vector<std::uint32_t> row_clusters;
  std::vector<double> row_weights;
  bool sizes_unchanged = true;
  for (std::size_t j = 0; j < touched.size(); ++j) {
    const ItemId i = touched[j];
    CPA_CHECK_LT(i, I);
    const auto row = phi.Row(i);
    for (std::size_t t = 0; t < T; ++t) {
      if (row[t] < kSkipMass) continue;
      row_clusters.push_back(static_cast<std::uint32_t>(t));
      row_weights.push_back(row[t]);
    }
    row_offsets[j + 1] = static_cast<std::uint32_t>(row_clusters.size());
    const std::uint32_t new_count = row_offsets[j + 1] - row_offsets[j];
    if (new_count != out.offsets[i + 1] - out.offsets[i]) {
      sizes_unchanged = false;
    }
  }

  if (sizes_unchanged) {
    // Fast path (rows concentrate quickly, so the active set is usually
    // stable between rounds): overwrite each row in place.
    for (std::size_t j = 0; j < touched.size(); ++j) {
      const std::uint32_t from = row_offsets[j];
      const std::uint32_t count = row_offsets[j + 1] - from;
      std::copy_n(row_clusters.begin() + from, count,
                  out.clusters.begin() + out.offsets[touched[j]]);
      std::copy_n(row_weights.begin() + from, count,
                  out.weights.begin() + out.offsets[touched[j]]);
    }
    return;
  }

  // Splice: one pass over the CSR, copying untouched rows and inserting
  // the recomputed ones. O(I + nnz) moves, no ϕ scans.
  std::vector<std::uint32_t> new_offsets(I + 1, 0);
  std::vector<std::uint32_t> new_clusters;
  std::vector<double> new_weights;
  new_clusters.reserve(out.clusters.size());
  new_weights.reserve(out.weights.size());
  std::size_t next_touched = 0;
  for (ItemId i = 0; i < I; ++i) {
    if (next_touched < touched.size() && touched[next_touched] == i) {
      const std::uint32_t from = row_offsets[next_touched];
      const std::uint32_t to = row_offsets[next_touched + 1];
      new_clusters.insert(new_clusters.end(), row_clusters.begin() + from,
                          row_clusters.begin() + to);
      new_weights.insert(new_weights.end(), row_weights.begin() + from,
                         row_weights.begin() + to);
      ++next_touched;
    } else {
      new_clusters.insert(new_clusters.end(),
                          out.clusters.begin() + out.offsets[i],
                          out.clusters.begin() + out.offsets[i + 1]);
      new_weights.insert(new_weights.end(), out.weights.begin() + out.offsets[i],
                         out.weights.begin() + out.offsets[i + 1]);
    }
    new_offsets[i + 1] = static_cast<std::uint32_t>(new_clusters.size());
  }
  out.offsets = std::move(new_offsets);
  out.clusters = std::move(new_clusters);
  out.weights = std::move(new_weights);
}

bool ClusterActivityEquals(const ClusterActivity& lhs, const ClusterActivity& rhs) {
  return lhs.offsets == rhs.offsets && lhs.clusters == rhs.clusters &&
         lhs.weights == rhs.weights;
}

// ---------------------------------------------------------------------------
// MAP kernels
// ---------------------------------------------------------------------------

void UpdateWorkerResponsibility(CpaModel& model, const AnswerView& view, WorkerId u,
                                std::span<const std::uint32_t> indices,
                                const ClusterActivity* activity) {
  const std::size_t M = model.num_communities();
  const std::size_t T = model.num_clusters();
  auto scores = model.kappa.Row(u);
  for (std::size_t m = 0; m < M; ++m) scores[m] = model.elog_pi[m];
  const auto accumulate = [&](std::span<const LabelId> labels, std::size_t t,
                              double weight) {
    const Matrix& elog_psi_t = model.elog_psi[t];
    for (std::size_t m = 0; m < M; ++m) {
      const auto psi_row = elog_psi_t.Row(m);
      double loglik = 0.0;
      for (LabelId c : labels) loglik += psi_row[c];
      scores[m] += weight * loglik;
    }
  };
  for (std::uint32_t index : indices) {
    const ItemId item = view.item(index);
    const auto labels = view.labels(index);
    if (activity != nullptr) {
      const auto active = activity->ClustersOf(item);
      const auto weights = activity->WeightsOf(item);
      for (std::size_t k = 0; k < active.size(); ++k) {
        accumulate(labels, active[k], weights[k]);
      }
    } else {
      const auto phi_row = model.phi.Row(item);
      for (std::size_t t = 0; t < T; ++t) {
        if (phi_row[t] < kSkipMass) continue;
        accumulate(labels, t, phi_row[t]);
      }
    }
  }
  SoftmaxInPlace(scores, kSoftmaxFloorNats);
}

/// Through the Beta-Bernoulli channel:
///   w_i Σ_c [ỹ_ic E ln θ_tc + (1−ỹ_ic) E ln(1−θ_tc)]
///     = w_i Σ_c E ln(1−θ_tc)
///       + Σ_{c: ỹ>0} (w_i ỹ_ic)(E ln θ_tc − E ln(1−θ_tc)),
/// with w_i the item's pseudo-observation multiplicity. The base sum is
/// cached per cluster; the per-label deltas are label-major AXPYs over t.
void AddEvidenceTerm(const CpaModel& model, ItemId i, std::span<double> scores,
                     double extra_scale) {
  if (model.y_evidence[i].empty()) return;
  const std::size_t T = model.num_clusters();
  const double evidence_scale = model.y_evidence_weight[i] * extra_scale;
  Axpy(evidence_scale, model.elog_theta_base, scores.first(T));
  for (const auto& [c, weight] : model.y_evidence[i]) {
    Axpy(evidence_scale * weight, model.elog_theta_delta_t.Row(c), scores);
  }
}

void UpdateItemResponsibility(CpaModel& model, const AnswerView& view, ItemId i,
                              std::span<const std::uint32_t> indices) {
  const std::size_t M = model.num_communities();
  const std::size_t T = model.num_clusters();
  auto scores = model.phi.Row(i);
  for (std::size_t t = 0; t < T; ++t) scores[t] = model.elog_tau[t];
  AddEvidenceTerm(model, i, scores);
  // Optional answer term (Eq. 3 omits it; see cpa_options.h).
  if (model.options().phi_answer_term) {
    for (std::uint32_t index : indices) {
      const auto labels = view.labels(index);
      const auto kappa_row = model.kappa.Row(view.worker(index));
      for (std::size_t t = 0; t < T; ++t) {
        const Matrix& elog_psi_t = model.elog_psi[t];
        double expected = 0.0;
        for (std::size_t m = 0; m < M; ++m) {
          const double weight = kappa_row[m];
          if (weight < kSkipMass) continue;
          const auto psi_row = elog_psi_t.Row(m);
          double loglik = 0.0;
          for (LabelId c : labels) loglik += psi_row[c];
          expected += weight * loglik;
        }
        scores[t] += expected;
      }
    }
  }
  SoftmaxInPlace(scores, kSoftmaxFloorNats);
}

void UpdateItemResponsibilityFromEvidence(CpaModel& model, ItemId i) {
  const std::size_t T = model.num_clusters();
  auto scores = model.phi.Row(i);
  for (std::size_t t = 0; t < T; ++t) scores[t] = model.elog_tau[t];
  AddEvidenceTerm(model, i, scores);
  SoftmaxInPlace(scores, kSoftmaxFloorNats);
}

// ---------------------------------------------------------------------------
// Label evidence
// ---------------------------------------------------------------------------

double SoftJaccardAgreement(std::span<const LabelId> labels,
                            std::span<const std::pair<LabelId, double>> evidence) {
  double overlap = 0.0;
  double evidence_total = 0.0;
  for (const auto& [c, weight] : evidence) {
    evidence_total += weight;
    if (std::binary_search(labels.begin(), labels.end(), c)) overlap += weight;
  }
  const double denom =
      static_cast<double>(labels.size()) + evidence_total - overlap;
  return denom > 0.0 ? overlap / denom : 0.0;
}

void AccumulateLabelEvidence(CpaModel& model, const AnswerView& view, ItemId i,
                             std::span<const std::uint32_t> indices,
                             std::span<const double> worker_weight,
                             double configured_scale,
                             std::span<double> dense_scratch) {
  auto& evidence = model.y_evidence[i];
  evidence.clear();
  model.y_evidence_weight[i] = 0.0;
  if (indices.empty()) return;
  std::fill(dense_scratch.begin(), dense_scratch.end(), 0.0);
  double total_weight = 0.0;
  for (std::uint32_t index : indices) {
    const double w = worker_weight[view.worker(index)];
    total_weight += w;
    for (LabelId c : view.labels(index)) dense_scratch[c] += w;
  }
  if (total_weight <= 0.0) return;
  for (LabelId c = 0; c < model.num_labels(); ++c) {
    if (dense_scratch[c] > 0.0) {
      evidence.emplace_back(c, dense_scratch[c] / total_weight);
    }
  }
  model.y_evidence_weight[i] =
      configured_scale > 0.0
          ? configured_scale
          : std::max<double>(1.0, static_cast<double>(indices.size()));
}

std::vector<double> ComputeWorkerReliability(const CpaModel& model,
                                             const AnswerView& view,
                                             const SweepScheduler& scheduler) {
  const std::size_t U = model.num_workers();
  const std::size_t M = model.num_communities();
  const CpaOptions& options = model.options();
  std::vector<double> agreement(U, 0.0);
  std::vector<double> answer_count(U, 0.0);

  // Bootstrap check: reliability is meaningful only once some answered item
  // carries consensus evidence.
  bool any_evidence = false;
  for (ItemId i = 0; i < model.num_items() && !any_evidence; ++i) {
    any_evidence = !model.y_evidence[i].empty() && !view.AnswersOfItem(i).empty();
  }
  if (!any_evidence) return std::vector<double>(U, 1.0);  // bootstrap sweep

  // Per-worker mean soft-Jaccard agreement between each answer and the
  // current consensus of the answered item. Rows are disjoint → parallel.
  scheduler.ParallelFor(
      U,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t u = begin; u < end; ++u) {
          for (std::uint32_t index : view.AnswersOfWorker(static_cast<WorkerId>(u))) {
            const auto& evidence = model.y_evidence[view.item(index)];
            if (evidence.empty()) continue;
            agreement[u] += SoftJaccardAgreement(view.labels(index), evidence);
            answer_count[u] += 1.0;
          }
        }
      },
      /*min_shard=*/kRowGrain / 8);
  for (WorkerId u = 0; u < U; ++u) {
    if (answer_count[u] > 0.0) agreement[u] /= answer_count[u];
  }

  // Community pooling: answer-weighted mean agreement per community, then
  // shrink each worker toward its (κ-mixed) community mean.
  std::vector<double> community_sum(M, 0.0);
  std::vector<double> community_mass(M, 0.0);
  for (WorkerId u = 0; u < U; ++u) {
    if (answer_count[u] <= 0.0) continue;
    const auto kappa_row = model.kappa.Row(u);
    for (std::size_t m = 0; m < M; ++m) {
      community_sum[m] += kappa_row[m] * answer_count[u] * agreement[u];
      community_mass[m] += kappa_row[m] * answer_count[u];
    }
  }
  std::vector<double> weights(U, 1.0);
  std::vector<double> shrunk(U, 0.0);
  double best = 0.0;
  for (WorkerId u = 0; u < U; ++u) {
    if (answer_count[u] <= 0.0) continue;
    const auto kappa_row = model.kappa.Row(u);
    double community_mean = 0.0;
    for (std::size_t m = 0; m < M; ++m) {
      const double mean =
          community_mass[m] > 0.0 ? community_sum[m] / community_mass[m] : 0.5;
      community_mean += kappa_row[m] * mean;
    }
    const double s = options.reliability_shrinkage;
    shrunk[u] =
        (answer_count[u] * agreement[u] + s * community_mean) / (answer_count[u] + s);
    best = std::max(best, shrunk[u]);
  }
  // Reliability is relative: normalising by the best worker keeps the
  // honest/spammer contrast even when heavy spam dilutes the consensus and
  // absolute agreements are uniformly low (otherwise every weight hits the
  // floor and the reinforcement loop loses all discrimination).
  if (best <= 1e-9) return weights;
  for (WorkerId u = 0; u < U; ++u) {
    if (answer_count[u] <= 0.0) continue;
    weights[u] = std::max(std::pow(shrunk[u] / best, options.reliability_sharpness),
                          options.reliability_floor);
  }
  return weights;
}

void UpdateLabelEvidence(CpaModel& model, const AnswerView& view,
                         const std::vector<LabelSet>* observed_truth,
                         const std::vector<LabelSet>* self_training_labels,
                         const SweepScheduler& scheduler) {
  const LabelEvidence strategy = model.options().label_evidence;

  // Worker weights for the frequency-style strategies, computed from the
  // *previous* consensus (mutual reinforcement across sweeps).
  std::vector<double> worker_weight(model.num_workers(), 1.0);
  if (strategy == LabelEvidence::kReliabilityWeighted) {
    worker_weight = ComputeWorkerReliability(model, view, scheduler);
  }

  const double configured_scale = model.options().evidence_scale;
  scheduler.ParallelFor(
      model.num_items(),
      [&](std::size_t begin, std::size_t end) {
        std::vector<double> dense(model.num_labels(), 0.0);
        for (std::size_t i = begin; i < end; ++i) {
          auto& evidence = model.y_evidence[i];
          const auto indices = view.AnswersOfItem(static_cast<ItemId>(i));
          // Observed truth always wins (semi-supervised support).
          if (observed_truth != nullptr && i < observed_truth->size() &&
              !(*observed_truth)[i].empty()) {
            evidence.clear();
            for (LabelId c : (*observed_truth)[i]) evidence.emplace_back(c, 1.0);
            model.y_evidence_weight[i] =
                configured_scale > 0.0
                    ? configured_scale
                    : std::max<double>(1.0, static_cast<double>(indices.size()));
            continue;
          }
          if (strategy == LabelEvidence::kObservedOnly) {
            evidence.clear();
            model.y_evidence_weight[i] = 0.0;
            continue;
          }
          if (strategy == LabelEvidence::kSelfTraining &&
              self_training_labels != nullptr) {
            evidence.clear();
            model.y_evidence_weight[i] = 0.0;
            for (LabelId c : (*self_training_labels)[i]) evidence.emplace_back(c, 1.0);
            if (!evidence.empty()) {
              model.y_evidence_weight[i] =
                  configured_scale > 0.0
                      ? configured_scale
                      : std::max<double>(1.0, static_cast<double>(indices.size()));
            }
            continue;
          }
          // Frequency-style evidence (also the self-training bootstrap): the
          // (reliability-)weighted mean answer indicator.
          AccumulateLabelEvidence(model, view, static_cast<ItemId>(i), indices,
                                  worker_weight, configured_scale, dense);
        }
      },
      /*min_shard=*/kItemGrain);
}

// ---------------------------------------------------------------------------
// REDUCE kernels
// ---------------------------------------------------------------------------

void UpdateSticks(Matrix& sticks, const Matrix& responsibilities,
                  double concentration, const SweepScheduler& scheduler) {
  const std::size_t K = sticks.rows() + 1;
  if (K <= 1) return;
  CPA_CHECK_EQ(responsibilities.cols(), K);
  // Column masses n_k = Σ_rows resp(·, k). Partials are K-wide arena
  // checkouts — spans, not vectors — so a sweep's repeated stick updates
  // reuse the same slab.
  std::vector<double> mass(K, 0.0);
  scheduler.ParallelReduce<std::span<double>>(
      responsibilities.rows(), kRowGrain,
      [K](ScratchArena& arena) { return arena.AllocZeroed<double>(K); },
      [&](std::span<double>& partial, std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          simd::Accumulate(partial, responsibilities.Row(r));
        }
      },
      [](std::span<double>& into, std::span<double>& from) {
        simd::Accumulate(into, from);
      },
      [&](std::span<double>& root) { simd::Accumulate(mass, root); });
  // Suffix sums: tail_k = Σ_{l > k} n_l.
  double tail = 0.0;
  std::vector<double> tails(K, 0.0);
  for (std::size_t k = K; k-- > 0;) {
    tails[k] = tail;
    tail += mass[k];
  }
  for (std::size_t k = 0; k + 1 < K; ++k) {
    sticks(k, 0) = 1.0 + mass[k];
    sticks(k, 1) = concentration + tails[k];
  }
}

void UpdateLambda(CpaModel& model, const AnswerView& view,
                  const ClusterActivity& activity, const SweepScheduler& scheduler) {
  const std::size_t M = model.num_communities();
  const std::size_t C = model.num_labels();
  const double prior = model.options().lambda0;
  for (auto& bank : model.lambda) bank.Fill(prior);
  // Each partial is a full copy of the λ statistic (T × M × C doubles), so
  // the block count is additionally capped to keep the transient scratch
  // within a few multiples of λ itself — `CpaOptions::Recommended` sizes λ
  // against a memory budget and the reduce must not blow past it 16-fold.
  // A pure function of the bank shape (never of the thread count), so the
  // reduction tree stays thread-count invariant.
  const std::size_t T = model.num_clusters();
  const std::size_t bank_entries = std::max<std::size_t>(1, T * M * C);
  const std::size_t max_blocks = std::clamp<std::size_t>(
      kLambdaScratchEntryBudget / bank_entries, 1, SweepScheduler::kMaxReduceBlocks);
  // Each partial is one flat T×M×C arena checkout (bank t at offset t·M·C)
  // — the heaviest scratch of the whole engine, and the reason the reduce
  // arena exists: steady-state sweeps reuse the warm slabs instead of
  // re-allocating megabytes per call.
  scheduler.ParallelReduce<std::span<double>>(
      view.num_answers(), kAnswerGrain,
      [&](ScratchArena& arena) { return arena.AllocZeroed<double>(bank_entries); },
      [&](std::span<double>& banks, std::size_t begin, std::size_t end) {
        for (std::size_t index = begin; index < end; ++index) {
          const ItemId item = view.item(index);
          const auto labels = view.labels(index);
          const auto kappa_row = model.kappa.Row(view.worker(index));
          const auto active = activity.ClustersOf(item);
          const auto phi_weights = activity.WeightsOf(item);
          for (std::size_t k = 0; k < active.size(); ++k) {
            double* bank = banks.data() + active[k] * M * C;
            for (std::size_t m = 0; m < M; ++m) {
              const double weight = phi_weights[k] * kappa_row[m];
              if (weight < kSkipMass) continue;
              double* row = bank + m * C;
              for (LabelId c : labels) row[c] += weight;
            }
          }
        }
      },
      [](std::span<double>& into, std::span<double>& from) {
        simd::Accumulate(into, from);
      },
      [&](std::span<double>& root) {
        for (std::size_t t = 0; t < T; ++t) {
          simd::Accumulate(model.lambda[t].Data(),
                           root.subspan(t * M * C, M * C));
        }
      },
      max_blocks);
}

void UpdateZeta(CpaModel& model, const ClusterActivity& activity,
                const SweepScheduler& scheduler) {
  const std::size_t C = model.num_labels();
  const std::size_t entries = model.num_clusters() * C;
  model.zeta.Fill(model.options().zeta0);
  scheduler.ParallelReduce<std::span<double>>(
      model.num_items(), kItemGrain,
      [&](ScratchArena& arena) { return arena.AllocZeroed<double>(entries); },
      [&](std::span<double>& partial, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          if (model.y_evidence[i].empty()) continue;
          const auto active = activity.ClustersOf(static_cast<ItemId>(i));
          const auto phi_weights = activity.WeightsOf(static_cast<ItemId>(i));
          const double multiplicity = model.y_evidence_weight[i];
          for (const auto& [c, weight] : model.y_evidence[i]) {
            for (std::size_t k = 0; k < active.size(); ++k) {
              partial[active[k] * C + c] += phi_weights[k] * weight * multiplicity;
            }
          }
        }
      },
      [](std::span<double>& into, std::span<double>& from) {
        simd::Accumulate(into, from);
      },
      [&](std::span<double>& root) { simd::Accumulate(model.zeta.Data(), root); });
}

void UpdateThetaChannel(CpaModel& model, const ClusterActivity& activity,
                        const SweepScheduler& scheduler) {
  const std::size_t T = model.num_clusters();
  const std::size_t C = model.num_labels();
  const double a0 = model.theta_prior_on();
  const double b0 = model.theta_prior_off();
  // a_tc = a0 + Σ_i w_i ϕ_it ỹ_ic; b_tc = b0 + Σ_i w_i ϕ_it (1 − ỹ_ic),
  // where w_i is the item's pseudo-observation multiplicity and the sums
  // run over items carrying evidence. With mass_t = Σ w_i ϕ_it of those
  // items, b_tc = b0 + mass_t − (a_tc − a0).
  struct Stats {
    std::span<double> a;     ///< T × C, row-major
    std::span<double> mass;  ///< T
  };
  Matrix total_a(T, C, 0.0);
  std::vector<double> total_mass(T, 0.0);
  scheduler.ParallelReduce<Stats>(
      model.num_items(), kItemGrain,
      [&](ScratchArena& arena) {
        return Stats{arena.AllocZeroed<double>(T * C), arena.AllocZeroed<double>(T)};
      },
      [&](Stats& partial, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          if (model.y_evidence[i].empty()) continue;
          const auto active = activity.ClustersOf(static_cast<ItemId>(i));
          const auto phi_weights = activity.WeightsOf(static_cast<ItemId>(i));
          const double multiplicity = model.y_evidence_weight[i];
          for (std::size_t k = 0; k < active.size(); ++k) {
            partial.mass[active[k]] += phi_weights[k] * multiplicity;
          }
          for (const auto& [c, weight] : model.y_evidence[i]) {
            for (std::size_t k = 0; k < active.size(); ++k) {
              partial.a[active[k] * C + c] += phi_weights[k] * weight * multiplicity;
            }
          }
        }
      },
      [](Stats& into, Stats& from) {
        simd::Accumulate(into.a, from.a);
        simd::Accumulate(into.mass, from.mass);
      },
      [&](Stats& root) {
        simd::Accumulate(total_a.Data(), root.a);
        simd::Accumulate(total_mass, root.mass);
      });
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t c = 0; c < C; ++c) {
      model.theta_a(t, c) = a0 + total_a(t, c);
      model.theta_b(t, c) = b0 + total_mass[t] - total_a(t, c);
    }
  }
}

// ---------------------------------------------------------------------------
// Cluster seeding
// ---------------------------------------------------------------------------

LabelSet ConsensusFromEvidence(const CpaModel& model, ItemId item) {
  LabelSet consensus;
  LabelId best_label = 0;
  double best_weight = -1.0;
  for (const auto& [c, weight] : model.y_evidence[item]) {
    if (weight >= 0.5) consensus.Add(c);
    if (weight > best_weight) {
      best_weight = weight;
      best_label = c;
    }
  }
  if (consensus.empty() && best_weight >= 0.0) consensus.Add(best_label);
  return consensus;
}

void WriteSeedRow(CpaModel& model, ItemId item, std::size_t cluster) {
  // One-hot: any residual spread would leak every seeded item's evidence
  // into every cluster's statistics (the offline fit recomputes ϕ each
  // sweep, but the online learner only revisits items when they reappear).
  auto row = model.phi.Row(item);
  std::fill(row.begin(), row.end(), 0.0);
  row[cluster] = 1.0;
}

void SeedClustersFromConsensus(CpaModel& model) {
  // Symmetry breaking for the item clusters: items sharing an identical
  // majority-consensus label set start in the same cluster. Distinct
  // consensus sets are ranked by frequency and assigned cluster indices in
  // that order — collision-free for the T most frequent sets, and aligned
  // with the size-biased geometry of the truncated stick-breaking prior
  // (E[ln τ_t] decays with t). Items whose set ranks beyond T join the
  // assigned cluster with the highest Jaccard overlap. Without label-
  // aligned seeding the truncated mixture routinely locks into clusterings
  // uncorrelated with the label structure.
  const std::size_t T = model.num_clusters();
  if (T <= 1) return;

  struct Group {
    LabelSet consensus;
    std::vector<ItemId> items;
  };
  std::map<std::string, Group> groups;
  for (ItemId i = 0; i < model.num_items(); ++i) {
    const LabelSet consensus = ConsensusFromEvidence(model, i);
    if (consensus.empty()) continue;  // no evidence: keep the uniform row
    Group& group = groups[consensus.ToString()];
    group.consensus = consensus;
    group.items.push_back(i);
  }
  std::vector<const Group*> ranked;
  ranked.reserve(groups.size());
  for (const auto& [key, group] : groups) ranked.push_back(&group);
  std::sort(ranked.begin(), ranked.end(), [](const Group* a, const Group* b) {
    if (a->items.size() != b->items.size()) return a->items.size() > b->items.size();
    return a->consensus.labels()[0] < b->consensus.labels()[0];  // deterministic
  });

  const std::size_t assigned = std::min(ranked.size(), T);
  for (std::size_t rank = 0; rank < assigned; ++rank) {
    for (ItemId i : ranked[rank]->items) WriteSeedRow(model, i, rank);
  }
  // Overflow sets: join the assigned cluster with the best Jaccard match.
  for (std::size_t rank = assigned; rank < ranked.size(); ++rank) {
    std::size_t best_cluster = assigned - 1;
    double best_score = -1.0;
    for (std::size_t candidate = 0; candidate < assigned; ++candidate) {
      const double score =
          ranked[rank]->consensus.Jaccard(ranked[candidate]->consensus);
      if (score > best_score) {
        best_score = score;
        best_cluster = candidate;
      }
    }
    for (ItemId i : ranked[rank]->items) WriteSeedRow(model, i, best_cluster);
  }
}

}  // namespace cpa::sweep
