#ifndef CPA_CORE_SWEEP_ANSWER_VIEW_H_
#define CPA_CORE_SWEEP_ANSWER_VIEW_H_

/// \file answer_view.h
/// \brief Flat CSR layout of an `AnswerMatrix` for the sweep kernels.
///
/// `AnswerMatrix` stores answers as a vector of structs (each owning a
/// heap-allocated label vector) plus per-entity `vector<vector>` indexes.
/// The inference sweeps walk those indexes millions of times per fit, so
/// the view flattens everything once into contiguous arrays:
///
/// - worker→answer and item→answer CSR indexes (offsets + one flat index
///   array each, stream order preserved within an entity);
/// - structure-of-arrays answer fields: item id, worker id, and a CSR of
///   label ids, so a kernel touches three cache lines per answer instead
///   of chasing an `Answer` struct into a `LabelSet` heap buffer.
///
/// The view is a layout cache of the caller-owned matrix, not model state:
/// it carries no inference quantities, and flat answer indices are the
/// same in both representations. Build once per fit (offline VI) or per
/// stream (SVI; rebuild when the stream matrix has grown).

#include <cstddef>
#include <span>
#include <vector>

#include "data/answer_matrix.h"
#include "data/types.h"

namespace cpa {

/// \brief Contiguous worker/item/label indexes over a fixed answer set.
class AnswerView {
 public:
  /// Empty view (0 answers over 0×0 dimensions).
  AnswerView() = default;

  /// Flattens `answers`; the view is valid for the matrix's current answer
  /// set and is not updated when the matrix grows (see `ExtendTo`). Checks
  /// that the answer count and total label assignments fit the 32-bit
  /// indices (types.h sizes them for the paper's scales; a stream beyond
  /// 2^32 must fail loudly, not wrap).
  explicit AnswerView(const AnswerMatrix& answers);

  /// Extends the view to cover answers appended to the same matrix since
  /// it was built: the SoA fields of the new suffix are flattened
  /// incrementally (flat indices are stable — the matrix only appends) and
  /// only the two entity CSR indexes are rebuilt, so a growing stream
  /// costs O(new labels + answers) per growth event instead of a full
  /// re-flatten. Dimensions must match; the matrix must not have shrunk.
  void ExtendTo(const AnswerMatrix& answers);

  std::size_t num_items() const { return num_items_; }
  std::size_t num_workers() const { return num_workers_; }
  std::size_t num_answers() const { return answer_item_.size(); }

  /// Flat answer indices of worker `u`, in stream order.
  std::span<const std::uint32_t> AnswersOfWorker(WorkerId u) const {
    return {worker_answers_.data() + worker_offsets_[u],
            worker_offsets_[u + 1] - worker_offsets_[u]};
  }

  /// Flat answer indices of item `i`, in stream order.
  std::span<const std::uint32_t> AnswersOfItem(ItemId i) const {
    return {item_answers_.data() + item_offsets_[i],
            item_offsets_[i + 1] - item_offsets_[i]};
  }

  /// \name SoA answer fields (indexed by flat answer index).
  /// @{
  ItemId item(std::size_t index) const { return answer_item_[index]; }
  WorkerId worker(std::size_t index) const { return answer_worker_[index]; }
  std::span<const LabelId> labels(std::size_t index) const {
    return {labels_.data() + label_offsets_[index],
            label_offsets_[index + 1] - label_offsets_[index]};
  }
  std::size_t label_count(std::size_t index) const {
    return label_offsets_[index + 1] - label_offsets_[index];
  }
  /// @}

 private:
  /// Appends the SoA fields of answers [num_answers(), total) and rebuilds
  /// the worker/item CSR indexes over the full range.
  void AppendAndReindex(const AnswerMatrix& answers);

  std::size_t num_items_ = 0;
  std::size_t num_workers_ = 0;
  std::vector<std::uint32_t> worker_offsets_;  // U+1
  std::vector<std::uint32_t> worker_answers_;  // A
  std::vector<std::uint32_t> item_offsets_;    // I+1
  std::vector<std::uint32_t> item_answers_;    // A
  std::vector<ItemId> answer_item_;            // A
  std::vector<WorkerId> answer_worker_;        // A
  std::vector<std::uint32_t> label_offsets_;   // A+1
  std::vector<LabelId> labels_;                // total label assignments
};

}  // namespace cpa

#endif  // CPA_CORE_SWEEP_ANSWER_VIEW_H_
