#ifndef CPA_CORE_SWEEP_SWEEP_KERNELS_H_
#define CPA_CORE_SWEEP_SWEEP_KERNELS_H_

/// \file sweep_kernels.h
/// \brief The shared sweep kernels of CPA inference (Algorithm 3's MAP and
/// REDUCE bodies), called by both offline VI (`vi.cc`) and the SVI local
/// phase (`svi.cc`).
///
/// MAP kernels recompute one responsibility row (κ row of a worker — Eq. 2,
/// ϕ row of an item — Eq. 3) from read-only shared state; rows are disjoint,
/// so any sharding over a `SweepScheduler` is thread-count invariant.
/// REDUCE kernels rebuild the global parameters (sticks, λ, ζ, θ, the label
/// evidence ỹ) from the responsibilities; their accumulations run through
/// `SweepScheduler::ParallelReduce` — per-block partial sufficient
/// statistics merged in a fixed tree order — so they too are bit-identical
/// for 1 and N threads.
///
/// All kernels read answers through the flat `AnswerView` (CSR indexes +
/// SoA labels); the hot worker/λ loops additionally take a
/// `ClusterActivity` — the per-item list of clusters with non-negligible ϕ
/// mass — so an answer touches its item's few active clusters instead of
/// scanning a T-wide ϕ row.

#include <cstddef>
#include <span>
#include <vector>

#include "core/cpa_model.h"
#include "core/sweep/answer_view.h"
#include "core/sweep/sweep_scheduler.h"
#include "data/label_set.h"
#include "util/matrix.h"

namespace cpa::sweep {

/// Responsibilities below this mass are skipped in the accumulation loops;
/// rows concentrate quickly, so this saves most of the T×M work.
inline constexpr double kSkipMass = 1e-8;

/// Softmax underflow floor of the responsibility rows (see
/// `SoftmaxInPlace(span, floor)`): dropped entries carry < 1e-12 mass,
/// four orders of magnitude below `kSkipMass`.
inline constexpr double kSoftmaxFloorNats = 27.6;

/// \brief Per-item CSR of the clusters carrying at least `kSkipMass` of ϕ.
///
/// Rebuilt from ϕ whenever a kernel group needs current activity (ϕ changes
/// between the MAP and REDUCE phases of a sweep). Kernels accepting a
/// nullable activity fall back to scanning the full ϕ row — the right trade
/// for the SVI batch path, which touches few items per batch.
struct ClusterActivity {
  std::vector<std::uint32_t> offsets;   ///< I+1
  std::vector<std::uint32_t> clusters;  ///< active t, ascending per item
  std::vector<double> weights;          ///< matching ϕ_it values

  std::span<const std::uint32_t> ClustersOf(ItemId i) const {
    return {clusters.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
  std::span<const double> WeightsOf(ItemId i) const {
    return {weights.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
};

/// Rebuilds `out` from the current ϕ (threshold `kSkipMass` by default;
/// prediction passes its own, lower prune threshold), sharded over the
/// scheduler (counting pass + exclusive scan + fill pass).
void BuildClusterActivity(const Matrix& phi, const SweepScheduler& scheduler,
                          ClusterActivity& out, double threshold = kSkipMass);

/// Recomputes only the activity rows of `items` from the current ϕ,
/// leaving every other row untouched — the incremental companion of
/// `BuildClusterActivity` for the SVI batch path, where a reinforcement
/// round changes just the batch items' ϕ rows (an I×T rescan per round was
/// the cost flagged in ROADMAP). `out` must already span `phi.rows()`
/// items; duplicate ids in `items` are fine. When every recomputed row
/// keeps its entry count the CSR is patched in place; otherwise the arrays
/// are spliced in one O(nnz) pass — never an I×T scan. The result is
/// byte-identical to a full rebuild (the SVI loop asserts this in Debug).
void UpdateClusterActivityRows(const Matrix& phi, std::span<const ItemId> items,
                               ClusterActivity& out);

/// True when `lhs` and `rhs` hold identical lists (offsets, clusters, and
/// bit-identical weights) — the Debug-mode incremental-vs-rebuilt check.
bool ClusterActivityEquals(const ClusterActivity& lhs, const ClusterActivity& rhs);

/// \name MAP kernels (one disjoint row each).
/// @{

/// Eq. 2: recomputes κ row `u` from the given answers of worker `u`.
/// `activity` (nullable) supplies the active clusters of each answered item.
void UpdateWorkerResponsibility(CpaModel& model, const AnswerView& view, WorkerId u,
                                std::span<const std::uint32_t> indices,
                                const ClusterActivity* activity);

/// Eq. 3 (+ optional answer evidence): recomputes ϕ row `i` from the answers
/// of item `i` and the item's label evidence ỹ_i.
void UpdateItemResponsibility(CpaModel& model, const AnswerView& view, ItemId i,
                              std::span<const std::uint32_t> indices);

/// The evidence-only ϕ row update (Eq. 3 without the answer term): the SVI
/// local phase for re-seen items and the global-refresh soft update.
void UpdateItemResponsibilityFromEvidence(CpaModel& model, ItemId i);

/// Adds the label-evidence term of the ϕ update onto `scores` (length T),
/// scaled by `extra_scale` on top of the item's pseudo-observation weight
/// (the SVI µ path amplifies by the batch redundancy). Uses the label-major
/// `elog_theta_delta_t` cache; no-op when the item carries no evidence.
void AddEvidenceTerm(const CpaModel& model, ItemId i, std::span<double> scores,
                     double extra_scale = 1.0);

/// @}

/// \name Label-evidence accumulation (DESIGN.md §4.2).
/// @{

/// Soft-Jaccard agreement of one answer against an item's evidence:
/// J = Σ_{c∈x} ỹ_c / (|x| + Σ_c ỹ_c − Σ_{c∈x} ỹ_c). 0 when the denominator
/// vanishes.
double SoftJaccardAgreement(std::span<const LabelId> labels,
                            std::span<const std::pair<LabelId, double>> evidence);

/// Rebuilds item `i`'s evidence as the worker-weighted mean answer
/// indicator over `indices` (the frequency-style strategies and the SVI
/// consensus). Clears the evidence first; leaves it empty when `indices`
/// is empty or all weights vanish. `configured_scale` <= 0 scales the
/// pseudo-observation multiplicity by the answer count (cpa_options.h).
/// `dense_scratch` must hold `num_labels` doubles.
void AccumulateLabelEvidence(CpaModel& model, const AnswerView& view, ItemId i,
                             std::span<const std::uint32_t> indices,
                             std::span<const double> worker_weight,
                             double configured_scale,
                             std::span<double> dense_scratch);

/// Per-worker reliability weights for kReliabilityWeighted: mean
/// soft-Jaccard agreement with the current consensus ỹ, shrunk toward the
/// worker's community mean and sharpened (cpa_options.h). All ones on the
/// bootstrap sweep (no consensus yet). Parallel over workers.
std::vector<double> ComputeWorkerReliability(const CpaModel& model,
                                             const AnswerView& view,
                                             const SweepScheduler& scheduler);

/// Rebuilds ỹ for every item according to the configured strategy
/// (`observed_truth` overrides per item when provided; `self_training`
/// entries, when non-null, supply the current hard predictions). Parallel
/// over items.
void UpdateLabelEvidence(CpaModel& model, const AnswerView& view,
                         const std::vector<LabelSet>* observed_truth,
                         const std::vector<LabelSet>* self_training_labels,
                         const SweepScheduler& scheduler);

/// @}

/// \name REDUCE kernels (global parameters; deterministic partial merges).
/// @{

/// Eqs. 4/5: stick Beta parameters from responsibility column masses.
void UpdateSticks(Matrix& sticks, const Matrix& responsibilities,
                  double concentration, const SweepScheduler& scheduler);

/// Eq. 6: λ from scratch over every answer of the view.
void UpdateLambda(CpaModel& model, const AnswerView& view,
                  const ClusterActivity& activity, const SweepScheduler& scheduler);

/// Eq. 7: ζ from scratch over the current label evidence.
void UpdateZeta(CpaModel& model, const ClusterActivity& activity,
                const SweepScheduler& scheduler);

/// Beta-Bernoulli label channel (θ_tc posteriors feeding the ϕ evidence
/// term, marginal label scores, and the kBernoulliProfile prediction mode)
/// from ϕ and ỹ.
void UpdateThetaChannel(CpaModel& model, const ClusterActivity& activity,
                        const SweepScheduler& scheduler);

/// @}

/// \name Cluster seeding (label-aligned symmetry breaking).
/// @{

/// The majority-consensus label set of an item's current evidence
/// (weights ≥ 0.5, falling back to the strongest single label); empty when
/// the item has no evidence.
LabelSet ConsensusFromEvidence(const CpaModel& model, ItemId item);

/// Seeds one ϕ row one-hot on `cluster`.
void WriteSeedRow(CpaModel& model, ItemId item, std::size_t cluster);

/// Initialises ϕ rows so items with identical majority-consensus label
/// sets start in the same cluster, with clusters assigned in consensus-
/// frequency order (matched to the size-biased stick-breaking geometry).
void SeedClustersFromConsensus(CpaModel& model);

/// @}

}  // namespace cpa::sweep

#endif  // CPA_CORE_SWEEP_SWEEP_KERNELS_H_
