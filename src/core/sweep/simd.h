#ifndef CPA_CORE_SWEEP_SIMD_H_
#define CPA_CORE_SWEEP_SIMD_H_

/// \file simd.h
/// \brief Runtime-dispatched SIMD kernels for the hot contiguous-span loops.
///
/// The sweep layer's REDUCE merges (λ/ζ/θ banks), the evidence AXPYs over
/// `elog_theta_delta_t`, and the truncated softmax of the Eq. 2/3
/// responsibility rows all sweep contiguous double spans — the flat layouts
/// from the memory-plane PR were built so these loops could vectorize. This
/// header is the dispatch seam: one `Kernels` table of function pointers per
/// ISA level, resolved once at startup from cpuid (`__builtin_cpu_supports`)
/// and the `CPA_SIMD` environment variable, consumed through thin inline
/// span wrappers.
///
/// ## The bit-identity contract
///
/// Fits must stay bit-identical across {1..N threads} × {arena, heap} ×
/// {scalar, AVX2}, so every kernel obeys one rule: **the sequence of IEEE
/// operations per output value is identical at every level.**
///
/// - Element-wise kernels (`accumulate`, `axpy`) are trivially identical —
///   lane i only ever touches element i.
/// - Summing reductions (`sum`, `dot`, the softmax/log-sum-exp sums) use a
///   fixed *lane-ordered* shape at every level: four independent
///   accumulators fed in steps of four, the tail folded into lanes 0..r-1,
///   then one fixed horizontal combine `(l0+l1)+(l2+l3)`. The scalar
///   fallback implements exactly this shape with plain doubles; the AVX2
///   variant performs the same per-lane additions with vector instructions.
/// - `max_value` is exempt from lane ordering: max is a pure selection, so
///   any association yields identical bits (both forms skip NaN inputs the
///   same way), and the AVX2 variant exploits that with extra accumulator
///   chains to beat the vmaxpd latency.
/// - `exp` stays per-lane scalar `std::exp` in both variants (a vectorized
///   polynomial would diverge from libm in the last ulp), and no variant may
///   use FMA (it rounds once where mul+add rounds twice).
///
/// A kernel that cannot keep this contract ships scalar-only. The contract
/// is enforced by `tests/core/simd_kernels_test.cc`: exact scalar↔AVX2
/// equality on randomized spans (all alignments and remainder tails) plus a
/// full-fit bit-identity run.
///
/// ## Adding an ISA variant
///
/// 1. Implement the kernel set in `sweep_kernels_avx2.cc` (same TU as the
///    scalar reference, `__attribute__((target(...)))` per function — the
///    file itself compiles at the baseline ISA so the dispatch can fall
///    back on machines without the extension).
/// 2. Add a `Level` enumerator, extend `KernelsFor`/`DetectLevel` and the
///    `CPA_SIMD` spelling in `ParseLevelSpec`.
/// 3. Extend the equality suite to pin the new variant against scalar.
///
/// `CPA_SIMD=off` (or `scalar`) forces the scalar table; `CPA_SIMD=avx2`
/// requests AVX2 and falls back to scalar (with a stderr note) when the CPU
/// lacks it; unset/`auto` picks the best supported level. `SimdReportLine()`
/// is the one-line provenance string the server banner and every
/// `BenchReport` config block carry.

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

namespace cpa::simd {

/// ISA levels the dispatch can select. Order is capability order.
enum class Level {
  kScalar = 0,  ///< lane-ordered portable C++ (the reference semantics)
  kAvx2 = 1,    ///< 4-wide AVX2, same per-lane operation sequence
};

/// \brief One ISA level's kernel set. All pointers are always non-null.
///
/// Raw pointers + sizes rather than spans: the table is the ABI between the
/// dispatch and the per-ISA TU, and the wrappers below keep call sites
/// span-typed. Every entry accepts n == 0.
struct Kernels {
  /// into[i] += from[i] — the λ/ζ/θ REDUCE merge/fold and stick-mass rows.
  void (*accumulate)(double* into, const double* from, std::size_t n);
  /// out[i] += scale * in[i] — the `elog_theta_delta_t` evidence AXPY.
  void (*axpy)(double scale, const double* in, double* out, std::size_t n);
  /// Lane-ordered Σ v[i].
  double (*sum)(const double* v, std::size_t n);
  /// Lane-ordered Σ a[i]·b[i] (no FMA).
  double (*dot)(const double* a, const double* b, std::size_t n);
  /// Lane-ordered running max (std::max semantics); -inf for n == 0.
  double (*max_value)(const double* v, std::size_t n);
  /// Numerically stable ln Σ exp(v[i]); -inf for n == 0.
  double (*log_sum_exp)(const double* v, std::size_t n);
  /// Dense softmax in place; returns the log-normaliser (uniform fill on
  /// degenerate all--inf input, matching the historical scalar semantics).
  double (*softmax)(double* v, std::size_t n);
  /// Truncated softmax in place: entries more than `floor_nats` below the
  /// row max become exactly 0. Returns the log-normaliser.
  double (*softmax_floored)(double* v, std::size_t n, double floor_nats);
};

/// The kernel table for `level`. Requesting a level the build or CPU cannot
/// run returns the scalar table, so the result is always safe to call.
const Kernels& KernelsFor(Level level);

/// True when the binary carries AVX2 variants and the CPU reports AVX2.
bool Avx2Available();

/// The level the process is running at (env override applied, lazily
/// resolved on first use and then stable).
Level ActiveLevel();

/// True when `CPA_SIMD` pinned the level (off/scalar/avx2/auto — `auto`
/// does not count as forced).
bool ActiveLevelForced();

/// The active kernel table — what every wrapper below calls through.
const Kernels& Active();

/// "scalar" / "avx2".
std::string_view LevelName(Level level);

/// Parses a `CPA_SIMD` spelling ("off", "scalar", "avx2", "auto", "on").
/// Returns false for unknown spellings. `*forced` reports whether the
/// spelling pins a level (everything except "auto"/"on"/"").
bool ParseLevelSpec(std::string_view spec, Level* level, bool* forced);

/// Pins the active level for the rest of the process (test hook for the
/// scalar-vs-AVX2 full-fit identity suite; levels the CPU cannot run clamp
/// to scalar). Not thread-safe against in-flight kernels — call between
/// fits only.
void SetLevelForTesting(Level level);

/// One-line provenance string, e.g. "simd: avx2 (auto)" or
/// "simd: scalar (forced via CPA_SIMD)".
std::string SimdReportLine();

// ---------------------------------------------------------------------------
// Span wrappers over the active table (the call-site API)
// ---------------------------------------------------------------------------

/// into[i] += from[i] over equal-sized spans.
inline void Accumulate(std::span<double> into, std::span<const double> from) {
  Active().accumulate(into.data(), from.data(), into.size());
}

}  // namespace cpa::simd

#endif  // CPA_CORE_SWEEP_SIMD_H_
