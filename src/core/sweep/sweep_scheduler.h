#ifndef CPA_CORE_SWEEP_SWEEP_SCHEDULER_H_
#define CPA_CORE_SWEEP_SWEEP_SCHEDULER_H_

/// \file sweep_scheduler.h
/// \brief Deterministic sharding of sweep kernels over a `ThreadPool`,
/// with scheduler-owned scratch arenas.
///
/// Algorithm 3 is MapReduce-shaped: the local (MAP) updates touch disjoint
/// rows and parallelise trivially, while the global (REDUCE) accumulations
/// sum over every answer. The scheduler makes both phases thread-count
/// invariant:
///
/// - `ParallelFor` shards an index range over the pool (rows are disjoint,
///   so any partition yields the same result).
/// - `ParallelReduce` partitions the range into blocks whose boundaries
///   depend only on the range size — never on the thread count — computes
///   one partial accumulator per block, and merges the partials on the
///   calling thread in a fixed binary-tree order. Floating-point addition
///   is not associative, so identical blocks + an identical merge tree are
///   what make a fit bit-identical for 1 and N threads.
///
/// With no executor (nullptr) everything runs inline on the calling thread
/// through the same block structure, so sequential and parallel runs agree
/// exactly.
///
/// The memory plane: the scheduler owns one `ScratchArena` per lane
/// (`max(1, num_threads)` lanes). REDUCE partials are checked out of lane
/// 0's arena on the calling thread before the blocks run, and `ParallelMap`
/// hands each MAP shard its own lane arena for per-item scratch — so a
/// long fit (or a prediction pass over many items) allocates slabs once and
/// bumps pointers thereafter. Arenas make the scheduler stateful: one
/// scheduler instance serves one orchestration thread at a time (each
/// fit/predict call owns its scheduler, so this is the existing usage).
///
/// The scheduler waits on per-call latches (`SubmitAndWait`), never on
/// executor-wide idleness, so the executor may be shared — a session lane
/// of the server's `ServerScheduler` works exactly like an owned
/// `ThreadPool` here.
///
/// Every entry point is a template on its callable types, not a
/// `std::function` consumer: the Eq. 2/Eq. 3 bodies, the REDUCE
/// make_scratch/merge/fold closures, and the prediction MAP body all inline
/// into the per-shard/per-block loop. The only type erasure left is the
/// one the `Executor` interface imposes — a single `std::function` per
/// submitted shard, never per element.

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "util/arena.h"
#include "util/thread_pool.h"

namespace cpa {

/// \brief Shards kernels across an executor with deterministic partitioning.
class SweepScheduler {
 public:
  /// Partial accumulators per `ParallelReduce` call are capped at this many
  /// blocks; scratch memory scales with it, result bits do not (the block
  /// count is a pure function of the range size).
  static constexpr std::size_t kMaxReduceBlocks = 16;

  /// Schedules onto `executor`; nullptr = run everything inline.
  /// `arena_mode` selects the scratch policy of the lane arenas —
  /// `kReuse` (default) for production, `kHeap` for the per-call-allocation
  /// baseline of the arena-vs-heap benchmarks and bit-identity tests.
  explicit SweepScheduler(Executor* executor = nullptr,
                          ScratchArena::Mode arena_mode = ScratchArena::Mode::kReuse);

  SweepScheduler(const SweepScheduler&) = delete;
  SweepScheduler& operator=(const SweepScheduler&) = delete;

  Executor* pool() const { return pool_; }
  std::size_t num_threads() const {
    return pool_ == nullptr ? 1 : pool_->num_threads();
  }

  /// Lanes (== arenas) this scheduler owns: `max(1, num_threads())`.
  std::size_t num_lanes() const { return lane_arenas_.size(); }

  /// The scratch arena of one lane. Lane 0 doubles as the calling-thread
  /// arena for REDUCE partials. The arena is mutable scheduler state; see
  /// the class comment for the single-orchestrator contract.
  ScratchArena& lane_arena(std::size_t lane) const { return *lane_arenas_[lane]; }

  /// Aggregate stats over every lane arena (for tests and benches).
  ScratchArena::Stats arena_stats() const;

  /// \brief One contiguous shard of an index range.
  struct Block {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Splits [0, total) into at most `max_blocks` contiguous blocks of at
  /// least `grain` indices each (the last block absorbs the remainder).
  /// A pure function of its arguments — never of the thread count — so the
  /// reduction tree is the same no matter where the blocks execute.
  static std::vector<Block> Partition(std::size_t total, std::size_t grain,
                                      std::size_t max_blocks = kMaxReduceBlocks);

  /// MAP phase: runs `body(begin, end)` over [0, total) in contiguous
  /// shards. Safe only for bodies whose writes are disjoint across shards
  /// (per-row updates). Shard boundaries may depend on the thread count —
  /// determinism comes from disjointness, not from the partition.
  /// Mirrors the sharding of the `::cpa::ParallelFor` helper exactly.
  template <typename Body>
  void ParallelFor(std::size_t total, Body&& body,
                   std::size_t min_shard = 1) const {
    if (total == 0) return;
    const std::size_t grain = std::max<std::size_t>(1, min_shard);
    if (pool_ == nullptr || pool_->num_threads() <= 1 || total < grain * 2) {
      body(0, total);
      return;
    }
    const std::size_t shards = std::min(
        pool_->num_threads(), std::max<std::size_t>(1, total / grain));
    const std::size_t chunk = (total + shards - 1) / shards;
    const std::size_t count = (total + chunk - 1) / chunk;  // non-empty shards
    SubmitAndWait(pool_, count, [&body, chunk, total](std::size_t s) {
      const std::size_t begin = s * chunk;
      body(begin, std::min(total, begin + chunk));
    });
  }

  /// MAP phase with per-shard scratch: like `ParallelFor`, but at most one
  /// shard per lane, each handed its lane's `ScratchArena` inside a fresh
  /// `Frame` (rewound when the shard completes, slabs retained). The body
  /// must produce shard-boundary-independent results — arena memory is
  /// buffer space, never carried state.
  template <typename Body>
  void ParallelMap(std::size_t total, Body&& body,
                   std::size_t min_shard = 1) const {
    if (total == 0) return;
    if (pool_ == nullptr || pool_->num_threads() <= 1 || total < min_shard * 2) {
      ScratchArena& arena = lane_arena(0);
      const ScratchArena::Frame frame(arena);
      body(arena, 0, total);
      return;
    }
    // One shard per lane at most: the shard index doubles as the arena id,
    // so no two concurrent shards ever share an arena.
    const std::size_t shards = std::min(
        num_lanes(),
        std::max<std::size_t>(1, total / std::max<std::size_t>(1, min_shard)));
    const std::size_t chunk = (total + shards - 1) / shards;
    const std::size_t count = (total + chunk - 1) / chunk;  // non-empty shards
    SubmitAndWait(pool_, count, [this, &body, chunk, total](std::size_t s) {
      ScratchArena& arena = lane_arena(s);
      const ScratchArena::Frame frame(arena);
      const std::size_t begin = s * chunk;
      body(arena, begin, std::min(total, begin + chunk));
    });
  }

  /// REDUCE phase: folds [0, total) through per-block partials into the
  /// caller's statistic.
  ///
  /// `make_scratch(arena)` checks one zeroed block accumulator out of the
  /// scheduler's arena (all partials are allocated on the calling thread
  /// before any block runs, so single-lane arenas need no locking);
  /// `body(scratch, begin, end)` accumulates one block; partials are merged
  /// pairwise in a fixed tree order with `merge(into, from)`; finally
  /// `fold(root)` adds the merged root into the caller's statistic on the
  /// calling thread. Bit-identical for any thread count, including the
  /// inline nullptr-pool run. The whole call is wrapped in an arena
  /// `Frame`, so steady-state calls reuse the same slabs.
  ///
  /// `max_blocks` caps the number of partials (≤ kMaxReduceBlocks) —
  /// kernels with large scratch (λ banks) lower it so transient memory
  /// stays within a fixed multiple of the statistic itself. It must be a
  /// pure function of the problem shape, never of the thread count, or
  /// the reduction tree (and with it bit-exactness across thread counts)
  /// would change.
  template <typename Scratch, typename MakeScratch, typename Body,
            typename Merge, typename Fold>
  void ParallelReduce(std::size_t total, std::size_t grain,
                      MakeScratch&& make_scratch, Body&& body, Merge&& merge,
                      Fold&& fold,
                      std::size_t max_blocks = kMaxReduceBlocks) const {
    const std::vector<Block> blocks = Partition(total, grain, max_blocks);
    if (blocks.empty()) return;
    ScratchArena& arena = lane_arena(0);
    const ScratchArena::Frame frame(arena);
    if (blocks.size() == 1) {
      // One block: accumulate into a single scratch and fold it. Multi-
      // block runs fold the merged root with the same `fold(root)` call, so
      // the two paths agree whenever block boundaries agree (they always
      // do: Partition ignores the thread count).
      Scratch root = make_scratch(arena);
      body(root, blocks[0].begin, blocks[0].end);
      fold(root);
      return;
    }
    std::vector<Scratch> partials;
    partials.reserve(blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      partials.push_back(make_scratch(arena));
    }
    RunBlocks(blocks, [&](std::size_t b) {
      body(partials[b], blocks[b].begin, blocks[b].end);
    });
    // Fixed binary-tree merge: (0,1)(2,3)... then strides of 2, 4, ... —
    // the same tree regardless of which thread filled which partial.
    for (std::size_t stride = 1; stride < partials.size(); stride *= 2) {
      for (std::size_t b = 0; b + stride < partials.size(); b += 2 * stride) {
        merge(partials[b], partials[b + stride]);
      }
    }
    fold(partials[0]);
  }

 private:
  /// Executes `run_block(b)` for every block, on the executor when present.
  template <typename RunBlock>
  void RunBlocks(const std::vector<Block>& blocks, RunBlock&& run_block) const {
    if (pool_ == nullptr || pool_->num_threads() <= 1 || blocks.size() <= 1) {
      for (std::size_t b = 0; b < blocks.size(); ++b) run_block(b);
      return;
    }
    // Per-call latch, not executor-wide Wait: the executor may be a shared
    // server lane carrying other sessions' blocks concurrently.
    SubmitAndWait(pool_, blocks.size(), run_block);
  }

  Executor* pool_;

  /// One arena per lane, `unique_ptr` so the scheduler stays movable-free
  /// and arena addresses are stable. Mutable: arenas are scratch state,
  /// not scheduling state (see class comment).
  std::vector<std::unique_ptr<ScratchArena>> lane_arenas_;
};

}  // namespace cpa

#endif  // CPA_CORE_SWEEP_SWEEP_SCHEDULER_H_
