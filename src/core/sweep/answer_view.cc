#include "core/sweep/answer_view.h"

#include <limits>

#include "util/logging.h"

namespace cpa {
namespace {

constexpr std::size_t kIndexLimit = std::numeric_limits<std::uint32_t>::max();

}  // namespace

AnswerView::AnswerView(const AnswerMatrix& answers)
    : num_items_(answers.num_items()), num_workers_(answers.num_workers()) {
  label_offsets_.assign(1, 0);
  labels_.reserve(answers.TotalLabelAssignments());
  AppendAndReindex(answers);
}

void AnswerView::ExtendTo(const AnswerMatrix& answers) {
  CPA_CHECK_EQ(answers.num_items(), num_items_);
  CPA_CHECK_EQ(answers.num_workers(), num_workers_);
  CPA_CHECK_GE(answers.num_answers(), num_answers())
      << "stream matrices only ever append";
  if (answers.num_answers() == num_answers()) return;
  AppendAndReindex(answers);
}

void AnswerView::AppendAndReindex(const AnswerMatrix& answers) {
  const std::size_t total = answers.num_answers();
  CPA_CHECK_LE(total, kIndexLimit) << "answer count exceeds 32-bit indexing";
  // SoA fields: flatten only the new suffix (flat indices are stable).
  answer_item_.reserve(total);
  answer_worker_.reserve(total);
  label_offsets_.reserve(total + 1);
  for (std::size_t index = answer_item_.size(); index < total; ++index) {
    const Answer& a = answers.answer(index);
    answer_item_.push_back(a.item);
    answer_worker_.push_back(a.worker);
    labels_.insert(labels_.end(), a.labels.begin(), a.labels.end());
    CPA_CHECK_LE(labels_.size(), kIndexLimit)
        << "label assignments exceed 32-bit indexing";
    label_offsets_.push_back(static_cast<std::uint32_t>(labels_.size()));
  }

  // Entity CSR over the full range: counting pass, exclusive scan, fill
  // pass. Stream order is preserved within an entity because answers are
  // scanned in stream order.
  const auto build_csr = [total](std::size_t entities, const auto& entity_of,
                                 std::vector<std::uint32_t>& offsets,
                                 std::vector<std::uint32_t>& flat) {
    offsets.assign(entities + 1, 0);
    for (std::size_t index = 0; index < total; ++index) {
      ++offsets[entity_of(index) + 1];
    }
    for (std::size_t e = 0; e < entities; ++e) offsets[e + 1] += offsets[e];
    flat.resize(total);
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t index = 0; index < total; ++index) {
      flat[cursor[entity_of(index)]++] = static_cast<std::uint32_t>(index);
    }
  };
  build_csr(
      num_workers_, [this](std::size_t index) { return answer_worker_[index]; },
      worker_offsets_, worker_answers_);
  build_csr(
      num_items_, [this](std::size_t index) { return answer_item_[index]; },
      item_offsets_, item_answers_);
}

}  // namespace cpa
