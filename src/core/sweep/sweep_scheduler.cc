#include "core/sweep/sweep_scheduler.h"

#include <algorithm>

namespace cpa {

std::vector<SweepScheduler::Block> SweepScheduler::Partition(std::size_t total,
                                                             std::size_t grain,
                                                             std::size_t max_blocks) {
  std::vector<Block> blocks;
  if (total == 0) return blocks;
  const std::size_t min_grain = std::max<std::size_t>(1, grain);
  const std::size_t count = std::clamp<std::size_t>(
      total / min_grain, 1, std::max<std::size_t>(1, max_blocks));
  const std::size_t chunk = (total + count - 1) / count;
  blocks.reserve(count);
  for (std::size_t begin = 0; begin < total; begin += chunk) {
    blocks.push_back({begin, std::min(total, begin + chunk)});
  }
  return blocks;
}

void SweepScheduler::ParallelFor(
    std::size_t total, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_shard) const {
  // The util helper already implements inline fallback + shard-per-thread.
  ::cpa::ParallelFor(pool_, total, body, min_shard);
}

void SweepScheduler::RunBlocks(const std::vector<Block>& blocks,
                               const std::function<void(std::size_t)>& run_block) const {
  if (pool_ == nullptr || pool_->num_threads() <= 1 || blocks.size() <= 1) {
    for (std::size_t b = 0; b < blocks.size(); ++b) run_block(b);
    return;
  }
  // Per-call latch, not executor-wide Wait: the executor may be a shared
  // server lane carrying other sessions' blocks concurrently.
  SubmitAndWait(pool_, blocks.size(), run_block);
}

}  // namespace cpa
