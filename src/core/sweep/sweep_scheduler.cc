#include "core/sweep/sweep_scheduler.h"

#include <algorithm>

namespace cpa {

SweepScheduler::SweepScheduler(Executor* executor, ScratchArena::Mode arena_mode)
    : pool_(executor) {
  const std::size_t lanes = std::max<std::size_t>(1, num_threads());
  lane_arenas_.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    lane_arenas_.push_back(std::make_unique<ScratchArena>(arena_mode));
  }
}

ScratchArena::Stats SweepScheduler::arena_stats() const {
  ScratchArena::Stats total;
  for (const auto& arena : lane_arenas_) {
    const ScratchArena::Stats& stats = arena->stats();
    total.slab_allocations += stats.slab_allocations;
    total.bytes_reserved += stats.bytes_reserved;
    total.bytes_in_use += stats.bytes_in_use;
    total.peak_bytes_in_use += stats.peak_bytes_in_use;
    total.checkouts += stats.checkouts;
    total.frames += stats.frames;
  }
  return total;
}

std::vector<SweepScheduler::Block> SweepScheduler::Partition(std::size_t total,
                                                             std::size_t grain,
                                                             std::size_t max_blocks) {
  std::vector<Block> blocks;
  if (total == 0) return blocks;
  const std::size_t min_grain = std::max<std::size_t>(1, grain);
  const std::size_t count = std::clamp<std::size_t>(
      total / min_grain, 1, std::max<std::size_t>(1, max_blocks));
  const std::size_t chunk = (total + count - 1) / count;
  blocks.reserve(count);
  for (std::size_t begin = 0; begin < total; begin += chunk) {
    blocks.push_back({begin, std::min(total, begin + chunk)});
  }
  return blocks;
}

void SweepScheduler::ParallelFor(
    std::size_t total, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_shard) const {
  // The util helper already implements inline fallback + shard-per-thread.
  ::cpa::ParallelFor(pool_, total, body, min_shard);
}

void SweepScheduler::ParallelMap(
    std::size_t total,
    const std::function<void(ScratchArena&, std::size_t, std::size_t)>& body,
    std::size_t min_shard) const {
  if (total == 0) return;
  if (pool_ == nullptr || pool_->num_threads() <= 1 || total < min_shard * 2) {
    ScratchArena& arena = lane_arena(0);
    const ScratchArena::Frame frame(arena);
    body(arena, 0, total);
    return;
  }
  // One shard per lane at most: the shard index doubles as the arena id,
  // so no two concurrent shards ever share an arena.
  const std::size_t shards = std::min(
      num_lanes(), std::max<std::size_t>(1, total / std::max<std::size_t>(1, min_shard)));
  const std::size_t chunk = (total + shards - 1) / shards;
  const std::size_t count = (total + chunk - 1) / chunk;  // non-empty shards
  SubmitAndWait(pool_, count, [&, chunk, total](std::size_t s) {
    ScratchArena& arena = lane_arena(s);
    const ScratchArena::Frame frame(arena);
    const std::size_t begin = s * chunk;
    body(arena, begin, std::min(total, begin + chunk));
  });
}

void SweepScheduler::RunBlocks(const std::vector<Block>& blocks,
                               const std::function<void(std::size_t)>& run_block) const {
  if (pool_ == nullptr || pool_->num_threads() <= 1 || blocks.size() <= 1) {
    for (std::size_t b = 0; b < blocks.size(); ++b) run_block(b);
    return;
  }
  // Per-call latch, not executor-wide Wait: the executor may be a shared
  // server lane carrying other sessions' blocks concurrently.
  SubmitAndWait(pool_, blocks.size(), run_block);
}

}  // namespace cpa
