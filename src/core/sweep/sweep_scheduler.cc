#include "core/sweep/sweep_scheduler.h"

#include <algorithm>

namespace cpa {

SweepScheduler::SweepScheduler(Executor* executor, ScratchArena::Mode arena_mode)
    : pool_(executor) {
  const std::size_t lanes = std::max<std::size_t>(1, num_threads());
  lane_arenas_.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    lane_arenas_.push_back(std::make_unique<ScratchArena>(arena_mode));
  }
}

ScratchArena::Stats SweepScheduler::arena_stats() const {
  ScratchArena::Stats total;
  for (const auto& arena : lane_arenas_) {
    const ScratchArena::Stats& stats = arena->stats();
    total.slab_allocations += stats.slab_allocations;
    total.bytes_reserved += stats.bytes_reserved;
    total.bytes_in_use += stats.bytes_in_use;
    total.peak_bytes_in_use += stats.peak_bytes_in_use;
    total.checkouts += stats.checkouts;
    total.frames += stats.frames;
  }
  return total;
}

std::vector<SweepScheduler::Block> SweepScheduler::Partition(std::size_t total,
                                                             std::size_t grain,
                                                             std::size_t max_blocks) {
  std::vector<Block> blocks;
  if (total == 0) return blocks;
  const std::size_t min_grain = std::max<std::size_t>(1, grain);
  const std::size_t count = std::clamp<std::size_t>(
      total / min_grain, 1, std::max<std::size_t>(1, max_blocks));
  const std::size_t chunk = (total + count - 1) / count;
  blocks.reserve(count);
  for (std::size_t begin = 0; begin < total; begin += chunk) {
    blocks.push_back({begin, std::min(total, begin + chunk)});
  }
  return blocks;
}

// ParallelFor/ParallelMap/ParallelReduce/RunBlocks are header-only
// templates on their callable types (sweep_scheduler.h): the kernel bodies
// inline into the shard loops instead of running behind std::function.

}  // namespace cpa
