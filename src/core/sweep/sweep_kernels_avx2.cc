/// \file sweep_kernels_avx2.cc
/// \brief The dispatched kernel TU: lane-ordered scalar reference kernels,
/// their AVX2 twins, and the runtime dispatch (see simd.h for the
/// bit-identity contract).
///
/// Both variants of every kernel live in this one TU so the pairing is
/// reviewable side by side. The file compiles at the baseline ISA; only the
/// functions marked `CPA_TARGET_AVX2` may execute AVX2 instructions, and
/// the dispatch never selects them unless cpuid reports the extension — so
/// the same binary runs on pre-AVX2 machines. No function here may use FMA
/// (AVX2 alone does not enable it, and the target attribute spells only
/// "avx2"), keeping mul+add double-rounding identical across variants.
///
/// The moved entry points: `cpa::Sum`/`Dot`/`Axpy` (declared in
/// util/matrix.h) and `cpa::LogSumExp`/`SoftmaxInPlace` (declared in
/// util/special_functions.h) are defined here rather than in their util
/// TUs, so every caller — sweep kernels, prediction, SVI, the CBCC/BCC
/// baselines — routes through the one dispatch table instead of growing
/// per-caller copies of the loops.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "core/sweep/simd.h"
#include "util/logging.h"
#include "util/matrix.h"
#include "util/special_functions.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CPA_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#define CPA_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define CPA_SIMD_HAVE_AVX2 0
#define CPA_TARGET_AVX2
#endif

namespace cpa::simd {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Degenerate softmax input (all -inf, or a stray +inf/NaN maximum): fall
/// back to the uniform distribution so downstream responsibilities stay
/// well formed. Shared by every level — identical by construction.
double UniformFallback(double* v, std::size_t n, double log_norm) {
  if (n > 0) {
    const double uniform = 1.0 / static_cast<double>(n);
    std::fill(v, v + n, uniform);
  }
  return log_norm;
}

// ---------------------------------------------------------------------------
// Scalar reference kernels (lane-ordered; see simd.h)
// ---------------------------------------------------------------------------

void AccumulateScalar(double* into, const double* from, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) into[i] += from[i];
}

void AxpyScalar(double scale, const double* in, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] += scale * in[i];
}

double SumScalar(const double* v, std::size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lane[0] += v[i + 0];
    lane[1] += v[i + 1];
    lane[2] += v[i + 2];
    lane[3] += v[i + 3];
  }
  for (std::size_t l = 0; i < n; ++i, ++l) lane[l] += v[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double DotScalar(const double* a, const double* b, std::size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lane[0] += a[i + 0] * b[i + 0];
    lane[1] += a[i + 1] * b[i + 1];
    lane[2] += a[i + 2] * b[i + 2];
    lane[3] += a[i + 3] * b[i + 3];
  }
  for (std::size_t l = 0; i < n; ++i, ++l) lane[l] += a[i] * b[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double MaxValueScalar(const double* v, std::size_t n) {
  double lane[4] = {kNegInf, kNegInf, kNegInf, kNegInf};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lane[0] = std::max(lane[0], v[i + 0]);
    lane[1] = std::max(lane[1], v[i + 1]);
    lane[2] = std::max(lane[2], v[i + 2]);
    lane[3] = std::max(lane[3], v[i + 3]);
  }
  for (std::size_t l = 0; i < n; ++i, ++l) lane[l] = std::max(lane[l], v[i]);
  return std::max(std::max(lane[0], lane[1]), std::max(lane[2], lane[3]));
}

/// Lane-ordered Σ exp(v[i] - shift). `exp` is per-lane `std::exp` at every
/// level, so the only vectorizable work is the shift — kept anyway for the
/// shared shape.
double SumExpScalar(const double* v, std::size_t n, double shift) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lane[0] += std::exp(v[i + 0] - shift);
    lane[1] += std::exp(v[i + 1] - shift);
    lane[2] += std::exp(v[i + 2] - shift);
    lane[3] += std::exp(v[i + 3] - shift);
  }
  for (std::size_t l = 0; i < n; ++i, ++l) lane[l] += std::exp(v[i] - shift);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double LogSumExpScalar(const double* v, std::size_t n) {
  if (n == 0) return kNegInf;
  const double max = MaxValueScalar(v, n);
  if (!std::isfinite(max)) return max;  // all -inf (or a stray +inf/NaN)
  return max + std::log(SumExpScalar(v, n, max));
}

double SoftmaxScalar(double* v, std::size_t n) {
  if (n == 0) return 0.0;
  const double log_norm = LogSumExpScalar(v, n);
  if (!std::isfinite(log_norm)) return UniformFallback(v, n, log_norm);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::exp(v[i] - log_norm);
  return log_norm;
}

double SoftmaxFlooredScalar(double* v, std::size_t n, double floor_nats) {
  if (n == 0) return 0.0;
  const double max = MaxValueScalar(v, n);
  if (!std::isfinite(max)) return UniformFallback(v, n, max);
  // Lane-ordered sum of the surviving exps; floored entries become exactly
  // 0. The comparison stays in `(v - max) > -floor_nats` form — rewriting
  // it as `v > max - floor_nats` would round differently at the boundary.
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t l = 0; l < 4; ++l) {
      const double t = v[i + l] - max;
      if (t > -floor_nats) {
        const double e = std::exp(t);
        v[i + l] = e;
        lane[l] += e;
      } else {
        v[i + l] = 0.0;
      }
    }
  }
  for (std::size_t l = 0; i < n; ++i, ++l) {
    const double t = v[i] - max;
    if (t > -floor_nats) {
      const double e = std::exp(t);
      v[i] = e;
      lane[l] += e;
    } else {
      v[i] = 0.0;
    }
  }
  const double sum = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (std::size_t j = 0; j < n; ++j) v[j] /= sum;  // sum >= exp(0) = 1
  return max + std::log(sum);
}

constexpr Kernels kScalarKernels = {
    AccumulateScalar, AxpyScalar,    SumScalar,     DotScalar,
    MaxValueScalar,   LogSumExpScalar, SoftmaxScalar, SoftmaxFlooredScalar,
};

// ---------------------------------------------------------------------------
// AVX2 variants (same per-lane operation sequence; see simd.h)
// ---------------------------------------------------------------------------

#if CPA_SIMD_HAVE_AVX2

CPA_TARGET_AVX2 void AccumulateAvx2(double* into, const double* from,
                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_pd(into + i, _mm256_add_pd(_mm256_loadu_pd(into + i),
                                             _mm256_loadu_pd(from + i)));
    _mm256_storeu_pd(into + i + 4, _mm256_add_pd(_mm256_loadu_pd(into + i + 4),
                                                 _mm256_loadu_pd(from + i + 4)));
    _mm256_storeu_pd(into + i + 8, _mm256_add_pd(_mm256_loadu_pd(into + i + 8),
                                                 _mm256_loadu_pd(from + i + 8)));
    _mm256_storeu_pd(into + i + 12,
                     _mm256_add_pd(_mm256_loadu_pd(into + i + 12),
                                   _mm256_loadu_pd(from + i + 12)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(into + i, _mm256_add_pd(_mm256_loadu_pd(into + i),
                                             _mm256_loadu_pd(from + i)));
  }
  for (; i < n; ++i) into[i] += from[i];
}

CPA_TARGET_AVX2 void AxpyAvx2(double scale, const double* in, double* out,
                              std::size_t n) {
  const __m256d s = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        out + i, _mm256_add_pd(_mm256_loadu_pd(out + i),
                               _mm256_mul_pd(s, _mm256_loadu_pd(in + i))));
    _mm256_storeu_pd(
        out + i + 4,
        _mm256_add_pd(_mm256_loadu_pd(out + i + 4),
                      _mm256_mul_pd(s, _mm256_loadu_pd(in + i + 4))));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_add_pd(_mm256_loadu_pd(out + i),
                               _mm256_mul_pd(s, _mm256_loadu_pd(in + i))));
  }
  for (; i < n; ++i) out[i] += scale * in[i];
}

CPA_TARGET_AVX2 double SumAvx2(const double* v, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = _mm256_add_pd(acc, _mm256_loadu_pd(v + i));
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (std::size_t l = 0; i < n; ++i, ++l) lane[l] += v[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

CPA_TARGET_AVX2 double DotAvx2(const double* a, const double* b,
                               std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (std::size_t l = 0; i < n; ++i, ++l) lane[l] += a[i] * b[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

CPA_TARGET_AVX2 double MaxValueAvx2(const double* v, std::size_t n) {
  // Unlike the sums, max needs no fixed lane order: it is a pure selection,
  // so any association yields the same bits, and both forms skip NaN inputs
  // the same way — `std::max(acc, x)` keeps acc when x is NaN, and
  // `vmaxpd(x, acc)` returns its second operand (acc) when either input is
  // NaN or the two are equal (so ±0 ties also keep acc). That freedom buys
  // four independent accumulator chains; a single chain would serialize on
  // the ~4-cycle vmaxpd latency and lose to the autovectorized scalar code.
  __m256d acc0 = _mm256_set1_pd(kNegInf);
  __m256d acc1 = acc0;
  __m256d acc2 = acc0;
  __m256d acc3 = acc0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_max_pd(_mm256_loadu_pd(v + i), acc0);
    acc1 = _mm256_max_pd(_mm256_loadu_pd(v + i + 4), acc1);
    acc2 = _mm256_max_pd(_mm256_loadu_pd(v + i + 8), acc2);
    acc3 = _mm256_max_pd(_mm256_loadu_pd(v + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_max_pd(_mm256_loadu_pd(v + i), acc0);
  }
  acc0 = _mm256_max_pd(_mm256_max_pd(acc1, acc2), _mm256_max_pd(acc3, acc0));
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc0);
  for (std::size_t l = 0; i < n; ++i, ++l) lane[l] = std::max(lane[l], v[i]);
  return std::max(std::max(lane[0], lane[1]), std::max(lane[2], lane[3]));
}

// exp dominates and stays per-lane scalar at every level, so the AVX2
// variant reuses the scalar body verbatim — a vector subtract would have to
// round-trip through the stack to feed `std::exp` and measures *slower*
// than the straight loop. The AVX2 win for LogSumExp/softmax comes from the
// max pass above.
CPA_TARGET_AVX2 double SumExpAvx2(const double* v, std::size_t n,
                                  double shift) {
  return SumExpScalar(v, n, shift);
}

CPA_TARGET_AVX2 double LogSumExpAvx2(const double* v, std::size_t n) {
  if (n == 0) return kNegInf;
  const double max = MaxValueAvx2(v, n);
  if (!std::isfinite(max)) return max;
  return max + std::log(SumExpAvx2(v, n, max));
}

CPA_TARGET_AVX2 double SoftmaxAvx2(double* v, std::size_t n) {
  if (n == 0) return 0.0;
  const double log_norm = LogSumExpAvx2(v, n);
  if (!std::isfinite(log_norm)) return UniformFallback(v, n, log_norm);
  // Per-lane scalar exp, as in the scalar reference (see SumExpAvx2).
  for (std::size_t i = 0; i < n; ++i) v[i] = std::exp(v[i] - log_norm);
  return log_norm;
}

CPA_TARGET_AVX2 double SoftmaxFlooredAvx2(double* v, std::size_t n,
                                          double floor_nats) {
  if (n == 0) return 0.0;
  const double max = MaxValueAvx2(v, n);
  if (!std::isfinite(max)) return UniformFallback(v, n, max);
  // Responsibility rows concentrate on a handful of clusters, so most
  // 4-blocks fail the floor entirely: one compare + movemask zeroes them
  // without touching `exp`. Surviving lanes take the scalar `std::exp`
  // path in lane order, exactly like the scalar reference.
  const __m256d maxv = _mm256_set1_pd(max);
  const __m256d cut = _mm256_set1_pd(-floor_nats);
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  alignas(32) double t[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(v + i), maxv);
    const int alive = _mm256_movemask_pd(_mm256_cmp_pd(d, cut, _CMP_GT_OQ));
    if (alive == 0) {
      _mm256_storeu_pd(v + i, _mm256_setzero_pd());
      continue;
    }
    _mm256_store_pd(t, d);
    for (std::size_t l = 0; l < 4; ++l) {
      if (alive & (1 << l)) {
        const double e = std::exp(t[l]);
        v[i + l] = e;
        lane[l] += e;
      } else {
        v[i + l] = 0.0;
      }
    }
  }
  for (std::size_t l = 0; i < n; ++i, ++l) {
    const double d = v[i] - max;
    if (d > -floor_nats) {
      const double e = std::exp(d);
      v[i] = e;
      lane[l] += e;
    } else {
      v[i] = 0.0;
    }
  }
  const double sum = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  const __m256d sv = _mm256_set1_pd(sum);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(v + j, _mm256_div_pd(_mm256_loadu_pd(v + j), sv));
  }
  for (; j < n; ++j) v[j] /= sum;
  return max + std::log(sum);
}

constexpr Kernels kAvx2Kernels = {
    AccumulateAvx2, AxpyAvx2,      SumAvx2,     DotAvx2,
    MaxValueAvx2,   LogSumExpAvx2, SoftmaxAvx2, SoftmaxFlooredAvx2,
};

#endif  // CPA_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

struct DispatchState {
  Level level = Level::kScalar;
  bool forced = false;
};

Level DetectLevel() {
  return Avx2Available() ? Level::kAvx2 : Level::kScalar;
}

DispatchState StateFromEnv() {
  DispatchState state;
  const char* env = std::getenv("CPA_SIMD");
  if (env == nullptr || *env == '\0') {
    state.level = DetectLevel();
    return state;
  }
  Level requested = Level::kScalar;
  bool forced = false;
  if (!ParseLevelSpec(env, &requested, &forced)) {
    CPA_LOG(kWarning) << "CPA_SIMD=" << env
                      << " not recognised (off|scalar|avx2|auto); using auto";
    state.level = DetectLevel();
    return state;
  }
  state.forced = forced;
  if (!forced) {
    state.level = DetectLevel();
  } else if (requested == Level::kAvx2 && !Avx2Available()) {
    CPA_LOG(kWarning) << "CPA_SIMD=avx2 requested but AVX2 is unavailable; "
                         "running scalar kernels";
    state.level = Level::kScalar;
  } else {
    state.level = requested;
  }
  return state;
}

DispatchState& MutableState() {
  static DispatchState state = StateFromEnv();
  return state;
}

}  // namespace

const Kernels& KernelsFor(Level level) {
#if CPA_SIMD_HAVE_AVX2
  if (level == Level::kAvx2 && Avx2Available()) return kAvx2Kernels;
#else
  (void)level;
#endif
  return kScalarKernels;
}

bool Avx2Available() {
#if CPA_SIMD_HAVE_AVX2
  static const bool available = __builtin_cpu_supports("avx2") != 0;
  return available;
#else
  return false;
#endif
}

Level ActiveLevel() { return MutableState().level; }

bool ActiveLevelForced() { return MutableState().forced; }

const Kernels& Active() { return KernelsFor(MutableState().level); }

std::string_view LevelName(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

bool ParseLevelSpec(std::string_view spec, Level* level, bool* forced) {
  if (spec == "off" || spec == "scalar" || spec == "0") {
    *level = Level::kScalar;
    *forced = true;
    return true;
  }
  if (spec == "avx2") {
    *level = Level::kAvx2;
    *forced = true;
    return true;
  }
  if (spec == "auto" || spec == "on" || spec == "1" || spec.empty()) {
    *level = DetectLevel();
    *forced = false;
    return true;
  }
  return false;
}

void SetLevelForTesting(Level level) {
  DispatchState& state = MutableState();
  state.level = (level == Level::kAvx2 && !Avx2Available()) ? Level::kScalar
                                                            : level;
  state.forced = true;
}

std::string SimdReportLine() {
  std::string line = "simd: ";
  line += LevelName(ActiveLevel());
  line += ActiveLevelForced() ? " (forced via CPA_SIMD)" : " (auto)";
  return line;
}

}  // namespace cpa::simd

// ---------------------------------------------------------------------------
// Dispatched entry points (declared in util/matrix.h and
// util/special_functions.h; defined here so every caller shares the one
// kernel table — see the file comment)
// ---------------------------------------------------------------------------

namespace cpa {

double Sum(std::span<const double> v) {
  return simd::Active().sum(v.data(), v.size());
}

double Dot(std::span<const double> a, std::span<const double> b) {
  CPA_CHECK_EQ(a.size(), b.size());
  return simd::Active().dot(a.data(), b.data(), a.size());
}

void Axpy(double scale, std::span<const double> in, std::span<double> out) {
  CPA_CHECK_EQ(in.size(), out.size());
  simd::Active().axpy(scale, in.data(), out.data(), out.size());
}

double LogSumExp(std::span<const double> values) {
  return simd::Active().log_sum_exp(values.data(), values.size());
}

double SoftmaxInPlace(std::span<double> log_weights) {
  return simd::Active().softmax(log_weights.data(), log_weights.size());
}

double SoftmaxInPlace(std::span<double> log_weights, double floor_nats) {
  return simd::Active().softmax_floored(log_weights.data(), log_weights.size(),
                                        floor_nats);
}

}  // namespace cpa
