#include "core/elbo.h"

#include <cmath>

#include "util/special_functions.h"

namespace cpa {
namespace {

constexpr double kSkipMass = 1e-8;

double CategoricalEntropy(std::span<const double> p) {
  double entropy = 0.0;
  for (double v : p) {
    if (v > 1e-300) entropy -= v * std::log(v);
  }
  return entropy;
}

/// ln B(a·1_C) for a symmetric Dirichlet.
double LogSymmetricBeta(double a, std::size_t C) {
  return static_cast<double>(C) * LogGamma(a) - LogGamma(a * static_cast<double>(C));
}

/// E[ln p(v)] for v ~ Beta(1, c) evaluated under q(v) = Beta(a, b):
/// ln c + (c − 1) E[ln(1 − v)].
double StickPriorExpectation(double concentration, double a, double b) {
  return std::log(concentration) +
         (concentration - 1.0) * (Digamma(b) - Digamma(a + b));
}

}  // namespace

ElboTerms ComputeElboTerms(const CpaModel& model, const AnswerMatrix& answers) {
  ElboTerms terms;
  const std::size_t M = model.num_communities();
  const std::size_t T = model.num_clusters();
  const std::size_t C = model.num_labels();

  // --- E[ln p(x | z, l, ψ)] (+ constant multinomial coefficients ln |x|!).
  for (const Answer& a : answers.answers()) {
    const auto phi_row = model.phi.Row(a.item);
    const auto kappa_row = model.kappa.Row(a.worker);
    double expected = 0.0;
    for (std::size_t t = 0; t < T; ++t) {
      if (phi_row[t] < kSkipMass) continue;
      const Matrix& elog_psi_t = model.elog_psi[t];
      double inner = 0.0;
      for (std::size_t m = 0; m < M; ++m) {
        if (kappa_row[m] < kSkipMass) continue;
        const auto psi_row = elog_psi_t.Row(m);
        double loglik = 0.0;
        for (LabelId c : a.labels) loglik += psi_row[c];
        inner += kappa_row[m] * loglik;
      }
      expected += phi_row[t] * inner;
    }
    terms.answer_loglik +=
        expected + LogGamma(static_cast<double>(a.labels.size()) + 1.0);
  }

  // --- E[ln p(z | π)] and entropy of q(z).
  for (std::size_t u = 0; u < model.num_workers(); ++u) {
    const auto row = model.kappa.Row(u);
    for (std::size_t m = 0; m < M; ++m) {
      if (row[m] > 1e-300) terms.community_prior += row[m] * model.elog_pi[m];
    }
    terms.entropy += CategoricalEntropy(row);
  }

  // --- E[ln p(l | τ)], E[ln p(ỹ | l, θ)] (Beta-Bernoulli channel) and
  // entropy of q(l).
  for (std::size_t i = 0; i < model.num_items(); ++i) {
    const auto row = model.phi.Row(i);
    for (std::size_t t = 0; t < T; ++t) {
      if (row[t] > 1e-300) terms.cluster_prior += row[t] * model.elog_tau[t];
    }
    if (!model.y_evidence[i].empty()) {
      const double multiplicity = model.y_evidence_weight[i];
      for (std::size_t t = 0; t < T; ++t) {
        double term = model.elog_theta_base[t];
        for (const auto& [c, weight] : model.y_evidence[i]) {
          term += weight * (model.elog_theta(t, c) - model.elog_not_theta(t, c));
        }
        terms.label_loglik += multiplicity * row[t] * term;
      }
    }
    terms.entropy += CategoricalEntropy(row);
  }

  // --- Stick priors Beta(1, α) / Beta(1, ε) and stick entropies.
  const double alpha = model.options().alpha;
  for (std::size_t m = 0; m + 1 < M; ++m) {
    terms.stick_priors += StickPriorExpectation(alpha, model.rho(m, 0), model.rho(m, 1));
    terms.entropy += BetaEntropy(model.rho(m, 0), model.rho(m, 1));
  }
  const double epsilon = model.options().epsilon;
  for (std::size_t t = 0; t + 1 < T; ++t) {
    terms.stick_priors +=
        StickPriorExpectation(epsilon, model.upsilon(t, 0), model.upsilon(t, 1));
    terms.entropy += BetaEntropy(model.upsilon(t, 0), model.upsilon(t, 1));
  }

  // --- Dirichlet priors and entropies for ψ and φ.
  const double lambda0 = model.options().lambda0;
  const double log_beta_lambda0 = LogSymmetricBeta(lambda0, C);
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t m = 0; m < M; ++m) {
      const auto elog_row = model.elog_psi[t].Row(m);
      double sum_elog = 0.0;
      for (double v : elog_row) sum_elog += v;
      terms.dirichlet_priors += -log_beta_lambda0 + (lambda0 - 1.0) * sum_elog;
      terms.entropy += DirichletEntropy(model.lambda[t].Row(m));
    }
  }
  // --- Beta-Bernoulli label channel: priors and entropies of θ_tc. (The
  // Dirichlet φ profile ζ is a derived statistic outside the generative
  // story once the Bernoulli channel carries the label evidence, so it
  // does not appear in the bound.)
  const double a0 = model.theta_prior_on();
  const double b0 = model.theta_prior_off();
  const double log_beta_theta0 = LogBeta(a0, b0);
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t c = 0; c < C; ++c) {
      terms.dirichlet_priors += -log_beta_theta0 +
                                (a0 - 1.0) * model.elog_theta(t, c) +
                                (b0 - 1.0) * model.elog_not_theta(t, c);
      terms.entropy += BetaEntropy(model.theta_a(t, c), model.theta_b(t, c));
    }
  }

  return terms;
}

double ComputeElbo(const CpaModel& model, const AnswerMatrix& answers) {
  return ComputeElboTerms(model, answers).Total();
}

}  // namespace cpa
