#ifndef CPA_CORE_CPA_MODEL_H_
#define CPA_CORE_CPA_MODEL_H_

/// \file cpa_model.h
/// \brief The variational state of the CPA model (§3.2–§3.3).
///
/// Notation mapping (paper → member):
///   κ (worker-community responsibilities, U×M)  → `kappa`
///   ϕ (item-cluster responsibilities, I×T)      → `phi`
///   ρ (Beta params of the π′ sticks, (M−1)×2)   → `rho`
///   υ (Beta params of the τ′ sticks, (T−1)×2)   → `upsilon`
///   λ (Dirichlet params of ψ_tm, T×M×C)         → `lambda[t](m,c)`
///   ζ (Dirichlet params of φ_t, T×C)            → `zeta`
///
/// The model additionally maintains the per-item soft label evidence ỹ
/// (sparse I×C) driving ζ when true labels are unobserved (DESIGN.md
/// §4.2), cached digamma expectations refreshed once per sweep, and the
/// per-cluster label-set-size distribution used by prediction (DESIGN.md
/// §4.3).
///
/// The parameter members are deliberately public: the inference modules
/// (vi.cc, svi.cc) own their mutation. External consumers use the
/// posterior accessors at the bottom.

#include <cstddef>
#include <utility>
#include <vector>

#include "core/cpa_options.h"
#include "data/answer_matrix.h"
#include "data/label_set.h"
#include "data/types.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpa {

class CheckpointWriter;
class CheckpointReader;

/// \brief Variational parameters, expectations and posterior accessors.
class CpaModel {
 public:
  CpaModel() = default;

  /// Creates an initialised model. Truncations come from `options` unless a
  /// singleton variant overrides them (No Z: M = U; No L: T = I, guarded by
  /// `no_l_parameter_limit`).
  static Result<CpaModel> Create(std::size_t num_items, std::size_t num_workers,
                                 std::size_t num_labels, const CpaOptions& options);

  /// \name Dimensions.
  /// @{
  std::size_t num_items() const { return num_items_; }
  std::size_t num_workers() const { return num_workers_; }
  std::size_t num_labels() const { return num_labels_; }
  std::size_t num_communities() const { return M_; }  ///< truncation M
  std::size_t num_clusters() const { return T_; }     ///< truncation T
  const CpaOptions& options() const { return options_; }
  /// @}

  /// \name Variational parameters (mutated by the inference modules).
  /// @{
  Matrix kappa;                 ///< U × M responsibilities q(z_u = m)
  Matrix phi;                   ///< I × T responsibilities q(l_i = t)
  Matrix rho;                   ///< (M−1) × 2 Beta params of π′
  Matrix upsilon;               ///< (T−1) × 2 Beta params of τ′
  std::vector<Matrix> lambda;   ///< T matrices of M × C Dirichlet params of ψ
  Matrix zeta;                  ///< T × C Dirichlet params of φ (multinomial channel)

  /// Beta-Bernoulli label channel: per (cluster, label) Beta(a, b)
  /// posteriors of θ_tc = P(label c applies to items of cluster t). This is
  /// the emission the pseudo-label evidence ỹ feeds (DESIGN.md §4.2): a
  /// Bernoulli channel carries *negative* evidence (a cluster asserting
  /// labels an item lacks is penalised), which the multinomial φ cannot.
  Matrix theta_a;               ///< T × C
  Matrix theta_b;               ///< T × C
  /// @}

  /// Soft label evidence ỹ per item: sparse (label, weight) pairs in
  /// [0, 1]; drives the θ channel, ζ and the evidence term of the ϕ update.
  std::vector<std::vector<std::pair<LabelId, double>>> y_evidence;

  /// Pseudo-observation count of each item's evidence (0 when absent).
  /// The consensus ỹ_i distils n_i answers, so it enters the ϕ update and
  /// the θ/ζ statistics with this multiplicity (cpa_options.h,
  /// `evidence_scale`).
  std::vector<double> y_evidence_weight;

  /// \name Cached expectations (call RefreshExpectations after mutating
  /// parameters).
  /// @{
  std::vector<double> elog_pi;   ///< E[ln π_m], length M
  std::vector<double> elog_tau;  ///< E[ln τ_t], length T
  std::vector<Matrix> elog_psi;  ///< E[ln ψ_tmc]: T matrices of M × C
  Matrix elog_phi;               ///< E[ln φ_tc]: T × C
  Matrix elog_theta;             ///< E[ln θ_tc]: T × C
  Matrix elog_not_theta;         ///< E[ln (1−θ_tc)]: T × C
  std::vector<double> elog_theta_base;  ///< Σ_c E[ln (1−θ_tc)], length T

  /// E[ln θ_tc] − E[ln(1−θ_tc)] transposed to C × T: the ϕ-update evidence
  /// term is a per-label AXPY over clusters, so the sweep kernels
  /// (core/sweep/) want label-major rows contiguous over t.
  Matrix elog_theta_delta_t;
  /// @}

  /// Per-cluster label-set-size distribution (T × (S+1)); rebuilt by the
  /// inference from answer-set sizes, used by greedy prediction.
  Matrix size_prior;

  /// Posterior means θ̂_tc = a/(a+b) of the Beta-Bernoulli channel (T × C);
  /// refreshed with the expectations. Used for marginal label scores and
  /// the kBernoulliProfile prediction mode.
  Matrix bernoulli_profile;

  /// Recomputes every cached expectation from the current parameters.
  void RefreshExpectations();

  /// Recomputes only the θ-channel expectations (elog_theta,
  /// elog_not_theta, elog_theta_base, bernoulli_profile) — the cheap subset
  /// the online learner needs inside its reinforcement rounds.
  void RefreshThetaExpectations();

  /// E[ln p(x | ψ_tm)] up to the answer's constant multinomial coefficient:
  /// Σ_{c∈x} E[ln ψ_tmc] (Appendix B).
  double AnswerExpectedLogLik(std::size_t t, std::size_t m,
                              const LabelSet& labels) const;

  /// Rebuilds `size_prior` from ϕ-weighted answer-set-size counts
  /// (Laplace-smoothed rows over sizes 0..max|x|+2).
  void UpdateSizePrior(const AnswerMatrix& answers);

  /// \name Effective Beta prior of the θ channel.
  /// Calibrated from the data when `CpaOptions::theta_prior_mean` is 0
  /// (see cpa_options.h); the inference calls SetThetaPriorMean once it
  /// has seen answers.
  /// @{
  double theta_prior_on() const {
    return theta_prior_mean_ * options_.theta_prior_strength;
  }
  double theta_prior_off() const {
    return (1.0 - theta_prior_mean_) * options_.theta_prior_strength;
  }
  double theta_prior_mean() const { return theta_prior_mean_; }
  void SetThetaPriorMean(double mean);
  /// @}

  /// \name Checkpointing (engine/checkpoint.h).
  ///
  /// `SaveState` writes every variational parameter plus the calibrated θ
  /// prior; `RestoreState` overwrites them on a model `Create`d with the
  /// same dimensions and refreshes the cached expectations, so a restored
  /// model is indistinguishable from the saved one.
  /// @{
  void SaveState(CheckpointWriter& writer) const;
  Status RestoreState(CheckpointReader& reader);
  /// @}

  /// \name Posterior accessors (public API).
  /// @{

  /// MAP community of worker u (argmax κ row).
  std::size_t WorkerCommunity(WorkerId u) const;

  /// MAP cluster of item i (argmax ϕ row).
  std::size_t ItemCluster(ItemId i) const;

  /// Expected community sizes Σ_u κ_um.
  std::vector<double> CommunitySizes() const;

  /// Expected cluster sizes Σ_i ϕ_it.
  std::vector<double> ClusterSizes() const;

  /// Posterior-mean confusion vector ψ̂_tm (normalised λ row).
  std::vector<double> PsiMean(std::size_t t, std::size_t m) const;

  /// Posterior-mean cluster label profile φ̂_t (normalised ζ row).
  std::vector<double> PhiMean(std::size_t t) const;

  /// Community reliability r_m ∈ [floor, 1]: cluster-size-weighted cosine
  /// agreement between the community's confusion vectors and the cluster
  /// profiles. Spam communities (fixated or uniform ψ) score low.
  std::vector<double> CommunityReliability() const;

  /// Effective number of communities/clusters: components holding at least
  /// `min_weight` expected members.
  std::size_t EffectiveCommunities(double min_weight = 1.0) const;
  std::size_t EffectiveClusters(double min_weight = 1.0) const;

  /// @}

 private:
  std::size_t num_items_ = 0;
  std::size_t num_workers_ = 0;
  std::size_t num_labels_ = 0;
  std::size_t M_ = 0;
  std::size_t T_ = 0;
  double theta_prior_mean_ = 0.1;
  CpaOptions options_;
};

/// Computes E[ln component_k] of a stick-breaking process truncated to
/// `sticks.rows() + 1` components from Beta parameters (exposed for tests).
void StickBreakingExpectedLog(const Matrix& sticks, std::vector<double>& out);

}  // namespace cpa

#endif  // CPA_CORE_CPA_MODEL_H_
