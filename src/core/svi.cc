#include "core/svi.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/sweep/sweep_kernels.h"
#include "core/sweep/sweep_scheduler.h"
#include "engine/checkpoint.h"
#include "util/logging.h"
#include "util/special_functions.h"
#include "util/string_utils.h"

namespace cpa {
namespace {

/// Workers are judged only on items whose consensus is corroborated by
/// enough answers — judging against one- or two-answer "consensus" crushes
/// honest workers and locks the reinforcement loop into noise.
constexpr std::size_t kMinAnswersForReliability = 4;

/// Reliability weights for `workers` from their *seen* answers: mean
/// soft-Jaccard agreement with the current consensus over corroborated
/// items, then relative pow/floor weighting — the incremental-seen-state
/// analogue of `sweep::ComputeWorkerReliability` (which scores a full
/// matrix), shared by the batch reinforcement rounds and GlobalRefresh.
/// Only scored workers' entries of `worker_weight` are written.
void UpdateSeenWorkerReliability(
    const CpaModel& model, const AnswerView& view,
    const std::vector<std::vector<std::uint32_t>>& seen_by_worker,
    const std::vector<std::vector<std::uint32_t>>& seen_by_item,
    std::span<const WorkerId> workers, std::vector<double>& worker_weight) {
  const CpaOptions& options = model.options();
  std::vector<double> agreements(model.num_workers(), -1.0);
  double best = 0.0;
  for (WorkerId u : workers) {
    double agreement = 0.0;
    double counted = 0.0;
    for (std::uint32_t index : seen_by_worker[u]) {
      const ItemId item = view.item(index);
      const auto& evidence = model.y_evidence[item];
      if (evidence.empty()) continue;
      if (seen_by_item[item].size() < kMinAnswersForReliability) continue;
      agreement += sweep::SoftJaccardAgreement(view.labels(index), evidence);
      counted += 1.0;
    }
    if (counted <= 0.0) continue;
    agreements[u] = agreement / counted;
    best = std::max(best, agreements[u]);
  }
  // Relative weighting, as in the offline path (sweep_kernels.cc).
  if (best <= 1e-9) return;
  for (WorkerId u : workers) {
    if (agreements[u] < 0.0) continue;
    worker_weight[u] =
        std::max(std::pow(agreements[u] / best, options.reliability_sharpness),
                 options.reliability_floor);
  }
}

/// Debug-only invariant of the incremental activity maintenance: after a
/// row patch, the lists must be byte-identical to a from-scratch rebuild.
#ifndef NDEBUG
void AssertActivityMatchesPhi(const Matrix& phi, const SweepScheduler& scheduler,
                              const sweep::ClusterActivity& activity) {
  sweep::ClusterActivity rebuilt;
  sweep::BuildClusterActivity(phi, scheduler, rebuilt);
  CPA_CHECK(sweep::ClusterActivityEquals(activity, rebuilt))
      << "incremental ClusterActivity diverged from a full rebuild";
}
#else
void AssertActivityMatchesPhi(const Matrix&, const SweepScheduler&,
                              const sweep::ClusterActivity&) {}
#endif

}  // namespace

Status SviOptions::Validate() const {
  if (workers_per_batch == 0) {
    return Status::InvalidArgument("workers_per_batch must be positive");
  }
  if (forgetting_rate <= 0.5 || forgetting_rate > 1.0) {
    return Status::InvalidArgument(
        StrFormat("forgetting_rate %.3f outside (0.5, 1]", forgetting_rate));
  }
  return Status::OK();
}

Result<CpaOnline> CpaOnline::Create(std::size_t num_items, std::size_t num_workers,
                                    std::size_t num_labels, const CpaOptions& options,
                                    const SviOptions& svi_options, Executor* pool,
                                    ScratchArena::Mode arena_mode) {
  CPA_RETURN_NOT_OK(svi_options.Validate());
  CPA_ASSIGN_OR_RETURN(CpaModel model,
                       CpaModel::Create(num_items, num_workers, num_labels, options));
  CpaOnline online;
  online.model_ = std::move(model);
  online.svi_options_ = svi_options;
  online.pool_ = pool;
  online.scheduler_ = std::make_unique<SweepScheduler>(pool, arena_mode);
  online.worker_seen_.assign(num_workers, false);
  online.item_seen_.assign(num_items, false);
  online.item_seeded_.assign(num_items, false);
  online.seen_by_item_.resize(num_items);
  online.seen_by_worker_.resize(num_workers);
  online.size_counts_.Reset(online.model_.num_clusters(), 4, 0.0);
  return online;
}

void CpaOnline::EnsureView(const AnswerMatrix& answers) {
  if (viewed_stream_ != &answers) {
    view_ = AnswerView(answers);  // first batch, or a different stream matrix
    viewed_stream_ = &answers;
  } else if (view_.num_answers() != answers.num_answers()) {
    view_.ExtendTo(answers);  // the same stream grew: incremental append
  }
}

Status CpaOnline::ObserveBatch(const AnswerMatrix& answers,
                               std::span<const std::size_t> batch) {
  if (batch.empty()) return Status::OK();
  for (std::size_t index : batch) {
    if (index >= answers.num_answers()) {
      return Status::OutOfRange(StrFormat("batch answer index %zu out of range", index));
    }
  }
  EnsureView(answers);
  CpaModel& model = model_;
  const SweepScheduler& scheduler = *scheduler_;
  const std::size_t M = model.num_communities();
  const std::size_t T = model.num_clusters();
  const std::size_t C = model.num_labels();
  const CpaOptions& options = model.options();

  ++batch_count_;
  const double rate =
      std::pow(1.0 + static_cast<double>(batch_count_), -svi_options_.forgetting_rate);
  last_rate_ = rate;

  // Auto-calibrate the θ-channel prior mean on the first batch
  // (cpa_options.h).
  if (batch_count_ == 1 && options.theta_prior_mean <= 0.0) {
    double total_labels = 0.0;
    for (std::size_t index : batch) {
      total_labels += static_cast<double>(view_.label_count(index));
    }
    model.SetThetaPriorMean(total_labels / static_cast<double>(batch.size()) /
                            static_cast<double>(C));
  }

  // --- Group the batch by worker and by item; update running tallies.
  std::map<WorkerId, std::vector<std::size_t>> by_worker;
  std::map<ItemId, std::vector<std::size_t>> by_item;
  std::vector<ItemId> new_items;
  std::size_t max_answer_size = 0;
  for (std::size_t index : batch) {
    const WorkerId worker = view_.worker(index);
    const ItemId item = view_.item(index);
    by_worker[worker].push_back(index);
    by_item[item].push_back(index);
    seen_by_worker_[worker].push_back(static_cast<std::uint32_t>(index));
    seen_by_item_[item].push_back(static_cast<std::uint32_t>(index));
    max_answer_size = std::max(max_answer_size, view_.label_count(index));
    if (!worker_seen_[worker]) {
      worker_seen_[worker] = true;
      ++workers_seen_;
    }
    if (!item_seen_[item]) {
      item_seen_[item] = true;
      ++items_seen_;
      new_items.push_back(item);
    }
  }
  answers_seen_ += batch.size();
  const double mean_redundancy =
      static_cast<double>(answers_seen_) / static_cast<double>(items_seen_);

  std::vector<WorkerId> batch_workers;
  batch_workers.reserve(by_worker.size());
  for (const auto& [u, unused] : by_worker) batch_workers.push_back(u);
  std::vector<ItemId> batch_items;
  batch_items.reserve(by_item.size());
  for (const auto& [i, unused] : by_item) batch_items.push_back(i);

  // --- MAP phase: local κ updates for the batch workers (parallel; rows
  // are disjoint), through the shared Eq. 2 kernel.
  if (!options.singleton_communities) {
    scheduler.ParallelFor(
        batch_workers.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t w = begin; w < end; ++w) {
            const WorkerId u = batch_workers[w];
            sweep::UpdateWorkerResponsibility(model, view_, u, seen_by_worker_[u],
                                              /*activity=*/nullptr);
          }
        },
        /*min_shard=*/4);
  }

  // --- Reinforcement rounds over the batch: reliability weights →
  // consensus evidence → cluster assignments → θ channel, repeated a few
  // times (the offline fit gets this reinforcement for free across its
  // sweeps; a single pass leaves the online consensus noticeably mushier).
  // Each round writes ϕ only for the batch items, so the persistent
  // activity lists are patched (|batch| × T + one splice) instead of
  // rebuilt from the full I×T ϕ; they stay current through the REDUCE
  // phase below (nothing there writes ϕ).
  EnsureActivity(scheduler);
  std::vector<ItemId> seeded_now;
  std::vector<double> worker_weight(model.num_workers(), 1.0);
  for (std::size_t round = 0; round < svi_options_.reinforcement_rounds; ++round) {
    // Reliability weights compare each batch worker's *seen* answers
    // against the current consensus ỹ of the answered items — strictly past
    // state, the learner never peeks beyond the batches it has been shown.
    if (options.label_evidence == LabelEvidence::kReliabilityWeighted &&
        (batch_count_ > 1 || round > 0)) {
      UpdateSeenWorkerReliability(model, view_, seen_by_worker_, seen_by_item_,
                                  batch_workers, worker_weight);
    }
    std::vector<double> dense(C, 0.0);
    for (const auto& [item, unused] : by_item) {
      const auto& seen = seen_by_item_[item];
      if (seen.size() < kMinAnswersToSeed) {
        // Defer until corroborated.
        model.y_evidence[item].clear();
        model.y_evidence_weight[item] = 0.0;
        continue;
      }
      sweep::AccumulateLabelEvidence(model, view_, item, seen, worker_weight,
                                     options.evidence_scale, dense);
    }

    // --- Label-aligned symmetry breaking for items appearing for the first
    // time: their consensus set gets a dedicated cluster, allocated
    // first-come-first-served (streaming analogue of the offline
    // frequency-ordered seeding); once the truncation is exhausted, new
    // sets join their best Jaccard match.
    if (!options.singleton_clusters && T > 1) {
      for (const auto& [item, unused] : by_item) {
        if (item_seeded_[item]) continue;
        const LabelSet consensus = sweep::ConsensusFromEvidence(model, item);
        if (consensus.empty()) continue;  // still deferred
        const std::string key = consensus.ToString();
        auto it = consensus_cluster_.find(key);
        if (it == consensus_cluster_.end() && next_cluster_ < T) {
          cluster_consensus_.push_back(consensus);
          it = consensus_cluster_.emplace(key, next_cluster_++).first;
        }
        item_seeded_[item] = true;
        if (it != consensus_cluster_.end()) {
          sweep::WriteSeedRow(model, item, it->second);
          seeded_now.push_back(item);
        }
        // Truncation exhausted and unknown set: no hard seed — the item
        // joins whichever cluster the soft evidence update prefers.
      }
    }

    // --- ϕ update for the batch items. Items seen for the first time keep
    // their label-aligned seed — the global parameters have not yet seen
    // their data. Re-seen items get either an exact local coordinate
    // update over their accumulated answers (default; the Hoffman-style
    // treatment of per-item latents) or the paper-literal natural-gradient
    // step in the canonical log-odds µ (Eqs. 15–17).
    if (!options.singleton_clusters) {
      std::vector<ItemId> reseen;
      for (const auto& [item, unused] : by_item) {
        if (item_seeded_[item] &&
            std::find(seeded_now.begin(), seeded_now.end(), item) == seeded_now.end()) {
          reseen.push_back(item);
        }
      }
      if (svi_options_.exact_local_phi) {
        // Evidence-only coordinate update (the shared kernel). The answer
        // term of the offline update (Eq. 3 restored) needs every cluster's
        // confusion bank to be current; online, banks of rarely-touched
        // clusters are stale and the term systematically drags items into
        // whichever clusters accumulated the most mass. The answer
        // likelihood still reweights clusters at prediction time, where the
        // accumulated λ is used once rather than amplified through every
        // sweep.
        scheduler.ParallelFor(
            reseen.size(),
            [&](std::size_t begin, std::size_t end) {
              for (std::size_t j = begin; j < end; ++j) {
                sweep::UpdateItemResponsibilityFromEvidence(model, reseen[j]);
              }
            },
            /*min_shard=*/4);
      } else {
        std::vector<double> target(T);
        for (ItemId item : reseen) {
          const auto& seen = seen_by_item_[item];
          const double amplify =
              std::max(1.0, mean_redundancy / static_cast<double>(seen.size()));
          for (std::size_t t = 0; t < T; ++t) target[t] = model.elog_tau[t];
          sweep::AddEvidenceTerm(model, item, target, amplify);
          for (std::uint32_t index : seen) {
            const auto labels = view_.labels(index);
            const auto kappa_row = model.kappa.Row(view_.worker(index));
            for (std::size_t t = 0; t < T; ++t) {
              const Matrix& elog_psi_t = model.elog_psi[t];
              double expected = 0.0;
              for (std::size_t m = 0; m < M; ++m) {
                if (kappa_row[m] < 1e-8) continue;
                const auto psi_row = elog_psi_t.Row(m);
                double loglik = 0.0;
                for (LabelId c : labels) loglik += psi_row[c];
                expected += kappa_row[m] * loglik;
              }
              target[t] += amplify * expected;
            }
          }
          // Blend in µ-space (reference component T−1) and map back via the
          // softmax transformation of Eqs. 16–17.
          auto phi_row = model.phi.Row(item);
          const double ref_old = std::log(std::max(phi_row[T - 1], 1e-12));
          const double ref_target = target[T - 1];
          for (std::size_t t = 0; t < T; ++t) {
            const double mu_old = std::log(std::max(phi_row[t], 1e-12)) - ref_old;
            const double mu_target = target[t] - ref_target;
            phi_row[t] = (1.0 - rate) * mu_old + rate * mu_target;
          }
          SoftmaxInPlace(phi_row);
        }
      }
    }

    // θ channel for the next reinforcement round (and for prediction).
    sweep::UpdateClusterActivityRows(model.phi, batch_items, activity_);
    AssertActivityMatchesPhi(model.phi, scheduler, activity_);
    sweep::UpdateThetaChannel(model, activity_, scheduler);
    model.RefreshThetaExpectations();
  }  // reinforcement rounds

  // --- REDUCE phase.
  // λ: incremental sufficient-statistics accumulation (Neal–Hinton style)
  // of the batch's ϕκ-weighted label counts. The paper's natural-gradient
  // step (Eq. 9) scales each batch statistic by the full data size, which
  // has unbounded variance for clusters a batch barely touches — their
  // confusion banks decay toward the prior and the answer term then drags
  // every item into the few populated clusters (DESIGN.md §4.4). Pure
  // accumulation never starves a bank; early contributions are merely
  // stale. (The paper-literal updates remain available via
  // `SviOptions::exact_local_phi = false` for λ's companion µ path.)
  for (std::size_t index : batch) {
    const auto labels = view_.labels(index);
    const auto phi_row = model.phi.Row(view_.item(index));
    const auto kappa_row = model.kappa.Row(view_.worker(index));
    for (std::size_t t = 0; t < T; ++t) {
      if (phi_row[t] < 1e-8) continue;
      Matrix& bank = model.lambda[t];
      for (std::size_t m = 0; m < M; ++m) {
        const double weight = phi_row[t] * kappa_row[m];
        if (weight < 1e-10) continue;
        auto row = bank.Row(m);
        for (LabelId c : labels) row[c] += weight;
      }
    }
  }

  // ρ (Eqs. 11–12): exact over the workers seen so far (cheap: U × M).
  if (model.num_communities() > 1 && !options.singleton_communities) {
    std::vector<double> mass(M, 0.0);
    for (WorkerId u = 0; u < model.num_workers(); ++u) {
      if (!worker_seen_[u]) continue;
      const auto row = model.kappa.Row(u);
      for (std::size_t m = 0; m < M; ++m) mass[m] += row[m];
    }
    double tail = 0.0;
    std::vector<double> tails(M, 0.0);
    for (std::size_t m = M; m-- > 0;) {
      tails[m] = tail;
      tail += mass[m];
    }
    for (std::size_t m = 0; m + 1 < M; ++m) {
      model.rho(m, 0) = 1.0 + mass[m];
      model.rho(m, 1) = options.alpha + tails[m];
    }
  }

  // υ (Eqs. 13–14): exact, since the full ϕ is maintained.
  sweep::UpdateSticks(model.upsilon, model.phi, options.epsilon, scheduler);

  // ζ (Eq. 10) and the Beta-Bernoulli θ channel: exact recomputation over
  // the evidence accumulated so far. Unlike λ (whose exact update would
  // re-scan every answer and erase the SVI speedup — it gets the
  // natural-gradient treatment above), the label-channel statistics cost
  // O(seen items × nnz(ỹ) × T) and blending them would drag clusters that a
  // batch does not touch back toward their prior.
  sweep::UpdateZeta(model, activity_, scheduler);
  sweep::UpdateThetaChannel(model, activity_, scheduler);

  // --- Size-prior counts (plain data statistic, no decay).
  if (max_answer_size + 3 > size_counts_.cols()) {
    Matrix grown(T, max_answer_size + 3, 0.0);
    for (std::size_t t = 0; t < T; ++t) {
      for (std::size_t n = 0; n < size_counts_.cols(); ++n) {
        grown(t, n) = size_counts_(t, n);
      }
    }
    size_counts_ = std::move(grown);
  }
  for (std::size_t index : batch) {
    const auto phi_row = model.phi.Row(view_.item(index));
    const std::size_t size = view_.label_count(index);
    for (std::size_t t = 0; t < T; ++t) {
      size_counts_(t, size) += phi_row[t];
    }
  }
  model.size_prior.Reset(T, size_counts_.cols());
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t n = 0; n < size_counts_.cols(); ++n) {
      model.size_prior(t, n) = size_counts_(t, n) + 0.5;
    }
  }
  model.size_prior.NormalizeRows();

  model.RefreshExpectations();
  return Status::OK();
}

void CpaOnline::EnsureActivity(const SweepScheduler& scheduler) {
  if (activity_valid_) return;
  sweep::BuildClusterActivity(model_.phi, scheduler, activity_);
  activity_valid_ = true;
}

void CpaOnline::GlobalRefresh(const AnswerMatrix& answers) {
  EnsureView(answers);
  CpaModel& model = model_;
  const SweepScheduler& scheduler = *scheduler_;
  const std::size_t T = model.num_clusters();
  const std::size_t C = model.num_labels();
  const CpaOptions& options = model.options();

  // Every round rewrites ϕ across all evidenced items (reseed, then soft
  // updates), so the persistent activity is fully rebuilt per round; the
  // lists built after each round's ϕ updates stay current for the final ζ
  // rebuild (the stick refresh between them only reads ϕ).
  std::vector<WorkerId> all_workers(model.num_workers());
  for (WorkerId u = 0; u < model.num_workers(); ++u) all_workers[u] = u;
  std::vector<double> worker_weight(model.num_workers(), 1.0);
  std::vector<double> dense(C, 0.0);
  for (std::size_t round = 0; round < 3; ++round) {
    // Reliability weights over every seen answer on corroborated items.
    if (options.label_evidence == LabelEvidence::kReliabilityWeighted) {
      UpdateSeenWorkerReliability(model, view_, seen_by_worker_, seen_by_item_,
                                  all_workers, worker_weight);
    }
    // Consensus evidence for every seen item.
    for (ItemId i = 0; i < model.num_items(); ++i) {
      const auto& seen = seen_by_item_[i];
      if (seen.empty()) continue;
      sweep::AccumulateLabelEvidence(model, view_, i, seen, worker_weight,
                                     options.evidence_scale, dense);
    }
    if (!options.singleton_clusters && T > 1) {
      if (round == 0) {
        // Reseed-then-ascend, exactly like the offline fit: regroup every
        // evidenced item by its refreshed consensus, with clusters ranked
        // by group frequency. The incremental first-come allocation used
        // during batch ingestion drifts out of the size-biased stick
        // order as the stream evolves; prediction time is the moment to
        // realign (all of this still only reads seen data).
        sweep::SeedClustersFromConsensus(model);
      } else {
        // Evidence-only soft update for every item with evidence.
        scheduler.ParallelFor(
            model.num_items(),
            [&](std::size_t begin, std::size_t end) {
              for (std::size_t i = begin; i < end; ++i) {
                if (model.y_evidence[i].empty()) continue;
                sweep::UpdateItemResponsibilityFromEvidence(
                    model, static_cast<ItemId>(i));
              }
            },
            /*min_shard=*/8);
      }
    }
    sweep::BuildClusterActivity(model.phi, scheduler, activity_);
    activity_valid_ = true;
    sweep::UpdateThetaChannel(model, activity_, scheduler);
    model.RefreshThetaExpectations();
    sweep::UpdateSticks(model.upsilon, model.phi, options.epsilon, scheduler);
    StickBreakingExpectedLog(model.upsilon, model.elog_tau);
  }
  sweep::UpdateZeta(model, activity_, scheduler);
  model.RefreshExpectations();
}

Result<CpaPrediction> CpaOnline::Predict(const AnswerMatrix& answers) {
  if (answers_seen_ == 0) {
    return PredictLabels(model_, AnswerMatrix(model_.num_items(), model_.num_workers()),
                         *scheduler_);
  }
  for (const auto& seen : seen_by_item_) {
    for (std::uint32_t index : seen) {
      if (index >= answers.num_answers()) {
        return Status::InvalidArgument(
            "Predict must receive the same stream matrix as ObserveBatch");
      }
    }
  }
  GlobalRefresh(answers);
  // Restrict prediction to the answers actually observed.
  std::vector<std::size_t> seen_indices;
  seen_indices.reserve(answers_seen_);
  for (const auto& seen : seen_by_item_) {
    seen_indices.insert(seen_indices.end(), seen.begin(), seen.end());
  }
  const AnswerMatrix seen_answers = answers.Subset(seen_indices);
  return PredictLabels(model_, seen_answers, *scheduler_);
}

void CpaOnline::SaveState(CheckpointWriter& writer) const {
  model_.SaveState(writer);
  writer.WriteU64(batch_count_);
  writer.WriteDouble(last_rate_);
  writer.WriteU64(answers_seen_);
  writer.WriteU64(workers_seen_);
  writer.WriteU64(items_seen_);
  writer.WriteBools(worker_seen_);
  writer.WriteBools(item_seen_);
  writer.WriteBools(item_seeded_);
  writer.WriteU64(seen_by_item_.size());
  for (const auto& seen : seen_by_item_) writer.WriteU32s(seen);
  writer.WriteU64(seen_by_worker_.size());
  for (const auto& seen : seen_by_worker_) writer.WriteU32s(seen);
  writer.WriteU64(consensus_cluster_.size());
  for (const auto& [key, cluster] : consensus_cluster_) {
    writer.WriteString(key);
    writer.WriteU64(cluster);
  }
  writer.WriteU64(cluster_consensus_.size());
  for (const LabelSet& consensus : cluster_consensus_) {
    writer.WriteLabelSet(consensus);
  }
  writer.WriteU64(next_cluster_);
  writer.WriteMatrix(size_counts_);
}

Status CpaOnline::RestoreState(CheckpointReader& reader) {
  if (batch_count_ != 0 || answers_seen_ != 0) {
    return Status::FailedPrecondition(
        "CpaOnline::RestoreState requires a freshly created learner");
  }
  CPA_RETURN_NOT_OK(model_.RestoreState(reader));
  CPA_ASSIGN_OR_RETURN(batch_count_, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(last_rate_, reader.ReadDouble());
  CPA_ASSIGN_OR_RETURN(answers_seen_, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(workers_seen_, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(items_seen_, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(worker_seen_, reader.ReadBools());
  CPA_ASSIGN_OR_RETURN(item_seen_, reader.ReadBools());
  CPA_ASSIGN_OR_RETURN(item_seeded_, reader.ReadBools());
  if (worker_seen_.size() != model_.num_workers() ||
      item_seen_.size() != model_.num_items() ||
      item_seeded_.size() != model_.num_items()) {
    return Status::InvalidArgument(
        "checkpoint seen-flag lengths do not match model dims");
  }
  CPA_ASSIGN_OR_RETURN(const std::size_t items, reader.ReadSize());
  if (items != model_.num_items()) {
    return Status::InvalidArgument("checkpoint seen_by_item length != I");
  }
  seen_by_item_.assign(items, {});
  for (auto& seen : seen_by_item_) {
    CPA_ASSIGN_OR_RETURN(seen, reader.ReadU32s());
  }
  CPA_ASSIGN_OR_RETURN(const std::size_t workers, reader.ReadSize());
  if (workers != model_.num_workers()) {
    return Status::InvalidArgument("checkpoint seen_by_worker length != U");
  }
  seen_by_worker_.assign(workers, {});
  for (auto& seen : seen_by_worker_) {
    CPA_ASSIGN_OR_RETURN(seen, reader.ReadU32s());
  }
  CPA_ASSIGN_OR_RETURN(const std::size_t seeds, reader.ReadSize());
  // Each map entry is at least a 4-byte key length + 8-byte cluster index.
  if (seeds > reader.remaining() / 12) {
    return Status::InvalidArgument("checkpoint cluster-seed count too large");
  }
  consensus_cluster_.clear();
  for (std::size_t k = 0; k < seeds; ++k) {
    CPA_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
    CPA_ASSIGN_OR_RETURN(const std::size_t cluster, reader.ReadSize());
    if (cluster >= model_.num_clusters()) {
      return Status::InvalidArgument("checkpoint cluster seed out of range");
    }
    consensus_cluster_.emplace(std::move(key), cluster);
  }
  CPA_ASSIGN_OR_RETURN(const std::size_t consensus_count, reader.ReadSize());
  if (consensus_count > reader.remaining() / sizeof(std::uint32_t)) {
    return Status::InvalidArgument("checkpoint consensus count too large");
  }
  cluster_consensus_.assign(consensus_count, {});
  for (LabelSet& consensus : cluster_consensus_) {
    CPA_ASSIGN_OR_RETURN(consensus, reader.ReadLabelSet());
  }
  CPA_ASSIGN_OR_RETURN(next_cluster_, reader.ReadSize());
  if (next_cluster_ > model_.num_clusters()) {
    return Status::InvalidArgument("checkpoint next_cluster out of range");
  }
  CPA_ASSIGN_OR_RETURN(size_counts_, reader.ReadMatrix());
  if (size_counts_.rows() != model_.num_clusters()) {
    return Status::InvalidArgument("checkpoint size_counts rows != T");
  }
  // Derived caches: rebuilt lazily from the restored state + stream.
  activity_valid_ = false;
  view_ = AnswerView();
  viewed_stream_ = nullptr;
  return Status::OK();
}

}  // namespace cpa
