#ifndef CPA_CORE_ELBO_H_
#define CPA_CORE_ELBO_H_

/// \file elbo.h
/// \brief The evidence lower bound of the CPA mean-field approximation.
///
/// `L(Θ) = E_q[ln p(Θ, x, ỹ)] − E_q[ln q(Θ)]` over the truncated
/// stick-breaking representation (§3.3, Appendix C). The label evidence ỹ
/// is treated as observed data; with the strategy frozen during a sweep,
/// coordinate ascent must not decrease this quantity — the property test
/// in `tests/core/elbo_test.cc` checks exactly that.

#include "core/cpa_model.h"
#include "data/answer_matrix.h"

namespace cpa {

/// \brief Per-term breakdown of the bound (useful for debugging which
/// update regressed).
struct ElboTerms {
  double answer_loglik = 0.0;      ///< E[ln p(x | z, l, ψ)] + multinomial coefs
  double community_prior = 0.0;    ///< E[ln p(z | π)]
  double cluster_prior = 0.0;      ///< E[ln p(l | τ)]
  double label_loglik = 0.0;       ///< E[ln p(ỹ | l, φ)]
  double stick_priors = 0.0;       ///< E[ln p(π′)] + E[ln p(τ′)]
  double dirichlet_priors = 0.0;   ///< E[ln p(ψ)] + E[ln p(φ)]
  double entropy = 0.0;            ///< −E[ln q]

  double Total() const {
    return answer_loglik + community_prior + cluster_prior + label_loglik +
           stick_priors + dirichlet_priors + entropy;
  }
};

/// Computes the full term breakdown (expectations must be fresh).
ElboTerms ComputeElboTerms(const CpaModel& model, const AnswerMatrix& answers);

/// Convenience: the scalar bound.
double ComputeElbo(const CpaModel& model, const AnswerMatrix& answers);

}  // namespace cpa

#endif  // CPA_CORE_ELBO_H_
