#include "core/vi.h"

#include <algorithm>
#include <utility>

#include "core/elbo.h"
#include "core/prediction.h"
#include "core/sweep/answer_view.h"
#include "core/sweep/sweep_kernels.h"
#include "core/sweep/sweep_scheduler.h"
#include "util/logging.h"

namespace cpa {

Result<CpaModel> FitCpa(const AnswerMatrix& answers, std::size_t num_labels,
                        const CpaOptions& options, const FitOptions& fit,
                        FitStats* stats) {
  CPA_ASSIGN_OR_RETURN(
      CpaModel model,
      CpaModel::Create(answers.num_items(), answers.num_workers(), num_labels, options));

  // Auto-calibrate the θ-channel prior mean to the label sparsity of the
  // data (cpa_options.h).
  if (options.theta_prior_mean <= 0.0 && answers.num_answers() > 0) {
    const double mean_answer_size =
        static_cast<double>(answers.TotalLabelAssignments()) /
        static_cast<double>(answers.num_answers());
    model.SetThetaPriorMean(mean_answer_size / static_cast<double>(num_labels));
  }

  const AnswerView view(answers);
  const SweepScheduler scheduler(fit.pool);
  sweep::ClusterActivity activity;

  // Bootstrap: evidence (answer frequency / observed truth), label-aligned
  // cluster seeding, and — crucially — a λ/ζ pass so the first sweep's
  // responsibilities see cluster-differentiated expectations. Without the
  // λ pass, E[ln ψ] of the near-prior Dirichlet rows is dominated by
  // Ψ′-amplified initialisation jitter and the first ϕ sweep scatters
  // items into arbitrary clusters that then self-reinforce.
  sweep::UpdateLabelEvidence(model, view, fit.observed_truth, nullptr, scheduler);
  if (!options.singleton_clusters) {
    sweep::SeedClustersFromConsensus(model);
  }
  sweep::BuildClusterActivity(model.phi, scheduler, activity);
  sweep::UpdateZeta(model, activity, scheduler);
  sweep::UpdateThetaChannel(model, activity, scheduler);
  sweep::UpdateLambda(model, view, activity, scheduler);
  model.RefreshExpectations();

  Matrix previous_kappa = model.kappa;
  Matrix previous_phi = model.phi;
  std::vector<LabelSet> self_training_labels;
  bool evidence_frozen = false;

  FitStats local_stats;
  FitStats& out = stats != nullptr ? *stats : local_stats;
  out = FitStats();

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // --- Local updates (MAP phase; disjoint rows → parallel). `activity`
    // reflects the current ϕ here: it is rebuilt after every mutation of ϕ
    // (item sweep, reseeding) before the next consumer runs.
    if (!options.singleton_communities) {
      scheduler.ParallelFor(
          model.num_workers(),
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t u = begin; u < end; ++u) {
              sweep::UpdateWorkerResponsibility(
                  model, view, static_cast<WorkerId>(u),
                  view.AnswersOfWorker(static_cast<WorkerId>(u)), &activity);
            }
          },
          /*min_shard=*/8);
    }
    const bool reseed_sweep =
        !options.singleton_clusters && iter < options.reseed_sweeps && !evidence_frozen;
    if (!options.singleton_clusters && !reseed_sweep) {
      scheduler.ParallelFor(
          model.num_items(),
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              sweep::UpdateItemResponsibility(
                  model, view, static_cast<ItemId>(i),
                  view.AnswersOfItem(static_cast<ItemId>(i)));
            }
          },
          /*min_shard=*/8);
      sweep::BuildClusterActivity(model.phi, scheduler, activity);
    }

    // --- Global updates (REDUCE phase; deterministic partial merges).
    sweep::UpdateSticks(model.rho, model.kappa, options.alpha, scheduler);
    sweep::UpdateSticks(model.upsilon, model.phi, options.epsilon, scheduler);
    sweep::UpdateLambda(model, view, activity, scheduler);

    // --- Label evidence for ζ (strategy-dependent; DESIGN.md §4.2). Once
    // the responsibilities are close to converged, the evidence is frozen
    // so the remaining sweeps are pure coordinate ascent on a fixed
    // objective (the adaptive strategies would otherwise keep the target
    // moving just above the tolerance).
    if (!evidence_frozen) {
      if (options.label_evidence == LabelEvidence::kSelfTraining && iter > 0) {
        sweep::UpdateThetaChannel(model, activity, scheduler);
        model.RefreshExpectations();
        model.UpdateSizePrior(answers);
        // Scheduled on the fit's own scheduler: the self-training predict
        // pass reuses the already-warm lane arenas.
        auto predicted = PredictLabels(model, answers, scheduler);
        if (predicted.ok()) {
          self_training_labels = std::move(predicted).value().labels;
          sweep::UpdateLabelEvidence(model, view, fit.observed_truth,
                                     &self_training_labels, scheduler);
        }
      } else {
        sweep::UpdateLabelEvidence(model, view, fit.observed_truth, nullptr,
                                   scheduler);
      }
    }
    if (reseed_sweep) {
      // Re-derive the hard consensus grouping from the freshly sharpened
      // evidence (see `reseed_sweeps` in cpa_options.h).
      sweep::SeedClustersFromConsensus(model);
      sweep::BuildClusterActivity(model.phi, scheduler, activity);
      sweep::UpdateSticks(model.upsilon, model.phi, options.epsilon, scheduler);
      sweep::UpdateLambda(model, view, activity, scheduler);
    }
    sweep::UpdateZeta(model, activity, scheduler);
    sweep::UpdateThetaChannel(model, activity, scheduler);
    model.RefreshExpectations();

    if (fit.track_elbo) {
      out.elbo_trace.push_back(ComputeElbo(model, answers));
    }

    const double change = std::max(model.kappa.MaxAbsDiff(previous_kappa),
                                   model.phi.MaxAbsDiff(previous_phi));
    out.iterations = iter + 1;
    out.final_change = change;
    previous_kappa = model.kappa;
    previous_phi = model.phi;
    if (change < options.tolerance) {
      out.converged = true;
      break;
    }
    if (change < 10.0 * options.tolerance) evidence_frozen = true;
  }

  model.UpdateSizePrior(answers);
  return model;
}

}  // namespace cpa
