#include "core/vi.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <numeric>

#include "core/elbo.h"
#include "core/prediction.h"
#include "util/logging.h"
#include "util/special_functions.h"

namespace cpa {
namespace internal {
namespace {

/// Responsibilities below this mass are skipped in the accumulation loops;
/// rows concentrate quickly, so this saves most of the T×M work.
constexpr double kSkipMass = 1e-8;

}  // namespace

void UpdateWorkerResponsibility(CpaModel& model, const AnswerMatrix& answers,
                                WorkerId u, std::span<const std::size_t> indices) {
  const std::size_t M = model.num_communities();
  const std::size_t T = model.num_clusters();
  auto scores = model.kappa.Row(u);
  for (std::size_t m = 0; m < M; ++m) scores[m] = model.elog_pi[m];
  for (std::size_t index : indices) {
    const Answer& a = answers.answer(index);
    const auto phi_row = model.phi.Row(a.item);
    for (std::size_t t = 0; t < T; ++t) {
      const double weight = phi_row[t];
      if (weight < kSkipMass) continue;
      const Matrix& elog_psi_t = model.elog_psi[t];
      for (std::size_t m = 0; m < M; ++m) {
        const auto psi_row = elog_psi_t.Row(m);
        double loglik = 0.0;
        for (LabelId c : a.labels) loglik += psi_row[c];
        scores[m] += weight * loglik;
      }
    }
  }
  SoftmaxInPlace(scores);
}

void UpdateItemResponsibility(CpaModel& model, const AnswerMatrix& answers, ItemId i,
                              std::span<const std::size_t> indices) {
  const std::size_t M = model.num_communities();
  const std::size_t T = model.num_clusters();
  auto scores = model.phi.Row(i);
  for (std::size_t t = 0; t < T; ++t) scores[t] = model.elog_tau[t];
  // Label-evidence term through the Beta-Bernoulli channel:
  //   Σ_c [ỹ_ic E ln θ_tc + (1−ỹ_ic) E ln(1−θ_tc)]
  //     = Σ_c E ln(1−θ_tc) + Σ_{c: ỹ>0} ỹ_ic (E ln θ_tc − E ln(1−θ_tc)),
  // with the item's pseudo-observation multiplicity. The base sum is
  // cached per cluster.
  if (!model.y_evidence[i].empty()) {
    const double evidence_scale = model.y_evidence_weight[i];
    for (std::size_t t = 0; t < T; ++t) {
      double term = model.elog_theta_base[t];
      for (const auto& [c, weight] : model.y_evidence[i]) {
        term += weight * (model.elog_theta(t, c) - model.elog_not_theta(t, c));
      }
      scores[t] += evidence_scale * term;
    }
  }
  // Optional answer term (Eq. 3 omits it; see cpa_options.h).
  if (model.options().phi_answer_term) {
    for (std::size_t index : indices) {
      const Answer& a = answers.answer(index);
      const auto kappa_row = model.kappa.Row(a.worker);
      for (std::size_t t = 0; t < T; ++t) {
        const Matrix& elog_psi_t = model.elog_psi[t];
        double expected = 0.0;
        for (std::size_t m = 0; m < M; ++m) {
          const double weight = kappa_row[m];
          if (weight < kSkipMass) continue;
          const auto psi_row = elog_psi_t.Row(m);
          double loglik = 0.0;
          for (LabelId c : a.labels) loglik += psi_row[c];
          expected += weight * loglik;
        }
        scores[t] += expected;
      }
    }
  }
  SoftmaxInPlace(scores);
}

void UpdateSticks(Matrix& sticks, const Matrix& responsibilities,
                  double concentration) {
  const std::size_t K = sticks.rows() + 1;
  if (K <= 1) return;
  CPA_CHECK_EQ(responsibilities.cols(), K);
  // Column masses n_k = Σ_rows resp(·, k).
  std::vector<double> mass(K, 0.0);
  for (std::size_t r = 0; r < responsibilities.rows(); ++r) {
    const auto row = responsibilities.Row(r);
    for (std::size_t k = 0; k < K; ++k) mass[k] += row[k];
  }
  // Suffix sums: tail_k = Σ_{l > k} n_l.
  double tail = 0.0;
  std::vector<double> tails(K, 0.0);
  for (std::size_t k = K; k-- > 0;) {
    tails[k] = tail;
    tail += mass[k];
  }
  for (std::size_t k = 0; k + 1 < K; ++k) {
    sticks(k, 0) = 1.0 + mass[k];
    sticks(k, 1) = concentration + tails[k];
  }
}

void UpdateLambda(CpaModel& model, const AnswerMatrix& answers) {
  const std::size_t M = model.num_communities();
  const std::size_t T = model.num_clusters();
  const double prior = model.options().lambda0;
  for (auto& bank : model.lambda) bank.Fill(prior);
  for (const Answer& a : answers.answers()) {
    const auto phi_row = model.phi.Row(a.item);
    const auto kappa_row = model.kappa.Row(a.worker);
    for (std::size_t t = 0; t < T; ++t) {
      const double phi_weight = phi_row[t];
      if (phi_weight < kSkipMass) continue;
      Matrix& bank = model.lambda[t];
      for (std::size_t m = 0; m < M; ++m) {
        const double weight = phi_weight * kappa_row[m];
        if (weight < kSkipMass) continue;
        auto row = bank.Row(m);
        for (LabelId c : a.labels) row[c] += weight;
      }
    }
  }
}

void UpdateZeta(CpaModel& model) {
  const std::size_t T = model.num_clusters();
  model.zeta.Fill(model.options().zeta0);
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < model.num_items(); ++i) {
    if (model.y_evidence[i].empty()) continue;
    const auto phi_row = model.phi.Row(i);
    active.clear();
    for (std::size_t t = 0; t < T; ++t) {
      if (phi_row[t] >= kSkipMass) active.push_back(t);
    }
    const double multiplicity = model.y_evidence_weight[i];
    for (const auto& [c, weight] : model.y_evidence[i]) {
      for (std::size_t t : active) {
        model.zeta(t, c) += phi_row[t] * weight * multiplicity;
      }
    }
  }
}

std::vector<double> ComputeWorkerReliability(const CpaModel& model,
                                             const AnswerMatrix& answers) {
  const std::size_t U = model.num_workers();
  const std::size_t M = model.num_communities();
  const CpaOptions& options = model.options();
  std::vector<double> agreement(U, 0.0);
  std::vector<double> answer_count(U, 0.0);

  // Per-worker mean soft-Jaccard agreement between each answer and the
  // current consensus of the answered item:
  //   J = Σ_{c∈x} ỹ_c / (|x| + Σ_c ỹ_c − Σ_{c∈x} ỹ_c).
  bool any_evidence = false;
  for (const Answer& a : answers.answers()) {
    const auto& evidence = model.y_evidence[a.item];
    if (evidence.empty()) continue;
    any_evidence = true;
    double overlap = 0.0;
    double evidence_total = 0.0;
    for (const auto& [c, weight] : evidence) {
      evidence_total += weight;
      if (a.labels.Contains(c)) overlap += weight;
    }
    const double denom =
        static_cast<double>(a.labels.size()) + evidence_total - overlap;
    agreement[a.worker] += denom > 0.0 ? overlap / denom : 0.0;
    answer_count[a.worker] += 1.0;
  }
  if (!any_evidence) return std::vector<double>(U, 1.0);  // bootstrap sweep
  for (WorkerId u = 0; u < U; ++u) {
    if (answer_count[u] > 0.0) agreement[u] /= answer_count[u];
  }

  // Community pooling: answer-weighted mean agreement per community, then
  // shrink each worker toward its (κ-mixed) community mean.
  std::vector<double> community_sum(M, 0.0);
  std::vector<double> community_mass(M, 0.0);
  for (WorkerId u = 0; u < U; ++u) {
    if (answer_count[u] <= 0.0) continue;
    const auto kappa_row = model.kappa.Row(u);
    for (std::size_t m = 0; m < M; ++m) {
      community_sum[m] += kappa_row[m] * answer_count[u] * agreement[u];
      community_mass[m] += kappa_row[m] * answer_count[u];
    }
  }
  std::vector<double> weights(U, 1.0);
  std::vector<double> shrunk(U, 0.0);
  double best = 0.0;
  for (WorkerId u = 0; u < U; ++u) {
    if (answer_count[u] <= 0.0) continue;
    const auto kappa_row = model.kappa.Row(u);
    double community_mean = 0.0;
    for (std::size_t m = 0; m < M; ++m) {
      const double mean =
          community_mass[m] > 0.0 ? community_sum[m] / community_mass[m] : 0.5;
      community_mean += kappa_row[m] * mean;
    }
    const double s = options.reliability_shrinkage;
    shrunk[u] =
        (answer_count[u] * agreement[u] + s * community_mean) / (answer_count[u] + s);
    best = std::max(best, shrunk[u]);
  }
  // Reliability is relative: normalising by the best worker keeps the
  // honest/spammer contrast even when heavy spam dilutes the consensus and
  // absolute agreements are uniformly low (otherwise every weight hits the
  // floor and the reinforcement loop loses all discrimination).
  if (best <= 1e-9) return weights;
  for (WorkerId u = 0; u < U; ++u) {
    if (answer_count[u] <= 0.0) continue;
    weights[u] = std::max(std::pow(shrunk[u] / best, options.reliability_sharpness),
                          options.reliability_floor);
  }
  return weights;
}

void UpdateLabelEvidence(CpaModel& model, const AnswerMatrix& answers,
                         const std::vector<LabelSet>* observed_truth,
                         const std::vector<LabelSet>* self_training_labels) {
  const LabelEvidence strategy = model.options().label_evidence;

  // Worker weights for the frequency-style strategies, computed from the
  // *previous* consensus (mutual reinforcement across sweeps).
  std::vector<double> worker_weight(model.num_workers(), 1.0);
  if (strategy == LabelEvidence::kReliabilityWeighted) {
    worker_weight = ComputeWorkerReliability(model, answers);
  }

  const double configured_scale = model.options().evidence_scale;
  std::vector<double> dense(model.num_labels(), 0.0);
  for (ItemId i = 0; i < model.num_items(); ++i) {
    auto& evidence = model.y_evidence[i];
    evidence.clear();
    model.y_evidence_weight[i] = 0.0;
    const auto indices = answers.AnswersOfItem(i);
    const double multiplicity =
        configured_scale > 0.0
            ? configured_scale
            : std::max<double>(1.0, static_cast<double>(indices.size()));

    // Observed truth always wins (semi-supervised support).
    if (observed_truth != nullptr && i < observed_truth->size() &&
        !(*observed_truth)[i].empty()) {
      for (LabelId c : (*observed_truth)[i]) evidence.emplace_back(c, 1.0);
      model.y_evidence_weight[i] = multiplicity;
      continue;
    }
    if (strategy == LabelEvidence::kObservedOnly) continue;

    if (strategy == LabelEvidence::kSelfTraining && self_training_labels != nullptr) {
      for (LabelId c : (*self_training_labels)[i]) evidence.emplace_back(c, 1.0);
      if (!evidence.empty()) model.y_evidence_weight[i] = multiplicity;
      continue;
    }

    // Frequency-style evidence (also the self-training bootstrap): the
    // (reliability-)weighted mean answer indicator.
    if (indices.empty()) continue;
    double total_weight = 0.0;
    std::fill(dense.begin(), dense.end(), 0.0);
    for (std::size_t index : indices) {
      const Answer& a = answers.answer(index);
      const double w = worker_weight[a.worker];
      total_weight += w;
      for (LabelId c : a.labels) dense[c] += w;
    }
    if (total_weight <= 0.0) continue;
    for (LabelId c = 0; c < model.num_labels(); ++c) {
      if (dense[c] > 0.0) evidence.emplace_back(c, dense[c] / total_weight);
    }
    model.y_evidence_weight[i] = multiplicity;
  }
}

void UpdateThetaChannel(CpaModel& model) {
  const std::size_t T = model.num_clusters();
  const std::size_t C = model.num_labels();
  const double a0 = model.theta_prior_on();
  const double b0 = model.theta_prior_off();
  // a_tc = a0 + Σ_i w_i ϕ_it ỹ_ic; b_tc = b0 + Σ_i w_i ϕ_it (1 − ỹ_ic),
  // where w_i is the item's pseudo-observation multiplicity and the sums
  // run over items carrying evidence. With mass_t = Σ w_i ϕ_it of those
  // items, b_tc = b0 + mass_t − (a_tc − a0).
  model.theta_a.Fill(a0);
  std::vector<double> mass(T, 0.0);
  std::vector<std::size_t> active;
  for (ItemId i = 0; i < model.num_items(); ++i) {
    if (model.y_evidence[i].empty()) continue;
    const auto phi_row = model.phi.Row(i);
    active.clear();
    for (std::size_t t = 0; t < T; ++t) {
      if (phi_row[t] >= kSkipMass) active.push_back(t);
    }
    const double multiplicity = model.y_evidence_weight[i];
    for (std::size_t t : active) mass[t] += phi_row[t] * multiplicity;
    for (const auto& [c, weight] : model.y_evidence[i]) {
      for (std::size_t t : active) {
        model.theta_a(t, c) += phi_row[t] * weight * multiplicity;
      }
    }
  }
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t c = 0; c < C; ++c) {
      model.theta_b(t, c) = b0 + mass[t] - (model.theta_a(t, c) - a0);
    }
  }
}

}  // namespace internal

namespace internal {

/// The majority-consensus label set of an item's evidence (weights ≥ 0.5);
/// falls back to the single strongest label. Empty when there is no
/// evidence at all.
LabelSet ConsensusFromEvidence(const CpaModel& model, ItemId item) {
  LabelSet consensus;
  LabelId best_label = 0;
  double best_weight = -1.0;
  for (const auto& [c, weight] : model.y_evidence[item]) {
    if (weight >= 0.5) consensus.Add(c);
    if (weight > best_weight) {
      best_weight = weight;
      best_label = c;
    }
  }
  if (consensus.empty() && best_weight >= 0.0) consensus.Add(best_label);
  return consensus;
}

void WriteSeedRow(CpaModel& model, ItemId item, std::size_t cluster) {
  // One-hot: any residual spread would leak every seeded item's evidence
  // into every cluster's statistics (the offline fit recomputes ϕ each
  // sweep, but the online learner only revisits items when they reappear).
  auto row = model.phi.Row(item);
  std::fill(row.begin(), row.end(), 0.0);
  row[cluster] = 1.0;
}

void SeedClustersFromConsensus(CpaModel& model) {
  // Symmetry breaking for the item clusters: items sharing an identical
  // majority-consensus label set start in the same cluster. Distinct
  // consensus sets are ranked by frequency and assigned cluster indices in
  // that order — collision-free for the T most frequent sets, and aligned
  // with the size-biased geometry of the truncated stick-breaking prior
  // (E[ln τ_t] decays with t). Items whose set ranks beyond T join the
  // assigned cluster with the highest Jaccard overlap. Without label-
  // aligned seeding the truncated mixture routinely locks into clusterings
  // uncorrelated with the label structure.
  const std::size_t T = model.num_clusters();
  if (T <= 1) return;

  struct Group {
    LabelSet consensus;
    std::vector<ItemId> items;
  };
  std::map<std::string, Group> groups;
  for (ItemId i = 0; i < model.num_items(); ++i) {
    const LabelSet consensus = ConsensusFromEvidence(model, i);
    if (consensus.empty()) continue;  // no evidence: keep the uniform row
    Group& group = groups[consensus.ToString()];
    group.consensus = consensus;
    group.items.push_back(i);
  }
  std::vector<const Group*> ranked;
  ranked.reserve(groups.size());
  for (const auto& [key, group] : groups) ranked.push_back(&group);
  std::sort(ranked.begin(), ranked.end(), [](const Group* a, const Group* b) {
    if (a->items.size() != b->items.size()) return a->items.size() > b->items.size();
    return a->consensus.labels()[0] < b->consensus.labels()[0];  // deterministic
  });

  const std::size_t assigned = std::min(ranked.size(), T);
  for (std::size_t rank = 0; rank < assigned; ++rank) {
    for (ItemId i : ranked[rank]->items) WriteSeedRow(model, i, rank);
  }
  // Overflow sets: join the assigned cluster with the best Jaccard match.
  for (std::size_t rank = assigned; rank < ranked.size(); ++rank) {
    std::size_t best_cluster = assigned - 1;
    double best_score = -1.0;
    for (std::size_t candidate = 0; candidate < assigned; ++candidate) {
      const double score =
          ranked[rank]->consensus.Jaccard(ranked[candidate]->consensus);
      if (score > best_score) {
        best_score = score;
        best_cluster = candidate;
      }
    }
    for (ItemId i : ranked[rank]->items) WriteSeedRow(model, i, best_cluster);
  }
}

}  // namespace internal

Result<CpaModel> FitCpa(const AnswerMatrix& answers, std::size_t num_labels,
                        const CpaOptions& options, const FitOptions& fit,
                        FitStats* stats) {
  CPA_ASSIGN_OR_RETURN(
      CpaModel model,
      CpaModel::Create(answers.num_items(), answers.num_workers(), num_labels, options));

  // Auto-calibrate the θ-channel prior mean to the label sparsity of the
  // data (cpa_options.h).
  if (options.theta_prior_mean <= 0.0 && answers.num_answers() > 0) {
    const double mean_answer_size =
        static_cast<double>(answers.TotalLabelAssignments()) /
        static_cast<double>(answers.num_answers());
    model.SetThetaPriorMean(mean_answer_size / static_cast<double>(num_labels));
  }

  // Bootstrap: evidence (answer frequency / observed truth), label-aligned
  // cluster seeding, and — crucially — a λ/ζ pass so the first sweep's
  // responsibilities see cluster-differentiated expectations. Without the
  // λ pass, E[ln ψ] of the near-prior Dirichlet rows is dominated by
  // Ψ′-amplified initialisation jitter and the first ϕ sweep scatters
  // items into arbitrary clusters that then self-reinforce.
  internal::UpdateLabelEvidence(model, answers, fit.observed_truth, nullptr);
  if (!options.singleton_clusters) {
    internal::SeedClustersFromConsensus(model);
  }
  internal::UpdateZeta(model);
  internal::UpdateThetaChannel(model);
  internal::UpdateLambda(model, answers);
  model.RefreshExpectations();

  Matrix previous_kappa = model.kappa;
  Matrix previous_phi = model.phi;
  std::vector<LabelSet> self_training_labels;
  bool evidence_frozen = false;

  FitStats local_stats;
  FitStats& out = stats != nullptr ? *stats : local_stats;
  out = FitStats();

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // --- Local updates (MAP phase; disjoint rows → parallel).
    if (!options.singleton_communities) {
      ParallelFor(
          fit.pool, model.num_workers(),
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t u = begin; u < end; ++u) {
              internal::UpdateWorkerResponsibility(
                  model, answers, static_cast<WorkerId>(u),
                  answers.AnswersOfWorker(static_cast<WorkerId>(u)));
            }
          },
          /*min_shard=*/8);
    }
    const bool reseed_sweep =
        !options.singleton_clusters && iter < options.reseed_sweeps && !evidence_frozen;
    if (!options.singleton_clusters && !reseed_sweep) {
      ParallelFor(
          fit.pool, model.num_items(),
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              internal::UpdateItemResponsibility(
                  model, answers, static_cast<ItemId>(i),
                  answers.AnswersOfItem(static_cast<ItemId>(i)));
            }
          },
          /*min_shard=*/8);
    }

    // --- Global updates (REDUCE phase).
    internal::UpdateSticks(model.rho, model.kappa, options.alpha);
    internal::UpdateSticks(model.upsilon, model.phi, options.epsilon);
    internal::UpdateLambda(model, answers);

    // --- Label evidence for ζ (strategy-dependent; DESIGN.md §4.2). Once
    // the responsibilities are close to converged, the evidence is frozen
    // so the remaining sweeps are pure coordinate ascent on a fixed
    // objective (the adaptive strategies would otherwise keep the target
    // moving just above the tolerance).
    if (!evidence_frozen) {
      if (options.label_evidence == LabelEvidence::kSelfTraining && iter > 0) {
        internal::UpdateThetaChannel(model);
        model.RefreshExpectations();
        model.UpdateSizePrior(answers);
        auto predicted = PredictLabels(model, answers, fit.pool);
        if (predicted.ok()) {
          self_training_labels = std::move(predicted).value().labels;
          internal::UpdateLabelEvidence(model, answers, fit.observed_truth,
                                        &self_training_labels);
        }
      } else {
        internal::UpdateLabelEvidence(model, answers, fit.observed_truth, nullptr);
      }
    }
    if (reseed_sweep) {
      // Re-derive the hard consensus grouping from the freshly sharpened
      // evidence (see `reseed_sweeps` in cpa_options.h).
      internal::SeedClustersFromConsensus(model);
      internal::UpdateSticks(model.upsilon, model.phi, options.epsilon);
      internal::UpdateLambda(model, answers);
    }
    internal::UpdateZeta(model);
    internal::UpdateThetaChannel(model);
    model.RefreshExpectations();

    if (fit.track_elbo) {
      out.elbo_trace.push_back(ComputeElbo(model, answers));
    }

    const double change = std::max(model.kappa.MaxAbsDiff(previous_kappa),
                                   model.phi.MaxAbsDiff(previous_phi));
    out.iterations = iter + 1;
    out.final_change = change;
    previous_kappa = model.kappa;
    previous_phi = model.phi;
    if (change < options.tolerance) {
      out.converged = true;
      break;
    }
    if (change < 10.0 * options.tolerance) evidence_frozen = true;
  }

  model.UpdateSizePrior(answers);
  return model;
}

}  // namespace cpa
