#include "core/cpa_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/special_functions.h"
#include "util/string_utils.h"

namespace cpa {

CpaOptions CpaOptions::Recommended(std::size_t num_items, std::size_t num_labels) {
  CpaOptions options;
  options.max_communities = 8;
  // ~100 MB for λ + its expectation cache at 8 bytes a double.
  const std::size_t bank_entry_budget = 6'000'000;
  const std::size_t memory_cap = std::max<std::size_t>(
      32, bank_entry_budget /
              (options.max_communities * std::max<std::size_t>(1, num_labels)));
  // With few labels there are at most 2^C distinct label sets to represent.
  const std::size_t combinatorial_cap =
      num_labels < 16 ? (std::size_t{1} << num_labels) : std::size_t{1} << 16;
  options.max_clusters = std::max<std::size_t>(
      16, std::min({num_items + 16, memory_cap, combinatorial_cap}));
  return options;
}

Status CpaOptions::Validate() const {
  if (max_communities == 0) return Status::InvalidArgument("max_communities must be > 0");
  if (max_clusters == 0) return Status::InvalidArgument("max_clusters must be > 0");
  if (alpha <= 0.0 || epsilon <= 0.0) {
    return Status::InvalidArgument("CRP concentrations must be positive");
  }
  if (lambda0 <= 0.0 || zeta0 <= 0.0) {
    return Status::InvalidArgument("Dirichlet priors must be positive");
  }
  if (theta_prior_mean < 0.0 || theta_prior_mean >= 1.0) {
    return Status::InvalidArgument("theta_prior_mean must lie in [0, 1)");
  }
  if (theta_prior_strength <= 0.0) {
    return Status::InvalidArgument("theta_prior_strength must be positive");
  }
  if (max_iterations == 0) return Status::InvalidArgument("max_iterations must be > 0");
  if (tolerance <= 0.0) return Status::InvalidArgument("tolerance must be positive");
  if (reliability_floor < 0.0 || reliability_floor > 1.0) {
    return Status::InvalidArgument("reliability_floor must lie in [0, 1]");
  }
  if (prediction_candidates_per_cluster == 0) {
    return Status::InvalidArgument("prediction_candidates_per_cluster must be > 0");
  }
  return Status::OK();
}

void StickBreakingExpectedLog(const Matrix& sticks, std::vector<double>& out) {
  const std::size_t K = sticks.rows() + 1;
  out.assign(K, 0.0);
  double acc_log_one_minus = 0.0;
  for (std::size_t k = 0; k < K; ++k) {
    if (k + 1 < K) {
      const double a = sticks(k, 0);
      const double b = sticks(k, 1);
      const double digamma_ab = Digamma(a + b);
      out[k] = Digamma(a) - digamma_ab + acc_log_one_minus;
      acc_log_one_minus += Digamma(b) - digamma_ab;
    } else {
      // Last component absorbs the remaining stick: π'_K = 1.
      out[k] = acc_log_one_minus;
    }
  }
}

Result<CpaModel> CpaModel::Create(std::size_t num_items, std::size_t num_workers,
                                  std::size_t num_labels, const CpaOptions& options) {
  CPA_RETURN_NOT_OK(options.Validate());
  if (num_labels == 0) return Status::InvalidArgument("num_labels must be positive");

  CpaModel model;
  model.options_ = options;
  model.num_items_ = num_items;
  model.num_workers_ = num_workers;
  model.num_labels_ = num_labels;
  model.M_ = options.singleton_communities ? std::max<std::size_t>(1, num_workers)
                                           : options.max_communities;
  model.T_ = options.singleton_clusters ? std::max<std::size_t>(1, num_items)
                                        : options.max_clusters;

  const std::size_t lambda_entries = model.T_ * model.M_ * num_labels;
  if (lambda_entries > options.no_l_parameter_limit) {
    return Status::Unimplemented(StrFormat(
        "confusion bank needs %zu parameters (> limit %zu); the paper likewise "
        "reports this configuration as intractable (§5.4)",
        lambda_entries, options.no_l_parameter_limit));
  }

  Rng rng(options.seed);

  // Responsibilities: near-uniform with multiplicative jitter, so symmetry
  // between the truncated components is broken deterministically.
  const auto init_responsibilities = [&rng](Matrix& m, bool identity) {
    if (identity) {
      m.Fill(0.0);
      for (std::size_t r = 0; r < m.rows(); ++r) m(r, r % m.cols()) = 1.0;
      return;
    }
    for (std::size_t r = 0; r < m.rows(); ++r) {
      auto row = m.Row(r);
      for (double& v : row) v = 1.0 + 0.1 * rng.NextDouble();
      NormalizeInPlace(row);
    }
  };
  model.kappa.Reset(num_workers, model.M_);
  init_responsibilities(model.kappa, options.singleton_communities);
  model.phi.Reset(num_items, model.T_);
  init_responsibilities(model.phi, options.singleton_clusters);

  model.rho.Reset(model.M_ > 1 ? model.M_ - 1 : 0, 2, 1.0);
  for (std::size_t m = 0; m + 1 < model.M_; ++m) model.rho(m, 1) = options.alpha;
  model.upsilon.Reset(model.T_ > 1 ? model.T_ - 1 : 0, 2, 1.0);
  for (std::size_t t = 0; t + 1 < model.T_; ++t) model.upsilon(t, 1) = options.epsilon;

  model.lambda.assign(model.T_, Matrix(model.M_, num_labels, options.lambda0));
  // Jitter λ slightly so confusion vectors are not exactly symmetric.
  for (auto& bank : model.lambda) {
    for (double& v : bank.Data()) v += 0.01 * options.lambda0 * rng.NextDouble();
  }
  model.zeta.Reset(model.T_, num_labels, options.zeta0);
  model.theta_prior_mean_ =
      options.theta_prior_mean > 0.0 ? options.theta_prior_mean : 0.1;
  model.theta_a.Reset(model.T_, num_labels, model.theta_prior_on());
  model.theta_b.Reset(model.T_, num_labels, model.theta_prior_off());

  model.y_evidence.assign(num_items, {});
  model.y_evidence_weight.assign(num_items, 0.0);
  model.size_prior.Reset(model.T_, 1, 1.0);
  model.bernoulli_profile.Reset(model.T_, num_labels, 0.5);
  model.RefreshExpectations();
  return model;
}

void CpaModel::RefreshExpectations() {
  StickBreakingExpectedLog(rho, elog_pi);
  StickBreakingExpectedLog(upsilon, elog_tau);
  if (elog_psi.size() != T_) elog_psi.assign(T_, Matrix(M_, num_labels_));
  for (std::size_t t = 0; t < T_; ++t) {
    for (std::size_t m = 0; m < M_; ++m) {
      DirichletExpectedLog(lambda[t].Row(m), elog_psi[t].Row(m));
    }
  }
  elog_phi.Reset(T_, num_labels_);
  for (std::size_t t = 0; t < T_; ++t) {
    DirichletExpectedLog(zeta.Row(t), elog_phi.Row(t));
  }
  RefreshThetaExpectations();
}

void CpaModel::SetThetaPriorMean(double mean) {
  theta_prior_mean_ = std::clamp(mean, 0.005, 0.45);
}

void CpaModel::RefreshThetaExpectations() {
  elog_theta.Reset(T_, num_labels_);
  elog_not_theta.Reset(T_, num_labels_);
  elog_theta_base.assign(T_, 0.0);
  elog_theta_delta_t.Reset(num_labels_, T_);
  bernoulli_profile.Reset(T_, num_labels_);
  for (std::size_t t = 0; t < T_; ++t) {
    double base = 0.0;
    for (std::size_t c = 0; c < num_labels_; ++c) {
      const double a = theta_a(t, c);
      const double b = theta_b(t, c);
      const double digamma_ab = Digamma(a + b);
      elog_theta(t, c) = Digamma(a) - digamma_ab;
      elog_not_theta(t, c) = Digamma(b) - digamma_ab;
      base += elog_not_theta(t, c);
      elog_theta_delta_t(c, t) = elog_theta(t, c) - elog_not_theta(t, c);
      bernoulli_profile(t, c) = a / (a + b);
    }
    elog_theta_base[t] = base;
  }
}

double CpaModel::AnswerExpectedLogLik(std::size_t t, std::size_t m,
                                      const LabelSet& labels) const {
  const auto row = elog_psi[t].Row(m);
  double total = 0.0;
  for (LabelId c : labels) total += row[c];
  return total;
}

void CpaModel::UpdateSizePrior(const AnswerMatrix& answers) {
  std::size_t max_size = 1;
  for (const Answer& a : answers.answers()) {
    max_size = std::max(max_size, a.labels.size());
  }
  const std::size_t S = max_size + 2;  // allow completion beyond observed sizes
  size_prior.Reset(T_, S + 1, 0.5);    // Laplace smoothing
  for (const Answer& a : answers.answers()) {
    const auto phi_row = phi.Row(a.item);
    const std::size_t n = a.labels.size();
    for (std::size_t t = 0; t < T_; ++t) {
      size_prior(t, n) += phi_row[t];
    }
  }
  size_prior.NormalizeRows();
}

std::size_t CpaModel::WorkerCommunity(WorkerId u) const { return kappa.ArgMaxRow(u); }

std::size_t CpaModel::ItemCluster(ItemId i) const { return phi.ArgMaxRow(i); }

std::vector<double> CpaModel::CommunitySizes() const {
  std::vector<double> sizes(M_, 0.0);
  for (std::size_t u = 0; u < num_workers_; ++u) {
    const auto row = kappa.Row(u);
    for (std::size_t m = 0; m < M_; ++m) sizes[m] += row[m];
  }
  return sizes;
}

std::vector<double> CpaModel::ClusterSizes() const {
  std::vector<double> sizes(T_, 0.0);
  for (std::size_t i = 0; i < num_items_; ++i) {
    const auto row = phi.Row(i);
    for (std::size_t t = 0; t < T_; ++t) sizes[t] += row[t];
  }
  return sizes;
}

std::vector<double> CpaModel::PsiMean(std::size_t t, std::size_t m) const {
  const auto row = lambda[t].Row(m);
  std::vector<double> mean(row.begin(), row.end());
  NormalizeInPlace(mean);
  return mean;
}

std::vector<double> CpaModel::PhiMean(std::size_t t) const {
  const auto row = zeta.Row(t);
  std::vector<double> mean(row.begin(), row.end());
  NormalizeInPlace(mean);
  return mean;
}

std::vector<double> CpaModel::CommunityReliability() const {
  const std::vector<double> cluster_sizes = ClusterSizes();
  std::vector<double> weights = cluster_sizes;
  NormalizeInPlace(weights);

  std::vector<double> reliability(M_, 0.0);
  std::vector<double> psi_mean;
  std::vector<double> phi_mean;
  for (std::size_t m = 0; m < M_; ++m) {
    double score = 0.0;
    for (std::size_t t = 0; t < T_; ++t) {
      if (weights[t] <= 1e-9) continue;
      psi_mean = PsiMean(t, m);
      phi_mean = PhiMean(t);
      score += weights[t] * CosineSimilarity(psi_mean, phi_mean);
    }
    reliability[m] = std::clamp(score, options_.reliability_floor, 1.0);
  }
  return reliability;
}

namespace {

std::size_t CountEffective(const std::vector<double>& sizes, double min_weight) {
  std::size_t count = 0;
  for (double s : sizes) count += (s >= min_weight);
  return count;
}

}  // namespace

std::size_t CpaModel::EffectiveCommunities(double min_weight) const {
  return CountEffective(CommunitySizes(), min_weight);
}

std::size_t CpaModel::EffectiveClusters(double min_weight) const {
  return CountEffective(ClusterSizes(), min_weight);
}

}  // namespace cpa
