#include "core/cpa_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "engine/checkpoint.h"
#include "util/logging.h"
#include "util/special_functions.h"
#include "util/string_utils.h"

namespace cpa {

CpaOptions CpaOptions::Recommended(std::size_t num_items, std::size_t num_labels) {
  CpaOptions options;
  options.max_communities = 8;
  // ~100 MB for λ + its expectation cache at 8 bytes a double.
  const std::size_t bank_entry_budget = 6'000'000;
  const std::size_t memory_cap = std::max<std::size_t>(
      32, bank_entry_budget /
              (options.max_communities * std::max<std::size_t>(1, num_labels)));
  // With few labels there are at most 2^C distinct label sets to represent.
  const std::size_t combinatorial_cap =
      num_labels < 16 ? (std::size_t{1} << num_labels) : std::size_t{1} << 16;
  options.max_clusters = std::max<std::size_t>(
      16, std::min({num_items + 16, memory_cap, combinatorial_cap}));
  return options;
}

Status CpaOptions::Validate() const {
  if (max_communities == 0) return Status::InvalidArgument("max_communities must be > 0");
  if (max_clusters == 0) return Status::InvalidArgument("max_clusters must be > 0");
  if (alpha <= 0.0 || epsilon <= 0.0) {
    return Status::InvalidArgument("CRP concentrations must be positive");
  }
  if (lambda0 <= 0.0 || zeta0 <= 0.0) {
    return Status::InvalidArgument("Dirichlet priors must be positive");
  }
  if (theta_prior_mean < 0.0 || theta_prior_mean >= 1.0) {
    return Status::InvalidArgument("theta_prior_mean must lie in [0, 1)");
  }
  if (theta_prior_strength <= 0.0) {
    return Status::InvalidArgument("theta_prior_strength must be positive");
  }
  if (max_iterations == 0) return Status::InvalidArgument("max_iterations must be > 0");
  if (tolerance <= 0.0) return Status::InvalidArgument("tolerance must be positive");
  if (reliability_floor < 0.0 || reliability_floor > 1.0) {
    return Status::InvalidArgument("reliability_floor must lie in [0, 1]");
  }
  if (prediction_candidates_per_cluster == 0) {
    return Status::InvalidArgument("prediction_candidates_per_cluster must be > 0");
  }
  return Status::OK();
}

void StickBreakingExpectedLog(const Matrix& sticks, std::vector<double>& out) {
  const std::size_t K = sticks.rows() + 1;
  out.assign(K, 0.0);
  double acc_log_one_minus = 0.0;
  for (std::size_t k = 0; k < K; ++k) {
    if (k + 1 < K) {
      const double a = sticks(k, 0);
      const double b = sticks(k, 1);
      const double digamma_ab = Digamma(a + b);
      out[k] = Digamma(a) - digamma_ab + acc_log_one_minus;
      acc_log_one_minus += Digamma(b) - digamma_ab;
    } else {
      // Last component absorbs the remaining stick: π'_K = 1.
      out[k] = acc_log_one_minus;
    }
  }
}

Result<CpaModel> CpaModel::Create(std::size_t num_items, std::size_t num_workers,
                                  std::size_t num_labels, const CpaOptions& options) {
  CPA_RETURN_NOT_OK(options.Validate());
  if (num_labels == 0) return Status::InvalidArgument("num_labels must be positive");

  CpaModel model;
  model.options_ = options;
  model.num_items_ = num_items;
  model.num_workers_ = num_workers;
  model.num_labels_ = num_labels;
  model.M_ = options.singleton_communities ? std::max<std::size_t>(1, num_workers)
                                           : options.max_communities;
  model.T_ = options.singleton_clusters ? std::max<std::size_t>(1, num_items)
                                        : options.max_clusters;

  const std::size_t lambda_entries = model.T_ * model.M_ * num_labels;
  if (lambda_entries > options.no_l_parameter_limit) {
    return Status::Unimplemented(StrFormat(
        "confusion bank needs %zu parameters (> limit %zu); the paper likewise "
        "reports this configuration as intractable (§5.4)",
        lambda_entries, options.no_l_parameter_limit));
  }

  Rng rng(options.seed);

  // Responsibilities: near-uniform with multiplicative jitter, so symmetry
  // between the truncated components is broken deterministically.
  const auto init_responsibilities = [&rng](Matrix& m, bool identity) {
    if (identity) {
      m.Fill(0.0);
      for (std::size_t r = 0; r < m.rows(); ++r) m(r, r % m.cols()) = 1.0;
      return;
    }
    for (std::size_t r = 0; r < m.rows(); ++r) {
      auto row = m.Row(r);
      for (double& v : row) v = 1.0 + 0.1 * rng.NextDouble();
      NormalizeInPlace(row);
    }
  };
  model.kappa.Reset(num_workers, model.M_);
  init_responsibilities(model.kappa, options.singleton_communities);
  model.phi.Reset(num_items, model.T_);
  init_responsibilities(model.phi, options.singleton_clusters);

  model.rho.Reset(model.M_ > 1 ? model.M_ - 1 : 0, 2, 1.0);
  for (std::size_t m = 0; m + 1 < model.M_; ++m) model.rho(m, 1) = options.alpha;
  model.upsilon.Reset(model.T_ > 1 ? model.T_ - 1 : 0, 2, 1.0);
  for (std::size_t t = 0; t + 1 < model.T_; ++t) model.upsilon(t, 1) = options.epsilon;

  model.lambda.assign(model.T_, Matrix(model.M_, num_labels, options.lambda0));
  // Jitter λ slightly so confusion vectors are not exactly symmetric.
  for (auto& bank : model.lambda) {
    for (double& v : bank.Data()) v += 0.01 * options.lambda0 * rng.NextDouble();
  }
  model.zeta.Reset(model.T_, num_labels, options.zeta0);
  model.theta_prior_mean_ =
      options.theta_prior_mean > 0.0 ? options.theta_prior_mean : 0.1;
  model.theta_a.Reset(model.T_, num_labels, model.theta_prior_on());
  model.theta_b.Reset(model.T_, num_labels, model.theta_prior_off());

  model.y_evidence.assign(num_items, {});
  model.y_evidence_weight.assign(num_items, 0.0);
  model.size_prior.Reset(model.T_, 1, 1.0);
  model.bernoulli_profile.Reset(model.T_, num_labels, 0.5);
  model.RefreshExpectations();
  return model;
}

void CpaModel::RefreshExpectations() {
  StickBreakingExpectedLog(rho, elog_pi);
  StickBreakingExpectedLog(upsilon, elog_tau);
  if (elog_psi.size() != T_) elog_psi.assign(T_, Matrix(M_, num_labels_));
  for (std::size_t t = 0; t < T_; ++t) {
    for (std::size_t m = 0; m < M_; ++m) {
      DirichletExpectedLog(lambda[t].Row(m), elog_psi[t].Row(m));
    }
  }
  elog_phi.Reset(T_, num_labels_);
  for (std::size_t t = 0; t < T_; ++t) {
    DirichletExpectedLog(zeta.Row(t), elog_phi.Row(t));
  }
  RefreshThetaExpectations();
}

void CpaModel::SetThetaPriorMean(double mean) {
  theta_prior_mean_ = std::clamp(mean, 0.005, 0.45);
}

void CpaModel::RefreshThetaExpectations() {
  elog_theta.Reset(T_, num_labels_);
  elog_not_theta.Reset(T_, num_labels_);
  elog_theta_base.assign(T_, 0.0);
  elog_theta_delta_t.Reset(num_labels_, T_);
  bernoulli_profile.Reset(T_, num_labels_);
  for (std::size_t t = 0; t < T_; ++t) {
    double base = 0.0;
    for (std::size_t c = 0; c < num_labels_; ++c) {
      const double a = theta_a(t, c);
      const double b = theta_b(t, c);
      const double digamma_ab = Digamma(a + b);
      elog_theta(t, c) = Digamma(a) - digamma_ab;
      elog_not_theta(t, c) = Digamma(b) - digamma_ab;
      base += elog_not_theta(t, c);
      elog_theta_delta_t(c, t) = elog_theta(t, c) - elog_not_theta(t, c);
      bernoulli_profile(t, c) = a / (a + b);
    }
    elog_theta_base[t] = base;
  }
}

double CpaModel::AnswerExpectedLogLik(std::size_t t, std::size_t m,
                                      const LabelSet& labels) const {
  const auto row = elog_psi[t].Row(m);
  double total = 0.0;
  for (LabelId c : labels) total += row[c];
  return total;
}

void CpaModel::UpdateSizePrior(const AnswerMatrix& answers) {
  std::size_t max_size = 1;
  for (const Answer& a : answers.answers()) {
    max_size = std::max(max_size, a.labels.size());
  }
  const std::size_t S = max_size + 2;  // allow completion beyond observed sizes
  size_prior.Reset(T_, S + 1, 0.5);    // Laplace smoothing
  for (const Answer& a : answers.answers()) {
    const auto phi_row = phi.Row(a.item);
    const std::size_t n = a.labels.size();
    for (std::size_t t = 0; t < T_; ++t) {
      size_prior(t, n) += phi_row[t];
    }
  }
  size_prior.NormalizeRows();
}

std::size_t CpaModel::WorkerCommunity(WorkerId u) const { return kappa.ArgMaxRow(u); }

std::size_t CpaModel::ItemCluster(ItemId i) const { return phi.ArgMaxRow(i); }

std::vector<double> CpaModel::CommunitySizes() const {
  std::vector<double> sizes(M_, 0.0);
  for (std::size_t u = 0; u < num_workers_; ++u) {
    const auto row = kappa.Row(u);
    for (std::size_t m = 0; m < M_; ++m) sizes[m] += row[m];
  }
  return sizes;
}

std::vector<double> CpaModel::ClusterSizes() const {
  std::vector<double> sizes(T_, 0.0);
  for (std::size_t i = 0; i < num_items_; ++i) {
    const auto row = phi.Row(i);
    for (std::size_t t = 0; t < T_; ++t) sizes[t] += row[t];
  }
  return sizes;
}

std::vector<double> CpaModel::PsiMean(std::size_t t, std::size_t m) const {
  const auto row = lambda[t].Row(m);
  std::vector<double> mean(row.begin(), row.end());
  NormalizeInPlace(mean);
  return mean;
}

std::vector<double> CpaModel::PhiMean(std::size_t t) const {
  const auto row = zeta.Row(t);
  std::vector<double> mean(row.begin(), row.end());
  NormalizeInPlace(mean);
  return mean;
}

std::vector<double> CpaModel::CommunityReliability() const {
  const std::vector<double> cluster_sizes = ClusterSizes();
  std::vector<double> weights = cluster_sizes;
  NormalizeInPlace(weights);

  std::vector<double> reliability(M_, 0.0);
  std::vector<double> psi_mean;
  std::vector<double> phi_mean;
  for (std::size_t m = 0; m < M_; ++m) {
    double score = 0.0;
    for (std::size_t t = 0; t < T_; ++t) {
      if (weights[t] <= 1e-9) continue;
      psi_mean = PsiMean(t, m);
      phi_mean = PhiMean(t);
      score += weights[t] * CosineSimilarity(psi_mean, phi_mean);
    }
    reliability[m] = std::clamp(score, options_.reliability_floor, 1.0);
  }
  return reliability;
}

namespace {

std::size_t CountEffective(const std::vector<double>& sizes, double min_weight) {
  std::size_t count = 0;
  for (double s : sizes) count += (s >= min_weight);
  return count;
}

}  // namespace

std::size_t CpaModel::EffectiveCommunities(double min_weight) const {
  return CountEffective(CommunitySizes(), min_weight);
}

std::size_t CpaModel::EffectiveClusters(double min_weight) const {
  return CountEffective(ClusterSizes(), min_weight);
}

void CpaModel::SaveState(CheckpointWriter& writer) const {
  writer.WriteU64(num_items_);
  writer.WriteU64(num_workers_);
  writer.WriteU64(num_labels_);
  writer.WriteU64(M_);
  writer.WriteU64(T_);
  writer.WriteDouble(theta_prior_mean_);
  writer.WriteMatrix(kappa);
  writer.WriteMatrix(phi);
  writer.WriteMatrix(rho);
  writer.WriteMatrix(upsilon);
  writer.WriteU64(lambda.size());
  for (const Matrix& bank : lambda) writer.WriteMatrix(bank);
  writer.WriteMatrix(zeta);
  writer.WriteMatrix(theta_a);
  writer.WriteMatrix(theta_b);
  writer.WriteU64(y_evidence.size());
  for (const auto& evidence : y_evidence) {
    writer.WriteU32(static_cast<std::uint32_t>(evidence.size()));
    for (const auto& [label, weight] : evidence) {
      writer.WriteU32(label);
      writer.WriteDouble(weight);
    }
  }
  writer.WriteDoubles(y_evidence_weight);
  writer.WriteMatrix(size_prior);
}

Status CpaModel::RestoreState(CheckpointReader& reader) {
  CPA_ASSIGN_OR_RETURN(const std::size_t items, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(const std::size_t workers, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(const std::size_t labels, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(const std::size_t m, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(const std::size_t t, reader.ReadSize());
  if (items != num_items_ || workers != num_workers_ ||
      labels != num_labels_ || m != M_ || t != T_) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint model dims (I=%zu U=%zu C=%zu M=%zu T=%zu) do not match "
        "this model (I=%zu U=%zu C=%zu M=%zu T=%zu)",
        items, workers, labels, m, t, num_items_, num_workers_, num_labels_,
        M_, T_));
  }
  CPA_ASSIGN_OR_RETURN(theta_prior_mean_, reader.ReadDouble());

  const auto read_matrix = [&reader](Matrix& out, std::size_t rows,
                                     std::size_t cols,
                                     const char* what) -> Status {
    CPA_ASSIGN_OR_RETURN(Matrix matrix, reader.ReadMatrix());
    if (matrix.rows() != rows || matrix.cols() != cols) {
      return Status::InvalidArgument(
          StrFormat("checkpoint %s is %zux%zu, expected %zux%zu", what,
                    matrix.rows(), matrix.cols(), rows, cols));
    }
    out = std::move(matrix);
    return Status::OK();
  };

  CPA_RETURN_NOT_OK(read_matrix(kappa, num_workers_, M_, "kappa"));
  CPA_RETURN_NOT_OK(read_matrix(phi, num_items_, T_, "phi"));
  CPA_RETURN_NOT_OK(read_matrix(rho, M_ > 0 ? M_ - 1 : 0, 2, "rho"));
  CPA_RETURN_NOT_OK(read_matrix(upsilon, T_ > 0 ? T_ - 1 : 0, 2, "upsilon"));
  CPA_ASSIGN_OR_RETURN(const std::size_t banks, reader.ReadSize());
  if (banks != T_) {
    return Status::InvalidArgument("checkpoint lambda bank count != T");
  }
  lambda.resize(T_);
  for (std::size_t k = 0; k < T_; ++k) {
    CPA_RETURN_NOT_OK(read_matrix(lambda[k], M_, num_labels_, "lambda"));
  }
  CPA_RETURN_NOT_OK(read_matrix(zeta, T_, num_labels_, "zeta"));
  CPA_RETURN_NOT_OK(read_matrix(theta_a, T_, num_labels_, "theta_a"));
  CPA_RETURN_NOT_OK(read_matrix(theta_b, T_, num_labels_, "theta_b"));
  CPA_ASSIGN_OR_RETURN(const std::size_t evidence_items, reader.ReadSize());
  if (evidence_items != num_items_) {
    return Status::InvalidArgument("checkpoint y_evidence length != I");
  }
  y_evidence.assign(num_items_, {});
  for (auto& evidence : y_evidence) {
    CPA_ASSIGN_OR_RETURN(const std::uint32_t nnz, reader.ReadU32());
    // Each entry is a u32 label + f64 weight = 12 bytes.
    if (nnz > reader.remaining() / 12) {
      return Status::InvalidArgument("checkpoint y_evidence nnz too large");
    }
    evidence.reserve(nnz);
    for (std::uint32_t k = 0; k < nnz; ++k) {
      CPA_ASSIGN_OR_RETURN(const std::uint32_t label, reader.ReadU32());
      CPA_ASSIGN_OR_RETURN(const double weight, reader.ReadDouble());
      if (label >= num_labels_) {
        return Status::InvalidArgument("checkpoint y_evidence label too big");
      }
      evidence.emplace_back(label, weight);
    }
  }
  CPA_ASSIGN_OR_RETURN(y_evidence_weight, reader.ReadDoubles());
  if (y_evidence_weight.size() != num_items_) {
    return Status::InvalidArgument("checkpoint y_evidence_weight length != I");
  }
  // size_prior's column count varies with the largest observed answer set,
  // so only the row count is pinned.
  CPA_ASSIGN_OR_RETURN(Matrix restored_size_prior, reader.ReadMatrix());
  if (restored_size_prior.rows() != T_ && !restored_size_prior.empty()) {
    return Status::InvalidArgument("checkpoint size_prior rows != T");
  }
  size_prior = std::move(restored_size_prior);
  RefreshExpectations();
  return Status::OK();
}

}  // namespace cpa
