#ifndef CPA_CORE_VI_H_
#define CPA_CORE_VI_H_

/// \file vi.h
/// \brief Offline variational inference for the CPA model (Algorithm 1).
///
/// Coordinate ascent on the mean-field ELBO: local responsibilities
/// (κ per worker — Eq. 2, ϕ per item — Eq. 3 with the answer-evidence term
/// restored, DESIGN.md §4.1), then the global stick/Dirichlet parameters
/// (Eqs. 4–7), then the unsupervised label evidence ỹ (DESIGN.md §4.2).
///
/// `FitCpa` is the orchestration loop only; the sweep bodies live in
/// `core/sweep/` (shared with the SVI local phase of svi.h): the kernels in
/// `core/sweep/sweep_kernels.h` run over a flat `AnswerView`
/// (`core/sweep/answer_view.h`) and are sharded across the `Executor` by
/// a `SweepScheduler` (`core/sweep/sweep_scheduler.h`). Both the local MAP
/// phase and the global REDUCE accumulations are parallel and bit-identical
/// for any thread count.

#include <cstddef>
#include <vector>

#include "core/cpa_model.h"
#include "data/answer_matrix.h"
#include "data/label_set.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cpa {

/// \brief Diagnostics of a fit.
struct FitStats {
  std::size_t iterations = 0;
  double final_change = 0.0;
  bool converged = false;

  /// Wall-clock seconds of the prediction phase behind this solution's
  /// labels (`PredictLabels` for offline solves, the snapshot predict for
  /// the online learner); 0 when no prediction ran. Fig 7 reports it as
  /// the `prediction_ms` column.
  double prediction_seconds = 0.0;

  /// ELBO after each sweep (filled only when requested — the trace costs
  /// one extra data pass per sweep).
  std::vector<double> elbo_trace;
};

/// \brief Options of a single Fit call that are not model properties.
struct FitOptions {
  /// Observed true labels (semi-supervised setting); nullptr for the
  /// paper's fully unsupervised y = ∅.
  const std::vector<LabelSet>* observed_truth = nullptr;

  /// Pool for the parallel sweeps; nullptr = sequential. Results are
  /// bit-identical either way (see core/sweep/sweep_scheduler.h).
  Executor* pool = nullptr;

  /// Record the ELBO after every sweep into `FitStats::elbo_trace`.
  bool track_elbo = false;
};

/// \brief Fits the CPA model to `answers` by offline VI.
Result<CpaModel> FitCpa(const AnswerMatrix& answers, std::size_t num_labels,
                        const CpaOptions& options, const FitOptions& fit = {},
                        FitStats* stats = nullptr);

}  // namespace cpa

#endif  // CPA_CORE_VI_H_
