#ifndef CPA_CORE_VI_H_
#define CPA_CORE_VI_H_

/// \file vi.h
/// \brief Offline variational inference for the CPA model (Algorithm 1).
///
/// Coordinate ascent on the mean-field ELBO: local responsibilities
/// (κ per worker — Eq. 2, ϕ per item — Eq. 3 with the answer-evidence term
/// restored, DESIGN.md §4.1), then the global stick/Dirichlet parameters
/// (Eqs. 4–7), then the unsupervised label evidence ỹ (DESIGN.md §4.2).
/// Local updates touch disjoint rows and are parallelised over a
/// `ThreadPool` (the MAP phase of Algorithm 3); global accumulation is the
/// REDUCE phase on the calling thread.

#include <cstddef>
#include <vector>

#include "core/cpa_model.h"
#include "data/answer_matrix.h"
#include "data/label_set.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cpa {

/// \brief Diagnostics of a fit.
struct FitStats {
  std::size_t iterations = 0;
  double final_change = 0.0;
  bool converged = false;

  /// ELBO after each sweep (filled only when requested — the trace costs
  /// one extra data pass per sweep).
  std::vector<double> elbo_trace;
};

/// \brief Options of a single Fit call that are not model properties.
struct FitOptions {
  /// Observed true labels (semi-supervised setting); nullptr for the
  /// paper's fully unsupervised y = ∅.
  const std::vector<LabelSet>* observed_truth = nullptr;

  /// Pool for the parallel local updates; nullptr = sequential.
  ThreadPool* pool = nullptr;

  /// Record the ELBO after every sweep into `FitStats::elbo_trace`.
  bool track_elbo = false;
};

/// \brief Fits the CPA model to `answers` by offline VI.
Result<CpaModel> FitCpa(const AnswerMatrix& answers, std::size_t num_labels,
                        const CpaOptions& options, const FitOptions& fit = {},
                        FitStats* stats = nullptr);

namespace internal {

/// Eq. 2: recomputes κ row `u` from the given answers of worker `u`.
void UpdateWorkerResponsibility(CpaModel& model, const AnswerMatrix& answers,
                                WorkerId u, std::span<const std::size_t> indices);

/// Eq. 3 (+ answer evidence): recomputes ϕ row `i` from the answers of
/// item `i` and the item's label evidence ỹ_i.
void UpdateItemResponsibility(CpaModel& model, const AnswerMatrix& answers, ItemId i,
                              std::span<const std::size_t> indices);

/// Eqs. 4/5: stick Beta parameters from responsibility column masses.
void UpdateSticks(Matrix& sticks, const Matrix& responsibilities,
                  double concentration);

/// Eq. 6: λ from scratch over the given answers.
void UpdateLambda(CpaModel& model, const AnswerMatrix& answers);

/// Eq. 7: ζ from scratch over the current label evidence.
void UpdateZeta(CpaModel& model);

/// Rebuilds ỹ for the given items according to the configured strategy
/// (`observed_truth` overrides per item when provided). `self_training`
/// entries (when non-null) supply the current hard predictions.
void UpdateLabelEvidence(CpaModel& model, const AnswerMatrix& answers,
                         const std::vector<LabelSet>* observed_truth,
                         const std::vector<LabelSet>* self_training_labels);

/// Per-worker reliability weights for kReliabilityWeighted: mean
/// soft-Jaccard agreement with the current consensus ỹ, shrunk toward the
/// worker's community mean and sharpened (cpa_options.h). All ones on the
/// bootstrap sweep (no consensus yet).
std::vector<double> ComputeWorkerReliability(const CpaModel& model,
                                             const AnswerMatrix& answers);

/// Refreshes the Beta-Bernoulli label channel (θ_tc posteriors feeding the
/// ϕ evidence term, marginal label scores, and the kBernoulliProfile
/// prediction mode) from ϕ and ỹ.
void UpdateThetaChannel(CpaModel& model);

/// Initialises ϕ rows so items with identical majority-consensus label
/// sets start in the same cluster, with clusters assigned in consensus-
/// frequency order (label-aligned symmetry breaking matched to the
/// size-biased stick-breaking geometry).
void SeedClustersFromConsensus(CpaModel& model);

/// The majority-consensus label set of an item's current evidence
/// (weights ≥ 0.5, falling back to the strongest single label); empty when
/// the item has no evidence.
LabelSet ConsensusFromEvidence(const CpaModel& model, ItemId item);

/// Seeds one ϕ row: 0.7 mass on `cluster`, the rest uniform.
void WriteSeedRow(CpaModel& model, ItemId item, std::size_t cluster);

}  // namespace internal
}  // namespace cpa

#endif  // CPA_CORE_VI_H_
