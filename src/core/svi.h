#ifndef CPA_CORE_SVI_H_
#define CPA_CORE_SVI_H_

/// \file svi.h
/// \brief Stochastic variational inference for the CPA model — the online
/// learning of §4.1 (Algorithm 2) with the MapReduce-style parallel local
/// phase of §4.2 (Algorithm 3).
///
/// Answers arrive as batches of worker answers. Per batch `b`:
/// (MAP phase, parallel) κ rows of the batch workers are recomputed from
/// their new answers; (REDUCE phase) natural-gradient steps with learning
/// rate `ω_b = (1+b)^{−r}` move the global parameters (λ, ρ, ζ, and ϕ via
/// its canonical log-odds parameterisation µ, Eqs. 15–17) toward the batch
/// estimates, scaled by running totals (answers/workers/items seen) in
/// place of the paper's uniform `U` factor — the dimensionally consistent
/// SVI estimator (DESIGN.md §4.4). υ is updated exactly since the full ϕ
/// is maintained.
///
/// The sweep bodies (Eq. 2 κ rows, evidence-only ϕ rows, label-evidence
/// accumulation) are the shared kernels of `core/sweep/sweep_kernels.h` —
/// the same code the offline coordinate-ascent loop of vi.h runs — applied
/// to the answers seen so far through a flat `AnswerView`
/// (`core/sweep/answer_view.h`) of the stream matrix.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include <memory>

#include "core/cpa_model.h"
#include "core/prediction.h"
#include "core/sweep/answer_view.h"
#include "core/sweep/sweep_kernels.h"
#include "core/sweep/sweep_scheduler.h"
#include "data/answer_matrix.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cpa {

/// \brief Knobs of the online learner.
struct SviOptions {
  /// Workers per batch (callers typically build plans with
  /// `MakeWorkerBatches(answers, workers_per_batch, rng)`).
  std::size_t workers_per_batch = 25;

  /// Forgetting rate r ∈ (0.5, 1]; the paper finds r ∈ [0.85, 0.9] best
  /// and uses 0.875 in its scalability experiments.
  double forgetting_rate = 0.875;

  /// When true (default), batch items receive an exact local ϕ update over
  /// their accumulated answers (the Hoffman-style treatment of per-item
  /// latents). When false, the paper-literal natural-gradient step in the
  /// canonical log-odds µ (Eqs. 15–17) is used instead; the ablation bench
  /// compares both.
  bool exact_local_phi = true;

  /// Reliability ↔ consensus ↔ cluster reinforcement rounds per batch (the
  /// offline fit gets the equivalent reinforcement across its sweeps).
  std::size_t reinforcement_rounds = 1;

  Status Validate() const;
};

/// \brief Incremental CPA learner: consume batches, predict any time.
class CpaOnline {
 public:
  /// Creates the learner over fixed dimensions (items/workers may be upper
  /// bounds; unseen entities simply keep their initial state).
  static Result<CpaOnline> Create(
      std::size_t num_items, std::size_t num_workers, std::size_t num_labels,
      const CpaOptions& options, const SviOptions& svi_options,
      Executor* pool = nullptr,
      ScratchArena::Mode arena_mode = ScratchArena::Mode::kReuse);

  /// Consumes one batch: `batch` holds flat indices into
  /// `answers.answers()`. Only those answers are read — the learner never
  /// peeks at data outside the batches it has been shown. (The flat
  /// `AnswerView` layout cache spans the whole stream matrix, but carries
  /// only the caller's own data re-ordered, no inference state.)
  Status ObserveBatch(const AnswerMatrix& answers,
                      std::span<const std::size_t> batch);

  /// Predicts labels from the current model state. `answers` must be the
  /// same stream matrix passed to `ObserveBatch`; the learner reads only
  /// the answers whose batches it has been shown. Before instantiating, it
  /// refreshes consensus evidence, cluster assignments and the label
  /// channel over everything seen — batch ingestion only updates the
  /// entities a batch touches, so mid-stream items would otherwise predict
  /// from stale consensus.
  Result<CpaPrediction> Predict(const AnswerMatrix& answers);

  /// The current model (expectations are fresh after every batch).
  const CpaModel& model() const { return model_; }

  std::size_t batches_seen() const { return batch_count_; }
  std::size_t answers_seen() const { return answers_seen_; }

  /// ω_b of the most recent batch (0 before the first batch).
  double last_learning_rate() const { return last_rate_; }

  /// \name Checkpointing (engine/checkpoint.h).
  ///
  /// Serializes the model plus every piece of learner state that feeds
  /// future batches (step counters, seen-sets, cluster seeding, size
  /// counts). Derived caches — the flat `AnswerView` and the per-item
  /// activity lists — are rebuilt lazily after restore, which is exact:
  /// both are pure functions of the restored state and the stream.
  /// `RestoreState` requires a freshly `Create`d learner of the same
  /// dimensions; continuing afterwards is bit-identical to never stopping.
  /// @{
  void SaveState(CheckpointWriter& writer) const;
  Status RestoreState(CheckpointReader& reader);
  /// @}

 private:
  CpaOnline() = default;

  /// Rebuilds the flat view when the stream matrix has grown since the
  /// last batch (the view indexes by flat answer position, so it only ever
  /// needs rebuilding on growth).
  void EnsureView(const AnswerMatrix& answers);

  /// Reinforcement pass (reliability → evidence → clusters → θ) over all
  /// seen data; see Predict.
  void GlobalRefresh(const AnswerMatrix& answers);

  /// Full `activity_` rebuild from the current ϕ when it is stale (first
  /// batch, or after a pass that rewrote ϕ globally).
  void EnsureActivity(const SweepScheduler& scheduler);

  CpaModel model_;
  SviOptions svi_options_;
  Executor* pool_ = nullptr;

  /// Session-lifetime scheduler: its lane arenas stay warm across batches,
  /// so steady-state SVI steps (and every snapshot predict) reuse the same
  /// scratch slabs instead of re-allocating per call. Owned by pointer so
  /// the learner stays movable. Retention equals this session's high-water
  /// scratch (bounded by the λ-reduce budget in sweep_kernels.cc) and is
  /// released with the learner — under the server, idle expiry bounds the
  /// fleet-wide total.
  std::unique_ptr<SweepScheduler> scheduler_;

  /// Persistent per-item active-cluster lists kept consistent with ϕ: the
  /// reinforcement rounds patch just the batch items' rows
  /// (`sweep::UpdateClusterActivityRows`) instead of rescanning the full
  /// I×T ϕ each round; passes that rewrite ϕ globally rebuild it. Debug
  /// builds assert equality against a from-scratch rebuild after every
  /// patch.
  sweep::ClusterActivity activity_;
  bool activity_valid_ = false;

  /// Flat CSR/SoA layout of the stream matrix for the sweep kernels, plus
  /// the identity of the matrix it was built from: a different matrix
  /// object forces a full rebuild (same identity check the engine layer
  /// applies to its stream), so cached labels never go stale.
  AnswerView view_;
  const AnswerMatrix* viewed_stream_ = nullptr;

  std::size_t batch_count_ = 0;
  double last_rate_ = 0.0;
  std::size_t answers_seen_ = 0;
  std::size_t workers_seen_ = 0;
  std::size_t items_seen_ = 0;
  std::vector<bool> worker_seen_;
  std::vector<bool> item_seen_;

  // Every answer index observed so far, indexed by item and by worker. The
  // learner never reads outside these (no peeking ahead of the stream),
  // but it does not forget either: evidence and local updates use all
  // answers accumulated for the touched entities.
  std::vector<std::vector<std::uint32_t>> seen_by_item_;
  std::vector<std::vector<std::uint32_t>> seen_by_worker_;

  // Online cluster seeding: distinct consensus sets are allocated cluster
  // indices first-come-first-served (the streaming analogue of the offline
  // frequency-ordered seeding); overflow sets join their best Jaccard
  // match. Items participate only once they carry at least
  // `kMinAnswersToSeed` answers — single-answer "consensus" would squander
  // the allocations on noise.
  static constexpr std::size_t kMinAnswersToSeed = 2;
  std::map<std::string, std::size_t> consensus_cluster_;
  std::vector<LabelSet> cluster_consensus_;
  std::size_t next_cluster_ = 0;
  std::vector<bool> item_seeded_;

  // Undecayed ϕ-weighted answer-set-size counts feeding the size prior.
  Matrix size_counts_;
};

}  // namespace cpa

#endif  // CPA_CORE_SVI_H_
