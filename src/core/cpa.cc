#include "core/cpa.h"

#include <algorithm>

#include "util/stopwatch.h"
#include "util/string_utils.h"

namespace cpa {

std::string_view CpaVariantName(CpaVariant variant) {
  switch (variant) {
    case CpaVariant::kFull:
      return "CPA";
    case CpaVariant::kNoZ:
      return "CPA-NoZ";
    case CpaVariant::kNoL:
      return "CPA-NoL";
  }
  return "CPA";
}

Result<CpaSolution> SolveCpaOffline(const AnswerMatrix& answers,
                                    std::size_t num_labels, const CpaOptions& options,
                                    CpaVariant variant, Executor* pool) {
  if (variant == CpaVariant::kNoL && num_labels > kNoLExhaustiveLabelLimit) {
    // Faithful to §5.4: the No L instantiation enumerates label subsets
    // (2^C), which "turned out to be intractable for all except the movie
    // dataset" (C = 22). The bounded search could sidestep this, but the
    // ablation is meant to measure the paper's variant.
    return Status::Unimplemented(StrFormat(
        "No L exhaustive instantiation over 2^%zu label subsets is intractable "
        "(limit: %zu labels)",
        num_labels, kNoLExhaustiveLabelLimit));
  }
  CpaOptions solve_options = options;
  switch (variant) {
    case CpaVariant::kFull:
      break;
    case CpaVariant::kNoZ:
      solve_options.singleton_communities = true;
      break;
    case CpaVariant::kNoL:
      solve_options.singleton_clusters = true;
      solve_options.exhaustive_prediction = true;
      break;
  }
  if (variant == CpaVariant::kNoZ) {
    // Singleton communities blow the confusion bank up to T·U·C entries;
    // shrink the cluster truncation to respect the parameter budget (the
    // ablation still runs, as it does in the paper).
    const std::size_t per_cluster =
        std::max<std::size_t>(1, answers.num_workers() * num_labels);
    solve_options.max_clusters = std::max<std::size_t>(
        8, std::min(solve_options.max_clusters,
                    solve_options.no_l_parameter_limit / per_cluster));
  }
  FitOptions fit;
  fit.pool = pool;
  CpaSolution solution;
  CPA_ASSIGN_OR_RETURN(
      solution.model,
      FitCpa(answers, num_labels, solve_options, fit, &solution.stats));
  const Stopwatch prediction_watch;
  CPA_ASSIGN_OR_RETURN(CpaPrediction prediction,
                       PredictLabels(solution.model, answers, pool));
  solution.stats.prediction_seconds = prediction_watch.ElapsedSeconds();
  solution.predictions = std::move(prediction.labels);
  solution.label_scores = std::move(prediction.scores);
  return solution;
}

CpaAggregator::CpaAggregator(CpaOptions options, CpaVariant variant, Executor* pool)
    : options_(options), variant_(variant), pool_(pool) {}

// CpaAggregator::Aggregate lives in engine/cpa_engines.cc: it drives a
// CpaOfflineEngine session, and core/ does not include engine/ headers.

}  // namespace cpa
