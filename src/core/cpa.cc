#include "core/cpa.h"

#include "util/string_utils.h"

namespace cpa {

std::string_view CpaVariantName(CpaVariant variant) {
  switch (variant) {
    case CpaVariant::kFull:
      return "CPA";
    case CpaVariant::kNoZ:
      return "CPA-NoZ";
    case CpaVariant::kNoL:
      return "CPA-NoL";
  }
  return "CPA";
}

CpaAggregator::CpaAggregator(CpaOptions options, CpaVariant variant, ThreadPool* pool)
    : options_(options), variant_(variant), pool_(pool) {
  switch (variant_) {
    case CpaVariant::kFull:
      break;
    case CpaVariant::kNoZ:
      options_.singleton_communities = true;
      break;
    case CpaVariant::kNoL:
      options_.singleton_clusters = true;
      options_.exhaustive_prediction = true;
      break;
  }
}

Result<AggregationResult> CpaAggregator::Aggregate(const AnswerMatrix& answers,
                                                   std::size_t num_labels) {
  if (variant_ == CpaVariant::kNoL && num_labels > kNoLExhaustiveLabelLimit) {
    // Faithful to §5.4: the No L instantiation enumerates label subsets
    // (2^C), which "turned out to be intractable for all except the movie
    // dataset" (C = 22). The bounded search could sidestep this, but the
    // ablation is meant to measure the paper's variant.
    return Status::Unimplemented(StrFormat(
        "No L exhaustive instantiation over 2^%zu label subsets is intractable "
        "(limit: %zu labels)",
        num_labels, kNoLExhaustiveLabelLimit));
  }
  CpaOptions options = options_;
  if (variant_ == CpaVariant::kNoZ) {
    // Singleton communities blow the confusion bank up to T·U·C entries;
    // shrink the cluster truncation to respect the parameter budget (the
    // ablation still runs, as it does in the paper).
    const std::size_t per_cluster =
        std::max<std::size_t>(1, answers.num_workers() * num_labels);
    options.max_clusters = std::max<std::size_t>(
        8, std::min(options.max_clusters, options.no_l_parameter_limit / per_cluster));
  }
  FitOptions fit;
  fit.pool = pool_;
  CPA_ASSIGN_OR_RETURN(model_, FitCpa(answers, num_labels, options, fit, &stats_));
  fitted_ = true;
  CPA_ASSIGN_OR_RETURN(CpaPrediction prediction, PredictLabels(model_, answers, pool_));

  AggregationResult result;
  result.predictions = std::move(prediction.labels);
  result.label_scores = std::move(prediction.scores);
  result.iterations = stats_.iterations;
  return result;
}

}  // namespace cpa
