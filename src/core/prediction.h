#ifndef CPA_CORE_PREDICTION_H_
#define CPA_CORE_PREDICTION_H_

/// \file prediction.h
/// \brief Label-set instantiation from the fitted posterior (§3.4).
///
/// For each item, the cluster posterior ϕ is re-weighted by the likelihood
/// of the item's answers under each cluster (mixing over communities with
/// κ — the `Π_u Σ_m κ_um p(x_ui | ψ̂_tm)` factor of the paper's prediction
/// formula), then the label set is instantiated:
///
/// - `kMultinomialSizePrior`: greedy ascent on
///   `ln Σ_t w̃_t · SizePrior_t(|y|) · |y|! · Π_{c∈y} φ̂_tc`
///   (the paper's greedy, made non-degenerate by the per-cluster size
///   prior; DESIGN.md §4.3). Candidate labels are the item's answered
///   labels plus top-profile labels of its likely clusters, which is how
///   co-occurrence completion (R3) enters without scanning all C labels.
/// - `kBernoulliProfile`: exact thresholding of the mixed Bernoulli
///   profile `q_ic = Σ_t w̃_t θ_tc`.
///
/// An exhaustive bounded-subset search (the paper's 2^C instantiation,
/// §5.4) is provided for the No L variant and as a test oracle for the
/// greedy.
///
/// Execution model (Eqs. 4–7 are the offline wall-clock tail, so this
/// phase runs like a sweep): items are sharded through the
/// `SweepScheduler` MAP phase, a per-item `ClusterActivity` built at the
/// prediction prune threshold supplies each item's live clusters, and all
/// per-item buffers (`ActiveClusters` ids/log-weights, score terms,
/// accumulators) are checked out of the shard's lane `ScratchArena` once
/// and reused across the shard's items. Results are bit-identical for any
/// thread count and for arena- vs heap-backed scratch.
///
/// The paper's ψ^MAP/φ^MAP point estimates are degenerate for Dirichlet
/// parameters below 1 (mode on the simplex boundary), so posterior means
/// are used instead — the standard plug-in.

#include <vector>

#include "core/cpa_model.h"
#include "core/sweep/sweep_kernels.h"
#include "core/sweep/sweep_scheduler.h"
#include "data/answer_matrix.h"
#include "data/label_set.h"
#include "util/arena.h"
#include "util/matrix.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cpa {

/// \brief Instantiated labels plus marginal per-label scores.
struct CpaPrediction {
  std::vector<LabelSet> labels;

  /// Marginal label probabilities q_ic = Σ_t w̃_t θ_tc (I × C).
  Matrix scores;
};

/// \brief Predicts label sets for every item (parallel over items).
///
/// Requires a fitted model (size prior and Bernoulli profile refreshed —
/// `FitCpa` leaves the model in that state).
Result<CpaPrediction> PredictLabels(const CpaModel& model, const AnswerMatrix& answers,
                                    Executor* pool = nullptr);

/// Same, scheduled on a caller-owned `SweepScheduler` — the fit loops and
/// the online learner pass their own scheduler so prediction reuses the
/// already-warm lane arenas instead of building a fresh scheduler per call.
Result<CpaPrediction> PredictLabels(const CpaModel& model, const AnswerMatrix& answers,
                                    const SweepScheduler& scheduler);

namespace internal {

/// Clusters whose normalised weight falls below this are pruned from the
/// per-item scoring (identity-ϕ variants leave exactly one active cluster).
inline constexpr double kClusterPrune = 1e-10;

/// Precomputed log posterior-mean parameters shared across items.
struct PredictionTables {
  std::vector<Matrix> log_psi_mean;  ///< T × (M × C)
  Matrix log_phi_mean;               ///< T × C
  Matrix log_size_prior;             ///< T × (S+1)
  std::vector<std::vector<LabelId>> top_labels;  ///< per cluster, profile-sorted
};

/// \brief Per-shard prediction buffers, checked out once and reused across
/// the shard's items.
///
/// The fixed-width spans (cluster- and community-shaped) live in a
/// `ScratchArena` lane (or, via the heap constructor, in owned vectors —
/// the pre-arena baseline used by the legacy wrappers, the microbenchmarks,
/// and the arena-vs-heap bit-identity tests). The variable-width members
/// are plain vectors whose capacity survives across items.
struct PredictionScratch {
  /// Heap-backed: owns its buffers (T clusters, M communities).
  PredictionScratch(std::size_t num_clusters, std::size_t num_communities);

  /// Arena-backed: buffers are checkouts of `arena` and live until the
  /// arena frame closes.
  PredictionScratch(ScratchArena& arena, std::size_t num_clusters,
                    std::size_t num_communities);

  std::span<double> log_weights;        ///< T: reweighted cluster log-posterior
  std::span<double> weights;            ///< T: softmaxed copy for the scores
  std::span<double> member_terms;       ///< M: per-community log-lik terms
  std::span<std::size_t> active_ids;    ///< ≤T: surviving cluster ids
  std::span<double> active_log_weights; ///< matching normalised log-weights
  std::span<double> acc;                ///< ≤T: per-cluster partial products
  std::span<double> trial;              ///< ≤T: greedy candidate trial row
  std::span<double> terms;              ///< ≤T: SetScore mixture terms
  std::size_t active_count = 0;         ///< live prefix of the active spans

  std::vector<LabelId> candidates;
  std::vector<std::size_t> cluster_order;
  std::vector<LabelId> subset;       ///< exhaustive DFS stack
  std::vector<LabelId> best_subset;  ///< exhaustive best-so-far
  std::vector<char> used;            ///< greedy candidate marks

 private:
  std::vector<double> owned_doubles_;
  std::vector<std::size_t> owned_ids_;
};

/// Builds the tables from a fitted model.
PredictionTables BuildPredictionTables(const CpaModel& model);

/// Posterior cluster log-weights of one item, answer-likelihood-reweighted
/// (unnormalised), written into `scratch.log_weights`. `activity`
/// (nullable) supplies the item's clusters above `kClusterPrune`; without
/// it the full ϕ row is scanned — both paths are bit-identical.
void ItemClusterLogWeights(const CpaModel& model, const PredictionTables& tables,
                           const AnswerMatrix& answers, ItemId item,
                           const sweep::ClusterActivity* activity,
                           PredictionScratch& scratch);

/// Legacy allocation-per-call form (tests and external callers).
std::vector<double> ItemClusterLogWeights(const CpaModel& model,
                                          const PredictionTables& tables,
                                          const AnswerMatrix& answers, ItemId item);

/// Greedy MAP instantiation over `candidates` given cluster log-weights.
LabelSet GreedyInstantiate(const PredictionTables& tables,
                           std::span<const double> cluster_log_weights,
                           std::span<const LabelId> candidates,
                           PredictionScratch& scratch);

/// Legacy allocation-per-call form.
LabelSet GreedyInstantiate(const PredictionTables& tables,
                           std::span<const double> cluster_log_weights,
                           const std::vector<LabelId>& candidates);

/// Bounded exhaustive instantiation (all subsets of `candidates` up to
/// `max_size`); the oracle for GreedyInstantiate and the No L search.
LabelSet ExhaustiveInstantiate(const PredictionTables& tables,
                               std::span<const double> cluster_log_weights,
                               std::span<const LabelId> candidates,
                               std::size_t max_size, PredictionScratch& scratch);

/// Legacy allocation-per-call form.
LabelSet ExhaustiveInstantiate(const PredictionTables& tables,
                               std::span<const double> cluster_log_weights,
                               const std::vector<LabelId>& candidates,
                               std::size_t max_size);

/// Candidate labels for an item (answered labels + top cluster labels),
/// deduplicated and sorted into `scratch.candidates`.
void CollectCandidates(const PredictionTables& tables, const AnswerMatrix& answers,
                       ItemId item, std::span<const double> cluster_log_weights,
                       PredictionScratch& scratch);

/// Legacy allocation-per-call form.
std::vector<LabelId> CollectCandidates(const PredictionTables& tables,
                                       const AnswerMatrix& answers, ItemId item,
                                       std::span<const double> cluster_log_weights);

}  // namespace internal
}  // namespace cpa

#endif  // CPA_CORE_PREDICTION_H_
