#ifndef CPA_CORE_PREDICTION_H_
#define CPA_CORE_PREDICTION_H_

/// \file prediction.h
/// \brief Label-set instantiation from the fitted posterior (§3.4).
///
/// For each item, the cluster posterior ϕ is re-weighted by the likelihood
/// of the item's answers under each cluster (mixing over communities with
/// κ — the `Π_u Σ_m κ_um p(x_ui | ψ̂_tm)` factor of the paper's prediction
/// formula), then the label set is instantiated:
///
/// - `kMultinomialSizePrior`: greedy ascent on
///   `ln Σ_t w̃_t · SizePrior_t(|y|) · |y|! · Π_{c∈y} φ̂_tc`
///   (the paper's greedy, made non-degenerate by the per-cluster size
///   prior; DESIGN.md §4.3). Candidate labels are the item's answered
///   labels plus top-profile labels of its likely clusters, which is how
///   co-occurrence completion (R3) enters without scanning all C labels.
/// - `kBernoulliProfile`: exact thresholding of the mixed Bernoulli
///   profile `q_ic = Σ_t w̃_t θ_tc`.
///
/// An exhaustive bounded-subset search (the paper's 2^C instantiation,
/// §5.4) is provided for the No L variant and as a test oracle for the
/// greedy.
///
/// The paper's ψ^MAP/φ^MAP point estimates are degenerate for Dirichlet
/// parameters below 1 (mode on the simplex boundary), so posterior means
/// are used instead — the standard plug-in.

#include <vector>

#include "core/cpa_model.h"
#include "data/answer_matrix.h"
#include "data/label_set.h"
#include "util/matrix.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cpa {

/// \brief Instantiated labels plus marginal per-label scores.
struct CpaPrediction {
  std::vector<LabelSet> labels;

  /// Marginal label probabilities q_ic = Σ_t w̃_t θ_tc (I × C).
  Matrix scores;
};

/// \brief Predicts label sets for every item (parallel over items).
///
/// Requires a fitted model (size prior and Bernoulli profile refreshed —
/// `FitCpa` leaves the model in that state).
Result<CpaPrediction> PredictLabels(const CpaModel& model, const AnswerMatrix& answers,
                                    Executor* pool = nullptr);

namespace internal {

/// Precomputed log posterior-mean parameters shared across items.
struct PredictionTables {
  std::vector<Matrix> log_psi_mean;  ///< T × (M × C)
  Matrix log_phi_mean;               ///< T × C
  Matrix log_size_prior;             ///< T × (S+1)
  std::vector<std::vector<LabelId>> top_labels;  ///< per cluster, profile-sorted
};

/// Builds the tables from a fitted model.
PredictionTables BuildPredictionTables(const CpaModel& model);

/// Posterior cluster log-weights of one item, answer-likelihood-reweighted
/// (unnormalised).
std::vector<double> ItemClusterLogWeights(const CpaModel& model,
                                          const PredictionTables& tables,
                                          const AnswerMatrix& answers, ItemId item);

/// Greedy MAP instantiation over `candidates` given cluster log-weights.
LabelSet GreedyInstantiate(const PredictionTables& tables,
                           std::span<const double> cluster_log_weights,
                           const std::vector<LabelId>& candidates);

/// Bounded exhaustive instantiation (all subsets of `candidates` up to
/// `max_size`); the oracle for GreedyInstantiate and the No L search.
LabelSet ExhaustiveInstantiate(const PredictionTables& tables,
                               std::span<const double> cluster_log_weights,
                               const std::vector<LabelId>& candidates,
                               std::size_t max_size);

/// Candidate labels for an item: answered labels + top cluster labels.
std::vector<LabelId> CollectCandidates(const PredictionTables& tables,
                                       const AnswerMatrix& answers, ItemId item,
                                       std::span<const double> cluster_log_weights);

}  // namespace internal
}  // namespace cpa

#endif  // CPA_CORE_PREDICTION_H_
