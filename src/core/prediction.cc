#include "core/prediction.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "util/logging.h"
#include "util/special_functions.h"

namespace cpa {
namespace internal {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Clusters whose normalised weight falls below this are pruned from the
/// per-item scoring (identity-ϕ variants leave exactly one active cluster).
constexpr double kClusterPrune = 1e-10;

double SafeLog(double x) { return x > 0.0 ? std::log(x) : kNegInf; }

/// Active (cluster, base log-weight) pairs after normalisation + pruning.
struct ActiveClusters {
  std::vector<std::size_t> ids;
  std::vector<double> log_weights;  // normalised
};

ActiveClusters Normalize(std::span<const double> cluster_log_weights) {
  ActiveClusters active;
  const double log_norm = LogSumExp(cluster_log_weights);
  for (std::size_t t = 0; t < cluster_log_weights.size(); ++t) {
    const double log_weight = cluster_log_weights[t] - log_norm;
    if (std::exp(log_weight) >= kClusterPrune) {
      active.ids.push_back(t);
      active.log_weights.push_back(log_weight);
    }
  }
  return active;
}

/// log Σ_t exp(acc_t + log_size_prior_t(n)) + ln(n!).
double SetScore(const PredictionTables& tables, const ActiveClusters& active,
                std::span<const double> acc, std::size_t n) {
  if (n >= tables.log_size_prior.cols()) return kNegInf;
  double best = kNegInf;
  std::vector<double> terms(active.ids.size());
  for (std::size_t j = 0; j < active.ids.size(); ++j) {
    terms[j] = acc[j] + tables.log_size_prior(active.ids[j], n);
    best = std::max(best, terms[j]);
  }
  if (!std::isfinite(best)) return kNegInf;
  double sum = 0.0;
  for (double v : terms) sum += std::exp(v - best);
  return best + std::log(sum) + LogGamma(static_cast<double>(n) + 1.0);
}

}  // namespace

PredictionTables BuildPredictionTables(const CpaModel& model) {
  PredictionTables tables;
  const std::size_t T = model.num_clusters();
  const std::size_t M = model.num_communities();
  const std::size_t C = model.num_labels();

  tables.log_psi_mean.assign(T, Matrix(M, C));
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t m = 0; m < M; ++m) {
      const auto lambda_row = model.lambda[t].Row(m);
      const double total = Sum(lambda_row);
      auto out = tables.log_psi_mean[t].Row(m);
      const double log_total = SafeLog(total);
      for (std::size_t c = 0; c < C; ++c) {
        out[c] = SafeLog(lambda_row[c]) - log_total;
      }
    }
  }

  tables.log_phi_mean.Reset(T, C);
  tables.top_labels.resize(T);
  std::vector<LabelId> order(C);
  for (std::size_t t = 0; t < T; ++t) {
    const auto zeta_row = model.zeta.Row(t);
    const double total = Sum(zeta_row);
    const double log_total = SafeLog(total);
    for (std::size_t c = 0; c < C; ++c) {
      tables.log_phi_mean(t, c) = SafeLog(zeta_row[c]) - log_total;
    }
    std::iota(order.begin(), order.end(), 0u);
    const std::size_t top_k =
        std::min<std::size_t>(model.options().prediction_candidates_per_cluster, C);
    std::partial_sort(order.begin(), order.begin() + top_k, order.end(),
                      [&](LabelId a, LabelId b) { return zeta_row[a] > zeta_row[b]; });
    tables.top_labels[t].assign(order.begin(), order.begin() + top_k);
  }

  tables.log_size_prior.Reset(model.size_prior.rows(), model.size_prior.cols());
  for (std::size_t t = 0; t < model.size_prior.rows(); ++t) {
    for (std::size_t n = 0; n < model.size_prior.cols(); ++n) {
      tables.log_size_prior(t, n) = SafeLog(model.size_prior(t, n));
    }
  }
  return tables;
}

std::vector<double> ItemClusterLogWeights(const CpaModel& model,
                                          const PredictionTables& tables,
                                          const AnswerMatrix& answers, ItemId item) {
  const std::size_t T = model.num_clusters();
  const std::size_t M = model.num_communities();
  std::vector<double> log_weights(T);
  for (std::size_t t = 0; t < T; ++t) {
    log_weights[t] = SafeLog(model.phi(item, t));
  }
  // Clusters holding no posterior mass for this item cannot win the
  // softmax; skip their (answers × M) likelihood work.
  for (std::size_t t = 0; t < T; ++t) {
    if (model.phi(item, t) < kClusterPrune) log_weights[t] = kNegInf;
  }
  std::vector<double> member_terms(M);
  for (std::size_t index : answers.AnswersOfItem(item)) {
    const Answer& a = answers.answer(index);
    const auto kappa_row = model.kappa.Row(a.worker);
    for (std::size_t t = 0; t < T; ++t) {
      if (!std::isfinite(log_weights[t])) continue;
      // ln Σ_m κ_um Π_c ψ̂_tmc  (log-sum-exp over communities).
      for (std::size_t m = 0; m < M; ++m) {
        if (kappa_row[m] <= 0.0) {
          member_terms[m] = kNegInf;
          continue;
        }
        const auto psi_row = tables.log_psi_mean[t].Row(m);
        double loglik = std::log(kappa_row[m]);
        for (LabelId c : a.labels) loglik += psi_row[c];
        member_terms[m] = loglik;
      }
      log_weights[t] += LogSumExp(member_terms);
    }
  }
  return log_weights;
}

std::vector<LabelId> CollectCandidates(const PredictionTables& tables,
                                       const AnswerMatrix& answers, ItemId item,
                                       std::span<const double> cluster_log_weights) {
  std::vector<LabelId> candidates;
  for (std::size_t index : answers.AnswersOfItem(item)) {
    const Answer& a = answers.answer(index);
    candidates.insert(candidates.end(), a.labels.begin(), a.labels.end());
  }
  // Top labels of the three most likely clusters: the co-occurrence
  // completion channel (R3).
  std::vector<std::size_t> order(cluster_log_weights.size());
  std::iota(order.begin(), order.end(), 0u);
  const std::size_t top_clusters = std::min<std::size_t>(3, order.size());
  std::partial_sort(order.begin(), order.begin() + top_clusters, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return cluster_log_weights[a] > cluster_log_weights[b];
                    });
  for (std::size_t j = 0; j < top_clusters; ++j) {
    if (!std::isfinite(cluster_log_weights[order[j]])) continue;
    const auto& top = tables.top_labels[order[j]];
    candidates.insert(candidates.end(), top.begin(), top.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

LabelSet GreedyInstantiate(const PredictionTables& tables,
                           std::span<const double> cluster_log_weights,
                           const std::vector<LabelId>& candidates) {
  const ActiveClusters active = Normalize(cluster_log_weights);
  if (active.ids.empty()) return LabelSet();

  // acc_j = log_weight_j + Σ_{c∈y} log φ̂_{t_j, c}.
  std::vector<double> acc = active.log_weights;
  LabelSet selected;
  std::vector<bool> used(candidates.size(), false);
  double current = SetScore(tables, active, acc, 0);

  for (;;) {
    double best_score = current;
    std::size_t best_index = candidates.size();
    const std::size_t next_size = selected.size() + 1;
    if (next_size >= tables.log_size_prior.cols()) break;
    std::vector<double> trial(acc.size());
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (used[j]) continue;
      for (std::size_t k = 0; k < active.ids.size(); ++k) {
        trial[k] = acc[k] + tables.log_phi_mean(active.ids[k], candidates[j]);
      }
      const double score = SetScore(tables, active, trial, next_size);
      if (score > best_score + 1e-12) {
        best_score = score;
        best_index = j;
      }
    }
    if (best_index == candidates.size()) break;
    used[best_index] = true;
    selected.Add(candidates[best_index]);
    for (std::size_t k = 0; k < active.ids.size(); ++k) {
      acc[k] += tables.log_phi_mean(active.ids[k], candidates[best_index]);
    }
    current = best_score;
  }
  return selected;
}

LabelSet ExhaustiveInstantiate(const PredictionTables& tables,
                               std::span<const double> cluster_log_weights,
                               const std::vector<LabelId>& candidates,
                               std::size_t max_size) {
  const ActiveClusters active = Normalize(cluster_log_weights);
  if (active.ids.empty()) return LabelSet();
  max_size = std::min(max_size, tables.log_size_prior.cols() - 1);

  std::vector<double> acc = active.log_weights;
  std::vector<LabelId> current;
  std::vector<LabelId> best_set;
  double best_score = SetScore(tables, active, acc, 0);

  // Depth-first enumeration of subsets in index order; `acc` carries the
  // per-cluster partial log-products.
  const std::function<void(std::size_t)> recurse = [&](std::size_t start) {
    if (current.size() >= max_size) return;
    for (std::size_t j = start; j < candidates.size(); ++j) {
      for (std::size_t k = 0; k < active.ids.size(); ++k) {
        acc[k] += tables.log_phi_mean(active.ids[k], candidates[j]);
      }
      current.push_back(candidates[j]);
      const double score = SetScore(tables, active, acc, current.size());
      if (score > best_score + 1e-12) {
        best_score = score;
        best_set = current;
      }
      recurse(j + 1);
      current.pop_back();
      for (std::size_t k = 0; k < active.ids.size(); ++k) {
        acc[k] -= tables.log_phi_mean(active.ids[k], candidates[j]);
      }
    }
  };
  recurse(0);
  return LabelSet::FromUnsorted(std::move(best_set));
}

}  // namespace internal

Result<CpaPrediction> PredictLabels(const CpaModel& model, const AnswerMatrix& answers,
                                    Executor* pool) {
  if (answers.num_items() != model.num_items() ||
      answers.num_workers() != model.num_workers()) {
    return Status::InvalidArgument("answer matrix does not match model dimensions");
  }
  const internal::PredictionTables tables = internal::BuildPredictionTables(model);
  const std::size_t num_items = model.num_items();
  const std::size_t T = model.num_clusters();

  CpaPrediction prediction;
  prediction.labels.resize(num_items);
  prediction.scores.Reset(num_items, model.num_labels());

  ParallelFor(
      pool, num_items,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const ItemId item = static_cast<ItemId>(i);
          if (answers.AnswersOfItem(item).empty()) continue;  // stays empty
          std::vector<double> log_weights =
              internal::ItemClusterLogWeights(model, tables, answers, item);

          // Marginal scores from the mixed Bernoulli profile.
          std::vector<double> weights = log_weights;
          SoftmaxInPlace(weights);
          auto score_row = prediction.scores.Row(i);
          for (std::size_t t = 0; t < T; ++t) {
            if (weights[t] <= 0.0) continue;
            const auto profile_row = model.bernoulli_profile.Row(t);
            for (std::size_t c = 0; c < model.num_labels(); ++c) {
              score_row[c] += weights[t] * profile_row[c];
            }
          }

          if (model.options().prediction_mode == PredictionMode::kBernoulliProfile) {
            prediction.labels[i] = LabelSet::FromIndicator(score_row, 0.5);
            continue;
          }
          if (model.options().exhaustive_prediction) {
            // The paper's 2^C enumeration: over the full label universe
            // when small, bounded by the size-prior support.
            std::vector<LabelId> candidates;
            if (model.num_labels() <= 25) {
              candidates.resize(model.num_labels());
              std::iota(candidates.begin(), candidates.end(), 0u);
            } else {
              candidates =
                  internal::CollectCandidates(tables, answers, item, log_weights);
            }
            prediction.labels[i] = internal::ExhaustiveInstantiate(
                tables, log_weights, candidates, tables.log_size_prior.cols() - 1);
            continue;
          }
          const std::vector<LabelId> candidates =
              internal::CollectCandidates(tables, answers, item, log_weights);
          prediction.labels[i] =
              internal::GreedyInstantiate(tables, log_weights, candidates);
        }
      },
      /*min_shard=*/4);
  return prediction;
}

}  // namespace cpa
