#include "core/prediction.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "util/logging.h"
#include "util/special_functions.h"
#include "util/stopwatch.h"

namespace cpa {
namespace internal {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double SafeLog(double x) { return x > 0.0 ? std::log(x) : kNegInf; }

/// Fills the active prefix of `scratch` with the (cluster, normalised
/// log-weight) pairs surviving the prune threshold.
void NormalizeActive(std::span<const double> cluster_log_weights,
                     PredictionScratch& scratch) {
  const double log_norm = LogSumExp(cluster_log_weights);
  scratch.active_count = 0;
  for (std::size_t t = 0; t < cluster_log_weights.size(); ++t) {
    const double log_weight = cluster_log_weights[t] - log_norm;
    if (std::exp(log_weight) >= kClusterPrune) {
      scratch.active_ids[scratch.active_count] = t;
      scratch.active_log_weights[scratch.active_count] = log_weight;
      ++scratch.active_count;
    }
  }
}

/// log Σ_t exp(acc_t + log_size_prior_t(n)) + ln(n!), over the active
/// prefix of `scratch` (terms buffer reused across calls).
double SetScore(const PredictionTables& tables, PredictionScratch& scratch,
                std::span<const double> acc, std::size_t n) {
  if (n >= tables.log_size_prior.cols()) return kNegInf;
  double best = kNegInf;
  for (std::size_t j = 0; j < scratch.active_count; ++j) {
    scratch.terms[j] = acc[j] + tables.log_size_prior(scratch.active_ids[j], n);
    best = std::max(best, scratch.terms[j]);
  }
  if (!std::isfinite(best)) return kNegInf;
  double sum = 0.0;
  for (std::size_t j = 0; j < scratch.active_count; ++j) {
    sum += std::exp(scratch.terms[j] - best);
  }
  return best + std::log(sum) + LogGamma(static_cast<double>(n) + 1.0);
}

}  // namespace

PredictionScratch::PredictionScratch(std::size_t num_clusters,
                                     std::size_t num_communities)
    : owned_doubles_(6 * num_clusters + num_communities, 0.0),
      owned_ids_(num_clusters, 0) {
  double* base = owned_doubles_.data();
  log_weights = {base, num_clusters};
  weights = {base + num_clusters, num_clusters};
  active_log_weights = {base + 2 * num_clusters, num_clusters};
  acc = {base + 3 * num_clusters, num_clusters};
  trial = {base + 4 * num_clusters, num_clusters};
  terms = {base + 5 * num_clusters, num_clusters};
  member_terms = {base + 6 * num_clusters, num_communities};
  active_ids = {owned_ids_.data(), num_clusters};
}

PredictionScratch::PredictionScratch(ScratchArena& arena, std::size_t num_clusters,
                                     std::size_t num_communities) {
  log_weights = arena.AllocZeroed<double>(num_clusters);
  weights = arena.AllocZeroed<double>(num_clusters);
  active_log_weights = arena.AllocZeroed<double>(num_clusters);
  acc = arena.AllocZeroed<double>(num_clusters);
  trial = arena.AllocZeroed<double>(num_clusters);
  terms = arena.AllocZeroed<double>(num_clusters);
  member_terms = arena.AllocZeroed<double>(num_communities);
  active_ids = arena.AllocZeroed<std::size_t>(num_clusters);
}

PredictionTables BuildPredictionTables(const CpaModel& model) {
  PredictionTables tables;
  const std::size_t T = model.num_clusters();
  const std::size_t M = model.num_communities();
  const std::size_t C = model.num_labels();

  tables.log_psi_mean.assign(T, Matrix(M, C));
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t m = 0; m < M; ++m) {
      const auto lambda_row = model.lambda[t].Row(m);
      const double total = Sum(lambda_row);
      auto out = tables.log_psi_mean[t].Row(m);
      const double log_total = SafeLog(total);
      for (std::size_t c = 0; c < C; ++c) {
        out[c] = SafeLog(lambda_row[c]) - log_total;
      }
    }
  }

  tables.log_phi_mean.Reset(T, C);
  tables.top_labels.resize(T);
  std::vector<LabelId> order(C);
  for (std::size_t t = 0; t < T; ++t) {
    const auto zeta_row = model.zeta.Row(t);
    const double total = Sum(zeta_row);
    const double log_total = SafeLog(total);
    for (std::size_t c = 0; c < C; ++c) {
      tables.log_phi_mean(t, c) = SafeLog(zeta_row[c]) - log_total;
    }
    std::iota(order.begin(), order.end(), 0u);
    const std::size_t top_k =
        std::min<std::size_t>(model.options().prediction_candidates_per_cluster, C);
    std::partial_sort(order.begin(), order.begin() + top_k, order.end(),
                      [&](LabelId a, LabelId b) { return zeta_row[a] > zeta_row[b]; });
    tables.top_labels[t].assign(order.begin(), order.begin() + top_k);
  }

  tables.log_size_prior.Reset(model.size_prior.rows(), model.size_prior.cols());
  for (std::size_t t = 0; t < model.size_prior.rows(); ++t) {
    for (std::size_t n = 0; n < model.size_prior.cols(); ++n) {
      tables.log_size_prior(t, n) = SafeLog(model.size_prior(t, n));
    }
  }
  return tables;
}

void ItemClusterLogWeights(const CpaModel& model, const PredictionTables& tables,
                           const AnswerMatrix& answers, ItemId item,
                           const sweep::ClusterActivity* activity,
                           PredictionScratch& scratch) {
  const std::size_t T = model.num_clusters();
  const std::size_t M = model.num_communities();
  auto log_weights = scratch.log_weights;
  // Clusters holding no posterior mass for this item cannot win the
  // softmax; their (answers × M) likelihood work is skipped. With an
  // activity list the live set is read directly; the fallback scans ϕ —
  // both produce the same prefix of finite entries, so the paths are
  // bit-identical.
  scratch.active_count = 0;
  if (activity != nullptr) {
    std::fill(log_weights.begin(), log_weights.end(), kNegInf);
    const auto active = activity->ClustersOf(item);
    const auto weights = activity->WeightsOf(item);
    for (std::size_t k = 0; k < active.size(); ++k) {
      log_weights[active[k]] = SafeLog(weights[k]);
      scratch.active_ids[scratch.active_count++] = active[k];
    }
  } else {
    for (std::size_t t = 0; t < T; ++t) {
      if (model.phi(item, t) < kClusterPrune) {
        log_weights[t] = kNegInf;
        continue;
      }
      log_weights[t] = SafeLog(model.phi(item, t));
      scratch.active_ids[scratch.active_count++] = t;
    }
  }
  auto member_terms = scratch.member_terms;
  for (std::size_t index : answers.AnswersOfItem(item)) {
    const Answer& a = answers.answer(index);
    const auto kappa_row = model.kappa.Row(a.worker);
    for (std::size_t k = 0; k < scratch.active_count; ++k) {
      const std::size_t t = scratch.active_ids[k];
      // ln Σ_m κ_um Π_c ψ̂_tmc  (log-sum-exp over communities).
      for (std::size_t m = 0; m < M; ++m) {
        if (kappa_row[m] <= 0.0) {
          member_terms[m] = kNegInf;
          continue;
        }
        const auto psi_row = tables.log_psi_mean[t].Row(m);
        double loglik = std::log(kappa_row[m]);
        for (LabelId c : a.labels) loglik += psi_row[c];
        member_terms[m] = loglik;
      }
      log_weights[t] += LogSumExp(member_terms);
    }
  }
}

std::vector<double> ItemClusterLogWeights(const CpaModel& model,
                                          const PredictionTables& tables,
                                          const AnswerMatrix& answers, ItemId item) {
  PredictionScratch scratch(model.num_clusters(), model.num_communities());
  ItemClusterLogWeights(model, tables, answers, item, /*activity=*/nullptr, scratch);
  return {scratch.log_weights.begin(), scratch.log_weights.end()};
}

void CollectCandidates(const PredictionTables& tables, const AnswerMatrix& answers,
                       ItemId item, std::span<const double> cluster_log_weights,
                       PredictionScratch& scratch) {
  auto& candidates = scratch.candidates;
  candidates.clear();
  for (std::size_t index : answers.AnswersOfItem(item)) {
    const Answer& a = answers.answer(index);
    candidates.insert(candidates.end(), a.labels.begin(), a.labels.end());
  }
  // Top labels of the three most likely clusters: the co-occurrence
  // completion channel (R3).
  auto& order = scratch.cluster_order;
  order.resize(cluster_log_weights.size());
  std::iota(order.begin(), order.end(), 0u);
  const std::size_t top_clusters = std::min<std::size_t>(3, order.size());
  std::partial_sort(order.begin(), order.begin() + top_clusters, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return cluster_log_weights[a] > cluster_log_weights[b];
                    });
  for (std::size_t j = 0; j < top_clusters; ++j) {
    if (!std::isfinite(cluster_log_weights[order[j]])) continue;
    const auto& top = tables.top_labels[order[j]];
    candidates.insert(candidates.end(), top.begin(), top.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
}

std::vector<LabelId> CollectCandidates(const PredictionTables& tables,
                                       const AnswerMatrix& answers, ItemId item,
                                       std::span<const double> cluster_log_weights) {
  PredictionScratch scratch(cluster_log_weights.size(), 0);
  CollectCandidates(tables, answers, item, cluster_log_weights, scratch);
  return scratch.candidates;
}

LabelSet GreedyInstantiate(const PredictionTables& tables,
                           std::span<const double> cluster_log_weights,
                           std::span<const LabelId> candidates,
                           PredictionScratch& scratch) {
  NormalizeActive(cluster_log_weights, scratch);
  if (scratch.active_count == 0) return LabelSet();

  // acc_j = log_weight_j + Σ_{c∈y} log φ̂_{t_j, c}.
  auto acc = scratch.acc.first(scratch.active_count);
  std::copy_n(scratch.active_log_weights.begin(), scratch.active_count, acc.begin());
  LabelSet selected;
  scratch.used.assign(candidates.size(), 0);
  double current = SetScore(tables, scratch, acc, 0);

  auto trial = scratch.trial.first(scratch.active_count);
  for (;;) {
    double best_score = current;
    std::size_t best_index = candidates.size();
    const std::size_t next_size = selected.size() + 1;
    if (next_size >= tables.log_size_prior.cols()) break;
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (scratch.used[j]) continue;
      for (std::size_t k = 0; k < scratch.active_count; ++k) {
        trial[k] =
            acc[k] + tables.log_phi_mean(scratch.active_ids[k], candidates[j]);
      }
      const double score = SetScore(tables, scratch, trial, next_size);
      if (score > best_score + 1e-12) {
        best_score = score;
        best_index = j;
      }
    }
    if (best_index == candidates.size()) break;
    scratch.used[best_index] = 1;
    selected.Add(candidates[best_index]);
    for (std::size_t k = 0; k < scratch.active_count; ++k) {
      acc[k] += tables.log_phi_mean(scratch.active_ids[k], candidates[best_index]);
    }
    current = best_score;
  }
  return selected;
}

LabelSet GreedyInstantiate(const PredictionTables& tables,
                           std::span<const double> cluster_log_weights,
                           const std::vector<LabelId>& candidates) {
  PredictionScratch scratch(cluster_log_weights.size(), 0);
  return GreedyInstantiate(tables, cluster_log_weights, candidates, scratch);
}

LabelSet ExhaustiveInstantiate(const PredictionTables& tables,
                               std::span<const double> cluster_log_weights,
                               std::span<const LabelId> candidates,
                               std::size_t max_size, PredictionScratch& scratch) {
  NormalizeActive(cluster_log_weights, scratch);
  if (scratch.active_count == 0) return LabelSet();
  max_size = std::min(max_size, tables.log_size_prior.cols() - 1);

  auto acc = scratch.acc.first(scratch.active_count);
  std::copy_n(scratch.active_log_weights.begin(), scratch.active_count, acc.begin());
  auto& current = scratch.subset;
  auto& best_set = scratch.best_subset;
  current.clear();
  best_set.clear();
  double best_score = SetScore(tables, scratch, acc, 0);

  // Depth-first enumeration of subsets in index order; `acc` carries the
  // per-cluster partial log-products.
  const std::function<void(std::size_t)> recurse = [&](std::size_t start) {
    if (current.size() >= max_size) return;
    for (std::size_t j = start; j < candidates.size(); ++j) {
      for (std::size_t k = 0; k < scratch.active_count; ++k) {
        acc[k] += tables.log_phi_mean(scratch.active_ids[k], candidates[j]);
      }
      current.push_back(candidates[j]);
      const double score = SetScore(tables, scratch, acc, current.size());
      if (score > best_score + 1e-12) {
        best_score = score;
        best_set = current;
      }
      recurse(j + 1);
      current.pop_back();
      for (std::size_t k = 0; k < scratch.active_count; ++k) {
        acc[k] -= tables.log_phi_mean(scratch.active_ids[k], candidates[j]);
      }
    }
  };
  recurse(0);
  return LabelSet::FromUnsorted(std::vector<LabelId>(best_set));
}

LabelSet ExhaustiveInstantiate(const PredictionTables& tables,
                               std::span<const double> cluster_log_weights,
                               const std::vector<LabelId>& candidates,
                               std::size_t max_size) {
  PredictionScratch scratch(cluster_log_weights.size(), 0);
  return ExhaustiveInstantiate(tables, cluster_log_weights, candidates, max_size,
                               scratch);
}

namespace {

/// Predicts one item into `prediction` using shard-owned scratch. The
/// straight-line port of the pre-arena per-item body; every buffer write
/// fully overwrites its prefix, so shard boundaries cannot leak state.
void PredictOneItem(const CpaModel& model, const PredictionTables& tables,
                    const AnswerMatrix& answers,
                    const sweep::ClusterActivity& activity, std::size_t i,
                    PredictionScratch& scratch, CpaPrediction& prediction) {
  const ItemId item = static_cast<ItemId>(i);
  if (answers.AnswersOfItem(item).empty()) return;  // stays empty
  ItemClusterLogWeights(model, tables, answers, item, &activity, scratch);
  const std::span<const double> log_weights = scratch.log_weights;

  // Marginal scores from the mixed Bernoulli profile. Only the item's
  // active clusters can carry softmax mass, so the T-wide scan reduces to
  // the activity list (ascending ids — the same accumulation order).
  std::copy(log_weights.begin(), log_weights.end(), scratch.weights.begin());
  // The shared dispatched softmax (core/sweep/simd.h), same entry point the
  // sweep kernels use — no per-caller copy of the loop.
  SoftmaxInPlace(scratch.weights);
  auto score_row = prediction.scores.Row(i);
  for (std::size_t k = 0; k < scratch.active_count; ++k) {
    const std::size_t t = scratch.active_ids[k];
    const double weight = scratch.weights[t];
    if (weight <= 0.0) continue;
    const auto profile_row = model.bernoulli_profile.Row(t);
    for (std::size_t c = 0; c < model.num_labels(); ++c) {
      score_row[c] += weight * profile_row[c];
    }
  }

  if (model.options().prediction_mode == PredictionMode::kBernoulliProfile) {
    prediction.labels[i] = LabelSet::FromIndicator(score_row, 0.5);
    return;
  }
  if (model.options().exhaustive_prediction) {
    // The paper's 2^C enumeration: over the full label universe when
    // small, bounded by the size-prior support.
    if (model.num_labels() <= 25) {
      scratch.candidates.resize(model.num_labels());
      std::iota(scratch.candidates.begin(), scratch.candidates.end(), 0u);
    } else {
      CollectCandidates(tables, answers, item, log_weights, scratch);
    }
    prediction.labels[i] =
        ExhaustiveInstantiate(tables, log_weights, scratch.candidates,
                              tables.log_size_prior.cols() - 1, scratch);
    return;
  }
  CollectCandidates(tables, answers, item, log_weights, scratch);
  prediction.labels[i] =
      GreedyInstantiate(tables, log_weights, scratch.candidates, scratch);
}

}  // namespace
}  // namespace internal

Result<CpaPrediction> PredictLabels(const CpaModel& model, const AnswerMatrix& answers,
                                    const SweepScheduler& scheduler) {
  if (answers.num_items() != model.num_items() ||
      answers.num_workers() != model.num_workers()) {
    return Status::InvalidArgument("answer matrix does not match model dimensions");
  }
  const internal::PredictionTables tables = internal::BuildPredictionTables(model);
  const std::size_t num_items = model.num_items();

  // The per-item live-cluster lists at the prediction prune threshold —
  // shared read-only by every shard.
  sweep::ClusterActivity activity;
  sweep::BuildClusterActivity(model.phi, scheduler, activity,
                              internal::kClusterPrune);

  CpaPrediction prediction;
  prediction.labels.resize(num_items);
  prediction.scores.Reset(num_items, model.num_labels());

  scheduler.ParallelMap(
      num_items,
      [&](ScratchArena& arena, std::size_t begin, std::size_t end) {
        internal::PredictionScratch scratch(arena, model.num_clusters(),
                                            model.num_communities());
        for (std::size_t i = begin; i < end; ++i) {
          internal::PredictOneItem(model, tables, answers, activity, i, scratch,
                                   prediction);
        }
      },
      /*min_shard=*/4);
  return prediction;
}

Result<CpaPrediction> PredictLabels(const CpaModel& model, const AnswerMatrix& answers,
                                    Executor* pool) {
  const SweepScheduler scheduler(pool);
  return PredictLabels(model, answers, scheduler);
}

}  // namespace cpa
