#ifndef CPA_CORE_CPA_OPTIONS_H_
#define CPA_CORE_CPA_OPTIONS_H_

/// \file cpa_options.h
/// \brief Configuration of the CPA model, its inference and its prediction.

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace cpa {

/// \brief How the cluster label profiles φ obtain evidence when the true
/// labels `y` are not observed (all of the paper's experiments run with
/// `y = ∅`; see DESIGN.md §4.2 for why the paper's literal Eq. 7 is
/// insufficient then).
enum class LabelEvidence {
  /// Paper-literal: only observed true labels update ζ. With y = ∅ the
  /// profiles stay at their prior (provided for ablation).
  kObservedOnly,

  /// Each item contributes its mean answer indicator (the Appendix-B
  /// reading, where E[ln p(y|φ)] is computed from the answers).
  kAnswerFrequency,

  /// Like kAnswerFrequency, but each answer is weighted by its worker's
  /// community reliability — a community's reliability being the agreement
  /// of its confusion vectors ψ with the cluster profiles φ across
  /// clusters. This mutual-reinforcement loop suppresses spammer influence
  /// on the profiles. Default.
  kReliabilityWeighted,

  /// Feeds the greedy MAP prediction of each sweep back as hard pseudo
  /// truth (bootstrap sweep uses answer frequency).
  kSelfTraining,
};

/// \brief How label sets are instantiated from the posterior (§3.4).
enum class PredictionMode {
  /// Greedy MAP under the multinomial profile with a per-cluster
  /// label-set-size prior. Provided as the paper-literal design; even with
  /// the size prior the multinomial mass of an n-label set decays like
  /// n!/n^n ≈ e^{−n}, so this mode systematically under-predicts large
  /// sets (see DESIGN.md §4.3 and the ablation bench).
  kMultinomialSizePrior,

  /// Per-cluster Bernoulli label profiles mixed by the answer-reweighted
  /// cluster posterior; the MAP is exactly the characteristic label set of
  /// the item's clusters, with no size degeneracy. Default.
  kBernoulliProfile,
};

/// \brief All knobs of the CPA model.
struct CpaOptions {
  /// Options sized for a concrete dataset: the cluster truncation tracks
  /// the item count (clusters gather items with near-identical label sets,
  /// so T must be able to hold roughly one cluster per distinct consensus
  /// set — the paper sets its truncation as high as 1000), capped so the
  /// confusion bank λ (T·M·C doubles, twice with its expectation cache)
  /// stays within a memory budget.
  static CpaOptions Recommended(std::size_t num_items, std::size_t num_labels);
  /// Truncation of the worker-community stick-breaking process (M). "Can
  /// safely be set to large values" (§3.2) — the CRP prior deactivates
  /// unneeded components.
  std::size_t max_communities = 16;

  /// Truncation of the item-cluster stick-breaking process (T). Clusters
  /// gather items with (near-)identical label sets, so T must be large
  /// enough to hold one cluster per frequent distinct label set — much
  /// larger than any "topic count" intuition suggests (the paper sets the
  /// truncation as high as 1000).
  std::size_t max_clusters = 64;

  /// CRP concentration for worker communities (α) and item clusters (ε).
  double alpha = 1.0;
  double epsilon = 1.0;

  /// Symmetric Dirichlet priors for the confusion vectors ψ (λ₀) and the
  /// cluster label profiles φ (ζ₀).
  double lambda0 = 0.1;
  double zeta0 = 0.1;

  /// Beta prior of the per-cluster per-label Bernoulli channel:
  /// θ_tc ~ Beta(mean·strength, (1−mean)·strength). The prior mean MUST
  /// match the label sparsity of the data — with C labels and ~k-label
  /// items, a fresh cluster under a mean-0.3 prior would "assert" every
  /// label at 0.3 and pay ≈ 0.36·C nats of base evidence versus populated
  /// clusters, starving small clusters at scale. 0 (default) calibrates
  /// the mean to (mean answer size)/C from the data.
  double theta_prior_mean = 0.0;
  double theta_prior_strength = 1.0;

  /// Offline VI stopping rule: iterate until the largest responsibility
  /// change falls below `tolerance` (the paper converges at 1e-3) or
  /// `max_iterations` sweeps.
  std::size_t max_iterations = 50;
  double tolerance = 1e-3;

  /// Unsupervised label-evidence strategy (DESIGN.md §4.2).
  LabelEvidence label_evidence = LabelEvidence::kReliabilityWeighted;

  /// Label-set instantiation mode (§3.4).
  PredictionMode prediction_mode = PredictionMode::kBernoulliProfile;

  /// Per item, prediction considers the labels present in the item's
  /// answers plus this many top-profile labels from each likely cluster
  /// (cluster-completion candidates; exploits R3 without scanning all C).
  std::size_t prediction_candidates_per_cluster = 10;

  /// Floor for worker reliability weights in kReliabilityWeighted.
  double reliability_floor = 0.05;

  /// kReliabilityWeighted details: a worker's reliability is its mean
  /// soft-Jaccard agreement with the current consensus, shrunk toward its
  /// community's (answer-weighted) mean agreement with strength
  /// `reliability_shrinkage` pseudo-answers — the community pooling that
  /// keeps estimates stable for workers with few answers (R1, Fig 3) —
  /// and raised to `reliability_sharpness` to widen the honest/spammer
  /// gap.
  double reliability_shrinkage = 10.0;
  double reliability_sharpness = 2.0;

  /// Weight of the label-evidence term in the item-cluster update. The
  /// consensus pseudo-observation ỹ competes against n_i answer
  /// observations; 0 (default) scales it by the item's answer count so the
  /// two forces stay commensurate, any positive value is used verbatim
  /// (1.0 reproduces the paper-literal single-observation weight).
  double evidence_scale = 0.0;

  /// During the first sweeps the consensus evidence sharpens quickly as
  /// worker reliability is learned; the cluster seeding is therefore
  /// re-derived from the refreshed consensus for this many sweeps before
  /// the soft coordinate updates take over (a seeding built only from the
  /// bootstrap consensus fragments at scale — raw label frequencies
  /// straddle the majority threshold).
  std::size_t reseed_sweeps = 3;

  /// Include the answer-likelihood term Σ_u Σ_m κ_um E[ln p(x_iu|ψ_tm)] in
  /// the item-cluster update. The paper's Eq. 3 omits it (evidence-only
  /// clustering; default false). Restoring it makes the sweep exact
  /// mean-field coordinate ascent on the ELBO — but E[ln ψ] carries a
  /// Jensen penalty proportional to bank sparsity, so data-rich clusters
  /// are systematically favoured and small clusters starve at scale
  /// (DESIGN.md §4.1).
  bool phi_answer_term = false;

  /// Seed for the randomised initialisation of responsibilities.
  std::uint64_t seed = 42;

  /// Variant switches (§5.4): singleton communities ("No Z") fixes each
  /// worker to its own community; singleton clusters ("No L") fixes each
  /// item to its own cluster and uses bounded-exhaustive prediction.
  bool singleton_communities = false;
  bool singleton_clusters = false;

  /// Replace the greedy label-set search by bounded-exhaustive subset
  /// enumeration (the paper's 2^C instantiation; used by the No L variant
  /// and as a greedy oracle in tests). Only feasible for small label
  /// universes.
  bool exhaustive_prediction = false;

  /// Memory guard for the No L variant (λ then has I·M·C entries; the
  /// paper found No L "intractable for all except the movie dataset").
  std::size_t no_l_parameter_limit = 50'000'000;

  Status Validate() const;
};

}  // namespace cpa

#endif  // CPA_CORE_CPA_OPTIONS_H_
