#ifndef CPA_CORE_CPA_H_
#define CPA_CORE_CPA_H_

/// \file cpa.h
/// \brief Umbrella header and the `Aggregator` adapter for the CPA model.
///
/// The primary entry point for running CPA (or any other method) is the
/// engine layer: open a streaming session via `EngineRegistry::Global()`
/// (engine/engine_registry.h) and drive it with
/// `Observe → Snapshot → Finalize`. The `CpaAggregator` below is the
/// one-shot convenience wrapper — a thin engine client that opens a
/// "CPA" session, feeds it all answers as one batch, and finalizes:
/// ```cpp
///   cpa::CpaAggregator cpa;                       // default options
///   auto result = cpa.Aggregate(answers, C);      // fit + predict
///   const cpa::CpaModel& posterior = *cpa.model();  // diagnostics
/// ```
/// Lower-level entry points: `SolveCpaOffline` (below) for one fit +
/// instantiation, `FitCpa` (vi.h) for offline inference, `CpaOnline`
/// (svi.h) for incremental learning, `PredictLabels` (prediction.h) for
/// instantiation, `ComputeElbo` (elbo.h).

#include "baselines/aggregator.h"
#include "core/cpa_model.h"
#include "core/cpa_options.h"
#include "core/elbo.h"
#include "core/prediction.h"
#include "core/svi.h"
#include "core/vi.h"

namespace cpa {

/// \brief Model variants of the ablation study (§5.4, Fig 8).
enum class CpaVariant {
  kFull,  ///< the CPA model
  kNoZ,   ///< singleton worker communities (community structure removed)
  kNoL,   ///< singleton item clusters + exhaustive instantiation
};

/// Stable display name ("CPA", "CPA-NoZ", "CPA-NoL").
std::string_view CpaVariantName(CpaVariant variant);

/// Largest label universe the No L variant accepts — its instantiation
/// enumerates label subsets, which the paper reports tractable only for
/// the movie dataset (C = 22).
inline constexpr std::size_t kNoLExhaustiveLabelLimit = 25;

/// \brief Outcome of one offline CPA solve: the fitted posterior, the fit
/// diagnostics, and the instantiated prediction.
struct CpaSolution {
  CpaModel model;
  FitStats stats;
  std::vector<LabelSet> predictions;
  Matrix label_scores;
};

/// \brief Offline fit + prediction for the given variant — the refit
/// kernel behind the engine layer's CPA sessions and `CpaAggregator`.
/// Applies the variant switches (singleton communities/clusters, the No L
/// exhaustive-instantiation guard, the No Z parameter-budget clamp) to
/// `options` before fitting.
Result<CpaSolution> SolveCpaOffline(const AnswerMatrix& answers,
                                    std::size_t num_labels, const CpaOptions& options,
                                    CpaVariant variant = CpaVariant::kFull,
                                    Executor* pool = nullptr);

/// \brief `Aggregator` adapter: offline fit + prediction in one call (a
/// thin client of the engine layer's CPA offline session).
class CpaAggregator : public Aggregator {
 public:
  explicit CpaAggregator(CpaOptions options = {}, CpaVariant variant = CpaVariant::kFull,
                         Executor* pool = nullptr);

  std::string_view name() const override { return CpaVariantName(variant_); }

  Result<AggregationResult> Aggregate(const AnswerMatrix& answers,
                                      std::size_t num_labels) override;

  /// The posterior of the last successful `Aggregate` call (nullptr before).
  const CpaModel* model() const { return fitted_ ? &model_ : nullptr; }

  /// Inference diagnostics of the last successful `Aggregate` call.
  const FitStats& fit_stats() const { return stats_; }

 private:
  CpaOptions options_;
  CpaVariant variant_;
  Executor* pool_;
  CpaModel model_;
  FitStats stats_;
  bool fitted_ = false;
};

}  // namespace cpa

#endif  // CPA_CORE_CPA_H_
