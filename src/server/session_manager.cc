#include "server/session_manager.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <utility>

#include "engine/checkpoint.h"
#include "engine/engine_registry.h"
#include "util/json.h"
#include "util/string_utils.h"

namespace cpa {

namespace {

/// "CPAS" little-endian: session checkpoint blobs start with this magic
/// (the engine blob nested inside carries its own "CPAK" magic).
constexpr std::uint32_t kSessionCheckpointMagic = 0x53415043u;
constexpr std::uint16_t kSessionCheckpointVersion = 1;

}  // namespace

/// \brief One live session. `mutex` serialises the engine calls (and the
/// stream-matrix appends feeding them); the poll state is a handful of
/// atomics — `Snapshot(refresh=false)` and `List` never wait on `mutex`.
struct SessionManager::Session {
  std::mutex mutex;
  EngineConfig config;  ///< effective config (lane-bound, no owned pool)
  AnswerMatrix stream;
  std::unique_ptr<ServerScheduler::Lane> lane;  ///< destroyed after engine
  std::unique_ptr<ConsensusEngine> engine;

  /// Set (under `mutex`) when `ExpireIdle` removes the session. A caller
  /// that looked the session up before the expiry but acquires `mutex`
  /// after it sees the flag and reports NotFound instead of feeding
  /// answers to a session that no longer exists.
  bool closed = false;

  /// The published snapshot: written under `mutex` on refresh/finalize,
  /// read lock-free by polls. The pointee is immutable, so handing the
  /// same shared body to any number of pollers is safe and copy-free.
  std::atomic<SharedSnapshot> published;

  /// Items whose prediction changed at the last publish (the ObserveAck
  /// consensus delta); the published snapshot itself carries the counters.
  std::atomic<std::size_t> delta_changed_items{0};

  /// Exact session counters for List/acks (the published snapshot lags).
  std::atomic<std::size_t> batches_seen{0};
  std::atomic<std::size_t> answers_seen{0};
  std::atomic<bool> finalized{false};

  std::atomic<double> last_touch{0.0};  ///< NowSeconds of the last operation

  /// Publishes `snapshot` (under `mutex`) and refreshes the delta against
  /// the previously published predictions.
  void Publish(SharedSnapshot snapshot) {
    const SharedSnapshot previous = published.load(std::memory_order_acquire);
    std::size_t changed = 0;
    if (previous != nullptr && previous.get() != snapshot.get()) {
      const std::vector<LabelSet>& before = previous->predictions;
      const std::vector<LabelSet>& after = snapshot->predictions;
      const std::size_t common = std::min(before.size(), after.size());
      for (std::size_t i = 0; i < common; ++i) {
        if (!(before[i] == after[i])) ++changed;
      }
      // Items only one side covers count as changed unless empty.
      for (std::size_t i = common; i < before.size(); ++i) {
        if (!before[i].empty()) ++changed;
      }
      for (std::size_t i = common; i < after.size(); ++i) {
        if (!after[i].empty()) ++changed;
      }
      delta_changed_items.store(changed, std::memory_order_relaxed);
    }
    published.store(std::move(snapshot), std::memory_order_release);
  }

  ConsensusDelta Delta() const {
    ConsensusDelta delta;
    const SharedSnapshot snapshot = published.load(std::memory_order_acquire);
    delta.changed_items = delta_changed_items.load(std::memory_order_relaxed);
    if (snapshot != nullptr) {
      delta.snapshot_batches_seen = snapshot->batches_seen;
      delta.snapshot_answers_seen = snapshot->answers_seen;
    }
    return delta;
  }
};

SessionManager::SessionManager(const SessionManagerOptions& options)
    : options_(options),
      scheduler_(options.num_threads > 1
                     ? std::make_unique<ServerScheduler>(options.num_threads)
                     : nullptr),
      epoch_(std::chrono::steady_clock::now()) {}

SessionManager::~SessionManager() = default;

double SessionManager::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::shared_ptr<SessionManager::Session> SessionManager::Find(
    std::string_view session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

Result<std::string> SessionManager::Open(const EngineConfig& config,
                                         std::string session_id) {
  // Fast pre-checks so a saturated server rejects floods of opens without
  // paying engine/lane construction (both re-checked at insertion — a
  // concurrent Open may have raced us in between).
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.size() >= options_.max_sessions) {
      return Status::FailedPrecondition(
          StrFormat("session limit reached (%zu open, max_sessions=%zu)",
                    sessions_.size(), options_.max_sessions));
    }
    if (!session_id.empty() && sessions_.count(session_id) > 0) {
      return Status::InvalidArgument(
          StrFormat("session id '%s' is already open", session_id.c_str()));
    }
  }
  auto session = std::make_shared<Session>();
  session->config = config;
  // Under the manager every session runs on the shared pool (or inline):
  // session-owned pools are exactly what the server replaces.
  session->config.num_threads = 1;
  session->config.pool = nullptr;
  if (scheduler_ != nullptr) {
    session->lane = scheduler_->CreateLane();
    session->config.pool = session->lane.get();
  }
  CPA_ASSIGN_OR_RETURN(session->engine,
                       EngineRegistry::Global().Open(session->config));
  session->stream = AnswerMatrix(config.num_items, config.num_workers);
  // Seed the published snapshot so refresh=false works from the first
  // request (an empty consensus, shared — never copied — by every poll).
  CPA_ASSIGN_OR_RETURN(SharedSnapshot seeded, session->engine->Snapshot());
  session->Publish(std::move(seeded));
  session->last_touch.store(NowSeconds(), std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= options_.max_sessions) {
    return Status::FailedPrecondition(
        StrFormat("session limit reached (%zu open, max_sessions=%zu)",
                  sessions_.size(), options_.max_sessions));
  }
  if (session_id.empty()) {
    do {
      session_id = StrFormat("s%zu", next_id_++);
    } while (sessions_.count(session_id) > 0);
  } else if (sessions_.count(session_id) > 0) {
    return Status::InvalidArgument(
        StrFormat("session id '%s' is already open", session_id.c_str()));
  }
  sessions_.emplace(session_id, std::move(session));
  return session_id;
}

Result<ObserveAck> SessionManager::Observe(std::string_view session_id,
                                           std::span<const Answer> answers) {
  std::shared_ptr<Session> session = Find(session_id);
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("unknown session '%s'", std::string(session_id).c_str()));
  }
  std::lock_guard<std::mutex> lock(session->mutex);
  if (session->closed) {
    return Status::NotFound(
        StrFormat("unknown session '%s'", std::string(session_id).c_str()));
  }
  session->last_touch.store(NowSeconds(), std::memory_order_relaxed);
  if (session->engine->finalized()) {
    return Status::FailedPrecondition(
        StrFormat("session '%s' is finalized; it accepts no more answers",
                  std::string(session_id).c_str()));
  }
  // Validate the whole batch before touching the stream, so a rejected
  // request leaves the session exactly as it was.
  std::set<std::pair<ItemId, WorkerId>> cells;
  for (const Answer& answer : answers) {
    if (answer.item >= session->stream.num_items() ||
        answer.worker >= session->stream.num_workers()) {
      return Status::OutOfRange(StrFormat(
          "answer (item %u, worker %u) outside the session's %zu x %zu stream",
          answer.item, answer.worker, session->stream.num_items(),
          session->stream.num_workers()));
    }
    if (answer.labels.empty()) {
      return Status::InvalidArgument(StrFormat(
          "answer (item %u, worker %u) has an empty label set ('no answer' "
          "is absence, not the empty set)",
          answer.item, answer.worker));
    }
    // The kernels index fixed-width C arrays by label id; wire input must
    // not reach them with labels outside the session's universe.
    for (LabelId label : answer.labels) {
      if (label >= session->config.num_labels) {
        return Status::OutOfRange(StrFormat(
            "answer (item %u, worker %u) carries label %u outside the "
            "session's %zu-label universe",
            answer.item, answer.worker, label, session->config.num_labels));
      }
    }
    if (!cells.insert({answer.item, answer.worker}).second ||
        session->stream.HasAnswer(answer.item, answer.worker)) {
      return Status::InvalidArgument(
          StrFormat("duplicate answer for (item %u, worker %u)", answer.item,
                    answer.worker));
    }
  }
  std::vector<std::size_t> indices;
  indices.reserve(answers.size());
  for (const Answer& answer : answers) {
    indices.push_back(session->stream.num_answers());
    CPA_RETURN_NOT_OK(
        session->stream.Add(answer.item, answer.worker, answer.labels));
  }
  CPA_RETURN_NOT_OK(session->engine->Observe({&session->stream, indices}));
  ObserveAck ack;
  ack.batches_seen = session->engine->batches_seen();
  ack.answers_seen = session->engine->answers_seen();
  ack.delta = session->Delta();
  session->batches_seen.store(ack.batches_seen, std::memory_order_relaxed);
  session->answers_seen.store(ack.answers_seen, std::memory_order_relaxed);
  session->last_touch.store(NowSeconds(), std::memory_order_relaxed);
  return ack;
}

Result<SharedSnapshot> SessionManager::Snapshot(std::string_view session_id,
                                                bool refresh) {
  std::shared_ptr<Session> session = Find(session_id);
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("unknown session '%s'", std::string(session_id).c_str()));
  }
  session->last_touch.store(NowSeconds(), std::memory_order_relaxed);
  if (!refresh) {
    // Pure poll: one atomic snapshot load — never the engine mutex, never
    // a prediction copy; every poller shares the same immutable body.
    return session->published.load(std::memory_order_acquire);
  }
  std::lock_guard<std::mutex> lock(session->mutex);
  if (session->closed) {
    return Status::NotFound(
        StrFormat("unknown session '%s'", std::string(session_id).c_str()));
  }
  CPA_ASSIGN_OR_RETURN(SharedSnapshot snapshot, session->engine->Snapshot());
  session->Publish(snapshot);
  session->last_touch.store(NowSeconds(), std::memory_order_relaxed);
  return snapshot;
}

Result<SharedSnapshot> SessionManager::Finalize(std::string_view session_id) {
  std::shared_ptr<Session> session = Find(session_id);
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("unknown session '%s'", std::string(session_id).c_str()));
  }
  std::lock_guard<std::mutex> lock(session->mutex);
  if (session->closed) {
    return Status::NotFound(
        StrFormat("unknown session '%s'", std::string(session_id).c_str()));
  }
  session->last_touch.store(NowSeconds(), std::memory_order_relaxed);
  CPA_ASSIGN_OR_RETURN(SharedSnapshot snapshot, session->engine->Finalize());
  session->Publish(snapshot);
  session->finalized.store(true, std::memory_order_relaxed);
  session->last_touch.store(NowSeconds(), std::memory_order_relaxed);
  return snapshot;
}

Result<std::string> SessionManager::Checkpoint(std::string_view session_id) {
  std::shared_ptr<Session> session = Find(session_id);
  if (session == nullptr) {
    return Status::NotFound(
        StrFormat("unknown session '%s'", std::string(session_id).c_str()));
  }
  std::lock_guard<std::mutex> lock(session->mutex);
  if (session->closed) {
    return Status::NotFound(
        StrFormat("unknown session '%s'", std::string(session_id).c_str()));
  }
  session->last_touch.store(NowSeconds(), std::memory_order_relaxed);
  // Serialize the engine first: an engine without state hooks fails here
  // and the checkpoint reports it before any bytes are produced.
  CPA_ASSIGN_OR_RETURN(const std::string engine_state,
                       session->engine->SaveState());
  CheckpointWriter writer;
  writer.WriteU32(kSessionCheckpointMagic);
  writer.WriteU16(kSessionCheckpointVersion);
  writer.WriteString(session_id);
  writer.WriteString(session->config.ToJson().DumpCompact());
  writer.WriteU64(session->stream.num_items());
  writer.WriteU64(session->stream.num_workers());
  writer.WriteU64(session->stream.num_answers());
  for (const Answer& answer : session->stream.answers()) {
    writer.WriteU32(answer.item);
    writer.WriteU32(answer.worker);
    writer.WriteLabelSet(answer.labels);
  }
  const SharedSnapshot published =
      session->published.load(std::memory_order_acquire);
  writer.WriteBool(published != nullptr);
  if (published != nullptr) WriteConsensusSnapshot(writer, *published);
  writer.WriteU64(
      session->delta_changed_items.load(std::memory_order_relaxed));
  writer.WriteString(engine_state);
  return writer.Take();
}

Result<RestoreAck> SessionManager::Restore(std::string_view state,
                                           std::string session_id) {
  CheckpointReader reader(state);
  CPA_ASSIGN_OR_RETURN(const std::uint32_t magic, reader.ReadU32());
  if (magic != kSessionCheckpointMagic) {
    return Status::InvalidArgument("not a session checkpoint (bad magic)");
  }
  CPA_ASSIGN_OR_RETURN(const std::uint16_t version, reader.ReadU16());
  if (version != kSessionCheckpointVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported session checkpoint version %u",
                  static_cast<unsigned>(version)));
  }
  CPA_ASSIGN_OR_RETURN(const std::string saved_id, reader.ReadString());
  CPA_ASSIGN_OR_RETURN(const std::string config_json, reader.ReadString());
  CPA_ASSIGN_OR_RETURN(const JsonValue config_value,
                       JsonValue::Parse(config_json));
  CPA_ASSIGN_OR_RETURN(const EngineConfig config,
                       EngineConfig::FromJson(config_value));
  CPA_ASSIGN_OR_RETURN(const std::size_t num_items, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(const std::size_t num_workers, reader.ReadSize());
  if (num_items != config.num_items || num_workers != config.num_workers) {
    return Status::InvalidArgument(
        "checkpoint stream dims do not match its config");
  }
  CPA_ASSIGN_OR_RETURN(const std::size_t num_answers, reader.ReadSize());
  // Each serialized answer is at least item + worker + label count bytes.
  if (num_answers > reader.remaining() / 12) {
    return Status::InvalidArgument("checkpoint answer count exceeds payload");
  }
  if (session_id.empty()) session_id = saved_id;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.size() >= options_.max_sessions) {
      return Status::FailedPrecondition(
          StrFormat("session limit reached (%zu open, max_sessions=%zu)",
                    sessions_.size(), options_.max_sessions));
    }
    if (!session_id.empty() && sessions_.count(session_id) > 0) {
      return Status::InvalidArgument(
          StrFormat("session id '%s' is already open", session_id.c_str()));
    }
  }

  auto session = std::make_shared<Session>();
  session->config = config;
  session->config.num_threads = 1;
  session->config.pool = nullptr;
  if (scheduler_ != nullptr) {
    session->lane = scheduler_->CreateLane();
    session->config.pool = session->lane.get();
  }
  CPA_ASSIGN_OR_RETURN(session->engine,
                       EngineRegistry::Global().Open(session->config));
  session->stream = AnswerMatrix(config.num_items, config.num_workers);
  for (std::size_t k = 0; k < num_answers; ++k) {
    CPA_ASSIGN_OR_RETURN(const std::uint32_t item, reader.ReadU32());
    CPA_ASSIGN_OR_RETURN(const std::uint32_t worker, reader.ReadU32());
    CPA_ASSIGN_OR_RETURN(const LabelSet labels, reader.ReadLabelSet());
    CPA_RETURN_NOT_OK(session->stream.Add(item, worker, labels));
  }
  CPA_ASSIGN_OR_RETURN(const bool has_published, reader.ReadBool());
  SharedSnapshot published;
  if (has_published) {
    CPA_ASSIGN_OR_RETURN(ConsensusSnapshot snapshot,
                         ReadConsensusSnapshot(reader));
    published = std::make_shared<const ConsensusSnapshot>(std::move(snapshot));
  }
  CPA_ASSIGN_OR_RETURN(const std::size_t delta_changed, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(const std::string engine_state, reader.ReadString());
  CPA_RETURN_NOT_OK(reader.ExpectEnd());
  CPA_RETURN_NOT_OK(
      session->engine->RestoreState(engine_state, &session->stream));
  // Re-publish the checkpointed snapshot verbatim. Seeding through
  // `engine->Snapshot()` (as Open does) would run a prediction the
  // uninterrupted session never ran — for CPA-SVI that mutates the model
  // (GlobalRefresh) and would break restore-then-continue bit-identity.
  if (published != nullptr) session->Publish(std::move(published));
  session->delta_changed_items.store(delta_changed, std::memory_order_relaxed);
  RestoreAck ack;
  ack.batches_seen = session->engine->batches_seen();
  ack.answers_seen = session->engine->answers_seen();
  session->batches_seen.store(ack.batches_seen, std::memory_order_relaxed);
  session->answers_seen.store(ack.answers_seen, std::memory_order_relaxed);
  session->finalized.store(session->engine->finalized(),
                           std::memory_order_relaxed);
  session->last_touch.store(NowSeconds(), std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= options_.max_sessions) {
    return Status::FailedPrecondition(
        StrFormat("session limit reached (%zu open, max_sessions=%zu)",
                  sessions_.size(), options_.max_sessions));
  }
  if (session_id.empty()) {
    do {
      session_id = StrFormat("s%zu", next_id_++);
    } while (sessions_.count(session_id) > 0);
  } else if (sessions_.count(session_id) > 0) {
    return Status::InvalidArgument(
        StrFormat("session id '%s' is already open", session_id.c_str()));
  }
  ack.session_id = session_id;
  sessions_.emplace(std::move(session_id), std::move(session));
  return ack;
}

Status SessionManager::Close(std::string_view session_id) {
  std::shared_ptr<Session> session;  // destroyed outside the map lock
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound(
          StrFormat("unknown session '%s'", std::string(session_id).c_str()));
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  return Status::OK();
}

std::size_t SessionManager::ExpireIdle(double idle_seconds) {
  const double now = NowSeconds();
  std::vector<std::shared_ptr<Session>> expired;  // destroyed outside the lock
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      Session& session = *it->second;
      const double idle =
          now - session.last_touch.load(std::memory_order_relaxed);
      // try_lock skips sessions with an operation in flight; holding the
      // map lock means no new operation can look the session up while we
      // decide. Idleness is re-checked and `closed` is set under the
      // session mutex, so a caller that raced past Find() but locks after
      // us sees the flag instead of operating on a removed session.
      bool expire_it = false;
      if (idle > idle_seconds && session.mutex.try_lock()) {
        if (now - session.last_touch.load(std::memory_order_relaxed) >
            idle_seconds) {
          session.closed = true;
          expire_it = true;
        }
        session.mutex.unlock();
      }
      if (expire_it) {
        expired.push_back(std::move(it->second));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return expired.size();
}

std::vector<SessionInfo> SessionManager::List() const {
  std::vector<SessionInfo> infos;
  const double now = NowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  infos.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    SessionInfo info;
    info.id = id;
    info.method = session->config.method;
    info.batches_seen = session->batches_seen.load(std::memory_order_relaxed);
    info.answers_seen = session->answers_seen.load(std::memory_order_relaxed);
    info.finalized = session->finalized.load(std::memory_order_relaxed);
    info.idle_seconds =
        std::max(0.0, now - session->last_touch.load(std::memory_order_relaxed));
    infos.push_back(std::move(info));
  }
  return infos;
}

std::size_t SessionManager::num_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace cpa
