#ifndef CPA_SERVER_SESSION_MANAGER_H_
#define CPA_SERVER_SESSION_MANAGER_H_

/// \file session_manager.h
/// \brief Many concurrent `ConsensusEngine` sessions behind string ids.
///
/// The engine layer is deliberately single-session: one `ConsensusEngine`
/// is one stream, driven from one thread at a time. The `SessionManager`
/// is the concurrency layer on top — it owns the stream matrix of every
/// session (the wire protocol ships answers, not matrix indices), maps ids
/// to engines, serialises the engine calls of each session behind a
/// per-session mutex, and keeps every session's parallel sweep work on one
/// shared `ServerScheduler` pool instead of a pool per session.
///
/// Thread-safety contract:
/// - All methods may be called concurrently from any number of threads.
/// - Per session, `Observe` / `Snapshot(refresh=true)` / `Finalize` are
///   serialised (they mutate or refit the engine).
/// - `Snapshot(refresh=false)` is a poll: it hands out the most recently
///   published `SharedSnapshot` from one atomic load — it never touches
///   the session's engine mutex and never copies the predictions — so
///   pollers can never block behind an in-flight `Observe` batch or
///   refit.
/// - `List` reads per-session atomic counters — exact counters,
///   predictions as of the last refresh.
///
/// Sessions never expire on their own; `ExpireIdle` sweeps sessions idle
/// longer than a threshold (skipping any with an operation in flight) and
/// is typically driven by the server front-end between requests.

#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/answer_matrix.h"
#include "engine/consensus_engine.h"
#include "engine/engine_config.h"
#include "server/server_scheduler.h"
#include "util/status.h"

namespace cpa {

/// \brief Knobs of the session-serving layer.
struct SessionManagerOptions {
  /// Workers in the shared sweep pool. 1 (default) runs every session's
  /// sweeps inline on its calling thread — no pool is spawned.
  std::size_t num_threads = 1;

  /// Open-session cap; `Open` fails beyond it.
  std::size_t max_sessions = 64;
};

/// \brief The cheap consensus delta riding on every `Observe` ack: how far
/// the published snapshot lags the stream, and how much the consensus
/// moved at the last refresh. Computed once per refresh (an O(items)
/// prediction diff), read lock-free afterwards — a client can decide
/// whether to pull a fresh snapshot without ever forcing one.
struct ConsensusDelta {
  /// Items whose predicted label set changed at the last published
  /// refresh (vs the previously published snapshot).
  std::size_t changed_items = 0;

  /// Counters of the currently published snapshot (compare with the ack's
  /// session counters to see how stale the published consensus is).
  std::size_t snapshot_batches_seen = 0;
  std::size_t snapshot_answers_seen = 0;
};

/// \brief Session counters after an accepted `Observe` batch.
struct ObserveAck {
  std::size_t batches_seen = 0;
  std::size_t answers_seen = 0;
  ConsensusDelta delta;
};

/// \brief Counters of a session rebuilt by `SessionManager::Restore`.
struct RestoreAck {
  std::string session_id;
  std::size_t batches_seen = 0;
  std::size_t answers_seen = 0;
};

/// \brief One row of `SessionManager::List`.
struct SessionInfo {
  std::string id;
  std::string method;
  std::size_t batches_seen = 0;
  std::size_t answers_seen = 0;
  bool finalized = false;
  double idle_seconds = 0.0;  ///< since the session's last operation
};

/// \brief Creates, serves, and expires engine sessions by id.
class SessionManager {
 public:
  explicit SessionManager(const SessionManagerOptions& options = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session of `config.method` and returns its id — `session_id`
  /// when non-empty (must be unused), a generated "s<n>" otherwise. The
  /// manager owns the session's stream matrix (dimensioned from the
  /// config) and rebinds the config's executor to a shared-pool lane:
  /// under the manager, sessions never own pools (`config.num_threads` and
  /// `config.pool` are overridden).
  Result<std::string> Open(const EngineConfig& config, std::string session_id = "");

  /// Appends `answers` to the session's stream and feeds them to the
  /// engine as one batch; returns the session counters afterwards. Fails
  /// without mutating anything on out-of-range ids, empty label sets, an
  /// (item, worker) cell that already holds an answer, or a finalized
  /// session.
  Result<ObserveAck> Observe(std::string_view session_id,
                             std::span<const Answer> answers);

  /// The session's consensus as an immutable shared snapshot. `refresh`
  /// (default) runs the engine's snapshot (offline methods refit on
  /// everything seen) and publishes the result; `refresh=false` polls the
  /// atomically published snapshot of the last refresh/finalize without
  /// ever taking the session's engine mutex — it never blocks behind an
  /// in-flight batch, and repeated polls return the *same* object (zero
  /// prediction copies per poll).
  Result<SharedSnapshot> Snapshot(std::string_view session_id, bool refresh = true);

  /// Finalizes the session (idempotent) and returns the final consensus.
  /// The session stays open for polling until `Close`.
  Result<SharedSnapshot> Finalize(std::string_view session_id);

  /// Serializes the whole session — config, stream matrix, published
  /// snapshot, engine state — into an opaque versioned blob (the unit the
  /// `checkpoint` wire op ships). The session stays open and unchanged.
  /// Fails for engines that don't implement state hooks.
  Result<std::string> Checkpoint(std::string_view session_id);

  /// Rebuilds a session from a `Checkpoint` blob. The new session opens
  /// under `session_id` when non-empty (must be unused), else under the id
  /// recorded in the blob. Continuing the restored session is bit-identical
  /// to continuing the original: the engine restores its sufficient
  /// statistics from the blob and the published snapshot is re-published
  /// verbatim (never recomputed — a recompute could perturb online state).
  Result<RestoreAck> Restore(std::string_view state, std::string session_id = "");

  /// Removes the session. In-flight operations on it complete normally.
  Status Close(std::string_view session_id);

  /// Closes every session idle for longer than `idle_seconds` (sessions
  /// with an operation in flight are never expired). Returns how many
  /// sessions were closed.
  std::size_t ExpireIdle(double idle_seconds);

  /// Snapshot of every open session, sorted by id.
  std::vector<SessionInfo> List() const;

  std::size_t num_sessions() const;
  const SessionManagerOptions& options() const { return options_; }

  /// The shared scheduler (nullptr when `num_threads == 1`).
  const ServerScheduler* scheduler() const { return scheduler_.get(); }

 private:
  struct Session;

  /// Looks up a session (nullptr when absent) without blocking on it.
  std::shared_ptr<Session> Find(std::string_view session_id) const;

  /// Seconds since manager construction (monotonic).
  double NowSeconds() const;

  SessionManagerOptions options_;

  /// Declared before `sessions_`: sessions (and their lanes) are destroyed
  /// first, then the scheduler joins its pool.
  std::unique_ptr<ServerScheduler> scheduler_;

  mutable std::mutex mutex_;  ///< guards `sessions_` and `next_id_`
  std::map<std::string, std::shared_ptr<Session>, std::less<>> sessions_;
  std::size_t next_id_ = 1;

  const std::chrono::steady_clock::time_point epoch_;
};

}  // namespace cpa

#endif  // CPA_SERVER_SESSION_MANAGER_H_
