#ifndef CPA_SERVER_IDLE_SWEEPER_H_
#define CPA_SERVER_IDLE_SWEEPER_H_

/// \file idle_sweeper.h
/// \brief Time-driven idle-session expiry for the socket server.
///
/// The stdio server piggybacks `ExpireIdle` on request handling — fine
/// there, because a stdio server with no requests has no clients. A TCP
/// server is different: sessions whose clients vanished stay pinned
/// (engine state, scheduler lane, answer stream) until some *other*
/// client happens to send a request. The sweeper closes that hole with a
/// dedicated thread that sweeps on a timer, so an idle fleet converges to
/// zero sessions without any traffic.
///
/// The sweep period defaults to a quarter of the idle timeout (clamped to
/// [0.1s, 60s]): a session is reaped at most ~1.25 timeouts after its
/// last touch, and the sweep itself is cheap (one pass over the session
/// map, skipping any session with an operation in flight).
///
/// `Stop` (and the destructor) wakes the thread immediately — shutdown
/// never waits out a sweep period.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "server/session_manager.h"

namespace cpa {

/// \brief Periodically expires idle sessions on a background thread.
class IdleSweeper {
 public:
  /// Sweeps `sessions` every `period_seconds`, expiring sessions idle
  /// longer than `idle_timeout_seconds`. `period_seconds <= 0` picks the
  /// default (timeout / 4, clamped to [0.1s, 60s]). `sessions` must
  /// outlive the sweeper.
  IdleSweeper(SessionManager& sessions, double idle_timeout_seconds,
              double period_seconds = 0.0);

  /// Stops and joins.
  ~IdleSweeper();

  IdleSweeper(const IdleSweeper&) = delete;
  IdleSweeper& operator=(const IdleSweeper&) = delete;

  /// Starts the sweep thread. Call at most once.
  void Start();

  /// Stops the thread promptly and joins it. Idempotent.
  void Stop();

  /// Total sessions expired by this sweeper (the shutdown stats line).
  std::uint64_t expired() const {
    return expired_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  SessionManager& sessions_;
  double idle_timeout_seconds_;
  double period_seconds_;

  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;  ///< guarded by `mutex_`
  std::thread thread_;
  std::atomic<std::uint64_t> expired_{0};
};

}  // namespace cpa

#endif  // CPA_SERVER_IDLE_SWEEPER_H_
