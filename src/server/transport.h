#ifndef CPA_SERVER_TRANSPORT_H_
#define CPA_SERVER_TRANSPORT_H_

/// \file transport.h
/// \brief What every socket transport shares: options, stats, the
/// `Transport` interface, and the listen-socket setup helper.
///
/// Two implementations speak the identical framed wire protocol
/// (framing.h) over a `FrameHandler`:
///
///   - `TcpTransport` (tcp_transport.h) — thread-per-connection, strict
///     per-connection request→response order.
///   - `EventLoopTransport` (event_loop_transport.h) — a fixed pool of
///     epoll reactor threads plus a dispatch pool; sequenced frames may
///     complete out of order.
///
/// `cpa_server` constructs one of them behind this interface
/// (`--event-loop` selects the reactor); the router and every client
/// work unchanged in front of either.

#include <cstddef>
#include <cstdint>
#include <string>

#include "server/framing.h"
#include "util/status.h"

namespace cpa {

/// \brief Listener configuration shared by both transports.
struct TransportOptions {
  /// Dotted-quad address to bind ("0.0.0.0" to serve beyond loopback).
  std::string bind_address = "127.0.0.1";

  /// Port to bind; 0 picks a free ephemeral port (read it back via
  /// `port()` — the tests and the fig11 bench run that way).
  std::uint16_t port = 0;

  /// When non-empty, listen on a UNIX-domain stream socket at this
  /// filesystem path instead of TCP (`cpa_server --unix PATH`). The wire
  /// protocol is identical; `bind_address`/`port` are ignored. A stale
  /// socket file left by a dead process is unlinked before binding, and
  /// the path is unlinked again on Shutdown. Paths must fit in
  /// sockaddr_un (< 108 bytes).
  std::string unix_path;

  /// Hard cap on live connections; accepts beyond it are closed
  /// immediately after a best-effort JSON error frame.
  std::size_t max_connections = 1024;

  /// Frames larger than this are rejected (error reply, body skipped).
  std::size_t max_frame_bytes = server::kDefaultMaxFrameBytes;

  /// listen(2) backlog.
  int listen_backlog = 128;

  /// When > 0, sets SO_SNDBUF to this on every accepted socket. Tests
  /// use a tiny value to force partial writes; leave 0 in production.
  int so_sndbuf = 0;

  // --- Event-loop transport only (ignored by TcpTransport) ---

  /// Reactor (epoll) threads (`cpa_server --io-threads`). Reactors only
  /// move bytes; they never run engine work.
  std::size_t io_threads = 2;

  /// Dispatch threads running `FrameHandler::HandleFrame`
  /// (`--dispatch-threads`); 0 sizes automatically from the hardware.
  std::size_t dispatch_threads = 0;

  /// Per-connection cap on requests in flight (decoded, response not yet
  /// queued). Reads pause (EPOLLIN disarmed) at the cap and resume as
  /// responses drain — backpressure, not disconnect.
  std::size_t max_pipeline = 256;

  /// Per-connection pending-write-bytes cap with the same pause/resume
  /// behavior: a client that stops reading stops being read.
  std::size_t write_high_watermark = 4u << 20;
};

/// \brief Monotonic transport counters (read at any time; TSan-clean).
struct TransportStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< over `max_connections`
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t framing_errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;

  /// Syscall visibility: frames_in / recv_calls is the realized batching
  /// factor; partial_writes and wouldblock_events count the kernel
  /// pushing back (short send / EAGAIN). fig11 surfaces all three.
  std::uint64_t recv_calls = 0;
  std::uint64_t send_calls = 0;
  std::uint64_t partial_writes = 0;
  std::uint64_t wouldblock_events = 0;

  /// Router-mode counters (router.h). A plain transport leaves them 0;
  /// `cpa_server --router` merges the router's totals in before printing
  /// its shutdown stats line.
  std::uint64_t frames_forwarded = 0;
  std::uint64_t backend_reconnects = 0;
};

/// \brief The interface `cpa_server` drives a listener through.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Binds, listens and starts serving. Fails (IOError) when the
  /// address/port/path cannot be bound. Call at most once.
  virtual Status Start() = 0;

  /// Stops accepting, drains in-flight requests, closes every connection
  /// and joins all threads. Idempotent; safe to call from any thread
  /// except a connection handler.
  virtual void Shutdown() = 0;

  /// The port actually bound (resolves port 0 requests). 0 before Start
  /// and in UNIX-socket mode.
  virtual std::uint16_t port() const = 0;

  /// Live connections right now.
  virtual std::size_t num_connections() const = 0;

  virtual TransportStats stats() const = 0;
};

namespace server_internal {

/// A bound, listening socket (TCP or UNIX per `options.unix_path`).
struct ListenSocket {
  int fd = -1;
  std::uint16_t port = 0;  ///< resolved port (0 for UNIX sockets)
};

/// Creates, binds and listens per `options`. On failure the fd is closed
/// (and a UNIX path unlinked) before the error returns.
Status BindAndListen(const TransportOptions& options, ListenSocket* out);

/// Applies per-connection socket options (TCP_NODELAY on TCP sockets,
/// SO_SNDBUF when `options.so_sndbuf` > 0).
void ConfigureAcceptedSocket(int fd, const TransportOptions& options);

}  // namespace server_internal
}  // namespace cpa

#endif  // CPA_SERVER_TRANSPORT_H_
